.PHONY: all build test check bench trace-demo clean

all: build

build:
	dune build @all

test:
	dune runtest

# Build everything, then run the full test suite.
check:
	dune build @check

bench:
	dune exec bench/main.exe

# Record an NGINX run with the flight recorder and summarise the trace
# (open nginx.trace.json in Perfetto / chrome://tracing).
trace-demo:
	dune exec bin/bastion_cli.exe -- run --app nginx --trace nginx.trace.json --metrics
	dune exec bin/bastion_cli.exe -- trace-summary nginx.trace.json

clean:
	dune clean
