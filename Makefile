.PHONY: all build test lint check bench bench-prefilter bench-static bench-fleet trace-demo golden replay-golden diff-golden clean

all: build

build:
	dune build @all

test:
	dune runtest

# The metadata-soundness lint gate: every workload model must produce
# zero diagnostics (the CI job runs the same three commands).
lint:
	dune exec bin/bastion_cli.exe -- lint --app nginx
	dune exec bin/bastion_cli.exe -- lint --app sqlite
	dune exec bin/bastion_cli.exe -- lint --app vsftpd

# Build everything, then run the lint gate.
check: lint
	dune build @check

bench:
	dune exec bench/main.exe

# The tiered-ablation artifact: off / prefilter-only / tiered on all
# three workloads plus the per-attack tier split (EXPERIMENTS.md).
bench-prefilter:
	dune exec bench/main.exe -- --json-prefilter BENCH_prefilter.json

# The static pre-resolution artifact: off / rank-only / full ablation
# with the SCCP + taint slot breakdown per workload (EXPERIMENTS.md).
bench-static:
	dune exec bench/main.exe -- --json-static BENCH_static_pre_resolution.json

# The fleet telemetry artifact: tail latency vs offered load over a
# heterogeneous 64-tracee fleet on the sharded pool (EXPERIMENTS.md).
bench-fleet:
	dune exec bench/main.exe -- --json-fleet BENCH_fleet.json

# Record an NGINX run with the flight recorder and summarise the trace
# (open nginx.trace.json in Perfetto / chrome://tracing).
trace-demo:
	dune exec bin/bastion_cli.exe -- run --app nginx --trace nginx.trace.json --metrics
	dune exec bin/bastion_cli.exe -- trace-summary nginx.trace.json

# Regenerate the golden-trace corpus: one small-scale benign run and
# one attack-matrix run per application, recorded with `--audit`.  The
# model is deterministic, so regeneration must be byte-identical to
# the checked-in traces (CI enforces this with `git diff`).
golden:
	dune build bin/bastion_cli.exe
	dune exec bin/bastion_cli.exe -- run --app nginx --scale small --defense full --audit test/golden/nginx-benign.jsonl
	dune exec bin/bastion_cli.exe -- run --app sqlite --scale small --defense full --audit test/golden/sqlite-benign.jsonl
	dune exec bin/bastion_cli.exe -- run --app vsftpd --scale small --defense full --audit test/golden/vsftpd-benign.jsonl
	dune exec bin/bastion_cli.exe -- attack --id cve-2013-2028 --config full --audit test/golden/nginx-attack.jsonl
	dune exec bin/bastion_cli.exe -- attack --id rop-mprotect-sqlite-1 --config full --audit test/golden/sqlite-attack.jsonl
	dune exec bin/bastion_cli.exe -- attack --id rop-exec-daemon --config full --audit test/golden/vsftpd-attack.jsonl

# Replay every checked-in golden trace strictly; exits non-zero on any
# divergence (the offline re-verification gate).
replay-golden:
	dune build bin/bastion_cli.exe
	for t in test/golden/*.jsonl; do \
	  dune exec bin/bastion_cli.exe -- replay $$t --strict || exit 1; \
	done

# Differentially replay the whole golden corpus against the in-tree
# compile pass: the regression oracle.  Exits non-zero on any verdict
# flip or context move and writes the committed "what moved" artifact
# (CI enforces it stays byte-identical with `git diff`).
diff-golden:
	dune build bin/bastion_cli.exe
	dune exec bin/bastion_cli.exe -- replay test/golden/nginx-benign.jsonl test/golden/sqlite-benign.jsonl test/golden/vsftpd-benign.jsonl test/golden/nginx-attack.jsonl test/golden/sqlite-attack.jsonl test/golden/vsftpd-attack.jsonl --against current --diff DIFF_replay_golden.json

clean:
	dune clean
