.PHONY: all build test lint check bench trace-demo clean

all: build

build:
	dune build @all

test:
	dune runtest

# The metadata-soundness lint gate: every workload model must produce
# zero diagnostics (the CI job runs the same three commands).
lint:
	dune exec bin/bastion_cli.exe -- lint --app nginx
	dune exec bin/bastion_cli.exe -- lint --app sqlite
	dune exec bin/bastion_cli.exe -- lint --app vsftpd

# Build everything, then run the lint gate.
check: lint
	dune build @check

bench:
	dune exec bench/main.exe

# Record an NGINX run with the flight recorder and summarise the trace
# (open nginx.trace.json in Perfetto / chrome://tracing).
trace-demo:
	dune exec bin/bastion_cli.exe -- run --app nginx --trace nginx.trace.json --metrics
	dune exec bin/bastion_cli.exe -- trace-summary nginx.trace.json

clean:
	dune clean
