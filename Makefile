.PHONY: all build test check bench clean

all: build

build:
	dune build @all

test:
	dune runtest

# Build everything, then run the full test suite.
check:
	dune build @check

bench:
	dune exec bench/main.exe

clean:
	dune clean
