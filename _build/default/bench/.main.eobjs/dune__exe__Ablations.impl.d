bench/ablations.ml: Bastion Kernel List Machine Printf Sil Workloads
