bench/figure3.ml: Lazy List Paper_data Printf Report Results Workloads
