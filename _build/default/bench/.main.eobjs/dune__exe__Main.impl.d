bench/main.ml: Ablations Array Figure3 List Micro Printf Stats9 String Sys Table4 Table5 Table6 Table7
