bench/main.mli:
