bench/micro.ml: Analyze Attacks Bastion Bechamel Benchmark Hashtbl Int64 Kernel List Machine Measure Printf Report Sil Staged Test Time Toolkit Workloads
