bench/results.ml: Lazy List Workloads
