bench/stats9.ml: Attacks Bastion Kernel Lazy List Paper_data Printf Report Results Workloads
