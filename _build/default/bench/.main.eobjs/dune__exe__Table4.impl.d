bench/table4.ml: Kernel List Paper_data Printf Report Workloads
