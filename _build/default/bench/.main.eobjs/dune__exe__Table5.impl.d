bench/table5.ml: Bastion List Paper_data Printf Report Workloads
