bench/table6.ml: Attacks List Printf Report
