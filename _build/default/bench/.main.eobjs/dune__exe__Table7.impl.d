bench/table7.ml: Bastion Lazy List Paper_data Printf Report Results Workloads
