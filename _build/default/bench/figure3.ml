(* Figure 3: performance overhead of LLVM CFI, CET and the cumulative
   BASTION contexts for NGINX, SQLite and vsftpd, versus the unprotected
   baseline.  Table 3 prints the raw numbers the percentages come from. *)

module D = Workloads.Drivers

let defense_rows =
  [ D.Llvm_cfi; D.Cet_only; D.Bastion_ct; D.Bastion_ct_cf; D.Bastion_full ]

let run () =
  let results = Lazy.force Results.main_results in
  print_endline "== Figure 3: performance overhead (%) vs unprotected baseline ==";
  print_endline "   (paper values in parentheses)";
  let header = "Configuration" :: List.map (fun (r : Results.app_results) -> r.app.app_name) results in
  let rows =
    List.map
      (fun d ->
        let name = D.defense_name d in
        let paper = List.assoc name Paper_data.figure3 in
        D.defense_name d
        :: List.map2
             (fun (r : Results.app_results) p ->
               Printf.sprintf "%5.2f%% (%.2f%%)" (Results.overhead r (Results.find r d)) p)
             results paper)
      defense_rows
  in
  Report.Table.print ~align:[ Report.Table.L; R; R; R ] ~header rows;
  print_newline ();
  (* The figure itself: grouped bars per application. *)
  Report.Barchart.print ~unit_:"%"
    (List.map
       (fun (r : Results.app_results) ->
         ( r.app.app_name,
           List.map
             (fun d -> (D.defense_name d, Results.overhead r (Results.find r d)))
             defense_rows ))
       results);
  print_endline "== Table 3: raw benchmark numbers per configuration ==";
  print_endline "   NGINX: MB/sec; SQLite: NOTPM; vsftpd: ms/download (paper: sec/100MB)";
  let rows =
    List.map
      (fun (d, paper_name) ->
        let paper = List.assoc paper_name Paper_data.table3 in
        paper_name
        :: List.map2
             (fun (r : Results.app_results) p ->
               let v =
                 match d with
                 | None -> r.baseline.m_metric
                 | Some d -> Results.metric_of r d
               in
               Printf.sprintf "%.2f (%.2f)" v p)
             results paper)
      [
        (None, "Vanilla");
        (Some D.Llvm_cfi, "LLVM CFI");
        (Some D.Cet_only, "CET");
        (Some D.Bastion_ct, "CET+CT");
        (Some D.Bastion_ct_cf, "CET+CT+CF");
        (Some D.Bastion_full, "CET+CT+CF+AI");
      ]
  in
  Report.Table.print ~align:[ Report.Table.L; R; R; R ] ~header rows;
  print_newline ()
