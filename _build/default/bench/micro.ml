(* Bechamel micro-benchmarks: wall-clock cost of the real OCaml
   implementation behind each reproduced experiment.

   One Test.make per table/figure:
   - figure3/full-check      the monitor work done per sensitive trap
   - table4/machine-syscalls syscall dispatch through seccomp
   - table5/compiler-pass    the whole BASTION compiler pass
   - table6/attack-run       one attack evaluation under full BASTION
   - table7/ptrace-fetch     the state-fetch step that dominates Table 7
   - shadow/insert-lookup    shadow-memory operations (AI's hot path) *)

open Bechamel

let exec_prog () =
  (* The small end-to-end fixture used across the test suite. *)
  let pb = Sil.Builder.program () in
  Kernel.Syscalls.declare_stubs pb;
  let open Sil.Operand in
  let fb = Sil.Builder.func pb "worker" ~params:[ ("n", Sil.Types.I64) ] in
  Sil.Builder.call fb "mmap"
    [ Null; Var (Sil.Builder.param fb 0); const 3; const 2; const (-1); const 0 ];
  Sil.Builder.ret fb None;
  Sil.Builder.seal fb;
  let fb = Sil.Builder.func pb "main" ~params:[] in
  Workloads.Appkit.counted_loop fb ~tag:"work" ~count:50 (fun fb ->
      Sil.Builder.call fb "worker" [ const 4096 ]);
  Sil.Builder.halt fb;
  Sil.Builder.seal fb;
  Sil.Builder.build pb ~entry:"main"

let bench_full_check () =
  let prog = exec_prog () in
  let protected_prog = Bastion.Api.protect prog in
  Staged.stage (fun () ->
      let session = Bastion.Api.launch protected_prog () in
      match Machine.run session.machine with
      | Machine.Exited _ -> ()
      | Machine.Faulted f -> failwith (Machine.fault_to_string f))

let bench_syscall_dispatch () =
  let prog = exec_prog () in
  Staged.stage (fun () ->
      let machine, process = Bastion.Api.launch_unprotected prog in
      process.filter <- Some (Kernel.Seccomp.allowlist (List.map (fun (_, nr, _) -> nr) Kernel.Syscalls.table));
      ignore (Machine.run machine))

let bench_compiler_pass () =
  let prog =
    Workloads.Nginx_model.build { Workloads.Nginx_model.default with filler = false }
  in
  Staged.stage (fun () -> ignore (Bastion.Api.protect prog))

let bench_attack_run () =
  let attack = List.hd Attacks.Catalog.all in
  Staged.stage (fun () -> ignore (Attacks.Runner.run attack Attacks.Runner.Full_bastion))

let bench_ptrace_fetch () =
  let prog = exec_prog () in
  let machine = Machine.create prog in
  let tracer = Kernel.Ptrace.create machine in
  (* Give the tracer something to walk. *)
  ignore (Machine.run machine);
  Staged.stage (fun () ->
      ignore (Kernel.Ptrace.getregs tracer);
      ignore (Kernel.Ptrace.stack_trace tracer))

let bench_shadow () =
  let shadow = Bastion.Shadow_memory.create () in
  let counter = ref 0L in
  Staged.stage (fun () ->
      counter := Int64.add !counter 8L;
      Bastion.Shadow_memory.set_shadow shadow ~addr:!counter ~value:!counter;
      ignore (Bastion.Shadow_memory.shadow shadow ~addr:!counter))

let tests () =
  Test.make_grouped ~name:"bastion"
    [
      Test.make ~name:"figure3/full-check" (bench_full_check ());
      Test.make ~name:"table4/machine-syscalls" (bench_syscall_dispatch ());
      Test.make ~name:"table5/compiler-pass" (bench_compiler_pass ());
      Test.make ~name:"table6/attack-run" (bench_attack_run ());
      Test.make ~name:"table7/ptrace-fetch" (bench_ptrace_fetch ());
      Test.make ~name:"shadow/insert-lookup" (bench_shadow ());
    ]

let run () =
  print_endline "== Bechamel micro-benchmarks (host wall-clock) ==";
  let cfg = Benchmark.cfg ~limit:300 ~quota:(Time.second 0.5) ~kde:None () in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let raw = Benchmark.all cfg instances (tests ()) in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name result ->
      let est =
        match Analyze.OLS.estimates result with
        | Some (e :: _) -> Printf.sprintf "%12.1f ns/run" e
        | Some [] | None -> "n/a"
      in
      rows := [ name; est ] :: !rows)
    results;
  Report.Table.print ~header:[ "benchmark"; "monotonic clock" ]
    (List.sort compare !rows);
  print_newline ()
