(* Reference numbers from the paper, printed beside our measurements so
   every table/figure reproduction is directly comparable. *)

let apps = [ "NGINX"; "SQLite"; "vsftpd" ]

(* Figure 3: overhead (%) per configuration, per app. *)
let figure3 =
  [
    ("LLVM CFI", [ 0.06; 2.56; 1.72 ]);
    ("CET", [ 0.07; 0.39; 0.18 ]);
    ("CET+CT", [ 0.17; 0.92; 0.31 ]);
    ("CET+CT+CF", [ 0.29; 1.48; 0.58 ]);
    ("CET+CT+CF+AI", [ 0.60; 2.01; 1.65 ]);
  ]

(* Table 3: raw throughput per configuration. *)
let table3 =
  [
    ("Vanilla", [ 110.61; 37107.41; 10.75 ]);
    ("LLVM CFI", [ 110.54; 36156.15; 10.93 ]);
    ("CET", [ 110.52; 36961.91; 10.77 ]);
    ("CET+CT", [ 110.42; 36764.50; 10.79 ]);
    ("CET+CT+CF", [ 110.28; 36560.02; 10.81 ]);
    ("CET+CT+CF+AI", [ 109.94; 36360.85; 10.93 ]);
  ]

(* Table 4: sensitive syscall usage during benchmarking. *)
let table4 : (string * int list) list =
  [
    ("execve", [ 0; 0; 0 ]);
    ("execveat", [ 0; 0; 0 ]);
    ("fork", [ 0; 0; 0 ]);
    ("vfork", [ 0; 0; 0 ]);
    ("clone", [ 96; 48; 36 ]);
    ("ptrace", [ 0; 0; 0 ]);
    ("mprotect", [ 334; 501; 7 ]);
    ("mmap", [ 534; 42; 33 ]);
    ("mremap", [ 0; 0; 0 ]);
    ("remap_file_pages", [ 0; 0; 0 ]);
    ("chmod", [ 0; 0; 0 ]);
    ("setuid", [ 32; 0; 12 ]);
    ("setgid", [ 32; 0; 12 ]);
    ("setreuid", [ 0; 0; 0 ]);
    ("socket", [ 32; 1; 85 ]);
    ("connect", [ 32; 0; 8 ]);
    ("bind", [ 1; 1; 77 ]);
    ("listen", [ 2; 1; 77 ]);
    ("accept", [ 0; 11; 87 ]);
    ("accept4", [ 5665; 0; 0 ]);
  ]

let table4_totals = [ 6713; 557; 433 ]

(* Table 5: instrumentation statistics. *)
let table5 =
  [
    ("Total # application callsites", [ 7017; 12253; 4695 ]);
    ("Total # arbitrary direct callsites", [ 6692; 12026; 4688 ]);
    ("Total # arbitrary in-direct callsites", [ 325; 227; 7 ]);
    ("Total # sensitive callsites", [ 26; 13; 12 ]);
    ("Total # sensitive syscalls called indirectly", [ 0; 0; 0 ]);
    ("ctx_write_mem()", [ 5226; 1337; 204 ]);
    ("ctx_bind_mem()", [ 43; 18; 33 ]);
    ("ctx_bind_const()", [ 18; 13; 9 ]);
    ("Total instrumentation sites", [ 5287; 1368; 246 ]);
  ]

(* Table 7: filesystem-extension rows — (runtime, overhead %) per app. *)
let table7 =
  [
    ("seccomp hook only", [ (110.41, 0.15); (36993.27, 0.29); (10.76, 0.08) ]);
    ("fetch process state", [ (4.56, 95.88); (7461.18, 79.89); (10.95, 1.85) ]);
    ("full context checking", [ (3.65, 96.70); (7419.50, 80.00); (11.01, 2.41) ]);
  ]

(* §9.2 prose numbers. *)
let nginx_monitor_init_ms = 21.0
let nginx_depth = (4, 5.2, 9)

(* §9.2 comparison to related defenses. *)
let related_overheads = [ ("uCFI", 7.88); ("OS-CFI", 7.6); ("OAT", 2.7) ]
