(* Shared measurement collection: Figure 3 / Table 3 / Table 7 reuse the
   same runs, so they are collected once per bench invocation. *)

module D = Workloads.Drivers

let apps () = [ D.nginx (); D.sqlite (); D.vsftpd () ]

type app_results = {
  app : D.app;
  baseline : D.measurement;
  by_defense : (D.defense * D.measurement) list;
}

let overhead (r : app_results) (m : D.measurement) =
  D.overhead_pct ~baseline:r.baseline m ~higher_is_better:r.app.higher_is_better

let collect_app ?(defenses = List.tl D.figure3_defenses @ D.table7_defenses) (app : D.app)
    : app_results =
  let baseline = D.run app D.Vanilla in
  let by_defense = List.map (fun d -> (d, D.run app d)) defenses in
  { app; baseline; by_defense }

let main_results : app_results list Lazy.t = lazy (List.map collect_app (apps ()))

let find (r : app_results) (d : D.defense) = List.assoc d r.by_defense

let metric_of (r : app_results) (d : D.defense) = (find r d).m_metric
