(* §9.2 prose statistics: monitor initialisation cost and NGINX
   call-depth distribution at sensitive syscall traps. *)

(* Empirical syscall danger ranking from the attack catalog (§11.3). *)
let risk_ranking () =
  print_endline "== Empirical syscall danger ranking (§11.3, from the attack catalog) ==";
  Report.Table.print
    ~align:[ Report.Table.L; L; R; R ]
    ~header:[ "syscall"; "category"; "#attacks"; "score" ]
    (List.map
       (fun (e : Attacks.Risk.entry) ->
         [
           e.r_name;
           Kernel.Syscalls.category_name e.r_category;
           string_of_int e.r_attacks;
           Printf.sprintf "%.1f" e.r_score;
         ])
       (Attacks.Risk.rank ()));
  print_newline ()

let run () =
  let results = Lazy.force Results.main_results in
  print_endline "== Section 9.2 statistics ==";
  List.iter
    (fun (r : Results.app_results) ->
      let m = Results.find r Workloads.Drivers.Bastion_full in
      let init_ms =
        float_of_int m.m_monitor_init_cycles
        /. Workloads.Drivers_config.cycles_per_second *. 1000.0
      in
      Printf.printf "%-8s monitor init: %.3f ms (paper: ~%.0f ms for NGINX)\n"
        r.app.app_name init_ms Paper_data.nginx_monitor_init_ms;
      match m.m_monitor with
      | Some monitor -> (
        match Bastion.Monitor.depth_stats monitor with
        | Some (dmin, davg, dmax) ->
          let pmin, pavg, pmax = Paper_data.nginx_depth in
          Printf.printf
            "%-8s call depth at traps: min %d avg %.1f max %d (paper NGINX: min %d avg %.1f max %d)\n"
            r.app.app_name dmin davg dmax pmin pavg pmax
        | None -> ())
      | None -> ())
    results;
  print_endline "\nComparison points the paper quotes (full-protection overhead):";
  List.iter
    (fun (name, ovh) -> Printf.printf "  %-8s %.2f%%\n" name ovh)
    Paper_data.related_overheads;
  let nginx = List.hd results in
  Printf.printf "  Bastion  %.2f%% (NGINX, this reproduction)\n\n"
    (Results.overhead nginx (Results.find nginx Workloads.Drivers.Bastion_full));
  risk_ranking ()

