(* Table 4: sensitive system-call usage during benchmarking, at the
   paper's run scale (5,665 NGINX connections, 501 SQLite runtime
   mprotects, the vsftpd FTP session mix). *)

module D = Workloads.Drivers

let paper_apps () =
  [
    D.nginx ~params:{ Workloads.Nginx_model.paper_scale with filler = false } ();
    D.sqlite ~params:{ Workloads.Sqlite_model.paper_scale with filler = false } ();
    D.vsftpd ~params:{ Workloads.Vsftpd_model.paper_scale with filler = false } ();
  ]

let run () =
  print_endline "== Table 4: sensitive syscall usage from benchmarking ==";
  print_endline "   measured (paper)";
  let measurements = List.map (fun app -> D.run app D.Bastion_full) (paper_apps ()) in
  let count (m : D.measurement) name =
    Kernel.Process.syscall_count m.m_process (Kernel.Syscalls.number name)
  in
  let header = [ "System call"; "NGINX"; "SQLite"; "vsFTPd" ] in
  let rows =
    List.map
      (fun (name, paper) ->
        name
        :: List.map2
             (fun m p -> Printf.sprintf "%d (%d)" (count m name) p)
             measurements paper)
      Paper_data.table4
  in
  let totals =
    "Total Bastion monitor hook"
    :: List.map2
         (fun (m : D.measurement) p -> Printf.sprintf "%d (%d)" m.m_traps p)
         measurements Paper_data.table4_totals
  in
  Report.Table.print ~align:[ Report.Table.L; R; R; R ] ~header (rows @ [ totals ]);
  print_newline ()
