(* Table 5: static instrumentation statistics from the BASTION compiler
   pass over the three application models (with their static structure
   padded to the paper's callsite scale). *)

let protected_apps () =
  [
    ("NGINX", Bastion.Api.protect (Workloads.Nginx_model.build Workloads.Nginx_model.default));
    ("SQLite", Bastion.Api.protect (Workloads.Sqlite_model.build Workloads.Sqlite_model.default));
    ("vsftpd", Bastion.Api.protect (Workloads.Vsftpd_model.build Workloads.Vsftpd_model.default));
  ]

let run () =
  print_endline "== Table 5: instrumentation statistics for Bastion ==";
  print_endline "   measured (paper)";
  let stats = List.map (fun (n, p) -> (n, Bastion.Api.stats p)) (protected_apps ()) in
  let row name f paper_row =
    name
    :: List.map2
         (fun (_, s) p -> Printf.sprintf "%d (%d)" (f s) p)
         stats
         (List.assoc paper_row Paper_data.table5)
  in
  let open Bastion.Api in
  let rows =
    [
      row "Total # application callsites"
        (fun s -> s.total_callsites)
        "Total # application callsites";
      row "Total # arbitrary direct callsites"
        (fun s -> s.direct_callsites)
        "Total # arbitrary direct callsites";
      row "Total # arbitrary in-direct callsites"
        (fun s -> s.indirect_callsites)
        "Total # arbitrary in-direct callsites";
      row "Total # sensitive callsites"
        (fun s -> s.sensitive_callsites)
        "Total # sensitive callsites";
      row "Total # sensitive syscalls called indirectly"
        (fun s -> s.sensitive_indirect)
        "Total # sensitive syscalls called indirectly";
      row "ctx_write_mem()" (fun s -> s.write_mem_sites) "ctx_write_mem()";
      row "ctx_bind_mem()" (fun s -> s.bind_mem_sites) "ctx_bind_mem()";
      row "ctx_bind_const()" (fun s -> s.bind_const_sites) "ctx_bind_const()";
      row "Total instrumentation sites" total_instrumentation_sites
        "Total instrumentation sites";
    ]
  in
  Report.Table.print
    ~align:[ Report.Table.L; R; R; R ]
    ~header:[ "Application"; "NGINX"; "SQLite"; "vsftpd" ]
    rows;
  print_endline
    "   (ctx_* site counts scale with the models' sensitive-variable\n\
    \   footprint, not with the padded callsite count; the paper's\n\
    \   applications carry proportionally more sensitive state.)";
  print_newline ()
