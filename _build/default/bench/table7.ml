(* Table 7: extending BASTION to filesystem syscalls (§11.2), broken
   into the three cost checkpoints: seccomp hook only, + fetching the
   process state over ptrace, + full context checking.  Fetching state
   dominates — which motivates the in-kernel-monitor what-if reported
   by the ablations section. *)

module D = Workloads.Drivers

let rows =
  [
    (D.Bastion_fs Bastion.Monitor.Fs_hook_only, "seccomp hook only");
    (D.Bastion_fs Bastion.Monitor.Fs_fetch_only, "fetch process state");
    (D.Bastion_fs Bastion.Monitor.Fs_full, "full context checking");
  ]

let run () =
  let results = Lazy.force Results.main_results in
  print_endline "== Table 7: overhead with file-system syscalls protected ==";
  print_endline "   measured metric, overhead% (paper metric, paper overhead%)";
  let header =
    "Bastion + fs syscalls"
    :: List.map (fun (r : Results.app_results) -> r.app.app_name) results
  in
  let body =
    List.map
      (fun (d, label) ->
        let paper = List.assoc label Paper_data.table7 in
        label
        :: List.map2
             (fun (r : Results.app_results) (p_metric, p_ovh) ->
               let m = Results.find r d in
               Printf.sprintf "%.2f, %.2f%% (%.2f, %.2f%%)" m.m_metric
                 (Results.overhead r m) p_metric p_ovh)
             results paper)
      rows
  in
  Report.Table.print ~align:[ Report.Table.L; R; R; R ] ~header body;
  print_newline ()
