examples/attack_gallery.ml: Array Attacks List Printf Sys
