examples/custom_policy.ml: Attacks Bastion Machine Printf Sil String Workloads
