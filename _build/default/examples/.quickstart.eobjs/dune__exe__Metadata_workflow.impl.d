examples/metadata_workflow.ml: Bastion Filename List Machine Printf Sil String Sys Workloads
