examples/metadata_workflow.mli:
