examples/nginx_protection.ml: Bastion Kernel List Machine Printf Sil Workloads
