examples/nginx_protection.mli:
