examples/quickstart.ml: Attacks Bastion Kernel List Machine Option Printf Sil String
