examples/quickstart.mli:
