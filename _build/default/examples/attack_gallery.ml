(* A guided tour of the Table 6 attack catalog: one representative
   attack per family, narrated, each run undefended, under each single
   context, and under full BASTION.

   Run with:  dune exec examples/attack_gallery.exe [attack-id]
   With no argument, a representative selection runs; pass an attack id
   (e.g. "coop-chrome") or "all" for the complete catalog. *)

let representative_ids =
  [
    "rop-exec-nginx-1";   (* ROP: CT bypassed, CF/AI block *)
    "rop-mprotect-chrome";
    "newton-cscfi";       (* direct: all three contexts block *)
    "cve-2013-2028";
    "newton-cpi";         (* indirect, non-pointer corruption *)
    "aocr-apache";        (* CT bypassed via legit indirect exec *)
    "aocr-nginx-2";       (* pure data attack: only AI blocks *)
    "coop-chrome";
    "control-jujutsu";
  ]

let narrate (attack : Attacks.Attack.t) =
  Printf.printf "\n--- %s %s ---\n" attack.a_id attack.a_reference;
  Printf.printf "%s\n" attack.a_name;
  Printf.printf "victim: %s, goal: illegitimate %s\n" attack.a_victim.v_name attack.a_goal;
  let run config =
    let outcome = Attacks.Runner.run attack config in
    Printf.printf "  %-10s %s\n"
      (Attacks.Runner.config_name config)
      (Attacks.Runner.outcome_name outcome)
  in
  List.iter run
    Attacks.Runner.[ Undefended; Only_ct; Only_cf; Only_ai; Full_bastion ];
  let e = attack.a_expected in
  Printf.printf "  paper:     CT %s, CF %s, AI %s\n"
    (if e.e_ct then "blocks" else "bypassed")
    (if e.e_cf then "blocks" else "bypassed")
    (if e.e_ai then "blocks" else "bypassed")

let () =
  let chosen =
    match Array.to_list Sys.argv with
    | [] | [ _ ] ->
      List.filter
        (fun (a : Attacks.Attack.t) -> List.mem a.a_id representative_ids)
        Attacks.Catalog.all
    | [ _; "all" ] -> Attacks.Catalog.all
    | _ :: ids ->
      List.filter (fun (a : Attacks.Attack.t) -> List.mem a.a_id ids) Attacks.Catalog.all
  in
  if chosen = [] then begin
    Printf.eprintf "no such attack; known ids:\n";
    List.iter
      (fun (a : Attacks.Attack.t) -> Printf.eprintf "  %s\n" a.a_id)
      Attacks.Catalog.all;
    exit 2
  end;
  Printf.printf "Attack gallery: %d of the %d Table 6 attacks\n" (List.length chosen)
    Attacks.Catalog.count;
  List.iter narrate chosen
