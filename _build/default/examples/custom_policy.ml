(* Customising the protection policy (§11.2, §11.3):

   - extend the sensitive set with the filesystem syscalls and watch
     the ptrace tax appear (Table 7);
   - what-if: run the same extended policy with the in-kernel-monitor
     cost model;
   - toggle individual contexts and the sockaddr fast path;
   - demonstrate not-callable enforcement: a syscall the program never
     uses is killed by seccomp even though it is not "sensitive".

   Run with:  dune exec examples/custom_policy.exe *)

let params =
  { Workloads.Nginx_model.default with connections = 20; requests_per_conn = 40 }

let run_config ~label ?(cost = Machine.Cost.default) ?(fs = false)
    ?(monitor_config = Bastion.Monitor.default_config) prog baseline =
  let protected_prog = Bastion.Api.protect ~protect_filesystem:fs prog in
  let session =
    Bastion.Api.launch
      ~machine_config:{ Machine.default_config with cet = true; cost }
      ~monitor_config protected_prog ()
  in
  Workloads.Nginx_model.setup params session.process;
  (match Machine.run session.machine with
  | Machine.Exited _ -> ()
  | Machine.Faulted f -> failwith (Machine.fault_to_string f));
  let tput = Workloads.Nginx_model.throughput_mb_s session.process session.machine in
  (match baseline with
  | Some base ->
    Printf.printf "  %-46s %8.2f MB/s (%+.2f%%)\n" label tput
      ((base -. tput) /. base *. 100.0)
  | None -> Printf.printf "  %-46s %8.2f MB/s\n" label tput);
  tput

let () =
  let prog = Workloads.Nginx_model.build params in
  print_endline "NGINX model under different BASTION policies:";
  let machine, process = Bastion.Api.launch_unprotected prog in
  Workloads.Nginx_model.setup params process;
  (match Machine.run machine with
  | Machine.Exited _ -> ()
  | Machine.Faulted f -> failwith (Machine.fault_to_string f));
  let base = Workloads.Nginx_model.throughput_mb_s process machine in
  Printf.printf "  %-46s %8.2f MB/s\n" "unprotected baseline" base;

  let base' = Some base in
  ignore (run_config ~label:"sensitive set only (the paper's default)" prog base');
  ignore
    (run_config ~label:"contexts: CT only"
       ~monitor_config:
         {
           Bastion.Monitor.default_config with
           contexts = { Bastion.Monitor.ct = true; cf = false; ai = false };
         }
       prog base');
  ignore
    (run_config ~label:"sockaddr fast path disabled"
       ~monitor_config:{ Bastion.Monitor.default_config with sockaddr_fastpath = false }
       prog base');
  ignore
    (run_config ~label:"+ filesystem syscalls (ptrace monitor)" ~fs:true
       ~monitor_config:
         { Bastion.Monitor.default_config with fs_mode = Bastion.Monitor.Fs_full }
       prog base');
  ignore
    (run_config ~label:"+ filesystem syscalls (in-kernel monitor)" ~fs:true
       ~cost:Machine.Cost.in_kernel_monitor
       ~monitor_config:
         { Bastion.Monitor.default_config with fs_mode = Bastion.Monitor.Fs_full }
       prog base');

  (* §11.3: not-callable enforcement covers non-sensitive syscalls too. *)
  print_endline "\nNot-callable enforcement (§11.3):";
  let protected_prog = Bastion.Api.protect prog in
  let session = Bastion.Api.launch protected_prog () in
  Workloads.Nginx_model.setup params session.process;
  (* Hijack the output_filter pointer towards ptrace — a syscall the
     program never references at all. *)
  session.machine.on_instr <-
    Some
      (let fired = ref false in
       fun m (loc : Sil.Loc.t) ->
         if (not !fired) && String.equal loc.func "ngx_output_chain" then begin
           fired := true;
           Attacks.Primitives.poke m
             (Attacks.Primitives.global_field m ~global:"g_chain"
                ~struct_:"ngx_output_chain_ctx_t" ~field:"output_filter")
             (Attacks.Primitives.func_addr m "ptrace")
         end);
  (match Machine.run session.machine with
  | Machine.Exited _ -> print_endline "  UNEXPECTED: not blocked"
  | Machine.Faulted f -> Printf.printf "  hijack to ptrace(): %s\n" (Machine.fault_to_string f))
