(* The compile-once / deploy-anywhere workflow of Figure 1:

   1. BUILD MACHINE: the BASTION compiler pass analyses the program,
      instruments it, and emits a metadata file next to the binary.
   2. DEPLOY MACHINE: the monitor loads the binary + metadata, installs
      the seccomp filter and starts enforcing — no re-analysis.

   Run with:  dune exec examples/metadata_workflow.exe *)

let () =
  (* --- build side ---------------------------------------------------- *)
  print_endline "[build] running the BASTION compiler pass over vsftpd...";
  let params = { Workloads.Vsftpd_model.default with filler = false } in
  let prog = Workloads.Vsftpd_model.build params in
  let protected_prog = Bastion.Api.protect prog in
  let file = Filename.temp_file "vsftpd" ".bastion-meta" in
  Bastion.Metadata_io.save protected_prog ~file;
  let lines =
    let ic = open_in file in
    let n = ref 0 in
    (try
       while true do
         ignore (input_line ic);
         incr n
       done
     with End_of_file -> close_in ic);
    !n
  in
  Printf.printf "[build] metadata: %s (%d records)\n" file lines;

  (* --- deploy side --------------------------------------------------- *)
  print_endline "[deploy] loading binary + metadata, attaching the monitor...";
  (* Only the instrumented program and the metadata file cross the
     boundary — the analysis results travel in the file. *)
  let restored = Bastion.Metadata_io.load ~file protected_prog.inst.iprog in
  let session = Bastion.Api.launch restored () in
  Workloads.Vsftpd_model.setup params session.process;
  (match Machine.run session.machine with
  | Machine.Exited _ ->
    Printf.printf "[deploy] benign run clean: %d traps verified, %d denials\n"
      session.monitor.traps_checked
      (List.length (Bastion.Monitor.denials session.monitor))
  | Machine.Faulted f -> Printf.printf "[deploy] UNEXPECTED: %s\n" (Machine.fault_to_string f));

  (* The restored deployment still blocks attacks. *)
  print_endline "[deploy] replaying the root-shell corruption against it...";
  let restored = Bastion.Metadata_io.load ~file protected_prog.inst.iprog in
  let session = Bastion.Api.launch restored () in
  Workloads.Vsftpd_model.setup params session.process;
  let m = session.machine in
  let fired = ref false in
  let seen = ref 0 in
  m.on_instr <-
    Some
      (fun m (loc : Sil.Loc.t) ->
        (* Corrupt the uid right before a *session's* privilege drop
           consumes it (the first two setuid calls are the startup
           transitions, which legitimately include uid 0). *)
        if (not !fired) && String.equal loc.func "vsf_secutil_change_credentials" then begin
          match Sil.Prog.instr_at m.prog loc with
          | Sil.Instr.Call { target = Sil.Instr.Direct "setuid"; _ } -> (
            incr seen;
            if !seen = 3 then begin
              fired := true;
              match
                Machine.local_address m ~func:"vsf_secutil_change_credentials" ~var:"uid"
              with
              | Some a -> Machine.poke m a 0L
              | None -> ()
            end)
          | _ -> ()
        end);
  (match Machine.run m with
  | Machine.Exited _ -> print_endline "[deploy] UNEXPECTED: corruption not caught"
  | Machine.Faulted f -> Printf.printf "[deploy] blocked: %s\n" (Machine.fault_to_string f));
  Sys.remove file
