(* Protecting a real server workload: the NGINX model under wrk-style
   load, unprotected vs fully protected, with the monitor's view of the
   run (traps, checks, shadow-memory state, call depths) printed at the
   end.

   Run with:  dune exec examples/nginx_protection.exe *)

let params =
  { Workloads.Nginx_model.default with connections = 30; requests_per_conn = 60 }

let mb_s = Workloads.Nginx_model.throughput_mb_s

let () =
  print_endline "Building the NGINX model (Table 5-scale static structure)...";
  let prog = Workloads.Nginx_model.build params in
  let stats = Sil.Callgraph.stats (Sil.Callgraph.build prog) in
  Printf.printf "  %d callsites (%d indirect), %d instructions\n" stats.total_callsites
    stats.indirect_count (Sil.Prog.instr_count prog);

  (* Unprotected baseline. *)
  let machine, process = Bastion.Api.launch_unprotected prog in
  Workloads.Nginx_model.setup params process;
  (match Machine.run machine with
  | Machine.Exited _ -> ()
  | Machine.Faulted f -> failwith (Machine.fault_to_string f));
  let base = mb_s process machine in
  Printf.printf "\nUnprotected:      %8.2f MB/s\n" base;

  (* Full BASTION. *)
  print_endline "\nRunning the BASTION compiler pass...";
  let protected_prog = Bastion.Api.protect prog in
  let is = Bastion.Api.stats protected_prog in
  Printf.printf
    "  %d sensitive callsites, %d ctx_write_mem, %d ctx_bind_mem, %d ctx_bind_const\n"
    is.sensitive_callsites is.write_mem_sites is.bind_mem_sites is.bind_const_sites;
  let session =
    Bastion.Api.launch ~machine_config:{ Machine.default_config with cet = true }
      protected_prog ()
  in
  Workloads.Nginx_model.setup params session.process;
  (match Machine.run session.machine with
  | Machine.Exited _ -> ()
  | Machine.Faulted f -> failwith (Machine.fault_to_string f));
  let prot = mb_s session.process session.machine in
  Printf.printf "CET + CT+CF+AI:   %8.2f MB/s  (%.2f%% overhead)\n" prot
    ((base -. prot) /. base *. 100.0);

  (* What the monitor saw. *)
  let monitor = session.monitor in
  Printf.printf "\nMonitor's view of the run:\n";
  Printf.printf "  sensitive traps verified : %d\n" monitor.traps_checked;
  Printf.printf "  denials                  : %d (benign run)\n"
    (List.length (Bastion.Monitor.denials monitor));
  (match Bastion.Monitor.depth_stats monitor with
  | Some (dmin, davg, dmax) ->
    Printf.printf "  call depth at traps      : min %d avg %.1f max %d\n" dmin davg dmax
  | None -> ());
  Printf.printf "  shadow entries           : %d (mean probe %.2f)\n"
    (Bastion.Shadow_memory.entry_count session.runtime.shadow)
    (Bastion.Shadow_memory.mean_probe_length session.runtime.shadow);
  Printf.printf "  ctx_write_mem calls      : %d\n" session.runtime.write_mem_calls;
  Printf.printf "  ctx_bind_mem calls       : %d\n" session.runtime.bind_mem_calls;
  let count name =
    Kernel.Process.syscall_count session.process (Kernel.Syscalls.number name)
  in
  Printf.printf "\nSensitive syscalls during the run (Table 4 shape):\n";
  List.iter
    (fun name ->
      let n = count name in
      if n > 0 then Printf.printf "  %-10s %6d\n" name n)
    Kernel.Syscalls.sensitive_names
