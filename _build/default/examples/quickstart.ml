(* Quickstart: protect a small program with BASTION and watch an attack
   die at the system call.

   The program is a tiny "updater" daemon: it stores the path of its
   own binary in a global context and, on request, re-executes itself —
   the same execve pattern as NGINX's binary-upgrade path (paper
   Listing 1).  We run it three times:

   1. benign, protected          -> runs to completion;
   2. under attack, unprotected  -> the attacker gets execve("/bin/sh");
   3. under attack, protected    -> the Argument-Integrity context kills
                                    the process before execve executes.

   Run with:  dune exec examples/quickstart.exe *)

module B = Sil.Builder
open Sil.Operand

let build_updater () =
  let pb = B.program () in
  Kernel.Syscalls.declare_stubs pb;
  B.struct_ pb "exec_ctx" [ ("path", Sil.Types.Ptr Sil.Types.I64); ("flags", Sil.Types.I64) ];
  B.global pb "g_ctx" (Sil.Types.Struct "exec_ctx") Sil.Prog.Zero;
  B.global pb "g_scratch" (Sil.Types.Array (Sil.Types.I64, 16)) Sil.Prog.Zero;

  (* do_update(): execve(g_ctx.path, NULL, NULL) — the sensitive call. *)
  let fb = B.func pb "do_update" ~params:[ ("ctx", Sil.Types.Ptr (Sil.Types.Struct "exec_ctx")) ] in
  let path = B.local fb "path" (Sil.Types.Ptr Sil.Types.I64) in
  B.load fb path (Sil.Place.Lfield (Var (B.param fb 0), "exec_ctx", "path"));
  B.call fb "execve" [ Var path; Null; Null ];
  B.ret fb None;
  B.seal fb;

  let fb = B.func pb "main" ~params:[] in
  let ctxp = B.local fb "ctxp" (Sil.Types.Ptr (Sil.Types.Struct "exec_ctx")) in
  B.addr_of fb ctxp (Sil.Place.Lglobal "g_ctx");
  B.store fb (Sil.Place.Lfield (Var ctxp, "exec_ctx", "path")) (Cstr "/usr/sbin/updaterd");
  B.call fb "do_update" [ Var ctxp ];
  B.halt fb;
  B.seal fb;
  B.build pb ~entry:"main"

(* The attack: a memory-corruption write swaps the exec path for
   /bin/sh just before do_update() reads it. *)
let install_attack (m : Machine.t) =
  m.on_instr <-
    Some
      (let fired = ref false in
       fun m (loc : Sil.Loc.t) ->
         if (not !fired) && String.equal loc.func "do_update" then begin
           fired := true;
           let scratch = Machine.global_address m "g_scratch" in
           Attacks.Primitives.plant_string m scratch "/bin/sh";
           Attacks.Primitives.poke m (Machine.global_address m "g_ctx") scratch;
           print_endline "  [attacker] g_ctx.path -> \"/bin/sh\""
         end)

let show_execs tag (proc : Kernel.Process.t) =
  match Kernel.Process.executed proc "execve" with
  | [] -> Printf.printf "  [%s] execve never executed\n" tag
  | evs ->
    List.iter
      (fun (e : Kernel.Process.exec_event) ->
        Printf.printf "  [%s] execve(%s) EXECUTED\n" tag
          (Option.value ~default:"?" e.ev_path))
      evs

let () =
  print_endline "=== 1. benign run under full BASTION protection ===";
  let prog = build_updater () in
  let protected_prog = Bastion.Api.protect prog in
  let session = Bastion.Api.launch protected_prog () in
  (match Machine.run session.machine with
  | Machine.Exited _ -> print_endline "  program exited normally"
  | Machine.Faulted f -> Printf.printf "  UNEXPECTED: %s\n" (Machine.fault_to_string f));
  show_execs "benign" session.process;

  print_endline "\n=== 2. attack, no protection ===";
  let machine, process = Bastion.Api.launch_unprotected (build_updater ()) in
  install_attack machine;
  (match Machine.run machine with
  | Machine.Exited _ -> print_endline "  program exited (attacker won silently)"
  | Machine.Faulted f -> Printf.printf "  fault: %s\n" (Machine.fault_to_string f));
  show_execs "unprotected" process;

  print_endline "\n=== 3. attack, full BASTION protection ===";
  let protected_prog = Bastion.Api.protect (build_updater ()) in
  let session = Bastion.Api.launch protected_prog () in
  install_attack session.machine;
  (match Machine.run session.machine with
  | Machine.Exited _ -> print_endline "  UNEXPECTED: program exited"
  | Machine.Faulted f -> Printf.printf "  %s\n" (Machine.fault_to_string f));
  show_execs "protected" session.process;
  List.iter
    (fun (d : Bastion.Monitor.denial) ->
      Printf.printf "  monitor denial: %s on %s (%s)\n" d.d_context
        (Kernel.Syscalls.name d.d_sysno) d.d_detail)
    (Bastion.Monitor.denials session.monitor)
