lib/attacks/attack.ml: Array Int64 Machine String Victims
