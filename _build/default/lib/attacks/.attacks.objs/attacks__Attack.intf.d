lib/attacks/attack.mli: Machine Victims
