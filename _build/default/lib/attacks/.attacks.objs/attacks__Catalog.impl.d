lib/attacks/catalog.ml: Attack Hooks Int64 List Machine Primitives Printf Sil String Victims
