lib/attacks/catalog.mli: Attack
