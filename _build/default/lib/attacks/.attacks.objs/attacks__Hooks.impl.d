lib/attacks/hooks.ml: Array Hashtbl List Machine Option Sil String
