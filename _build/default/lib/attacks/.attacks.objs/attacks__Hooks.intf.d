lib/attacks/hooks.mli: Machine Sil
