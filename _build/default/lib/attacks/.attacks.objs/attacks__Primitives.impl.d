lib/attacks/primitives.ml: Char Int64 Machine Sil String
