lib/attacks/primitives.mli: Machine
