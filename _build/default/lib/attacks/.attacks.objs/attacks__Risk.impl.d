lib/attacks/risk.ml: Attack Catalog Hashtbl Kernel List Option
