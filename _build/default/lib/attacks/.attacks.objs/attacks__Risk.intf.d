lib/attacks/risk.mli: Attack Kernel
