lib/attacks/runner.ml: Attack Bastion Catalog Kernel List Machine
