lib/attacks/runner.mli: Attack Machine
