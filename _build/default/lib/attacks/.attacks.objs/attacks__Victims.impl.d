lib/attacks/victims.ml: Kernel List Sil Workloads
