lib/attacks/victims.mli: Kernel Sil Workloads
