(* The attack abstraction: one Table 6 row.

   An attack pairs a victim program with a corruption script (installed
   as machine hooks) and a goal predicate over executed syscalls.  The
   [expected] record is the paper's Table 6 verdict: whether each of the
   three contexts, *enabled alone*, blocks the attack. *)

type expected = { e_ct : bool; e_cf : bool; e_ai : bool }

let all_contexts_block = { e_ct = true; e_cf = true; e_ai = true }
let cf_ai_block = { e_ct = false; e_cf = true; e_ai = true }
let ai_only_blocks = { e_ct = false; e_cf = false; e_ai = true }

type t = {
  a_id : string;
  a_name : string;
  a_category : string;  (** "ROP" | "Direct" | "Indirect" *)
  a_reference : string; (** the paper's citation *)
  a_expected : expected;
  a_victim : Victims.t;
  a_fs_scope : bool;    (** run under the §11.2 filesystem-extended monitor *)
  a_goal : string;      (** syscall whose illegitimate execution completes it *)
  a_goal_check : args:int64 array -> path:string option -> bool;
  a_install : Machine.t -> unit;
}

(* Common goal predicates ------------------------------------------------ *)

(** The attacker launched a shell. *)
let goal_shell ~args:_ ~path =
  match path with Some p -> String.equal p "/bin/sh" | None -> false

(** Memory was made writable+executable. *)
let goal_rwx ~(args : int64 array) ~path:_ =
  Array.length args > 2 && Int64.equal args.(2) 7L

(** Any invocation at all (for syscalls the victim never uses). *)
let goal_any ~args:_ ~path:_ = true

(** uid 0 requested. *)
let goal_uid0 ~(args : int64 array) ~path:_ =
  Array.length args > 0 && Int64.equal args.(0) 0L
