(** The attack abstraction: one row of the paper's Table 6.

    An attack pairs a victim program with a corruption script and a goal
    predicate; [expected] is the paper's verdict — whether each context,
    enabled alone, blocks it. *)

type expected = { e_ct : bool; e_cf : bool; e_ai : bool }

val all_contexts_block : expected
val cf_ai_block : expected
val ai_only_blocks : expected

type t = {
  a_id : string;
  a_name : string;
  a_category : string;  (** "ROP" | "Direct" | "Indirect" *)
  a_reference : string; (** the paper's citation *)
  a_expected : expected;
  a_victim : Victims.t;
  a_fs_scope : bool;    (** run under the §11.2 fs-extended monitor *)
  a_goal : string;      (** the syscall whose illegitimate execution completes it *)
  a_goal_check : args:int64 array -> path:string option -> bool;
  a_install : Machine.t -> unit;
}

(** Goal predicates. *)

val goal_shell : args:int64 array -> path:string option -> bool
val goal_rwx : args:int64 array -> path:string option -> bool
val goal_any : args:int64 array -> path:string option -> bool
val goal_uid0 : args:int64 array -> path:string option -> bool
