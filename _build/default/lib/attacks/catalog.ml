(* The 32-attack catalog of Table 6.

   Categories and expected per-context verdicts follow the table:
   - 18 ROP payloads (CT bypassed, CF and AI block);
   - 9 direct syscall manipulations (all three contexts block);
   - 5 indirect manipulations with progressively fewer contexts able to
     block, down to Argument Integrity alone. *)

open Attack

let i64_of = Int64.of_int

(* --- scripting helpers --------------------------------------------- *)

let scratch (m : Machine.t) = Primitives.global m "g_scratch"

(** Plant "/bin/sh" in the victim's scratch buffer; returns its address. *)
let plant_shell (m : Machine.t) =
  let addr = scratch m in
  Primitives.plant_string m addr "/bin/sh";
  addr

(** Stack-slot address of a variable of [func], assuming a ROP pivot
    into [func]: when the corrupted return executes, the ROP'd frame is
    popped and the gadget runs in the *caller's* frame, so slots are
    relative to the second frame at corruption time. *)
let pivot_slot (m : Machine.t) ~func ~var =
  match Machine.frames m with
  | _ :: frame :: _ | [ frame ] ->
    let f = Sil.Prog.find_func m.prog func in
    let v =
      match
        List.find_opt
          (fun ((v : Sil.Operand.var), _) -> String.equal v.vname var)
          (Sil.Func.all_vars f)
      with
      | Some (v, _) -> v
      | None -> invalid_arg (Printf.sprintf "pivot_slot: %s has no %s" func var)
    in
    Machine.Memory.addr_add frame.frame_base
      (Machine.Layout.var_offset m.layout func v.vid)
  | [] -> invalid_arg "pivot_slot: no frames"

(** Code address of the [nth] direct call to [callee] inside [in_func]
    (mid-function ROP gadget: land directly on the call, skipping
    everything before it). *)
let call_gadget (m : Machine.t) ?(nth = 1) ~in_func ~callee () =
  let f = Sil.Prog.find_func m.prog in_func in
  let count = ref 0 in
  let loc =
    List.find_map
      (fun (loc, ins) ->
        match (ins : Sil.Instr.t) with
        | Call { target = Direct c; _ } when String.equal c callee ->
          incr count;
          if !count = nth then Some loc else None
        | Call _ | Assign _ | Store _ -> None)
      (Sil.Func.instrs f)
  in
  match loc with
  | Some loc -> Machine.instr_address m loc
  | None ->
    invalid_arg (Printf.sprintf "call_gadget: no call to %s in %s" callee in_func)

(** A ROP attack: at the [nth] entry of [from], run [prep] and overwrite
    the live return address with the gadget address [target] computes. *)
let rop ?(nth = 1) ~from ~target ~prep () (m : Machine.t) =
  Hooks.install m
    [
      {
        trigger = Hooks.At_entry_nth (from, nth);
        action =
          (fun m ->
            prep m;
            Primitives.overwrite_return m (target m));
      };
    ]

(** A data/pointer corruption attack at the [nth] entry of [at]. *)
let corrupt ?(nth = 1) ~at ~action () (m : Machine.t) =
  Hooks.install m [ { trigger = Hooks.At_entry_nth (at, nth); action } ]

(* Fake ngx_exec_ctx_t in scratch: path="/bin/sh", argv=envp=NULL. *)
let plant_fake_exec_ctx (m : Machine.t) =
  let shell = plant_shell m in
  let ctx = Machine.Memory.addr_add (scratch m) 10 in
  Primitives.poke m ctx shell;
  Primitives.poke m (Machine.Memory.addr_add ctx 1) 0L;
  Primitives.poke m (Machine.Memory.addr_add ctx 2) 0L;
  ctx

(* --- 1-13: ROP, execute user command ------------------------------- *)

let rop_exec_nginx ~id ~reference ~from =
  {
    a_id = id;
    a_name = Printf.sprintf "ROP user command via ngx_execute_proc (from %s)" from;
    a_category = "ROP";
    a_reference = reference;
    a_expected = cf_ai_block;
    a_victim = Victims.nginx;
    a_fs_scope = false;
    a_goal = "execve";
    a_goal_check = goal_shell;
    a_install =
      rop ~nth:2 ~from
        ~target:(fun m -> Primitives.gadget_entry m "ngx_execute_proc")
        ~prep:(fun m ->
          let ctx = plant_fake_exec_ctx m in
          Primitives.poke m (pivot_slot m ~func:"ngx_execute_proc" ~var:"data") ctx)
        ();
  }

let rop_exec_libc ~id ~reference ~victim ~from =
  {
    a_id = id;
    a_name = Printf.sprintf "ROP user command via libc system() (%s)" victim.Victims.v_name;
    a_category = "ROP";
    a_reference = reference;
    a_expected = cf_ai_block;
    a_victim = victim;
    a_fs_scope = false;
    a_goal = "execve";
    a_goal_check = goal_shell;
    a_install =
      rop ~from
        ~target:(fun m -> Primitives.gadget_entry m "libc_system")
        ~prep:(fun m ->
          let shell = plant_shell m in
          Primitives.poke m (pivot_slot m ~func:"libc_system" ~var:"cmd") shell)
        ();
  }

let rop_user_command_attacks =
  [
    rop_exec_nginx ~id:"rop-exec-nginx-1" ~reference:"[1]" ~from:"ngx_http_handle_request";
    rop_exec_nginx ~id:"rop-exec-nginx-2" ~reference:"[3]" ~from:"ngx_process_connection";
    rop_exec_nginx ~id:"rop-exec-nginx-3" ~reference:"[5]"
      ~from:"ngx_http_get_indexed_variable";
    {
      a_id = "rop-exec-apache-1";
      a_name = "ROP user command via ap_get_exec_line";
      a_category = "ROP";
      a_reference = "[7]";
      a_expected = cf_ai_block;
      a_victim = Victims.apache;
      a_fs_scope = false;
      a_goal = "execve";
      a_goal_check = goal_shell;
      a_install =
        rop ~nth:2 ~from:"ap_handle_request"
          ~target:(fun m -> Primitives.gadget_entry m "ap_get_exec_line")
          ~prep:(fun m ->
            let shell = plant_shell m in
            Primitives.poke m (Primitives.global m "g_exec_cmdline") shell)
          ();
    };
    {
      a_id = "rop-exec-apache-2";
      a_name = "ROP user command via exec_cmd gadget";
      a_category = "ROP";
      a_reference = "[8]";
      a_expected = cf_ai_block;
      a_victim = Victims.apache;
      a_fs_scope = false;
      a_goal = "execve";
      a_goal_check = goal_shell;
      a_install =
        rop ~nth:2 ~from:"ap_log_writer"
          ~target:(fun m -> Primitives.gadget_entry m "exec_cmd")
          ~prep:(fun m ->
            let shell = plant_shell m in
            Primitives.poke m (pivot_slot m ~func:"exec_cmd" ~var:"cmd") shell)
          ();
    };
    {
      a_id = "rop-exec-daemon";
      a_name = "ROP user command via run_helper";
      a_category = "ROP";
      a_reference = "[11]";
      a_expected = cf_ai_block;
      a_victim = Victims.priv_daemon;
      a_fs_scope = false;
      a_goal = "execve";
      a_goal_check = goal_shell;
      a_install =
        rop ~from:"checksum"
          ~target:(fun m -> Primitives.gadget_entry m "run_helper")
          ~prep:(fun m ->
            let shell = plant_shell m in
            Primitives.poke m (Primitives.global m "g_helper_path") shell)
          ();
    };
    {
      a_id = "rop-exec-sudo-1";
      a_name = "ROP user command via spawn_command";
      a_category = "ROP";
      a_reference = "[13]";
      a_expected = cf_ai_block;
      a_victim = Victims.sudo;
      a_fs_scope = false;
      a_goal = "execve";
      a_goal_check = goal_shell;
      a_install =
        rop ~from:"parse_stream"
          ~target:(fun m -> Primitives.gadget_entry m "spawn_command")
          ~prep:(fun m ->
            let shell = plant_shell m in
            Primitives.poke m (Primitives.global m "g_exec_path") shell)
          ();
    };
    {
      a_id = "rop-exec-sudo-2";
      a_name = "ROP user command via spawn_command (handler gadget)";
      a_category = "ROP";
      a_reference = "[15]";
      a_expected = cf_ai_block;
      a_victim = Victims.sudo;
      a_fs_scope = false;
      a_goal = "execve";
      a_goal_check = goal_shell;
      a_install =
        rop ~from:"handle_chunk"
          ~target:(fun m -> Primitives.gadget_entry m "spawn_command")
          ~prep:(fun m ->
            let shell = plant_shell m in
            Primitives.poke m (Primitives.global m "g_exec_path") shell)
          ();
    };
    rop_exec_libc ~id:"rop-exec-php" ~reference:"[16]" ~victim:Victims.php
      ~from:"parse_stream";
    rop_exec_libc ~id:"rop-exec-ffmpeg" ~reference:"[17]" ~victim:Victims.ffmpeg_http
      ~from:"parse_stream";
    rop_exec_libc ~id:"rop-exec-libtiff" ~reference:"[18]" ~victim:Victims.libtiff
      ~from:"handle_meta";
    rop_exec_libc ~id:"rop-exec-python" ~reference:"[19]" ~victim:Victims.python
      ~from:"parse_stream";
    rop_exec_libc ~id:"rop-exec-rtmp" ~reference:"[20]" ~victim:Victims.ffmpeg_rtmp
      ~from:"handle_chunk";
  ]

(* --- 14: ROP, execute root command ---------------------------------- *)

let rop_root_attacks =
  [
    {
      a_id = "rop-root-daemon";
      a_name = "ROP root shell: setuid(0) via drop_privileges";
      a_category = "ROP";
      a_reference = "[11]";
      a_expected = cf_ai_block;
      a_victim = Victims.priv_daemon;
      a_fs_scope = false;
      a_goal = "setuid";
      a_goal_check = goal_uid0;
      a_install =
        rop ~from:"checksum"
          ~target:(fun m -> Primitives.gadget_entry m "drop_privileges")
          ~prep:(fun m -> Primitives.poke m (Primitives.global m "g_cfg_uid") 0L)
          ();
    };
  ]

(* --- 15-18: ROP, alter memory permission ---------------------------- *)

let rop_mprotect_attacks =
  [
    {
      a_id = "rop-mprotect-nginx";
      a_name = "ROP RWX via ngx_harden_memory gadget";
      a_category = "ROP";
      a_reference = "[2]";
      a_expected = cf_ai_block;
      a_victim = Victims.nginx;
      a_fs_scope = false;
      a_goal = "mprotect";
      a_goal_check = goal_rwx;
      a_install =
        rop ~nth:2 ~from:"ngx_http_handle_request"
          ~target:(fun m ->
            call_gadget m ~nth:2 ~in_func:"ngx_harden_memory" ~callee:"mprotect" ())
          ~prep:(fun m ->
            Primitives.poke m (pivot_slot m ~func:"ngx_harden_memory" ~var:"prot_rx") 7L)
          ();
    };
    {
      a_id = "rop-mprotect-sqlite-1";
      a_name = "ROP RWX via sqlite3_mem_harden gadget";
      a_category = "ROP";
      a_reference = "[4]";
      a_expected = cf_ai_block;
      a_victim = Victims.sqlite;
      a_fs_scope = false;
      a_goal = "mprotect";
      a_goal_check = goal_rwx;
      a_install =
        rop ~nth:2 ~from:"sqlite3_new_order_txn"
          ~target:(fun m ->
            call_gadget m ~in_func:"sqlite3_mem_harden" ~callee:"mprotect" ())
          ~prep:(fun m ->
            Primitives.poke m (pivot_slot m ~func:"sqlite3_mem_harden" ~var:"prots") 7L;
            Primitives.poke m
              (pivot_slot m ~func:"sqlite3_mem_harden" ~var:"region")
              (i64_of 0x700200))
          ();
    };
    {
      a_id = "rop-mprotect-sqlite-2";
      a_name = "ROP RWX via sqlite3_mem_harden gadget (VDBE entry)";
      a_category = "ROP";
      a_reference = "[6]";
      a_expected = cf_ai_block;
      a_victim = Victims.sqlite;
      a_fs_scope = false;
      a_goal = "mprotect";
      a_goal_check = goal_rwx;
      a_install =
        rop ~nth:3 ~from:"sqlite3_vdbe_exec"
          ~target:(fun m ->
            call_gadget m ~in_func:"sqlite3_mem_harden" ~callee:"mprotect" ())
          ~prep:(fun m ->
            Primitives.poke m (pivot_slot m ~func:"sqlite3_mem_harden" ~var:"prots") 7L)
          ();
    };
    {
      a_id = "rop-mprotect-chrome";
      a_name = "ROP RWX via vfunc_jit_protect gadget";
      a_category = "ROP";
      a_reference = "[12]";
      a_expected = cf_ai_block;
      a_victim = Victims.chrome;
      a_fs_scope = false;
      a_goal = "mprotect";
      a_goal_check = goal_rwx;
      a_install =
        rop ~nth:4 ~from:"vfunc_render"
          ~target:(fun m ->
            call_gadget m ~in_func:"vfunc_jit_protect" ~callee:"mprotect" ())
          ~prep:(fun m ->
            Primitives.poke m (pivot_slot m ~func:"vfunc_jit_protect" ~var:"prot") 7L;
            Primitives.poke m
              (pivot_slot m ~func:"vfunc_jit_protect" ~var:"region")
              (i64_of 0x700400))
          ();
    };
  ]

(* --- 19-27: direct syscall manipulation ----------------------------- *)

(** Corrupt one dispatch-table function pointer to a syscall stub. *)
let handler_hijack ~id ~name ~reference ~victim ~slot ~stub ~goal ~goal_check =
  {
    a_id = id;
    a_name = name;
    a_category = "Direct";
    a_reference = reference;
    a_expected = all_contexts_block;
    a_victim = victim;
    a_fs_scope = false;
    a_goal = goal;
    a_goal_check = goal_check;
    a_install =
      corrupt ~at:"parse_stream"
        ~action:(fun m ->
          let table = Primitives.global m "g_handlers" in
          let elem = 2 (* words per handler_t *) in
          Primitives.poke m
            (Machine.Memory.addr_add table (slot * elem))
            (Primitives.func_addr m stub))
        ();
  }

let direct_attacks =
  [
    {
      a_id = "newton-cscfi";
      a_name = "NEWTON CsCFI: hijack plugin pointer to unused mprotect";
      a_category = "Direct";
      a_reference = "[93]";
      a_expected = all_contexts_block;
      a_victim = Victims.loader_app;
      a_fs_scope = false;
      a_goal = "mprotect";
      a_goal_check = goal_rwx;
      a_install =
        corrupt ~nth:2 ~at:"process_event"
          ~action:(fun m ->
            Primitives.poke m (Primitives.global m "g_plugin")
              (Primitives.func_addr m "mprotect"))
          ();
    };
    {
      a_id = "aocr-nginx-1";
      a_name = "AOCR NGINX Attack 1: type-matched pointer to open";
      a_category = "Direct";
      a_reference = "[81]";
      a_expected = all_contexts_block;
      a_victim = Victims.nginx;
      a_fs_scope = true;
      a_goal = "open";
      a_goal_check = (fun ~args:_ ~path -> path = Some "");
      a_install =
        corrupt ~nth:2 ~at:"ngx_output_chain"
          ~action:(fun m ->
            Primitives.poke m
              (Primitives.global_field m ~global:"g_chain"
                 ~struct_:"ngx_output_chain_ctx_t" ~field:"output_filter")
              (Primitives.func_addr m "open"))
          ();
    };
    handler_hijack ~id:"cve-2016-10190" ~reference:"[75]"
      ~name:"CVE-2016-10190 (ffmpeg http): demuxer pointer to execve"
      ~victim:Victims.ffmpeg_http ~slot:1 ~stub:"execve" ~goal:"execve"
      ~goal_check:goal_any;
    handler_hijack ~id:"cve-2016-10191" ~reference:"[76]"
      ~name:"CVE-2016-10191 (ffmpeg rtmp): codec pointer to mprotect"
      ~victim:Victims.ffmpeg_rtmp ~slot:2 ~stub:"mprotect" ~goal:"mprotect"
      ~goal_check:goal_any;
    handler_hijack ~id:"cve-2015-8617" ~reference:"[74]"
      ~name:"CVE-2015-8617 (php): zend handler to execve" ~victim:Victims.php ~slot:3
      ~stub:"execve" ~goal:"execve" ~goal_check:goal_any;
    handler_hijack ~id:"cve-2012-0809" ~reference:"[70]"
      ~name:"CVE-2012-0809 (sudo): debug handler to execve" ~victim:Victims.sudo
      ~slot:0 ~stub:"execve" ~goal:"execve" ~goal_check:goal_any;
    {
      a_id = "cve-2013-2028";
      a_name = "CVE-2013-2028 (nginx): chunked-encoding pointer to execve";
      a_category = "Direct";
      a_reference = "[71]";
      a_expected = all_contexts_block;
      a_victim = Victims.nginx;
      a_fs_scope = false;
      a_goal = "execve";
      a_goal_check = goal_any;
      a_install =
        corrupt ~nth:2 ~at:"ngx_http_get_indexed_variable"
          ~action:(fun m ->
            let vars = Primitives.global m "g_vars" in
            (* g_vars[2].get_handler := &execve *)
            Primitives.poke m
              (Machine.Memory.addr_add vars (2 * 3))
              (Primitives.func_addr m "execve"))
          ();
    };
    handler_hijack ~id:"cve-2014-8668" ~reference:"[73]"
      ~name:"CVE-2014-8668 (libtiff): codec pointer to mprotect"
      ~victim:Victims.libtiff ~slot:1 ~stub:"mprotect" ~goal:"mprotect"
      ~goal_check:goal_any;
    handler_hijack ~id:"cve-2014-1912" ~reference:"[72]"
      ~name:"CVE-2014-1912 (python): method pointer to execve" ~victim:Victims.python
      ~slot:2 ~stub:"execve" ~goal:"execve" ~goal_check:goal_any;
  ]

(* --- 28-32: indirect syscall manipulation --------------------------- *)

let indirect_attacks =
  [
    {
      a_id = "newton-cpi";
      a_name = "NEWTON CPI: out-of-bounds index into v[index].get_handler";
      a_category = "Indirect";
      a_reference = "[93]";
      a_expected = all_contexts_block;
      a_victim = Victims.nginx;
      a_fs_scope = false;
      a_goal = "mprotect";
      a_goal_check = goal_rwx;
      a_install =
        corrupt ~nth:3 ~at:"ngx_http_get_indexed_variable"
          ~action:(fun m ->
            let vars = Primitives.global m "g_vars" in
            let sc = scratch m in
            (* Choose k in {0,1,2} so (scratch + 8k - vars) is a whole
               number of 24-byte ngx_http_var_t elements. *)
            let k =
              let delta = Int64.to_int (Int64.sub sc vars) / 8 in
              (3 - (delta mod 3)) mod 3
            in
            let base = Machine.Memory.addr_add sc k in
            (* Counterfeit element: get_handler=&mprotect, data=PROT_RWX. *)
            Primitives.poke m base (Primitives.func_addr m "mprotect");
            Primitives.poke m (Machine.Memory.addr_add base 1) 7L;
            let index =
              Int64.to_int (Int64.sub (Machine.Memory.addr_add sc k) vars) / 24
            in
            (* Corrupt the non-pointer index parameter. *)
            match Machine.local_address m ~func:"ngx_http_get_indexed_variable" ~var:"index" with
            | Some slot -> Primitives.poke m slot (i64_of index)
            | None -> invalid_arg "newton-cpi: index slot not found")
          ();
    };
    {
      a_id = "aocr-apache";
      a_name = "AOCR Apache: piped-log pointer to ap_get_exec_line";
      a_category = "Indirect";
      a_reference = "[93]";
      a_expected = cf_ai_block;
      a_victim = Victims.apache;
      a_fs_scope = false;
      a_goal = "execve";
      a_goal_check = goal_shell;
      a_install =
        corrupt ~nth:2 ~at:"ap_handle_request"
          ~action:(fun m ->
            let shell = plant_shell m in
            Primitives.poke m (Primitives.global m "g_exec_cmdline") shell;
            Primitives.poke m
              (Primitives.global_field m ~global:"g_plog" ~struct_:"piped_log_t"
                 ~field:"writer")
              (Primitives.func_addr m "ap_get_exec_line"))
          ();
    };
    {
      a_id = "aocr-nginx-2";
      a_name = "AOCR NGINX Attack 2: master-loop globals drive exec";
      a_category = "Indirect";
      a_reference = "[81]";
      a_expected = ai_only_blocks;
      a_victim = Victims.nginx;
      a_fs_scope = false;
      a_goal = "execve";
      a_goal_check = goal_shell;
      a_install =
        corrupt ~at:"ngx_master_cycle"
          ~action:(fun m ->
            let shell = plant_shell m in
            Primitives.poke m (Primitives.global m "g_upgrade") 1L;
            Primitives.poke m
              (Primitives.global_field m ~global:"g_exec_ctx"
                 ~struct_:"ngx_exec_ctx_t" ~field:"path")
              shell)
          ();
    };
    {
      a_id = "coop-chrome";
      a_name = "COOP: counterfeit object reuses vfunc_jit_protect";
      a_category = "Indirect";
      a_reference = "[34]";
      a_expected = ai_only_blocks;
      a_victim = Victims.chrome;
      a_fs_scope = false;
      a_goal = "mprotect";
      a_goal_check = goal_rwx;
      a_install =
        corrupt ~nth:2 ~at:"render_pass"
          ~action:(fun m ->
            let objs = Primitives.global m "g_objs" in
            let obj1 = Machine.Memory.addr_add objs 3 (* element 1 *) in
            Primitives.poke m obj1 (Primitives.func_addr m "vfunc_jit_protect");
            Primitives.poke m (Machine.Memory.addr_add obj1 1)
              (Machine.peek m (Primitives.global m "g_jit_region"));
            Primitives.poke m (Machine.Memory.addr_add obj1 2) 7L)
          ();
    };
    {
      a_id = "control-jujutsu";
      a_name = "Control Jujutsu: full-function reuse of ngx_execute_proc";
      a_category = "Indirect";
      a_reference = "[38]";
      a_expected = ai_only_blocks;
      a_victim = Victims.nginx;
      a_fs_scope = false;
      a_goal = "execve";
      a_goal_check = goal_shell;
      a_install =
        corrupt ~nth:2 ~at:"ngx_output_chain"
          ~action:(fun m ->
            let shell = plant_shell m in
            Primitives.poke m
              (Primitives.global_field m ~global:"g_chain"
                 ~struct_:"ngx_output_chain_ctx_t" ~field:"output_filter")
              (Primitives.func_addr m "ngx_execute_proc");
            (* The `in` chain pointer aims at the live request buffer:
               turn it into a counterfeit exec context. *)
            match Machine.local_address m ~func:"ngx_http_handle_request" ~var:"buf" with
            | Some buf ->
              Primitives.poke m buf shell;
              Primitives.poke m (Machine.Memory.addr_add buf 1) 0L;
              Primitives.poke m (Machine.Memory.addr_add buf 2) 0L
            | None -> invalid_arg "control-jujutsu: buf not found")
          ();
    };
  ]

let all : Attack.t list =
  rop_user_command_attacks @ rop_root_attacks @ rop_mprotect_attacks @ direct_attacks
  @ indirect_attacks

let count = List.length all
