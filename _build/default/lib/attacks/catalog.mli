(** The 32-attack catalog of Table 6: 18 ROP payloads, 9 direct syscall
    manipulations (NEWTON CsCFI, AOCR NGINX-1, seven CVEs), 5 indirect
    manipulations (NEWTON CPI, AOCR Apache, AOCR NGINX-2, COOP,
    Control Jujutsu). *)

val all : Attack.t list
val count : int
