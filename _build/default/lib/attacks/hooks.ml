(* Trigger machinery: attacks fire their corruption scripts at precise
   execution points (function entry, a specific instruction, the n-th
   visit), via the machine's instruction hook. *)

type trigger =
  | At_entry of string              (** first instruction of a function *)
  | At_entry_nth of string * int    (** n-th entry of a function *)
  | At_loc of Sil.Loc.t

type hook = { trigger : trigger; action : Machine.t -> unit }

let install (m : Machine.t) (hooks : hook list) =
  let counters = Hashtbl.create 8 in
  let armed = Array.make (List.length hooks) true in
  m.on_instr <-
    Some
      (fun m (loc : Sil.Loc.t) ->
        List.iteri
          (fun i h ->
            if armed.(i) then begin
              let fire =
                match h.trigger with
                | At_entry func ->
                  String.equal loc.func func && String.equal loc.block "entry"
                  && loc.index = 0
                | At_entry_nth (func, n) ->
                  if
                    String.equal loc.func func && String.equal loc.block "entry"
                    && loc.index = 0
                  then begin
                    let c = 1 + Option.value ~default:0 (Hashtbl.find_opt counters i) in
                    Hashtbl.replace counters i c;
                    c = n
                  end
                  else false
                | At_loc l -> Sil.Loc.equal l loc
              in
              if fire then begin
                armed.(i) <- false;
                h.action m
              end
            end)
          hooks)
