(** Trigger machinery: attacks fire their corruption scripts at precise
    execution points via the machine's instruction hook.  Each hook
    fires at most once. *)

type trigger =
  | At_entry of string              (** first instruction of a function *)
  | At_entry_nth of string * int    (** the n-th entry of a function *)
  | At_loc of Sil.Loc.t

type hook = { trigger : trigger; action : Machine.t -> unit }

val install : Machine.t -> hook list -> unit
