(* Attacker primitives: the paper's threat model (§4) — arbitrary memory
   read/write through a memory-corruption vulnerability, with DEP and a
   hidden shadow region.

   The guard below enforces the threat-model boundary: writes to code
   and rodata fault (DEP / W^X) and the shadow region is unreachable
   (sparse-address-space information hiding, as in CPI/VIP); everything
   else — stack, heap, globals — is fair game. *)

exception Dep_violation of int64

let writable addr =
  let open Machine.Layout in
  not
    ((addr >= code_base && addr < data_base)  (* code + rodata *)
    || (addr >= shadow_base && addr < Int64.add shadow_base 0x1000_0000L))

(** Arbitrary write, respecting DEP and shadow-region hiding. *)
let poke (m : Machine.t) addr v =
  if not (writable addr) then raise (Dep_violation addr);
  Machine.poke m addr v

let peek = Machine.peek

(** Write a NUL-terminated string (one character per word) into
    attacker-reachable memory, e.g. a scratch buffer. *)
let plant_string (m : Machine.t) addr s =
  String.iteri
    (fun i c -> poke m (Machine.Memory.addr_add addr i) (Int64.of_int (Char.code c)))
    s;
  poke m (Machine.Memory.addr_add addr (String.length s)) 0L

(** Overwrite the return address of the innermost frame with [target]
    (a code address): the classic stack-smash control transfer. *)
let overwrite_return (m : Machine.t) target =
  match Machine.frames m with
  | frame :: _ when not (Int64.equal frame.ret_slot 0L) -> poke m frame.ret_slot target
  | _ -> invalid_arg "Primitives.overwrite_return: no overwritable frame"

(** Address of the first instruction of a function's entry block — the
    usual ROP "return into function body" target. *)
let gadget_entry (m : Machine.t) func =
  Machine.instr_address m (Sil.Loc.make func "entry" 0)

(** Address of a named global. *)
let global = Machine.global_address

(** Code address of a function (what a leaked function pointer holds). *)
let func_addr = Machine.function_address

(** Address of a struct field within a global. *)
let global_field (m : Machine.t) ~global:g ~struct_:s ~field =
  Machine.Memory.addr_add (Machine.global_address m g)
    (Sil.Types.field_offset m.prog.structs s field)
