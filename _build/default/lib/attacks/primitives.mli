(** Attacker primitives (§4 threat model): arbitrary memory read/write
    bounded by DEP/W^X (no code or rodata writes) and information
    hiding (the shadow region is unreachable). *)

exception Dep_violation of int64

(** Is an address within the attacker's write reach? *)
val writable : int64 -> bool

(** Arbitrary write.  @raise Dep_violation outside the reachable space. *)
val poke : Machine.t -> int64 -> int64 -> unit

val peek : Machine.t -> int64 -> int64

(** Write a NUL-terminated string into attacker-reachable memory. *)
val plant_string : Machine.t -> int64 -> string -> unit

(** Overwrite the innermost frame's return address (stack smash). *)
val overwrite_return : Machine.t -> int64 -> unit

(** Address of the first instruction of a function's entry block. *)
val gadget_entry : Machine.t -> string -> int64

val global : Machine.t -> string -> int64
val func_addr : Machine.t -> string -> int64

(** Address of a struct field within a global. *)
val global_field : Machine.t -> global:string -> struct_:string -> field:string -> int64
