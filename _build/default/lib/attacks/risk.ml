(* Empirical syscall danger ranking (§11.3).

   The paper notes there is no consensus on quantifying a syscall's
   "danger level" and that rankings so far are deduced empirically from
   case studies (Bernaschi et al., SecQuant).  With a concrete attack
   catalog we can do exactly that: score each syscall by how many
   catalog attacks need it as their goal, weighted by how many contexts
   fail to stop the attack (harder-to-stop goals are more dangerous). *)

type entry = {
  r_sysno : int;
  r_name : string;
  r_category : Kernel.Syscalls.category;
  r_attacks : int;         (** catalog attacks with this goal *)
  r_score : float;         (** weighted danger score *)
}

(** Weight of one attack: 1 plus one unit per context it bypasses. *)
let attack_weight (a : Attack.t) =
  let bypasses = function true -> 0.0 | false -> 1.0 in
  1.0
  +. bypasses a.a_expected.e_ct
  +. bypasses a.a_expected.e_cf
  +. bypasses a.a_expected.e_ai

let rank ?(catalog = Catalog.all) () : entry list =
  let tally = Hashtbl.create 16 in
  List.iter
    (fun (a : Attack.t) ->
      let nr = Kernel.Syscalls.number a.a_goal in
      let n, s = Option.value ~default:(0, 0.0) (Hashtbl.find_opt tally nr) in
      Hashtbl.replace tally nr (n + 1, s +. attack_weight a))
    catalog;
  Hashtbl.fold
    (fun nr (n, s) acc ->
      {
        r_sysno = nr;
        r_name = Kernel.Syscalls.name nr;
        r_category = Kernel.Syscalls.category nr;
        r_attacks = n;
        r_score = s;
      }
      :: acc)
    tally []
  |> List.sort (fun a b -> compare (b.r_score, b.r_name) (a.r_score, a.r_name))

(** Sanity property the paper's Table 1 selection implies: every goal
    syscall of the catalog is in the sensitive set. *)
let all_goals_sensitive ?(catalog = Catalog.all) () =
  List.for_all
    (fun (a : Attack.t) ->
      Kernel.Syscalls.is_sensitive (Kernel.Syscalls.number a.a_goal)
      || Kernel.Syscalls.is_filesystem (Kernel.Syscalls.number a.a_goal))
    catalog
