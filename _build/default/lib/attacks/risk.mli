(** Empirical syscall danger ranking (§11.3): score syscalls by how
    many catalog attacks target them, weighted by how many contexts the
    attack bypasses — the kind of empirical ranking the paper says the
    field still lacks. *)

type entry = {
  r_sysno : int;
  r_name : string;
  r_category : Kernel.Syscalls.category;
  r_attacks : int;   (** catalog attacks with this goal *)
  r_score : float;   (** weighted danger score *)
}

val attack_weight : Attack.t -> float

(** Ranking over a catalog (default: the full Table 6 catalog),
    most dangerous first. *)
val rank : ?catalog:Attack.t list -> unit -> entry list

(** Every catalog goal lies within BASTION's protected scope. *)
val all_goals_sensitive : ?catalog:Attack.t list -> unit -> bool
