(* Victim programs for the security case studies (Table 6).

   Besides the NGINX model (shared with the performance evaluation),
   the catalog needs the other applications the paper's attacks target:
   an Apache-like server (AOCR), a Chrome-like renderer (COOP), a
   dynamically-linked app that never calls mprotect (NEWTON CsCFI), a
   privileged daemon (root-command ROP), and the applications behind
   the seven CVEs (ffmpeg, php, sudo, libtiff, python), modelled as
   dispatch-table interpreters with the relevant corruptible pointer. *)

module B = Sil.Builder
open Sil.Operand

let i64 = Sil.Types.I64
let ptr = Sil.Types.Ptr Sil.Types.I64

type t = {
  v_name : string;
  v_build : unit -> Sil.Prog.t;
  v_setup : Kernel.Process.t -> unit;
}

(* ------------------------------------------------------------------ *)
(* NGINX (shared with the performance workloads, small scale)          *)

let nginx_params =
  {
    Workloads.Nginx_model.default with
    connections = 3;
    requests_per_conn = 2;
    init_mmap = 8;
    init_mprotect = 6;
    workers = 2;
    filler = false;
  }

let nginx =
  {
    v_name = "nginx";
    v_build = (fun () -> Workloads.Nginx_model.build nginx_params);
    v_setup = Workloads.Nginx_model.setup nginx_params;
  }

(* SQLite, small scale: victim of a memory-permission ROP. *)
let sqlite_params =
  {
    Workloads.Sqlite_model.default with
    connections = 2;
    txns_per_conn = 4;
    mprotect_every = 2;
    filler = false;
  }

let sqlite =
  {
    v_name = "sqlite";
    v_build = (fun () -> Workloads.Sqlite_model.build sqlite_params);
    v_setup = Workloads.Sqlite_model.setup sqlite_params;
  }

(* ------------------------------------------------------------------ *)
(* Apache-like server (AOCR Apache attack)                             *)

let apache_requests = 4
let apache_port = 8080

let apache_build () =
  let pb = B.program () in
  Kernel.Syscalls.declare_stubs pb;
  B.struct_ pb "piped_log_t" [ ("writer", ptr); ("arg", i64) ];
  B.global pb "g_plog" (Sil.Types.Struct "piped_log_t") Sil.Prog.Zero;
  B.global pb "g_exec_cmdline" ptr Sil.Prog.Zero;
  B.global pb "g_rotate" i64 Sil.Prog.Zero;
  B.global pb "g_listen_fd" i64 Sil.Prog.Zero;
  B.global pb "g_scratch" (Sil.Types.Array (i64, 24)) Sil.Prog.Zero;
  (* The legitimate log writer (address-taken: stored in g_plog). *)
  let fb = B.func pb "ap_log_writer" ~params:[ ("x", i64) ] in
  let y = B.local fb "y" i64 in
  B.binop fb y Sil.Instr.Add (Var (B.param fb 0)) (const 1);
  B.ret fb (Some (Var y));
  B.seal fb;
  (* exec_cmd: the only execve user. *)
  let fb = B.func pb "exec_cmd" ~params:[ ("cmd", ptr) ] in
  B.call fb "execve" [ Var (B.param fb 0); Null; Null ];
  B.ret fb None;
  B.seal fb;
  (* ap_get_exec_line: reads the configured command line and execs it.
     Its address is never legitimately taken. *)
  let fb = B.func pb "ap_get_exec_line" ~params:[ ("unused", i64) ] in
  let cmd = B.local fb "cmd" ptr in
  B.load fb cmd (Sil.Place.Lglobal "g_exec_cmdline");
  B.call fb "exec_cmd" [ Var cmd ];
  B.ret fb (Some (const 0));
  B.seal fb;
  (* Request handling: the corruptible indirect call through g_plog. *)
  let fb = B.func pb "ap_handle_request" ~params:[ ("fd", i64) ] in
  let w = B.local fb "w" ptr in
  let r = B.local fb "r" i64 in
  let plogp = B.local fb "plogp" ptr in
  B.call fb ~dst:r "read" [ Var (B.param fb 0); Null; const 16 ];
  B.addr_of fb plogp (Sil.Place.Lglobal "g_plog");
  B.load fb w (Sil.Place.Lfield (Var plogp, "piped_log_t", "writer"));
  B.call_indirect fb ~dst:r (Var w) [ Var (B.param fb 0) ];
  B.call fb "write" [ Var (B.param fb 0); Null; const 8 ];
  B.call fb "close" [ Var (B.param fb 0) ];
  B.ret fb None;
  B.seal fb;
  (* main *)
  let fb = B.func pb "main" ~params:[] in
  let plogp = B.local fb "plogp" ptr in
  let s = B.local fb "s" i64 in
  let sa = B.local fb "sa" (Sil.Types.Array (i64, 2)) in
  let sap = B.local fb "sap" ptr in
  let cfd = B.local fb "cfd" i64 in
  let got = B.local fb "got" i64 in
  let rotate = B.local fb "rotate" i64 in
  B.addr_of fb plogp (Sil.Place.Lglobal "g_plog");
  B.store fb (Sil.Place.Lfield (Var plogp, "piped_log_t", "writer")) (Func_addr "ap_log_writer");
  B.store fb (Sil.Place.Lglobal "g_exec_cmdline") (Cstr "/usr/sbin/rotatelogs");
  B.call fb ~dst:s "socket" [ const 2; const 1; const 0 ];
  B.store fb (Sil.Place.Lglobal "g_listen_fd") (Var s);
  B.call fb "bind" [ Var s; const apache_port ];
  B.call fb "listen" [ Var s; const 64 ];
  (* Legitimate (rarely-taken) log-rotation path. *)
  B.load fb rotate (Sil.Place.Lglobal "g_rotate");
  B.branch fb (Var rotate) "do_rotate" "serve";
  B.block fb "do_rotate";
  B.call fb "ap_get_exec_line" [ const 0 ];
  B.jump fb "serve";
  B.block fb "serve";
  B.addr_of fb sap (Sil.Place.Lvar sa);
  B.block fb "accept_loop";
  B.call fb ~dst:cfd "accept" [ Var s; Var sap; const 2 ];
  B.binop fb got Sil.Instr.Ge (Var cfd) (const 0);
  B.branch fb (Var got) "handle" "done";
  B.block fb "handle";
  B.call fb "ap_handle_request" [ Var cfd ];
  B.jump fb "accept_loop";
  B.block fb "done";
  B.halt fb;
  B.seal fb;
  B.build pb ~entry:"main"

let apache =
  {
    v_name = "apache";
    v_build = apache_build;
    v_setup =
      (fun proc ->
        for _ = 1 to apache_requests do
          ignore (Kernel.Net.enqueue proc.net apache_port ~request_words:16 ~payload:"GET /")
        done);
  }

(* ------------------------------------------------------------------ *)
(* Chrome-like renderer (COOP)                                         *)

let chrome_build () =
  let pb = B.program () in
  Kernel.Syscalls.declare_stubs pb;
  B.struct_ pb "gfx_obj_t" [ ("vt", ptr); ("p1", i64); ("p2", i64) ];
  B.global pb "g_objs" (Sil.Types.Array (Sil.Types.Struct "gfx_obj_t", 4)) Sil.Prog.Zero;
  B.global pb "g_jit_region" ptr Sil.Prog.Zero;
  B.global pb "g_scratch" (Sil.Types.Array (i64, 24)) Sil.Prog.Zero;
  (* Virtual functions. *)
  let fb = B.func pb "vfunc_render" ~params:[ ("p1", i64); ("p2", i64) ] in
  let x = B.local fb "x" i64 in
  B.binop fb x Sil.Instr.Mul (Var (B.param fb 0)) (const 7);
  B.binop fb x Sil.Instr.Add (Var x) (Var (B.param fb 1));
  B.ret fb (Some (Var x));
  B.seal fb;
  (* The JIT's W^X transition: a legitimate virtual method whose
     mprotect argument flows from its parameters. *)
  let fb = B.func pb "vfunc_jit_protect" ~params:[ ("region", i64); ("prot", i64) ] in
  B.call fb "mprotect" [ Var (B.param fb 0); const 4096; Var (B.param fb 1) ];
  B.ret fb (Some (const 0));
  B.seal fb;
  (* The renderer's virtual dispatch loop. *)
  let fb = B.func pb "render_pass" ~params:[ ("n", i64) ] in
  let base = B.local fb "base" ptr in
  let objp = B.local fb "objp" ptr in
  let vt = B.local fb "vt" ptr in
  let p1 = B.local fb "p1" i64 in
  let p2 = B.local fb "p2" i64 in
  let slot = B.local fb "slot" i64 in
  let i = B.local fb "i" i64 in
  let c = B.local fb "c" i64 in
  B.addr_of fb base (Sil.Place.Lglobal "g_objs");
  B.set fb i (const 0);
  B.block fb "head";
  B.binop fb c Sil.Instr.Lt (Var i) (Var (B.param fb 0));
  B.branch fb (Var c) "body" "done";
  B.block fb "body";
  B.binop fb slot Sil.Instr.And (Var i) (const 3);
  B.addr_of fb objp (Sil.Place.Lindex (Var base, Var slot, Sil.Types.Struct "gfx_obj_t"));
  B.load fb vt (Sil.Place.Lfield (Var objp, "gfx_obj_t", "vt"));
  B.load fb p1 (Sil.Place.Lfield (Var objp, "gfx_obj_t", "p1"));
  B.load fb p2 (Sil.Place.Lfield (Var objp, "gfx_obj_t", "p2"));
  B.call_indirect fb (Var vt) [ Var p1; Var p2 ];
  B.binop fb i Sil.Instr.Add (Var i) (const 1);
  B.jump fb "head";
  B.block fb "done";
  B.ret fb None;
  B.seal fb;
  (* main: allocate the JIT region, populate the object table (the
     fourth object legitimately performs the W^X transition), render. *)
  let fb = B.func pb "main" ~params:[] in
  let jit = B.local fb "jit" ptr in
  let base = B.local fb "base" ptr in
  let objp = B.local fb "objp" ptr in
  B.call fb ~dst:jit "mmap" [ Null; const 4096; const 3; const 2; const (-1); const 0 ];
  B.store fb (Sil.Place.Lglobal "g_jit_region") (Var jit);
  B.addr_of fb base (Sil.Place.Lglobal "g_objs");
  List.iteri
    (fun idx (vt, p1_is_jit, p2) ->
      B.addr_of fb objp (Sil.Place.Lindex (Var base, const idx, Sil.Types.Struct "gfx_obj_t"));
      B.store fb (Sil.Place.Lfield (Var objp, "gfx_obj_t", "vt")) (Func_addr vt);
      if p1_is_jit then
        B.store fb (Sil.Place.Lfield (Var objp, "gfx_obj_t", "p1")) (Var jit)
      else B.store fb (Sil.Place.Lfield (Var objp, "gfx_obj_t", "p1")) (const (idx * 3));
      B.store fb (Sil.Place.Lfield (Var objp, "gfx_obj_t", "p2")) (const p2))
    [
      ("vfunc_render", false, 2);
      ("vfunc_render", false, 4);
      ("vfunc_render", false, 6);
      ("vfunc_jit_protect", true, 5);  (* PROT_READ|PROT_EXEC: the benign W^X flip *)
    ];
  B.call fb "render_pass" [ const 16 ];
  B.call fb "render_pass" [ const 16 ];
  B.halt fb;
  B.seal fb;
  B.build pb ~entry:"main"

let chrome = { v_name = "chrome"; v_build = chrome_build; v_setup = (fun _ -> ()) }

(* ------------------------------------------------------------------ *)
(* Plugin host that never calls mprotect (NEWTON CsCFI victim)         *)

let loader_build () =
  let pb = B.program () in
  Kernel.Syscalls.declare_stubs pb;
  B.global pb "g_plugin" ptr (Sil.Prog.Fptr "plugin_log");
  B.global pb "g_scratch" (Sil.Types.Array (i64, 24)) Sil.Prog.Zero;
  (* The benign plugin hook: same C type as mprotect(void*,size_t,int). *)
  let fb = B.func pb "plugin_log" ~params:[ ("buf", i64); ("len", i64); ("flags", i64) ] in
  let x = B.local fb "x" i64 in
  B.binop fb x Sil.Instr.Add (Var (B.param fb 1)) (Var (B.param fb 2));
  B.ret fb (Some (Var x));
  B.seal fb;
  let fb = B.func pb "process_event" ~params:[ ("ev", i64) ] in
  let h = B.local fb "h" ptr in
  B.load fb h (Sil.Place.Lglobal "g_plugin");
  B.call_indirect fb (Var h) [ Var (B.param fb 0); const 4096; const 7 ];
  B.ret fb None;
  B.seal fb;
  let fb = B.func pb "main" ~params:[] in
  let fd = B.local fb "fd" i64 in
  B.call fb ~dst:fd "open" [ Cstr "/etc/app.conf"; const 0 ];
  B.call fb "read" [ Var fd; Null; const 8 ];
  B.call fb "close" [ Var fd ];
  Workloads.Appkit.counted_loop fb ~tag:"events" ~count:6 (fun fb ->
      B.call fb "process_event" [ const 1 ]);
  B.halt fb;
  B.seal fb;
  B.build pb ~entry:"main"

let loader_app =
  {
    v_name = "loader_app";
    v_build = loader_build;
    v_setup = (fun proc -> Kernel.Vfs.add_file proc.vfs "/etc/app.conf" ~size_words:8);
  }

(* ------------------------------------------------------------------ *)
(* Privileged daemon (root-command ROP victim)                         *)

let priv_daemon_build () =
  let pb = B.program () in
  Kernel.Syscalls.declare_stubs pb;
  B.global pb "g_cfg_uid" i64 (Sil.Prog.Word 1000L);
  B.global pb "g_helper_path" ptr Sil.Prog.Zero;
  B.global pb "g_scratch" (Sil.Types.Array (i64, 24)) Sil.Prog.Zero;
  (* drop_privileges: setuid with a configuration-derived uid. *)
  let fb = B.func pb "drop_privileges" ~params:[] in
  let uid = B.local fb "uid" i64 in
  B.load fb uid (Sil.Place.Lglobal "g_cfg_uid");
  B.call fb "setuid" [ Var uid ];
  B.call fb "setgid" [ Var uid ];
  B.ret fb None;
  B.seal fb;
  (* run_helper: forks and execs the configured helper binary. *)
  let fb = B.func pb "run_helper" ~params:[] in
  let path = B.local fb "path" ptr in
  B.call fb "fork" [];
  B.load fb path (Sil.Place.Lglobal "g_helper_path");
  B.call fb "execve" [ Var path; Null; Null ];
  B.ret fb None;
  B.seal fb;
  (* checksum: a pure worker containing the stack-overflow bug. *)
  let fb = B.func pb "checksum" ~params:[ ("x", i64) ] in
  let acc = B.local fb "acc" i64 in
  B.set fb acc (Var (B.param fb 0));
  Workloads.Appkit.compute_loop fb ~tag:"mix" ~iters:8;
  B.binop fb acc Sil.Instr.Xor (Var acc) (const 0xABCD);
  B.ret fb (Some (Var acc));
  B.seal fb;
  let fb = B.func pb "main" ~params:[] in
  let need_helper = B.local fb "need_helper" i64 in
  B.store fb (Sil.Place.Lglobal "g_helper_path") (Cstr "/usr/libexec/helper");
  B.call fb "drop_privileges" [];
  Workloads.Appkit.counted_loop fb ~tag:"work" ~count:5 (fun fb ->
      B.call fb "checksum" [ const 41 ]);
  (* Rare maintenance path keeps run_helper reachable. *)
  B.set fb need_helper (const 0);
  B.branch fb (Var need_helper) "helper" "done";
  B.block fb "helper";
  B.call fb "run_helper" [];
  B.jump fb "done";
  B.block fb "done";
  B.halt fb;
  B.seal fb;
  B.build pb ~entry:"main"

let priv_daemon =
  { v_name = "priv_daemon"; v_build = priv_daemon_build; v_setup = (fun _ -> ()) }

(* ------------------------------------------------------------------ *)
(* Dispatch-table applications behind the CVE exploits                 *)

type dispatch_shape = {
  d_name : string;
  d_input : string;            (** input file the app parses *)
  d_legit_exec : bool;         (** app legitimately execs (sudo) *)
  d_legit_fork : bool;         (** app legitimately forks (python) *)
  d_handlers : int;            (** dispatch table size *)
}

(** A parser/interpreter with a handler dispatch table — the common
    skeleton of the ffmpeg/php/libtiff/python/sudo victims.  Each
    instance differs in its table size, input and legitimate sensitive
    syscall usage; the corruptible structure is the handler table. *)
let dispatch_build (d : dispatch_shape) () =
  let pb = B.program () in
  Kernel.Syscalls.declare_stubs pb;
  B.struct_ pb "handler_t" [ ("fn", ptr); ("priv", i64) ];
  B.global pb "g_handlers"
    (Sil.Types.Array (Sil.Types.Struct "handler_t", d.d_handlers))
    Sil.Prog.Zero;
  B.global pb "g_exec_path" ptr Sil.Prog.Zero;
  B.global pb "g_scratch" (Sil.Types.Array (i64, 24)) Sil.Prog.Zero;
  (* Benign handlers: two distinct ones so the table is heterogeneous. *)
  List.iter
    (fun name ->
      let fb = B.func pb name ~params:[ ("data", i64); ("len", i64); ("opt", i64) ] in
      let x = B.local fb "x" i64 in
      B.binop fb x Sil.Instr.Add (Var (B.param fb 0)) (Var (B.param fb 1));
      B.binop fb x Sil.Instr.Shl (Var x) (const 1);
      B.ret fb (Some (Var x));
      B.seal fb)
    [ "handle_chunk"; "handle_meta" ];
  (* libc is linked into every real binary: system() exists (and gives
     execve a direct callsite) even in applications that never call it —
     which is why Table 6's ROP rows show the Call-Type context bypassed
     everywhere. *)
  let fb = B.func pb "libc_system" ~params:[ ("cmd", ptr) ] in
  B.call fb "fork" [];
  B.call fb "execve" [ Var (B.param fb 0); Null; Null ];
  B.ret fb (Some (const 0));
  B.seal fb;
  (* Legitimate sensitive usage, when the real application has it. *)
  if d.d_legit_exec then begin
    let fb = B.func pb "spawn_command" ~params:[] in
    let path = B.local fb "path" ptr in
    B.load fb path (Sil.Place.Lglobal "g_exec_path");
    if d.d_legit_fork then B.call fb "fork" [];
    B.call fb "setuid" [ const 0 ];
    B.call fb "execve" [ Var path; Null; Null ];
    B.ret fb None;
    B.seal fb
  end
  else if d.d_legit_fork then begin
    let fb = B.func pb "spawn_worker" ~params:[] in
    B.call fb "fork" [];
    B.ret fb None;
    B.seal fb
  end;
  (* The parse loop with the indirect dispatch. *)
  let fb = B.func pb "parse_stream" ~params:[ ("n", i64) ] in
  let base = B.local fb "base" ptr in
  let hp = B.local fb "hp" ptr in
  let fn = B.local fb "fn" ptr in
  let priv = B.local fb "priv" i64 in
  let slot = B.local fb "slot" i64 in
  let i = B.local fb "i" i64 in
  let c = B.local fb "c" i64 in
  B.addr_of fb base (Sil.Place.Lglobal "g_handlers");
  B.set fb i (const 0);
  B.block fb "head";
  B.binop fb c Sil.Instr.Lt (Var i) (Var (B.param fb 0));
  B.branch fb (Var c) "body" "done";
  B.block fb "body";
  B.binop fb slot Sil.Instr.And (Var i) (const (d.d_handlers - 1));
  B.addr_of fb hp (Sil.Place.Lindex (Var base, Var slot, Sil.Types.Struct "handler_t"));
  B.load fb fn (Sil.Place.Lfield (Var hp, "handler_t", "fn"));
  B.load fb priv (Sil.Place.Lfield (Var hp, "handler_t", "priv"));
  B.call_indirect fb (Var fn) [ Var priv; const 64; const 0 ];
  B.binop fb i Sil.Instr.Add (Var i) (const 1);
  B.jump fb "head";
  B.block fb "done";
  B.ret fb None;
  B.seal fb;
  (* main: open the input, fill the table, parse. *)
  let fb = B.func pb "main" ~params:[] in
  let fd = B.local fb "fd" i64 in
  let base = B.local fb "base" ptr in
  let hp = B.local fb "hp" ptr in
  let flag = B.local fb "flag" i64 in
  B.store fb (Sil.Place.Lglobal "g_exec_path") (Cstr "/usr/bin/true");
  B.call fb ~dst:fd "open" [ Cstr d.d_input; const 0 ];
  B.call fb "read" [ Var fd; Null; const 32 ];
  B.addr_of fb base (Sil.Place.Lglobal "g_handlers");
  for idx = 0 to d.d_handlers - 1 do
    B.addr_of fb hp (Sil.Place.Lindex (Var base, const idx, Sil.Types.Struct "handler_t"));
    B.store fb
      (Sil.Place.Lfield (Var hp, "handler_t", "fn"))
      (Func_addr (if idx mod 2 = 0 then "handle_chunk" else "handle_meta"));
    B.store fb (Sil.Place.Lfield (Var hp, "handler_t", "priv")) (const (idx * 10))
  done;
  (* Rarely-taken legitimate paths keep the sensitive users reachable. *)
  B.set fb flag (const 0);
  (if d.d_legit_exec then begin
    B.branch fb (Var flag) "spawn" "parse";
    B.block fb "spawn";
    B.call fb "spawn_command" [];
    B.jump fb "parse";
    B.block fb "parse"
  end
  else if d.d_legit_fork then begin
    B.branch fb (Var flag) "spawn" "parse";
    B.block fb "spawn";
    B.call fb "spawn_worker" [];
    B.jump fb "parse";
    B.block fb "parse"
  end);
  B.call fb "parse_stream" [ const 12 ];
  B.call fb "close" [ Var fd ];
  B.halt fb;
  B.seal fb;
  B.build pb ~entry:"main"

let dispatch_victim (d : dispatch_shape) =
  {
    v_name = d.d_name;
    v_build = dispatch_build d;
    v_setup = (fun proc -> Kernel.Vfs.add_file proc.vfs d.d_input ~size_words:64);
  }

let ffmpeg_http =
  dispatch_victim
    { d_name = "ffmpeg-http"; d_input = "/tmp/in.avi"; d_legit_exec = false;
      d_legit_fork = false; d_handlers = 4 }

let ffmpeg_rtmp =
  dispatch_victim
    { d_name = "ffmpeg-rtmp"; d_input = "/tmp/in.flv"; d_legit_exec = false;
      d_legit_fork = false; d_handlers = 8 }

let php =
  dispatch_victim
    { d_name = "php"; d_input = "/var/www/app.php"; d_legit_exec = false;
      d_legit_fork = true; d_handlers = 8 }

let sudo =
  dispatch_victim
    { d_name = "sudo"; d_input = "/etc/sudoers"; d_legit_exec = true;
      d_legit_fork = true; d_handlers = 4 }

let libtiff =
  dispatch_victim
    { d_name = "libtiff"; d_input = "/tmp/in.tif"; d_legit_exec = false;
      d_legit_fork = false; d_handlers = 4 }

let python =
  dispatch_victim
    { d_name = "python"; d_input = "/usr/lib/app.py"; d_legit_exec = false;
      d_legit_fork = true; d_handlers = 8 }
