(** Victim programs for the Table 6 case studies: the NGINX model plus
    Apache-like (AOCR), Chrome-like (COOP), a plugin host that never
    calls mprotect (NEWTON CsCFI), a privileged daemon (root-command
    ROP), and dispatch-table models of the applications behind the
    seven CVEs. *)

type t = {
  v_name : string;
  v_build : unit -> Sil.Prog.t;
  v_setup : Kernel.Process.t -> unit;
}

val nginx_params : Workloads.Nginx_model.params
val nginx : t
val sqlite : t
val apache : t
val chrome : t
val loader_app : t
val priv_daemon : t

(** Shape of a dispatch-table victim. *)
type dispatch_shape = {
  d_name : string;
  d_input : string;
  d_legit_exec : bool;
  d_legit_fork : bool;
  d_handlers : int;
}

val dispatch_victim : dispatch_shape -> t

val ffmpeg_http : t
val ffmpeg_rtmp : t
val php : t
val sudo : t
val libtiff : t
val python : t
