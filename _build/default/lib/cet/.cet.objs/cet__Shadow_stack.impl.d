lib/cet/shadow_stack.ml: Int64 List
