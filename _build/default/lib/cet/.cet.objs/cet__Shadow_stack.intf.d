lib/cet/shadow_stack.mli:
