(* Hardware-style shadow stack (Intel CET, AMD Zen 3+).

   The CPU pushes a second copy of each return address onto a stack that
   ordinary stores cannot reach; on return it compares the program-stack
   copy with the shadow copy and faults on mismatch.  In the simulator
   the shadow stack is a plain OCaml structure deliberately *not* mapped
   into the corruptible machine memory, which is exactly the property
   the hardware provides. *)

type t = { mutable entries : int64 list; mutable pushes : int; mutable checks : int }

exception Violation of { expected : int64; actual : int64 }

exception Underflow

let create () = { entries = []; pushes = 0; checks = 0 }

let push t addr =
  t.pushes <- t.pushes + 1;
  t.entries <- addr :: t.entries

(** Pop and compare against the (possibly corrupted) program-stack return
    address.  Raises {!Violation} on mismatch, {!Underflow} on an empty
    shadow stack (a return with no matching call). *)
let pop_check t ~actual =
  t.checks <- t.checks + 1;
  match t.entries with
  | [] -> raise Underflow
  | expected :: rest ->
    t.entries <- rest;
    if not (Int64.equal expected actual) then raise (Violation { expected; actual })

let depth t = List.length t.entries
let pushes t = t.pushes
let checks t = t.checks
