(** Hardware-style shadow stack (Intel CET / AMD shadow stacks).

    The CPU pushes a second copy of each return address onto a stack
    ordinary stores cannot reach and compares on return.  In the
    simulator this structure is deliberately not mapped into the
    corruptible machine memory — exactly the property the hardware
    provides. *)

type t

exception Violation of { expected : int64; actual : int64 }
exception Underflow

val create : unit -> t

(** Record a return address at call time. *)
val push : t -> int64 -> unit

(** Pop and compare against the (possibly corrupted) program-stack
    return address.
    @raise Violation on mismatch.
    @raise Underflow on a return with no matching call. *)
val pop_check : t -> actual:int64 -> unit

val depth : t -> int
val pushes : t -> int
val checks : t -> int
