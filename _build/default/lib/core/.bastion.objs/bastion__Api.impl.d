lib/core/api.ml: Arg_analysis Calltype Cfg_analysis Hashtbl Instrument Kernel List Machine Metadata Monitor Runtime Sil
