lib/core/api.mli: Arg_analysis Calltype Cfg_analysis Instrument Kernel Machine Monitor Runtime Sil
