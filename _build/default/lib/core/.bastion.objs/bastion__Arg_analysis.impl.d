lib/core/arg_analysis.ml: Hashtbl List Queue Set Sil String
