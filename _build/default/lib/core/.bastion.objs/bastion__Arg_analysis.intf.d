lib/core/arg_analysis.mli: Hashtbl Set Sil
