lib/core/arg_rules.ml: Kernel
