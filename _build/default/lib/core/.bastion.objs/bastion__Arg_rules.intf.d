lib/core/arg_rules.mli: Kernel
