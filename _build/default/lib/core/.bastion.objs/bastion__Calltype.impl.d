lib/core/calltype.ml: Hashtbl List Option Sil
