lib/core/calltype.mli: Hashtbl Sil
