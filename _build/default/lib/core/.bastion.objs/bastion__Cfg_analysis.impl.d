lib/core/cfg_analysis.ml: Hashtbl List Map Option Queue Sil String
