lib/core/cfg_analysis.mli: Hashtbl Map Sil
