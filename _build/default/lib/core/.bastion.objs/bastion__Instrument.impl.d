lib/core/instrument.ml: Arg_analysis Array Fun Hashtbl Int64 List Printf Sil String
