lib/core/instrument.mli: Arg_analysis Sil
