lib/core/metadata.ml: Arg_analysis Calltype Cfg_analysis Fun Hashtbl Instrument List Machine Printf Sil String
