lib/core/metadata.mli: Arg_analysis Calltype Cfg_analysis Hashtbl Instrument Machine Sil
