lib/core/metadata_io.ml: Api Arg_analysis Buffer Calltype Cfg_analysis Hashtbl Instrument Int64 Kernel List Option Printf Scanf Sil String
