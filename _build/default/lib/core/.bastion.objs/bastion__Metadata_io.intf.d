lib/core/metadata_io.mli: Api Arg_analysis Calltype Instrument Sil
