lib/core/monitor.ml: Arg_rules Array Calltype Cfg_analysis Hashtbl Int64 Kernel List Logs Machine Metadata Printf Runtime Shadow_memory Sil String
