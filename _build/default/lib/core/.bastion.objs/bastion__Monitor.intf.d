lib/core/monitor.mli: Kernel Machine Metadata Runtime
