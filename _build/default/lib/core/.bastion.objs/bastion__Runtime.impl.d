lib/core/runtime.ml: Array Int64 List Machine Shadow_memory Sil
