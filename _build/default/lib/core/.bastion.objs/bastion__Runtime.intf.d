lib/core/runtime.mli: Machine Shadow_memory
