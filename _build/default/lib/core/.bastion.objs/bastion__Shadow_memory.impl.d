lib/core/shadow_memory.ml: Array Int64
