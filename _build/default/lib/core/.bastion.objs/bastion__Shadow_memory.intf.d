lib/core/shadow_memory.mli:
