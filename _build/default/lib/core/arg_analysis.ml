(* Argument-Integrity context analysis (§3.3, §6.3).

   Starting from the arguments of every sensitive system-call callsite,
   discover the set of *sensitive variables* — the arguments plus every
   variable in their use-def chains — via a field-sensitive,
   inter-procedural backward data-flow walk (§6.3.3):

   1. enumerate variables used as syscall arguments;
   2. traverse use-def chains backwards, adding defining variables;
   3. add writes to struct fields the chain flows through;
   4. when a chain reaches a function parameter, continue into every
      direct caller, additionally binding that argument position at the
      caller's callsite (the paper's bar()-callsite binding, Fig. 2).

   The result is the instrumentation plan: where ctx_write_mem must
   follow a store, and which argument positions of which callsites must
   be bound with ctx_bind_mem / ctx_bind_const. *)

type item =
  | S_local of string * Sil.Operand.var  (** function name, variable *)
  | S_global of string
  | S_field of string * string           (** struct name, field name *)

let item_compare = compare

module Item_set = Set.Make (struct
  type t = item

  let compare = item_compare
end)

(** How one argument position of a callsite is bound before the call. *)
type binding =
  | Bind_const of int64
  | Bind_cstr of string       (** constant string (rodata address) *)
  | Bind_faddr of string      (** constant function address *)
  | Bind_var of Sil.Operand.var
  | Bind_global of string

type plan = {
  pl_loc : Sil.Loc.t;            (** callsite in the ORIGINAL program *)
  pl_callee : string;
  pl_sysno : int option;         (** [Some nr] iff a syscall callsite *)
  mutable pl_args : (int * binding) list;  (** positions bound, ascending *)
}

type t = {
  items : Item_set.t;
  plans : (Sil.Loc.t, plan) Hashtbl.t;
}

let is_sensitive_local t fname v = Item_set.mem (S_local (fname, v)) t.items
let is_sensitive_global t g = Item_set.mem (S_global g) t.items
let is_sensitive_field t s f = Item_set.mem (S_field (s, f)) t.items

let sensitive_locals_of t fname =
  Item_set.fold
    (fun item acc ->
      match item with
      | S_local (f, v) when String.equal f fname -> v :: acc
      | S_local _ | S_global _ | S_field _ -> acc)
    t.items []

let sensitive_globals t =
  Item_set.fold
    (fun item acc -> match item with S_global g -> g :: acc | S_local _ | S_field _ -> acc)
    t.items []

let sensitive_fields t =
  Item_set.fold
    (fun item acc ->
      match item with S_field (s, f) -> (s, f) :: acc | S_local _ | S_global _ -> acc)
    t.items []

(* ------------------------------------------------------------------ *)
(* The worklist analysis                                               *)

(** All definitions of [v] inside [f]: [Assign (v, rv)] and
    [Store (Lvar v, op)] instructions. *)
let defs_of (f : Sil.Func.t) (v : Sil.Operand.var) =
  List.filter_map
    (fun (_, ins) ->
      match (ins : Sil.Instr.t) with
      | Assign (w, rv) when Sil.Operand.equal_var w v -> Some (`Rvalue rv)
      | Store (Lvar w, op) when Sil.Operand.equal_var w v -> Some (`Stored op)
      | Assign _ | Store _ | Call { dst = Some _; _ } when false -> None
      | Call { dst = Some w; _ } when Sil.Operand.equal_var w v -> Some `Call_result
      | Assign _ | Store _ | Call _ -> None)
    (Sil.Func.instrs f)

let param_index (f : Sil.Func.t) (v : Sil.Operand.var) =
  let rec go i = function
    | [] -> None
    | (w, _) :: rest ->
      if Sil.Operand.equal_var w v then Some i else go (i + 1) rest
  in
  go 0 f.params

let binding_of_operand (op : Sil.Operand.t) : binding =
  match op with
  | Const c -> Bind_const c
  | Null -> Bind_const 0L
  | Cstr s -> Bind_cstr s
  | Func_addr f -> Bind_faddr f
  | Var v -> Bind_var v
  | Global g -> Bind_global g

let analyze (prog : Sil.Prog.t) (cg : Sil.Callgraph.t) ~(sensitive_numbers : int list)
    : t =
  let items = ref Item_set.empty in
  let plans : (Sil.Loc.t, plan) Hashtbl.t = Hashtbl.create 64 in
  let work : item Queue.t = Queue.create () in
  let mark item =
    if not (Item_set.mem item !items) then begin
      items := Item_set.add item !items;
      Queue.push item work
    end
  in
  let mark_operand fname (op : Sil.Operand.t) =
    match op with
    | Var v -> mark (S_local (fname, v))
    | Global g -> mark (S_global g)
    | Const _ | Cstr _ | Func_addr _ | Null -> ()
  in
  let mark_place fname (p : Sil.Place.t) =
    match p with
    | Lvar v -> mark (S_local (fname, v))
    | Lglobal g -> mark (S_global g)
    | Lfield (_, s, f) -> mark (S_field (s, f))
    | Lindex _ | Lderef _ ->
      (* Writes through unanalysed pointers leave the shadow stale; the
         runtime detects the resulting mismatch (missing trace) rather
         than the analysis tracking it. *)
      ()
  in
  (* Create (or fetch) the callsite's plan: every sensitive syscall
     callsite gets one, even with no bindable arguments, so the monitor
     can recognise the callsite as traced. *)
  let ensure_plan ~(loc : Sil.Loc.t) ~callee ~sysno =
    match Hashtbl.find_opt plans loc with
    | Some p -> p
    | None ->
      let p = { pl_loc = loc; pl_callee = callee; pl_sysno = sysno; pl_args = [] } in
      Hashtbl.replace plans loc p;
      p
  in
  (* Bind position [pos] of the callsite at [loc] and mark the bound
     operand sensitive. *)
  let bind_at ~(loc : Sil.Loc.t) ~callee ~sysno ~pos (op : Sil.Operand.t) =
    let plan = ensure_plan ~loc ~callee ~sysno in
    if not (List.mem_assoc pos plan.pl_args) then begin
      plan.pl_args <- List.sort compare ((pos, binding_of_operand op) :: plan.pl_args);
      mark_operand loc.func op
    end
  in
  (* Seed: every argument of every sensitive syscall callsite. *)
  List.iter
    (fun (cs : Sil.Callgraph.callsite) ->
      match cs.cs_target with
      | Sil.Instr.Direct callee -> (
        match Hashtbl.find_opt prog.funcs callee with
        | Some stub -> (
          match Sil.Func.syscall_number stub with
          | Some nr when List.mem nr sensitive_numbers ->
            ignore (ensure_plan ~loc:cs.cs_loc ~callee ~sysno:(Some nr));
            List.iteri
              (fun pos op ->
                bind_at ~loc:cs.cs_loc ~callee ~sysno:(Some nr) ~pos op)
              cs.cs_args
          | Some _ | None -> ())
        | None -> ())
      | Sil.Instr.Indirect _ -> ())
    cg.callsites;
  (* Stores to a sensitive global/field make the stored value sensitive
     too (step 3 of §6.3.3). *)
  let mark_stores_to target =
    List.iter
      (fun ((loc : Sil.Loc.t), ins) ->
        match (ins : Sil.Instr.t) with
        | Store (place, op) ->
          let relevant =
            match (place, target) with
            | Sil.Place.Lglobal g, `Global g' -> String.equal g g'
            | Sil.Place.Lfield (_, s, f), `Field (s', f') ->
              String.equal s s' && String.equal f f'
            | (Lvar _ | Lglobal _ | Lfield _ | Lindex _ | Lderef _), _ -> false
          in
          if relevant then mark_operand loc.func op
        | Assign _ | Call _ -> ())
      (Sil.Prog.instrs prog)
  in
  (* Propagate backwards until fixpoint. *)
  while not (Queue.is_empty work) do
    match Queue.pop work with
    | S_global g -> mark_stores_to (`Global g)
    | S_field (s, f) -> mark_stores_to (`Field (s, f))
    | S_local (fname, v) -> (
      match Hashtbl.find_opt prog.funcs fname with
      | None -> ()
      | Some f ->
        List.iter
          (fun def ->
            match def with
            | `Rvalue (Sil.Instr.Use op) -> mark_operand fname op
            | `Rvalue (Sil.Instr.Load place) -> mark_place fname place
            | `Rvalue (Sil.Instr.Addr_of place) ->
              (* A buffer whose address flows into a syscall argument is
                 itself sensitive: extended-argument checking compares
                 its contents against their shadow. *)
              mark_place fname place
            | `Rvalue (Sil.Instr.Binop (_, a, b)) ->
              mark_operand fname a;
              mark_operand fname b
            | `Stored op -> mark_operand fname op
            | `Call_result -> ())
          (defs_of f v);
        (* Inter-procedural step: a sensitive parameter propagates to
           every direct caller, binding that argument position at the
           caller's callsite (Fig. 2: ctx_bind_mem_3(&flags) before
           bar()).  For address-taken functions the same propagation
           covers every arity-compatible indirect callsite — the
           "all possible use-def chains" of §6.3.3, which is what lets
           the Argument-Integrity context see through COOP-style
           virtual-call dispatch. *)
        (match param_index f v with
        | None -> ()
        | Some pos ->
          List.iter
            (fun (caller_site : Sil.Loc.t) ->
              match Sil.Prog.instr_at prog caller_site with
              | Sil.Instr.Call { args; _ } when pos < List.length args ->
                bind_at ~loc:caller_site ~callee:fname ~sysno:None ~pos
                  (List.nth args pos)
              | Sil.Instr.Call _ | Sil.Instr.Assign _ | Sil.Instr.Store _ -> ())
            (Sil.Callgraph.direct_callers_of cg fname);
          if Sil.Callgraph.is_address_taken cg fname then
            List.iter
              (fun (cs : Sil.Callgraph.callsite) ->
                if List.length cs.cs_args = List.length f.params && pos < List.length cs.cs_args
                then
                  bind_at ~loc:cs.cs_loc ~callee:fname ~sysno:None ~pos
                    (List.nth cs.cs_args pos))
              cg.indirect_callsites))
  done;
  { items = !items; plans }

let plan_at t loc = Hashtbl.find_opt t.plans loc

let plan_count t = Hashtbl.length t.plans

let all_plans t = Hashtbl.fold (fun _ p acc -> p :: acc) t.plans []
