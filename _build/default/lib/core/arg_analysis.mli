(** Argument-Integrity context analysis (§3.3, §6.3): discover the
    sensitive variables (syscall arguments plus their use-def chains,
    field-sensitive and inter-procedural) and produce the
    instrumentation plan — where ctx_write_mem must follow stores and
    which argument positions of which callsites must be bound. *)

(** One sensitive item. *)
type item =
  | S_local of string * Sil.Operand.var  (** function name, variable *)
  | S_global of string
  | S_field of string * string           (** struct name, field name *)

val item_compare : item -> item -> int

module Item_set : Set.S with type elt = item

(** How one argument position of a callsite is bound before the call. *)
type binding =
  | Bind_const of int64
  | Bind_cstr of string       (** constant string (rodata address) *)
  | Bind_faddr of string      (** constant function address *)
  | Bind_var of Sil.Operand.var
  | Bind_global of string

(** The per-callsite plan: which positions are bound, and whether the
    callsite is a syscall invocation ([pl_sysno]) or an
    argument-carrying call on a sensitive chain. *)
type plan = {
  pl_loc : Sil.Loc.t;            (** callsite in the ORIGINAL program *)
  pl_callee : string;
  pl_sysno : int option;
  mutable pl_args : (int * binding) list;
}

type t = { items : Item_set.t; plans : (Sil.Loc.t, plan) Hashtbl.t }

(** All definitions of a variable inside a function. *)
val defs_of :
  Sil.Func.t ->
  Sil.Operand.var ->
  [ `Rvalue of Sil.Instr.rvalue | `Stored of Sil.Operand.t | `Call_result ] list

val param_index : Sil.Func.t -> Sil.Operand.var -> int option
val binding_of_operand : Sil.Operand.t -> binding

val analyze : Sil.Prog.t -> Sil.Callgraph.t -> sensitive_numbers:int list -> t

val is_sensitive_local : t -> string -> Sil.Operand.var -> bool
val is_sensitive_global : t -> string -> bool
val is_sensitive_field : t -> string -> string -> bool

val sensitive_locals_of : t -> string -> Sil.Operand.var list
val sensitive_globals : t -> string list
val sensitive_fields : t -> (string * string) list

val plan_at : t -> Sil.Loc.t -> plan option
val plan_count : t -> int
val all_plans : t -> plan list
