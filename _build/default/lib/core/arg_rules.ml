(* Direct vs extended argument rules (§6.3.2).

   Whether an argument is verified by value (direct) or also by pointee
   contents (extended) is syscall- and position-specific, so it is not
   instrumented: the monitor recovers the syscall being verified and
   applies the rule itself.  accept/accept4's [struct sockaddr] argument
   gets the specialised fast-path verification §9.2 describes. *)

module Syscalls = Kernel.Syscalls

type kind =
  | Direct
  | Extended          (** verify pointer value and pointee contents *)
  | Sockaddr          (** extended, with the specialised sockaddr check *)

let kind ~sysno ~pos =
  match (Syscalls.name sysno, pos) with
  | "execve", (0 | 1 | 2) -> Extended
  | "execveat", 1 -> Extended
  | ("open" | "openat" | "stat" | "chmod"), 0 -> Extended
  | ("accept" | "accept4"), 1 -> Sockaddr
  | ("bind" | "connect"), 1 -> Direct
  | _, _ -> Direct

(** Maximum pointee words an extended check walks (strings/vectors are
    NUL-terminated well before this in the workloads). *)
let max_extended_words = 64
