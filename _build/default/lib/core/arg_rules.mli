(** Direct vs extended argument rules (§6.3.2).  The distinction is
    syscall- and position-specific, so it is not instrumented: the
    monitor recovers the syscall being verified and applies the rule. *)

module Syscalls = Kernel.Syscalls

type kind =
  | Direct     (** verify the value only *)
  | Extended   (** verify pointer value and pointee contents *)
  | Sockaddr   (** extended, with the specialised accept fast path *)

val kind : sysno:int -> pos:int -> kind

(** Maximum pointee words an extended check walks. *)
val max_extended_words : int
