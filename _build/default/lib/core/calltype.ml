(* Call-Type context analysis (§3.1, §6.1).

   Classifies every system call of the program as not-callable,
   directly-callable and/or indirectly-callable, and records the set of
   legitimate indirect callsites.  The classification drives both the
   seccomp filter (KILL not-callable syscalls outright, TRACE the rest)
   and the monitor's per-trap calling-convention check. *)

type call_type = { directly : bool; indirectly : bool }

let not_callable = { directly = false; indirectly = false }

type t = {
  by_sysno : (int, call_type) Hashtbl.t;   (** syscalls present in the program *)
  legit_indirect : Sil.Loc.Set.t;          (** all legitimate indirect callsites *)
  indirect_targets : (string, unit) Hashtbl.t;  (** address-taken functions *)
}

let analyze (prog : Sil.Prog.t) (cg : Sil.Callgraph.t) : t =
  let by_sysno = Hashtbl.create 32 in
  List.iter
    (fun (stub : Sil.Func.t) ->
      match Sil.Func.syscall_number stub with
      | None -> ()
      | Some nr ->
        let directly = Sil.Callgraph.direct_callers_of cg stub.fname <> [] in
        let indirectly = Sil.Callgraph.is_address_taken cg stub.fname in
        if directly || indirectly then
          Hashtbl.replace by_sysno nr { directly; indirectly })
    (Sil.Prog.syscall_stubs prog);
  let legit_indirect =
    List.fold_left
      (fun acc (cs : Sil.Callgraph.callsite) -> Sil.Loc.Set.add cs.cs_loc acc)
      Sil.Loc.Set.empty cg.indirect_callsites
  in
  let indirect_targets = Hashtbl.create 64 in
  Sil.Callgraph.Sset.iter
    (fun f -> Hashtbl.replace indirect_targets f ())
    cg.address_taken;
  { by_sysno; legit_indirect; indirect_targets }

(** The call type of syscall [nr]; [not_callable] when absent. *)
let call_type t nr = Option.value ~default:not_callable (Hashtbl.find_opt t.by_sysno nr)

let is_legit_indirect_callsite t loc = Sil.Loc.Set.mem loc t.legit_indirect

let is_indirect_target t fname = Hashtbl.mem t.indirect_targets fname

(** Number of *sensitive* syscalls the program can call indirectly
    (Table 5 row 5; zero for all three paper applications). *)
let sensitive_indirect_count t ~sensitive_numbers =
  List.fold_left
    (fun acc nr -> if (call_type t nr).indirectly then acc + 1 else acc)
    0 sensitive_numbers
