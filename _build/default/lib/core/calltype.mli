(** Call-Type context analysis (§3.1, §6.1): classify every syscall as
    not-callable, directly-callable and/or indirectly-callable, and
    record the legitimate indirect callsites. *)

(** Allowed calling conventions for one syscall. *)
type call_type = { directly : bool; indirectly : bool }

val not_callable : call_type

type t = {
  by_sysno : (int, call_type) Hashtbl.t;   (** syscalls present in the program *)
  legit_indirect : Sil.Loc.Set.t;          (** all legitimate indirect callsites *)
  indirect_targets : (string, unit) Hashtbl.t;  (** address-taken functions *)
}

val analyze : Sil.Prog.t -> Sil.Callgraph.t -> t

(** The call type of a syscall number; {!not_callable} when absent. *)
val call_type : t -> int -> call_type

val is_legit_indirect_callsite : t -> Sil.Loc.t -> bool
val is_indirect_target : t -> string -> bool

(** Number of sensitive syscalls callable indirectly (Table 5 row 5;
    zero for all three paper applications). *)
val sensitive_indirect_count : t -> sensitive_numbers:int list -> int
