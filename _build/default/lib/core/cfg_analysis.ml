(* Control-Flow context analysis (§3.2, §6.2).

   For every sensitive system-call callsite, recursively record the
   callee -> caller-site relations that can legitimately appear on the
   stack when the call executes.  Recursion stops at [main] (the program
   entry) or at an indirect callsite — the runtime monitor verifies the
   partial trace up to that point (§7.3). *)

module Smap = Map.Make (String)

type t = {
  valid_callers : (string, Sil.Loc.Set.t) Hashtbl.t;
      (** callee function -> legitimate direct callsites of it, restricted
          to functions on some path to a sensitive syscall *)
  covered : (string, unit) Hashtbl.t;
      (** functions appearing on some legitimate path *)
  sensitive_callsites : Sil.Loc.Set.t;
      (** callsites that invoke a sensitive syscall stub *)
}

let analyze (prog : Sil.Prog.t) (cg : Sil.Callgraph.t) ~(sensitive_numbers : int list)
    : t =
  let valid_callers = Hashtbl.create 64 in
  let covered = Hashtbl.create 64 in
  let add_pair ~callee ~caller_site =
    let existing =
      Option.value ~default:Sil.Loc.Set.empty (Hashtbl.find_opt valid_callers callee)
    in
    Hashtbl.replace valid_callers callee (Sil.Loc.Set.add caller_site existing)
  in
  (* Seed: functions containing a sensitive syscall callsite. *)
  let sensitive_callsites =
    List.fold_left
      (fun acc (cs : Sil.Callgraph.callsite) ->
        match cs.cs_target with
        | Sil.Instr.Direct callee -> (
          match Hashtbl.find_opt prog.funcs callee with
          | Some f -> (
            match Sil.Func.syscall_number f with
            | Some nr when List.mem nr sensitive_numbers ->
              add_pair ~callee ~caller_site:cs.cs_loc;
              Sil.Loc.Set.add cs.cs_loc acc
            | Some _ | None -> acc)
          | None -> acc)
        | Sil.Instr.Indirect _ -> acc)
      Sil.Loc.Set.empty cg.callsites
  in
  (* Walk callee->caller edges upward from those functions. *)
  let queue = Queue.create () in
  let seen = Hashtbl.create 64 in
  Sil.Loc.Set.iter
    (fun (loc : Sil.Loc.t) ->
      if not (Hashtbl.mem seen loc.func) then begin
        Hashtbl.replace seen loc.func ();
        Queue.push loc.func queue
      end)
    sensitive_callsites;
  while not (Queue.is_empty queue) do
    let fname = Queue.pop queue in
    Hashtbl.replace covered fname ();
    if not (String.equal fname prog.entry) then
      List.iter
        (fun (caller_site : Sil.Loc.t) ->
          add_pair ~callee:fname ~caller_site;
          if not (Hashtbl.mem seen caller_site.func) then begin
            Hashtbl.replace seen caller_site.func ();
            Queue.push caller_site.func queue
          end)
        (Sil.Callgraph.direct_callers_of cg fname)
    (* Functions reached only indirectly contribute no further direct
       pairs: the monitor stops unwinding at the indirect callsite. *)
  done;
  { valid_callers; covered; sensitive_callsites }

let is_valid_caller t ~callee ~caller_site =
  match Hashtbl.find_opt t.valid_callers callee with
  | Some set -> Sil.Loc.Set.mem caller_site set
  | None -> false

let is_covered t fname = Hashtbl.mem t.covered fname

let is_sensitive_callsite t loc = Sil.Loc.Set.mem loc t.sensitive_callsites

(** Total number of recorded callee->caller pairs (metadata size). *)
let pair_count t =
  Hashtbl.fold (fun _ set acc -> acc + Sil.Loc.Set.cardinal set) t.valid_callers 0
