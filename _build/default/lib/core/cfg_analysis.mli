(** Control-Flow context analysis (§3.2, §6.2): for every sensitive
    syscall callsite, the callee -> caller-site relations that may
    legitimately appear on the stack, recorded up to [main] or the
    nearest indirect callsite. *)

module Smap : Map.S with type key = string

type t = {
  valid_callers : (string, Sil.Loc.Set.t) Hashtbl.t;
      (** callee -> its legitimate direct callsites, restricted to
          functions on some path to a sensitive syscall *)
  covered : (string, unit) Hashtbl.t;
      (** functions appearing on some legitimate path *)
  sensitive_callsites : Sil.Loc.Set.t;
      (** callsites that invoke a sensitive syscall stub *)
}

val analyze : Sil.Prog.t -> Sil.Callgraph.t -> sensitive_numbers:int list -> t

val is_valid_caller : t -> callee:string -> caller_site:Sil.Loc.t -> bool
val is_covered : t -> string -> bool
val is_sensitive_callsite : t -> Sil.Loc.t -> bool

(** Total callee->caller pairs recorded (metadata size). *)
val pair_count : t -> int
