lib/defenses/debloat.ml: Hashtbl List Queue Set Sil String Syscall_filter
