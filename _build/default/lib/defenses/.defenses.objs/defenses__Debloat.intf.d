lib/defenses/debloat.mli: Set Sil
