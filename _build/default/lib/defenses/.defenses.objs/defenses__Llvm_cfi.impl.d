lib/defenses/llvm_cfi.ml: Hashtbl Kernel List Machine Sil String
