lib/defenses/llvm_cfi.mli: Hashtbl Machine Sil
