lib/defenses/syscall_filter.ml: Kernel List Sil
