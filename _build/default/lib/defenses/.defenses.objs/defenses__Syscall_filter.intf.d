lib/defenses/syscall_filter.mli: Kernel Sil
