(* Debloating baseline (§2.2): carve unused functions out of the binary.
   Unreachable functions (never called directly, address never taken)
   are removed; the syscalls only they used disappear with them.  As the
   paper notes, sensitive syscalls used for program/library loading
   survive debloating — here, any syscall with a remaining caller
   survives. *)

module Sset = Set.Make (String)

(** Compute the reachable-function set from the entry point, following
    direct calls and treating every address-taken function as reachable
    (a conservative static debloater). *)
let reachable (prog : Sil.Prog.t) : Sset.t =
  let cg = Sil.Callgraph.build prog in
  let seen = ref Sset.empty in
  let queue = Queue.create () in
  let push f =
    if (not (Sset.mem f !seen)) && Hashtbl.mem prog.funcs f then begin
      seen := Sset.add f !seen;
      Queue.push f queue
    end
  in
  push prog.entry;
  Sil.Callgraph.Sset.iter push cg.address_taken;
  while not (Queue.is_empty queue) do
    let fname = Queue.pop queue in
    let f = Sil.Prog.find_func prog fname in
    List.iter
      (fun (_, ins) ->
        match (ins : Sil.Instr.t) with
        | Call { target = Direct callee; _ } -> push callee
        | Call { target = Indirect _; _ } | Assign _ | Store _ -> ())
      (Sil.Func.instrs f)
  done;
  !seen

(** The debloated program: unreachable application functions removed. *)
let run (prog : Sil.Prog.t) : Sil.Prog.t * int =
  let keep = reachable prog in
  let funcs = Hashtbl.create (Hashtbl.length prog.funcs) in
  let removed = ref 0 in
  Hashtbl.iter
    (fun name (f : Sil.Func.t) ->
      match f.kind with
      | Sil.Func.App_code ->
        if Sset.mem name keep then Hashtbl.replace funcs name f else incr removed
      | Sil.Func.Syscall_stub _ | Sil.Func.Intrinsic _ -> Hashtbl.replace funcs name f)
    prog.funcs;
  ( { Sil.Prog.structs = prog.structs; globals = prog.globals; funcs; entry = prog.entry },
    !removed )

(** Syscalls still invocable after debloating. *)
let surviving_syscalls (prog : Sil.Prog.t) =
  let debloated, _ = run prog in
  Syscall_filter.allowlist_of_program debloated
