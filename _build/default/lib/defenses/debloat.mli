(** Debloating baseline (§2.2): remove functions unreachable from the
    entry point (address-taken functions are conservatively kept).  As
    the paper notes, sensitive syscalls with remaining callers survive
    debloating. *)

module Sset : Set.S with type elt = string

(** Reachable-function set (entry + direct calls + address-taken). *)
val reachable : Sil.Prog.t -> Sset.t

(** The debloated program and the number of functions removed. *)
val run : Sil.Prog.t -> Sil.Prog.t * int

(** Syscalls still invocable after debloating. *)
val surviving_syscalls : Sil.Prog.t -> int list
