(* The LLVM CFI baseline (clang -fsanitize=cfi), as characterised in §9.2
   and §10: a coarse-grained, type-based forward-edge check performed at
   *every* indirect callsite.

   The target of an indirect call must be (a) an address-taken function
   and (b) in the same type equivalence class as the callsite.  We model
   the equivalence class the way clang's icall scheme degrades in
   practice on C code: by signature shape (arity + parameter shapes).
   This reproduces both of the paper's bypass stories: a syscall wrapper
   whose address is taken for lazy binding (CsCFI) and a type-matched
   code pointer (AOCR) both pass the check, while arity-mismatched
   redirects are caught. *)

type t = {
  mutable checks : int;
  mutable violations : int;
  classes : (string, string) Hashtbl.t;  (** function -> signature class *)
  address_taken : (string, unit) Hashtbl.t;
  callsite_class : (Sil.Loc.t, string) Hashtbl.t;  (** expected class per callsite *)
}

let class_of_arity n =
  String.concat "" ("i:" :: List.init n (fun _ -> "w"))

(** A syscall stub's class uses its C prototype (what the PLT-visible
    libc wrapper declares), not the 6-register kernel ABI. *)
let signature_class (f : Sil.Func.t) =
  match Sil.Func.syscall_number f with
  | Some nr -> class_of_arity (Kernel.Syscalls.natural_arity nr)
  | None -> class_of_arity (List.length f.params)

let build ?(stubs_address_taken = true) (prog : Sil.Prog.t) : t =
  let cg = Sil.Callgraph.build prog in
  let classes = Hashtbl.create 64 in
  List.iter
    (fun (f : Sil.Func.t) -> Hashtbl.replace classes f.fname (signature_class f))
    (Sil.Prog.functions prog);
  let address_taken = Hashtbl.create 64 in
  Sil.Callgraph.Sset.iter (fun f -> Hashtbl.replace address_taken f ()) cg.address_taken;
  (* Lazy dynamic binding takes the address of every libc syscall
     wrapper (§10.2: "its address is still taken as this system call is
     necessary to support dynamic loading of shared libraries"), which
     is precisely why type-matched redirects to syscalls slip past
     LLVM CFI. *)
  if stubs_address_taken then
    List.iter
      (fun (stub : Sil.Func.t) -> Hashtbl.replace address_taken stub.fname ())
      (Sil.Prog.syscall_stubs prog);
  (* The expected class of each indirect callsite is the static type of
     the callee expression — in SIL, the arity of the call. *)
  let callsite_class = Hashtbl.create 64 in
  List.iter
    (fun (cs : Sil.Callgraph.callsite) ->
      match cs.cs_target with
      | Sil.Instr.Indirect _ ->
        Hashtbl.replace callsite_class cs.cs_loc (class_of_arity (List.length cs.cs_args))
      | Sil.Instr.Direct _ -> ())
    cg.callsites;
  { checks = 0; violations = 0; classes; address_taken; callsite_class }

(** Install the per-indirect-call check on a machine.  A violating call
    faults exactly as clang's cfi-icall trap does. *)
let install (t : t) (m : Machine.t) =
  m.on_indirect_call <-
    Some
      (fun m ~callsite ~target ~resolved ->
        t.checks <- t.checks + 1;
        Machine.charge m m.config.cost.cfi_check;
        let expected = Hashtbl.find_opt t.callsite_class callsite in
        let ok =
          match resolved with
          | None -> false
          | Some fname ->
            Hashtbl.mem t.address_taken fname
            && (match (expected, Hashtbl.find_opt t.classes fname) with
               | Some e, Some c -> String.equal e c
               | _, _ -> false)
        in
        if not ok then begin
          t.violations <- t.violations + 1;
          raise (Machine.Killed (Machine.Cfi_violation { callsite; target }))
        end)
