(** The LLVM CFI baseline (clang -fsanitize=cfi-icall): a coarse,
    type-class check at every indirect callsite.  The target must be
    address-taken and signature-class-compatible with the callsite.

    Reproduces the paper's bypass stories: lazy dynamic binding takes
    every libc syscall wrapper's address, so a type-matched redirect to
    a syscall (CsCFI, AOCR) passes the check, while arity-mismatched or
    never-address-taken targets are caught. *)

type t = {
  mutable checks : int;
  mutable violations : int;
  classes : (string, string) Hashtbl.t;
  address_taken : (string, unit) Hashtbl.t;
  callsite_class : (Sil.Loc.t, string) Hashtbl.t;
}

val class_of_arity : int -> string

(** A stub's class uses its C prototype arity, not the kernel ABI. *)
val signature_class : Sil.Func.t -> string

(** [stubs_address_taken] (default true) models the dynamic-loader
    artifact of §10.2. *)
val build : ?stubs_address_taken:bool -> Sil.Prog.t -> t

(** Install the per-indirect-call check on a machine; violations fault
    the run. *)
val install : t -> Machine.t -> unit
