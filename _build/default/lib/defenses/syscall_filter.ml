(* Plain seccomp-style system-call filtering (§2.2): an allowlist of the
   syscalls the program uses; everything else is killed.  Unlike BASTION
   it makes a binary decision — a sensitive-but-used syscall remains
   fully available to an attacker. *)

let allowlist_of_program (prog : Sil.Prog.t) =
  let cg = Sil.Callgraph.build prog in
  List.filter_map
    (fun (stub : Sil.Func.t) ->
      match Sil.Func.syscall_number stub with
      | Some nr
        when Sil.Callgraph.direct_callers_of cg stub.fname <> []
             || Sil.Callgraph.is_address_taken cg stub.fname ->
        Some nr
      | Some _ | None -> None)
    (Sil.Prog.syscall_stubs prog)

(** Install an allowlist filter derived from the program's own syscall
    usage (what sysfilter/Confine-style tools compute). *)
let install (prog : Sil.Prog.t) (proc : Kernel.Process.t) =
  proc.filter <- Some (Kernel.Seccomp.allowlist (allowlist_of_program prog))
