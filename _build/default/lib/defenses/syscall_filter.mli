(** Plain seccomp-style system-call filtering (§2.2): an allowlist of
    the syscalls the program uses.  Unlike BASTION it makes a binary
    decision — a used-but-sensitive syscall stays fully available to an
    attacker, corrupted arguments included. *)

(** The syscall numbers a sysfilter/Confine-style tool would allow. *)
val allowlist_of_program : Sil.Prog.t -> int list

(** Install the derived allowlist on a process. *)
val install : Sil.Prog.t -> Kernel.Process.t -> unit
