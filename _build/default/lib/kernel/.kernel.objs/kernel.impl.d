lib/kernel/kernel.ml: Array Int64 Machine Net Process Ptrace Seccomp Syscalls Vfs
