lib/kernel/kernel.mli: Machine Net Process Ptrace Seccomp Syscalls Vfs
