lib/kernel/net.ml: Hashtbl Queue
