lib/kernel/net.mli:
