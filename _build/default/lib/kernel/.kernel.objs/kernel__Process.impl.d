lib/kernel/process.ml: Hashtbl List Machine Net Option Ptrace Seccomp Syscalls Vfs
