lib/kernel/process.mli: Hashtbl Machine Net Ptrace Seccomp Vfs
