lib/kernel/ptrace.ml: Array List Machine Sil String
