lib/kernel/ptrace.mli: Machine Sil
