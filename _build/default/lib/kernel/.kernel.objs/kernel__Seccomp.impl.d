lib/kernel/seccomp.ml: Hashtbl List Option
