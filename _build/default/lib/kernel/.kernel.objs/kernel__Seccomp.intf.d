lib/kernel/seccomp.mli:
