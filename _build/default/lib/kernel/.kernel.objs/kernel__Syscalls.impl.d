lib/kernel/syscalls.ml: Hashtbl List Printf Sil
