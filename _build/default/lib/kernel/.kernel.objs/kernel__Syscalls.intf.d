lib/kernel/syscalls.mli: Sil
