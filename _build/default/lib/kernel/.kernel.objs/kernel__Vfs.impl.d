lib/kernel/vfs.ml: Hashtbl
