lib/kernel/vfs.mli:
