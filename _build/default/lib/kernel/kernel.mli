(** System-call dispatch: seccomp evaluation, TRACE stops to the
    attached tracer (the BASTION monitor), then per-syscall semantics
    over the VFS / socket substrates. *)

module Syscalls = Syscalls
module Seccomp = Seccomp
module Vfs = Vfs
module Net = Net
module Ptrace = Ptrace
module Process = Process

(** Execute one syscall's semantics (after filtering/tracing). *)
val execute : Process.t -> sysno:int -> args:int64 array -> int64

(** The full dispatch pipeline for one invocation: charge base cost,
    evaluate seccomp (Allow / Kill / Trace-with-verdict), account, then
    {!execute}.
    @raise Machine.Killed on KILL or a tracer denial. *)
val dispatch : Process.t -> Machine.t -> sysno:int -> args:int64 array -> int64

(** Create a process for a machine and install the dispatcher as its
    syscall handler. *)
val boot : Machine.t -> Process.t
