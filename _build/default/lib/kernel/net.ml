(* A miniature socket layer: listening ports with queues of pending
   connections.  Workload drivers enqueue connections (HTTP requests,
   database clients, FTP sessions) before running the server loop;
   [accept] pops them.  An empty queue makes [accept] return -1, which
   server loops use as their exit condition — this keeps runs
   deterministic without modelling real concurrency. *)

type connection = {
  conn_id : int;
  request_words : int;   (** size of the inbound request *)
  payload : string;      (** small textual payload (e.g. requested path) *)
}

type t = {
  listeners : (int, connection Queue.t) Hashtbl.t;  (** port -> pending *)
  mutable next_conn : int;
  mutable accepted : int;
}

let create () = { listeners = Hashtbl.create 4; next_conn = 1000; accepted = 0 }

let listen t port =
  if not (Hashtbl.mem t.listeners port) then
    Hashtbl.replace t.listeners port (Queue.create ())

let enqueue t port ~request_words ~payload =
  (match Hashtbl.find_opt t.listeners port with
  | Some q ->
    t.next_conn <- t.next_conn + 1;
    Queue.push { conn_id = t.next_conn; request_words; payload } q
  | None ->
    (* Pre-listen enqueue: create the queue eagerly so drivers can load
       connections before the server reaches listen(). *)
    listen t port;
    t.next_conn <- t.next_conn + 1;
    Queue.push
      { conn_id = t.next_conn; request_words; payload }
      (Hashtbl.find t.listeners port));
  t.next_conn

let accept t port =
  match Hashtbl.find_opt t.listeners port with
  | Some q when not (Queue.is_empty q) ->
    t.accepted <- t.accepted + 1;
    Some (Queue.pop q)
  | Some _ | None -> None

let pending t port =
  match Hashtbl.find_opt t.listeners port with
  | Some q -> Queue.length q
  | None -> 0
