(** A miniature socket layer: listening ports with queues of pending
    connections.  Drivers enqueue connections before running the server
    loop; [accept] pops them, and an empty queue returns [None], which
    server loops use as their deterministic exit condition. *)

type connection = {
  conn_id : int;
  request_words : int;   (** size of the inbound request *)
  payload : string;      (** small textual payload (e.g. requested path) *)
}

type t

val create : unit -> t

val listen : t -> int -> unit

(** Enqueue a pending connection on a port (creating the queue if the
    server has not reached listen() yet); returns the connection id. *)
val enqueue : t -> int -> request_words:int -> payload:string -> int

val accept : t -> int -> connection option

(** Number of pending connections on a port. *)
val pending : t -> int -> int
