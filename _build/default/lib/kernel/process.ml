(* A process: a machine image plus kernel-side state (file descriptors,
   seccomp policy, attached tracer, accounting).  Worker processes
   spawned by clone/fork share the parent's policy (§7.1), which the
   simulation models by running all workers within one process image and
   counting the clone calls. *)

type fd_entry =
  | File of { file : Vfs.file; mutable pos : int }
  | Sock of { mutable port : int }
  | Conn of Net.connection

type exec_event = { ev_sysno : int; ev_args : int64 array; ev_path : string option }

type verdict = Continue | Deny of { context : string; detail : string }

type t = {
  machine : Machine.t;
  vfs : Vfs.t;
  net : Net.t;
  tracer : Ptrace.t;
  mutable filter : Seccomp.filter option;
  mutable tracer_hook : (t -> sysno:int -> args:int64 array -> verdict) option;
  fds : (int, fd_entry) Hashtbl.t;
  mutable next_fd : int;
  mutable next_pid : int;
  mutable uid : int;
  mutable gid : int;
  syscall_counts : (int, int) Hashtbl.t;  (** executed syscalls, by number *)
  mutable trap_count : int;               (** TRACE stops delivered *)
  mutable io_words_out : int;             (** words sent to clients *)
  mutable io_words_in : int;              (** words read from files/clients *)
  mutable exec_log : exec_event list;     (** sensitive syscalls that EXECUTED *)
  mutable serve_start_cycles : int option;
      (** cycle count at the first accept/accept4: the start of the
          steady-state measurement window (what wrk/DBT2/dkftpbench
          actually measure, excluding server initialisation) *)
  mutable on_syscall_executed :
    (sysno:int -> args:int64 array -> path:string option -> unit) option;
      (** observation hook fired whenever a syscall actually executes
          (i.e. passed every deployed defense); the attack runner uses it
          to detect goal completion *)
  mutable children : t list;
      (** processes spawned by fork/clone; each inherits a copy of the
          parent's seccomp policy and the same monitor (§7.1) *)
}

let create (machine : Machine.t) =
  {
    machine;
    vfs = Vfs.create ();
    net = Net.create ();
    tracer = Ptrace.create machine;
    filter = None;
    tracer_hook = None;
    fds = Hashtbl.create 32;
    next_fd = 3;
    next_pid = 100;
    uid = 0;
    gid = 0;
    syscall_counts = Hashtbl.create 64;
    trap_count = 0;
    io_words_out = 0;
    io_words_in = 0;
    exec_log = [];
    serve_start_cycles = None;
    on_syscall_executed = None;
    children = [];
  }

(** Spawn a child at fork/clone time: same address-space image, a
    *copy* of the seccomp policy (the kernel duplicates the filter into
    the child) and the same tracer, per §7.1. *)
let spawn_child (parent : t) : t =
  parent.next_pid <- parent.next_pid + 1;
  let child = create parent.machine in
  child.next_pid <- parent.next_pid;
  child.filter <- Option.map Seccomp.copy parent.filter;
  child.tracer_hook <- parent.tracer_hook;
  parent.children <- child :: parent.children;
  child

(** Cycles spent in the serving phase (after the first accept). *)
let serve_cycles (t : t) =
  let total = t.machine.stats.cycles in
  match t.serve_start_cycles with None -> total | Some c -> total - c

let alloc_fd t entry =
  let fd = t.next_fd in
  t.next_fd <- fd + 1;
  Hashtbl.replace t.fds fd entry;
  fd

let find_fd t fd = Hashtbl.find_opt t.fds fd

let close_fd t fd = Hashtbl.remove t.fds fd

let count_syscall t nr =
  Hashtbl.replace t.syscall_counts nr
    (1 + Option.value ~default:0 (Hashtbl.find_opt t.syscall_counts nr))

let syscall_count t nr = Option.value ~default:0 (Hashtbl.find_opt t.syscall_counts nr)

let log_exec t ~sysno ~args ~path =
  t.exec_log <- { ev_sysno = sysno; ev_args = args; ev_path = path } :: t.exec_log

(** Sensitive syscalls that reached execution (i.e. passed every
    deployed defense), newest first. *)
let executed_sensitive t = t.exec_log

let executed t name =
  let nr = Syscalls.number name in
  List.filter (fun e -> e.ev_sysno = nr) t.exec_log
