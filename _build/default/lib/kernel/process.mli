(** A process: a machine image plus kernel-side state — file
    descriptors, seccomp policy, attached tracer, accounting.  Worker
    processes spawned by clone/fork share the parent's policy (§7.1);
    the simulation runs all workers in one image and counts the clones. *)

type fd_entry =
  | File of { file : Vfs.file; mutable pos : int }
  | Sock of { mutable port : int }
  | Conn of Net.connection

(** A sensitive syscall that actually executed. *)
type exec_event = { ev_sysno : int; ev_args : int64 array; ev_path : string option }

(** A tracer's decision at a TRACE stop. *)
type verdict = Continue | Deny of { context : string; detail : string }

type t = {
  machine : Machine.t;
  vfs : Vfs.t;
  net : Net.t;
  tracer : Ptrace.t;
  mutable filter : Seccomp.filter option;
  mutable tracer_hook : (t -> sysno:int -> args:int64 array -> verdict) option;
  fds : (int, fd_entry) Hashtbl.t;
  mutable next_fd : int;
  mutable next_pid : int;
  mutable uid : int;
  mutable gid : int;
  syscall_counts : (int, int) Hashtbl.t;  (** executed syscalls, by number *)
  mutable trap_count : int;               (** TRACE stops delivered *)
  mutable io_words_out : int;             (** words sent to clients *)
  mutable io_words_in : int;              (** words read from files/clients *)
  mutable exec_log : exec_event list;     (** sensitive syscalls that executed *)
  mutable serve_start_cycles : int option;
      (** cycle count at the first accept: start of the steady-state
          window the load generators measure *)
  mutable on_syscall_executed :
    (sysno:int -> args:int64 array -> path:string option -> unit) option;
      (** observation hook fired when a syscall actually executes *)
  mutable children : t list;
      (** processes spawned by fork/clone (policy inheritance, §7.1) *)
}

val create : Machine.t -> t

(** Spawn a fork/clone child: a copy of the parent's seccomp policy and
    the same tracer hook (§7.1). *)
val spawn_child : t -> t

val alloc_fd : t -> fd_entry -> int
val find_fd : t -> int -> fd_entry option
val close_fd : t -> int -> unit

val count_syscall : t -> int -> unit
val syscall_count : t -> int -> int

val log_exec : t -> sysno:int -> args:int64 array -> path:string option -> unit

(** Sensitive syscalls that reached execution, newest first. *)
val executed_sensitive : t -> exec_event list

(** Executed events for one syscall by name. *)
val executed : t -> string -> exec_event list

(** Cycles spent in the serving phase (total before the first accept). *)
val serve_cycles : t -> int
