(** The tracer interface the BASTION monitor uses to inspect a stopped
    tracee (PTRACE_GETREGS + process_vm_readv in the paper).  Every
    operation charges its modelled cycle cost to the tracee's clock —
    the cost that dominates Table 7. *)

type regs = { rip : int64; sysno : int; args : int64 array }

(** One unwound stack frame, innermost first. *)
type frame_view = {
  fv_func : string;
      (** function the frame is executing (what an unwinder infers from
          the frame's code addresses) *)
  fv_callsite : int64;
      (** code address of the call this frame has in flight *)
  fv_args : int64 array;
      (** argument registers as spilled at that callsite *)
  fv_ret_token : int64 option;
      (** memory-resident return address, read back from the
          corruptible stack ([None] for the entry frame) *)
  fv_base : int64;
      (** frame base address (locates local-variable slots) *)
}

type t = {
  machine : Machine.t;
  mutable cur_sysno : int;   (** set by the kernel before a TRACE stop *)
  mutable getregs_count : int;
  mutable words_read : int;
  mutable frames_walked : int;
}

val create : Machine.t -> t

(** PTRACE_GETREGS: rip of the trapping callsite, syscall number and
    argument registers. *)
val getregs : t -> regs

(** One remote read: a full process_vm_readv call for a single word. *)
val read_word : t -> int64 -> int64

(** Batched remote read of [n] consecutive words: one call. *)
val read_block : t -> int64 -> int -> int64 array

(** Read a NUL-terminated string (one char per word) from the tracee. *)
val read_string : ?max_len:int -> t -> int64 -> string

(** Unwind the tracee's stack, innermost frame first; costs one remote
    read per frame. *)
val stack_trace : t -> frame_view list

(** Map a memory-resident return token back to the call instruction
    immediately preceding the resume point, as an unwinder maps return
    addresses to callsites.  [None] when the token does not decode. *)
val callsite_of_token : t -> int64 -> Sil.Loc.t option
