(* A seccomp-BPF-style system-call filter.

   The BASTION monitor installs a filter that returns
   SECCOMP_RET_ALLOW for non-sensitive calls, SECCOMP_RET_KILL for
   not-callable calls and SECCOMP_RET_TRACE for directly/indirectly
   callable sensitive calls (§7.1).  The plain system-call-filtering
   baseline uses the same engine with an allowlist policy. *)

type action = Allow | Kill | Trace

let action_name = function Allow -> "ALLOW" | Kill -> "KILL" | Trace -> "TRACE"

type filter = {
  rules : (int, action) Hashtbl.t;
  default : action;
  mutable evaluations : int;
}

let create ?(default = Allow) () = { rules = Hashtbl.create 64; default; evaluations = 0 }

let set_rule filter nr action = Hashtbl.replace filter.rules nr action

let rule filter nr = Option.value ~default:filter.default (Hashtbl.find_opt filter.rules nr)

(** Evaluate the filter for a syscall number (charges nothing itself;
    the kernel charges [Cost.seccomp_eval] per evaluation). *)
let evaluate filter nr =
  filter.evaluations <- filter.evaluations + 1;
  rule filter nr

let evaluations filter = filter.evaluations

(** Build an allowlist filter: listed syscalls allowed, others killed. *)
let allowlist numbers =
  let f = create ~default:Kill () in
  List.iter (fun nr -> set_rule f nr Allow) numbers;
  f

(** A copy sharing no mutable state, for seccomp policy inheritance
    across fork/clone. *)
let copy filter =
  { rules = Hashtbl.copy filter.rules; default = filter.default; evaluations = 0 }
