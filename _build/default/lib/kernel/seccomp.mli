(** A seccomp-BPF-style system-call filter.

    BASTION installs ALLOW for used non-sensitive calls, KILL for
    not-callable calls and TRACE for sensitive calls (§7.1); the plain
    filtering baseline uses the same engine with an allowlist. *)

type action = Allow | Kill | Trace

val action_name : action -> string

type filter

(** [create ~default ()] makes an empty filter; [default] (default
    [Allow]) applies to syscalls without an explicit rule. *)
val create : ?default:action -> unit -> filter

val set_rule : filter -> int -> action -> unit

(** The rule that would apply, without counting an evaluation. *)
val rule : filter -> int -> action

(** Evaluate the filter for one invocation (counts the evaluation; the
    kernel charges its cycle cost separately). *)
val evaluate : filter -> int -> action

val evaluations : filter -> int

(** Allowlist: listed syscalls allowed, everything else killed. *)
val allowlist : int list -> filter

(** An independent copy (seccomp inheritance across fork/clone). *)
val copy : filter -> filter
