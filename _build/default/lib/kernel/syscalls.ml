(* The system-call table: real x86-64 numbers, the paper's Table 1
   classification of sensitive calls, and the §11.2 filesystem extension
   set. *)

type category =
  | Arbitrary_code_execution
  | Memory_permissions
  | Privilege_escalation
  | Networking
  | Filesystem   (** §11.2 extension scope *)
  | Other

let category_name = function
  | Arbitrary_code_execution -> "Arbitrary Code Execution"
  | Memory_permissions -> "Memory Permissions"
  | Privilege_escalation -> "Privilege Escalation"
  | Networking -> "Networking"
  | Filesystem -> "Filesystem"
  | Other -> "Other"

(* (name, number, category).  Numbers follow arch/x86/entry/syscalls. *)
let table =
  [
    (* Table 1: the 20 sensitive system calls. *)
    ("execve", 59, Arbitrary_code_execution);
    ("execveat", 322, Arbitrary_code_execution);
    ("fork", 57, Arbitrary_code_execution);
    ("vfork", 58, Arbitrary_code_execution);
    ("clone", 56, Arbitrary_code_execution);
    ("ptrace", 101, Arbitrary_code_execution);
    ("mprotect", 10, Memory_permissions);
    ("mmap", 9, Memory_permissions);
    ("mremap", 25, Memory_permissions);
    ("remap_file_pages", 216, Memory_permissions);
    ("chmod", 90, Privilege_escalation);
    ("setuid", 105, Privilege_escalation);
    ("setgid", 106, Privilege_escalation);
    ("setreuid", 113, Privilege_escalation);
    ("socket", 41, Networking);
    ("bind", 49, Networking);
    ("connect", 42, Networking);
    ("listen", 50, Networking);
    ("accept", 43, Networking);
    ("accept4", 288, Networking);
    (* §11.2 filesystem-related extension set. *)
    ("open", 2, Filesystem);
    ("openat", 257, Filesystem);
    ("read", 0, Filesystem);
    ("write", 1, Filesystem);
    ("close", 3, Filesystem);
    ("sendto", 44, Filesystem);
    ("recvfrom", 45, Filesystem);
    ("sendfile", 40, Filesystem);
    ("fsync", 74, Filesystem);
    ("lseek", 8, Filesystem);
    ("stat", 4, Filesystem);
    ("fstat", 5, Filesystem);
    (* Common non-sensitive calls used by the workload models. *)
    ("getpid", 39, Other);
    ("gettimeofday", 96, Other);
    ("brk", 12, Other);
    ("nanosleep", 35, Other);
    ("futex", 202, Other);
    ("epoll_wait", 232, Other);
    ("rt_sigaction", 13, Other);
    ("exit", 60, Other);
  ]

let by_name = Hashtbl.create 64
let by_number = Hashtbl.create 64

let () =
  List.iter
    (fun (name, nr, cat) ->
      Hashtbl.replace by_name name (nr, cat);
      Hashtbl.replace by_number nr (name, cat))
    table

let number name =
  match Hashtbl.find_opt by_name name with
  | Some (nr, _) -> nr
  | None -> invalid_arg ("Syscalls.number: unknown syscall " ^ name)

let name nr =
  match Hashtbl.find_opt by_number nr with
  | Some (name, _) -> name
  | None -> Printf.sprintf "sys_%d" nr

let category nr =
  match Hashtbl.find_opt by_number nr with Some (_, c) -> c | None -> Other

(** The paper's Table 1 set, in table order. *)
let sensitive_names =
  [
    "execve"; "execveat"; "fork"; "vfork"; "clone"; "ptrace";
    "mprotect"; "mmap"; "mremap"; "remap_file_pages";
    "chmod"; "setuid"; "setgid"; "setreuid";
    "socket"; "bind"; "connect"; "listen"; "accept"; "accept4";
  ]

let sensitive_numbers = List.map number sensitive_names

let is_sensitive nr = List.mem nr sensitive_numbers

let filesystem_names =
  [
    "open"; "openat"; "read"; "write"; "close"; "sendto"; "recvfrom";
    "sendfile"; "fsync"; "lseek"; "stat"; "fstat";
  ]

let filesystem_numbers = List.map number filesystem_names

let is_filesystem nr = List.mem nr filesystem_numbers

(** The C-prototype arity of each syscall wrapper (what a type-based CFI
    sees); stubs still accept the full 6-register kernel ABI. *)
let natural_arity nr =
  match name nr with
  | "execve" | "connect" | "bind" | "read" | "write" | "mprotect" | "open"
  | "lseek" | "accept" | "chmod" | "setreuid" ->
    3
  | "mmap" -> 6
  | "execveat" | "mremap" | "remap_file_pages" -> 5
  | "accept4" | "openat" | "sendfile" -> 4
  | "socket" -> 3
  | "listen" | "stat" | "fstat" | "recvfrom" | "sendto" | "futex" -> 2
  | "setuid" | "setgid" | "close" | "fsync" | "exit" | "brk" | "nanosleep"
  | "ptrace" | "clone" ->
    1
  | "fork" | "vfork" | "getpid" | "gettimeofday" -> 0
  | _ -> 6

(** Declare every table entry as a syscall stub in a SIL program under
    construction.  All stubs take 6 integer arguments (the kernel ABI);
    unused trailing arguments are simply ignored. *)
let declare_stubs (pb : Sil.Builder.program) =
  List.iter
    (fun (name, nr, _) -> Sil.Builder.syscall_stub pb name ~number:nr ~arity:6)
    table
