(** The system-call table: real x86-64 numbers, the paper's Table 1
    classification of sensitive calls, and the §11.2 filesystem
    extension set. *)

type category =
  | Arbitrary_code_execution
  | Memory_permissions
  | Privilege_escalation
  | Networking
  | Filesystem   (** §11.2 extension scope *)
  | Other

val category_name : category -> string

(** (name, number, category) for every modelled syscall. *)
val table : (string * int * category) list

(** @raise Invalid_argument for names outside the table. *)
val number : string -> int

(** ["sys_<n>"] for numbers outside the table. *)
val name : int -> string

val category : int -> category

(** The paper's Table 1 set of 20 sensitive syscalls, in table order. *)
val sensitive_names : string list

val sensitive_numbers : int list
val is_sensitive : int -> bool

(** The §11.2 filesystem-related set. *)
val filesystem_names : string list

val filesystem_numbers : int list
val is_filesystem : int -> bool

(** The C-prototype arity of a syscall wrapper (what a type-based CFI
    sees); stubs still accept the full 6-register kernel ABI. *)
val natural_arity : int -> int

(** Declare every table entry as a syscall stub in a program under
    construction. *)
val declare_stubs : Sil.Builder.program -> unit
