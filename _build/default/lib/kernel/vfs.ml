(* A miniature file system: named files with sizes (in 64-bit words) and
   optional string contents.  Workload models serve static pages and
   database files from here; content bytes are not materialised for bulk
   I/O (only sizes and offsets matter for the performance model), except
   for small files whose contents an extended-argument check may read. *)

type file = { path : string; size_words : int; mutable mode : int }

type t = { files : (string, file) Hashtbl.t }

let create () = { files = Hashtbl.create 16 }

let add_file t path ~size_words =
  Hashtbl.replace t.files path { path; size_words; mode = 0o644 }

let lookup t path = Hashtbl.find_opt t.files path

let chmod t path mode =
  match lookup t path with
  | Some f ->
    f.mode <- mode;
    0L
  | None -> -2L (* -ENOENT *)

let exists t path = Hashtbl.mem t.files path
