(** A miniature file system: named files with sizes in 64-bit words.
    Contents are not materialised for bulk I/O — sizes and offsets are
    what the performance model needs. *)

type file = { path : string; size_words : int; mutable mode : int }

type t

val create : unit -> t
val add_file : t -> string -> size_words:int -> unit
val lookup : t -> string -> file option

(** Returns 0 on success, -2 (-ENOENT) for missing files. *)
val chmod : t -> string -> int -> int64

val exists : t -> string -> bool
