lib/machine/machine.ml: Array Cet Cost Int64 Layout List Memory Printf Sil String
