lib/machine/machine.mli: Cet Cost Layout Memory Sil
