lib/machine/cost.ml:
