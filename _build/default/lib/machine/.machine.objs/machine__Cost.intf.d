lib/machine/cost.mli:
