lib/machine/layout.ml: Array Hashtbl Int64 List Memory Printf Sil
