lib/machine/layout.mli: Hashtbl Memory Sil
