lib/machine/memory.ml: Array Buffer Char Hashtbl Int64 Option String
