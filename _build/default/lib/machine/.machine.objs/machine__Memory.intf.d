lib/machine/memory.mli:
