(* Address-space layout and code addressing.

   Every SIL instruction and block terminator receives a concrete code
   address, so the simulated machine has a real instruction pointer:
   return addresses are plain words spilled to stack memory (corruptible,
   as on real hardware without CET), function pointers are code
   addresses, and BASTION's metadata can be keyed by callsite address
   exactly as the paper keys it by binary offset. *)

type code_point =
  | Instr_at of Sil.Loc.t
  | Term_of of string * string  (** function, block *)

let code_base = 0x0040_0000L
let rodata_base = 0x0050_0000L
let data_base = 0x0060_0000L
let heap_base = 0x0070_0000L
(* shadow_base: the $gs-relative BASTION shadow region *)
let shadow_base = 0x2000_0000L
let stack_base = 0x7fff_0000L

type t = {
  prog : Sil.Prog.t;
  addr_of_point : (code_point, int64) Hashtbl.t;
  point_of_addr : (int64, code_point) Hashtbl.t;
  func_entry : (string, int64) Hashtbl.t;
  func_of_addr : (int64, string) Hashtbl.t;  (** every code addr -> function *)
  global_addr : (string, int64) Hashtbl.t;
  global_size : (string, int) Hashtbl.t;     (** words *)
  rodata : (string, int64) Hashtbl.t;        (** interned strings *)
  mutable rodata_next : int64;
  (* Per-function variable slot offsets (in words from frame base) and
     frame size in words. *)
  var_offset : (string * int, int) Hashtbl.t;  (** (func, vid) -> offset *)
  frame_words : (string, int) Hashtbl.t;
}

let build (prog : Sil.Prog.t) : t =
  let t =
    {
      prog;
      addr_of_point = Hashtbl.create 1024;
      point_of_addr = Hashtbl.create 1024;
      func_entry = Hashtbl.create 64;
      func_of_addr = Hashtbl.create 1024;
      global_addr = Hashtbl.create 64;
      global_size = Hashtbl.create 64;
      rodata = Hashtbl.create 64;
      rodata_next = rodata_base;
      var_offset = Hashtbl.create 256;
      frame_words = Hashtbl.create 64;
    }
  in
  (* Code addresses: functions in deterministic order, one word per
     instruction and per terminator. *)
  let next = ref code_base in
  let emit fname point =
    let addr = !next in
    Hashtbl.replace t.addr_of_point point addr;
    Hashtbl.replace t.point_of_addr addr point;
    Hashtbl.replace t.func_of_addr addr fname;
    next := Int64.add !next 8L
  in
  List.iter
    (fun (f : Sil.Func.t) ->
      Hashtbl.replace t.func_entry f.fname !next;
      List.iter
        (fun (b : Sil.Func.block) ->
          Array.iteri
            (fun i _ -> emit f.fname (Instr_at (Sil.Loc.make f.fname b.label i)))
            b.instrs;
          emit f.fname (Term_of (f.fname, b.label)))
        f.blocks;
      (* Frame layout: slot offsets for params then locals. *)
      let off = ref 0 in
      List.iter
        (fun ((v : Sil.Operand.var), ty) ->
          Hashtbl.replace t.var_offset (f.fname, v.vid) !off;
          off := !off + max 1 (Sil.Types.size_words prog.structs ty))
        (Sil.Func.all_vars f);
      Hashtbl.replace t.frame_words f.fname !off)
    (Sil.Prog.functions prog);
  (* Globals. *)
  let gnext = ref data_base in
  List.iter
    (fun (g : Sil.Prog.global) ->
      let words = max 1 (Sil.Types.size_words prog.structs g.gty) in
      Hashtbl.replace t.global_addr g.gname !gnext;
      Hashtbl.replace t.global_size g.gname words;
      gnext := Int64.add !gnext (Int64.of_int (8 * words)))
    prog.globals;
  t

let addr_of_point t point =
  match Hashtbl.find_opt t.addr_of_point point with
  | Some a -> a
  | None -> invalid_arg "Layout.addr_of_point: unknown code point"

let addr_of_loc t loc = addr_of_point t (Instr_at loc)

let point_of_addr t addr = Hashtbl.find_opt t.point_of_addr addr

let func_entry t fname =
  match Hashtbl.find_opt t.func_entry fname with
  | Some a -> a
  | None -> invalid_arg ("Layout.func_entry: unknown function " ^ fname)

(** The function a code address belongs to, if any. *)
let func_of_addr t addr = Hashtbl.find_opt t.func_of_addr addr

(** Resolve a code address used as a call target: it must be a function
    entry address. *)
let func_of_entry_addr t addr =
  match func_of_addr t addr with
  | Some fname when Int64.equal (func_entry t fname) addr -> Some fname
  | Some _ | None -> None

let global_addr t gname =
  match Hashtbl.find_opt t.global_addr gname with
  | Some a -> a
  | None -> invalid_arg ("Layout.global_addr: unknown global " ^ gname)

let global_words t gname =
  match Hashtbl.find_opt t.global_size gname with
  | Some n -> n
  | None -> invalid_arg ("Layout.global_words: unknown global " ^ gname)

(** Intern a string literal in rodata; idempotent per content. *)
let intern_string t (mem : Memory.t) s =
  match Hashtbl.find_opt t.rodata s with
  | Some a -> a
  | None ->
    let addr = t.rodata_next in
    let words = Memory.write_string mem addr s in
    t.rodata_next <- Int64.add addr (Int64.of_int (8 * (words + 1)));
    Hashtbl.replace t.rodata s addr;
    addr

let var_offset t fname vid =
  match Hashtbl.find_opt t.var_offset (fname, vid) with
  | Some o -> o
  | None ->
    invalid_arg (Printf.sprintf "Layout.var_offset: %s has no var #%d" fname vid)

let frame_words t fname =
  match Hashtbl.find_opt t.frame_words fname with
  | Some n -> n
  | None -> invalid_arg ("Layout.frame_words: unknown function " ^ fname)
