(** Address-space layout and code addressing.

    Every instruction and block terminator receives a concrete code
    address, giving the machine a real instruction pointer: return
    addresses are plain words, function pointers are code addresses,
    and monitor metadata is keyed by callsite address exactly as the
    paper keys it by binary offset. *)

type code_point =
  | Instr_at of Sil.Loc.t
  | Term_of of string * string  (** function, block *)

val code_base : int64
val rodata_base : int64
val data_base : int64
val heap_base : int64

(** The $gs-relative BASTION shadow region (hidden from the attacker). *)
val shadow_base : int64

val stack_base : int64

type t = {
  prog : Sil.Prog.t;
  addr_of_point : (code_point, int64) Hashtbl.t;
  point_of_addr : (int64, code_point) Hashtbl.t;
  func_entry : (string, int64) Hashtbl.t;
  func_of_addr : (int64, string) Hashtbl.t;
  global_addr : (string, int64) Hashtbl.t;
  global_size : (string, int) Hashtbl.t;
  rodata : (string, int64) Hashtbl.t;
  mutable rodata_next : int64;
  var_offset : (string * int, int) Hashtbl.t;
  frame_words : (string, int) Hashtbl.t;
}

val build : Sil.Prog.t -> t

val addr_of_point : t -> code_point -> int64
val addr_of_loc : t -> Sil.Loc.t -> int64
val point_of_addr : t -> int64 -> code_point option

(** @raise Invalid_argument for unknown functions. *)
val func_entry : t -> string -> int64

(** The function a code address belongs to, if any. *)
val func_of_addr : t -> int64 -> string option

(** Resolve an address used as a call target: must be a function entry. *)
val func_of_entry_addr : t -> int64 -> string option

val global_addr : t -> string -> int64
val global_words : t -> string -> int

(** Intern a string literal in rodata (idempotent per content). *)
val intern_string : t -> Memory.t -> string -> int64

(** Word offset of a variable slot from its frame base. *)
val var_offset : t -> string -> int -> int

(** Frame size in words (locals + params). *)
val frame_words : t -> string -> int
