(* The simulated machine: interprets a SIL program over concrete,
   corruptible memory.

   Faithfulness properties that matter for the reproduction:
   - all locals live in stack memory at concrete addresses (an attacker
     write primitive can corrupt any variable, as in the paper's threat
     model);
   - return addresses are plain words in stack memory, read back on
     [Ret] — overwriting one performs a real control transfer (ROP);
   - function pointers are code addresses; indirect calls resolve
     whatever address the loaded word holds, so corrupted pointers and
     out-of-bounds index reads (NEWTON) redirect control for real;
   - CET, when enabled, keeps a shadow copy of return addresses outside
     the corruptible memory and faults on mismatch;
   - syscall stubs do not execute as code: invoking one enters the
     kernel handler installed by the embedder (seccomp, tracing and the
     BASTION monitor all live behind that handler). *)

module Memory = Memory
module Layout = Layout
module Cost = Cost

type fault =
  | Cet_violation of { expected : int64; actual : int64 }
  | Cfi_violation of { callsite : Sil.Loc.t; target : int64 }
  | Seccomp_kill of { sysno : int }
  | Monitor_kill of { context : string; detail : string }
  | Bad_indirect_target of { callsite : Sil.Loc.t; target : int64 }
  | Bad_return_target of { target : int64 }
  | Fuel_exhausted

exception Killed of fault

let fault_to_string = function
  | Cet_violation { expected; actual } ->
    Printf.sprintf "CET shadow-stack violation (expected %Lx, got %Lx)" expected actual
  | Cfi_violation { callsite; target } ->
    Printf.sprintf "LLVM-CFI violation at %s (target %Lx)" (Sil.Loc.to_string callsite) target
  | Seccomp_kill { sysno } -> Printf.sprintf "seccomp SECCOMP_RET_KILL (syscall %d)" sysno
  | Monitor_kill { context; detail } ->
    Printf.sprintf "BASTION monitor kill: %s context violated (%s)" context detail
  | Bad_indirect_target { callsite; target } ->
    Printf.sprintf "indirect call to non-function address %Lx at %s" target
      (Sil.Loc.to_string callsite)
  | Bad_return_target { target } ->
    Printf.sprintf "return to non-code address %Lx" target
  | Fuel_exhausted -> "fuel exhausted"

type outcome = Exited of int64 | Faulted of fault

type cursor = { cblock : string; cindex : int }

type frame = {
  mutable ffunc : string;
  frame_base : int64;
  ret_slot : int64;  (** address of this frame's return-address word; 0 for entry *)
  fdst : Sil.Operand.var option;  (** caller variable receiving the return value *)
  mutable cursor : cursor;
  mutable in_flight_args : int64 array;
      (** evaluated arguments of the call this frame currently has in
          flight (the "argument registers" at that callsite) *)
  mutable in_flight_callsite : int64;  (** code address of that call instr *)
}

type stats = {
  mutable instrs : int;
  mutable calls : int;
  mutable indirect_calls : int;
  mutable rets : int;
  mutable syscalls : int;
  mutable cycles : int;
}

let stats_create () =
  { instrs = 0; calls = 0; indirect_calls = 0; rets = 0; syscalls = 0; cycles = 0 }

type config = { cet : bool; cost : Cost.t; fuel : int }

let default_config = { cet = false; cost = Cost.default; fuel = 500_000_000 }

type t = {
  prog : Sil.Prog.t;
  layout : Layout.t;
  mem : Memory.t;
  config : config;
  stats : stats;
  shadow_stack : Cet.Shadow_stack.t;
  mutable sp : int64;
  mutable brk : int64;
  mutable frames : frame list;  (** top of stack first *)
  mutable abi_regs : int64 array;  (** args of the most recent call *)
  mutable trap_rip : int64;  (** code address of the most recent call instr *)
  mutable on_syscall : (t -> sysno:int -> args:int64 array -> int64) option;
  mutable on_intrinsic : (t -> name:string -> args:int64 array -> int64) option;
  mutable on_indirect_call :
    (t -> callsite:Sil.Loc.t -> target:int64 -> resolved:string option -> unit) option;
  mutable on_instr : (t -> Sil.Loc.t -> unit) option;
}

let charge (t : t) n = t.stats.cycles <- t.stats.cycles + n

(* ------------------------------------------------------------------ *)
(* Creation and data initialisation                                    *)

let init_globals (t : t) =
  List.iter
    (fun (g : Sil.Prog.global) ->
      let addr = Layout.global_addr t.layout g.gname in
      match g.ginit with
      | Zero -> ()
      | Word v -> Memory.write t.mem addr v
      | Words ws -> Memory.write_block t.mem addr (Array.of_list ws)
      | Str s ->
        let saddr = Layout.intern_string t.layout t.mem s in
        Memory.write t.mem addr saddr
      | Fptr f -> Memory.write t.mem addr (Layout.func_entry t.layout f))
    t.prog.globals

let create ?(config = default_config) (prog : Sil.Prog.t) : t =
  let layout = Layout.build prog in
  let t =
    {
      prog;
      layout;
      mem = Memory.create ();
      config;
      stats = stats_create ();
      shadow_stack = Cet.Shadow_stack.create ();
      sp = Layout.stack_base;
      brk = Layout.heap_base;
      frames = [];
      abi_regs = [||];
      trap_rip = 0L;
      on_syscall = None;
      on_intrinsic = None;
      on_indirect_call = None;
      on_instr = None;
    }
  in
  init_globals t;
  t

(* ------------------------------------------------------------------ *)
(* Address computation                                                 *)

let top_frame (t : t) =
  match t.frames with
  | f :: _ -> f
  | [] -> invalid_arg "Machine.top_frame: no frames"

let var_addr_in (t : t) (frame : frame) (v : Sil.Operand.var) =
  let off = Layout.var_offset t.layout frame.ffunc v.vid in
  Memory.addr_add frame.frame_base off

let var_addr (t : t) v = var_addr_in t (top_frame t) v

(* ------------------------------------------------------------------ *)
(* Evaluation                                                          *)

let rec eval (t : t) (op : Sil.Operand.t) : int64 =
  match op with
  | Const n -> n
  | Cstr s -> Layout.intern_string t.layout t.mem s
  | Var v -> Memory.read t.mem (var_addr t v)
  | Global g -> Memory.read t.mem (Layout.global_addr t.layout g)
  | Func_addr f -> Layout.func_entry t.layout f
  | Null -> 0L

and place_addr (t : t) (p : Sil.Place.t) : int64 =
  match p with
  | Lvar v -> var_addr t v
  | Lglobal g -> Layout.global_addr t.layout g
  | Lfield (base, sname, field) ->
    let b = eval t base in
    Memory.addr_add b (Sil.Types.field_offset t.prog.structs sname field)
  | Lindex (base, index, elem_ty) ->
    let b = eval t base in
    let i = Int64.to_int (eval t index) in
    Memory.addr_add b (i * max 1 (Sil.Types.size_words t.prog.structs elem_ty))
  | Lderef p -> eval t p

let eval_rvalue (t : t) (rv : Sil.Instr.rvalue) : int64 =
  match rv with
  | Use op -> eval t op
  | Load p -> Memory.read t.mem (place_addr t p)
  | Addr_of p -> place_addr t p
  | Binop (op, a, b) -> Sil.Instr.eval_binop op (eval t a) (eval t b)

(* ------------------------------------------------------------------ *)
(* Frames                                                              *)

let push_frame (t : t) ~(callee : Sil.Func.t) ~(args : int64 array)
    ~(ret_token : int64) ~(dst : Sil.Operand.var option) =
  t.sp <- Int64.sub t.sp 8L;
  let ret_slot = t.sp in
  Memory.write t.mem ret_slot ret_token;
  (* The CET push rides the call micro-ops for free; only the
     return-side compare costs a cycle. *)
  if t.config.cet then Cet.Shadow_stack.push t.shadow_stack ret_token;
  let words = Layout.frame_words t.layout callee.fname in
  t.sp <- Int64.sub t.sp (Int64.of_int (8 * words));
  let frame =
    {
      ffunc = callee.fname;
      frame_base = t.sp;
      ret_slot;
      fdst = dst;
      cursor = { cblock = (Sil.Func.entry_block callee).label; cindex = 0 };
      in_flight_args = [||];
      in_flight_callsite = 0L;
    }
  in
  t.frames <- frame :: t.frames;
  (* Copy arguments into parameter slots. *)
  List.iteri
    (fun i ((v : Sil.Operand.var), _) ->
      if i < Array.length args then
        Memory.write t.mem (var_addr_in t frame v) args.(i))
    callee.params

exception Program_exit of int64

let pop_frame (t : t) (ret_val : int64) =
  match t.frames with
  | [] -> raise (Program_exit ret_val)
  | frame :: rest ->
    t.stats.rets <- t.stats.rets + 1;
    charge t t.config.cost.ret;
    if Int64.equal frame.ret_slot 0L then raise (Program_exit ret_val);
    let token = Memory.read t.mem frame.ret_slot in
    if t.config.cet then begin
      charge t t.config.cost.cet_op;
      Cet.Shadow_stack.pop_check t.shadow_stack ~actual:token
    end;
    t.frames <- rest;
    t.sp <- Int64.add frame.ret_slot 8L;
    (match rest with
    | caller :: _ -> (
      (* Deliver the return value if the caller recorded a destination
         (guarded: after a ROP redirect the frame may not match). *)
      match frame.fdst with
      | Some v -> (
        try Memory.write t.mem (var_addr_in t caller v) ret_val
        with Invalid_argument _ -> ())
      | None -> ())
    | [] -> ());
    (* Transfer control to the (possibly corrupted) return token. *)
    (match Layout.point_of_addr t.layout token with
    | Some point -> (
      match rest with
      | caller :: _ ->
        (match point with
        | Layout.Instr_at loc ->
          (* A token pointing into another function models a ROP pivot:
             the gadget executes with the attacker-controlled stack. *)
          if not (String.equal loc.func caller.ffunc) then caller.ffunc <- loc.func;
          caller.cursor <- { cblock = loc.block; cindex = loc.index }
        | Layout.Term_of (fname, block) ->
          if not (String.equal fname caller.ffunc) then caller.ffunc <- fname;
          let f = Sil.Prog.find_func t.prog fname in
          let b = Sil.Func.find_block f block in
          caller.cursor <- { cblock = block; cindex = Array.length b.instrs })
      | [] -> raise (Program_exit ret_val))
    | None -> raise (Killed (Bad_return_target { target = token })))

(** The code address execution resumes at when the call at [loc] returns. *)
let return_token (t : t) (f : Sil.Func.t) (cur : cursor) =
  let block = Sil.Func.find_block f cur.cblock in
  if cur.cindex + 1 < Array.length block.instrs then
    Layout.addr_of_point t.layout
      (Instr_at (Sil.Loc.make f.fname cur.cblock (cur.cindex + 1)))
  else Layout.addr_of_point t.layout (Term_of (f.fname, cur.cblock))

(* ------------------------------------------------------------------ *)
(* Built-in intrinsics                                                 *)

(** Bump-allocate [words] words of heap; used by the malloc intrinsic and
    by the kernel's mmap implementation. *)
let alloc_heap (t : t) words =
  let addr = t.brk in
  t.brk <- Int64.add t.brk (Int64.of_int (8 * max 1 words));
  addr

let run_intrinsic (t : t) name (args : int64 array) : int64 =
  match name with
  | "malloc" ->
    let words = if Array.length args > 0 then Int64.to_int args.(0) else 1 in
    alloc_heap t words
  | _ -> (
    match t.on_intrinsic with
    | Some h -> h t ~name ~args
    | None -> 0L)

(* ------------------------------------------------------------------ *)
(* The interpreter                                                     *)

let exec_call (t : t) (frame : frame) ~dst ~(target : Sil.Instr.call_target)
    ~(args : Sil.Operand.t list) =
  let loc = Sil.Loc.make frame.ffunc frame.cursor.cblock frame.cursor.cindex in
  let argv = Array.of_list (List.map (eval t) args) in
  let callsite_addr = Layout.addr_of_loc t.layout loc in
  t.abi_regs <- argv;
  t.trap_rip <- callsite_addr;
  frame.in_flight_args <- argv;
  frame.in_flight_callsite <- callsite_addr;
  t.stats.calls <- t.stats.calls + 1;
  let callee_name =
    match target with
    | Direct f -> f
    | Indirect op ->
      t.stats.indirect_calls <- t.stats.indirect_calls + 1;
      let addr = eval t op in
      let resolved = Layout.func_of_entry_addr t.layout addr in
      (match t.on_indirect_call with
      | Some h -> h t ~callsite:loc ~target:addr ~resolved
      | None -> ());
      (match resolved with
      | Some f -> f
      | None -> raise (Killed (Bad_indirect_target { callsite = loc; target = addr })))
  in
  let callee = Sil.Prog.find_func t.prog callee_name in
  (* Intrinsics are inlined runtime-library snippets: they cost their
     body, not a call.  Real calls and syscalls pay the call overhead. *)
  (match callee.kind with
  | Intrinsic _ -> ()
  | App_code | Syscall_stub _ -> charge t t.config.cost.call);
  match callee.kind with
  | Syscall_stub sysno ->
    t.stats.syscalls <- t.stats.syscalls + 1;
    let result =
      match t.on_syscall with
      | Some h -> h t ~sysno ~args:argv
      | None -> 0L
    in
    (match dst with Some v -> Memory.write t.mem (var_addr_in t frame v) result | None -> ());
    frame.cursor <- { frame.cursor with cindex = frame.cursor.cindex + 1 }
  | Intrinsic name ->
    charge t t.config.cost.intrinsic;
    let result = run_intrinsic t name argv in
    (match dst with Some v -> Memory.write t.mem (var_addr_in t frame v) result | None -> ());
    frame.cursor <- { frame.cursor with cindex = frame.cursor.cindex + 1 }
  | App_code ->
    let f = Sil.Prog.find_func t.prog frame.ffunc in
    let token = return_token t f frame.cursor in
    (* Advance the caller past the call before pushing, so the cursor is
       correct if the callee is re-entered recursively. *)
    frame.cursor <- { frame.cursor with cindex = frame.cursor.cindex + 1 };
    push_frame t ~callee ~args:argv ~ret_token:token ~dst

let exec_terminator (t : t) (frame : frame) (term : Sil.Instr.terminator) =
  match term with
  | Jump l -> frame.cursor <- { cblock = l; cindex = 0 }
  | Branch (cond, l1, l2) ->
    let c = eval t cond in
    charge t t.config.cost.instr;
    frame.cursor <- { cblock = (if not (Int64.equal c 0L) then l1 else l2); cindex = 0 }
  | Ret op ->
    let v = match op with Some op -> eval t op | None -> 0L in
    pop_frame t v
  | Halt -> raise (Program_exit 0L)

let step (t : t) =
  let frame = top_frame t in
  let f = Sil.Prog.find_func t.prog frame.ffunc in
  let block = Sil.Func.find_block f frame.cursor.cblock in
  if frame.cursor.cindex >= Array.length block.instrs then
    exec_terminator t frame block.term
  else begin
    let loc = Sil.Loc.make frame.ffunc frame.cursor.cblock frame.cursor.cindex in
    (match t.on_instr with Some h -> h t loc | None -> ());
    let ins = block.instrs.(frame.cursor.cindex) in
    t.stats.instrs <- t.stats.instrs + 1;
    match ins with
    | Assign (v, rv) ->
      charge t t.config.cost.instr;
      Memory.write t.mem (var_addr t v) (eval_rvalue t rv);
      frame.cursor <- { frame.cursor with cindex = frame.cursor.cindex + 1 }
    | Store (p, op) ->
      charge t t.config.cost.instr;
      Memory.write t.mem (place_addr t p) (eval t op);
      frame.cursor <- { frame.cursor with cindex = frame.cursor.cindex + 1 }
    | Call { dst; target; args } -> exec_call t frame ~dst ~target ~args
  end

(** Run the program from its entry point to completion. *)
let run (t : t) : outcome =
  let entry = Sil.Prog.find_func t.prog t.prog.entry in
  t.sp <- Layout.stack_base;
  t.frames <- [];
  t.frames <-
    [
      {
        ffunc = entry.fname;
        frame_base =
          (let words = Layout.frame_words t.layout entry.fname in
           t.sp <- Int64.sub t.sp (Int64.of_int (8 * words));
           t.sp);
        ret_slot = 0L;
        fdst = None;
        cursor = { cblock = (Sil.Func.entry_block entry).label; cindex = 0 };
        in_flight_args = [||];
        in_flight_callsite = 0L;
      };
    ];
  let budget = ref t.config.fuel in
  try
    let rec loop () =
      if !budget <= 0 then raise (Killed Fuel_exhausted);
      decr budget;
      step t;
      loop ()
    in
    loop ()
  with
  | Program_exit v -> Exited v
  | Killed fault -> Faulted fault
  | Cet.Shadow_stack.Violation { expected; actual } ->
    Faulted (Cet_violation { expected; actual })
  | Cet.Shadow_stack.Underflow -> Faulted (Cet_violation { expected = 0L; actual = 0L })

(* ------------------------------------------------------------------ *)
(* Introspection used by the kernel's ptrace layer and by attacks      *)

(** Stack frames, innermost first, with the *memory-resident* return
    address of each (reading it reflects any corruption). *)
let frames (t : t) = t.frames

let read_ret_addr (t : t) (frame : frame) =
  if Int64.equal frame.ret_slot 0L then None
  else Some (Memory.read t.mem frame.ret_slot)

let peek (t : t) addr = Memory.read t.mem addr
let poke (t : t) addr v = Memory.write t.mem addr v
let read_string (t : t) addr = Memory.read_string t.mem addr

let global_address (t : t) name = Layout.global_addr t.layout name
let function_address (t : t) name = Layout.func_entry t.layout name
let instr_address (t : t) loc = Layout.addr_of_loc t.layout loc

(** Address of a local variable of a live frame, searching innermost
    frames first.  Used by attack scripts to corrupt specific variables. *)
let local_address (t : t) ~func ~var =
  let rec find = function
    | [] -> None
    | (f : frame) :: rest ->
      if String.equal f.ffunc func then
        let fn = Sil.Prog.find_func t.prog func in
        let v =
          List.find_opt
            (fun ((v : Sil.Operand.var), _) -> String.equal v.vname var)
            (Sil.Func.all_vars fn)
        in
        match v with
        | Some (v, _) -> Some (var_addr_in t f v)
        | None -> find rest
      else find rest
  in
  find t.frames
