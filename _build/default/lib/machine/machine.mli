(** The simulated machine: interprets a SIL program over concrete,
    corruptible memory.

    Faithfulness properties the reproduction depends on:
    - all locals live in stack memory at concrete addresses (arbitrary
      attacker writes can corrupt any variable);
    - return addresses are words in stack memory, read back on return —
      overwriting one performs a real control transfer (ROP);
    - function pointers are code addresses; indirect calls resolve
      whatever the loaded word holds;
    - CET (when enabled) shadows return addresses outside the
      corruptible memory and faults on mismatch;
    - invoking a syscall stub enters the kernel handler installed by the
      embedder — seccomp, tracing and the monitor live behind it. *)

module Memory = Memory
module Layout = Layout
module Cost = Cost

(** Why a run was killed. *)
type fault =
  | Cet_violation of { expected : int64; actual : int64 }
  | Cfi_violation of { callsite : Sil.Loc.t; target : int64 }
  | Seccomp_kill of { sysno : int }
  | Monitor_kill of { context : string; detail : string }
  | Bad_indirect_target of { callsite : Sil.Loc.t; target : int64 }
  | Bad_return_target of { target : int64 }
  | Fuel_exhausted

exception Killed of fault

val fault_to_string : fault -> string

type outcome = Exited of int64 | Faulted of fault

(** Execution position within a frame ([cindex] may equal the block's
    instruction count, denoting the terminator). *)
type cursor = { cblock : string; cindex : int }

(** A live stack frame.  [ffunc] is mutable because a corrupted return
    token pivots the frame to another function (ROP semantics). *)
type frame = {
  mutable ffunc : string;
  frame_base : int64;
  ret_slot : int64;  (** address of the return-address word; 0 for entry *)
  fdst : Sil.Operand.var option;
  mutable cursor : cursor;
  mutable in_flight_args : int64 array;
      (** evaluated arguments of the call this frame has in flight *)
  mutable in_flight_callsite : int64;
}

type stats = {
  mutable instrs : int;
  mutable calls : int;
  mutable indirect_calls : int;
  mutable rets : int;
  mutable syscalls : int;
  mutable cycles : int;
}

val stats_create : unit -> stats

type config = { cet : bool; cost : Cost.t; fuel : int }

val default_config : config

type t = {
  prog : Sil.Prog.t;
  layout : Layout.t;
  mem : Memory.t;
  config : config;
  stats : stats;
  shadow_stack : Cet.Shadow_stack.t;
  mutable sp : int64;
  mutable brk : int64;
  mutable frames : frame list;  (** innermost first *)
  mutable abi_regs : int64 array;  (** args of the most recent call *)
  mutable trap_rip : int64;        (** code address of the most recent call *)
  mutable on_syscall : (t -> sysno:int -> args:int64 array -> int64) option;
  mutable on_intrinsic : (t -> name:string -> args:int64 array -> int64) option;
  mutable on_indirect_call :
    (t -> callsite:Sil.Loc.t -> target:int64 -> resolved:string option -> unit)
    option;
  mutable on_instr : (t -> Sil.Loc.t -> unit) option;
}

(** Add cycles to the machine's clock. *)
val charge : t -> int -> unit

(** Build a machine for a program: assigns the layout, initialises
    globals and rodata. *)
val create : ?config:config -> Sil.Prog.t -> t

exception Program_exit of int64

(** Bump-allocate heap words (mmap/malloc substrate). *)
val alloc_heap : t -> int -> int64

(** Run from the entry point until exit or fault. *)
val run : t -> outcome

(** Live frames, innermost first. *)
val frames : t -> frame list

(** The frame's memory-resident return address (reflects corruption);
    [None] for the entry frame. *)
val read_ret_addr : t -> frame -> int64 option

val peek : t -> int64 -> int64
val poke : t -> int64 -> int64 -> unit
val read_string : t -> int64 -> string

val global_address : t -> string -> int64
val function_address : t -> string -> int64
val instr_address : t -> Sil.Loc.t -> int64

(** Address of a live frame's local variable, innermost match first. *)
val local_address : t -> func:string -> var:string -> int64 option
