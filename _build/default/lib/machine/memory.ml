(* Word-addressable sparse memory.

   Addresses are byte addresses but all accesses are 8-byte-word aligned
   and word-sized (SIL is word oriented).  Unmapped reads return zero,
   which models a zero-filled sparse address space and — importantly for
   the NEWTON-style attacks — lets out-of-bounds array indexing read
   whatever happens to live at the computed address. *)

type t = { cells : (int64, int64) Hashtbl.t }

let create () = { cells = Hashtbl.create 4096 }

let read t addr = Option.value ~default:0L (Hashtbl.find_opt t.cells addr)

let write t addr v =
  if Int64.equal v 0L then Hashtbl.remove t.cells addr
  else Hashtbl.replace t.cells addr v

let word = 8L

let addr_add addr words = Int64.add addr (Int64.mul word (Int64.of_int words))

(** Read [n] consecutive words starting at [addr]. *)
let read_block t addr n = Array.init n (fun i -> read t (addr_add addr i))

let write_block t addr words =
  Array.iteri (fun i v -> write t (addr_add addr i) v) words

(** Read a NUL-terminated string stored one character per word. *)
let read_string ?(max_len = 4096) t addr =
  let buf = Buffer.create 16 in
  let rec go i =
    if i >= max_len then Buffer.contents buf
    else
      let c = read t (addr_add addr i) in
      if Int64.equal c 0L then Buffer.contents buf
      else begin
        Buffer.add_char buf (Char.chr (Int64.to_int c land 0xff));
        go (i + 1)
      end
  in
  go 0

(** Store a string one character per word, NUL terminated; returns the
    number of words written. *)
let write_string t addr s =
  String.iteri (fun i c -> write t (addr_add addr i) (Int64.of_int (Char.code c))) s;
  write t (addr_add addr (String.length s)) 0L;
  String.length s + 1

let mapped_words t = Hashtbl.length t.cells
