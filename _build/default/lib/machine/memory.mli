(** Word-addressable sparse memory.  Accesses are 8-byte-word sized;
    unmapped reads return zero (a zero-filled sparse address space —
    which also lets out-of-bounds indexing read whatever lives at the
    computed address, as the NEWTON attacks require). *)

type t

val create : unit -> t
val read : t -> int64 -> int64

(** Writing zero unmaps the word. *)
val write : t -> int64 -> int64 -> unit

val word : int64

(** [addr_add a n] is [a + 8*n]. *)
val addr_add : int64 -> int -> int64

val read_block : t -> int64 -> int -> int64 array
val write_block : t -> int64 -> int64 array -> unit

(** NUL-terminated string stored one character per word. *)
val read_string : ?max_len:int -> t -> int64 -> string

(** Returns the number of words written (including the NUL). *)
val write_string : t -> int64 -> string -> int

val mapped_words : t -> int
