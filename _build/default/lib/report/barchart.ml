(* Horizontal ASCII bar charts, used to render Figure 3 the way the
   paper draws it (grouped bars per application). *)

let bar_width = 46

(** Render one group of labelled values as horizontal bars, scaled to
    the largest value across all groups. *)
let render ~(unit_ : string) (groups : (string * (string * float) list) list) : string =
  let buf = Buffer.create 1024 in
  let max_v =
    List.fold_left
      (fun acc (_, rows) -> List.fold_left (fun acc (_, v) -> max acc v) acc rows)
      0.0 groups
  in
  let max_v = if max_v <= 0.0 then 1.0 else max_v in
  let label_w =
    List.fold_left
      (fun acc (_, rows) ->
        List.fold_left (fun acc (l, _) -> max acc (String.length l)) acc rows)
      0 groups
  in
  List.iter
    (fun (group, rows) ->
      Buffer.add_string buf group;
      Buffer.add_char buf '\n';
      List.iter
        (fun (label, v) ->
          let n = int_of_float (Float.round (v /. max_v *. float_of_int bar_width)) in
          let n = max 0 (min bar_width n) in
          Buffer.add_string buf
            (Printf.sprintf "  %-*s |%s%s %.2f%s\n" label_w label (String.make n '#')
               (String.make (bar_width - n) ' ')
               v unit_))
        rows;
      Buffer.add_char buf '\n')
    groups;
  Buffer.contents buf

let print ~unit_ groups = print_string (render ~unit_ groups)
