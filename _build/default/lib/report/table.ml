(* Plain-text table rendering shared by the bench harness, the examples
   and the CLI. *)

type align = L | R

let render ?(align : align list = []) ~(header : string list) (rows : string list list) : string =
  let ncols = List.length header in
  let all = header :: rows in
  let width c =
    List.fold_left (fun acc row -> max acc (String.length (List.nth row c))) 0 all
  in
  let widths = List.init ncols width in
  let align_of c = try List.nth align c with _ -> L in
  let pad c s =
    let w = List.nth widths c in
    let fill = String.make (max 0 (w - String.length s)) ' ' in
    match align_of c with L -> s ^ fill | R -> fill ^ s
  in
  let line row = String.concat "  " (List.mapi pad row) in
  let sep = String.concat "  " (List.map (fun w -> String.make w '-') widths) in
  String.concat "\n" (line header :: sep :: List.map line rows)

let print ?align ~header rows = print_endline (render ?align ~header rows)

let fmt_f ?(digits = 2) v = Printf.sprintf "%.*f" digits v
let fmt_pct ?(digits = 2) v = Printf.sprintf "%.*f%%" digits v
