lib/sil/builder.pp.ml: Array Func Hashtbl Instr List Operand Printf Prog String Types
