lib/sil/builder.pp.mli: Func Instr Operand Place Prog Types
