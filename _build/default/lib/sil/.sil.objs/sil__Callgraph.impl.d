lib/sil/callgraph.pp.ml: Instr List Loc Map Operand Option Prog Set String
