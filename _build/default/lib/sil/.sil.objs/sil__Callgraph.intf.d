lib/sil/callgraph.pp.mli: Instr Loc Map Operand Prog Set
