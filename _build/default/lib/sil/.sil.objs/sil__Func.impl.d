lib/sil/func.pp.ml: Array Instr List Loc Operand Ppx_deriving_runtime Printf String Types
