lib/sil/func.pp.mli: Format Instr Loc Operand Types
