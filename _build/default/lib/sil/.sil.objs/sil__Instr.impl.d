lib/sil/instr.pp.ml: Int64 List Operand Place Ppx_deriving_runtime
