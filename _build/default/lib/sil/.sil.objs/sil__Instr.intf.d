lib/sil/instr.pp.mli: Format Operand Place
