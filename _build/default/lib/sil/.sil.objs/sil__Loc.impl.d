lib/sil/loc.pp.ml: Map Ppx_deriving_runtime Printf Set
