lib/sil/loc.pp.mli: Format Map Set
