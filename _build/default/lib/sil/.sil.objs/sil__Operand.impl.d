lib/sil/operand.pp.ml: Int64 Ppx_deriving_runtime
