lib/sil/operand.pp.mli: Format
