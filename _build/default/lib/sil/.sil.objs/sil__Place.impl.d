lib/sil/place.pp.ml: List Operand Ppx_deriving_runtime Types
