lib/sil/place.pp.mli: Format Operand Types
