lib/sil/pp.pp.ml: Array Format Func Instr List Operand Place Prog Types
