lib/sil/pp.pp.mli: Format Func Instr Operand Place Prog
