lib/sil/prog.pp.ml: Array Func Hashtbl Instr List Loc String Types
