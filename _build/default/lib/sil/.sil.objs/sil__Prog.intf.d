lib/sil/prog.pp.mli: Func Hashtbl Instr Loc Operand Types
