lib/sil/types.pp.ml: Buffer Hashtbl List Ppx_deriving_runtime Printf String
