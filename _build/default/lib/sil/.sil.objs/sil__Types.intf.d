lib/sil/types.pp.mli: Format Hashtbl
