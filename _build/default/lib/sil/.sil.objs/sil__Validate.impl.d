lib/sil/validate.pp.ml: Buffer Format Func Hashtbl Instr List Loc Operand Place Printf Prog String Types
