lib/sil/validate.pp.mli: Format Prog
