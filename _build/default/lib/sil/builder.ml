(* Imperative construction API for SIL programs.

   A [program] accumulates structs, globals and functions; a [fb]
   (function builder) accumulates blocks and instructions with a current
   insertion point.  Workload models and tests build programs through
   this module only. *)

type program = {
  structs : Types.struct_env;
  mutable globals : Prog.global list;
  funcs : (string, Func.t) Hashtbl.t;
}

type fb = {
  prog : program;
  fname : string;
  params : (Operand.var * Types.t) list;
  mutable locals : (Operand.var * Types.t) list;
  mutable next_var : int;
  mutable blocks_rev : Func.block list;  (** sealed blocks, reverse order *)
  mutable cur_label : string;
  mutable cur_instrs_rev : Instr.t list;
  mutable sealed : bool;
  kind : Func.kind;
}

let program () : program =
  { structs = Types.struct_env_create (); globals = []; funcs = Hashtbl.create 64 }

let struct_ (p : program) sname fields =
  Types.define_struct p.structs { Types.sname; fields }

let global (p : program) gname gty ginit =
  if List.exists (fun (g : Prog.global) -> String.equal g.gname gname) p.globals
  then invalid_arg ("Builder.global: duplicate global " ^ gname);
  p.globals <- { Prog.gname; gty; ginit } :: p.globals

(* ------------------------------------------------------------------ *)
(* Function construction                                               *)

let func ?(kind = Func.App_code) (p : program) fname ~params : fb =
  if Hashtbl.mem p.funcs fname then
    invalid_arg ("Builder.func: duplicate function " ^ fname);
  let params =
    List.mapi (fun i (name, ty) -> ({ Operand.vid = i; vname = name }, ty)) params
  in
  {
    prog = p;
    fname;
    params;
    locals = [];
    next_var = List.length params;
    blocks_rev = [];
    cur_label = "entry";
    cur_instrs_rev = [];
    sealed = false;
    kind;
  }

let param (fb : fb) i = fst (List.nth fb.params i)

let local (fb : fb) vname ty : Operand.var =
  let v = { Operand.vid = fb.next_var; vname } in
  fb.next_var <- fb.next_var + 1;
  fb.locals <- fb.locals @ [ (v, ty) ];
  v

let check_open (fb : fb) what =
  if fb.sealed then
    invalid_arg (Printf.sprintf "Builder.%s: function %s already sealed" what fb.fname)

let emit (fb : fb) (ins : Instr.t) =
  check_open fb "emit";
  fb.cur_instrs_rev <- ins :: fb.cur_instrs_rev

let close_block (fb : fb) (term : Instr.terminator) =
  let block =
    {
      Func.label = fb.cur_label;
      instrs = Array.of_list (List.rev fb.cur_instrs_rev);
      term;
    }
  in
  fb.blocks_rev <- block :: fb.blocks_rev;
  fb.cur_instrs_rev <- []

(** Start a new labelled block.  If the current block has not been
    terminated, fall through with an explicit jump. *)
let block (fb : fb) label =
  check_open fb "block";
  close_block fb (Instr.Jump label);
  fb.cur_label <- label

(* Straight-line instructions ---------------------------------------- *)

let assign (fb : fb) v rv = emit fb (Instr.Assign (v, rv))
let set (fb : fb) v op = assign fb v (Instr.Use op)
let load (fb : fb) v place = assign fb v (Instr.Load place)
let addr_of (fb : fb) v place = assign fb v (Instr.Addr_of place)
let binop (fb : fb) v op a b = assign fb v (Instr.Binop (op, a, b))
let store (fb : fb) place op = emit fb (Instr.Store (place, op))

let call (fb : fb) ?dst callee args =
  emit fb (Instr.Call { dst; target = Instr.Direct callee; args })

let call_indirect (fb : fb) ?dst fptr args =
  emit fb (Instr.Call { dst; target = Instr.Indirect fptr; args })

(* Terminators -------------------------------------------------------- *)

let terminate (fb : fb) term =
  check_open fb "terminate";
  close_block fb term;
  (* A fresh anonymous label in case construction continues. *)
  fb.cur_label <- Printf.sprintf "anon%d" (List.length fb.blocks_rev)

let jump (fb : fb) label = terminate fb (Instr.Jump label)
let branch (fb : fb) cond l1 l2 = terminate fb (Instr.Branch (cond, l1, l2))
let ret (fb : fb) op = terminate fb (Instr.Ret op)
let halt (fb : fb) = terminate fb Instr.Halt

(** Seal the function and register it in the program.  An unterminated
    trailing block gets an implicit [Ret None]. *)
let seal (fb : fb) =
  check_open fb "seal";
  (match fb.cur_instrs_rev with
  | [] when fb.blocks_rev <> [] -> ()
  | _ -> close_block fb (Instr.Ret None));
  fb.sealed <- true;
  let blocks = List.rev fb.blocks_rev in
  let f =
    {
      Func.fname = fb.fname;
      params = fb.params;
      locals = fb.locals;
      blocks;
      kind = fb.kind;
    }
  in
  Hashtbl.add fb.prog.funcs fb.fname f

(* Declarations ------------------------------------------------------- *)

(** Declare a system-call stub: a leaf function whose invocation enters
    the (simulated) kernel.  [arity] is the number of arguments. *)
let syscall_stub (p : program) name ~number ~arity =
  let params = List.init arity (fun i -> (Printf.sprintf "a%d" i, Types.I64)) in
  let fb = func ~kind:(Func.Syscall_stub number) p name ~params in
  ret fb None;
  seal fb

(** Declare a runtime-library intrinsic executed natively by the machine
    (the BASTION ctx_* API of Table 2). *)
let intrinsic (p : program) name ~arity =
  let params = List.init arity (fun i -> (Printf.sprintf "a%d" i, Types.I64)) in
  let fb = func ~kind:(Func.Intrinsic name) p name ~params in
  ret fb None;
  seal fb

(* Finalisation ------------------------------------------------------- *)

let build (p : program) ~entry : Prog.t =
  if not (Hashtbl.mem p.funcs entry) then
    invalid_arg ("Builder.build: entry function not defined: " ^ entry);
  { Prog.structs = p.structs; globals = List.rev p.globals; funcs = p.funcs; entry }
