(** Imperative construction API for SIL programs.

    A {!program} accumulates structs, globals and functions; an {!fb}
    (function builder) accumulates blocks and instructions at a current
    insertion point.  Typical use:

    {[
      let pb = Builder.program () in
      let fb = Builder.func pb "main" ~params:[] in
      Builder.call fb "getpid" [];
      Builder.halt fb;
      Builder.seal fb;
      let prog = Builder.build pb ~entry:"main"
    ]} *)

type program
type fb

val program : unit -> program

(** Define a named struct.
    @raise Invalid_argument on duplicates. *)
val struct_ : program -> string -> (string * Types.t) list -> unit

(** Declare a global with its initialiser.
    @raise Invalid_argument on duplicates. *)
val global : program -> string -> Types.t -> Prog.init -> unit

(** Open a function for construction.  The entry block is labelled
    ["entry"].  @raise Invalid_argument on duplicate names. *)
val func : ?kind:Func.kind -> program -> string -> params:(string * Types.t) list -> fb

(** The [i]-th parameter variable. *)
val param : fb -> int -> Operand.var

(** Declare a fresh local variable. *)
val local : fb -> string -> Types.t -> Operand.var

(** Append a raw instruction at the insertion point. *)
val emit : fb -> Instr.t -> unit

(** Start a new labelled block; an unterminated current block falls
    through with an explicit jump. *)
val block : fb -> string -> unit

val assign : fb -> Operand.var -> Instr.rvalue -> unit
val set : fb -> Operand.var -> Operand.t -> unit
val load : fb -> Operand.var -> Place.t -> unit
val addr_of : fb -> Operand.var -> Place.t -> unit
val binop : fb -> Operand.var -> Instr.binop -> Operand.t -> Operand.t -> unit
val store : fb -> Place.t -> Operand.t -> unit
val call : fb -> ?dst:Operand.var -> string -> Operand.t list -> unit
val call_indirect : fb -> ?dst:Operand.var -> Operand.t -> Operand.t list -> unit

val terminate : fb -> Instr.terminator -> unit
val jump : fb -> string -> unit
val branch : fb -> Operand.t -> string -> string -> unit
val ret : fb -> Operand.t option -> unit
val halt : fb -> unit

(** Close the function and register it; an unterminated trailing block
    gets an implicit [Ret None]. *)
val seal : fb -> unit

(** Declare a system-call stub (a leaf whose invocation enters the
    simulated kernel). *)
val syscall_stub : program -> string -> number:int -> arity:int -> unit

(** Declare a runtime-library intrinsic executed natively by the
    machine (the ctx_* API of the paper's Table 2). *)
val intrinsic : program -> string -> arity:int -> unit

(** Finalise the program.
    @raise Invalid_argument if [entry] is not defined. *)
val build : program -> entry:string -> Prog.t
