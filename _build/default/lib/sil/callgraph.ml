(* Whole-program call structure: the direct call graph, indirect
   callsites, and address-taken functions.  This is the input to both the
   call-type analysis (address-taken syscalls are indirectly-callable)
   and the control-flow analysis (callee -> caller-site relations). *)

module Smap = Map.Make (String)
module Sset = Set.Make (String)

type callsite = {
  cs_loc : Loc.t;                (** where the call instruction lives *)
  cs_target : Instr.call_target;
  cs_args : Operand.t list;
}

type t = {
  prog : Prog.t;
  callsites : callsite list;                  (** every call in the program *)
  direct_callers : Loc.t list Smap.t;         (** callee name -> callsites *)
  indirect_callsites : callsite list;
  address_taken : Sset.t;                     (** functions whose address escapes *)
}

(** Functions whose address appears in an operand. *)
let operand_fnames op =
  match (op : Operand.t) with
  | Func_addr f -> [ f ]
  | Const _ | Cstr _ | Var _ | Global _ | Null -> []

let global_fnames (g : Prog.global) =
  match g.ginit with
  | Fptr f -> [ f ]
  | Zero | Word _ | Words _ | Str _ -> []

let build (prog : Prog.t) : t =
  let callsites =
    List.map
      (fun (cs_loc, _dst, cs_target, cs_args) -> { cs_loc; cs_target; cs_args })
      (Prog.calls prog)
  in
  let direct_callers =
    List.fold_left
      (fun acc cs ->
        match cs.cs_target with
        | Instr.Direct callee ->
          let existing = Option.value ~default:[] (Smap.find_opt callee acc) in
          Smap.add callee (cs.cs_loc :: existing) acc
        | Instr.Indirect _ -> acc)
      Smap.empty callsites
  in
  let indirect_callsites =
    List.filter
      (fun cs ->
        match cs.cs_target with Instr.Indirect _ -> true | Instr.Direct _ -> false)
      callsites
  in
  (* Address-taken: Func_addr operands anywhere (including call arguments
     and stores) and function-pointer global initialisers. *)
  let address_taken =
    let from_instrs =
      List.fold_left
        (fun acc (_, ins) ->
          List.fold_left
            (fun acc op -> List.fold_left (fun acc f -> Sset.add f acc) acc (operand_fnames op))
            acc (Instr.operands ins))
        Sset.empty (Prog.instrs prog)
    in
    List.fold_left
      (fun acc g -> List.fold_left (fun acc f -> Sset.add f acc) acc (global_fnames g))
      from_instrs prog.globals
  in
  { prog; callsites; direct_callers; indirect_callsites; address_taken }

let direct_callers_of (cg : t) fname =
  Option.value ~default:[] (Smap.find_opt fname cg.direct_callers)

let is_address_taken (cg : t) fname = Sset.mem fname cg.address_taken

(** Statistics backing Table 5 rows 1-3. *)
type stats = {
  total_callsites : int;
  direct_callsites : int;
  indirect_count : int;
}

let stats (cg : t) =
  let total_callsites = List.length cg.callsites in
  let indirect_count = List.length cg.indirect_callsites in
  { total_callsites; direct_callsites = total_callsites - indirect_count; indirect_count }
