(** Whole-program call structure: direct call graph, indirect callsites
    and address-taken functions — the input to the call-type and
    control-flow analyses. *)

module Smap : Map.S with type key = string
module Sset : Set.S with type elt = string

type callsite = {
  cs_loc : Loc.t;                (** where the call instruction lives *)
  cs_target : Instr.call_target;
  cs_args : Operand.t list;
}

type t = {
  prog : Prog.t;
  callsites : callsite list;                  (** every call in the program *)
  direct_callers : Loc.t list Smap.t;         (** callee name -> callsites *)
  indirect_callsites : callsite list;
  address_taken : Sset.t;                     (** functions whose address escapes *)
}

val build : Prog.t -> t

(** Direct callsites that call the named function. *)
val direct_callers_of : t -> string -> Loc.t list

val is_address_taken : t -> string -> bool

(** Statistics backing Table 5 rows 1-3. *)
type stats = {
  total_callsites : int;
  direct_callsites : int;
  indirect_count : int;
}

val stats : t -> stats
