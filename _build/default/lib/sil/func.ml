(* Functions: a list of labelled basic blocks; the first block is the
   entry.  A function's [kind] records whether it is ordinary application
   code, a system-call stub (the moral equivalent of a libc syscall
   wrapper: calling it enters the kernel), or a BASTION runtime-library
   intrinsic (ctx_write_mem and friends, executed by the machine). *)

type kind =
  | App_code
  | Syscall_stub of int  (** syscall number *)
  | Intrinsic of string  (** runtime-library operation name *)
[@@deriving show { with_path = false }, eq]

type block = { label : string; instrs : Instr.t array; term : Instr.terminator }

type t = {
  fname : string;
  params : (Operand.var * Types.t) list;
  locals : (Operand.var * Types.t) list;  (** excludes params *)
  blocks : block list;
  kind : kind;
}

let signature (f : t) : Types.signature =
  { Types.params = List.map snd f.params; ret = Types.I64 }

let find_block (f : t) label =
  match List.find_opt (fun b -> String.equal b.label label) f.blocks with
  | Some b -> b
  | None ->
    invalid_arg (Printf.sprintf "Func.find_block: %s has no block %s" f.fname label)

let entry_block (f : t) =
  match f.blocks with
  | b :: _ -> b
  | [] -> invalid_arg (Printf.sprintf "Func.entry_block: %s has no blocks" f.fname)

(** All (location, instruction) pairs of the function, in layout order. *)
let instrs (f : t) : (Loc.t * Instr.t) list =
  List.concat_map
    (fun b ->
      Array.to_list b.instrs
      |> List.mapi (fun i ins -> (Loc.make f.fname b.label i, ins)))
    f.blocks

(** Variable environment: params then locals. *)
let all_vars (f : t) = f.params @ f.locals

let var_type (f : t) (v : Operand.var) =
  match List.assoc_opt v (all_vars f) with
  | Some ty -> ty
  | None ->
    invalid_arg
      (Printf.sprintf "Func.var_type: %s has no variable %s#%d" f.fname v.vname
         v.vid)

let is_syscall_stub (f : t) =
  match f.kind with Syscall_stub _ -> true | App_code | Intrinsic _ -> false

let syscall_number (f : t) =
  match f.kind with Syscall_stub n -> Some n | App_code | Intrinsic _ -> None
