(** Functions: labelled basic blocks (first block is the entry). *)

(** What kind of code a function is. *)
type kind =
  | App_code             (** ordinary application code *)
  | Syscall_stub of int  (** libc-style syscall wrapper; calling it
                             enters the (simulated) kernel; the payload
                             is the syscall number *)
  | Intrinsic of string  (** BASTION runtime-library operation, executed
                             natively by the machine *)

val pp_kind : Format.formatter -> kind -> unit
val show_kind : kind -> string
val equal_kind : kind -> kind -> bool

type block = { label : string; instrs : Instr.t array; term : Instr.terminator }

type t = {
  fname : string;
  params : (Operand.var * Types.t) list;
  locals : (Operand.var * Types.t) list;  (** excludes params *)
  blocks : block list;
  kind : kind;
}

(** The function's (I64-returning) signature. *)
val signature : t -> Types.signature

(** @raise Invalid_argument if no block carries that label. *)
val find_block : t -> string -> block

(** @raise Invalid_argument if the function has no blocks. *)
val entry_block : t -> block

(** All (location, instruction) pairs, in layout order. *)
val instrs : t -> (Loc.t * Instr.t) list

(** Parameters followed by locals. *)
val all_vars : t -> (Operand.var * Types.t) list

(** @raise Invalid_argument if the variable is unknown. *)
val var_type : t -> Operand.var -> Types.t

val is_syscall_stub : t -> bool

(** The syscall number if this is a stub. *)
val syscall_number : t -> int option
