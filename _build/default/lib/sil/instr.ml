(* Instructions and block terminators. *)

type binop = Add | Sub | Mul | Div | And | Or | Xor | Shl | Shr | Eq | Ne | Lt | Le | Gt | Ge
[@@deriving show { with_path = false }, eq, ord]

type rvalue =
  | Use of Operand.t
  | Load of Place.t
  | Addr_of of Place.t
      (** address of a place; [Addr_of (Lvar v)] spills [v] to its stack
          slot, making it reachable through memory *)
  | Binop of binop * Operand.t * Operand.t
[@@deriving show { with_path = false }, eq, ord]

type call_target =
  | Direct of string
      (** call a named function; calling a syscall stub this way is a
          directly-callable syscall use *)
  | Indirect of Operand.t
      (** call through a function pointer value *)
[@@deriving show { with_path = false }, eq, ord]

type t =
  | Assign of Operand.var * rvalue
  | Store of Place.t * Operand.t
  | Call of { dst : Operand.var option; target : call_target; args : Operand.t list }
[@@deriving show { with_path = false }, eq, ord]

type terminator =
  | Jump of string
  | Branch of Operand.t * string * string  (** non-zero => first label *)
  | Ret of Operand.t option
  | Halt                                   (** program exit *)
[@@deriving show { with_path = false }, eq, ord]

let rvalue_operands = function
  | Use op -> [ op ]
  | Load p -> Place.operands p
  | Addr_of p -> Place.operands p
  | Binop (_, a, b) -> [ a; b ]

(** All operands read by an instruction. *)
let operands = function
  | Assign (_, rv) -> rvalue_operands rv
  | Store (p, v) -> v :: Place.operands p
  | Call { target; args; _ } ->
    let tgt = match target with Direct _ -> [] | Indirect op -> [ op ] in
    tgt @ args

(** The variable defined by an instruction, if any. *)
let def = function
  | Assign (v, _) -> Some v
  | Store _ -> None
  | Call { dst; _ } -> dst

let is_call = function Call _ -> true | Assign _ | Store _ -> false

let eval_binop op (a : int64) (b : int64) : int64 =
  let open Int64 in
  let of_bool c = if c then 1L else 0L in
  match op with
  | Add -> add a b
  | Sub -> sub a b
  | Mul -> mul a b
  | Div -> if equal b 0L then 0L else div a b
  | And -> logand a b
  | Or -> logor a b
  | Xor -> logxor a b
  | Shl -> shift_left a (to_int b land 63)
  | Shr -> shift_right_logical a (to_int b land 63)
  | Eq -> of_bool (equal a b)
  | Ne -> of_bool (not (equal a b))
  | Lt -> of_bool (compare a b < 0)
  | Le -> of_bool (compare a b <= 0)
  | Gt -> of_bool (compare a b > 0)
  | Ge -> of_bool (compare a b >= 0)
