(** Instructions and block terminators. *)

type binop =
  | Add | Sub | Mul | Div
  | And | Or | Xor | Shl | Shr
  | Eq | Ne | Lt | Le | Gt | Ge

val pp_binop : Format.formatter -> binop -> unit
val show_binop : binop -> string
val equal_binop : binop -> binop -> bool

type rvalue =
  | Use of Operand.t
  | Load of Place.t
  | Addr_of of Place.t
      (** address of a place; taking a local's address spills it to its
          stack slot, making it reachable through memory *)
  | Binop of binop * Operand.t * Operand.t

val pp_rvalue : Format.formatter -> rvalue -> unit
val show_rvalue : rvalue -> string
val equal_rvalue : rvalue -> rvalue -> bool

type call_target =
  | Direct of string
      (** call a named function; calling a syscall stub this way is a
          directly-callable syscall use *)
  | Indirect of Operand.t
      (** call through a function-pointer value *)

val pp_call_target : Format.formatter -> call_target -> unit
val show_call_target : call_target -> string
val equal_call_target : call_target -> call_target -> bool

type t =
  | Assign of Operand.var * rvalue
  | Store of Place.t * Operand.t
  | Call of { dst : Operand.var option; target : call_target; args : Operand.t list }

val pp : Format.formatter -> t -> unit
val show : t -> string
val equal : t -> t -> bool

type terminator =
  | Jump of string
  | Branch of Operand.t * string * string  (** non-zero takes the first label *)
  | Ret of Operand.t option
  | Halt                                   (** program exit *)

val pp_terminator : Format.formatter -> terminator -> unit
val show_terminator : terminator -> string
val equal_terminator : terminator -> terminator -> bool

(** Operands read by an rvalue. *)
val rvalue_operands : rvalue -> Operand.t list

(** All operands read by an instruction. *)
val operands : t -> Operand.t list

(** The variable defined by an instruction, if any. *)
val def : t -> Operand.var option

val is_call : t -> bool

(** Two's-complement 64-bit evaluation; comparisons return 0/1;
    division by zero yields 0. *)
val eval_binop : binop -> int64 -> int64 -> int64
