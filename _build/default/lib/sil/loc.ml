(* Code locations.  Every instruction has a location; the machine assigns
   each location a concrete code address, so locations play the role of
   instruction pointers (the monitor's metadata is keyed by them, exactly
   as BASTION keys metadata by binary offsets). *)

type t = { func : string; block : string; index : int }
[@@deriving show { with_path = false }, eq, ord]

let make func block index = { func; block; index }

let to_string { func; block; index } =
  Printf.sprintf "%s:%s:%d" func block index

module Map = Map.Make (struct
  type nonrec t = t

  let compare = compare
end)

module Set = Set.Make (struct
  type nonrec t = t

  let compare = compare
end)
