(** Code locations: (function, block, instruction index).

    Every instruction has a location; the machine assigns each location
    a concrete code address, so locations play the role instruction
    pointers play in the paper (monitor metadata is keyed by them the
    way BASTION keys metadata by binary offsets). *)

type t = { func : string; block : string; index : int }

val pp : Format.formatter -> t -> unit
val show : t -> string
val equal : t -> t -> bool
val compare : t -> t -> int

val make : string -> string -> int -> t
val to_string : t -> string

module Map : Map.S with type key = t
module Set : Set.S with type elt = t
