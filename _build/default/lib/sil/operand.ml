(* Operands: the values an instruction may read. *)

(** A local variable (parameter or function-local).  Identified by a
    per-function unique id; the name is kept for diagnostics and for the
    symbol table the attacker API uses to locate stack slots. *)
type var = { vid : int; vname : string }
[@@deriving show { with_path = false }, eq, ord]

type t =
  | Const of int64            (** integer constant *)
  | Cstr of string            (** string literal, lives in rodata *)
  | Var of var                (** read of a local variable *)
  | Global of string          (** read of a scalar global *)
  | Func_addr of string       (** address of a function (address-taken) *)
  | Null
[@@deriving show { with_path = false }, eq, ord]

let const n = Const (Int64.of_int n)
let var v = Var v

(** Variables read by this operand (none or one). *)
let vars = function
  | Var v -> [ v ]
  | Const _ | Cstr _ | Global _ | Func_addr _ | Null -> []

(** Globals read by this operand. *)
let globals = function
  | Global g -> [ g ]
  | Const _ | Cstr _ | Var _ | Func_addr _ | Null -> []
