(** Operands: the values an instruction may read. *)

(** A local variable (parameter or function-local), unique per function
    by [vid]; [vname] is kept for diagnostics and symbol lookup. *)
type var = { vid : int; vname : string }

val pp_var : Format.formatter -> var -> unit
val show_var : var -> string
val equal_var : var -> var -> bool
val compare_var : var -> var -> int

type t =
  | Const of int64            (** integer constant *)
  | Cstr of string            (** string literal (interned in rodata) *)
  | Var of var                (** read of a local variable *)
  | Global of string          (** read of a scalar global *)
  | Func_addr of string       (** address of a function (address-taken) *)
  | Null

val pp : Format.formatter -> t -> unit
val show : t -> string
val equal : t -> t -> bool
val compare : t -> t -> int

(** [const n] is [Const (Int64.of_int n)]. *)
val const : int -> t

val var : var -> t

(** Variables read by this operand (zero or one). *)
val vars : t -> var list

(** Globals read by this operand (zero or one). *)
val globals : t -> string list
