(* Places: memory locations that can be loaded from, stored to, or have
   their address taken.  Field and index places carry the type
   information needed to compute word offsets. *)

type t =
  | Lvar of Operand.var
      (** a local variable's stack slot *)
  | Lglobal of string
      (** a scalar global *)
  | Lfield of Operand.t * string * string
      (** [Lfield (base, struct_name, field)]: field of the struct pointed
          to by [base] *)
  | Lindex of Operand.t * Operand.t * Types.t
      (** [Lindex (base, index, elem_ty)]: element of the array pointed to
          by [base] *)
  | Lderef of Operand.t
      (** the word pointed to by a pointer operand *)
[@@deriving show { with_path = false }, eq, ord]

(** Operands read in order to evaluate the address of this place. *)
let operands = function
  | Lvar _ | Lglobal _ -> []
  | Lfield (base, _, _) -> [ base ]
  | Lindex (base, index, _) -> [ base; index ]
  | Lderef p -> [ p ]

let vars place = List.concat_map Operand.vars (operands place)

(** The variable this place denotes directly, if it is a bare local. *)
let as_var = function
  | Lvar v -> Some v
  | Lglobal _ | Lfield _ | Lindex _ | Lderef _ -> None

let as_global = function
  | Lglobal g -> Some g
  | Lvar _ | Lfield _ | Lindex _ | Lderef _ -> None
