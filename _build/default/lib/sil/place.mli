(** Places: memory locations that can be loaded, stored, or have their
    address taken. *)

type t =
  | Lvar of Operand.var
      (** a local variable's stack slot *)
  | Lglobal of string
      (** a scalar global *)
  | Lfield of Operand.t * string * string
      (** [Lfield (base, struct_name, field)]: field of the struct
          pointed to by [base] *)
  | Lindex of Operand.t * Operand.t * Types.t
      (** [Lindex (base, index, elem_ty)]: array element *)
  | Lderef of Operand.t
      (** the word pointed to by a pointer operand *)

val pp : Format.formatter -> t -> unit
val show : t -> string
val equal : t -> t -> bool
val compare : t -> t -> int

(** Operands read to evaluate the address of this place. *)
val operands : t -> Operand.t list

(** Variables read to evaluate the address of this place. *)
val vars : t -> Operand.var list

(** The variable this place denotes, if it is a bare local. *)
val as_var : t -> Operand.var option

(** The global this place denotes, if it is a bare global. *)
val as_global : t -> string option
