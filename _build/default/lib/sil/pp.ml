(* Human-readable program printing, loosely LLVM-flavoured.  Used by the
   CLI's [analyze --dump-ir] and by debugging tests. *)

open Format

let pp_var fmt (v : Operand.var) = fprintf fmt "%%%s.%d" v.vname v.vid

let pp_operand fmt (op : Operand.t) =
  match op with
  | Const n -> fprintf fmt "%Ld" n
  | Cstr s -> fprintf fmt "%S" s
  | Var v -> pp_var fmt v
  | Global g -> fprintf fmt "@%s" g
  | Func_addr f -> fprintf fmt "&%s" f
  | Null -> pp_print_string fmt "null"

let pp_place fmt (p : Place.t) =
  match p with
  | Lvar v -> pp_var fmt v
  | Lglobal g -> fprintf fmt "@%s" g
  | Lfield (base, s, f) -> fprintf fmt "%a->%s.%s" pp_operand base s f
  | Lindex (base, idx, _) -> fprintf fmt "%a[%a]" pp_operand base pp_operand idx
  | Lderef p -> fprintf fmt "*%a" pp_operand p

let binop_name (op : Instr.binop) =
  match op with
  | Add -> "add" | Sub -> "sub" | Mul -> "mul" | Div -> "div"
  | And -> "and" | Or -> "or" | Xor -> "xor" | Shl -> "shl" | Shr -> "shr"
  | Eq -> "eq" | Ne -> "ne" | Lt -> "lt" | Le -> "le" | Gt -> "gt" | Ge -> "ge"

let pp_rvalue fmt (rv : Instr.rvalue) =
  match rv with
  | Use op -> pp_operand fmt op
  | Load p -> fprintf fmt "load %a" pp_place p
  | Addr_of p -> fprintf fmt "addr %a" pp_place p
  | Binop (op, a, b) ->
    fprintf fmt "%s %a, %a" (binop_name op) pp_operand a pp_operand b

let pp_args fmt args =
  pp_print_list ~pp_sep:(fun fmt () -> pp_print_string fmt ", ") pp_operand fmt args

let pp_instr fmt (ins : Instr.t) =
  match ins with
  | Assign (v, rv) -> fprintf fmt "%a = %a" pp_var v pp_rvalue rv
  | Store (p, op) -> fprintf fmt "store %a <- %a" pp_place p pp_operand op
  | Call { dst; target; args } ->
    (match dst with Some v -> fprintf fmt "%a = " pp_var v | None -> ());
    (match target with
    | Direct f -> fprintf fmt "call %s(%a)" f pp_args args
    | Indirect op -> fprintf fmt "call *%a(%a)" pp_operand op pp_args args)

let pp_terminator fmt (t : Instr.terminator) =
  match t with
  | Jump l -> fprintf fmt "jump %s" l
  | Branch (c, l1, l2) -> fprintf fmt "branch %a ? %s : %s" pp_operand c l1 l2
  | Ret None -> pp_print_string fmt "ret"
  | Ret (Some op) -> fprintf fmt "ret %a" pp_operand op
  | Halt -> pp_print_string fmt "halt"

let pp_func fmt (f : Func.t) =
  let kind =
    match f.kind with
    | App_code -> ""
    | Syscall_stub n -> sprintf " [syscall %d]" n
    | Intrinsic name -> sprintf " [intrinsic %s]" name
  in
  fprintf fmt "func %s(%a)%s {@\n" f.fname
    (pp_print_list ~pp_sep:(fun fmt () -> pp_print_string fmt ", ")
       (fun fmt (v, ty) -> fprintf fmt "%a: %s" pp_var v (Types.show ty)))
    f.params kind;
  List.iter
    (fun (b : Func.block) ->
      fprintf fmt "  %s:@\n" b.label;
      Array.iter (fun ins -> fprintf fmt "    %a@\n" pp_instr ins) b.instrs;
      fprintf fmt "    %a@\n" pp_terminator b.term)
    f.blocks;
  fprintf fmt "}@\n"

let pp_prog fmt (p : Prog.t) =
  List.iter
    (fun (g : Prog.global) -> fprintf fmt "global @%s : %s@\n" g.gname (Types.show g.gty))
    p.globals;
  List.iter (pp_func fmt) (Prog.functions p)

let prog_to_string p = Format.asprintf "%a" pp_prog p
