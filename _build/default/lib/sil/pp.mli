(** Human-readable program printing, loosely LLVM-flavoured. *)

val pp_var : Format.formatter -> Operand.var -> unit
val pp_operand : Format.formatter -> Operand.t -> unit
val pp_place : Format.formatter -> Place.t -> unit
val binop_name : Instr.binop -> string
val pp_rvalue : Format.formatter -> Instr.rvalue -> unit
val pp_args : Format.formatter -> Operand.t list -> unit
val pp_instr : Format.formatter -> Instr.t -> unit
val pp_terminator : Format.formatter -> Instr.terminator -> unit
val pp_func : Format.formatter -> Func.t -> unit
val pp_prog : Format.formatter -> Prog.t -> unit
val prog_to_string : Prog.t -> string
