(* A whole program: struct definitions, globals, functions, entry point.
   This is the unit the BASTION compiler pass analyses (an LLVM module in
   the paper). *)

type global = {
  gname : string;
  gty : Types.t;
  ginit : init;
}

and init =
  | Zero
  | Word of int64
  | Words of int64 list          (** for arrays/structs, in layout order *)
  | Str of string                (** pointer to a fresh rodata string *)
  | Fptr of string               (** pointer to a function (address taken) *)

type t = {
  structs : Types.struct_env;
  globals : global list;
  funcs : (string, Func.t) Hashtbl.t;
  entry : string;
}

let find_func (p : t) name =
  match Hashtbl.find_opt p.funcs name with
  | Some f -> f
  | None -> invalid_arg ("Prog.find_func: unknown function " ^ name)

let mem_func (p : t) name = Hashtbl.mem p.funcs name

let find_global (p : t) name =
  match List.find_opt (fun g -> String.equal g.gname name) p.globals with
  | Some g -> g
  | None -> invalid_arg ("Prog.find_global: unknown global " ^ name)

(** Functions in a stable (sorted) order, for deterministic layout. *)
let functions (p : t) =
  Hashtbl.fold (fun _ f acc -> f :: acc) p.funcs []
  |> List.sort (fun (a : Func.t) b -> String.compare a.fname b.fname)

let syscall_stubs (p : t) = List.filter Func.is_syscall_stub (functions p)

let app_functions (p : t) =
  List.filter (fun (f : Func.t) -> f.kind = Func.App_code) (functions p)

(** All (location, instruction) pairs of the whole program. *)
let instrs (p : t) : (Loc.t * Instr.t) list =
  List.concat_map Func.instrs (functions p)

(** All call instructions with their locations. *)
let calls (p : t) =
  List.filter_map
    (fun (loc, ins) ->
      match (ins : Instr.t) with
      | Call { dst; target; args } -> Some (loc, dst, target, args)
      | Assign _ | Store _ -> None)
    (instrs p)

let instr_at (p : t) (loc : Loc.t) : Instr.t =
  let f = find_func p loc.func in
  let b = Func.find_block f loc.block in
  if loc.index < 0 || loc.index >= Array.length b.instrs then
    invalid_arg ("Prog.instr_at: index out of range at " ^ Loc.to_string loc);
  b.instrs.(loc.index)

(** Count of instructions, for statistics. *)
let instr_count (p : t) = List.length (instrs p)
