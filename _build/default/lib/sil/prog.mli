(** Whole programs: struct definitions, globals, functions, entry point
    — the unit the BASTION compiler pass analyses (an LLVM module in the
    paper). *)

type global = { gname : string; gty : Types.t; ginit : init }

and init =
  | Zero
  | Word of int64
  | Words of int64 list          (** aggregate initialiser, layout order *)
  | Str of string                (** pointer to a fresh rodata string *)
  | Fptr of string               (** pointer to a function (address taken) *)

type t = {
  structs : Types.struct_env;
  globals : global list;
  funcs : (string, Func.t) Hashtbl.t;
  entry : string;
}

(** @raise Invalid_argument if the function is unknown. *)
val find_func : t -> string -> Func.t

val mem_func : t -> string -> bool

(** @raise Invalid_argument if the global is unknown. *)
val find_global : t -> string -> global

(** Functions in a stable (name-sorted) order, for deterministic layout. *)
val functions : t -> Func.t list

val syscall_stubs : t -> Func.t list
val app_functions : t -> Func.t list

(** All (location, instruction) pairs of the whole program. *)
val instrs : t -> (Loc.t * Instr.t) list

(** All call instructions: (location, destination, target, arguments). *)
val calls : t -> (Loc.t * Operand.var option * Instr.call_target * Operand.t list) list

(** @raise Invalid_argument if the location does not exist. *)
val instr_at : t -> Loc.t -> Instr.t

val instr_count : t -> int
