(* Types of the SIL intermediate representation.

   SIL is a small, word-oriented IR playing the role LLVM IR plays in the
   paper: rich enough to express direct/indirect calls, address-taken
   functions, struct-field accesses and use-def chains, while staying
   simple enough to interpret on the simulated machine.  Every scalar
   occupies one 64-bit word; structs and arrays are laid out as
   consecutive words. *)

type t =
  | Void
  | I64                          (** 64-bit integer (also chars, flags) *)
  | Ptr of t                     (** pointer to [t] *)
  | Struct of string             (** reference to a named struct *)
  | Array of t * int             (** [n] consecutive elements *)
  | Func of signature            (** function type (for pointers) *)
[@@deriving show { with_path = false }, eq, ord]

and signature = { params : t list; ret : t }
[@@deriving show { with_path = false }, eq, ord]

type struct_def = { sname : string; fields : (string * t) list }
[@@deriving show { with_path = false }, eq]

(** Environment of named struct definitions. *)
type struct_env = (string, struct_def) Hashtbl.t

let struct_env_create () : struct_env = Hashtbl.create 16

let define_struct (env : struct_env) (def : struct_def) =
  if Hashtbl.mem env def.sname then
    invalid_arg ("Types.define_struct: duplicate struct " ^ def.sname);
  Hashtbl.add env def.sname def

let find_struct (env : struct_env) name =
  match Hashtbl.find_opt env name with
  | Some def -> def
  | None -> invalid_arg ("Types.find_struct: unknown struct " ^ name)

(** Size of a type in 64-bit words. *)
let rec size_words (env : struct_env) = function
  | Void -> 0
  | I64 | Ptr _ | Func _ -> 1
  | Array (elt, n) -> n * size_words env elt
  | Struct name ->
    let def = find_struct env name in
    List.fold_left (fun acc (_, ty) -> acc + size_words env ty) 0 def.fields

(** Word offset of [field] within struct [name]. *)
let field_offset (env : struct_env) name field =
  let def = find_struct env name in
  let rec scan off = function
    | [] ->
      invalid_arg
        (Printf.sprintf "Types.field_offset: no field %s in struct %s" field
           name)
    | (f, ty) :: rest ->
      if String.equal f field then off else scan (off + size_words env ty) rest
  in
  scan 0 def.fields

let field_type (env : struct_env) name field =
  let def = find_struct env name in
  match List.assoc_opt field def.fields with
  | Some ty -> ty
  | None ->
    invalid_arg
      (Printf.sprintf "Types.field_type: no field %s in struct %s" field name)

(** A coarse signature class used by the LLVM-CFI baseline: two function
    types are in the same equivalence class iff they have the same number
    of parameters and the same pointer/integer shape per position.  This
    mirrors clang CFI's type-based matching coarseness. *)
let rec shape = function
  | Void -> 'v'
  | I64 -> 'i'
  | Ptr _ -> 'p'
  | Struct _ -> 's'
  | Array _ -> 'a'
  | Func _ -> 'f'

and signature_class { params; ret } =
  let buf = Buffer.create 8 in
  Buffer.add_char buf (shape ret);
  Buffer.add_char buf ':';
  List.iter (fun ty -> Buffer.add_char buf (shape ty)) params;
  Buffer.contents buf
