(** Types of the SIL intermediate representation.

    SIL is word-oriented: every scalar occupies one 64-bit word; structs
    and arrays are laid out as consecutive words.  Struct bodies live in
    a per-program {!struct_env} and are referenced by name. *)

type t =
  | Void
  | I64                          (** 64-bit integer (also chars, flags) *)
  | Ptr of t                     (** pointer *)
  | Struct of string             (** reference to a named struct *)
  | Array of t * int             (** fixed-length array *)
  | Func of signature            (** function type (for pointers) *)

and signature = { params : t list; ret : t }

val pp : Format.formatter -> t -> unit
val show : t -> string
val equal : t -> t -> bool
val compare : t -> t -> int
val pp_signature : Format.formatter -> signature -> unit
val show_signature : signature -> string
val equal_signature : signature -> signature -> bool
val compare_signature : signature -> signature -> int

(** A named struct definition: ordered fields with their types. *)
type struct_def = { sname : string; fields : (string * t) list }

val pp_struct_def : Format.formatter -> struct_def -> unit
val show_struct_def : struct_def -> string
val equal_struct_def : struct_def -> struct_def -> bool

(** Environment of named struct definitions. *)
type struct_env = (string, struct_def) Hashtbl.t

val struct_env_create : unit -> struct_env

(** [define_struct env def] registers [def].
    @raise Invalid_argument on a duplicate name. *)
val define_struct : struct_env -> struct_def -> unit

(** @raise Invalid_argument if the struct is unknown. *)
val find_struct : struct_env -> string -> struct_def

(** Size of a type in 64-bit words ([Void] is 0). *)
val size_words : struct_env -> t -> int

(** Word offset of a field within a struct.
    @raise Invalid_argument if the struct or field is unknown. *)
val field_offset : struct_env -> string -> string -> int

(** Type of a field within a struct. *)
val field_type : struct_env -> string -> string -> t

(** One-character shape of a type (used by signature classes). *)
val shape : t -> char

(** Coarse signature equivalence class, modelling the type-granularity
    of clang-style CFI: same arity and same per-position shapes. *)
val signature_class : signature -> string
