(* Well-formedness checking for programs.  Run by workload constructors
   and tests so that malformed IR fails fast rather than misbehaving in
   the interpreter. *)

type error = { loc : string; message : string }

let error loc fmt = Printf.ksprintf (fun message -> { loc; message }) fmt

let pp_error fmt (e : error) = Format.fprintf fmt "%s: %s" e.loc e.message

let check_func (prog : Prog.t) (f : Func.t) : error list =
  let errs = ref [] in
  let add loc fmt = Printf.ksprintf (fun m -> errs := { loc; message = m } :: !errs) fmt in
  let labels =
    List.fold_left (fun acc (b : Func.block) -> b.label :: acc) [] f.blocks
  in
  let distinct = List.sort_uniq String.compare labels in
  if List.length distinct <> List.length labels then
    add f.fname "duplicate block labels";
  let var_known v = List.mem_assoc v (Func.all_vars f) in
  let check_operand loc op =
    match (op : Operand.t) with
    | Var v -> if not (var_known v) then add loc "unknown variable %s#%d" v.vname v.vid
    | Global g ->
      if not (List.exists (fun (x : Prog.global) -> String.equal x.gname g) prog.globals)
      then add loc "unknown global %s" g
    | Func_addr fn ->
      if not (Prog.mem_func prog fn) then add loc "address of unknown function %s" fn
    | Const _ | Cstr _ | Null -> ()
  in
  let check_place loc p =
    List.iter (check_operand loc) (Place.operands p);
    (match (p : Place.t) with
    | Lvar v -> if not (var_known v) then add loc "unknown variable %s#%d" v.vname v.vid
    | Lglobal g ->
      if not (List.exists (fun (x : Prog.global) -> String.equal x.gname g) prog.globals)
      then add loc "unknown global %s" g
    | Lfield (_, sname, field) -> (
      match Hashtbl.find_opt prog.structs sname with
      | None -> add loc "unknown struct %s" sname
      | Some def ->
        if not (List.mem_assoc field def.Types.fields) then
          add loc "struct %s has no field %s" sname field)
    | Lindex _ | Lderef _ -> ())
  in
  List.iter
    (fun (loc, ins) ->
      let locs = Loc.to_string loc in
      List.iter (check_operand locs) (Instr.operands ins);
      (match (ins : Instr.t) with
      | Assign (v, rv) ->
        if not (var_known v) then add locs "assign to unknown variable %s#%d" v.vname v.vid;
        (match rv with
        | Load p | Addr_of p -> check_place locs p
        | Use _ | Binop _ -> ())
      | Store (p, _) -> check_place locs p
      | Call { target = Direct callee; args; _ } -> (
        match Hashtbl.find_opt prog.funcs callee with
        | None -> add locs "call to unknown function %s" callee
        | Some g ->
          let arity = List.length g.Func.params in
          let n = List.length args in
          (* Syscall stubs follow the 6-register kernel ABI: fewer
             arguments are allowed (unused registers read as zero). *)
          let ok = if Func.is_syscall_stub g then n <= arity else n = arity in
          if not ok then
            add locs "call to %s: %d args, expected %d" callee n arity)
      | Call { target = Indirect _; _ } -> ()))
    (Func.instrs f);
  List.iter
    (fun (b : Func.block) ->
      let check_label l =
        if not (List.mem l labels) then
          add (f.fname ^ ":" ^ b.label) "jump to unknown label %s" l
      in
      match b.term with
      | Jump l -> check_label l
      | Branch (op, l1, l2) ->
        check_operand (f.fname ^ ":" ^ b.label) op;
        check_label l1;
        check_label l2
      | Ret (Some op) -> check_operand (f.fname ^ ":" ^ b.label) op
      | Ret None | Halt -> ())
    f.blocks;
  List.rev !errs

let check (prog : Prog.t) : error list =
  let entry_errs =
    if Prog.mem_func prog prog.entry then []
    else [ error "program" "entry function %s not defined" prog.entry ]
  in
  entry_errs @ List.concat_map (check_func prog) (Prog.functions prog)

(** Raise [Invalid_argument] with a readable report if the program is
    malformed. *)
let check_exn (prog : Prog.t) =
  match check prog with
  | [] -> ()
  | errs ->
    let buf = Buffer.create 256 in
    List.iter
      (fun e -> Buffer.add_string buf (Format.asprintf "%a\n" pp_error e))
      errs;
    invalid_arg ("Validate.check_exn:\n" ^ Buffer.contents buf)
