lib/workloads/appkit.ml: Printf Sil
