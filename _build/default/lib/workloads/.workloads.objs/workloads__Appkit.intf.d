lib/workloads/appkit.mli: Sil
