lib/workloads/drivers.ml: Bastion Defenses Hashtbl Kernel Lazy Machine Nginx_model Printf Sil Sqlite_model Vsftpd_model
