lib/workloads/drivers.mli: Bastion Kernel Lazy Machine Nginx_model Sil Sqlite_model Vsftpd_model
