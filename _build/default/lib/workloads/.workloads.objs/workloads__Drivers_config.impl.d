lib/workloads/drivers_config.ml:
