lib/workloads/nginx_model.ml: Appkit Drivers_config Kernel List Machine Sil
