lib/workloads/nginx_model.mli: Kernel Machine Sil
