lib/workloads/sqlite_model.ml: Appkit Drivers_config Int64 Kernel List Machine Sil
