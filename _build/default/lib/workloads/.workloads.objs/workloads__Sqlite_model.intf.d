lib/workloads/sqlite_model.mli: Kernel Machine Sil
