lib/workloads/vsftpd_model.ml: Appkit Drivers_config Int64 Kernel Machine Sil
