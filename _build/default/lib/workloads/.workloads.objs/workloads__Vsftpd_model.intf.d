lib/workloads/vsftpd_model.mli: Kernel Machine Sil
