(* Shared construction helpers for the three application models.

   The models are written directly in SIL through the builder; this
   module provides the recurring shapes: counted loops, syscall-heavy
   init phases, and "filler" code that pads the static structure of a
   model up to the callsite counts the paper reports in Table 5 (filler
   is never executed — it only gives the static analyses a
   realistically-sized program to chew on). *)

module B = Sil.Builder
open Sil.Operand

let i64 = Sil.Types.I64
let ptr = Sil.Types.Ptr Sil.Types.I64

(** Emit [body] inside a counted loop executing [count] times.  Labels
    are derived from [tag] so multiple loops can coexist in a function. *)
let counted_loop (fb : B.fb) ~tag ~count body =
  let i = B.local fb (tag ^ "_i") i64 in
  B.set fb i (const 0);
  B.block fb (tag ^ "_head");
  let cond = B.local fb (tag ^ "_c") i64 in
  B.binop fb cond Sil.Instr.Lt (Var i) (const count);
  B.branch fb (Var cond) (tag ^ "_body") (tag ^ "_done");
  B.block fb (tag ^ "_body");
  body fb;
  B.binop fb i Sil.Instr.Add (Var i) (const 1);
  B.jump fb (tag ^ "_head");
  B.block fb (tag ^ "_done")

(** A compute-only loop of [iters] iterations (models parsing, hashing,
    b-tree walking...): burns a deterministic number of cycles. *)
let compute_loop (fb : B.fb) ~tag ~iters =
  counted_loop fb ~tag ~count:iters (fun fb ->
      let acc = B.local fb (tag ^ "_acc") i64 in
      B.binop fb acc Sil.Instr.Xor (Var acc) (const 0x9E37);
      B.binop fb acc Sil.Instr.Add (Var acc) (const 13))

(** Generate never-executed filler functions so the model's static
    callsite counts approach the paper's Table 5 numbers.  Produces
    [direct] direct and [indirect] indirect callsites spread over
    functions of ~10 callsites each.  Returns the number of functions
    generated. *)
let add_filler (pb : B.program) ~prefix ~direct ~indirect =
  let calls_per_func = 10 in
  let total = direct + indirect in
  let nfuncs = max 1 ((total + calls_per_func - 1) / calls_per_func) in
  let emitted_direct = ref 0 and emitted_indirect = ref 0 in
  for i = 0 to nfuncs - 1 do
    let fb =
      B.func pb
        (Printf.sprintf "%s_filler_%d" prefix i)
        ~params:[ ("a", i64); ("b", ptr) ]
    in
    let callee = Printf.sprintf "%s_filler_%d" prefix ((i + 1) mod nfuncs) in
    for _ = 1 to calls_per_func do
      (* Interleave indirect callsites at the proportion requested. *)
      if
        !emitted_indirect * total < indirect * (!emitted_direct + !emitted_indirect + 1)
        && !emitted_indirect < indirect
      then begin
        incr emitted_indirect;
        B.call_indirect fb (Var (B.param fb 1)) [ Var (B.param fb 0) ]
      end
      else if !emitted_direct < direct then begin
        incr emitted_direct;
        if i = nfuncs - 1 && callee = Printf.sprintf "%s_filler_0" prefix then
          B.call fb callee [ Var (B.param fb 0); Var (B.param fb 1) ]
        else B.call fb callee [ Var (B.param fb 0); Var (B.param fb 1) ]
      end
    done;
    B.ret fb None;
    B.seal fb
  done;
  nfuncs

(** Count application callsites of a built program (Table 5 rows 1-3). *)
let callsite_stats prog =
  Sil.Callgraph.stats (Sil.Callgraph.build prog)
