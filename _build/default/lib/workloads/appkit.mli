(** Shared construction helpers for the application models. *)

val i64 : Sil.Types.t
val ptr : Sil.Types.t

(** Emit [body] inside a counted loop executing [count] times; block
    labels derive from [tag] so multiple loops coexist in a function. *)
val counted_loop :
  Sil.Builder.fb -> tag:string -> count:int -> (Sil.Builder.fb -> unit) -> unit

(** A compute-only loop (models parsing, hashing, b-tree walking). *)
val compute_loop : Sil.Builder.fb -> tag:string -> iters:int -> unit

(** Generate never-executed filler functions so a model's static
    callsite counts reach the paper's Table 5 numbers; returns the
    number of functions generated. *)
val add_filler : Sil.Builder.program -> prefix:string -> direct:int -> indirect:int -> int

(** Table 5 rows 1-3 for a built program. *)
val callsite_stats : Sil.Prog.t -> Sil.Callgraph.stats
