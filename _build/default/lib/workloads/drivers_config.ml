(* Global scale of the simulated clock.  Only ratios matter for the
   reproduced figures; this constant just puts the absolute throughput
   numbers in a recognisable range. *)

let cycles_per_second = 3.0e9
let cycles_per_minute = 60.0 *. cycles_per_second
