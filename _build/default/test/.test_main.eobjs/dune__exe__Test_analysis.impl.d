test/test_analysis.ml: Alcotest Array Bastion Kernel List Machine Option Sil Stdlib String Testlib
