test/test_attacks.ml: Alcotest Attacks Bastion List Machine Printf String Testlib
