test/test_coverage.ml: Alcotest Bastion Format Kernel List Machine Sil Stdlib Testlib
