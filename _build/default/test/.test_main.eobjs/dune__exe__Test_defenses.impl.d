test/test_defenses.ml: Alcotest Bastion Defenses Kernel List Machine Sil String Testlib
