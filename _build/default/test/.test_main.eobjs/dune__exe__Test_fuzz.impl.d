test/test_fuzz.ml: Bastion Kernel List Machine Printf QCheck QCheck_alcotest Sil Workloads
