test/test_integration.ml: Alcotest Bastion Cet Defenses Kernel List Machine Sil String Testlib Workloads
