test/test_kernel.ml: Alcotest Array Kernel List Machine Sil Testlib
