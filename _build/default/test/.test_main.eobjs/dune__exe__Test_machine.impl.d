test/test_machine.ml: Alcotest Int64 Kernel List Machine Sil String Testlib
