test/test_metadata_io.ml: Alcotest Astring Bastion Filename Fun Hashtbl Kernel List Machine Sil String Sys Testlib Workloads
