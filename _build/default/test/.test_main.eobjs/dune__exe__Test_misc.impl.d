test/test_misc.ml: Alcotest Astring Bastion Hashtbl Int64 Kernel List Machine Report Sil String Testlib Workloads
