test/test_monitor.ml: Alcotest Array Attacks Bastion Char Int64 Kernel List Machine Sil String Testlib
