test/test_props.ml: Bastion Hashtbl Int64 Kernel List Machine QCheck QCheck_alcotest Sil String Testlib Workloads
