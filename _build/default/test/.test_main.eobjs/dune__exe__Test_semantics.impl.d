test/test_semantics.ml: Alcotest Bastion Kernel List Machine Sil Testlib Workloads
