test/test_sil.ml: Alcotest Astring Kernel List Sil Testlib
