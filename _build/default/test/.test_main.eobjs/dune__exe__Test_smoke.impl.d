test/test_smoke.ml: Alcotest Bastion Kernel List Machine Sil String Testlib
