test/test_workloads.ml: Alcotest Kernel List Printf Workloads
