test/testlib.ml: Alcotest Bastion Kernel Machine Sil String
