(* Unit tests for the BASTION compiler-side analyses: call-type
   classification, control-flow metadata, argument-integrity analysis
   and the instrumentation pass. *)

module B = Sil.Builder
open Sil.Operand

let i64 = Sil.Types.I64
let ptr = Sil.Types.Ptr Sil.Types.I64

(* A program covering all call-type classes:
   - mmap: called directly only
   - setuid: address taken only (function-pointer table)
   - mprotect: both direct call and address taken
   - execve: never referenced (not-callable) *)
let calltype_fixture () =
  let pb = B.program () in
  Kernel.Syscalls.declare_stubs pb;
  B.global pb "g_tab" (Sil.Types.Array (i64, 2)) Sil.Prog.Zero;
  let fb = B.func pb "main" ~params:[] in
  let t = B.local fb "t" ptr in
  B.call fb "mmap" [ Null; const 4096; const 3; const 2; const (-1); const 0 ];
  B.call fb "mprotect" [ Null; const 4096; const 1 ];
  B.addr_of fb t (Sil.Place.Lglobal "g_tab");
  B.store fb (Sil.Place.Lindex (Var t, const 0, i64)) (Func_addr "setuid");
  B.store fb (Sil.Place.Lindex (Var t, const 1, i64)) (Func_addr "mprotect");
  let h = B.local fb "h" ptr in
  B.load fb h (Sil.Place.Lindex (Var t, const 0, i64));
  B.call_indirect fb (Var h) [ const 0 ];
  B.halt fb;
  B.seal fb;
  B.build pb ~entry:"main"

let test_calltype_classes () =
  let prog = calltype_fixture () in
  let cg = Sil.Callgraph.build prog in
  let ct = Bastion.Calltype.analyze prog cg in
  let check name ~dir_ ~ind =
    let c = Bastion.Calltype.call_type ct (Kernel.Syscalls.number name) in
    Alcotest.(check bool) (name ^ " direct") dir_ c.directly;
    Alcotest.(check bool) (name ^ " indirect") ind c.indirectly
  in
  check "mmap" ~dir_:true ~ind:false;
  check "setuid" ~dir_:false ~ind:true;
  check "mprotect" ~dir_:true ~ind:true;
  check "execve" ~dir_:false ~ind:false;
  Alcotest.(check int) "one legit indirect callsite" 1
    (Sil.Loc.Set.cardinal ct.legit_indirect);
  Alcotest.(check int) "sensitive indirectly-callable" 2
    (Bastion.Calltype.sensitive_indirect_count ct
       ~sensitive_numbers:Kernel.Syscalls.sensitive_numbers)

(* Chain fixture: main -> a -> b -> mmap; plus an unrelated function c
   and an indirect-only entry point. *)
let cfg_fixture () =
  let pb = B.program () in
  Kernel.Syscalls.declare_stubs pb;
  B.global pb "g_fp" ptr (Sil.Prog.Fptr "handler");
  let fb = B.func pb "b" ~params:[ ("sz", i64) ] in
  B.call fb "mmap" [ Null; Var (B.param fb 0); const 3; const 2; const (-1); const 0 ];
  B.ret fb None;
  B.seal fb;
  let fb = B.func pb "a" ~params:[ ("sz", i64) ] in
  B.call fb "b" [ Var (B.param fb 0) ];
  B.ret fb None;
  B.seal fb;
  (* handler is only ever called through g_fp, and it calls b too. *)
  let fb = B.func pb "handler" ~params:[ ("sz", i64) ] in
  B.call fb "b" [ Var (B.param fb 0) ];
  B.ret fb None;
  B.seal fb;
  (* c never leads to a sensitive syscall. *)
  let fb = B.func pb "c" ~params:[] in
  B.ret fb None;
  B.seal fb;
  let fb = B.func pb "main" ~params:[] in
  let h = B.local fb "h" ptr in
  B.call fb "a" [ const 64 ];
  B.call fb "c" [];
  B.load fb h (Sil.Place.Lglobal "g_fp");
  B.call_indirect fb (Var h) [ const 128 ];
  B.halt fb;
  B.seal fb;
  B.build pb ~entry:"main"

let test_cfg_metadata () =
  let prog = cfg_fixture () in
  let cg = Sil.Callgraph.build prog in
  let cfg =
    Bastion.Cfg_analysis.analyze prog cg
      ~sensitive_numbers:Kernel.Syscalls.sensitive_numbers
  in
  let loc_of_call ~in_func ~callee =
    List.find_map
      (fun (loc, _, target, _) ->
        match target with
        | Sil.Instr.Direct c
          when String.equal c callee && String.equal loc.Sil.Loc.func in_func ->
          Some loc
        | _ -> None)
      (Sil.Prog.calls prog)
    |> Option.get
  in
  (* Valid pairs along the chain. *)
  Alcotest.(check bool) "a's call is valid caller of b" true
    (Bastion.Cfg_analysis.is_valid_caller cfg ~callee:"b"
       ~caller_site:(loc_of_call ~in_func:"a" ~callee:"b"));
  Alcotest.(check bool) "handler's call is valid caller of b" true
    (Bastion.Cfg_analysis.is_valid_caller cfg ~callee:"b"
       ~caller_site:(loc_of_call ~in_func:"handler" ~callee:"b"));
  Alcotest.(check bool) "main's a-call valid for a" true
    (Bastion.Cfg_analysis.is_valid_caller cfg ~callee:"a"
       ~caller_site:(loc_of_call ~in_func:"main" ~callee:"a"));
  (* Wrong pairings rejected. *)
  Alcotest.(check bool) "a's b-call is not a valid caller of a" false
    (Bastion.Cfg_analysis.is_valid_caller cfg ~callee:"a"
       ~caller_site:(loc_of_call ~in_func:"a" ~callee:"b"));
  (* Coverage: functions on sensitive paths only. *)
  Alcotest.(check bool) "b covered" true (Bastion.Cfg_analysis.is_covered cfg "b");
  Alcotest.(check bool) "handler covered" true
    (Bastion.Cfg_analysis.is_covered cfg "handler");
  Alcotest.(check bool) "c not covered" false (Bastion.Cfg_analysis.is_covered cfg "c");
  (* The mmap callsite is a sensitive callsite. *)
  Alcotest.(check bool) "sensitive callsite" true
    (Bastion.Cfg_analysis.is_sensitive_callsite cfg (loc_of_call ~in_func:"b" ~callee:"mmap"));
  Alcotest.(check bool) "pairs recorded" true (Bastion.Cfg_analysis.pair_count cfg >= 4)

(* Figure 2 fixture: foo computes flags, passes them through bar to
   mmap; gshm->size feeds the length argument. *)
let figure2_fixture () =
  let pb = B.program () in
  Kernel.Syscalls.declare_stubs pb;
  B.struct_ pb "shm_t" [ ("size", i64); ("tag", i64) ];
  B.global pb "g_shm" (Sil.Types.Struct "shm_t") Sil.Prog.Zero;
  let fb = B.func pb "bar" ~params:[ ("b0", i64); ("b1", ptr); ("b2", i64) ] in
  let prots = B.local fb "prots" i64 in
  let size = B.local fb "size" i64 in
  let shmp = B.local fb "shmp" ptr in
  B.binop fb prots Sil.Instr.Or (const 1) (const 2);
  B.addr_of fb shmp (Sil.Place.Lglobal "g_shm");
  B.load fb size (Sil.Place.Lfield (Var shmp, "shm_t", "size"));
  B.call fb "mmap" [ Null; Var size; Var prots; Var (B.param fb 2); const (-1); const 0 ];
  B.ret fb None;
  B.seal fb;
  let fb = B.func pb "foo" ~params:[ ("f0", i64); ("f1", ptr); ("f2", i64) ] in
  let flags = B.local fb "flags" i64 in
  B.binop fb flags Sil.Instr.Or (const 0x20) (const 0x01);
  B.call fb "bar" [ Var (B.param fb 0); Var (B.param fb 1); Var flags ];
  B.ret fb None;
  B.seal fb;
  let fb = B.func pb "main" ~params:[] in
  let shmp = B.local fb "shmp" ptr in
  B.addr_of fb shmp (Sil.Place.Lglobal "g_shm");
  B.store fb (Sil.Place.Lfield (Var shmp, "shm_t", "size")) (const 65536);
  B.call fb "foo" [ const 0; Null; const 0 ];
  B.halt fb;
  B.seal fb;
  B.build pb ~entry:"main"

let var_named prog fname name =
  let f = Sil.Prog.find_func prog fname in
  fst
    (List.find
       (fun ((v : Sil.Operand.var), _) -> String.equal v.vname name)
       (Sil.Func.all_vars f))

let test_arg_analysis_figure2 () =
  let prog = figure2_fixture () in
  let cg = Sil.Callgraph.build prog in
  let a =
    Bastion.Arg_analysis.analyze prog cg
      ~sensitive_numbers:Kernel.Syscalls.sensitive_numbers
  in
  (* Sensitive variables: bar's prots/size/b2, foo's flags, the size
     field of shm_t. *)
  let sens f v = Bastion.Arg_analysis.is_sensitive_local a f (var_named prog f v) in
  Alcotest.(check bool) "prots sensitive" true (sens "bar" "prots");
  Alcotest.(check bool) "size sensitive" true (sens "bar" "size");
  Alcotest.(check bool) "b2 sensitive (param)" true (sens "bar" "b2");
  Alcotest.(check bool) "flags sensitive (inter-procedural)" true (sens "foo" "flags");
  Alcotest.(check bool) "shm_t.size field-sensitive" true
    (Bastion.Arg_analysis.is_sensitive_field a "shm_t" "size");
  Alcotest.(check bool) "shm_t.tag untouched" false
    (Bastion.Arg_analysis.is_sensitive_field a "shm_t" "tag");
  (* The base pointer itself is not tracked — coverage of g_shm.size
     comes from the field item, checked per struct-typed global in the
     monitor metadata (see test_monitor). *)
  Alcotest.(check bool) "g_shm itself untracked" false
    (Bastion.Arg_analysis.is_sensitive_global a "g_shm");
  (* Two plans: the mmap callsite and the bar() argument-carrying
     callsite in foo. *)
  Alcotest.(check int) "two callsite plans" 2 (Bastion.Arg_analysis.plan_count a);
  let plans = Bastion.Arg_analysis.all_plans a in
  let mmap_plan =
    List.find (fun (p : Bastion.Arg_analysis.plan) -> p.pl_callee = "mmap") plans
  in
  Alcotest.(check int) "mmap: six bound args" 6 (List.length mmap_plan.pl_args);
  let bar_plan =
    List.find (fun (p : Bastion.Arg_analysis.plan) -> p.pl_callee = "bar") plans
  in
  Alcotest.(check bool) "bar plan has no sysno" true (bar_plan.pl_sysno = None);
  (match List.assoc_opt 2 bar_plan.pl_args with
  | Some (Bastion.Arg_analysis.Bind_var v) ->
    Alcotest.(check string) "bar pos2 binds flags" "flags" v.vname
  | _ -> Alcotest.fail "bar plan should bind position 2 to flags")

let test_instrumentation_pass () =
  let prog = figure2_fixture () in
  let cg = Sil.Callgraph.build prog in
  let a =
    Bastion.Arg_analysis.analyze prog cg
      ~sensitive_numbers:Kernel.Syscalls.sensitive_numbers
  in
  let inst = Bastion.Instrument.run prog a in
  (* The instrumented program is still well-formed and the original is
     untouched. *)
  Sil.Validate.check_exn inst.iprog;
  Alcotest.(check bool) "original untouched" true
    (not (Sil.Prog.mem_func prog Bastion.Instrument.write_mem_name));
  Alcotest.(check bool) "intrinsics declared" true
    (Sil.Prog.mem_func inst.iprog Bastion.Instrument.write_mem_name);
  Alcotest.(check bool) "write_mem sites exist" true (inst.counts.write_mem > 0);
  Alcotest.(check bool) "bind_mem sites exist" true (inst.counts.bind_mem > 0);
  Alcotest.(check bool) "bind_const sites exist" true (inst.counts.bind_const > 0);
  (* Metadata locations point at the actual call instructions. *)
  List.iter
    (fun (cm : Bastion.Instrument.callsite_meta) ->
      match Sil.Prog.instr_at inst.iprog cm.cm_loc with
      | Sil.Instr.Call { target = Sil.Instr.Direct callee; _ } ->
        Alcotest.(check string) "meta names its callee" cm.cm_callee callee
      | _ -> Alcotest.fail "metadata loc is not a direct call")
    inst.callsites;
  (* Ids are unique. *)
  let ids = List.map (fun (cm : Bastion.Instrument.callsite_meta) -> cm.cm_id) inst.callsites in
  let distinct = List.length (List.sort_uniq Stdlib.compare ids) in
  Alcotest.(check int) "unique ids" (List.length ids) distinct

let test_instrumented_program_runs () =
  (* The instrumented Figure 2 program must still compute the same
     thing: mmap called once with size 65536. *)
  let prog = figure2_fixture () in
  let protected_prog = Bastion.Api.protect prog in
  let session = Bastion.Api.launch protected_prog () in
  Testlib.check_exit (Machine.run session.machine);
  match Kernel.Process.executed session.process "mmap" with
  | [ e ] -> Alcotest.(check int64) "size arg preserved" 65536L e.ev_args.(1)
  | _ -> Alcotest.fail "expected exactly one mmap"

let test_cold_code_not_instrumented () =
  (* Functions without sensitive state get no ctx_* calls. *)
  let prog = cfg_fixture () in
  let cg = Sil.Callgraph.build prog in
  let a =
    Bastion.Arg_analysis.analyze prog cg
      ~sensitive_numbers:Kernel.Syscalls.sensitive_numbers
  in
  let inst = Bastion.Instrument.run prog a in
  let c = Sil.Prog.find_func inst.iprog "c" in
  Alcotest.(check int) "c untouched" 0 (List.length (Sil.Func.instrs c))

let suites =
  [
    ( "analysis",
      [
        Alcotest.test_case "call-type classes" `Quick test_calltype_classes;
        Alcotest.test_case "control-flow metadata" `Quick test_cfg_metadata;
        Alcotest.test_case "argument analysis (Figure 2)" `Quick test_arg_analysis_figure2;
        Alcotest.test_case "instrumentation pass" `Quick test_instrumentation_pass;
        Alcotest.test_case "instrumented program runs" `Quick
          test_instrumented_program_runs;
        Alcotest.test_case "cold code not instrumented" `Quick
          test_cold_code_not_instrumented;
      ] );
  ]
