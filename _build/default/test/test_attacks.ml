(* Security case-study tests (Table 6).

   Quick cases cover the catalog's shape and one representative attack
   per category end-to-end; the Slow case replays the full 32-attack
   matrix and checks every row against the paper's verdicts. *)

let test_catalog_shape () =
  Alcotest.(check int) "32 attacks" 32 Attacks.Catalog.count;
  let count cat =
    List.length
      (List.filter (fun (a : Attacks.Attack.t) -> String.equal a.a_category cat)
         Attacks.Catalog.all)
  in
  Alcotest.(check int) "18 ROP" 18 (count "ROP");
  Alcotest.(check int) "9 direct" 9 (count "Direct");
  Alcotest.(check int) "5 indirect" 5 (count "Indirect");
  (* Ids are unique. *)
  let ids = List.map (fun (a : Attacks.Attack.t) -> a.a_id) Attacks.Catalog.all in
  Alcotest.(check int) "unique ids" 32 (List.length (List.sort_uniq String.compare ids));
  (* Every attack is blocked by at least one context (the paper's
     headline claim). *)
  List.iter
    (fun (a : Attacks.Attack.t) ->
      Alcotest.(check bool)
        (a.a_id ^ " blocked by some context")
        true
        (a.a_expected.e_ct || a.a_expected.e_cf || a.a_expected.e_ai))
    Attacks.Catalog.all

let find id =
  List.find (fun (a : Attacks.Attack.t) -> String.equal a.a_id id) Attacks.Catalog.all

let check_row (r : Attacks.Runner.row) =
  if not (Attacks.Runner.matches_expectation r) then
    Alcotest.failf "%s diverges from Table 6: undef=%s ct=%s cf=%s ai=%s full=%s"
      r.r_attack.a_id
      (Attacks.Runner.outcome_name r.r_undefended)
      (Attacks.Runner.outcome_name r.r_ct)
      (Attacks.Runner.outcome_name r.r_cf)
      (Attacks.Runner.outcome_name r.r_ai)
      (Attacks.Runner.outcome_name r.r_full)

let test_one id () = check_row (Attacks.Runner.evaluate (find id))

let test_full_catalog () =
  List.iter (fun a -> check_row (Attacks.Runner.evaluate a)) Attacks.Catalog.all

let test_dep_guard () =
  (* The attacker primitives respect the threat model: no writes to
     code/rodata or into the hidden shadow region. *)
  let prog = Testlib.exec_program () in
  let machine = Machine.create prog in
  Alcotest.check_raises "code write faults"
    (Attacks.Primitives.Dep_violation Machine.Layout.code_base) (fun () ->
      Attacks.Primitives.poke machine Machine.Layout.code_base 1L);
  Alcotest.check_raises "shadow write faults"
    (Attacks.Primitives.Dep_violation Machine.Layout.shadow_base) (fun () ->
      Attacks.Primitives.poke machine Machine.Layout.shadow_base 1L);
  (* Globals are fair game. *)
  Attacks.Primitives.poke machine (Machine.global_address machine "gctx") 5L;
  Alcotest.(check int64) "global poked" 5L
    (Attacks.Primitives.peek machine (Machine.global_address machine "gctx"))

let suites =
  [
    ( "attacks",
      [
        Alcotest.test_case "catalog shape" `Quick test_catalog_shape;
        Alcotest.test_case "DEP / shadow-hiding guard" `Quick test_dep_guard;
        Alcotest.test_case "ROP representative" `Quick (test_one "rop-exec-nginx-1");
        Alcotest.test_case "root-ROP representative" `Quick (test_one "rop-root-daemon");
        Alcotest.test_case "direct representative (CsCFI)" `Quick
          (test_one "newton-cscfi");
        Alcotest.test_case "CVE representative (nginx 2013-2028)" `Quick
          (test_one "cve-2013-2028");
        Alcotest.test_case "indirect representative (NEWTON CPI)" `Quick
          (test_one "newton-cpi");
        Alcotest.test_case "data-only representative (AOCR nginx 2)" `Quick
          (test_one "aocr-nginx-2");
        Alcotest.test_case "COOP representative" `Quick (test_one "coop-chrome");
        Alcotest.test_case "full Table 6 matrix" `Slow test_full_catalog;
      ]
      @ List.map
          (fun (a : Attacks.Attack.t) ->
            Alcotest.test_case
              (Printf.sprintf "table6 row: %s" a.a_id)
              `Quick
              (fun () -> check_row (Attacks.Runner.evaluate a)))
          Attacks.Catalog.all );
  ]

(* Appended: every victim program must run clean under full BASTION
   when no attack is installed (false-positive check across all the
   diverse victim code shapes). *)
let all_victims =
  Attacks.Victims.
    [
      nginx; sqlite; apache; chrome; loader_app; priv_daemon; ffmpeg_http;
      ffmpeg_rtmp; php; sudo; libtiff; python;
    ]

let test_victim_benign (v : Attacks.Victims.t) () =
  let prog = v.v_build () in
  let protected_prog = Bastion.Api.protect prog in
  let session = Bastion.Api.launch protected_prog () in
  v.v_setup session.process;
  Testlib.check_exit (Machine.run session.machine);
  Alcotest.(check int) "no denials" 0
    (List.length (Bastion.Monitor.denials session.monitor))

let suites =
  match suites with
  | [ (name, cases) ] ->
    [
      ( name,
        cases
        @ List.map
            (fun (v : Attacks.Victims.t) ->
              Alcotest.test_case
                (Printf.sprintf "benign victim: %s" v.v_name)
                `Quick (test_victim_benign v))
            all_victims );
    ]
  | other -> other

(* Appended: CET intercepts ROP before the monitor even sees a trap
   (§10.1 — the paper evaluates BASTION's ROP defense in CET's absence;
   with CET the shadow stack fires first). *)
let test_rop_with_cet () =
  let attack = find "rop-exec-nginx-1" in
  let prog = attack.a_victim.v_build () in
  let protected_prog = Bastion.Api.protect prog in
  let session =
    Bastion.Api.launch
      ~machine_config:{ Machine.default_config with cet = true; fuel = Attacks.Runner.attack_fuel }
      protected_prog ()
  in
  attack.a_victim.v_setup session.process;
  attack.a_install session.machine;
  Testlib.check_fault (Machine.run session.machine) Testlib.is_cet_violation "cet"

(* Risk ranking sanity (§11.3). *)
let test_risk_ranking () =
  let ranking = Attacks.Risk.rank () in
  Alcotest.(check bool) "nonempty" true (ranking <> []);
  (match ranking with
  | top :: _ -> Alcotest.(check string) "execve ranks first" "execve" top.r_name
  | [] -> ());
  Alcotest.(check bool) "all goals in protected scope" true
    (Attacks.Risk.all_goals_sensitive ());
  let total = List.fold_left (fun acc (e : Attacks.Risk.entry) -> acc + e.r_attacks) 0 ranking in
  Alcotest.(check int) "every attack counted" Attacks.Catalog.count total

let suites =
  match suites with
  | [ (name, cases) ] ->
    [
      ( name,
        cases
        @ [
            Alcotest.test_case "ROP dies at CET when enabled" `Quick test_rop_with_cet;
            Alcotest.test_case "risk ranking (§11.3)" `Quick test_risk_ranking;
          ] );
    ]
  | other -> other
