(* Last-mile unit coverage: pretty-printer constructors, exit codes,
   builder declarations, shadow binding keyspace, stats plumbing. *)

module B = Sil.Builder
open Sil.Operand

let i64 = Sil.Types.I64

let test_pp_all_constructs () =
  let show_instr i = Format.asprintf "%a" Sil.Pp.pp_instr i in
  let v = { Sil.Operand.vid = 0; vname = "v" } in
  Alcotest.(check string) "assign use" "%v.0 = 7" (show_instr (Assign (v, Use (const 7))));
  Alcotest.(check string) "assign load" "%v.0 = load @g"
    (show_instr (Assign (v, Load (Lglobal "g"))));
  Alcotest.(check string) "assign addr" "%v.0 = addr %v.0"
    (show_instr (Assign (v, Addr_of (Lvar v))));
  Alcotest.(check string) "binop" "%v.0 = xor 1, 2"
    (show_instr (Assign (v, Binop (Xor, const 1, const 2))));
  Alcotest.(check string) "store deref" "store *%v.0 <- null"
    (show_instr (Store (Lderef (Var v), Null)));
  Alcotest.(check string) "indirect call" "call *%v.0(&f)"
    (show_instr (Call { dst = None; target = Indirect (Var v); args = [ Func_addr "f" ] }));
  let show_term t = Format.asprintf "%a" Sil.Pp.pp_terminator t in
  Alcotest.(check string) "branch" "branch %v.0 ? a : b"
    (show_term (Branch (Var v, "a", "b")));
  Alcotest.(check string) "halt" "halt" (show_term Halt);
  Alcotest.(check string) "ret value" "ret 3" (show_term (Ret (Some (const 3))))

let test_exit_codes () =
  let pb = B.program () in
  Kernel.Syscalls.declare_stubs pb;
  let fb = B.func pb "main" ~params:[] in
  B.call fb "exit" [ const 42 ];
  B.halt fb;
  B.seal fb;
  let prog = B.build pb ~entry:"main" in
  let machine = Machine.create prog in
  ignore (Kernel.boot machine);
  match Machine.run machine with
  | Machine.Exited code -> Alcotest.(check int64) "exit code" 42L code
  | Machine.Faulted f -> Alcotest.failf "fault %s" (Machine.fault_to_string f)

let test_entry_return_value () =
  let pb = B.program () in
  let fb = B.func pb "main" ~params:[] in
  let x = B.local fb "x" i64 in
  B.binop fb x Sil.Instr.Mul (const 6) (const 9);
  B.ret fb (Some (Var x));
  B.seal fb;
  let prog = B.build pb ~entry:"main" in
  let machine = Machine.create prog in
  match Machine.run machine with
  | Machine.Exited code -> Alcotest.(check int64) "entry ret is exit value" 54L code
  | Machine.Faulted f -> Alcotest.failf "fault %s" (Machine.fault_to_string f)

let test_intrinsic_declaration () =
  let pb = B.program () in
  B.intrinsic pb "my_probe" ~arity:2;
  let fb = B.func pb "main" ~params:[] in
  B.call fb "my_probe" [ const 1; const 2 ];
  B.halt fb;
  B.seal fb;
  let prog = B.build pb ~entry:"main" in
  Sil.Validate.check_exn prog;
  let machine = Machine.create prog in
  let seen = ref None in
  machine.on_intrinsic <-
    Some
      (fun _ ~name ~args ->
        seen := Some (name, args);
        99L);
  Testlib.check_exit (Machine.run machine);
  match !seen with
  | Some ("my_probe", [| 1L; 2L |]) -> ()
  | _ -> Alcotest.fail "intrinsic not dispatched with its arguments"

let test_binding_keyspace () =
  (* Distinct (id, pos) pairs give distinct keys. *)
  let keys = ref [] in
  for id = 0 to 40 do
    for pos = 0 to 5 do
      keys := Bastion.Shadow_memory.binding_key ~id ~pos :: !keys
    done
  done;
  let n = List.length !keys in
  Alcotest.(check int) "all distinct" n
    (List.length (List.sort_uniq Stdlib.compare !keys))

let test_machine_stats_plumbing () =
  let prog = Testlib.exec_program () in
  let machine = Machine.create prog in
  ignore (Kernel.boot machine);
  ignore (Machine.run machine);
  let s = machine.stats in
  Alcotest.(check bool) "instrs counted" true (s.instrs > 0);
  Alcotest.(check bool) "calls counted" true (s.calls > 0);
  Alcotest.(check bool) "one indirect call" true (s.indirect_calls = 1);
  Alcotest.(check bool) "syscalls counted" true (s.syscalls >= 3);
  Alcotest.(check bool) "rets counted" true (s.rets > 0);
  Alcotest.(check bool) "cycles monotone proxy" true (s.cycles > s.instrs)

let test_monitor_depth_window () =
  (* Depth stats are absent when neither CF nor AI fetched frames. *)
  let prog = Testlib.exec_program () in
  let protected_prog = Bastion.Api.protect prog in
  let session =
    Bastion.Api.launch
      ~monitor_config:
        {
          Bastion.Monitor.default_config with
          contexts = { Bastion.Monitor.ct = true; cf = false; ai = false };
        }
      protected_prog ()
  in
  Testlib.check_exit (Machine.run session.machine);
  Alcotest.(check bool) "no frame walks in CT-only mode" true
    (Bastion.Monitor.depth_stats session.monitor = None)

let suites =
  [
    ( "coverage",
      [
        Alcotest.test_case "pretty-printer constructs" `Quick test_pp_all_constructs;
        Alcotest.test_case "exit codes" `Quick test_exit_codes;
        Alcotest.test_case "entry return value" `Quick test_entry_return_value;
        Alcotest.test_case "intrinsic declaration + dispatch" `Quick
          test_intrinsic_declaration;
        Alcotest.test_case "binding keyspace" `Quick test_binding_keyspace;
        Alcotest.test_case "machine stats plumbing" `Quick test_machine_stats_plumbing;
        Alcotest.test_case "depth stats need frame walks" `Quick test_monitor_depth_window;
      ] );
  ]
