(* Unit tests for the baseline defenses: LLVM CFI, plain syscall
   filtering, debloating — including the bypass behaviours §10 relies
   on for the comparison. *)

module B = Sil.Builder
open Sil.Operand

let i64 = Sil.Types.I64
let ptr = Sil.Types.Ptr Sil.Types.I64

(* Victim with a 3-arg indirect callsite; plugin_a/plugin_b share its
   type, lone_helper has a different arity, rogue is never
   address-taken. *)
let cfi_fixture () =
  let pb = B.program () in
  Kernel.Syscalls.declare_stubs pb;
  B.global pb "g_fp" ptr (Sil.Prog.Fptr "plugin_a");
  B.global pb "g_fp2" ptr (Sil.Prog.Fptr "plugin_b");
  List.iter
    (fun name ->
      let fb = B.func pb name ~params:[ ("a", i64); ("b", i64); ("c", i64) ] in
      let x = B.local fb "x" i64 in
      B.binop fb x Sil.Instr.Add (Var (B.param fb 0)) (Var (B.param fb 1));
      B.ret fb (Some (Var x));
      B.seal fb)
    [ "plugin_a"; "plugin_b" ];
  let fb = B.func pb "lone_helper" ~params:[ ("a", i64) ] in
  B.ret fb (Some (Var (B.param fb 0)));
  B.seal fb;
  let fb = B.func pb "rogue" ~params:[ ("a", i64); ("b", i64); ("c", i64) ] in
  B.ret fb (Some (const 666));
  B.seal fb;
  let fb = B.func pb "main" ~params:[] in
  let h = B.local fb "h" ptr in
  B.load fb h (Sil.Place.Lglobal "g_fp");
  B.call_indirect fb (Var h) [ const 1; const 2; const 3 ];
  B.halt fb;
  B.seal fb;
  B.build pb ~entry:"main"

let run_with_cfi ?poke prog =
  let machine, _proc = Bastion.Api.launch_unprotected prog in
  Defenses.Llvm_cfi.install (Defenses.Llvm_cfi.build prog) machine;
  (match poke with
  | Some f ->
    let fired = ref false in
    machine.on_instr <-
      Some
        (fun m (loc : Sil.Loc.t) ->
          if (not !fired) && String.equal loc.func "main" then begin
            fired := true;
            f m
          end)
  | None -> ());
  Machine.run machine

let test_cfi_benign () = Testlib.check_exit (run_with_cfi (cfi_fixture ()))

let test_cfi_same_class_redirect_passes () =
  (* plugin_b has the same signature class and is address-taken: a
     redirect to it is invisible to type-based CFI (the COOP story). *)
  let outcome =
    run_with_cfi
      ~poke:(fun m ->
        Machine.poke m (Machine.global_address m "g_fp")
          (Machine.function_address m "plugin_b"))
      (cfi_fixture ())
  in
  Testlib.check_exit outcome

let test_cfi_blocks_arity_mismatch () =
  let outcome =
    run_with_cfi
      ~poke:(fun m ->
        Machine.poke m (Machine.global_address m "g_fp")
          (Machine.function_address m "lone_helper"))
      (cfi_fixture ())
  in
  Testlib.check_fault outcome Testlib.is_cfi_violation "cfi"

let test_cfi_blocks_non_address_taken () =
  let outcome =
    run_with_cfi
      ~poke:(fun m ->
        Machine.poke m (Machine.global_address m "g_fp")
          (Machine.function_address m "rogue"))
      (cfi_fixture ())
  in
  Testlib.check_fault outcome Testlib.is_cfi_violation "cfi"

let test_cfi_stub_bypass () =
  (* mprotect's C prototype matches the 3-arg callsite and lazy binding
     takes every stub's address: CFI passes — exactly the CsCFI bypass.
     (It still dies later, at the kernel, only if something else is
     deployed; with CFI alone it executes.) *)
  let prog = cfi_fixture () in
  let machine, proc = Bastion.Api.launch_unprotected prog in
  Defenses.Llvm_cfi.install (Defenses.Llvm_cfi.build prog) machine;
  let fired = ref false in
  machine.on_instr <-
    Some
      (fun m (loc : Sil.Loc.t) ->
        if (not !fired) && String.equal loc.func "main" then begin
          fired := true;
          Machine.poke m (Machine.global_address m "g_fp")
            (Machine.function_address m "mprotect")
        end);
  Testlib.check_exit (Machine.run machine);
  Alcotest.(check int) "mprotect executed under CFI" 1
    (List.length (Kernel.Process.executed proc "mprotect"))

(* --- plain syscall filtering ------------------------------------------- *)

let test_filter_allowlist_derivation () =
  let prog = cfi_fixture () in
  let allow = Defenses.Syscall_filter.allowlist_of_program prog in
  Alcotest.(check (list int)) "nothing used, nothing allowed" [] allow;
  let prog = Testlib.exec_program () in
  let allow = Defenses.Syscall_filter.allowlist_of_program prog in
  Alcotest.(check bool) "execve allowed" true
    (List.mem (Kernel.Syscalls.number "execve") allow);
  Alcotest.(check bool) "setuid not allowed" false
    (List.mem (Kernel.Syscalls.number "setuid") allow)

let test_filter_lets_corrupted_args_through () =
  (* The paper's core criticism: an allowlist cannot stop a *used*
     syscall invoked with corrupted arguments. *)
  let prog = Testlib.exec_program () in
  let machine, proc = Bastion.Api.launch_unprotected prog in
  Defenses.Syscall_filter.install prog proc;
  let evil = Machine.Layout.intern_string machine.layout machine.mem "/bin/sh" in
  let fired = ref false in
  machine.on_instr <-
    Some
      (fun m (loc : Sil.Loc.t) ->
        if (not !fired) && String.equal loc.func "do_exec" then begin
          fired := true;
          Machine.poke m (Machine.global_address m "gctx") evil
        end);
  Testlib.check_exit (Machine.run machine);
  match Kernel.Process.executed proc "execve" with
  | [ e ] -> Alcotest.(check (option string)) "shell ran" (Some "/bin/sh") e.ev_path
  | _ -> Alcotest.fail "expected the corrupted execve to pass the filter"

(* --- debloating ---------------------------------------------------------- *)

let test_debloat () =
  let pb = B.program () in
  Kernel.Syscalls.declare_stubs pb;
  B.global pb "g_fp" ptr (Sil.Prog.Fptr "kept_indirect");
  let fb = B.func pb "kept_direct" ~params:[] in
  B.call fb "mmap" [ Null; const 4096; const 3; const 2; const (-1); const 0 ];
  B.ret fb None;
  B.seal fb;
  let fb = B.func pb "kept_indirect" ~params:[] in
  B.ret fb None;
  B.seal fb;
  let fb = B.func pb "dead_code" ~params:[] in
  B.call fb "setuid" [ const 0 ];
  B.ret fb None;
  B.seal fb;
  let fb = B.func pb "main" ~params:[] in
  B.call fb "kept_direct" [];
  B.halt fb;
  B.seal fb;
  let prog = B.build pb ~entry:"main" in
  let debloated, removed = Defenses.Debloat.run prog in
  Alcotest.(check int) "one function removed" 1 removed;
  Alcotest.(check bool) "dead_code gone" false (Sil.Prog.mem_func debloated "dead_code");
  Alcotest.(check bool) "address-taken kept" true
    (Sil.Prog.mem_func debloated "kept_indirect");
  let surviving = Defenses.Debloat.surviving_syscalls prog in
  Alcotest.(check bool) "mmap survives (still used)" true
    (List.mem (Kernel.Syscalls.number "mmap") surviving);
  Alcotest.(check bool) "setuid eliminated with its only caller" false
    (List.mem (Kernel.Syscalls.number "setuid") surviving)

let suites =
  [
    ( "defenses",
      [
        Alcotest.test_case "CFI benign" `Quick test_cfi_benign;
        Alcotest.test_case "CFI same-class redirect passes" `Quick
          test_cfi_same_class_redirect_passes;
        Alcotest.test_case "CFI blocks arity mismatch" `Quick test_cfi_blocks_arity_mismatch;
        Alcotest.test_case "CFI blocks non-address-taken" `Quick
          test_cfi_blocks_non_address_taken;
        Alcotest.test_case "CFI stub bypass (CsCFI story)" `Quick test_cfi_stub_bypass;
        Alcotest.test_case "filter allowlist derivation" `Quick
          test_filter_allowlist_derivation;
        Alcotest.test_case "filter passes corrupted args" `Quick
          test_filter_lets_corrupted_args_through;
        Alcotest.test_case "debloat" `Quick test_debloat;
      ] );
  ]
