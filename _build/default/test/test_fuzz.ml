(* End-to-end property: NO FALSE POSITIVES.

   Generate random-but-benign programs in the patterns real code uses
   (computed flags, sizes flowing through helper parameters, struct
   fields, loops, indirect dispatch through legitimate tables), protect
   them with full BASTION, and require that:
   - the protected run exits cleanly (the monitor never kills a
     legitimate execution), and
   - the protected run executes exactly the same syscalls as the
     unprotected run. *)

module B = Sil.Builder
open Sil.Operand

let i64 = Sil.Types.I64
let ptr = Sil.Types.Ptr Sil.Types.I64

(* Specification of one random benign program. *)
type spec = {
  sp_mmaps : int;          (* mmap loop iterations *)
  sp_prot : int;           (* computed mprotect value (benign) *)
  sp_depth : int;          (* helper-chain depth to the mmap *)
  sp_requests : int;       (* accept loop length *)
  sp_dispatch : bool;      (* indirect handler dispatch in the loop *)
  sp_use_exec : bool;      (* rarely-taken execve path exists *)
  sp_field_size : int;     (* value stored in the shm struct field *)
}

let gen_spec =
  QCheck.Gen.(
    map
      (fun (mmaps, prot, depth, requests, dispatch, use_exec, field_size) ->
        {
          sp_mmaps = mmaps;
          sp_prot = prot;
          sp_depth = depth;
          sp_requests = requests;
          sp_dispatch = dispatch;
          sp_use_exec = use_exec;
          sp_field_size = field_size;
        })
      (tup7 (int_range 0 6) (int_range 0 7) (int_range 1 5) (int_range 0 6) bool bool
         (int_range 1 100000)))

let print_spec s =
  Printf.sprintf "{mmaps=%d prot=%d depth=%d req=%d dispatch=%b exec=%b field=%d}"
    s.sp_mmaps s.sp_prot s.sp_depth s.sp_requests s.sp_dispatch s.sp_use_exec
    s.sp_field_size

let build_program (s : spec) : Sil.Prog.t =
  let pb = B.program () in
  Kernel.Syscalls.declare_stubs pb;
  B.struct_ pb "shm_t" [ ("size", i64); ("tag", i64) ];
  B.global pb "g_shm" (Sil.Types.Struct "shm_t") Sil.Prog.Zero;
  B.global pb "g_lfd" i64 Sil.Prog.Zero;
  B.global pb "g_handler" ptr (Sil.Prog.Fptr "on_event");
  (* Benign indirect target. *)
  let fb = B.func pb "on_event" ~params:[ ("x", i64) ] in
  let y = B.local fb "y" i64 in
  B.binop fb y Sil.Instr.Xor (Var (B.param fb 0)) (const 0x5A);
  B.ret fb (Some (Var y));
  B.seal fb;
  (* A helper chain of configurable depth ending in mmap: the size flows
     down through every level's parameter. *)
  let leaf = Printf.sprintf "lvl%d" s.sp_depth in
  let fb = B.func pb leaf ~params:[ ("size", i64) ] in
  let prot = B.local fb "prot" i64 in
  let shmp = B.local fb "shmp" ptr in
  let fsz = B.local fb "fsz" i64 in
  B.set fb prot (const (s.sp_prot land 7));
  B.addr_of fb shmp (Sil.Place.Lglobal "g_shm");
  B.load fb fsz (Sil.Place.Lfield (Var shmp, "shm_t", "size"));
  B.call fb "mmap" [ Null; Var fsz; Var prot; Var (B.param fb 0); const (-1); const 0 ];
  B.ret fb None;
  B.seal fb;
  for i = s.sp_depth - 1 downto 1 do
    let fb = B.func pb (Printf.sprintf "lvl%d" i) ~params:[ ("size", i64) ] in
    B.call fb (Printf.sprintf "lvl%d" (i + 1)) [ Var (B.param fb 0) ];
    B.ret fb None;
    B.seal fb
  done;
  (* Rarely-taken exec path. *)
  if s.sp_use_exec then begin
    let fb = B.func pb "spawn" ~params:[] in
    B.call fb "execve" [ Cstr "/bin/true"; Null; Null ];
    B.ret fb None;
    B.seal fb
  end;
  (* Request loop: accept + optional indirect dispatch + write. *)
  let fb = B.func pb "serve" ~params:[] in
  let lfd = B.local fb "lfd" i64 in
  let cfd = B.local fb "cfd" i64 in
  let got = B.local fb "got" i64 in
  let h = B.local fb "h" ptr in
  B.load fb lfd (Sil.Place.Lglobal "g_lfd");
  B.block fb "loop";
  B.call fb ~dst:cfd "accept" [ Var lfd; Null; const 2 ];
  B.binop fb got Sil.Instr.Ge (Var cfd) (const 0);
  B.branch fb (Var got) "body" "out";
  B.block fb "body";
  if s.sp_dispatch then begin
    B.load fb h (Sil.Place.Lglobal "g_handler");
    B.call_indirect fb (Var h) [ Var cfd ]
  end;
  B.call fb "write" [ Var cfd; Null; const 16 ];
  B.call fb "close" [ Var cfd ];
  B.jump fb "loop";
  B.block fb "out";
  B.ret fb None;
  B.seal fb;
  (* main *)
  let fb = B.func pb "main" ~params:[] in
  let shmp = B.local fb "shmp" ptr in
  let sock = B.local fb "sock" i64 in
  let flag = B.local fb "flag" i64 in
  B.addr_of fb shmp (Sil.Place.Lglobal "g_shm");
  B.store fb (Sil.Place.Lfield (Var shmp, "shm_t", "size")) (const s.sp_field_size);
  Workloads.Appkit.counted_loop fb ~tag:"mm" ~count:s.sp_mmaps (fun fb ->
      B.call fb "lvl1" [ const 4096 ]);
  B.call fb ~dst:sock "socket" [ const 2; const 1; const 0 ];
  B.call fb "bind" [ Var sock; const 7000 ];
  B.call fb "listen" [ Var sock; const 8 ];
  B.store fb (Sil.Place.Lglobal "g_lfd") (Var sock);
  B.set fb flag (const 0);
  (if s.sp_use_exec then begin
    B.branch fb (Var flag) "spawn" "go";
    B.block fb "spawn";
    B.call fb "spawn" [];
    B.jump fb "go";
    B.block fb "go"
  end);
  B.call fb "serve" [];
  B.halt fb;
  B.seal fb;
  B.build pb ~entry:"main"

let syscall_profile (proc : Kernel.Process.t) =
  List.map
    (fun (_, nr, _) -> Kernel.Process.syscall_count proc nr)
    Kernel.Syscalls.table

let setup (s : spec) (proc : Kernel.Process.t) =
  for _ = 1 to s.sp_requests do
    ignore (Kernel.Net.enqueue proc.net 7000 ~request_words:4 ~payload:"ping")
  done

let prop_no_false_positives =
  QCheck.Test.make ~count:60 ~name:"benign programs are never killed (incl. fs scope)"
    (QCheck.make ~print:print_spec gen_spec)
    (fun s ->
      let prog = build_program s in
      (* Unprotected reference run. *)
      let machine, proc = Bastion.Api.launch_unprotected prog in
      setup s proc;
      let ref_outcome = Machine.run machine in
      let ref_profile = syscall_profile proc in
      (* Fully protected run (sensitive scope). *)
      let session = Bastion.Api.launch (Bastion.Api.protect prog) () in
      setup s session.process;
      let got = Machine.run session.machine in
      let ok_sensitive =
        match (ref_outcome, got) with
        | Machine.Exited _, Machine.Exited _ ->
          syscall_profile session.process = ref_profile
        | _ -> false
      in
      (* Filesystem-extended scope. *)
      let session =
        Bastion.Api.launch
          ~monitor_config:
            { Bastion.Monitor.default_config with fs_mode = Bastion.Monitor.Fs_full }
          (Bastion.Api.protect ~protect_filesystem:true prog)
          ()
      in
      setup s session.process;
      let got_fs = Machine.run session.machine in
      let ok_fs =
        match got_fs with
        | Machine.Exited _ -> syscall_profile session.process = ref_profile
        | Machine.Faulted _ -> false
      in
      ok_sensitive && ok_fs)

let suites =
  [ ("fuzz", [ QCheck_alcotest.to_alcotest prop_no_false_positives ]) ]
