(* Cross-library integration tests: protection composed with the other
   defenses, the fs extension end-to-end, CET shadow-stack unit
   behaviour, and idempotence properties of the pipeline. *)

let small_nginx_params =
  {
    Workloads.Nginx_model.default with
    connections = 4;
    requests_per_conn = 3;
    init_mmap = 6;
    init_mprotect = 4;
    workers = 2;
    filler = false;
  }

(* --- CET shadow stack unit ---------------------------------------------- *)

let test_shadow_stack_unit () =
  let ss = Cet.Shadow_stack.create () in
  Cet.Shadow_stack.push ss 100L;
  Cet.Shadow_stack.push ss 200L;
  Alcotest.(check int) "depth" 2 (Cet.Shadow_stack.depth ss);
  Cet.Shadow_stack.pop_check ss ~actual:200L;
  Alcotest.check_raises "mismatch raises"
    (Cet.Shadow_stack.Violation { expected = 100L; actual = 999L })
    (fun () -> Cet.Shadow_stack.pop_check ss ~actual:999L);
  let ss = Cet.Shadow_stack.create () in
  Alcotest.check_raises "underflow raises" Cet.Shadow_stack.Underflow (fun () ->
      Cet.Shadow_stack.pop_check ss ~actual:0L)

(* --- full pipeline on the real models ------------------------------------ *)

let test_fs_extension_end_to_end () =
  let prog = Workloads.Nginx_model.build small_nginx_params in
  let protected_prog = Bastion.Api.protect ~protect_filesystem:true prog in
  let session =
    Bastion.Api.launch
      ~monitor_config:
        { Bastion.Monitor.default_config with fs_mode = Bastion.Monitor.Fs_full }
      protected_prog ()
  in
  Workloads.Nginx_model.setup small_nginx_params session.process;
  Testlib.check_exit (Machine.run session.machine);
  (* Every open/read/write/close also trapped. *)
  let fs_calls =
    List.fold_left
      (fun acc nr -> acc + Kernel.Process.syscall_count session.process nr)
      0 Kernel.Syscalls.filesystem_numbers
  in
  Alcotest.(check bool) "fs traps dominate" true (session.process.trap_count >= fs_calls);
  Alcotest.(check int) "no denials" 0
    (List.length (Bastion.Monitor.denials session.monitor))

let test_fs_attack_blocked () =
  (* Under the fs extension, corrupting a write length is caught. *)
  let prog = Workloads.Nginx_model.build small_nginx_params in
  let protected_prog = Bastion.Api.protect ~protect_filesystem:true prog in
  let session =
    Bastion.Api.launch
      ~monitor_config:
        { Bastion.Monitor.default_config with fs_mode = Bastion.Monitor.Fs_full }
      protected_prog ()
  in
  Workloads.Nginx_model.setup small_nginx_params session.process;
  let m = session.machine in
  let fired = ref false in
  m.on_instr <-
    Some
      (fun m (loc : Sil.Loc.t) ->
        (* Corrupt the fd between its legitimate load and the write()
           call: fire exactly when the call instruction is next. *)
        if (not !fired) && String.equal loc.func "ngx_http_log_request" then begin
          match Sil.Prog.instr_at m.prog loc with
          | Sil.Instr.Call { target = Sil.Instr.Direct "write"; _ } -> (
            fired := true;
            match Machine.local_address m ~func:"ngx_http_log_request" ~var:"lfd" with
            | Some addr -> Machine.poke m addr 0xbadL
            | None -> ())
          | _ -> ()
        end);
  Testlib.check_fault (Machine.run m)
    (Testlib.is_monitor_kill ~context:"argument-integrity")
    "argument-integrity"

let test_debloat_then_protect () =
  (* Debloating the padded NGINX model removes the unreachable filler;
     the debloated program still protects and runs. *)
  let prog =
    Workloads.Nginx_model.build { small_nginx_params with filler = true }
  in
  let before = (Sil.Callgraph.stats (Sil.Callgraph.build prog)).total_callsites in
  let debloated, removed = Defenses.Debloat.run prog in
  Alcotest.(check bool) "filler removed" true (removed > 100);
  let after = (Sil.Callgraph.stats (Sil.Callgraph.build debloated)).total_callsites in
  Alcotest.(check bool) "callsites shrank" true (after < before);
  let protected_prog = Bastion.Api.protect debloated in
  let session = Bastion.Api.launch protected_prog () in
  Workloads.Nginx_model.setup small_nginx_params session.process;
  Testlib.check_exit (Machine.run session.machine)

let test_protect_deterministic () =
  (* Protecting the same program twice yields identical statistics. *)
  let prog = Workloads.Vsftpd_model.build { Workloads.Vsftpd_model.default with filler = false } in
  let s1 = Bastion.Api.stats (Bastion.Api.protect prog) in
  let s2 = Bastion.Api.stats (Bastion.Api.protect prog) in
  Alcotest.(check bool) "same stats" true (s1 = s2)

let test_cfi_and_bastion_compose () =
  (* Both defenses active on the instrumented binary: benign runs pass. *)
  let prog = Workloads.Nginx_model.build small_nginx_params in
  let protected_prog = Bastion.Api.protect prog in
  let session =
    Bastion.Api.launch ~machine_config:{ Machine.default_config with cet = true }
      protected_prog ()
  in
  Defenses.Llvm_cfi.install
    (Defenses.Llvm_cfi.build protected_prog.inst.iprog)
    session.machine;
  Workloads.Nginx_model.setup small_nginx_params session.process;
  Testlib.check_exit (Machine.run session.machine)

let test_monitor_init_scales_with_metadata () =
  let small =
    Bastion.Api.protect (Workloads.Vsftpd_model.build { Workloads.Vsftpd_model.default with filler = false })
  in
  let big =
    Bastion.Api.protect (Workloads.Nginx_model.build Workloads.Nginx_model.default)
  in
  let init p = (Bastion.Api.launch p ()).monitor.init_cycles in
  Alcotest.(check bool) "bigger metadata, bigger init" true (init big > init small)

let suites =
  [
    ( "integration",
      [
        Alcotest.test_case "CET shadow stack unit" `Quick test_shadow_stack_unit;
        Alcotest.test_case "fs extension end to end" `Quick test_fs_extension_end_to_end;
        Alcotest.test_case "fs attack blocked" `Quick test_fs_attack_blocked;
        Alcotest.test_case "debloat then protect" `Quick test_debloat_then_protect;
        Alcotest.test_case "protect deterministic" `Quick test_protect_deterministic;
        Alcotest.test_case "CFI + BASTION compose" `Quick test_cfi_and_bastion_compose;
        Alcotest.test_case "monitor init scales with metadata" `Quick
          test_monitor_init_scales_with_metadata;
      ] );
  ]
