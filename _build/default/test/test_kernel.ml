(* Unit tests for the kernel substrate: syscall table, seccomp, VFS,
   sockets, per-syscall semantics, trap flows, the ptrace tracer. *)

module B = Sil.Builder
open Sil.Operand

let i64 = Sil.Types.I64
let ptr = Sil.Types.Ptr Sil.Types.I64

(* --- syscall table ----------------------------------------------------- *)

let test_syscall_table () =
  Alcotest.(check int) "execve number" 59 (Kernel.Syscalls.number "execve");
  Alcotest.(check int) "mprotect number" 10 (Kernel.Syscalls.number "mprotect");
  Alcotest.(check string) "name roundtrip" "accept4" (Kernel.Syscalls.name 288);
  Alcotest.(check string) "unknown name" "sys_9999" (Kernel.Syscalls.name 9999);
  Alcotest.(check int) "20 sensitive syscalls" 20
    (List.length Kernel.Syscalls.sensitive_numbers);
  Alcotest.(check bool) "mmap sensitive" true
    (Kernel.Syscalls.is_sensitive (Kernel.Syscalls.number "mmap"));
  Alcotest.(check bool) "open not sensitive" false
    (Kernel.Syscalls.is_sensitive (Kernel.Syscalls.number "open"));
  Alcotest.(check bool) "open is filesystem" true
    (Kernel.Syscalls.is_filesystem (Kernel.Syscalls.number "open"));
  Alcotest.(check int) "execve natural arity" 3
    (Kernel.Syscalls.natural_arity (Kernel.Syscalls.number "execve"));
  Alcotest.(check int) "mmap natural arity" 6
    (Kernel.Syscalls.natural_arity (Kernel.Syscalls.number "mmap"));
  match Kernel.Syscalls.category (Kernel.Syscalls.number "setuid") with
  | Kernel.Syscalls.Privilege_escalation -> ()
  | _ -> Alcotest.fail "setuid category"

(* --- seccomp ----------------------------------------------------------- *)

let test_seccomp () =
  let f = Kernel.Seccomp.create ~default:Kernel.Seccomp.Kill () in
  Kernel.Seccomp.set_rule f 1 Kernel.Seccomp.Allow;
  Kernel.Seccomp.set_rule f 2 Kernel.Seccomp.Trace;
  Alcotest.(check bool) "allow" true (Kernel.Seccomp.evaluate f 1 = Kernel.Seccomp.Allow);
  Alcotest.(check bool) "trace" true (Kernel.Seccomp.evaluate f 2 = Kernel.Seccomp.Trace);
  Alcotest.(check bool) "default kill" true
    (Kernel.Seccomp.evaluate f 3 = Kernel.Seccomp.Kill);
  Alcotest.(check int) "evaluations counted" 3 (Kernel.Seccomp.evaluations f);
  let g = Kernel.Seccomp.copy f in
  Kernel.Seccomp.set_rule g 1 Kernel.Seccomp.Kill;
  Alcotest.(check bool) "copy isolated" true
    (Kernel.Seccomp.rule f 1 = Kernel.Seccomp.Allow);
  let al = Kernel.Seccomp.allowlist [ 5; 6 ] in
  Alcotest.(check bool) "allowlist allows" true
    (Kernel.Seccomp.evaluate al 5 = Kernel.Seccomp.Allow);
  Alcotest.(check bool) "allowlist kills" true
    (Kernel.Seccomp.evaluate al 7 = Kernel.Seccomp.Kill)

(* --- vfs / net --------------------------------------------------------- *)

let test_vfs () =
  let v = Kernel.Vfs.create () in
  Kernel.Vfs.add_file v "/a" ~size_words:10;
  Alcotest.(check bool) "exists" true (Kernel.Vfs.exists v "/a");
  Alcotest.(check bool) "missing" false (Kernel.Vfs.exists v "/b");
  Alcotest.(check int64) "chmod ok" 0L (Kernel.Vfs.chmod v "/a" 0o755);
  Alcotest.(check int64) "chmod enoent" (-2L) (Kernel.Vfs.chmod v "/b" 0o755);
  match Kernel.Vfs.lookup v "/a" with
  | Some f ->
    Alcotest.(check int) "size" 10 f.size_words;
    Alcotest.(check int) "mode updated" 0o755 f.mode
  | None -> Alcotest.fail "lookup"

let test_net () =
  let n = Kernel.Net.create () in
  Kernel.Net.listen n 80;
  Alcotest.(check int) "empty queue" 0 (Kernel.Net.pending n 80);
  ignore (Kernel.Net.enqueue n 80 ~request_words:4 ~payload:"GET");
  ignore (Kernel.Net.enqueue n 80 ~request_words:4 ~payload:"GET");
  Alcotest.(check int) "two pending" 2 (Kernel.Net.pending n 80);
  (match Kernel.Net.accept n 80 with
  | Some c -> Alcotest.(check int) "req words" 4 c.request_words
  | None -> Alcotest.fail "accept");
  ignore (Kernel.Net.accept n 80);
  Alcotest.(check bool) "drained" true (Kernel.Net.accept n 80 = None);
  (* Enqueue before listen also works (drivers preload connections). *)
  ignore (Kernel.Net.enqueue n 8080 ~request_words:1 ~payload:"x");
  Alcotest.(check int) "pre-listen enqueue" 1 (Kernel.Net.pending n 8080)

(* --- per-syscall semantics --------------------------------------------- *)

let run_kernel_prog mk =
  let pb = B.program () in
  Kernel.Syscalls.declare_stubs pb;
  mk pb;
  let prog = B.build pb ~entry:"main" in
  Sil.Validate.check_exn prog;
  let machine = Machine.create prog in
  let proc = Kernel.boot machine in
  (machine, proc)

let test_file_io () =
  let machine, proc =
    run_kernel_prog (fun pb ->
        B.global pb "g_n" i64 Sil.Prog.Zero;
        let fb = B.func pb "main" ~params:[] in
        let fd = B.local fb "fd" i64 in
        let n = B.local fb "n" i64 in
        let total = B.local fb "total" i64 in
        B.call fb ~dst:fd "open" [ Cstr "/data/file"; const 0 ];
        B.set fb total (const 0);
        B.block fb "loop";
        B.call fb ~dst:n "read" [ Var fd; Null; const 100 ];
        let more = B.local fb "more" i64 in
        B.binop fb more Sil.Instr.Gt (Var n) (const 0);
        B.branch fb (Var more) "acc" "done";
        B.block fb "acc";
        B.binop fb total Sil.Instr.Add (Var total) (Var n);
        B.jump fb "loop";
        B.block fb "done";
        B.call fb "close" [ Var fd ];
        B.store fb (Sil.Place.Lglobal "g_n") (Var total);
        B.halt fb;
        B.seal fb)
  in
  Kernel.Vfs.add_file proc.vfs "/data/file" ~size_words:250;
  Testlib.check_exit (Machine.run machine);
  Alcotest.(check int64) "all words read in chunks" 250L
    (Machine.peek machine (Machine.global_address machine "g_n"));
  Alcotest.(check int) "io accounted" 250 proc.io_words_in

let test_open_enoent () =
  let machine, _ =
    run_kernel_prog (fun pb ->
        B.global pb "g_fd" i64 Sil.Prog.Zero;
        let fb = B.func pb "main" ~params:[] in
        let fd = B.local fb "fd" i64 in
        B.call fb ~dst:fd "open" [ Cstr "/missing"; const 0 ];
        B.store fb (Sil.Place.Lglobal "g_fd") (Var fd);
        B.halt fb;
        B.seal fb)
  in
  Testlib.check_exit (Machine.run machine);
  Alcotest.(check int64) "-ENOENT" (-2L)
    (Machine.peek machine (Machine.global_address machine "g_fd"))

let test_socket_lifecycle () =
  let machine, proc =
    run_kernel_prog (fun pb ->
        B.global pb "g_served" i64 Sil.Prog.Zero;
        let fb = B.func pb "main" ~params:[] in
        let s = B.local fb "s" i64 in
        let c = B.local fb "c" i64 in
        let served = B.local fb "served" i64 in
        let got = B.local fb "got" i64 in
        B.call fb ~dst:s "socket" [ const 2; const 1; const 0 ];
        B.call fb "bind" [ Var s; const 443 ];
        B.call fb "listen" [ Var s; const 16 ];
        B.set fb served (const 0);
        B.block fb "loop";
        B.call fb ~dst:c "accept" [ Var s; Null; const 2 ];
        B.binop fb got Sil.Instr.Ge (Var c) (const 0);
        B.branch fb (Var got) "serve" "done";
        B.block fb "serve";
        B.call fb "write" [ Var c; Null; const 10 ];
        B.call fb "close" [ Var c ];
        B.binop fb served Sil.Instr.Add (Var served) (const 1);
        B.jump fb "loop";
        B.block fb "done";
        B.store fb (Sil.Place.Lglobal "g_served") (Var served);
        B.halt fb;
        B.seal fb)
  in
  for _ = 1 to 5 do
    ignore (Kernel.Net.enqueue proc.net 443 ~request_words:2 ~payload:"hi")
  done;
  Testlib.check_exit (Machine.run machine);
  Alcotest.(check int64) "served all pending" 5L
    (Machine.peek machine (Machine.global_address machine "g_served"));
  Alcotest.(check int) "bytes out" 50 proc.io_words_out;
  Alcotest.(check bool) "serve window marked" true (proc.serve_start_cycles <> None)

let test_exec_log_and_hook () =
  let machine, proc =
    run_kernel_prog (fun pb ->
        let fb = B.func pb "main" ~params:[] in
        B.call fb "setuid" [ const 123 ];
        B.call fb "execve" [ Cstr "/bin/true"; Null; Null ];
        B.halt fb;
        B.seal fb)
  in
  let seen = ref [] in
  proc.on_syscall_executed <-
    Some (fun ~sysno ~args:_ ~path -> seen := (sysno, path) :: !seen);
  Testlib.check_exit (Machine.run machine);
  (match Kernel.Process.executed proc "execve" with
  | [ e ] -> Alcotest.(check (option string)) "path logged" (Some "/bin/true") e.ev_path
  | _ -> Alcotest.fail "expected one execve event");
  Alcotest.(check int) "setuid counted" 1
    (Kernel.Process.syscall_count proc (Kernel.Syscalls.number "setuid"));
  Alcotest.(check bool) "hook saw both" true (List.length !seen >= 2)

let test_trap_flow_kill_and_verdict () =
  let build () =
    run_kernel_prog (fun pb ->
        let fb = B.func pb "main" ~params:[] in
        B.call fb "mprotect" [ Null; const 4096; const 5 ];
        B.halt fb;
        B.seal fb)
  in
  (* KILL rule terminates the program. *)
  let machine, proc = build () in
  let f = Kernel.Seccomp.create ~default:Kernel.Seccomp.Allow () in
  Kernel.Seccomp.set_rule f (Kernel.Syscalls.number "mprotect") Kernel.Seccomp.Kill;
  proc.filter <- Some f;
  Testlib.check_fault (Machine.run machine) Testlib.is_seccomp_kill "kill";
  (* TRACE delivers the trap to the hook; Deny kills with the context. *)
  let machine, proc = build () in
  let f = Kernel.Seccomp.create ~default:Kernel.Seccomp.Allow () in
  Kernel.Seccomp.set_rule f (Kernel.Syscalls.number "mprotect") Kernel.Seccomp.Trace;
  proc.filter <- Some f;
  let trapped = ref 0 in
  proc.tracer_hook <-
    Some
      (fun _proc ~sysno ~args ->
        incr trapped;
        Alcotest.(check int) "sysno" (Kernel.Syscalls.number "mprotect") sysno;
        Alcotest.(check int64) "arg1" 4096L args.(1);
        Kernel.Process.Deny { context = "test"; detail = "nope" });
  Testlib.check_fault (Machine.run machine)
    (Testlib.is_monitor_kill ~context:"test")
    "deny";
  Alcotest.(check int) "trap delivered once" 1 !trapped;
  Alcotest.(check int) "trap counted" 1 proc.trap_count

(* --- ptrace ------------------------------------------------------------ *)

let test_ptrace_tracer () =
  let machine, proc =
    run_kernel_prog (fun pb ->
        let fb = B.func pb "leaf" ~params:[ ("x", i64) ] in
        B.call fb "mmap" [ Null; Var (B.param fb 0); const 3; const 2; const (-1); const 0 ];
        B.ret fb None;
        B.seal fb;
        let fb = B.func pb "mid" ~params:[ ("x", i64) ] in
        B.call fb "leaf" [ Var (B.param fb 0) ];
        B.ret fb None;
        B.seal fb;
        let fb = B.func pb "main" ~params:[] in
        B.call fb "mid" [ const 8192 ];
        B.halt fb;
        B.seal fb)
  in
  let f = Kernel.Seccomp.create ~default:Kernel.Seccomp.Allow () in
  Kernel.Seccomp.set_rule f (Kernel.Syscalls.number "mmap") Kernel.Seccomp.Trace;
  proc.filter <- Some f;
  let checked = ref false in
  proc.tracer_hook <-
    Some
      (fun proc ~sysno:_ ~args:_ ->
        checked := true;
        let tracer = proc.tracer in
        let regs = Kernel.Ptrace.getregs tracer in
        Alcotest.(check int) "sysno via regs" (Kernel.Syscalls.number "mmap") regs.sysno;
        Alcotest.(check int64) "size arg" 8192L regs.args.(1);
        let frames = Kernel.Ptrace.stack_trace tracer in
        Alcotest.(check (list string)) "stack funcs" [ "leaf"; "mid"; "main" ]
          (List.map (fun (fv : Kernel.Ptrace.frame_view) -> fv.fv_func) frames);
        (* Unwound tokens map back to the correct caller callsites. *)
        (match frames with
        | leaf :: _ -> (
          match leaf.fv_ret_token with
          | Some token -> (
            match Kernel.Ptrace.callsite_of_token tracer token with
            | Some loc -> Alcotest.(check string) "caller is mid" "mid" loc.func
            | None -> Alcotest.fail "token did not decode")
          | None -> Alcotest.fail "leaf has no ret token")
        | [] -> Alcotest.fail "no frames");
        Alcotest.(check bool) "costs charged" true (tracer.words_read > 0);
        Kernel.Process.Continue);
  Testlib.check_exit (Machine.run machine);
  Alcotest.(check bool) "tracer ran" true !checked

let suites =
  [
    ( "kernel",
      [
        Alcotest.test_case "syscall table" `Quick test_syscall_table;
        Alcotest.test_case "seccomp engine" `Quick test_seccomp;
        Alcotest.test_case "vfs" `Quick test_vfs;
        Alcotest.test_case "net" `Quick test_net;
        Alcotest.test_case "file io semantics" `Quick test_file_io;
        Alcotest.test_case "open ENOENT" `Quick test_open_enoent;
        Alcotest.test_case "socket lifecycle" `Quick test_socket_lifecycle;
        Alcotest.test_case "exec log + executed hook" `Quick test_exec_log_and_hook;
        Alcotest.test_case "trap flow: kill and verdicts" `Quick
          test_trap_flow_kill_and_verdict;
        Alcotest.test_case "ptrace tracer" `Quick test_ptrace_tracer;
      ] );
  ]

(* Appended: §7.1 policy inheritance across fork/clone. *)
let test_policy_inheritance () =
  let machine, proc =
    run_kernel_prog (fun pb ->
        let fb = B.func pb "main" ~params:[] in
        B.call fb "clone" [ const 0 ];
        B.call fb "fork" [];
        B.halt fb;
        B.seal fb)
  in
  let f = Kernel.Seccomp.create ~default:Kernel.Seccomp.Allow () in
  Kernel.Seccomp.set_rule f (Kernel.Syscalls.number "execve") Kernel.Seccomp.Kill;
  proc.filter <- Some f;
  Testlib.check_exit (Machine.run machine);
  Alcotest.(check int) "two children" 2 (List.length proc.children);
  List.iter
    (fun (child : Kernel.Process.t) ->
      match child.filter with
      | Some cf ->
        Alcotest.(check bool) "child inherits KILL rule" true
          (Kernel.Seccomp.rule cf (Kernel.Syscalls.number "execve") = Kernel.Seccomp.Kill)
      | None -> Alcotest.fail "child has no filter")
    proc.children;
  (* Copies are isolated: tightening the parent later does not leak. *)
  Kernel.Seccomp.set_rule f (Kernel.Syscalls.number "mmap") Kernel.Seccomp.Kill;
  List.iter
    (fun (child : Kernel.Process.t) ->
      match child.filter with
      | Some cf ->
        Alcotest.(check bool) "child filter isolated" true
          (Kernel.Seccomp.rule cf (Kernel.Syscalls.number "mmap") = Kernel.Seccomp.Allow)
      | None -> ())
    proc.children

let suites =
  match suites with
  | [ (name, cases) ] ->
    [ (name, cases @ [ Alcotest.test_case "fork/clone policy inheritance" `Quick test_policy_inheritance ]) ]
  | other -> other
