(* Unit tests for the machine: memory, layout, interpreter semantics,
   control transfers, CET, cost accounting. *)

module B = Sil.Builder
open Sil.Operand

let i64 = Sil.Types.I64
let ptr = Sil.Types.Ptr Sil.Types.I64

(* --- memory ----------------------------------------------------------- *)

let test_memory_words () =
  let m = Machine.Memory.create () in
  Alcotest.(check int64) "unmapped reads zero" 0L (Machine.Memory.read m 0x1000L);
  Machine.Memory.write m 0x1000L 42L;
  Alcotest.(check int64) "write/read" 42L (Machine.Memory.read m 0x1000L);
  Machine.Memory.write m 0x1000L 0L;
  Alcotest.(check int) "zero writes unmap" 0 (Machine.Memory.mapped_words m);
  Machine.Memory.write_block m 0x2000L [| 1L; 2L; 3L |];
  Alcotest.(check bool) "block roundtrip" true
    (Machine.Memory.read_block m 0x2000L 3 = [| 1L; 2L; 3L |])

let test_memory_strings () =
  let m = Machine.Memory.create () in
  let words = Machine.Memory.write_string m 0x3000L "hello" in
  Alcotest.(check int) "words written" 6 words;
  Alcotest.(check string) "string roundtrip" "hello" (Machine.Memory.read_string m 0x3000L);
  Alcotest.(check string) "empty string" "" (Machine.Memory.read_string m 0x9999L)

(* --- layout ----------------------------------------------------------- *)

let test_layout () =
  let prog = Testlib.exec_program () in
  let layout = Machine.Layout.build prog in
  (* Function entries resolve back to their functions. *)
  List.iter
    (fun (f : Sil.Func.t) ->
      let entry = Machine.Layout.func_entry layout f.fname in
      Alcotest.(check (option string))
        ("entry of " ^ f.fname) (Some f.fname)
        (Machine.Layout.func_of_entry_addr layout entry))
    (Sil.Prog.functions prog);
  (* A mid-function address is not a valid call target. *)
  let mid = Machine.Layout.addr_of_loc layout (Sil.Loc.make "main" "entry" 1) in
  Alcotest.(check (option string)) "mid-function not an entry" None
    (Machine.Layout.func_of_entry_addr layout mid);
  (* Globals get distinct addresses. *)
  let a1 = Machine.Layout.global_addr layout "gctx" in
  let a2 = Machine.Layout.global_addr layout "ghandler" in
  Alcotest.(check bool) "distinct global addrs" true (not (Int64.equal a1 a2))

let test_rodata_interning () =
  let prog = Testlib.exec_program () in
  let m = Machine.create prog in
  let a = Machine.Layout.intern_string m.layout m.mem "/bin/id" in
  let b = Machine.Layout.intern_string m.layout m.mem "/bin/id" in
  let c = Machine.Layout.intern_string m.layout m.mem "/bin/ls" in
  Alcotest.(check int64) "idempotent" a b;
  Alcotest.(check bool) "distinct strings distinct addrs" true (not (Int64.equal a c));
  Alcotest.(check string) "contents" "/bin/id" (Machine.read_string m a)

(* --- interpreter ------------------------------------------------------ *)

(* Run main() and return the machine. *)
let run_prog mk =
  let pb = B.program () in
  Kernel.Syscalls.declare_stubs pb;
  mk pb;
  let prog = B.build pb ~entry:"main" in
  Sil.Validate.check_exn prog;
  let machine = Machine.create prog in
  let proc = Kernel.boot machine in
  (machine, proc, Machine.run machine)

let test_arith_and_branches () =
  (* Computes 10! iteratively, stores it in a global. *)
  let machine, _, outcome =
    run_prog (fun pb ->
        B.global pb "g_result" i64 Sil.Prog.Zero;
        let fb = B.func pb "main" ~params:[] in
        let acc = B.local fb "acc" i64 in
        let i = B.local fb "i" i64 in
        let c = B.local fb "c" i64 in
        B.set fb acc (const 1);
        B.set fb i (const 1);
        B.block fb "head";
        B.binop fb c Sil.Instr.Le (Var i) (const 10);
        B.branch fb (Var c) "body" "done";
        B.block fb "body";
        B.binop fb acc Sil.Instr.Mul (Var acc) (Var i);
        B.binop fb i Sil.Instr.Add (Var i) (const 1);
        B.jump fb "head";
        B.block fb "done";
        B.store fb (Sil.Place.Lglobal "g_result") (Var acc);
        B.halt fb;
        B.seal fb)
  in
  Testlib.check_exit outcome;
  Alcotest.(check int64) "10!" 3628800L
    (Machine.peek machine (Machine.global_address machine "g_result"))

let test_call_return_values () =
  let machine, _, outcome =
    run_prog (fun pb ->
        B.global pb "g_out" i64 Sil.Prog.Zero;
        let fb = B.func pb "double" ~params:[ ("x", i64) ] in
        let y = B.local fb "y" i64 in
        B.binop fb y Sil.Instr.Add (Var (B.param fb 0)) (Var (B.param fb 0));
        B.ret fb (Some (Var y));
        B.seal fb;
        let fb = B.func pb "main" ~params:[] in
        let r = B.local fb "r" i64 in
        B.call fb ~dst:r "double" [ const 21 ];
        B.call fb ~dst:r "double" [ Var r ];
        B.store fb (Sil.Place.Lglobal "g_out") (Var r);
        B.halt fb;
        B.seal fb)
  in
  Testlib.check_exit outcome;
  Alcotest.(check int64) "nested doubling" 84L
    (Machine.peek machine (Machine.global_address machine "g_out"))

let test_recursion () =
  (* fib(12) via naive recursion exercises deep frames + returns. *)
  let machine, _, outcome =
    run_prog (fun pb ->
        B.global pb "g_out" i64 Sil.Prog.Zero;
        let fb = B.func pb "fib" ~params:[ ("n", i64) ] in
        let c = B.local fb "c" i64 in
        let a = B.local fb "a" i64 in
        let b = B.local fb "b" i64 in
        let t = B.local fb "t" i64 in
        B.binop fb c Sil.Instr.Lt (Var (B.param fb 0)) (const 2);
        B.branch fb (Var c) "base" "rec";
        B.block fb "base";
        B.ret fb (Some (Var (B.param fb 0)));
        B.block fb "rec";
        B.binop fb t Sil.Instr.Sub (Var (B.param fb 0)) (const 1);
        B.call fb ~dst:a "fib" [ Var t ];
        B.binop fb t Sil.Instr.Sub (Var (B.param fb 0)) (const 2);
        B.call fb ~dst:b "fib" [ Var t ];
        B.binop fb a Sil.Instr.Add (Var a) (Var b);
        B.ret fb (Some (Var a));
        B.seal fb;
        let fb = B.func pb "main" ~params:[] in
        let r = B.local fb "r" i64 in
        B.call fb ~dst:r "fib" [ const 12 ];
        B.store fb (Sil.Place.Lglobal "g_out") (Var r);
        B.halt fb;
        B.seal fb)
  in
  Testlib.check_exit outcome;
  Alcotest.(check int64) "fib 12" 144L
    (Machine.peek machine (Machine.global_address machine "g_out"))

let test_indirect_call_resolution () =
  let machine, _, outcome =
    run_prog (fun pb ->
        B.global pb "g_fp" ptr (Sil.Prog.Fptr "inc");
        B.global pb "g_out" i64 Sil.Prog.Zero;
        let fb = B.func pb "inc" ~params:[ ("x", i64) ] in
        let y = B.local fb "y" i64 in
        B.binop fb y Sil.Instr.Add (Var (B.param fb 0)) (const 1);
        B.ret fb (Some (Var y));
        B.seal fb;
        let fb = B.func pb "main" ~params:[] in
        let h = B.local fb "h" ptr in
        let r = B.local fb "r" i64 in
        B.load fb h (Sil.Place.Lglobal "g_fp");
        B.call_indirect fb ~dst:r (Var h) [ const 6 ];
        B.store fb (Sil.Place.Lglobal "g_out") (Var r);
        B.halt fb;
        B.seal fb)
  in
  Testlib.check_exit outcome;
  Alcotest.(check int64) "indirect call result" 7L
    (Machine.peek machine (Machine.global_address machine "g_out"))

let test_bad_indirect_target_faults () =
  let _, _, outcome =
    run_prog (fun pb ->
        let fb = B.func pb "main" ~params:[] in
        let h = B.local fb "h" ptr in
        B.set fb h (const 0xdead);
        B.call_indirect fb (Var h) [];
        B.halt fb;
        B.seal fb)
  in
  Testlib.check_fault outcome
    (function Machine.Bad_indirect_target _ -> true | _ -> false)
    "bad-indirect-target"

let test_fuel_exhaustion () =
  let pb = B.program () in
  let fb = B.func pb "main" ~params:[] in
  B.block fb "spin";
  B.jump fb "spin";
  B.seal fb;
  let prog = B.build pb ~entry:"main" in
  let machine = Machine.create ~config:{ Machine.default_config with fuel = 1000 } prog in
  Testlib.check_fault (Machine.run machine)
    (function Machine.Fuel_exhausted -> true | _ -> false)
    "fuel-exhausted"

let test_heap_alloc () =
  let prog = Testlib.exec_program () in
  let machine = Machine.create prog in
  let a = Machine.alloc_heap machine 8 in
  let b = Machine.alloc_heap machine 8 in
  Alcotest.(check int64) "bump by 8 words" (Int64.add a 64L) b

(* Return-address corruption transfers control for real (the ROP
   substrate), and CET catches exactly that. *)
let test_ret_token_semantics () =
  let build () =
    let pb = B.program () in
    Kernel.Syscalls.declare_stubs pb;
    B.global pb "g_out" i64 Sil.Prog.Zero;
    let fb = B.func pb "target" ~params:[] in
    B.store fb (Sil.Place.Lglobal "g_out") (const 777);
    B.call fb "exit" [ const 7 ];
    B.ret fb None;
    B.seal fb;
    let fb = B.func pb "victim" ~params:[ ("x", i64) ] in
    let y = B.local fb "y" i64 in
    B.binop fb y Sil.Instr.Add (Var (B.param fb 0)) (const 1);
    B.ret fb (Some (Var y));
    B.seal fb;
    let fb = B.func pb "main" ~params:[] in
    B.call fb "victim" [ const 1 ];
    B.halt fb;
    B.seal fb;
    B.build pb ~entry:"main"
  in
  let run cet =
    let machine = Machine.create ~config:{ Machine.default_config with cet } (build ()) in
    ignore (Kernel.boot machine);
    let fired = ref false in
    machine.on_instr <-
      Some
        (fun m (loc : Sil.Loc.t) ->
          if (not !fired) && String.equal loc.func "victim" then begin
            fired := true;
            match Machine.frames m with
            | frame :: _ ->
              Machine.poke m frame.ret_slot
                (Machine.instr_address m (Sil.Loc.make "target" "entry" 0))
            | [] -> ()
          end);
    (machine, Machine.run machine)
  in
  (* Without CET the hijack lands in target(). *)
  let machine, outcome = run false in
  (match outcome with
  | Machine.Exited code -> Alcotest.(check int64) "exited via gadget" 7L code
  | Machine.Faulted f -> Alcotest.failf "unexpected fault %s" (Machine.fault_to_string f));
  Alcotest.(check int64) "gadget executed" 777L
    (Machine.peek machine (Machine.global_address machine "g_out"));
  (* With CET the return is checked. *)
  let _, outcome = run true in
  Testlib.check_fault outcome Testlib.is_cet_violation "cet"

let test_cost_accounting () =
  let run_cycles io =
    let pb = B.program () in
    Kernel.Syscalls.declare_stubs pb;
    let fb = B.func pb "main" ~params:[] in
    B.call fb "getpid" [];
    B.halt fb;
    B.seal fb;
    let prog = B.build pb ~entry:"main" in
    let cost = { Machine.Cost.default with io_per_word = io } in
    let machine = Machine.create ~config:{ Machine.default_config with cost } prog in
    ignore (Kernel.boot machine);
    ignore (Machine.run machine);
    machine.stats.cycles
  in
  Alcotest.(check bool) "cycles counted" true (run_cycles 8 > 0);
  Alcotest.(check int) "io cost irrelevant without io" (run_cycles 8) (run_cycles 80)

let suites =
  [
    ( "machine",
      [
        Alcotest.test_case "memory words" `Quick test_memory_words;
        Alcotest.test_case "memory strings" `Quick test_memory_strings;
        Alcotest.test_case "layout" `Quick test_layout;
        Alcotest.test_case "rodata interning" `Quick test_rodata_interning;
        Alcotest.test_case "arithmetic + branches" `Quick test_arith_and_branches;
        Alcotest.test_case "calls and return values" `Quick test_call_return_values;
        Alcotest.test_case "recursion" `Quick test_recursion;
        Alcotest.test_case "indirect call resolution" `Quick test_indirect_call_resolution;
        Alcotest.test_case "bad indirect target faults" `Quick
          test_bad_indirect_target_faults;
        Alcotest.test_case "fuel exhaustion" `Quick test_fuel_exhaustion;
        Alcotest.test_case "heap allocation" `Quick test_heap_alloc;
        Alcotest.test_case "return-token semantics (ROP + CET)" `Quick
          test_ret_token_semantics;
        Alcotest.test_case "cost accounting" `Quick test_cost_accounting;
      ] );
  ]
