(* Metadata serialisation: the compiler -> metadata file -> monitor
   boundary of §7.1.  A restored bundle must behave exactly like the
   in-memory one, for benign runs and under attack. *)

let roundtrip prog =
  let p = Bastion.Api.protect prog in
  let text = Bastion.Metadata_io.write p in
  let restored = Bastion.Metadata_io.restore p.inst.iprog (Bastion.Metadata_io.parse text) in
  (p, text, restored)

let test_header_and_shape () =
  let _, text, _ = roundtrip (Testlib.exec_program ()) in
  Alcotest.(check bool) "header" true
    (Astring.String.is_prefix ~affix:"BASTION-METADATA v1" text);
  Alcotest.(check bool) "has calltype records" true
    (Astring.String.is_infix ~affix:"\ncalltype " text);
  Alcotest.(check bool) "has valid-caller records" true
    (Astring.String.is_infix ~affix:"\nvalid-caller " text);
  Alcotest.(check bool) "has callsite records" true
    (Astring.String.is_infix ~affix:"\ncallsite " text)

let test_roundtrip_equivalence () =
  let p, _, restored = roundtrip (Testlib.exec_program ()) in
  (* Same call-type table. *)
  Hashtbl.iter
    (fun sysno (ct : Bastion.Calltype.call_type) ->
      let ct' = Bastion.Calltype.call_type restored.calltype sysno in
      Alcotest.(check bool) "directly" ct.directly ct'.directly;
      Alcotest.(check bool) "indirectly" ct.indirectly ct'.indirectly)
    p.calltype.by_sysno;
  (* Same pair count and sensitive callsites. *)
  Alcotest.(check int) "cfg pairs" (Bastion.Cfg_analysis.pair_count p.cfg)
    (Bastion.Cfg_analysis.pair_count restored.cfg);
  Alcotest.(check bool) "sensitive callsites" true
    (Sil.Loc.Set.equal p.cfg.sensitive_callsites restored.cfg.sensitive_callsites);
  (* Same sensitive items and callsite metadata. *)
  Alcotest.(check bool) "items" true
    (Bastion.Arg_analysis.Item_set.equal p.analysis.items restored.analysis.items);
  let key (cm : Bastion.Instrument.callsite_meta) = (cm.cm_id, cm.cm_loc, cm.cm_specs) in
  Alcotest.(check bool) "callsites" true
    (List.sort compare (List.map key p.inst.callsites)
    = List.sort compare (List.map key restored.inst.callsites))

let test_restored_bundle_runs () =
  let _, _, restored = roundtrip (Testlib.exec_program ()) in
  let session = Bastion.Api.launch restored () in
  Testlib.check_exit (Machine.run session.machine);
  Alcotest.(check int) "execve executed" 1
    (List.length (Kernel.Process.executed session.process "execve"))

let test_restored_bundle_blocks_attacks () =
  let _, _, restored = roundtrip (Testlib.exec_program ()) in
  let session = Bastion.Api.launch restored () in
  let m = session.machine in
  let evil = Machine.Layout.intern_string m.layout m.mem "/bin/sh" in
  let fired = ref false in
  m.on_instr <-
    Some
      (fun m (loc : Sil.Loc.t) ->
        if (not !fired) && String.equal loc.func "do_exec" then begin
          fired := true;
          Machine.poke m (Machine.global_address m "gctx") evil
        end);
  Testlib.check_fault (Machine.run m)
    (Testlib.is_monitor_kill ~context:"argument-integrity")
    "argument-integrity"

let test_file_roundtrip () =
  let p = Bastion.Api.protect (Testlib.exec_program ()) in
  let file = Filename.temp_file "bastion" ".meta" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      Bastion.Metadata_io.save p ~file;
      let restored = Bastion.Metadata_io.load ~file p.inst.iprog in
      let session = Bastion.Api.launch restored () in
      Testlib.check_exit (Machine.run session.machine))

let test_parse_errors () =
  let expect_error text =
    match Bastion.Metadata_io.parse text with
    | exception Bastion.Metadata_io.Parse_error _ -> ()
    | _ -> Alcotest.fail "expected a parse error"
  in
  expect_error "not a metadata file";
  expect_error "BASTION-METADATA v1\nfrobnicate 1 2 3";
  expect_error "BASTION-METADATA v1\ncalltype 59 z"

let test_workload_scale_roundtrip () =
  (* The full NGINX model's metadata survives the trip too. *)
  let prog =
    Workloads.Nginx_model.build
      { Workloads.Nginx_model.default with connections = 2; requests_per_conn = 2;
        init_mmap = 4; init_mprotect = 4; filler = false }
  in
  let p = Bastion.Api.protect prog in
  let restored =
    Bastion.Metadata_io.restore p.inst.iprog
      (Bastion.Metadata_io.parse (Bastion.Metadata_io.write p))
  in
  let session = Bastion.Api.launch restored () in
  Workloads.Nginx_model.setup
    { Workloads.Nginx_model.default with connections = 2 }
    session.process;
  Testlib.check_exit (Machine.run session.machine)

let suites =
  [
    ( "metadata-io",
      [
        Alcotest.test_case "header and record shape" `Quick test_header_and_shape;
        Alcotest.test_case "roundtrip equivalence" `Quick test_roundtrip_equivalence;
        Alcotest.test_case "restored bundle runs" `Quick test_restored_bundle_runs;
        Alcotest.test_case "restored bundle blocks attacks" `Quick
          test_restored_bundle_blocks_attacks;
        Alcotest.test_case "file save/load" `Quick test_file_roundtrip;
        Alcotest.test_case "parse errors" `Quick test_parse_errors;
        Alcotest.test_case "workload-scale roundtrip" `Quick test_workload_scale_roundtrip;
      ] );
  ]
