(* Remaining units: driver caching (regression), fetch-only monitor
   mode, runtime intrinsics, metadata contents, report rendering. *)

module B = Sil.Builder
open Sil.Operand

let i64 = Sil.Types.I64

(* Regression: the drivers' protect cache must distinguish parameter
   sets (a paper-scale run after a default-scale run once reused the
   wrong program). *)
let test_driver_cache_keys () =
  let small =
    Workloads.Drivers.sqlite
      ~params:
        { Workloads.Sqlite_model.default with connections = 2; txns_per_conn = 5;
          mprotect_every = 1; filler = false }
      ()
  in
  let big =
    Workloads.Drivers.sqlite
      ~params:
        { Workloads.Sqlite_model.default with connections = 3; txns_per_conn = 10;
          mprotect_every = 1; filler = false }
      ()
  in
  let m1 = Workloads.Drivers.run small Workloads.Drivers.Bastion_full in
  let m2 = Workloads.Drivers.run big Workloads.Drivers.Bastion_full in
  let mp (m : Workloads.Drivers.measurement) =
    Kernel.Process.syscall_count m.m_process (Kernel.Syscalls.number "mprotect")
  in
  Alcotest.(check int) "small run: 10 txns" 10 (mp m1);
  Alcotest.(check int) "big run: 30 txns" 30 (mp m2)

let test_overhead_pct_directions () =
  let fake metric : Workloads.Drivers.measurement =
    let prog = Testlib.exec_program () in
    let machine, process = Bastion.Api.launch_unprotected prog in
    {
      m_app = "x"; m_defense = Workloads.Drivers.Vanilla; m_metric = metric;
      m_cycles = 0; m_traps = 0; m_syscalls = 0; m_monitor_init_cycles = 0;
      m_process = process; m_machine = machine; m_monitor = None;
    }
  in
  let base = fake 100.0 in
  Alcotest.(check (float 0.001)) "throughput drop" 10.0
    (Workloads.Drivers.overhead_pct ~baseline:base (fake 90.0) ~higher_is_better:true);
  Alcotest.(check (float 0.001)) "latency rise" 10.0
    (Workloads.Drivers.overhead_pct ~baseline:base (fake 110.0) ~higher_is_better:false)

(* Fetch-only fs mode: state is fetched but nothing is checked — even a
   corrupted fs argument sails through (that is the point of the
   Table 7 row split). *)
let fetch_only_prog () =
  let pb = B.program () in
  Kernel.Syscalls.declare_stubs pb;
  B.global pb "g_len" i64 (Sil.Prog.Word 8L);
  let fb = B.func pb "main" ~params:[] in
  let len = B.local fb "len" i64 in
  B.load fb len (Sil.Place.Lglobal "g_len");
  B.call fb "write" [ const 1; Null; Var len ];
  B.halt fb;
  B.seal fb;
  B.build pb ~entry:"main"

let test_fs_fetch_only_checks_nothing () =
  let run fs_mode =
    let protected_prog = Bastion.Api.protect ~protect_filesystem:true (fetch_only_prog ()) in
    let session =
      Bastion.Api.launch
        ~monitor_config:{ Bastion.Monitor.default_config with fs_mode }
        protected_prog ()
    in
    let m = session.machine in
    let fired = ref false in
    m.on_instr <-
      Some
        (fun m (loc : Sil.Loc.t) ->
          if (not !fired) && String.equal loc.func "main" then begin
            match Sil.Prog.instr_at m.prog loc with
            | Sil.Instr.Call { target = Sil.Instr.Direct "write"; _ } ->
              fired := true;
              (match Machine.local_address m ~func:"main" ~var:"len" with
              | Some a -> Machine.poke m a 0x7777L
              | None -> ())
            | _ -> ()
          end);
    (Machine.run m, session)
  in
  (* Fetch-only: corruption is NOT caught. *)
  let outcome, session = run Bastion.Monitor.Fs_fetch_only in
  Testlib.check_exit outcome;
  Alcotest.(check bool) "state was fetched" true (session.process.trap_count > 0);
  (* Full: the same corruption dies. *)
  let outcome, _ = run Bastion.Monitor.Fs_full in
  Testlib.check_fault outcome
    (Testlib.is_monitor_kill ~context:"argument-integrity")
    "argument-integrity"

let test_runtime_intrinsics_direct () =
  let prog = Testlib.exec_program () in
  let machine = Machine.create prog in
  let rt = Bastion.Runtime.create () in
  Machine.poke machine 0x9000L 42L;
  Machine.poke machine 0x9008L 43L;
  ignore (Bastion.Runtime.handle rt machine ~name:"ctx_write_mem" ~args:[| 0x9000L; 2L |]);
  Alcotest.(check (option int64)) "word 0 shadowed" (Some 42L)
    (Bastion.Shadow_memory.shadow rt.shadow ~addr:0x9000L);
  Alcotest.(check (option int64)) "word 1 shadowed" (Some 43L)
    (Bastion.Shadow_memory.shadow rt.shadow ~addr:0x9008L);
  ignore
    (Bastion.Runtime.handle rt machine ~name:"ctx_bind_mem" ~args:[| 7L; 2L; 0x9000L |]);
  Alcotest.(check (option int64)) "binding recorded" (Some 0x9000L)
    (Bastion.Shadow_memory.binding rt.shadow ~id:7 ~pos:2);
  Alcotest.(check int) "counters" 1 rt.bind_mem_calls

let test_metadata_contents () =
  let prog = Testlib.exec_program () in
  let p = Bastion.Api.protect prog in
  let session = Bastion.Api.launch p () in
  let meta = session.monitor.meta in
  (* Every callsite entry's address decodes back to a call. *)
  Hashtbl.iter
    (fun addr (e : Bastion.Metadata.cs_entry) ->
      Alcotest.(check bool) "addr matches entry" true (Int64.equal addr e.e_addr);
      match Hashtbl.find_opt meta.conv_by_addr addr with
      | Some (Bastion.Metadata.Conv_direct callee) ->
        Alcotest.(check string) "direct callee matches" e.e_callee callee
      | Some Bastion.Metadata.Conv_indirect -> ()
      | None -> Alcotest.fail "cs entry without convention")
    meta.cs_by_addr;
  Alcotest.(check bool) "checked globals nonempty" true
    (List.length meta.checked_globals > 0);
  Alcotest.(check bool) "entry count counts" true (meta.entry_count > 0)

let test_report_table () =
  let s =
    Report.Table.render
      ~align:[ Report.Table.L; R ]
      ~header:[ "name"; "value" ]
      [ [ "alpha"; "1" ]; [ "beta-long"; "22" ] ]
  in
  let lines = String.split_on_char '\n' s in
  Alcotest.(check int) "4 lines" 4 (List.length lines);
  (* All lines are equal width. *)
  let widths = List.map String.length lines in
  Alcotest.(check bool) "uniform width" true
    (List.for_all (fun w -> w = List.hd widths) widths);
  Alcotest.(check bool) "right-aligned value" true
    (Astring.String.is_suffix ~affix:" 1" (List.nth lines 2))

let test_loc_module () =
  let l1 = Sil.Loc.make "f" "entry" 3 in
  let l2 = Sil.Loc.make "f" "entry" 3 in
  Alcotest.(check bool) "equal" true (Sil.Loc.equal l1 l2);
  Alcotest.(check string) "to_string" "f:entry:3" (Sil.Loc.to_string l1);
  let s = Sil.Loc.Set.add l1 (Sil.Loc.Set.singleton l2) in
  Alcotest.(check int) "set dedups" 1 (Sil.Loc.Set.cardinal s)

let suites =
  [
    ( "misc",
      [
        Alcotest.test_case "driver cache keyed by params" `Quick test_driver_cache_keys;
        Alcotest.test_case "overhead_pct directions" `Quick test_overhead_pct_directions;
        Alcotest.test_case "fs fetch-only checks nothing" `Quick
          test_fs_fetch_only_checks_nothing;
        Alcotest.test_case "runtime intrinsics" `Quick test_runtime_intrinsics_direct;
        Alcotest.test_case "metadata contents" `Quick test_metadata_contents;
        Alcotest.test_case "report table rendering" `Quick test_report_table;
        Alcotest.test_case "loc module" `Quick test_loc_module;
      ] );
  ]

(* Appended: determinism and filler generation. *)
let test_determinism () =
  let run () =
    let app =
      Workloads.Drivers.nginx
        ~params:
          { Workloads.Nginx_model.default with connections = 6; requests_per_conn = 4;
            init_mmap = 6; init_mprotect = 4; filler = false }
        ()
    in
    let m = Workloads.Drivers.run app Workloads.Drivers.Bastion_full in
    (m.m_cycles, m.m_traps, m.m_metric)
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "bit-identical reruns" true (a = b)

let test_filler_targets () =
  (* The padded models hit the paper's Table 5 structural rows exactly. *)
  List.iter
    (fun (prog, total, indirect) ->
      let s = Workloads.Appkit.callsite_stats prog in
      Alcotest.(check int) "total callsites" total s.total_callsites;
      Alcotest.(check int) "indirect callsites" indirect s.indirect_count)
    [
      ( Workloads.Nginx_model.build Workloads.Nginx_model.default,
        Workloads.Nginx_model.table5_total_callsites,
        Workloads.Nginx_model.table5_indirect_callsites );
      ( Workloads.Vsftpd_model.build Workloads.Vsftpd_model.default,
        Workloads.Vsftpd_model.table5_total_callsites,
        Workloads.Vsftpd_model.table5_indirect_callsites );
    ]

let suites =
  match suites with
  | [ (name, cases) ] ->
    [
      ( name,
        cases
        @ [
            Alcotest.test_case "simulator determinism" `Quick test_determinism;
            Alcotest.test_case "filler hits Table 5 targets" `Quick test_filler_targets;
          ] );
    ]
  | other -> other
