(* Fine-grained interpreter semantics: places (field/index/deref),
   string operands, function-pointer values, argument-rule table, and
   operand/place helper functions. *)

module B = Sil.Builder
open Sil.Operand

let i64 = Sil.Types.I64
let ptr = Sil.Types.Ptr Sil.Types.I64

let run mk =
  let pb = B.program () in
  Kernel.Syscalls.declare_stubs pb;
  mk pb;
  let prog = B.build pb ~entry:"main" in
  Sil.Validate.check_exn prog;
  let machine = Machine.create prog in
  ignore (Kernel.boot machine);
  let outcome = Machine.run machine in
  Testlib.check_exit outcome;
  machine

let g_out m = Machine.peek m (Machine.global_address m "g_out")

let test_field_access () =
  let m =
    run (fun pb ->
        B.struct_ pb "pair_t" [ ("a", i64); ("b", i64) ];
        B.global pb "g_pair" (Sil.Types.Struct "pair_t") Sil.Prog.Zero;
        B.global pb "g_out" i64 Sil.Prog.Zero;
        let fb = B.func pb "main" ~params:[] in
        let p = B.local fb "p" ptr in
        let v = B.local fb "v" i64 in
        B.addr_of fb p (Sil.Place.Lglobal "g_pair");
        B.store fb (Sil.Place.Lfield (Var p, "pair_t", "a")) (const 11);
        B.store fb (Sil.Place.Lfield (Var p, "pair_t", "b")) (const 22);
        B.load fb v (Sil.Place.Lfield (Var p, "pair_t", "b"));
        B.store fb (Sil.Place.Lglobal "g_out") (Var v);
        B.halt fb;
        B.seal fb)
  in
  Alcotest.(check int64) "field b" 22L (g_out m)

let test_index_access () =
  let m =
    run (fun pb ->
        B.global pb "g_arr" (Sil.Types.Array (i64, 8)) Sil.Prog.Zero;
        B.global pb "g_out" i64 Sil.Prog.Zero;
        let fb = B.func pb "main" ~params:[] in
        let p = B.local fb "p" ptr in
        let i = B.local fb "i" i64 in
        let acc = B.local fb "acc" i64 in
        let v = B.local fb "v" i64 in
        B.addr_of fb p (Sil.Place.Lglobal "g_arr");
        B.set fb i (const 0);
        B.set fb acc (const 0);
        (* g_arr[i] := 3*i for i in 0..7 *)
        Workloads.Appkit.counted_loop fb ~tag:"fill" ~count:8 (fun fb ->
            B.store fb (Sil.Place.Lindex (Var p, Var i, i64)) (Var acc);
            B.binop fb acc Sil.Instr.Add (Var acc) (const 3);
            B.binop fb i Sil.Instr.Add (Var i) (const 1));
        B.load fb v (Sil.Place.Lindex (Var p, const 5, i64));
        B.store fb (Sil.Place.Lglobal "g_out") (Var v);
        B.halt fb;
        B.seal fb)
  in
  Alcotest.(check int64) "arr[5] = 15" 15L (g_out m)

let test_deref_store () =
  let m =
    run (fun pb ->
        B.global pb "g_cell" i64 Sil.Prog.Zero;
        B.global pb "g_out" i64 Sil.Prog.Zero;
        let fb = B.func pb "main" ~params:[] in
        let p = B.local fb "p" ptr in
        let v = B.local fb "v" i64 in
        B.addr_of fb p (Sil.Place.Lglobal "g_cell");
        B.store fb (Sil.Place.Lderef (Var p)) (const 99);
        B.load fb v (Sil.Place.Lglobal "g_cell");
        B.store fb (Sil.Place.Lglobal "g_out") (Var v);
        B.halt fb;
        B.seal fb)
  in
  Alcotest.(check int64) "store through pointer" 99L (g_out m)

let test_struct_array_elements () =
  (* v[index].field addressing over an array of structs. *)
  let m =
    run (fun pb ->
        B.struct_ pb "tri_t" [ ("x", i64); ("y", i64); ("z", i64) ];
        B.global pb "g_tris" (Sil.Types.Array (Sil.Types.Struct "tri_t", 4)) Sil.Prog.Zero;
        B.global pb "g_out" i64 Sil.Prog.Zero;
        let fb = B.func pb "main" ~params:[] in
        let base = B.local fb "base" ptr in
        let ep = B.local fb "ep" ptr in
        let v = B.local fb "v" i64 in
        B.addr_of fb base (Sil.Place.Lglobal "g_tris");
        B.addr_of fb ep (Sil.Place.Lindex (Var base, const 2, Sil.Types.Struct "tri_t"));
        B.store fb (Sil.Place.Lfield (Var ep, "tri_t", "z")) (const 7);
        (* element 2, field z is word 2*3+2 = 8 of the array *)
        B.load fb v (Sil.Place.Lindex (Var base, const 8, i64));
        B.store fb (Sil.Place.Lglobal "g_out") (Var v);
        B.halt fb;
        B.seal fb)
  in
  Alcotest.(check int64) "struct-array layout" 7L (g_out m)

let test_cstr_and_fptr_operands () =
  let m =
    run (fun pb ->
        B.global pb "g_out" i64 Sil.Prog.Zero;
        B.global pb "g_s" ptr Sil.Prog.Zero;
        let fb = B.func pb "id" ~params:[ ("x", i64) ] in
        B.ret fb (Some (Var (B.param fb 0)));
        B.seal fb;
        let fb = B.func pb "main" ~params:[] in
        let h = B.local fb "h" ptr in
        let r = B.local fb "r" i64 in
        B.store fb (Sil.Place.Lglobal "g_s") (Cstr "token");
        B.set fb h (Func_addr "id");
        B.call_indirect fb ~dst:r (Var h) [ const 64 ];
        B.store fb (Sil.Place.Lglobal "g_out") (Var r);
        B.halt fb;
        B.seal fb)
  in
  Alcotest.(check int64) "fptr call" 64L (g_out m);
  let s_addr = Machine.peek m (Machine.global_address m "g_s") in
  Alcotest.(check string) "cstr interned" "token" (Machine.read_string m s_addr)

(* --- argument rules ----------------------------------------------------- *)

let test_arg_rules () =
  let k name pos = Bastion.Arg_rules.kind ~sysno:(Kernel.Syscalls.number name) ~pos in
  Alcotest.(check bool) "execve path extended" true (k "execve" 0 = Bastion.Arg_rules.Extended);
  Alcotest.(check bool) "execve argv extended" true (k "execve" 1 = Bastion.Arg_rules.Extended);
  Alcotest.(check bool) "mmap all direct" true (k "mmap" 2 = Bastion.Arg_rules.Direct);
  Alcotest.(check bool) "accept sockaddr" true (k "accept" 1 = Bastion.Arg_rules.Sockaddr);
  Alcotest.(check bool) "accept4 sockaddr" true (k "accept4" 1 = Bastion.Arg_rules.Sockaddr);
  Alcotest.(check bool) "open path extended" true (k "open" 0 = Bastion.Arg_rules.Extended);
  Alcotest.(check bool) "setuid direct" true (k "setuid" 0 = Bastion.Arg_rules.Direct)

(* --- operand / place helpers --------------------------------------------- *)

let test_helpers () =
  let v = { Sil.Operand.vid = 1; vname = "x" } in
  Alcotest.(check int) "operand vars" 1 (List.length (Sil.Operand.vars (Var v)));
  Alcotest.(check int) "const no vars" 0 (List.length (Sil.Operand.vars (const 3)));
  Alcotest.(check (list string)) "operand globals" [ "g" ] (Sil.Operand.globals (Global "g"));
  let place = Sil.Place.Lfield (Var v, "s", "f") in
  Alcotest.(check int) "place vars" 1 (List.length (Sil.Place.vars place));
  Alcotest.(check bool) "as_var" true (Sil.Place.as_var (Lvar v) = Some v);
  Alcotest.(check bool) "as_global" true (Sil.Place.as_global (Lglobal "g") = Some "g");
  let call =
    Sil.Instr.Call { dst = Some v; target = Indirect (Var v); args = [ const 1; Var v ] }
  in
  Alcotest.(check int) "call operands" 3 (List.length (Sil.Instr.operands call));
  Alcotest.(check bool) "def" true (Sil.Instr.def call = Some v);
  Alcotest.(check bool) "is_call" true (Sil.Instr.is_call call)

let suites =
  [
    ( "semantics",
      [
        Alcotest.test_case "struct field access" `Quick test_field_access;
        Alcotest.test_case "array index access" `Quick test_index_access;
        Alcotest.test_case "store through pointer" `Quick test_deref_store;
        Alcotest.test_case "array-of-struct layout" `Quick test_struct_array_elements;
        Alcotest.test_case "cstr + fptr operands" `Quick test_cstr_and_fptr_operands;
        Alcotest.test_case "direct/extended argument rules" `Quick test_arg_rules;
        Alcotest.test_case "operand/place helpers" `Quick test_helpers;
      ] );
  ]
