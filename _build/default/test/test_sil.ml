(* Unit tests for the SIL IR: types, builder, validator, callgraph,
   pretty-printer. *)

module B = Sil.Builder
open Sil.Operand

let i64 = Sil.Types.I64
let ptr = Sil.Types.Ptr Sil.Types.I64

let env_with ?(structs = []) () =
  let env = Sil.Types.struct_env_create () in
  List.iter (fun (name, fields) -> Sil.Types.define_struct env { sname = name; fields }) structs;
  env

(* --- types ----------------------------------------------------------- *)

let test_size_words () =
  let env =
    env_with
      ~structs:
        [
          ("pair", [ ("a", i64); ("b", ptr) ]);
          ("nested", [ ("p", Sil.Types.Struct "pair"); ("c", i64) ]);
        ]
      ()
  in
  Alcotest.(check int) "scalar" 1 (Sil.Types.size_words env i64);
  Alcotest.(check int) "pointer" 1 (Sil.Types.size_words env ptr);
  Alcotest.(check int) "array" 12 (Sil.Types.size_words env (Sil.Types.Array (i64, 12)));
  Alcotest.(check int) "struct" 2 (Sil.Types.size_words env (Sil.Types.Struct "pair"));
  Alcotest.(check int) "nested struct" 3 (Sil.Types.size_words env (Sil.Types.Struct "nested"));
  Alcotest.(check int) "array of structs" 9
    (Sil.Types.size_words env (Sil.Types.Array (Sil.Types.Struct "nested", 3)));
  Alcotest.(check int) "void" 0 (Sil.Types.size_words env Sil.Types.Void)

let test_field_offsets () =
  let env =
    env_with
      ~structs:[ ("hdr", [ ("magic", i64); ("body", Sil.Types.Array (i64, 4)); ("crc", i64) ]) ]
      ()
  in
  Alcotest.(check int) "first field" 0 (Sil.Types.field_offset env "hdr" "magic");
  Alcotest.(check int) "after array" 5 (Sil.Types.field_offset env "hdr" "crc");
  Alcotest.(check bool) "field type" true
    (Sil.Types.equal (Sil.Types.field_type env "hdr" "crc") i64);
  Alcotest.check_raises "unknown field" (Invalid_argument "Types.field_offset: no field zz in struct hdr")
    (fun () -> ignore (Sil.Types.field_offset env "hdr" "zz"))

let test_duplicate_struct () =
  let env = env_with ~structs:[ ("s", [ ("x", i64) ]) ] () in
  Alcotest.check_raises "duplicate" (Invalid_argument "Types.define_struct: duplicate struct s")
    (fun () -> Sil.Types.define_struct env { sname = "s"; fields = [] })

let test_signature_class () =
  let open Sil.Types in
  let c1 = signature_class { params = [ I64; Ptr I64 ]; ret = I64 } in
  let c2 = signature_class { params = [ I64; Ptr (Ptr I64) ]; ret = I64 } in
  let c3 = signature_class { params = [ I64 ]; ret = I64 } in
  Alcotest.(check string) "same shape" c1 c2;
  Alcotest.(check bool) "different arity" true (c1 <> c3)

(* --- builder --------------------------------------------------------- *)

let test_builder_basic () =
  let pb = B.program () in
  let fb = B.func pb "f" ~params:[ ("x", i64) ] in
  let y = B.local fb "y" i64 in
  B.binop fb y Sil.Instr.Add (Var (B.param fb 0)) (const 1);
  B.ret fb (Some (Var y));
  B.seal fb;
  let fb = B.func pb "main" ~params:[] in
  let r = B.local fb "r" i64 in
  B.call fb ~dst:r "f" [ const 41 ];
  B.halt fb;
  B.seal fb;
  let prog = B.build pb ~entry:"main" in
  Sil.Validate.check_exn prog;
  let f = Sil.Prog.find_func prog "f" in
  Alcotest.(check int) "one block" 1 (List.length f.blocks);
  Alcotest.(check int) "param count" 1 (List.length f.params);
  Alcotest.(check int) "whole-program instrs" 2 (Sil.Prog.instr_count prog)

let test_builder_blocks_and_fallthrough () =
  let pb = B.program () in
  let fb = B.func pb "main" ~params:[] in
  let x = B.local fb "x" i64 in
  B.set fb x (const 1);
  B.block fb "next";  (* implicit jump from entry *)
  B.set fb x (const 2);
  B.halt fb;
  B.seal fb;
  let prog = B.build pb ~entry:"main" in
  Sil.Validate.check_exn prog;
  let f = Sil.Prog.find_func prog "main" in
  Alcotest.(check int) "two blocks" 2 (List.length f.blocks);
  match (List.hd f.blocks).term with
  | Sil.Instr.Jump "next" -> ()
  | _ -> Alcotest.fail "expected implicit jump to next"

let test_builder_duplicates () =
  let pb = B.program () in
  let fb = B.func pb "f" ~params:[] in
  B.ret fb None;
  B.seal fb;
  Alcotest.check_raises "duplicate function"
    (Invalid_argument "Builder.func: duplicate function f") (fun () ->
      ignore (B.func pb "f" ~params:[]));
  B.global pb "g" i64 Sil.Prog.Zero;
  Alcotest.check_raises "duplicate global"
    (Invalid_argument "Builder.global: duplicate global g") (fun () ->
      B.global pb "g" i64 Sil.Prog.Zero)

let test_builder_seal_guard () =
  let pb = B.program () in
  let fb = B.func pb "f" ~params:[] in
  B.ret fb None;
  B.seal fb;
  Alcotest.check_raises "emit after seal"
    (Invalid_argument "Builder.emit: function f already sealed") (fun () ->
      B.store fb (Sil.Place.Lglobal "nope") (const 0))

(* --- validator ------------------------------------------------------- *)

let invalid_prog mk =
  let pb = B.program () in
  let fb = B.func pb "main" ~params:[] in
  mk pb fb;
  B.halt fb;
  B.seal fb;
  B.build pb ~entry:"main"

let expect_invalid name mk =
  let prog = invalid_prog mk in
  match Sil.Validate.check prog with
  | [] -> Alcotest.failf "%s: expected validation errors" name
  | _ -> ()

let test_validator_catches () =
  expect_invalid "unknown global" (fun _pb fb ->
      B.store fb (Sil.Place.Lglobal "missing") (const 1));
  expect_invalid "unknown callee" (fun _pb fb -> B.call fb "missing" []);
  expect_invalid "unknown variable" (fun _pb fb ->
      B.set fb { Sil.Operand.vid = 99; vname = "ghost" } (const 1));
  expect_invalid "unknown label" (fun _pb fb ->
      B.branch fb (const 1) "nowhere" "nowhere");
  expect_invalid "arity mismatch" (fun pb fb ->
      let g = B.func pb "g" ~params:[ ("a", i64) ] in
      B.ret g None;
      B.seal g;
      B.call fb "g" [ const 1; const 2 ]);
  expect_invalid "unknown struct" (fun _pb fb ->
      B.store fb (Sil.Place.Lfield (Null, "ghost_t", "x")) (const 1))

let test_validator_allows_short_syscall_args () =
  let pb = B.program () in
  Kernel.Syscalls.declare_stubs pb;
  let fb = B.func pb "main" ~params:[] in
  B.call fb "setuid" [ const 0 ];  (* 1 arg against the 6-register ABI *)
  B.halt fb;
  B.seal fb;
  Sil.Validate.check_exn (B.build pb ~entry:"main")

(* --- callgraph ------------------------------------------------------- *)

let test_callgraph () =
  let pb = B.program () in
  B.global pb "g_fp" ptr (Sil.Prog.Fptr "callee_b");
  let fb = B.func pb "callee_a" ~params:[] in
  B.ret fb None;
  B.seal fb;
  let fb = B.func pb "callee_b" ~params:[] in
  B.ret fb None;
  B.seal fb;
  let fb = B.func pb "main" ~params:[] in
  let h = B.local fb "h" ptr in
  B.call fb "callee_a" [];
  B.call fb "callee_a" [];
  B.load fb h (Sil.Place.Lglobal "g_fp");
  B.call_indirect fb (Var h) [];
  B.halt fb;
  B.seal fb;
  let prog = B.build pb ~entry:"main" in
  let cg = Sil.Callgraph.build prog in
  Alcotest.(check int) "direct callers of a" 2
    (List.length (Sil.Callgraph.direct_callers_of cg "callee_a"));
  Alcotest.(check int) "direct callers of b" 0
    (List.length (Sil.Callgraph.direct_callers_of cg "callee_b"));
  Alcotest.(check bool) "b address taken" true (Sil.Callgraph.is_address_taken cg "callee_b");
  Alcotest.(check bool) "a not address taken" false
    (Sil.Callgraph.is_address_taken cg "callee_a");
  let s = Sil.Callgraph.stats cg in
  Alcotest.(check int) "total" 3 s.total_callsites;
  Alcotest.(check int) "indirect" 1 s.indirect_count

let test_pp_roundtrip_smoke () =
  let prog = Testlib.exec_program () in
  let text = Sil.Pp.prog_to_string prog in
  Alcotest.(check bool) "mentions execve" true
    (Astring.String.is_infix ~affix:"execve" text);
  Alcotest.(check bool) "mentions struct field" true
    (Astring.String.is_infix ~affix:"exec_ctx" text)

let suites =
  [
    ( "sil",
      [
        Alcotest.test_case "size_words" `Quick test_size_words;
        Alcotest.test_case "field offsets" `Quick test_field_offsets;
        Alcotest.test_case "duplicate struct rejected" `Quick test_duplicate_struct;
        Alcotest.test_case "signature classes" `Quick test_signature_class;
        Alcotest.test_case "builder basics" `Quick test_builder_basic;
        Alcotest.test_case "builder blocks + fallthrough" `Quick
          test_builder_blocks_and_fallthrough;
        Alcotest.test_case "builder duplicate detection" `Quick test_builder_duplicates;
        Alcotest.test_case "builder seal guard" `Quick test_builder_seal_guard;
        Alcotest.test_case "validator catches malformed IR" `Quick test_validator_catches;
        Alcotest.test_case "validator allows syscall ABI arity" `Quick
          test_validator_allows_short_syscall_args;
        Alcotest.test_case "callgraph" `Quick test_callgraph;
        Alcotest.test_case "pretty-printer smoke" `Quick test_pp_roundtrip_smoke;
      ] );
  ]
