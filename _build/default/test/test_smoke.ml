(* End-to-end smoke tests: the full pipeline (build -> protect ->
   launch -> run) on a small program, benign and under attack. *)

open Testlib

let test_benign_run () =
  let prog = exec_program () in
  let outcome, session = run_protected prog in
  check_exit outcome;
  (* The execve must have executed (it is legitimate). *)
  Alcotest.(check int)
    "execve executed" 1
    (List.length (Kernel.Process.executed session.process "execve"));
  Alcotest.(check int) "no denials" 0 (List.length (Bastion.Monitor.denials session.monitor))

let test_unprotected_run () =
  let prog = exec_program () in
  let machine, proc = Bastion.Api.launch_unprotected prog in
  check_exit (Machine.run machine);
  Alcotest.(check int)
    "execve executed" 1
    (List.length (Kernel.Process.executed proc "execve"))

let test_calltype_stats () =
  let prog = exec_program () in
  let p = Bastion.Api.protect prog in
  let stats = Bastion.Api.stats p in
  Alcotest.(check bool) "has sensitive callsites" true (stats.sensitive_callsites >= 2);
  Alcotest.(check int) "no indirect sensitive" 0 stats.sensitive_indirect;
  Alcotest.(check bool) "has write_mem sites" true (stats.write_mem_sites > 0);
  Alcotest.(check bool) "has bind sites" true (stats.bind_mem_sites > 0)

(* Corrupt the global exec context's path before do_exec loads it: the
   argument-integrity context must catch the mismatch between memory and
   the shadow. *)
let test_attack_corrupt_global_arg () =
  let prog = exec_program () in
  let protected_prog = Bastion.Api.protect prog in
  let session = Bastion.Api.launch protected_prog () in
  let m = session.machine in
  let evil = Machine.Layout.intern_string m.layout m.mem "/bin/sh" in
  let gctx = Machine.global_address m "gctx" in
  let fired = ref false in
  m.on_instr <-
    Some
      (fun m (loc : Sil.Loc.t) ->
        if (not !fired) && String.equal loc.func "do_exec" then begin
          fired := true;
          Machine.poke m gctx evil  (* overwrite gctx.path *)
        end);
  let outcome = Machine.run m in
  check_fault outcome (is_monitor_kill ~context:"argument-integrity") "argument-integrity";
  Alcotest.(check int)
    "execve blocked" 0
    (List.length (Kernel.Process.executed session.process "execve"))

(* Call a syscall the program never uses: seccomp kills it outright
   (not-callable under the Call-Type context / §11.3). *)
let test_not_callable_killed () =
  let prog = exec_program () in
  let protected_prog = Bastion.Api.protect prog in
  let session = Bastion.Api.launch protected_prog () in
  let m = session.machine in
  (* Redirect the benign indirect call to the setuid stub: gctx handler
     pointer now targets a never-used syscall. *)
  let ghandler = Machine.global_address m "ghandler" in
  let setuid_addr = Machine.function_address m "setuid" in
  let fired = ref false in
  m.on_instr <-
    Some
      (fun m (loc : Sil.Loc.t) ->
        if (not !fired) && String.equal loc.func "main" then begin
          fired := true;
          Machine.poke m ghandler setuid_addr
        end);
  let outcome = Machine.run m in
  check_fault outcome is_seccomp_kill "seccomp-kill"

(* Hijack a return address to reach do_exec's execve gadget: without
   CET, control flow reaches the syscall, and the monitor's control-flow
   (or argument) context must stop it. *)
let test_rop_blocked () =
  let prog = exec_program () in
  let protected_prog = Bastion.Api.protect prog in
  let session = Bastion.Api.launch protected_prog () in
  let m = session.machine in
  let fired = ref false in
  m.on_instr <-
    Some
      (fun m (loc : Sil.Loc.t) ->
        if (not !fired) && String.equal loc.func "compute" then begin
          fired := true;
          (* Overwrite protect_buf's return address with the entry of
             do_exec's body (a classic return-to-function ROP). *)
          match Machine.frames m with
          | frame :: _ ->
            let gadget = Machine.instr_address m (Sil.Loc.make "do_exec" "entry" 0) in
            Machine.poke m frame.ret_slot gadget
          | [] -> ()
        end);
  let outcome = Machine.run m in
  check_fault outcome (fun f -> is_monitor_kill f) "monitor-kill";
  Alcotest.(check int)
    "execve blocked" 0
    (List.length (Kernel.Process.executed session.process "execve"))

(* Same ROP with CET enabled: the shadow stack catches it at the return,
   before the syscall is even reached. *)
let test_rop_cet () =
  let prog = exec_program () in
  let protected_prog = Bastion.Api.protect prog in
  let session =
    Bastion.Api.launch
      ~machine_config:{ Machine.default_config with cet = true }
      protected_prog ()
  in
  let m = session.machine in
  let fired = ref false in
  m.on_instr <-
    Some
      (fun m (loc : Sil.Loc.t) ->
        if (not !fired) && String.equal loc.func "compute" then begin
          fired := true;
          match Machine.frames m with
          | frame :: _ ->
            let gadget = Machine.instr_address m (Sil.Loc.make "do_exec" "entry" 0) in
            Machine.poke m frame.ret_slot gadget
          | [] -> ()
        end);
  check_fault (Machine.run m) is_cet_violation "cet-violation"

let suites =
  [
    ( "smoke",
      [
        Alcotest.test_case "benign protected run" `Quick test_benign_run;
        Alcotest.test_case "unprotected run" `Quick test_unprotected_run;
        Alcotest.test_case "instrumentation stats" `Quick test_calltype_stats;
        Alcotest.test_case "corrupted global argument blocked" `Quick
          test_attack_corrupt_global_arg;
        Alcotest.test_case "not-callable syscall killed" `Quick test_not_callable_killed;
        Alcotest.test_case "ROP to execve blocked by monitor" `Quick test_rop_blocked;
        Alcotest.test_case "ROP caught by CET" `Quick test_rop_cet;
      ] );
  ]
