(* Workload-model tests: each app must run cleanly under every defense
   configuration, with the expected syscall profile (Table 4 shape). *)

let small_nginx () =
  Workloads.Drivers.nginx
    ~params:
      {
        Workloads.Nginx_model.default with
        connections = 8;
        requests_per_conn = 5;
        filler = false;
        init_mmap = 30;
        init_mprotect = 20;
      }
    ()

let small_sqlite () =
  Workloads.Drivers.sqlite
    ~params:
      { Workloads.Sqlite_model.default with connections = 3; txns_per_conn = 20;
        mprotect_every = 10; filler = false }
    ()

let small_vsftpd () =
  Workloads.Drivers.vsftpd
    ~params:
      {
        Workloads.Vsftpd_model.default with
        sessions = 3;
        pasv_transfers = 6;
        active_transfers = 2;
        file_words = 4096;
        chunk_words = 1024;
        filler = false;
      }
    ()

let check_defense app defense () =
  let m = Workloads.Drivers.run (app ()) defense in
  Alcotest.(check bool) "made progress" true (m.m_cycles > 0);
  Alcotest.(check bool) "positive metric" true (m.m_metric > 0.0)

let test_nginx_syscall_profile () =
  let app = small_nginx () in
  let m = Workloads.Drivers.run app Workloads.Drivers.Bastion_full in
  let count name = Kernel.Process.syscall_count m.m_process (Kernel.Syscalls.number name) in
  Alcotest.(check int) "accept4 = connections + sentinel" 9 (count "accept4");
  Alcotest.(check int) "bind" 1 (count "bind");
  Alcotest.(check int) "listen" 2 (count "listen");
  Alcotest.(check int) "setuid = workers" 32 (count "setuid");
  Alcotest.(check int) "clone = 3x workers" 96 (count "clone");
  Alcotest.(check int) "socket" 32 (count "socket");
  Alcotest.(check int) "connect" 32 (count "connect");
  Alcotest.(check int) "mmap" 30 (count "mmap");
  Alcotest.(check int) "mprotect" 20 (count "mprotect");
  Alcotest.(check int) "execve never runs" 0 (count "execve")

let test_vsftpd_syscall_profile () =
  let app = small_vsftpd () in
  let m = Workloads.Drivers.run app Workloads.Drivers.Bastion_full in
  let count name = Kernel.Process.syscall_count m.m_process (Kernel.Syscalls.number name) in
  Alcotest.(check int) "accept = sessions + sentinel + pasv" (3 + 1 + 6) (count "accept");
  Alcotest.(check int) "connect = active transfers" 2 (count "connect");
  Alcotest.(check int) "setuid = 2 + sessions" 5 (count "setuid");
  Alcotest.(check int) "bind = 1 + pasv" 7 (count "bind")

let test_sqlite_syscall_profile () =
  let app = small_sqlite () in
  let m = Workloads.Drivers.run app Workloads.Drivers.Bastion_full in
  let count name = Kernel.Process.syscall_count m.m_process (Kernel.Syscalls.number name) in
  Alcotest.(check int) "accept = connections + sentinel" 4 (count "accept");
  Alcotest.(check int) "runtime mprotect = txns/10" 6 (count "mprotect");
  Alcotest.(check int) "fsync per txn" 60 (count "fsync")

let test_overheads_ordered () =
  (* Vanilla must be the fastest; adding contexts must not speed things
     up; everything must stay within sane bounds. *)
  let app = small_nginx () in
  let run d = Workloads.Drivers.run app d in
  let base = run Workloads.Drivers.Vanilla in
  let ct = run Workloads.Drivers.Bastion_ct in
  let cf = run Workloads.Drivers.Bastion_ct_cf in
  let ai = run Workloads.Drivers.Bastion_full in
  Alcotest.(check bool) "ct >= base" true (ct.m_cycles >= base.m_cycles);
  Alcotest.(check bool) "cf >= ct" true (cf.m_cycles >= ct.m_cycles);
  Alcotest.(check bool) "ai >= cf" true (ai.m_cycles >= cf.m_cycles)

let suites =
  let open Workloads.Drivers in
  let defense_cases app_name app =
    List.map
      (fun d ->
        Alcotest.test_case
          (Printf.sprintf "%s under %s" app_name (defense_name d))
          `Quick (check_defense app d))
      (figure3_defenses @ table7_defenses)
  in
  [
    ( "workloads",
      defense_cases "nginx" small_nginx
      @ defense_cases "sqlite" small_sqlite
      @ defense_cases "vsftpd" small_vsftpd
      @ [
          Alcotest.test_case "nginx syscall profile" `Quick test_nginx_syscall_profile;
          Alcotest.test_case "vsftpd syscall profile" `Quick test_vsftpd_syscall_profile;
          Alcotest.test_case "sqlite syscall profile" `Quick test_sqlite_syscall_profile;
          Alcotest.test_case "context costs ordered" `Quick test_overheads_ordered;
        ] );
  ]

(* Appended: Table 4 exactness at paper scale, as a regression guard
   (the bench prints the same numbers; this enforces them). *)
let paper_table4 =
  [
    (* name, nginx, sqlite, vsftpd *)
    ("clone", 96, 48, 36); ("mprotect", 334, 501, 7); ("mmap", 534, 42, 33);
    ("setuid", 32, 0, 12); ("setgid", 32, 0, 12); ("socket", 32, 1, 85);
    ("connect", 32, 0, 8); ("bind", 1, 1, 77); ("listen", 2, 1, 77);
    ("accept", 0, 11, 87); ("accept4", 5665, 0, 0); ("execve", 0, 0, 0);
    ("fork", 0, 0, 0); ("chmod", 0, 0, 0); ("setreuid", 0, 0, 0);
  ]

let test_table4_exact () =
  let run app = Workloads.Drivers.run app Workloads.Drivers.Bastion_full in
  let nginx =
    run (Workloads.Drivers.nginx
           ~params:{ Workloads.Nginx_model.paper_scale with filler = false } ())
  in
  let sqlite =
    run (Workloads.Drivers.sqlite
           ~params:{ Workloads.Sqlite_model.paper_scale with filler = false } ())
  in
  let vsftpd =
    run (Workloads.Drivers.vsftpd
           ~params:{ Workloads.Vsftpd_model.paper_scale with filler = false } ())
  in
  let count (m : Workloads.Drivers.measurement) name =
    Kernel.Process.syscall_count m.m_process (Kernel.Syscalls.number name)
  in
  List.iter
    (fun (name, n, s, v) ->
      Alcotest.(check int) ("nginx " ^ name) n (count nginx name);
      Alcotest.(check int) ("sqlite " ^ name) s (count sqlite name);
      Alcotest.(check int) ("vsftpd " ^ name) v (count vsftpd name))
    paper_table4

let suites =
  match suites with
  | [ (name, cases) ] ->
    [ (name, cases @ [ Alcotest.test_case "Table 4 exact at paper scale" `Slow test_table4_exact ]) ]
  | other -> other
