(* Shared helpers for the test suites: small program fixtures built with
   the SIL builder. *)

module B = Sil.Builder

let check_exit outcome =
  match (outcome : Machine.outcome) with
  | Machine.Exited _ -> ()
  | Machine.Faulted f -> Alcotest.failf "expected clean exit, got %s" (Machine.fault_to_string f)

let check_fault outcome pred name =
  match (outcome : Machine.outcome) with
  | Machine.Exited _ -> Alcotest.failf "expected %s fault, program exited" name
  | Machine.Faulted f ->
    if not (pred f) then
      Alcotest.failf "expected %s fault, got %s" name (Machine.fault_to_string f)

let is_monitor_kill ?context (f : Machine.fault) =
  match f with
  | Machine.Monitor_kill { context = c; _ } -> (
    match context with Some want -> String.equal want c | None -> true)
  | _ -> false

let is_seccomp_kill = function Machine.Seccomp_kill _ -> true | _ -> false
let is_cet_violation = function Machine.Cet_violation _ -> true | _ -> false
let is_cfi_violation = function Machine.Cfi_violation _ -> true | _ -> false

(** A minimal program exercising the BASTION pipeline end to end:

    main stores a path into a global exec context, then calls
    [do_exec], which loads the path and invokes execve directly.  Also
    contains an unused function pointer dispatch so the program has an
    indirect callsite, and a helper that mprotects a buffer. *)
let exec_program () =
  let pb = B.program () in
  Kernel.Syscalls.declare_stubs pb;
  B.struct_ pb "exec_ctx" [ ("path", Sil.Types.Ptr Sil.Types.I64); ("flag", Sil.Types.I64) ];
  B.global pb "gctx" (Sil.Types.Struct "exec_ctx") Sil.Prog.Zero;
  B.global pb "ghandler" (Sil.Types.Ptr (Sil.Types.Func { params = [ Sil.Types.I64 ]; ret = Sil.Types.I64 }))
    (Sil.Prog.Fptr "log_event");
  (* A benign indirect-call target. *)
  let fb = B.func pb "log_event" ~params:[ ("code", Sil.Types.I64) ] in
  B.ret fb (Some (Sil.Operand.Var (B.param fb 0)));
  B.seal fb;
  (* do_exec(ctx): execve(ctx->path, 0, 0) *)
  let fb = B.func pb "do_exec" ~params:[ ("ctx", Sil.Types.Ptr (Sil.Types.Struct "exec_ctx")) ] in
  let path = B.local fb "path" (Sil.Types.Ptr Sil.Types.I64) in
  B.load fb path (Sil.Place.Lfield (Sil.Operand.Var (B.param fb 0), "exec_ctx", "path"));
  B.call fb "execve" [ Sil.Operand.Var path; Sil.Operand.Null; Sil.Operand.Null ];
  B.ret fb None;
  B.seal fb;
  (* protect_buf(): mprotect(heap, 16, PROT_READ) *)
  let fb = B.func pb "protect_buf" ~params:[] in
  let buf = B.local fb "buf" (Sil.Types.Ptr Sil.Types.I64) in
  let r = B.local fb "r" Sil.Types.I64 in
  B.call fb ~dst:buf "mmap" [ Sil.Operand.Null; Sil.Operand.const 16; Sil.Operand.const 1 ];
  B.call fb ~dst:r "mprotect" [ Sil.Operand.Var buf; Sil.Operand.const 16; Sil.Operand.const 1 ];
  B.ret fb None;
  B.seal fb;
  (* compute(): pure helper with no syscalls — ROP target for tests *)
  let fb = B.func pb "compute" ~params:[ ("x", Sil.Types.I64) ] in
  let y = B.local fb "y" Sil.Types.I64 in
  B.binop fb y Sil.Instr.Mul (Sil.Operand.Var (B.param fb 0)) (Sil.Operand.const 3);
  B.binop fb y Sil.Instr.Add (Sil.Operand.Var y) (Sil.Operand.const 1);
  B.ret fb (Some (Sil.Operand.Var y));
  B.seal fb;
  (* main *)
  let fb = B.func pb "main" ~params:[] in
  let p = B.local fb "p" (Sil.Types.Ptr (Sil.Types.Struct "exec_ctx")) in
  let h = B.local fb "h" (Sil.Types.Ptr Sil.Types.I64) in
  let r = B.local fb "r" Sil.Types.I64 in
  B.addr_of fb p (Sil.Place.Lglobal "gctx");
  B.store fb (Sil.Place.Lfield (Sil.Operand.Var p, "exec_ctx", "path"))
    (Sil.Operand.Cstr "/usr/bin/app");
  B.store fb (Sil.Place.Lfield (Sil.Operand.Var p, "exec_ctx", "flag")) (Sil.Operand.const 7);
  B.call fb "protect_buf" [];
  B.call fb ~dst:r "compute" [ Sil.Operand.const 5 ];
  B.load fb h (Sil.Place.Lglobal "ghandler");
  B.call_indirect fb ~dst:r (Sil.Operand.Var h) [ Sil.Operand.const 42 ];
  B.call fb "do_exec" [ Sil.Operand.Var p ];
  B.halt fb;
  B.seal fb;
  B.build pb ~entry:"main"

(** Run a protected session to completion, returning outcome + session. *)
let run_protected ?monitor_config prog =
  let protected_prog = Bastion.Api.protect prog in
  let session = Bastion.Api.launch ?monitor_config protected_prog () in
  let outcome = Machine.run session.machine in
  (outcome, session)
