(* Ablation benches for the design choices DESIGN.md calls out:

   1. the accept/accept4 sockaddr fast path (§9.2);
   2. running the monitor in the kernel instead of over ptrace (§11.2);
   3. shadow-memory probe behaviour under load (both table sides);
   4. control-flow verification cost as a function of stack depth;
   5. the trap fast path's CT+CF verdict cache, on vs off. *)

module D = Workloads.Drivers
module B = Sil.Builder

(* --- 1. sockaddr fast path ------------------------------------------ *)

let run_nginx_with ~sockaddr_fastpath =
  let params = Workloads.Nginx_model.default in
  let prog = Workloads.Nginx_model.build params in
  let protected_prog = Bastion.Api.protect prog in
  let session =
    Bastion.Api.launch
      ~machine_config:{ Machine.default_config with cet = true }
      ~monitor_config:{ Bastion.Monitor.default_config with sockaddr_fastpath }
      protected_prog ()
  in
  Workloads.Nginx_model.setup params session.process;
  (match Machine.run session.machine with
  | Machine.Exited _ -> ()
  | Machine.Faulted f -> failwith (Machine.fault_to_string f));
  (session, Kernel.Process.serve_cycles session.process)

let sockaddr_ablation () =
  print_endline "-- ablation: accept/accept4 sockaddr fast path (§9.2) --";
  let _, fast = run_nginx_with ~sockaddr_fastpath:true in
  let _, slow = run_nginx_with ~sockaddr_fastpath:false in
  Printf.printf
    "  NGINX serve cycles: fastpath %d, generic extended check %d (+%.3f%%)\n" fast slow
    (float_of_int (slow - fast) /. float_of_int fast *. 100.0)

(* --- 2. in-kernel monitor ------------------------------------------- *)

let in_kernel_ablation () =
  print_endline "-- ablation: in-kernel monitor vs ptrace (§11.2) --";
  let app = D.nginx () in
  let base = D.run app D.Vanilla in
  let ptrace_fs = D.run app (D.Bastion_fs Bastion.Monitor.Fs_full) in
  let kernel_fs =
    D.run ~cost:Machine.Cost.in_kernel_monitor app (D.Bastion_fs Bastion.Monitor.Fs_full)
  in
  let kernel_base = D.run ~cost:Machine.Cost.in_kernel_monitor app D.Vanilla in
  let ovh b m = D.overhead_pct ~baseline:b m ~higher_is_better:true in
  Printf.printf "  NGINX + fs syscalls, ptrace monitor:    %.2f%% overhead\n"
    (ovh base ptrace_fs);
  Printf.printf "  NGINX + fs syscalls, in-kernel monitor: %.2f%% overhead\n"
    (ovh kernel_base kernel_fs)

(* --- 3. shadow-memory behaviour ------------------------------------- *)

let shadow_ablation () =
  print_endline "-- ablation: shadow-memory occupancy and probe length --";
  let session, _ = run_nginx_with ~sockaddr_fastpath:true in
  let shadow = session.runtime.shadow in
  let lookup_probes, insert_probes, inserts =
    Bastion.Runtime.shadow_probe_stats session.runtime
  in
  Printf.printf "  entries: %d, capacity: %d, mean probes/lookup: %.2f\n"
    (Bastion.Shadow_memory.entry_count shadow)
    (Bastion.Shadow_memory.capacity shadow)
    lookup_probes;
  Printf.printf "  inserts: %d, mean probes/insert: %.2f\n" inserts insert_probes

(* --- 4. stack-depth sweep ------------------------------------------- *)

let i64 = Sil.Types.I64

(* A synthetic program whose single mmap callsite sits below a direct
   call chain of configurable depth. *)
let chain_program depth traps =
  let pb = B.program () in
  Kernel.Syscalls.declare_stubs pb;
  let open Sil.Operand in
  let leaf = Printf.sprintf "level%d" depth in
  let fb = B.func pb leaf ~params:[ ("n", i64) ] in
  B.call fb "mmap" [ Null; Var (B.param fb 0); const 3; const 2; const (-1); const 0 ];
  B.ret fb None;
  B.seal fb;
  for i = depth - 1 downto 1 do
    let fb = B.func pb (Printf.sprintf "level%d" i) ~params:[ ("n", i64) ] in
    B.call fb (Printf.sprintf "level%d" (i + 1)) [ Var (B.param fb 0) ];
    B.ret fb None;
    B.seal fb
  done;
  let fb = B.func pb "main" ~params:[] in
  Workloads.Appkit.counted_loop fb ~tag:"traps" ~count:traps (fun fb ->
      B.call fb "level1" [ const 4096 ]);
  B.halt fb;
  B.seal fb;
  B.build pb ~entry:"main"

let depth_sweep () =
  print_endline "-- ablation: CF+AI verification cost vs stack depth --";
  let traps = 200 in
  List.iter
    (fun depth ->
      let prog = chain_program depth traps in
      let run contexts =
        let protected_prog = Bastion.Api.protect prog in
        let session =
          Bastion.Api.launch
            ~monitor_config:{ Bastion.Monitor.default_config with contexts }
            protected_prog ()
        in
        (match Machine.run session.machine with
        | Machine.Exited _ -> ()
        | Machine.Faulted f -> failwith (Machine.fault_to_string f));
        session.machine.stats.cycles
      in
      let ct_only = run { Bastion.Monitor.ct = true; cf = false; ai = false } in
      let full = run Bastion.Monitor.all_contexts in
      Printf.printf "  depth %2d: CF+AI adds %5d cycles/trap\n" depth
        ((full - ct_only) / traps))
    [ 2; 4; 8; 16; 32 ]

(* --- 5. trap verdict cache ------------------------------------------ *)

let trap_cache_ablation () =
  print_endline "-- ablation: trap fast path (CT+CF verdict cache) --";
  List.iter
    (fun (app : D.app) ->
      List.iter
        (fun defense ->
          let on = D.run ~trap_cache:true app defense in
          let off = D.run ~trap_cache:false app defense in
          let hits, misses, rate =
            match on.D.m_monitor with
            | Some m -> Bastion.Monitor.cache_stats m
            | None -> (0, 0, 0.0)
          in
          let t_on = on.D.m_process.Kernel.Process.tracer in
          let t_off = off.D.m_process.Kernel.Process.tracer in
          Printf.printf
            "  %-8s %-22s cycles %9d -> %9d (-%.2f%%), ptrace calls %6d -> \
             %6d, cache %d/%d hits (%.1f%%)\n"
            app.D.app_name
            (D.defense_name on.D.m_defense)
            off.D.m_cycles on.D.m_cycles
            (float_of_int (off.D.m_cycles - on.D.m_cycles)
            /. float_of_int off.D.m_cycles *. 100.0)
            t_off.Kernel.Ptrace.calls_made t_on.Kernel.Ptrace.calls_made hits
            (hits + misses) (rate *. 100.0))
        [ D.Bastion_full; D.Bastion_fs Bastion.Monitor.Fs_full ])
    [ D.nginx (); D.sqlite (); D.vsftpd () ]

let run () =
  print_endline "== Ablation benches ==";
  sockaddr_ablation ();
  in_kernel_ablation ();
  shadow_ablation ();
  depth_sweep ();
  trap_cache_ablation ();
  print_newline ()
