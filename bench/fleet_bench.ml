(* The open-loop fleet bench (`bench/main.exe fleet`,
   `--json-fleet PATH`, `--fleet-smoke`).

   A heterogeneous fleet (mixed NGINX/SQLite/vsftpd small-scale
   tracees, skewed trap rates) is swept across offered-load points
   through the sharded monitor pool under each scheduler policy
   (static / least-loaded / steal); every point reports p50/p99/p99.9
   queue-wait and end-to-end latency in modelled cycles plus the
   per-shard utilisation spread and steal/migration counts, and each
   policy arm reports its detected saturation knee against the same
   ideal-aggregate capacity.  Everything derives from the modelled
   clock — regenerating the committed BENCH_fleet.json is
   byte-identical — and every point is checked against the serial
   reference simulation ([matches_serial], asserted in CI). *)

module F = Workloads.Fleet
module J = Report.Json

(* The committed configuration: 64 tracees / 4 shards / 6 points. *)
let default_tracees = 64
let default_shards = 4
let default_arrivals = 6000
let default_points = 6

(* The CI smoke configuration: same pipeline, a fraction of the work. *)
let smoke_tracees = 16
let smoke_shards = 4
let smoke_arrivals = 1200
let smoke_points = 5

let run_ablation ~smoke =
  if smoke then
    F.ablation ~tracees:smoke_tracees ~shards:smoke_shards
      ~arrivals:smoke_arrivals ~points:smoke_points ()
  else
    F.ablation ~tracees:default_tracees ~shards:default_shards
      ~arrivals:default_arrivals ~points:default_points ()

let run () =
  print_endline "== Fleet: open-loop tail latency vs offered load ==";
  print_endline "";
  let a = run_ablation ~smoke:false in
  print_string (F.render_ablation a);
  print_endline ""

let emit ?(smoke = false) path =
  let a = run_ablation ~smoke in
  J.to_file path (F.ablation_json a);
  Printf.printf
    "fleet ablation (%d tracees, %d shards, %d policies x %d points%s) written to %s\n"
    a.F.ab_tracees a.F.ab_shards
    (List.length a.F.ab_sweeps)
    (match a.F.ab_sweeps with [] -> 0 | s :: _ -> List.length s.F.sw_points)
    (if smoke then ", smoke" else "")
    path
