(* The open-loop fleet bench (`bench/main.exe fleet`,
   `--json-fleet PATH`, `--fleet-smoke`).

   A heterogeneous fleet (mixed NGINX/SQLite/vsftpd small-scale
   tracees, skewed trap rates) is swept across offered-load points
   through the sharded monitor pool; every point reports p50/p99/p99.9
   queue-wait and end-to-end latency in modelled cycles plus the
   bottleneck-shard utilisation, and the sweep reports the detected
   saturation knee.  Everything derives from the modelled clock —
   regenerating the committed BENCH_fleet.json is byte-identical —
   and every point is checked against the serial reference simulation
   ([matches_serial], asserted in CI). *)

module F = Workloads.Fleet
module J = Report.Json

(* The committed configuration: 64 tracees / 4 shards / 6 points. *)
let default_tracees = 64
let default_shards = 4
let default_arrivals = 6000
let default_points = 6

(* The CI smoke configuration: same pipeline, a fraction of the work. *)
let smoke_tracees = 16
let smoke_shards = 4
let smoke_arrivals = 1200
let smoke_points = 5

let run_sweep ~smoke =
  if smoke then
    F.sweep ~tracees:smoke_tracees ~shards:smoke_shards
      ~arrivals:smoke_arrivals ~points:smoke_points ()
  else
    F.sweep ~tracees:default_tracees ~shards:default_shards
      ~arrivals:default_arrivals ~points:default_points ()

let run () =
  print_endline "== Fleet: open-loop tail latency vs offered load ==";
  print_endline "";
  let s = run_sweep ~smoke:false in
  print_string (F.render_sweep s);
  print_endline ""

let emit ?(smoke = false) path =
  let s = run_sweep ~smoke in
  J.to_file path (F.sweep_json s);
  Printf.printf "fleet sweep (%d tracees, %d shards, %d points%s) written to %s\n"
    s.F.sw_tracees s.F.sw_shards
    (List.length s.F.sw_points)
    (if smoke then ", smoke" else "")
    path
