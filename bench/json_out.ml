(* Machine-readable bench output (`bench/main.exe --json PATH`): cycle
   totals and overhead % per configuration, with the trap-fast-path
   ablation (verdict cache on/off) inlined so a single emission records
   the before/after pair.  The format round-trips through
   [Report.Json]. *)

module D = Workloads.Drivers
module J = Report.Json

let record ~(app : D.app) ~(baseline : D.measurement) ?trap_cache ?recorder
    (m : D.measurement) : J.t =
  let tracer = m.D.m_process.Kernel.Process.tracer in
  let cache_fields =
    match m.D.m_monitor with
    | None -> []
    | Some monitor ->
      let hits, misses, rate = Bastion.Monitor.cache_stats monitor in
      [
        ("cache_hits", J.Num (float_of_int hits));
        ("cache_misses", J.Num (float_of_int misses));
        ("cache_hit_rate", J.Num rate);
      ]
  in
  let metrics_fields =
    match recorder with
    | None -> []
    | Some r -> [ ("metrics", Obs.Metrics.to_json (Obs.Recorder.metrics r)) ]
  in
  J.Obj
    ([
       ("app", J.Str app.D.app_name);
       ("defense", J.Str (D.defense_name m.D.m_defense));
       ( "trap_cache",
         match trap_cache with None -> J.Null | Some b -> J.Bool b );
       ("metric", J.Num m.D.m_metric);
       ("metric_name", J.Str app.D.metric_name);
       ("cycles", J.Num (float_of_int m.D.m_cycles));
       ( "overhead_pct",
         J.Num
           (D.overhead_pct ~baseline m ~higher_is_better:app.D.higher_is_better)
       );
       ("traps", J.Num (float_of_int m.D.m_traps));
       ("syscalls", J.Num (float_of_int m.D.m_syscalls));
       ("ptrace_calls", J.Num (float_of_int tracer.Kernel.Ptrace.calls_made));
       ("ptrace_words", J.Num (float_of_int tracer.Kernel.Ptrace.words_read));
     ]
    @ cache_fields @ metrics_fields)

(** Collect the trap-fast-path configurations for every app: the
    unprotected baseline, full BASTION and the Table 7 [Fs_full] row,
    the last two with the verdict cache both on and off. *)
let document () : J.t =
  let apps = [ D.nginx (); D.sqlite (); D.vsftpd () ] in
  let results =
    List.concat_map
      (fun (app : D.app) ->
        let baseline = D.run app D.Vanilla in
        record ~app ~baseline baseline
        :: List.concat_map
             (fun defense ->
               List.map
                 (fun trap_cache ->
                   (* A fresh per-run registry: the snapshot folded into
                      this record belongs to exactly this run. *)
                   let recorder = Obs.Recorder.create ~metrics:true () in
                   record ~app ~baseline ~trap_cache ~recorder
                     (D.run ~trap_cache ~recorder app defense))
                 [ true; false ])
             [ D.Bastion_full; D.Bastion_fs Bastion.Monitor.Fs_full ])
      apps
  in
  J.Obj
    [
      ("schema", J.Str "bastion-bench/1");
      ( "note",
        J.Str
          "trap fast path: coalesced ptrace snapshot reads are always on; \
           trap_cache toggles the CT+CF verdict cache (the on/off pair is \
           the ablation record)" );
      ("results", J.List results);
    ]

let emit path =
  let doc = document () in
  J.to_file path doc;
  Printf.printf "bench JSON written to %s\n" path
