(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation (Figure 3, Tables 3-7), the section-9.2
   statistics, the ablation benches, and Bechamel micro-benchmarks.

   Usage:  dune exec bench/main.exe [section ...] [--json PATH]
                                    [--json-static PATH]
                                    [--json-parallel PATH] [--parallel-smoke]
                                    [--json-prefilter PATH]
                                    [--json-fleet PATH] [--fleet-smoke]
   Sections: figure3 table3 table4 table5 table6 table7 stats ablations
             static prefilter micro throughput fleet all (default: all)

   --json PATH writes machine-readable cycle totals / overhead % per
   configuration (including the trap-cache on/off ablation pair) to
   PATH; --json-static PATH writes the constant-argument
   pre-resolution ablation; --json-parallel PATH writes the sharded
   multi-tracee monitor throughput bench (--parallel-smoke shrinks it
   to the CI configuration); --json-prefilter PATH writes the tiered
   trap-resolution (syscall-flow pre-filter) ablation; any given alone
   skips the printed sections; --json-fleet PATH writes the open-loop
   fleet tail-latency-vs-load sweep (--fleet-smoke shrinks it to the
   CI configuration). *)

let sections =
  [
    ("figure3", fun () -> Figure3.run ());
    ("table4", fun () -> Table4.run ());
    ("table5", fun () -> Table5.run ());
    ("table6", fun () -> Table6.run ());
    ("table7", fun () -> Table7.run ());
    ("stats", fun () -> Stats9.run ());
    ("ablations", fun () -> Ablations.run ());
    ("static", fun () -> Static_preres.run ());
    ("prefilter", fun () -> Prefilter.run ());
    ("micro", fun () -> Micro.run ());
    ("throughput", fun () -> Throughput.run ());
    ("fleet", fun () -> Fleet_bench.run ());
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  (* Split off a `--json PATH` pair before section selection. *)
  let rec extract_json flag acc = function
    | f :: path :: rest when String.equal f flag -> (Some path, List.rev_append acc rest)
    | f :: [] when String.equal f flag ->
      Printf.eprintf "%s requires a PATH argument\n" flag;
      exit 2
    | arg :: rest -> extract_json flag (arg :: acc) rest
    | [] -> (None, List.rev acc)
  in
  let json_path, args = extract_json "--json" [] args in
  let json_static_path, args = extract_json "--json-static" [] args in
  let json_parallel_path, args = extract_json "--json-parallel" [] args in
  let json_prefilter_path, args = extract_json "--json-prefilter" [] args in
  let json_fleet_path, args = extract_json "--json-fleet" [] args in
  let parallel_smoke = List.mem "--parallel-smoke" args in
  let fleet_smoke = List.mem "--fleet-smoke" args in
  let args =
    List.filter (fun a -> a <> "--parallel-smoke" && a <> "--fleet-smoke") args
  in
  let wanted =
    match args with
    | [] when json_path <> None || json_static_path <> None
              || json_parallel_path <> None || json_prefilter_path <> None
              || json_fleet_path <> None ->
      []  (* JSON-only invocation *)
    | [] | [ "all" ] -> List.map fst sections
    | args ->
      (* table3 is printed together with figure3. *)
      List.map (function "table3" -> "figure3" | s -> s) args
  in
  let wanted = List.sort_uniq compare wanted in
  let unknown = List.filter (fun w -> not (List.mem_assoc w sections)) wanted in
  if unknown <> [] then begin
    Printf.eprintf "unknown sections: %s\nknown: %s\n"
      (String.concat ", " unknown)
      (String.concat ", " (List.map fst sections));
    exit 2
  end;
  let requested = List.filter (fun (name, _) -> List.mem name wanted) sections in
  if requested <> [] then begin
    print_endline "BASTION reproduction benchmark harness";
    print_endline "======================================";
    Printf.printf "sections: %s\n\n" (String.concat ", " (List.map fst requested));
    List.iter (fun (_, f) -> f ()) requested
  end;
  (match json_path with None -> () | Some path -> Json_out.emit path);
  (match json_static_path with
  | None -> ()
  | Some path -> Static_preres.emit path);
  (match json_parallel_path with
  | None -> ()
  | Some path -> Throughput.emit ~smoke:parallel_smoke path);
  (match json_prefilter_path with
  | None -> ()
  | Some path -> Prefilter.emit path);
  match json_fleet_path with
  | None -> ()
  | Some path -> Fleet_bench.emit ~smoke:fleet_smoke path
