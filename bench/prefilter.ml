(* The tiered trap-resolution ablation
   (`bench/main.exe --json-prefilter PATH`): full BASTION per app with
   the syscall-flow pre-filter off, standalone (the SFIP baseline: the
   automaton is the only defense) and tiered (automaton in front of the
   unchanged full monitor).  The off-configuration numbers must be
   byte-identical to the trap-cache-on records of
   BENCH_trap_fastpath.json — the pre-filter is deployed strictly on
   top.  The headline is the tiered row: the majority of traps resolve
   at seccomp cost, with a strict total-cycle win over the trap-cache
   fast path alone.  The attack section records which tier of the
   tiered deployment catches each catalog attack. *)

module D = Workloads.Drivers
module J = Report.Json

let mode_name = function
  | None -> "off"
  | Some m -> Kernel.Seccomp.flow_mode_name m

let record ~(app : D.app) ~(baseline : D.measurement) ~mode (m : D.measurement)
    : J.t =
  let prefilter_fields =
    match (mode, m.D.m_monitor) with
    | None, _ | _, None -> []
    | Some _, Some monitor -> (
      match Bastion.Monitor.prefilter monitor with
      | None -> []
      | Some fa ->
        let resolved, fallthroughs, kills = Bastion.Monitor.prefilter_stats monitor in
        let eligible = resolved + fallthroughs in
        [
          ("prefilter_resolved", J.Num (float_of_int resolved));
          ("prefilter_fallthroughs", J.Num (float_of_int fallthroughs));
          ("prefilter_kills", J.Num (float_of_int kills));
          ( "prefilter_resolved_pct",
            J.Num
              (if eligible = 0 then 0.
               else 100. *. float_of_int resolved /. float_of_int eligible) );
          ("automaton_nodes", J.Num (float_of_int (Kernel.Seccomp.flow_node_count fa)));
          ("automaton_edges", J.Num (float_of_int (Kernel.Seccomp.flow_edge_count fa)));
        ])
  in
  J.Obj
    ([
       ("app", J.Str app.D.app_name);
       ("defense", J.Str (D.defense_name m.D.m_defense));
       ("prefilter", J.Str (mode_name mode));
       ("metric", J.Num m.D.m_metric);
       ("metric_name", J.Str app.D.metric_name);
       ("cycles", J.Num (float_of_int m.D.m_cycles));
       ( "overhead_pct",
         J.Num
           (D.overhead_pct ~baseline m ~higher_is_better:app.D.higher_is_better)
       );
       ("traps", J.Num (float_of_int m.D.m_traps));
       ("syscalls", J.Num (float_of_int m.D.m_syscalls));
     ]
    @ prefilter_fields)

let modes = [ None; Some Kernel.Seccomp.Flow_standalone; Some Kernel.Seccomp.Flow_tiered ]

let attack_tiers () =
  let rows = Attacks.Runner.evaluate_all () in
  let count tier =
    List.length (List.filter (fun r -> Attacks.Runner.catching_tier r = tier) rows)
  in
  let per_attack =
    List.map
      (fun (r : Attacks.Runner.row) ->
        ( r.r_attack.Attacks.Attack.a_id,
          J.Str (Attacks.Runner.tier_name (Attacks.Runner.catching_tier r)) ))
      rows
  in
  ( J.Obj
      [
        ("prefilter", J.Num (float_of_int (count Attacks.Runner.Tier_prefilter)));
        ("full", J.Num (float_of_int (count Attacks.Runner.Tier_full)));
        ("uncaught", J.Num (float_of_int (count Attacks.Runner.Tier_uncaught)));
        ("per_attack", J.Obj per_attack);
      ],
    rows )

let document () : J.t =
  let apps = [ D.nginx (); D.sqlite (); D.vsftpd () ] in
  let results =
    List.concat_map
      (fun (app : D.app) ->
        let baseline = D.run app D.Vanilla in
        List.map
          (fun mode ->
            record ~app ~baseline ~mode (D.run ?prefilter:mode app D.Bastion_full))
          modes)
      apps
  in
  let tiers, _rows = attack_tiers () in
  J.Obj
    [
      ("schema", J.Str "bastion-bench-prefilter/1");
      ( "note",
        J.Str
          "tiered trap-resolution ablation: full BASTION, trap cache on; \
           prefilter deploys the seccomp-stage syscall-flow automaton \
           standalone (SFIP baseline) or tiered in front of the unchanged \
           monitor (the off-records match the trap_cache:true records of \
           BENCH_trap_fastpath.json)" );
      ("results", J.List results);
      ("attack_tiers", tiers);
    ]

let emit path =
  let doc = document () in
  J.to_file path doc;
  Printf.printf "prefilter bench JSON written to %s\n" path

(* Printed section (`bench/main.exe prefilter`). *)
let run () =
  print_endline "Tiered trap resolution (syscall-flow pre-filter ablation)";
  print_endline "---------------------------------------------------------";
  let apps = [ D.nginx (); D.sqlite (); D.vsftpd () ] in
  List.iter
    (fun (app : D.app) ->
      let off = D.run app D.Bastion_full in
      let tiered = D.run ~prefilter:Kernel.Seccomp.Flow_tiered app D.Bastion_full in
      let alone = D.run ~prefilter:Kernel.Seccomp.Flow_standalone app D.Bastion_full in
      let resolved, fallthroughs, _ =
        match tiered.D.m_monitor with
        | Some m -> Bastion.Monitor.prefilter_stats m
        | None -> (0, 0, 0)
      in
      Printf.printf
        "  %-8s full=%d cycles  tiered=%d (resolved %d/%d traps at seccomp \
         cost, saved %d)  prefilter-only=%d\n"
        app.D.app_name off.D.m_cycles tiered.D.m_cycles resolved
        (resolved + fallthroughs)
        (off.D.m_cycles - tiered.D.m_cycles)
        alone.D.m_cycles)
    apps;
  print_newline ()
