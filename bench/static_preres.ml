(* The constant-argument pre-resolution ablation
   (`bench/main.exe --json-static PATH`): full BASTION per app, trap
   cache on, with pre-resolution off and on.  The off-configuration
   numbers must be byte-identical to the corresponding
   BENCH_trap_fastpath.json records — pre-resolution only ever REPLACES
   shadow probes, it never changes what a run executes.  The on-record
   adds the count of AI slots verified against the static constant. *)

module D = Workloads.Drivers
module J = Report.Json

let record ~(app : D.app) ~(baseline : D.measurement) ~pre_resolve
    (m : D.measurement) : J.t =
  let preres_fields =
    match m.D.m_monitor with
    | None -> []
    | Some monitor ->
      [
        ( "pre_resolved_hits",
          J.Num (float_of_int (Bastion.Monitor.pre_resolved_hits monitor)) );
      ]
  in
  J.Obj
    ([
       ("app", J.Str app.D.app_name);
       ("defense", J.Str (D.defense_name m.D.m_defense));
       ("pre_resolve", J.Bool pre_resolve);
       ("metric", J.Num m.D.m_metric);
       ("metric_name", J.Str app.D.metric_name);
       ("cycles", J.Num (float_of_int m.D.m_cycles));
       ( "overhead_pct",
         J.Num
           (D.overhead_pct ~baseline m ~higher_is_better:app.D.higher_is_better)
       );
       ("traps", J.Num (float_of_int m.D.m_traps));
       ("syscalls", J.Num (float_of_int m.D.m_syscalls));
     ]
    @ preres_fields)

let resolved_slots (app : D.app) =
  Bastion_analysis.Preresolve.resolved_slots
    (D.protected_of ~pre_resolve:true app ~fs:false)

let document () : J.t =
  let apps = [ D.nginx (); D.sqlite (); D.vsftpd () ] in
  let results =
    List.concat_map
      (fun (app : D.app) ->
        let baseline = D.run app D.Vanilla in
        List.map
          (fun pre_resolve ->
            record ~app ~baseline ~pre_resolve
              (D.run ~pre_resolve app D.Bastion_full))
          [ false; true ])
      apps
  in
  let slots =
    J.Obj
      (List.map
         (fun (app : D.app) ->
           (app.D.app_name, J.Num (float_of_int (resolved_slots app))))
         apps)
  in
  J.Obj
    [
      ("schema", J.Str "bastion-bench-static/1");
      ( "note",
        J.Str
          "constant-argument pre-resolution ablation: full BASTION, trap \
           cache on; pre_resolve toggles static verification of \
           provably-constant AI slots (the off-records match \
           BENCH_trap_fastpath.json)" );
      ("pre_resolved_slots", slots);
      ("results", J.List results);
    ]

let emit path =
  let doc = document () in
  J.to_file path doc;
  Printf.printf "static pre-resolution bench JSON written to %s\n" path

(* Printed section (`bench/main.exe static`). *)
let run () =
  print_endline "Constant-argument pre-resolution (static analysis ablation)";
  print_endline "-----------------------------------------------------------";
  let apps = [ D.nginx (); D.sqlite (); D.vsftpd () ] in
  List.iter
    (fun (app : D.app) ->
      let off = D.run app D.Bastion_full in
      let on = D.run ~pre_resolve:true app D.Bastion_full in
      let hits =
        match on.D.m_monitor with
        | Some m -> Bastion.Monitor.pre_resolved_hits m
        | None -> 0
      in
      Printf.printf
        "  %-8s slots=%d  cycles off=%d on=%d  saved=%d  static AI hits=%d\n"
        app.D.app_name (resolved_slots app) off.D.m_cycles on.D.m_cycles
        (off.D.m_cycles - on.D.m_cycles)
        hits)
    apps;
  print_newline ()
