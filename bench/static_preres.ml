(* The static pre-resolution ablation
   (`bench/main.exe --json-static PATH`): full BASTION per app, trap
   cache on, in three configurations —

     off          no static results at all
     rank-only    pre-resolution on but the taint cheap path disabled
                  (plain/ctx/dead records active, rank-untainted slots
                  still pay the full binding+shadow check)
     full         everything on, untainted slots verified by the
                  single-probe cheap path

   The off-configuration numbers must be byte-identical to the
   corresponding BENCH_trap_fastpath.json records — static results only
   ever REPLACE shadow probes, they never change what a run executes.
   The on-records add the per-mechanism hit counters and the slot
   breakdown (plain / per-context / dead-site) with taint-rank counts;
   a tainted slot is never pre-resolved, which the emitting code
   asserts. *)

module D = Workloads.Drivers
module P = Bastion_analysis.Preresolve
module J = Report.Json

let record ~(app : D.app) ~(baseline : D.measurement) ~config
    ~(pre_resolve : bool) (m : D.measurement) : J.t =
  let preres_fields =
    match m.D.m_monitor with
    | None -> []
    | Some monitor ->
      let ai_tainted, ai_untainted = Bastion.Monitor.ai_rank_stats monitor in
      [
        ( "pre_resolved_hits",
          J.Num (float_of_int (Bastion.Monitor.pre_resolved_hits monitor)) );
        ( "ctx_resolved_hits",
          J.Num (float_of_int (Bastion.Monitor.ctx_resolved_hits monitor)) );
        ("ai_tainted_checks", J.Num (float_of_int ai_tainted));
        ("ai_untainted_checks", J.Num (float_of_int ai_untainted));
      ]
  in
  J.Obj
    ([
       ("app", J.Str app.D.app_name);
       ("defense", J.Str (D.defense_name m.D.m_defense));
       ("config", J.Str config);
       ("pre_resolve", J.Bool pre_resolve);
       ("metric", J.Num m.D.m_metric);
       ("metric_name", J.Str app.D.metric_name);
       ("cycles", J.Num (float_of_int m.D.m_cycles));
       ( "overhead_pct",
         J.Num
           (D.overhead_pct ~baseline m ~higher_is_better:app.D.higher_is_better)
       );
       ("traps", J.Num (float_of_int m.D.m_traps));
       ("syscalls", J.Num (float_of_int m.D.m_syscalls));
     ]
    @ preres_fields)

let enriched (app : D.app) = D.protected_of ~pre_resolve:true app ~fs:false

(* The taint veto, recorded in the artifact (CI asserts it is zero): a
   slot ranked tainted must appear in no pre-resolution table. *)
let tainted_pre_resolved (p : Bastion.Api.protected) : int =
  Hashtbl.fold
    (fun id ranks acc ->
      acc
      + List.length
          (List.filter
             (fun ((pos, tainted) : int * bool) ->
               tainted
               && ((match Hashtbl.find_opt p.Bastion.Api.pre_resolved id with
                   | Some l -> List.mem_assoc pos l
                   | None -> false)
                  ||
                  match Hashtbl.find_opt p.Bastion.Api.pre_resolved_ctx id with
                  | Some l ->
                    List.exists
                      (fun ((q, _, _) : int * int * int64) -> q = pos)
                      l
                  | None -> false))
             ranks))
    p.Bastion.Api.slot_ranks 0

let slots_json (app : D.app) : J.t =
  let p = enriched app in
  let b = P.breakdown p in
  J.Obj
    [
      ("resolved", J.Num (float_of_int (P.resolved_slots p)));
      ("plain", J.Num (float_of_int b.P.bk_plain));
      ("per_context", J.Num (float_of_int b.P.bk_ctx));
      ("dead_site", J.Num (float_of_int b.P.bk_dead));
      ("ranked_tainted", J.Num (float_of_int b.P.bk_tainted));
      ("ranked_untainted", J.Num (float_of_int b.P.bk_untainted));
      ("tainted_pre_resolved", J.Num (float_of_int (tainted_pre_resolved p)));
    ]

let document () : J.t =
  let apps = [ D.nginx (); D.sqlite (); D.vsftpd () ] in
  let results =
    List.concat_map
      (fun (app : D.app) ->
        let baseline = D.run app D.Vanilla in
        [
          record ~app ~baseline ~config:"off" ~pre_resolve:false
            (D.run app D.Bastion_full);
          record ~app ~baseline ~config:"rank-only" ~pre_resolve:true
            (D.run ~pre_resolve:true ~taint_cheap_path:false app D.Bastion_full);
          record ~app ~baseline ~config:"full" ~pre_resolve:true
            (D.run ~pre_resolve:true app D.Bastion_full);
        ])
      apps
  in
  let slots =
    J.Obj (List.map (fun (app : D.app) -> (app.D.app_name, slots_json app)) apps)
  in
  J.Obj
    [
      ("schema", J.Str "bastion-bench-static/2");
      ( "note",
        J.Str
          "static pre-resolution ablation: full BASTION, trap cache on; \
           'off' has no static results (records match \
           BENCH_trap_fastpath.json), 'rank-only' adds plain/per-context/\
           dead-site pre-resolution with the taint cheap path disabled, \
           'full' also verifies rank-untainted slots through the \
           single-probe cheap path; tainted slots are never pre-resolved" );
      ("pre_resolved_slots", slots);
      ("results", J.List results);
    ]

let emit path =
  let doc = document () in
  J.to_file path doc;
  Printf.printf "static pre-resolution bench JSON written to %s\n" path

(* Printed section (`bench/main.exe static`). *)
let run () =
  print_endline "Static pre-resolution (SCCP + taint ablation)";
  print_endline "---------------------------------------------";
  let apps = [ D.nginx (); D.sqlite (); D.vsftpd () ] in
  List.iter
    (fun (app : D.app) ->
      let p = enriched app in
      let b = P.breakdown p in
      let off = D.run app D.Bastion_full in
      let on = D.run ~pre_resolve:true app D.Bastion_full in
      let hits, ctx_hits, untainted =
        match on.D.m_monitor with
        | Some m ->
          ( Bastion.Monitor.pre_resolved_hits m,
            Bastion.Monitor.ctx_resolved_hits m,
            snd (Bastion.Monitor.ai_rank_stats m) )
        | None -> (0, 0, 0)
      in
      Printf.printf
        "  %-8s slots=%d (plain=%d ctx=%d dead=%d) ranks t/u=%d/%d  cycles \
         off=%d on=%d saved=%d  hits=%d ctx=%d cheap=%d\n"
        app.D.app_name (P.resolved_slots p) b.P.bk_plain b.P.bk_ctx b.P.bk_dead
        b.P.bk_tainted b.P.bk_untainted off.D.m_cycles on.D.m_cycles
        (off.D.m_cycles - on.D.m_cycles)
        hits ctx_hits untainted)
    apps;
  print_newline ()
