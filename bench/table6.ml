(* Table 6: the 32-attack security case study.  Every attack runs
   undefended (it must succeed), under each context alone (the ✓/× of
   the paper's table) and under full BASTION (must be blocked). *)

let mark = function true -> "Y" | false -> "x"

let outcome_mark (o : Attacks.Runner.outcome) =
  match o with
  | Attacks.Runner.Blocked _ -> "Y"
  | Attacks.Runner.Succeeded -> "x"
  | Attacks.Runner.Inert -> "?"

let run () =
  print_endline "== Table 6: real-world and synthesized exploits blocked by Bastion ==";
  print_endline "   Y = context blocks the exploit, x = exploit bypasses the context";
  print_endline "   measured/(paper) per context; 'undef' must be x (exploit works)";
  let rows = Attacks.Runner.evaluate_all () in
  let table_rows =
    List.map
      (fun (r : Attacks.Runner.row) ->
        let a = r.r_attack in
        [
          a.a_category;
          a.a_id;
          a.a_reference;
          outcome_mark r.r_undefended;
          Printf.sprintf "%s(%s)" (outcome_mark r.r_ct) (mark a.a_expected.e_ct);
          Printf.sprintf "%s(%s)" (outcome_mark r.r_cf) (mark a.a_expected.e_cf);
          Printf.sprintf "%s(%s)" (outcome_mark r.r_ai) (mark a.a_expected.e_ai);
          outcome_mark r.r_full;
          Attacks.Runner.tier_name (Attacks.Runner.catching_tier r);
          (if Attacks.Runner.matches_expectation r then "agree" else "MISMATCH");
        ])
      rows
  in
  Report.Table.print
    ~header:
      [ "Category"; "Attack"; "Ref"; "undef"; "CT"; "CF"; "AI"; "Full"; "Tier";
        "vs paper" ]
    table_rows;
  let agreeing = List.filter Attacks.Runner.matches_expectation rows in
  Printf.printf "\n%d/%d attacks match the paper's Table 6 verdicts exactly.\n"
    (List.length agreeing) (List.length rows)
  ;
  let cheap =
    List.filter
      (fun r -> Attacks.Runner.catching_tier r = Attacks.Runner.Tier_prefilter)
      rows
  in
  Printf.printf
    "%d/%d are stopped by the seccomp-stage pre-filter alone; the rest need \
     the full monitor behind it.\n\n"
    (List.length cheap) (List.length rows)
