(* Multi-tracee monitor throughput (`bench/main.exe throughput`,
   `--json-parallel PATH`).

   N identical NGINX tracees run across a {!Bastion_mt.Monitor_pool} of
   1/2/4/8 worker domains, each tracee a full session driven wholly on
   its owning shard.  The headline is the *modelled* makespan traps/sec:
   modelled cycles are the repo's performance currency, and in the
   sharded deployment every shard owns a core, so the makespan is the
   heaviest shard's cycle sum.  Host wall clock is recorded too but is
   informational — CI containers pin us to however few cores they like.

   Every shard count must reproduce the serial reference byte for byte
   (per-tracee cycles, traps, syscalls, metric); the `matches_serial`
   field records that check so CI can assert it from the artifact. *)

module D = Workloads.Drivers
module J = Report.Json
module Pool = Bastion_mt.Monitor_pool
module Q = Bastion_mt.Trap_queue

let shard_counts = [ 1; 2; 4; 8 ]
let default_tracees = 8

(* The CI smoke configuration: same pipeline, a few hundred traps. *)
let smoke_params =
  { Workloads.Nginx_model.default with connections = 4; requests_per_conn = 20 }

let cps = Workloads.Drivers_config.cycles_per_second

let traps_per_sec ~traps ~cycles =
  float_of_int traps /. (float_of_int cycles /. cps)

(* The per-tracee fingerprint the sharded runs must reproduce. *)
let fingerprint (m : D.measurement) =
  (m.D.m_cycles, m.D.m_traps, m.D.m_syscalls, m.D.m_metric)

let shard_detail (sh : Pool.shard_stats) : J.t =
  J.Obj
    [
      ("shard", J.Num (float_of_int sh.Pool.sh_shard));
      ("tracees", J.Num (float_of_int sh.Pool.sh_tracees));
      ("items", J.Num (float_of_int sh.Pool.sh_items));
      ("queue_pushed", J.Num (float_of_int sh.Pool.sh_queue.Q.q_pushed));
      ("queue_popped", J.Num (float_of_int sh.Pool.sh_queue.Q.q_popped));
      ("queue_max_depth", J.Num (float_of_int sh.Pool.sh_queue.Q.q_max_depth));
      ( "queue_blocked_pushes",
        J.Num (float_of_int sh.Pool.sh_queue.Q.q_blocked_pushes) );
      ("queue_batches", J.Num (float_of_int sh.Pool.sh_queue.Q.q_batches));
    ]

let record ~(serial : D.measurement array) ~tracees app shards : J.t =
  let m = D.run_multi ~shards ~tracees app D.Bastion_full in
  let matches =
    Array.for_all2
      (fun a b -> fingerprint a = fingerprint b)
      serial m.D.mm_tracees
  in
  let total_traps = D.sum_traps m in
  J.Obj
    [
      ("shards", J.Num (float_of_int shards));
      ("tracees", J.Num (float_of_int tracees));
      ("total_traps", J.Num (float_of_int total_traps));
      ("serial_cycles", J.Num (float_of_int m.D.mm_serial_cycles));
      ("makespan_cycles", J.Num (float_of_int m.D.mm_makespan_cycles));
      ( "modelled_speedup",
        J.Num
          (float_of_int m.D.mm_serial_cycles
          /. float_of_int m.D.mm_makespan_cycles) );
      ( "modelled_traps_per_sec",
        J.Num (traps_per_sec ~traps:total_traps ~cycles:m.D.mm_makespan_cycles)
      );
      ("wall_seconds", J.Num m.D.mm_wall_seconds);
      ("matches_serial", J.Bool matches);
      ( "per_tracee_cycles",
        J.List
          (Array.to_list
             (Array.map
                (fun (t : D.measurement) -> J.Num (float_of_int t.D.m_cycles))
                m.D.mm_tracees)) );
      ("shard_detail", J.List (Array.to_list (Array.map shard_detail m.D.mm_pool.Pool.p_shards)));
    ]

let document ?(smoke = false) () : J.t =
  let app =
    if smoke then D.nginx ~params:smoke_params () else D.nginx ()
  in
  let tracees = default_tracees in
  let shard_counts = if smoke then [ 1; 2 ] else shard_counts in
  (* The serial reference: a plain loop of [D.run], no pool at all. *)
  let serial = Array.init tracees (fun _ -> D.run app D.Bastion_full) in
  let serial_cycles =
    Array.fold_left (fun acc (m : D.measurement) -> acc + m.D.m_cycles) 0 serial
  in
  let serial_traps =
    Array.fold_left (fun acc (m : D.measurement) -> acc + m.D.m_traps) 0 serial
  in
  let results = List.map (record ~serial ~tracees app) shard_counts in
  J.Obj
    [
      ("schema", J.Str "bastion-bench-parallel/1");
      ( "note",
        J.Str
          "sharded multi-tracee monitor throughput: N identical NGINX \
           tracees over a Monitor_pool of worker domains; \
           modelled_traps_per_sec divides total traps by the makespan \
           (heaviest shard's cycle sum at 3 GHz modelled clock); every \
           shard count must match the serial reference per-tracee \
           (matches_serial)" );
      ("app", J.Str "NGINX");
      ("smoke", J.Bool smoke);
      ("tracees", J.Num (float_of_int tracees));
      ("host_domains_recommended", J.Num (float_of_int (Domain.recommended_domain_count ())));
      ( "serial",
        J.Obj
          [
            ("cycles", J.Num (float_of_int serial_cycles));
            ("traps", J.Num (float_of_int serial_traps));
            ( "modelled_traps_per_sec",
              J.Num (traps_per_sec ~traps:serial_traps ~cycles:serial_cycles) );
          ] );
      ("results", J.List results);
    ]

let emit ?smoke path =
  let doc = document ?smoke () in
  J.to_file path doc;
  Printf.printf "parallel monitor bench JSON written to %s\n" path

(* Printed section (`bench/main.exe throughput`). *)
let run () =
  print_endline "Sharded multi-tracee monitor throughput";
  print_endline "---------------------------------------";
  let app = D.nginx () in
  let tracees = default_tracees in
  let serial = Array.init tracees (fun _ -> D.run app D.Bastion_full) in
  Printf.printf "%d NGINX tracees, full BASTION, modelled 3 GHz clock\n\n" tracees;
  Printf.printf "  %-8s %-16s %-16s %-10s %s\n" "shards" "makespan cycles"
    "traps/sec" "speedup" "matches serial";
  List.iter
    (fun shards ->
      let m = D.run_multi ~shards ~tracees app D.Bastion_full in
      let matches =
        Array.for_all2 (fun a b -> fingerprint a = fingerprint b) serial
          m.D.mm_tracees
      in
      Printf.printf "  %-8d %-16d %-16.0f %-10.2f %b\n" shards
        m.D.mm_makespan_cycles
        (traps_per_sec ~traps:(D.sum_traps m) ~cycles:m.D.mm_makespan_cycles)
        (float_of_int m.D.mm_serial_cycles /. float_of_int m.D.mm_makespan_cycles)
        matches)
    shard_counts;
  print_newline ();
  (* Scheduler ablation at a fixed shard count: identical tracees are
     the balanced best case for static hashing, so this is the floor of
     what stealing can buy — the open-loop fleet bench (heterogeneous
     rates and services) is where the gap opens. *)
  let shards = 4 in
  Printf.printf
    "Scheduler ablation (%d shards): modelled makespan per placement policy\n\n"
    shards;
  Printf.printf "  %-14s %-16s %-10s %-8s %-12s %s\n" "scheduler"
    "makespan cycles" "speedup" "steals" "migrations" "matches serial";
  List.iter
    (fun policy ->
      let m = D.run_multi ~scheduler:policy ~shards ~tracees app D.Bastion_full in
      let matches =
        Array.for_all2 (fun a b -> fingerprint a = fingerprint b) serial
          m.D.mm_tracees
      in
      Printf.printf "  %-14s %-16d %-10.2f %-8d %-12d %b\n"
        (Pool.policy_name policy) m.D.mm_makespan_cycles
        (float_of_int m.D.mm_serial_cycles /. float_of_int m.D.mm_makespan_cycles)
        m.D.mm_plan.Pool.jp_steals m.D.mm_plan.Pool.jp_migrations matches)
    Pool.all_policies;
  print_newline ()
