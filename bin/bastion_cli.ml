(* The bastion command-line interface.

     bastion analyze --app nginx [--fs] [--dump-ir]
         run the BASTION compiler pass over an application model and
         print its call-type classification and instrumentation stats

     bastion run --app nginx --defense full [--trace FILE] [--metrics]
         run a workload under a defense configuration and report the
         paper's metric plus overhead vs the unprotected baseline;
         --trace/--audit/--metrics arm the flight recorder (--audit
         writes a replayable versioned trace); the tiered syscall-flow
         pre-filter is on by default (--no-prefilter disables it)

     bastion replay TRACE... [--strict] [--json REPORT]
         re-verify recorded trap streams against the real monitor and
         exit non-zero on any divergence

     bastion replay TRACE... --against current|FILE [--diff REPORT]
         differential replay: judge the recorded streams through a
         monitor built from changed metadata (the in-tree compile
         pass, or an edited metadata file) and report what moved —
         verdict flips, context moves, tier movements, cycle deltas;
         exits non-zero on any verdict flip or context move

     bastion lint --app nginx [--fs] [--pre-resolve]
         run the metadata-soundness linter over an application model;
         exits non-zero if any error-severity diagnostic fires
         (warnings are printed but never fail the run)

     bastion lint --metadata FILE
         validate a metadata file's v3 section table

     bastion trace-summary FILE
         summarise a Chrome-trace file written by `bastion run --trace`

     bastion fleet [--tracees K] [--shards N] [--points P] [--json FILE]
         sweep offered load over a heterogeneous fleet through the
         sharded monitor pool and report queue-wait / end-to-end
         latency tails plus the saturation knee

     bastion fleet-summary FILE
         summarise a fleet sweep JSON (BENCH_fleet.json) or a stats
         JSONL stream written by `--stats`

     bastion attack --id coop-chrome [--config ai]
     bastion attack --all
         run attacks from the Table 6 catalog under chosen contexts

     bastion list
         list applications, defenses and attacks *)

open Cmdliner

let setup_logs verbose =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some (if verbose then Logs.Debug else Logs.Warning))

let verbose_arg =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Log every monitor trap decision.")

(* --- shared argument parsers ----------------------------------------- *)

let app_names = [ "nginx"; "sqlite"; "vsftpd" ]

let prog_of_name = function
  | "nginx" -> Workloads.Nginx_model.build Workloads.Nginx_model.default
  | "sqlite" -> Workloads.Sqlite_model.build Workloads.Sqlite_model.default
  | "vsftpd" -> Workloads.Vsftpd_model.build Workloads.Vsftpd_model.default
  | s -> invalid_arg ("unknown app: " ^ s)

let app_arg =
  Arg.(
    required
    & opt (some (enum (List.map (fun a -> (a, a)) app_names))) None
    & info [ "app" ] ~docv:"APP" ~doc:"Application model (nginx, sqlite, vsftpd).")

let defenses =
  [
    ("vanilla", Workloads.Drivers.Vanilla);
    ("cfi", Workloads.Drivers.Llvm_cfi);
    ("cet", Workloads.Drivers.Cet_only);
    ("ct", Workloads.Drivers.Bastion_ct);
    ("ct-cf", Workloads.Drivers.Bastion_ct_cf);
    ("full", Workloads.Drivers.Bastion_full);
    ("fs-hook", Workloads.Drivers.Bastion_fs Bastion.Monitor.Fs_hook_only);
    ("fs-fetch", Workloads.Drivers.Bastion_fs Bastion.Monitor.Fs_fetch_only);
    ("fs-full", Workloads.Drivers.Bastion_fs Bastion.Monitor.Fs_full);
  ]

(* --- analyze ---------------------------------------------------------- *)

let analyze verbose app fs dump_ir emit_metadata =
  setup_logs verbose;
  let prog = prog_of_name app in
  if dump_ir then print_endline (Sil.Pp.prog_to_string prog);
  let protected_prog = Bastion.Api.protect ~protect_filesystem:fs prog in
  (match emit_metadata with
  | Some file ->
    Bastion.Metadata_io.save protected_prog ~file;
    Printf.printf "metadata written to %s\n" file
  | None -> ());
  let s = Bastion.Api.stats protected_prog in
  Printf.printf "BASTION compiler pass over %s%s\n" app
    (if fs then " (+ filesystem syscalls)" else "");
  Printf.printf "  application callsites     : %d (%d indirect)\n" s.total_callsites
    s.indirect_callsites;
  Printf.printf "  sensitive callsites       : %d\n" s.sensitive_callsites;
  Printf.printf "  sensitive called indirect : %d\n" s.sensitive_indirect;
  Printf.printf "  ctx_write_mem sites       : %d\n" s.write_mem_sites;
  Printf.printf "  ctx_bind_mem sites        : %d\n" s.bind_mem_sites;
  Printf.printf "  ctx_bind_const sites      : %d\n" s.bind_const_sites;
  print_endline "\nCall-type classification of syscalls used by the program:";
  List.iter
    (fun (name, nr, _) ->
      let ct = Bastion.Calltype.call_type protected_prog.calltype nr in
      if ct.directly || ct.indirectly then
        Printf.printf "  %-18s %s%s\n" name
          (if ct.directly then "direct " else "")
          (if ct.indirectly then "indirect" else ""))
    Kernel.Syscalls.table;
  let diags = Bastion_analysis.Lint.check protected_prog in
  let errs = Bastion_analysis.Lint.errors diags in
  let enriched = Bastion_analysis.Preresolve.enrich protected_prog in
  let bk = Bastion_analysis.Preresolve.breakdown enriched in
  print_endline "\nStatic soundness:";
  Printf.printf "  linter errors / warnings  : %d / %d\n" (List.length errs)
    (List.length diags - List.length errs);
  Printf.printf
    "  pre-resolvable AI slots   : %d (plain %d, per-context %d, dead-site %d)\n"
    (Bastion_analysis.Preresolve.resolved_slots enriched)
    bk.Bastion_analysis.Preresolve.bk_plain bk.Bastion_analysis.Preresolve.bk_ctx
    bk.Bastion_analysis.Preresolve.bk_dead;
  Printf.printf "  remaining slots by taint  : %d tainted, %d untainted\n"
    bk.Bastion_analysis.Preresolve.bk_tainted
    bk.Bastion_analysis.Preresolve.bk_untainted;
  `Ok ()

let analyze_cmd =
  let fs =
    Arg.(value & flag & info [ "fs" ] ~doc:"Extend the sensitive set with filesystem syscalls (§11.2).")
  in
  let dump = Arg.(value & flag & info [ "dump-ir" ] ~doc:"Print the program IR first.") in
  let emit =
    Arg.(
      value
      & opt (some string) None
      & info [ "emit-metadata" ] ~docv:"FILE"
          ~doc:"Write the compiler-generated context metadata to FILE (the \
                file the monitor would load at startup).")
  in
  Cmd.v (Cmd.info "analyze" ~doc:"Run the BASTION compiler pass over an application model")
    Term.(ret (const analyze $ verbose_arg $ app_arg $ fs $ dump $ emit))

(* --- lint ------------------------------------------------------------- *)

let print_diags diags =
  List.iter
    (fun (d : Bastion_analysis.Lint.diag) ->
      Format.printf "%s: %a@."
        (Bastion_analysis.Lint.severity_name d.d_sev)
        Bastion_analysis.Lint.pp_diag d)
    diags

let lint_metadata file =
  match
    let ic = open_in file in
    let text = really_input_string ic (in_channel_length ic) in
    close_in ic;
    text
  with
  | exception Sys_error e -> `Error (false, e)
  | text -> (
    let diags = Bastion_analysis.Lint.check_metadata_text text in
    print_diags diags;
    match Bastion_analysis.Lint.errors diags with
    | [] ->
      Printf.printf "%s: section table valid, 0 error(s)\n" file;
      `Ok ()
    | errs ->
      `Error
        ( false,
          Printf.sprintf "%d section-table error%s in %s" (List.length errs)
            (if List.length errs = 1 then "" else "s")
            file ))

let lint verbose app fs pre_resolve metadata =
  setup_logs verbose;
  match metadata with
  | Some file -> lint_metadata file
  | None ->
  let prog = prog_of_name app in
  let protected_prog = Bastion.Api.protect ~protect_filesystem:fs prog in
  let protected_prog =
    if pre_resolve then Bastion_analysis.Preresolve.enrich protected_prog
    else protected_prog
  in
  let diags = Bastion_analysis.Lint.check protected_prog in
  print_diags diags;
  match Bastion_analysis.Lint.errors diags with
  | [] ->
    Printf.printf "%s%s: metadata sound, %d error(s), %d warning(s)\n" app
      (if fs then " (+ filesystem syscalls)" else "")
      0 (List.length diags);
    `Ok ()
  | errs ->
    `Error
      ( false,
        Printf.sprintf "%d metadata-soundness error%s for %s" (List.length errs)
          (if List.length errs = 1 then "" else "s")
          app )

let lint_cmd =
  let fs =
    Arg.(
      value & flag
      & info [ "fs" ]
          ~doc:"Lint the filesystem-extended protection (§11.2).")
  in
  let pre_resolve =
    Arg.(
      value & flag
      & info [ "pre-resolve" ]
          ~doc:"Run constant-argument pre-resolution first and lint the \
                stored results too.")
  in
  let metadata =
    Arg.(
      value
      & opt (some string) None
      & info [ "metadata" ] ~docv:"FILE"
          ~doc:"Instead of linting an application model, validate FILE's v3 \
                section table: required/optional flags on known sections, no \
                duplicates, no missing required section.")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:"Cross-check the emitted metadata against the program (exit \
             non-zero on any error-severity diagnostic; warnings only print)")
    Term.(ret (const lint $ verbose_arg $ app_arg $ fs $ pre_resolve $ metadata))

(* --- run -------------------------------------------------------------- *)

(* The --scheduler option, shared by `run` and `fleet`. *)
let scheduler_conv =
  let parse s =
    match Bastion_mt.Monitor_pool.policy_of_string s with
    | Some p -> Ok p
    | None ->
      Error
        (`Msg
          (Printf.sprintf "unknown scheduler %S (static|least-loaded|steal)" s))
  in
  let print ppf p =
    Format.pp_print_string ppf (Bastion_mt.Monitor_pool.policy_name p)
  in
  Cmdliner.Arg.conv (parse, print)

(* Sharded mode: N tracees over a monitor pool of worker domains.  Each
   tracee is a full session run on its owning shard; the report is the
   modelled makespan (heaviest shard) against the serial cycle sum.
   The per-shard backpressure summary reads the registry's sampled
   probes (the same names `--metrics` prints), not pool-private
   counters; [--trace] merges per-shard recorders into one Perfetto
   document with a lane per shard, and [--stats-interval] derives a
   time-series JSONL from the recorded trap stream. *)
let run_workload_sharded a defense ~trap_cache ~pre_resolve ~prefilter
    ~scheduler ~shards ~tracees ~trace ~stats ~stats_interval metrics =
  let shard_recorders =
    if trace <> None || stats_interval <> None then
      Some (Array.init shards (fun _ -> Obs.Recorder.create ~tracing:true ()))
    else None
  in
  let m =
    Workloads.Drivers.run_multi ~trap_cache ~pre_resolve ?prefilter
      ~scheduler ?shard_recorders ~shards ~tracees a defense
  in
  let t0 = m.mm_tracees.(0) in
  Printf.printf "%s under %s: %d tracees over %d shard%s (%s scheduler)\n"
    a.Workloads.Drivers.app_name
    (Workloads.Drivers.defense_name defense) tracees shards
    (if shards = 1 then "" else "s")
    (Bastion_mt.Monitor_pool.policy_name scheduler);
  Printf.printf "  per tracee       : %.2f %s, %d traps, %d cycles\n" t0.m_metric
    a.Workloads.Drivers.metric_name t0.m_traps t0.m_cycles;
  Printf.printf "  total traps      : %d\n" (Workloads.Drivers.sum_traps m);
  Printf.printf "  serial cycles    : %d\n" m.mm_serial_cycles;
  Printf.printf "  makespan cycles  : %d (modelled speedup %.2fx)\n" m.mm_makespan_cycles
    (float_of_int m.mm_serial_cycles /. float_of_int m.mm_makespan_cycles);
  Printf.printf "  host wall clock  : %.3f s\n" m.mm_wall_seconds;
  let reg = Obs.Metrics.create () in
  Bastion_mt.Monitor_pool.mirror_stats m.mm_pool reg;
  let probes = Obs.Metrics.counter_values reg in
  let probe name = Option.value ~default:0.0 (List.assoc_opt name probes) in
  for shard = 0 to shards - 1 do
    let p suffix = probe (Printf.sprintf "mt.shard%d.%s" shard suffix) in
    Printf.printf
      "  shard %d          : %.0f tracees, queue max depth %.0f / %.0f, %.0f \
       blocked pushes, mean batch %.1f\n"
      shard (p "tracees") (p "queue.max_depth") (p "queue.capacity")
      (p "queue.blocked_pushes") (p "queue.mean_batch")
  done;
  Printf.printf
    "  balance          : util spread %.2f (max/mean shard items), %.0f \
     steals, %.0f migrations\n"
    (probe "mt.util_spread") (probe "mt.steals") (probe "mt.migrations");
  if metrics then print_string (Obs.Metrics.summary_table reg);
  (match (shard_recorders, trace) with
  | Some rs, Some path ->
    Obs.Chrome.write_pool (Array.to_list rs) path;
    Printf.printf "  trace     : %s (%d events over %d shard lanes)\n" path
      (Array.fold_left
         (fun acc r -> acc + List.length (Obs.Recorder.items r))
         0 rs)
      shards
  | _ -> ());
  (match (shard_recorders, stats_interval) with
  | Some rs, Some interval ->
    let events =
      List.concat_map Obs.Recorder.trap_events (Array.to_list rs)
    in
    let rows = Obs.Timeseries.of_events ~interval events in
    (match stats with
    | Some path ->
      Obs.Timeseries.write_jsonl
        ~meta:
          [
            ("app", Report.Json.Str a.Workloads.Drivers.app_name);
            ("shards", Report.Json.Num (float_of_int shards));
            ("interval_cycles", Report.Json.Num (float_of_int interval));
          ]
        rows path;
      Printf.printf "  stats     : %s (%d rows)\n" path (List.length rows)
    | None -> print_string (Obs.Timeseries.render rows))
  | _ -> ());
  `Ok ()

let run_workload verbose app scale defense no_trap_cache pre_resolve
    no_prefilter trace metrics audit scheduler shards tracees stats
    stats_interval =
  setup_logs verbose;
  let trap_cache = not no_trap_cache in
  (* The tiered pre-filter is the deployment default: cheap seccomp-stage
     resolution in front of the unchanged monitor.  [--no-prefilter]
     recovers the pure trap-everything configuration. *)
  let prefilter =
    if no_prefilter then None else Some Kernel.Seccomp.Flow_tiered
  in
  match Bastion_replay.Engine.app_of ~name:app ~scale with
  | Error msg -> `Error (false, msg)
  | Ok a ->
  if shards < 1 then `Error (false, "--shards must be >= 1")
  else if tracees < 0 then `Error (false, "--tracees must be >= 1")
  else if stats <> None && stats_interval = None then
    `Error (false, "--stats FILE needs --stats-interval CYCLES")
  else if (match stats_interval with Some iv -> iv <= 0 | None -> false) then
    `Error (false, "--stats-interval must be a positive cycle count")
  else if
    scheduler <> Bastion_mt.Monitor_pool.Static
    && (trace <> None || stats_interval <> None)
  then
    (* Shard recorders stamp lanes assuming the static pin; a stealing
       pool would race them, so the driver rejects the combination. *)
    `Error
      (false, "--trace/--stats-interval require the static --scheduler")
  else if shards > 1 || tracees > 1 then
    let tracees = if tracees = 0 then 2 * shards else tracees in
    run_workload_sharded a defense ~trap_cache ~pre_resolve ~prefilter
      ~scheduler ~shards ~tracees ~trace ~stats ~stats_interval metrics
  else begin
  (* The recorder exists only when some sink wants it: the trace or
     audit file needs the ring, --metrics the histograms, -v the live
     callback, --stats-interval the event stream.  Otherwise runs stay
     on the counter-bump path. *)
  let tracing = trace <> None || audit <> None || stats_interval <> None in
  let recorder =
    if tracing || metrics || verbose then
      (* An audit sink must hold every trap of the run: a dropped-oldest
         ring would break the trace's seq contiguity and the replay
         reader would reject the file. *)
      let ring_capacity =
        if audit <> None then 1 lsl 21 else Obs.Recorder.default_ring_capacity
      in
      Some (Obs.Recorder.create ~tracing ~metrics ~ring_capacity ())
    else None
  in
  (match recorder with
  | Some r when verbose ->
    Obs.Recorder.set_on_event r
      (Some
         (fun ev ->
           if Obs.Event.denied ev then Logs.warn (fun m -> m "%s" (Obs.Event.to_string ev))
           else Logs.debug (fun m -> m "%s" (Obs.Event.to_string ev))))
  | _ -> ());
  let baseline = Workloads.Drivers.run a Workloads.Drivers.Vanilla in
  let m =
    Workloads.Drivers.run ~trap_cache ~pre_resolve ?prefilter ?recorder a defense
  in
  Printf.printf "%s under %s%s%s%s\n" a.app_name
    (Workloads.Drivers.defense_name defense)
    (if no_trap_cache then " (trap verdict cache off)" else "")
    (if pre_resolve then " (AI slots statically pre-resolved)" else "")
    (if no_prefilter then " (syscall-flow pre-filter off)" else "");
  Printf.printf "  metric    : %.2f %s (baseline %.2f)\n" m.m_metric a.metric_name
    baseline.m_metric;
  Printf.printf "  overhead  : %.2f%%\n"
    (Workloads.Drivers.overhead_pct ~baseline m ~higher_is_better:a.higher_is_better);
  Printf.printf "  traps     : %d, syscalls: %d, cycles: %d\n" m.m_traps m.m_syscalls
    m.m_cycles;
  let tracer = m.m_process.Kernel.Process.tracer in
  Printf.printf "  ptrace    : %d calls, %d words fetched\n"
    tracer.Kernel.Ptrace.calls_made tracer.Kernel.Ptrace.words_read;
  (match m.m_monitor with
  | None -> ()
  | Some monitor ->
    let hits, misses, rate = Bastion.Monitor.cache_stats monitor in
    Printf.printf "  trap cache: %d hits, %d misses (%.1f%% hit rate)\n" hits misses
      (rate *. 100.0);
    if pre_resolve then begin
      let ai_tainted, ai_untainted = Bastion.Monitor.ai_rank_stats monitor in
      Printf.printf
        "  AI slots verified statically: %d plain, %d per-context\n"
        (Bastion.Monitor.pre_resolved_hits monitor)
        (Bastion.Monitor.ctx_resolved_hits monitor);
      Printf.printf
        "  ranked slot checks: %d untainted (cheap path), %d tainted (full \
         path)\n"
        ai_untainted ai_tainted
    end;
    (* Per-tier resolution: how much of the trap stream the cheap
       seccomp-stage tier absorbed before the full monitor saw it. *)
    match Bastion.Monitor.prefilter monitor with
    | None -> ()
    | Some _ ->
      let resolved, fallthroughs, kills = Bastion.Monitor.prefilter_stats monitor in
      Printf.printf
        "  prefilter : %d resolved at seccomp tier, %d fell through to the \
         full monitor%s\n"
        resolved fallthroughs
        (if kills > 0 then Printf.sprintf ", %d killed" kills else ""));
  (match recorder with
  | None -> ()
  | Some r ->
    (match trace with
    | Some path ->
      Obs.Chrome.write r path;
      Printf.printf "  trace     : %s (%d events%s)\n" path
        (List.length (Obs.Recorder.items r))
        (let d = Obs.Recorder.events_dropped r in
         if d > 0 then Printf.sprintf ", %d dropped" d else "")
    | None -> ());
    (match audit with
    | Some path ->
      let header =
        {
          Bastion_replay.Trace.h_version = Bastion_replay.Trace.current_version;
          h_kind =
            Bastion_replay.Trace.Run
              { app; defense = Bastion_replay.Engine.defense_key defense; scale };
          h_trap_cache = trap_cache;
          h_pre_resolve = pre_resolve;
          h_prefilter = prefilter;
          h_fingerprint =
            (match m.m_monitor with
            | Some mon -> Bastion.Metadata.fingerprint mon.Bastion.Monitor.meta
            | None -> "-");
          h_against = None;
          h_traps = List.length (Obs.Recorder.trap_events r);
          h_cycles = m.m_cycles;
        }
      in
      let dropped = Obs.Recorder.events_dropped r in
      if dropped > 0 then
        Logs.warn (fun f ->
            f "audit ring dropped %d events; %s will not replay" dropped path);
      Obs.Recorder.write_jsonl
        ~header:(Bastion_replay.Trace.header_to_json header) r path;
      Printf.printf "  audit log : %s (%d traps)\n" path header.h_traps
    | None -> ());
    (match stats_interval with
    | Some interval ->
      let rows =
        Obs.Timeseries.of_events ~interval (Obs.Recorder.trap_events r)
      in
      (match stats with
      | Some path ->
        Obs.Timeseries.write_jsonl
          ~meta:
            [
              ("app", Report.Json.Str app);
              ("defense", Report.Json.Str (Workloads.Drivers.defense_name defense));
              ("interval_cycles", Report.Json.Num (float_of_int interval));
            ]
          rows path;
        Printf.printf "  stats     : %s (%d rows)\n" path (List.length rows)
      | None -> print_string (Obs.Timeseries.render rows))
    | None -> ());
    if metrics then print_string (Obs.Recorder.summary_table r));
  `Ok ()
  end

let scale_arg =
  Arg.(
    value
    & opt (enum (List.map (fun s -> (s, s)) Bastion_replay.Engine.scales)) "default"
    & info [ "scale" ] ~docv:"SCALE"
        ~doc:"Workload scale: default (paper-shaped) or small (a few hundred \
              traps; the golden-trace corpus scale).")

let run_cmd =
  let defense =
    Arg.(
      value
      & opt (enum defenses) Workloads.Drivers.Bastion_full
      & info [ "defense" ] ~docv:"DEFENSE"
          ~doc:"One of: vanilla, cfi, cet, ct, ct-cf, full, fs-hook, fs-fetch, fs-full.")
  in
  let no_trap_cache =
    Arg.(
      value & flag
      & info [ "no-trap-cache" ]
          ~doc:"Disable the monitor's CT+CF verdict cache (the trap fast \
                path); every trap then re-runs the full context checks.")
  in
  let pre_resolve =
    Arg.(
      value & flag
      & info [ "pre-resolve" ]
          ~doc:"Pre-resolve provably-constant syscall arguments statically; \
                the monitor verifies those AI slots against the stored \
                constant without probing the shadow.")
  in
  let no_prefilter =
    Arg.(
      value & flag
      & info [ "no-prefilter" ]
          ~doc:"Disable the tiered syscall-flow pre-filter (on by default \
                for monitored defenses): every sensitive syscall then traps \
                to the full monitor instead of resolving expected flows at \
                seccomp cost.")
  in
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:"Record every trap and write a Chrome-trace JSON to FILE \
                (open in Perfetto or chrome://tracing).")
  in
  let metrics =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:"Collect latency histograms and print the metrics registry \
                after the run.")
  in
  let audit =
    Arg.(
      value
      & opt (some string) None
      & info [ "audit" ] ~docv:"FILE"
          ~doc:"Write a JSONL audit log (one structured event per line) to FILE.")
  in
  let shards =
    Arg.(
      value & opt int 1
      & info [ "shards" ] ~docv:"N"
          ~doc:"Shard the monitor over N worker domains; each tracee runs \
                wholly on its owning shard (same tracee, same shard).")
  in
  let tracees =
    Arg.(
      value & opt int 0
      & info [ "tracees" ] ~docv:"K"
          ~doc:"Number of concurrent tracees in sharded mode (default: 2x \
                the shard count).")
  in
  let stats =
    Arg.(
      value
      & opt (some string) None
      & info [ "stats" ] ~docv:"FILE"
          ~doc:"Write the --stats-interval time series as JSONL to FILE \
                (readable offline with `bastion fleet-summary FILE`).")
  in
  let stats_interval =
    Arg.(
      value
      & opt (some int) None
      & info [ "stats-interval" ] ~docv:"CYCLES"
          ~doc:"Sample a per-shard time-series row every CYCLES modelled \
                cycles (trap count, denials, monitor cycles); printed as a \
                table, or written as JSONL with --stats FILE.")
  in
  let scheduler =
    Arg.(
      value
      & opt scheduler_conv Bastion_mt.Monitor_pool.Static
      & info [ "scheduler" ] ~docv:"POLICY"
          ~doc:"Placement policy for sharded mode: $(b,static) (pin tracees \
                to their home shard), $(b,least-loaded), or $(b,steal) (idle \
                shards steal whole-tracee claims).  Verdicts and modelled \
                cycles are identical under every policy.")
  in
  Cmd.v (Cmd.info "run" ~doc:"Run a workload under a defense configuration")
    Term.(
      ret
        (const run_workload $ verbose_arg $ app_arg $ scale_arg $ defense
       $ no_trap_cache $ pre_resolve $ no_prefilter $ trace $ metrics $ audit
       $ scheduler $ shards $ tracees $ stats $ stats_interval))

(* --- trace-summary ----------------------------------------------------- *)

let trace_summary file =
  match Report.Json.of_file file with
  | exception Sys_error e -> `Error (false, e)
  | exception Report.Json.Parse_error e ->
    `Error (false, Printf.sprintf "%s: %s" file e)
  | doc ->
    print_string (Obs.Chrome.render_summary (Obs.Chrome.summarize doc));
    `Ok ()

let trace_summary_cmd =
  let file =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE" ~doc:"Chrome-trace JSON written by `bastion run --trace`.")
  in
  Cmd.v
    (Cmd.info "trace-summary"
       ~doc:"Summarise a Chrome-trace file written by `bastion run --trace`")
    Term.(ret (const trace_summary $ file))

(* --- fleet ------------------------------------------------------------ *)

module Fleet = Workloads.Fleet

let run_fleet verbose tracees shards arrivals points scheduler json stats
    stats_interval =
  setup_logs verbose;
  if tracees < 1 then `Error (false, "--tracees must be >= 1")
  else if shards < 1 then `Error (false, "--shards must be >= 1")
  else if arrivals < 1 then `Error (false, "--arrivals must be >= 1")
  else if points < 2 then `Error (false, "--points must be >= 2")
  else if stats <> None && stats_interval = None then
    `Error (false, "--stats FILE needs --stats-interval CYCLES")
  else if (match stats_interval with Some iv -> iv <= 0 | None -> false) then
    `Error (false, "--stats-interval must be a positive cycle count")
  else begin
    (* --scheduler all sweeps every policy over one fleet; a single
       policy keeps the old one-sweep shape.  Either way the JSON is a
       schema-v2 document (`policies` array). *)
    let a =
      match scheduler with
      | `All ->
        Fleet.ablation ?stats_interval ~tracees ~shards ~arrivals ~points ()
      | `One policy ->
        let s =
          Fleet.sweep ?stats_interval ~policy ~tracees ~shards ~arrivals
            ~points ()
        in
        {
          Fleet.ab_tracees = tracees;
          ab_shards = shards;
          ab_arrivals = arrivals;
          ab_capacity = s.Fleet.sw_capacity;
          ab_capacity_bottleneck = s.Fleet.sw_capacity_bottleneck;
          ab_sweeps = [ s ];
        }
    in
    (match a.Fleet.ab_sweeps with
    | [ s ] -> print_string (Fleet.render_sweep s)
    | _ -> print_string (Fleet.render_ablation a));
    (match json with
    | Some path ->
      Report.Json.to_file path (Fleet.ablation_json a);
      Printf.printf "json  : %s\n" path
    | None -> ());
    (match stats_interval with
    | Some interval -> (
      (* The time series of the last sweep's highest-load point: the
         one whose queue-depth excursions the sweep table can't show. *)
      let s = List.nth a.Fleet.ab_sweeps (List.length a.Fleet.ab_sweeps - 1) in
      let last = List.nth s.Fleet.sw_points (List.length s.Fleet.sw_points - 1) in
      let rows = last.Fleet.pt_result.Fleet.rr_stats in
      match stats with
      | Some path ->
        Obs.Timeseries.write_jsonl
          ~meta:
            [
              ("tracees", Report.Json.Num (float_of_int tracees));
              ("shards", Report.Json.Num (float_of_int shards));
              ("load_fraction", Report.Json.Num last.Fleet.pt_fraction);
              ("interval_cycles", Report.Json.Num (float_of_int interval));
            ]
          rows path;
        Printf.printf "stats : %s (%d rows, highest-load point)\n" path
          (List.length rows)
      | None -> print_string (Obs.Timeseries.render rows))
    | None -> ());
    `Ok ()
  end

let fleet_cmd =
  let tracees =
    Arg.(
      value & opt int 64
      & info [ "tracees" ] ~docv:"K"
          ~doc:"Fleet size: K heterogeneous tracees (mixed nginx/sqlite/\
                vsftpd, skewed trap rates).")
  in
  let shards =
    Arg.(
      value & opt int 4
      & info [ "shards" ] ~docv:"N" ~doc:"Monitor pool worker domains.")
  in
  let arrivals =
    Arg.(
      value & opt int 6000
      & info [ "arrivals" ] ~docv:"A"
          ~doc:"Traps offered per load point (the open-loop arrival count).")
  in
  let points =
    Arg.(
      value & opt int 6
      & info [ "points" ] ~docv:"P"
          ~doc:"Number of offered-load points swept from 0.2x to 1.15x of \
                the modelled capacity.")
  in
  let scheduler =
    let sched_conv =
      let parse s =
        if String.equal s "all" then Ok `All
        else
          match Bastion_mt.Monitor_pool.policy_of_string s with
          | Some p -> Ok (`One p)
          | None ->
            Error
              (`Msg
                (Printf.sprintf
                   "unknown scheduler %S (static|least-loaded|steal|all)" s))
      in
      let print ppf = function
        | `All -> Format.pp_print_string ppf "all"
        | `One p ->
          Format.pp_print_string ppf (Bastion_mt.Monitor_pool.policy_name p)
      in
      Arg.conv (parse, print)
    in
    Arg.(
      value
      & opt sched_conv (`One Bastion_mt.Monitor_pool.Static)
      & info [ "scheduler" ] ~docv:"POLICY"
          ~doc:"Placement policy for the sweep: $(b,static), \
                $(b,least-loaded), $(b,steal), or $(b,all) for the full \
                ablation (every policy over the same fleet and capacity).")
  in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Also write the sweep as a BENCH_fleet-style JSON document \
                (schema bastion-fleet/2).")
  in
  let stats =
    Arg.(
      value
      & opt (some string) None
      & info [ "stats" ] ~docv:"FILE"
          ~doc:"Write the highest-load point's time series as JSONL to FILE.")
  in
  let stats_interval =
    Arg.(
      value
      & opt (some int) None
      & info [ "stats-interval" ] ~docv:"CYCLES"
          ~doc:"Sample per-shard time-series rows every CYCLES modelled \
                cycles during each load point.")
  in
  Cmd.v
    (Cmd.info "fleet"
       ~doc:"Sweep offered load over a heterogeneous tracee fleet and report \
             tail latency vs load with the saturation knee")
    Term.(
      ret
        (const run_fleet $ verbose_arg $ tracees $ shards $ arrivals $ points
       $ scheduler $ json $ stats $ stats_interval))

(* --- fleet-summary ----------------------------------------------------- *)

(* Offline reader for the telemetry artifacts: the fleet sweep JSON
   (schema bastion-fleet/1 or the per-policy /2) and the stats JSONL
   stream (bastion-stats/1), told apart by the schema tag. *)

let fleet_num ?(default = 0.0) name j =
  match Report.Json.member name j with
  | Some (Report.Json.Num f) -> f
  | _ -> default

let render_fleet_results results =
  let open Report.Json in
  let num = fleet_num in
  let cell p name j =
    Printf.sprintf "%.0f" (num p (Option.value ~default:Null (member name j)))
  in
  print_string
    (Report.Table.render
       ~align:Report.Table.[ R; R; R; R; R; R; R; R; R; R; L ]
       ~header:
         [ "load"; "traps/sec"; "util"; "spread"; "steals";
           "wait p50"; "wait p99"; "wait p99.9";
           "e2e p99"; "e2e p99.9"; "serial" ]
       (List.map
          (fun r ->
            [
              Printf.sprintf "%.2f" (num "load_fraction" r);
              Printf.sprintf "%.0f" (num "offered_traps_per_sec" r);
              Printf.sprintf "%.2f" (num "util_max" r);
              (match member "util_spread" r with
              | Some (Num f) -> Printf.sprintf "%.2f" f
              | _ -> "-");
              (match member "steals" r with
              | Some (Num f) -> Printf.sprintf "%.0f" f
              | _ -> "-");
              cell "p50" "queue_wait" r;
              cell "p99" "queue_wait" r;
              cell "p999" "queue_wait" r;
              cell "p99" "e2e" r;
              cell "p999" "e2e" r;
              (match member "matches_serial" r with
              | Some (Bool true) -> "ok"
              | Some (Bool false) -> "DIVERGED"
              | _ -> "-");
            ])
          results))

let render_fleet_knee knee =
  let open Report.Json in
  let num = fleet_num in
  let str name j = match member name j with Some (Str s) -> Some s | _ -> None in
  match knee with
  | Some (Obj _ as k) ->
    Printf.printf
      "\nsaturation knee: point %.0f (%.2fx capacity, %.0f traps/sec) — %s\n"
      (num "index" k) (num "load_fraction" k) (num "offered_traps_per_sec" k)
      (Option.value ~default:"-" (str "reason" k))
  | _ -> print_string "\nsaturation knee: not reached in this sweep\n"

let render_fleet_doc doc =
  let open Report.Json in
  let num = fleet_num in
  let config = Option.value ~default:Null (member "config" doc) in
  Printf.printf
    "fleet sweep: %.0f tracees, %.0f shards, %.0f arrivals/point\n\
     capacity (bottleneck shard util = 1): %.0f traps/sec\n\n"
    (num "tracees" config) (num "shards" config) (num "arrivals" config)
    (num "capacity_traps_per_sec" doc);
  let results =
    match member "results" doc with Some (List l) -> l | _ -> []
  in
  render_fleet_results results;
  print_newline ();
  render_fleet_knee (member "knee" doc);
  `Ok ()

let render_fleet_doc_v2 doc =
  let open Report.Json in
  let num = fleet_num in
  let config = Option.value ~default:Null (member "config" doc) in
  Printf.printf
    "fleet ablation: %.0f tracees, %.0f shards, %.0f arrivals/point\n\
     capacity (mean shard util = 1): %.0f traps/sec (static bottleneck: %.0f)\n"
    (num "tracees" config) (num "shards" config) (num "arrivals" config)
    (num "capacity_traps_per_sec" doc)
    (num "capacity_bottleneck_traps_per_sec" doc);
  let policies =
    match member "policies" doc with Some (List l) -> l | _ -> []
  in
  List.iter
    (fun p ->
      let name =
        match member "policy" p with Some (Str s) -> s | _ -> "?"
      in
      Printf.printf "\n-- %s --\n" name;
      let results =
        match member "results" p with Some (List l) -> l | _ -> []
      in
      render_fleet_results results;
      print_newline ();
      render_fleet_knee (member "knee" p))
    policies;
  `Ok ()

let render_stats_file file =
  match Obs.Timeseries.read file with
  | Ok (_header, rows) ->
    print_string (Obs.Timeseries.render rows);
    `Ok ()
  | Error e -> `Error (false, Printf.sprintf "%s: %s" file e)

let fleet_summary file =
  match Report.Json.of_file file with
  | exception Sys_error e -> `Error (false, e)
  (* Not one JSON document — a stats stream's rows are trailing values. *)
  | exception Report.Json.Parse_error _ -> render_stats_file file
  | doc -> (
    match Report.Json.member "schema" doc with
    | Some (Report.Json.Str "bastion-fleet/1") -> render_fleet_doc doc
    | Some (Report.Json.Str "bastion-fleet/2") -> render_fleet_doc_v2 doc
    | Some (Report.Json.Str s) when String.equal s Obs.Timeseries.schema ->
      render_stats_file file
    | Some (Report.Json.Str s) ->
      `Error (false, Printf.sprintf "%s: unknown schema %S" file s)
    | _ ->
      `Error
        ( false,
          Printf.sprintf
            "%s: no schema tag (want \"bastion-fleet/2\" or %S)" file
            Obs.Timeseries.schema ))

let fleet_summary_cmd =
  let file =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE"
          ~doc:"A fleet sweep JSON (`bastion fleet --json`, BENCH_fleet.json) \
                or a stats JSONL stream (`--stats`).")
  in
  Cmd.v
    (Cmd.info "fleet-summary"
       ~doc:"Summarise a fleet sweep JSON or a --stats time-series stream")
    Term.(ret (const fleet_summary $ file))

(* --- attack ----------------------------------------------------------- *)

let attack_configs =
  [
    ("none", Attacks.Runner.Undefended);
    ("ct", Attacks.Runner.Only_ct);
    ("cf", Attacks.Runner.Only_cf);
    ("ai", Attacks.Runner.Only_ai);
    ("full", Attacks.Runner.Full_bastion);
  ]

let print_row (row : Attacks.Runner.row) =
  let f o = match o with
    | Attacks.Runner.Blocked _ -> "blocked"
    | Attacks.Runner.Succeeded -> "SUCCEEDED"
    | Attacks.Runner.Inert -> "inert"
  in
  Printf.printf "%-22s undef=%s ct=%s cf=%s ai=%s full=%s tier=%s %s\n"
    row.r_attack.a_id
    (f row.r_undefended) (f row.r_ct) (f row.r_cf) (f row.r_ai) (f row.r_full)
    (Attacks.Runner.tier_name (Attacks.Runner.catching_tier row))
    (if Attacks.Runner.matches_expectation row then "(matches Table 6)"
     else "(MISMATCH vs Table 6)")

(* Per-tier resolution counts over an evaluated catalog: how many
   attacks the cheap seccomp-stage tier stops on its own. *)
let print_tier_summary (rows : Attacks.Runner.row list) =
  let count t =
    List.length
      (List.filter (fun r -> Attacks.Runner.catching_tier r = t) rows)
  in
  Printf.printf
    "tiers: %d stopped by the seccomp-stage pre-filter alone, %d by the full \
     monitor behind it, %d uncaught\n"
    (count Attacks.Runner.Tier_prefilter)
    (count Attacks.Runner.Tier_full)
    (count Attacks.Runner.Tier_uncaught)

let run_attack verbose id all config shards audit =
  setup_logs verbose;
  match audit with
  | Some path -> (
    (* Recording needs exactly one attack under exactly one monitored
       configuration: that pair is what the trace header pins down. *)
    match (id, config) with
    | Some attack_id, Some cfg when cfg <> Attacks.Runner.Undefended -> (
      try
        let outcome =
          Bastion_replay.Engine.record_attack ~attack_id ~config:cfg ~path ()
        in
        Printf.printf "%-22s %-10s %s\n" attack_id
          (Attacks.Runner.config_name cfg)
          (Attacks.Runner.outcome_name outcome);
        Printf.printf "audit log : %s\n" path;
        `Ok ()
      with Bastion_replay.Trace.Malformed _ as e ->
        `Error (false, Option.get (Bastion_replay.Trace.describe_malformed e)))
    | _ ->
      `Error
        ( false,
          "--audit requires --id ID and --config CONFIG with a monitored \
           configuration (ct, cf, ai, full)" ))
  | None ->
  let chosen =
    if all then Attacks.Catalog.all
    else
      match id with
      | Some id ->
        List.filter (fun (a : Attacks.Attack.t) -> String.equal a.a_id id) Attacks.Catalog.all
      | None -> []
  in
  if chosen = [] then
    `Error (false, "no attack selected; use --id ID or --all (see `bastion list`)")
  else if shards < 1 then `Error (false, "--shards must be >= 1")
  else if shards > 1 && (not all || config <> None) then
    `Error (false, "--shards only applies to `attack --all` without --config")
  else if shards > 1 then begin
    (* One Table 6 row per tracee on the monitor pool. *)
    let rows, stats = Attacks.Runner.evaluate_all_sharded ~shards () in
    List.iter print_row rows;
    print_tier_summary rows;
    Array.iter
      (fun (sh : Bastion_mt.Monitor_pool.shard_stats) ->
        Printf.printf "shard %d: %d rows\n" sh.sh_shard sh.sh_tracees)
      stats.p_shards;
    `Ok ()
  end
  else begin
    let rows = ref [] in
    List.iter
      (fun (attack : Attacks.Attack.t) ->
        match config with
        | Some config ->
          let outcome = Attacks.Runner.run attack config in
          Printf.printf "%-22s %-10s %s\n" attack.a_id
            (Attacks.Runner.config_name config)
            (Attacks.Runner.outcome_name outcome)
        | None ->
          let row = Attacks.Runner.evaluate attack in
          rows := row :: !rows;
          print_row row)
      chosen;
    if all && config = None then print_tier_summary (List.rev !rows);
    `Ok ()
  end

let attack_cmd =
  let id =
    Arg.(value & opt (some string) None & info [ "id" ] ~docv:"ID" ~doc:"Attack id.")
  in
  let all = Arg.(value & flag & info [ "all" ] ~doc:"Run the whole catalog.") in
  let config =
    Arg.(
      value
      & opt (some (enum attack_configs)) None
      & info [ "config" ] ~docv:"CONFIG"
          ~doc:"Run under one configuration only (none, ct, cf, ai, full); default: all five.")
  in
  let shards =
    Arg.(
      value & opt int 1
      & info [ "shards" ] ~docv:"N"
          ~doc:"With --all: evaluate the catalog over N worker domains, one \
                Table 6 row per tracee (results identical to serial).")
  in
  let audit =
    Arg.(
      value
      & opt (some string) None
      & info [ "audit" ] ~docv:"FILE"
          ~doc:"Record the monitored run (requires --id and a monitored \
                --config) as a replayable JSONL trace at FILE.")
  in
  Cmd.v (Cmd.info "attack" ~doc:"Run attacks from the Table 6 catalog")
    Term.(ret (const run_attack $ verbose_arg $ id $ all $ config $ shards $ audit))

(* --- replay ------------------------------------------------------------ *)

(* One JSON value for one trace, a list for several — so the classic
   single-trace report shape is unchanged. *)
let json_of_reports to_json = function
  | [ r ] -> to_json r
  | rs -> Report.Json.List (List.map to_json rs)

let replay_trace verbose files strict json against diff_out =
  setup_logs verbose;
  let positioned e =
    match Bastion_replay.Trace.describe_malformed e with
    | Some msg -> `Error (false, msg)
    | None -> raise e
  in
  try
    let traces = List.map Bastion_replay.Trace.read_file files in
    match against with
    | None ->
      let reports = List.map (Bastion_replay.Engine.replay ~strict) traces in
      (match json with
      | Some path ->
        Report.Json.to_file path
          (json_of_reports Bastion_replay.Engine.report_to_json reports)
      | None -> ());
      List.iter (fun r -> print_string (Bastion_replay.Engine.render r)) reports;
      let bad =
        List.filter (fun r -> not (Bastion_replay.Engine.ok r)) reports
      in
      if bad = [] then `Ok ()
      else
        `Error
          ( false,
            Printf.sprintf
              "%d of %d trace(s) diverged between recorded and replayed runs"
              (List.length bad) (List.length reports) )
    | Some spec ->
      let diff_one tr =
        let against =
          match spec with
          | "current" -> None
          | file ->
            let base = Bastion_replay.Engine.base_bundle tr in
            Some (Bastion.Metadata_io.load ~file base.inst.iprog)
        in
        Bastion_replay.Engine.diff_replay ?against tr
      in
      let reports = List.map diff_one traces in
      (match diff_out with
      | Some path ->
        Report.Json.to_file path
          (json_of_reports Bastion_replay.Engine.diff_report_to_json reports)
      | None -> ());
      List.iter
        (fun r -> print_string (Bastion_replay.Engine.render_diff r))
        reports;
      let bad =
        List.filter (fun r -> not (Bastion_replay.Engine.diff_ok r)) reports
      in
      if bad = [] then `Ok ()
      else
        `Error
          ( false,
            Printf.sprintf
              "%d of %d trace(s) show verdict flips, context moves or a dead \
               replay"
              (List.length bad) (List.length reports) )
  with
  | Sys_error e -> `Error (false, e)
  | Bastion_replay.Trace.Malformed _ as e -> positioned e
  | Bastion.Metadata_io.Parse_error (ln, msg) ->
    `Error (false, Printf.sprintf "--against metadata line %d: %s" ln msg)

let replay_cmd =
  let files =
    Arg.(
      non_empty
      & pos_all string []
      & info [] ~docv:"TRACE"
          ~doc:"JSONL trap trace(s) written by `bastion run --audit` or \
                `bastion attack --audit`.")
  in
  let strict =
    Arg.(
      value & flag
      & info [ "strict" ]
          ~doc:"Also compare per-phase spans, trap-entry cycles, verdict-cache \
                disposition and ptrace/shadow traffic counters.")
  in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"REPORT"
          ~doc:"Also write the divergence report as JSON to REPORT.")
  in
  let against =
    Arg.(
      value
      & opt (some string) None
      & info [ "against" ] ~docv:"current|FILE"
          ~doc:"Differential replay: judge the recorded stream through a \
                monitor built from changed metadata — $(b,current) rebuilds \
                the in-tree compile pass (the regression oracle), FILE loads \
                an edited metadata file — and report what moved instead of \
                refusing a fingerprint mismatch.")
  in
  let diff_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "diff" ] ~docv:"REPORT"
          ~doc:"With --against: also write the structured what-moved report \
                as JSON to REPORT.")
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:"Re-verify recorded trap streams against the real monitor (exit \
             non-zero on any divergence; with --against, on any verdict flip)")
    Term.(
      ret
        (const replay_trace $ verbose_arg $ files $ strict $ json $ against
        $ diff_out))

(* --- list ------------------------------------------------------------- *)

let list_all () =
  print_endline "applications:";
  List.iter (Printf.printf "  %s\n") app_names;
  print_endline "defenses:";
  List.iter (fun (n, _) -> Printf.printf "  %s\n" n) defenses;
  Printf.printf "attacks (%d):\n" Attacks.Catalog.count;
  List.iter
    (fun (a : Attacks.Attack.t) ->
      Printf.printf "  %-22s %-8s %s\n" a.a_id a.a_category a.a_name)
    Attacks.Catalog.all;
  `Ok ()

let list_cmd =
  Cmd.v (Cmd.info "list" ~doc:"List applications, defenses and attacks")
    Term.(ret (const list_all $ const ()))

(* --- main ------------------------------------------------------------- *)

let () =
  let doc = "BASTION system-call integrity — OCaml reproduction" in
  let info = Cmd.info "bastion" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            analyze_cmd; lint_cmd; run_cmd; replay_cmd; attack_cmd; list_cmd;
            trace_summary_cmd; fleet_cmd; fleet_summary_cmd;
          ]))
