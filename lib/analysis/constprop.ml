(* Interprocedural constant propagation over SIL (the pre-resolution
   pass of the static soundness suite).

   Per function, a forward dataflow over a flat lattice: a variable is
   [Known c] when every analysed path assigns it the same constant, and
   [Top] otherwise.  The transfer is deliberately conservative about
   memory:

   - address-taken locals are always [Top] (any store through a pointer
     may alias them);
   - uninitialised locals are [Top] (a reused stack slot holds
     garbage, never a defined constant);
   - globals fold only when "frozen": scalar-initialised, never stored
     to and never address-taken anywhere in the program;
   - loads, [Addr_of] and call results are [Top].

   Branches whose condition folds to a constant propagate along the
   taken edge only, so a constant killed on a dead arm stays constant.

   Across functions, per-parameter summaries are joined over every
   direct callsite and iterated to fixpoint from the entry function;
   address-taken functions are callable from indirect callsites with
   unknown arguments, so their parameters are pinned at [Top].  The
   result is a sound "provably constant along all paths" judgement: a
   [Known c] operand at a location evaluates to [c] in every benign
   execution reaching it. *)

module Vmap = Map.Make (Int)
module Iset = Set.Make (Int)

type value = Top | Known of int64

let value_equal a b =
  match (a, b) with
  | Top, Top -> true
  | Known x, Known y -> Int64.equal x y
  | Top, Known _ | Known _, Top -> false

let value_join a b =
  match (a, b) with
  | Known x, Known y when Int64.equal x y -> a
  | _ -> Top

let pp_value fmt = function
  | Top -> Format.pp_print_string fmt "⊤"
  | Known c -> Format.fprintf fmt "%Ld" c

module L = struct
  (* A variable missing from the map is Top; only Known values are
     stored, so the join keeps exactly the agreeing constants. *)
  type t = value Vmap.t

  let equal = Vmap.equal value_equal

  let join a b =
    Vmap.merge
      (fun _ x y ->
        match (x, y) with
        | Some (Known vx), Some (Known vy) when Int64.equal vx vy -> x
        | _ -> None)
      a b
end

module Df = Dataflow.Make (L)

(* Per-function evaluation context. *)
type fctx = {
  fx_addr_taken : Iset.t;  (** vids whose address is taken in the function *)
  fx_frozen : (string, int64) Hashtbl.t;
}

type t = {
  cp_prog : Sil.Prog.t;
  cp_frozen : (string, int64) Hashtbl.t;
  cp_ctx : (string, fctx) Hashtbl.t;
  cp_results : (string, Df.result) Hashtbl.t;
  cp_summaries : (string, value array) Hashtbl.t;
      (** per function: join of argument vectors over analysed callsites *)
}

(** Globals whose value is the same word for the whole run: scalar
    initialiser, never stored to, never address-taken. *)
let frozen_globals (prog : Sil.Prog.t) : (string, int64) Hashtbl.t =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (g : Sil.Prog.global) ->
      match (g.gty, g.ginit) with
      | (Sil.Types.I64 | Sil.Types.Ptr _), Sil.Prog.Zero ->
        Hashtbl.replace tbl g.gname 0L
      | (Sil.Types.I64 | Sil.Types.Ptr _), Sil.Prog.Word w ->
        Hashtbl.replace tbl g.gname w
      | _ -> ())
    prog.globals;
  List.iter
    (fun (f : Sil.Func.t) ->
      List.iter
        (fun ((_ : Sil.Loc.t), ins) ->
          match (ins : Sil.Instr.t) with
          | Store (Lglobal g, _) -> Hashtbl.remove tbl g
          | Assign (_, Addr_of (Lglobal g)) -> Hashtbl.remove tbl g
          | _ -> ())
        (Sil.Func.instrs f))
    (Sil.Prog.functions prog);
  tbl

let addr_taken_vars (f : Sil.Func.t) : Iset.t =
  List.fold_left
    (fun acc ((_ : Sil.Loc.t), ins) ->
      match (ins : Sil.Instr.t) with
      | Assign (_, Addr_of (Lvar v)) -> Iset.add v.vid acc
      | _ -> acc)
    Iset.empty (Sil.Func.instrs f)

let eval_op (fx : fctx) (env : L.t) (op : Sil.Operand.t) : value =
  match op with
  | Const c -> Known c
  | Null -> Known 0L
  | Var v ->
    if Iset.mem v.vid fx.fx_addr_taken then Top
    else Option.value ~default:Top (Vmap.find_opt v.vid env)
  | Global g -> (
    match Hashtbl.find_opt fx.fx_frozen g with Some c -> Known c | None -> Top)
  | Cstr _ | Func_addr _ -> Top

let set (fx : fctx) env (v : Sil.Operand.var) value =
  if Iset.mem v.vid fx.fx_addr_taken then env
  else
    match value with
    | Top -> Vmap.remove v.vid env
    | Known _ -> Vmap.add v.vid value env

let transfer (fx : fctx) (_ : Sil.Loc.t) (ins : Sil.Instr.t) env =
  match ins with
  | Assign (v, Use op) -> set fx env v (eval_op fx env op)
  | Assign (v, Binop (op, a, b)) -> (
    match (eval_op fx env a, eval_op fx env b) with
    | Known x, Known y -> set fx env v (Known (Sil.Instr.eval_binop op x y))
    | _ -> set fx env v Top)
  | Assign (v, Load (Lglobal g)) ->
    set fx env v
      (match Hashtbl.find_opt fx.fx_frozen g with Some c -> Known c | None -> Top)
  | Assign (v, (Load _ | Addr_of _)) -> set fx env v Top
  | Store (Lvar v, op) -> set fx env v (eval_op fx env op)
  | Store ((Lglobal _ | Lfield _ | Lindex _ | Lderef _), _) -> env
  | Call { dst = Some v; _ } -> set fx env v Top
  | Call { dst = None; _ } -> env

(* Propagate along the taken edge only when the condition folds. *)
let edges (fx : fctx) (b : Sil.Func.block) env =
  match b.term with
  | Sil.Instr.Branch (op, l1, l2) -> (
    match eval_op fx env op with
    | Known c -> [ ((if Int64.equal c 0L then l2 else l1), env) ]
    | Top -> if String.equal l1 l2 then [ (l1, env) ] else [ (l1, env); (l2, env) ])
  | Sil.Instr.Jump l -> [ (l, env) ]
  | Sil.Instr.Ret _ | Sil.Instr.Halt -> []

let is_app (f : Sil.Func.t) =
  match f.kind with
  | Sil.Func.App_code -> true
  | Sil.Func.Syscall_stub _ | Sil.Func.Intrinsic _ -> false

let analyze (prog : Sil.Prog.t) : t =
  let frozen = frozen_globals prog in
  let t =
    {
      cp_prog = prog;
      cp_frozen = frozen;
      cp_ctx = Hashtbl.create 16;
      cp_results = Hashtbl.create 16;
      cp_summaries = Hashtbl.create 16;
    }
  in
  let fctx_of (f : Sil.Func.t) =
    match Hashtbl.find_opt t.cp_ctx f.fname with
    | Some fx -> fx
    | None ->
      let fx = { fx_addr_taken = addr_taken_vars f; fx_frozen = frozen } in
      Hashtbl.replace t.cp_ctx f.fname fx;
      fx
  in
  let cg = Sil.Callgraph.build prog in
  let work = Queue.create () in
  let top_summary (f : Sil.Func.t) = Array.make (List.length f.params) Top in
  let seed fname =
    match Hashtbl.find_opt prog.funcs fname with
    | Some f when is_app f ->
      Hashtbl.replace t.cp_summaries fname (top_summary f);
      Queue.push fname work
    | Some _ | None -> ()
  in
  seed prog.entry;
  Sil.Callgraph.Sset.iter seed cg.address_taken;
  let join_summary callee (vec : value array) : bool =
    match Hashtbl.find_opt t.cp_summaries callee with
    | None ->
      Hashtbl.replace t.cp_summaries callee vec;
      true
    | Some old ->
      let changed = ref false in
      Array.iteri
        (fun i v ->
          if i < Array.length old then begin
            let j = value_join old.(i) v in
            if not (value_equal j old.(i)) then begin
              old.(i) <- j;
              changed := true
            end
          end)
        vec;
      !changed
  in
  while not (Queue.is_empty work) do
    let fname = Queue.pop work in
    match Hashtbl.find_opt prog.funcs fname with
    | None -> ()
    | Some f when not (is_app f) -> ()
    | Some f ->
      let fx = fctx_of f in
      let summary = Hashtbl.find t.cp_summaries fname in
      let init =
        List.fold_left
          (fun env (i, (v : Sil.Operand.var)) ->
            match summary.(i) with
            | Known _ as k -> set fx env v k
            | Top -> env)
          Vmap.empty
          (List.mapi (fun i (v, _) -> (i, v)) f.params)
      in
      let res =
        Df.run ~dir:Dataflow.Forward ~init ~transfer:(transfer fx)
          ~edges:(edges fx) f
      in
      Hashtbl.replace t.cp_results fname res;
      (* Push the argument vectors of every reached direct callsite into
         the callee's summary; a changed summary re-analyses the
         callee. *)
      List.iter
        (fun (b : Sil.Func.block) ->
          match Hashtbl.find_opt res.df_in b.label with
          | None -> () (* block unreachable under the analysis *)
          | Some s0 ->
            let s = ref s0 in
            Array.iteri
              (fun idx ins ->
                (match (ins : Sil.Instr.t) with
                | Call { target = Direct callee; args; _ } -> (
                  match Hashtbl.find_opt prog.funcs callee with
                  | Some g when is_app g ->
                    let n = List.length g.Sil.Func.params in
                    let vec = Array.make n Top in
                    List.iteri
                      (fun i a -> if i < n then vec.(i) <- eval_op fx !s a)
                      args;
                    if join_summary callee vec then Queue.push callee work
                  | Some _ | None -> ())
                | Assign _ | Store _ | Call { target = Indirect _; _ } -> ());
                s := transfer fx (Sil.Loc.make f.fname b.label idx) ins !s)
              b.instrs)
        f.blocks
  done;
  t

(** The abstract value of [op] at the program point just before the
    instruction at [loc]; [Top] when the function or block was never
    reached by the analysis. *)
let value_of_operand (t : t) (loc : Sil.Loc.t) (op : Sil.Operand.t) : value =
  match (Hashtbl.find_opt t.cp_results loc.func, Hashtbl.find_opt t.cp_ctx loc.func)
  with
  | Some res, Some fx -> (
    match Df.before res loc with None -> Top | Some env -> eval_op fx env op)
  | _ -> Top

let frozen_global (t : t) g = Hashtbl.find_opt t.cp_frozen g

(** Was the function reached (analysed) at all? *)
let reached (t : t) fname = Hashtbl.mem t.cp_results fname

(** Was the program point reached along any analysed path?  [false]
    both for unanalysed functions and for blocks every incoming edge of
    which was folded away by a constant condition. *)
let site_reached (t : t) (loc : Sil.Loc.t) : bool =
  match Hashtbl.find_opt t.cp_results loc.func with
  | None -> false
  | Some res -> Df.before res loc <> None

(** Per-function parameter summary, when the function was reached. *)
let summary (t : t) fname = Hashtbl.find_opt t.cp_summaries fname
