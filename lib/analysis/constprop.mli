(** Interprocedural constant propagation over SIL: a flat lattice per
    variable ([Known c] iff every analysed path assigns the same
    constant), edge-sensitive branch folding, per-parameter summaries
    joined over direct callsites and iterated to fixpoint from the
    entry function.  Address-taken locals, uninitialised locals and
    non-frozen globals are [Top]; address-taken functions take unknown
    arguments.  A [Known c] judgement is sound: the operand evaluates
    to [c] in every benign execution reaching that point. *)

type value = Top | Known of int64

val value_equal : value -> value -> bool
val value_join : value -> value -> value
val pp_value : Format.formatter -> value -> unit

type t

(** Globals whose value is one word for the whole run: scalar
    initialiser, never stored to, never address-taken anywhere. *)
val frozen_globals : Sil.Prog.t -> (string, int64) Hashtbl.t

val analyze : Sil.Prog.t -> t

(** Abstract value of an operand just before the instruction at the
    location; [Top] when the point was never reached. *)
val value_of_operand : t -> Sil.Loc.t -> Sil.Operand.t -> value

val frozen_global : t -> string -> int64 option

(** Was the function reached (analysed) at all? *)
val reached : t -> string -> bool

(** Was the program point reached along any analysed path?  [false]
    both for unanalysed functions and for blocks whose every incoming
    edge was folded away by a constant branch condition. *)
val site_reached : t -> Sil.Loc.t -> bool

(** Per-function parameter summary, when the function was reached. *)
val summary : t -> string -> value array option
