(* Interprocedural copy/value propagation over argument facts (the
   flowgraph's value engine, factored out so the SCCP refinement and
   the syscall-flow extraction share one implementation).

   Classifies each operand at a reachable program point as one of the
   pre-filter's argument facts: a finite set of benign constants
   (register-checkable), a kernel-derived dynamic value (syscall
   results flowing through locals and parameters only), or an opaque
   memory-dependent value (loads, globals, indirect results).  The
   analysis is flow-insensitive per variable — a variable's fact is the
   join over every definition and every caller's matching argument —
   with demand-driven memoisation and stack-based cycle breaking.
   Joins over-approximate the benign values, so an emitted check never
   kills a benign run. *)

type fact = Defenses.Flow_prefilter.arg_fact =
  | Fact_set of int64 list
  | Fact_free
  | Fact_opaque

let set_cap = 16

let join a b =
  match (a, b) with
  | Defenses.Flow_prefilter.Fact_opaque, _ | _, Defenses.Flow_prefilter.Fact_opaque
    ->
    Defenses.Flow_prefilter.Fact_opaque
  | Defenses.Flow_prefilter.Fact_free, _ | _, Defenses.Flow_prefilter.Fact_free ->
    Defenses.Flow_prefilter.Fact_free
  | Defenses.Flow_prefilter.Fact_set xs, Defenses.Flow_prefilter.Fact_set ys ->
    let u = List.sort_uniq Int64.compare (List.rev_append xs ys) in
    if List.length u > set_cap then Defenses.Flow_prefilter.Fact_opaque
    else Defenses.Flow_prefilter.Fact_set u

type t = {
  cy_prog : Sil.Prog.t;
  cy_cg : Sil.Callgraph.t;
  cy_reach : (string, unit) Hashtbl.t;  (** reachable app functions *)
  cy_direct_args : (string, (string * Sil.Operand.t list) list) Hashtbl.t;
  cy_indirect_args : (int, (string * Sil.Operand.t list) list) Hashtbl.t;
  cy_memo : (string, Defenses.Flow_prefilter.arg_fact) Hashtbl.t;
}

let is_app_of prog fname =
  match Hashtbl.find_opt prog.Sil.Prog.funcs fname with
  | Some (f : Sil.Func.t) -> (
    match f.kind with
    | Sil.Func.App_code -> true
    | Sil.Func.Syscall_stub _ | Sil.Func.Intrinsic _ -> false)
  | None -> false

let is_stub_of prog fname =
  match Hashtbl.find_opt prog.Sil.Prog.funcs fname with
  | Some f -> Sil.Func.is_syscall_stub f
  | None -> false

let analyze (prog : Sil.Prog.t) : t =
  let cg = Sil.Callgraph.build prog in
  let is_app = is_app_of prog in
  (* Address-taken app functions by arity: the candidate targets of an
     indirect call (the linter's reachability uses the same cut). *)
  let taken_app_of_arity =
    let tbl : (int, string list) Hashtbl.t = Hashtbl.create 8 in
    Sil.Callgraph.Sset.iter
      (fun fname ->
        if is_app fname then begin
          let f = Hashtbl.find prog.funcs fname in
          let n = List.length f.params in
          let existing = Option.value ~default:[] (Hashtbl.find_opt tbl n) in
          Hashtbl.replace tbl n (fname :: existing)
        end)
      cg.address_taken;
    fun n -> Option.value ~default:[] (Hashtbl.find_opt tbl n)
  in
  (* Reachable app functions, visiting only reachable blocks; indirect
     calls reach every address-taken, arity-matching app function. *)
  let reach : (string, unit) Hashtbl.t = Hashtbl.create 32 in
  let visit_queue = Queue.create () in
  let visit fname =
    if is_app fname && not (Hashtbl.mem reach fname) then begin
      Hashtbl.replace reach fname ();
      Queue.push fname visit_queue
    end
  in
  visit prog.entry;
  while not (Queue.is_empty visit_queue) do
    let fname = Queue.pop visit_queue in
    let f = Hashtbl.find prog.funcs fname in
    let r = Sil.Cfg.reachable_blocks f in
    List.iter
      (fun (b : Sil.Func.block) ->
        if Sil.Cfg.Sset.mem b.label r then
          Array.iter
            (fun (ins : Sil.Instr.t) ->
              match ins with
              | Sil.Instr.Call { target = Sil.Instr.Direct callee; _ } ->
                if is_app callee then visit callee
              | Sil.Instr.Call { target = Sil.Instr.Indirect _; args; _ } ->
                List.iter visit (taken_app_of_arity (List.length args))
              | Sil.Instr.Assign _ | Sil.Instr.Store _ -> ())
            b.instrs)
      f.blocks
  done;
  (* Direct/indirect callsite argument index over the reachable app
     functions (the only callers that can benignly execute). *)
  let direct_args : (string, (string * Sil.Operand.t list) list) Hashtbl.t =
    Hashtbl.create 32
  in
  let indirect_args : (int, (string * Sil.Operand.t list) list) Hashtbl.t =
    Hashtbl.create 8
  in
  Hashtbl.iter
    (fun fname () ->
      let f = Hashtbl.find prog.funcs fname in
      let r = Sil.Cfg.reachable_blocks f in
      List.iter
        (fun (b : Sil.Func.block) ->
          if Sil.Cfg.Sset.mem b.label r then
            Array.iter
              (fun (ins : Sil.Instr.t) ->
                match ins with
                | Sil.Instr.Call { target = Sil.Instr.Direct g; args; _ }
                  when is_app g ->
                  let cur =
                    Option.value ~default:[] (Hashtbl.find_opt direct_args g)
                  in
                  Hashtbl.replace direct_args g ((fname, args) :: cur)
                | Sil.Instr.Call { target = Sil.Instr.Indirect _; args; _ } ->
                  let n = List.length args in
                  let cur =
                    Option.value ~default:[] (Hashtbl.find_opt indirect_args n)
                  in
                  Hashtbl.replace indirect_args n ((fname, args) :: cur)
                | Sil.Instr.Call _ | Sil.Instr.Assign _ | Sil.Instr.Store _ -> ())
              b.instrs)
        f.blocks)
    reach;
  {
    cy_prog = prog;
    cy_cg = cg;
    cy_reach = reach;
    cy_direct_args = direct_args;
    cy_indirect_args = indirect_args;
    cy_memo = Hashtbl.create 64;
  }

let reachable (t : t) fname = Hashtbl.mem t.cy_reach fname

let rec eval_operand (t : t) fname (op : Sil.Operand.t) stack =
  match op with
  | Sil.Operand.Const c -> Defenses.Flow_prefilter.Fact_set [ c ]
  | Sil.Operand.Null -> Defenses.Flow_prefilter.Fact_set [ 0L ]
  | Sil.Operand.Var v -> eval_var t fname v stack
  | Sil.Operand.Cstr _ | Sil.Operand.Global _ | Sil.Operand.Func_addr _ ->
    Defenses.Flow_prefilter.Fact_opaque

and eval_rvalue (t : t) fname (rv : Sil.Instr.rvalue) stack =
  match rv with
  | Sil.Instr.Use op -> eval_operand t fname op stack
  | Sil.Instr.Load _ | Sil.Instr.Addr_of _ -> Defenses.Flow_prefilter.Fact_opaque
  | Sil.Instr.Binop (bop, a, b) -> (
    match (eval_operand t fname a stack, eval_operand t fname b stack) with
    | Defenses.Flow_prefilter.Fact_opaque, _ | _, Defenses.Flow_prefilter.Fact_opaque
      ->
      Defenses.Flow_prefilter.Fact_opaque
    | Defenses.Flow_prefilter.Fact_set xs, Defenses.Flow_prefilter.Fact_set ys ->
      let u =
        List.concat_map (fun x -> List.map (Sil.Instr.eval_binop bop x) ys) xs
        |> List.sort_uniq Int64.compare
      in
      if List.length u > set_cap then Defenses.Flow_prefilter.Fact_opaque
      else Defenses.Flow_prefilter.Fact_set u
    | _, _ -> Defenses.Flow_prefilter.Fact_free)

and eval_return (t : t) gname stack =
  if not (Hashtbl.mem t.cy_reach gname) then Defenses.Flow_prefilter.Fact_opaque
  else begin
    let key = "r:" ^ gname in
    match Hashtbl.find_opt t.cy_memo key with
    | Some f -> f
    | None ->
      if List.mem key stack then Defenses.Flow_prefilter.Fact_opaque
      else begin
        let stack = key :: stack in
        let g = Hashtbl.find t.cy_prog.funcs gname in
        let reach = Sil.Cfg.reachable_blocks g in
        let facts = ref [] in
        List.iter
          (fun (b : Sil.Func.block) ->
            if Sil.Cfg.Sset.mem b.label reach then
              match b.term with
              | Sil.Instr.Ret (Some op) ->
                facts := eval_operand t gname op stack :: !facts
              | Sil.Instr.Ret None | Sil.Instr.Halt | Sil.Instr.Jump _
              | Sil.Instr.Branch _ -> ())
          g.blocks;
        let r =
          match !facts with
          | [] -> Defenses.Flow_prefilter.Fact_opaque
          | f :: rest -> List.fold_left join f rest
        in
        Hashtbl.replace t.cy_memo key r;
        r
      end
  end

and eval_var (t : t) fname (v : Sil.Operand.var) stack =
  let key = Printf.sprintf "v:%s:%d" fname v.vid in
  match Hashtbl.find_opt t.cy_memo key with
  | Some f -> f
  | None ->
    if List.mem key stack then Defenses.Flow_prefilter.Fact_opaque
    else begin
      let stack = key :: stack in
      let f = Hashtbl.find t.cy_prog.funcs fname in
      let facts = ref [] in
      List.iter
        (fun ((_, ins) : Sil.Loc.t * Sil.Instr.t) ->
          match ins with
          | Sil.Instr.Assign (d, rv) when d.vid = v.vid ->
            facts := eval_rvalue t fname rv stack :: !facts
          | Sil.Instr.Call { dst = Some d; target; _ } when d.vid = v.vid -> (
            match target with
            | Sil.Instr.Direct g ->
              if is_stub_of t.cy_prog g then
                (* A syscall result: kernel-derived, not forgeable
                   through tracee memory writes. *)
                facts := Defenses.Flow_prefilter.Fact_free :: !facts
              else if is_app_of t.cy_prog g then
                facts := eval_return t g stack :: !facts
              else facts := Defenses.Flow_prefilter.Fact_opaque :: !facts
            | Sil.Instr.Indirect _ ->
              facts := Defenses.Flow_prefilter.Fact_opaque :: !facts)
          | Sil.Instr.Assign _ | Sil.Instr.Call _ | Sil.Instr.Store _ -> ())
        (Sil.Func.instrs f);
      (* Parameter inflow: join the matching argument of every
         reachable callsite (direct, plus indirect when the function
         is address-taken with matching arity). *)
      (match
         List.find_index
           (fun ((p, _) : Sil.Operand.var * _) -> p.vid = v.vid)
           f.params
       with
      | None -> ()
      | Some i ->
        let arity = List.length f.params in
        let callers =
          Option.value ~default:[] (Hashtbl.find_opt t.cy_direct_args fname)
          @
          if Sil.Callgraph.Sset.mem fname t.cy_cg.address_taken then
            Option.value ~default:[] (Hashtbl.find_opt t.cy_indirect_args arity)
          else []
        in
        List.iter
          (fun (caller, args) ->
            match List.nth_opt args i with
            | Some op -> facts := eval_operand t caller op stack :: !facts
            | None -> facts := Defenses.Flow_prefilter.Fact_opaque :: !facts)
          callers);
      let r =
        match !facts with
        | [] -> Defenses.Flow_prefilter.Fact_opaque
        | f0 :: rest -> List.fold_left join f0 rest
      in
      Hashtbl.replace t.cy_memo key r;
      r
    end

(** The fact of [op] evaluated in function [fname]. *)
let fact_of_operand (t : t) fname (op : Sil.Operand.t) :
    Defenses.Flow_prefilter.arg_fact =
  eval_operand t fname op []

(** Per-position facts of the call at [loc] (empty for non-calls). *)
let facts_of_call (t : t) (loc : Sil.Loc.t) :
    (int * Defenses.Flow_prefilter.arg_fact) list =
  match Sil.Prog.instr_at t.cy_prog loc with
  | Sil.Instr.Call { args; _ } ->
    List.mapi (fun i op -> (i, eval_operand t loc.func op [])) args
  | Sil.Instr.Assign _ | Sil.Instr.Store _ -> []
