(** Interprocedural copy/value propagation over the pre-filter's
    argument facts — the value engine behind {!Flowgraph}'s seccomp-stage
    argument classification and the copy-fed half of {!Sccp}.

    A variable's fact is the join over every definition and every
    reachable caller's matching argument (flow-insensitive, demand
    driven, memoised): a finite set of benign constants, a
    kernel-derived dynamic value, or an opaque memory-dependent value.
    Joins over-approximate the benign values, so an emitted check never
    kills a benign run — and a singleton [Fact_set [c]] means every
    analysed producer of the value agrees on the constant [c]. *)

type fact = Defenses.Flow_prefilter.arg_fact =
  | Fact_set of int64 list
  | Fact_free
  | Fact_opaque

(** Constant sets larger than this collapse to [Fact_opaque]. *)
val set_cap : int

(** The fact-lattice join (opaque absorbs, free beats sets, sets union
    capped at {!set_cap}). *)
val join : fact -> fact -> fact

type t

(** Index the reachable app functions and their callsite arguments.
    Evaluation is demand-driven; the returned handle memoises. *)
val analyze : Sil.Prog.t -> t

(** Is [fname] a reachable app function (from the program entry,
    through direct calls and arity-matching indirect candidates)? *)
val reachable : t -> string -> bool

(** The fact of an operand evaluated in function [fname]. *)
val fact_of_operand : t -> string -> Sil.Operand.t -> fact

(** Per-position facts of the call at [loc]; empty for non-calls. *)
val facts_of_call : t -> Sil.Loc.t -> (int * fact) list
