(* A generic worklist dataflow engine over a function's block CFG.

   The client supplies a join-semilattice and a per-instruction transfer
   function; the engine iterates to a fixpoint in either direction.
   Bottom is represented by absence: a block with no recorded state was
   never reached along any analysed path (forward: unreachable from
   entry, e.g. behind a folded branch; backward: cannot reach an exit).

   Forward analyses may also supply [edges], an edge-sensitive
   out-function mapping a block's exit state to per-successor states —
   this is how constant propagation folds branches on known
   conditions. *)

module type LATTICE = sig
  type t

  val equal : t -> t -> bool
  val join : t -> t -> t
end

type direction = Forward | Backward

module Make (L : LATTICE) = struct
  type result = {
    df_func : Sil.Func.t;
    df_dir : direction;
    df_in : (string, L.t) Hashtbl.t;
        (** per block: state at the block's start (program order) *)
    df_out : (string, L.t) Hashtbl.t;
        (** per block: state at the block's end (program order) *)
    df_transfer : Sil.Loc.t -> Sil.Instr.t -> L.t -> L.t;
    df_term : (Sil.Func.block -> L.t -> L.t) option;
        (** terminator transfer, between the instruction flow and the
            block boundary on the control-flow side *)
  }

  let join_into tbl label state =
    match Hashtbl.find_opt tbl label with
    | None ->
      Hashtbl.replace tbl label state;
      true
    | Some old ->
      let joined = L.join old state in
      if L.equal joined old then false
      else begin
        Hashtbl.replace tbl label joined;
        true
      end

  (** Apply the transfer function across a whole block, forward. *)
  let flow_forward transfer (f : Sil.Func.t) (b : Sil.Func.block) state =
    let s = ref state in
    Array.iteri
      (fun idx ins -> s := transfer (Sil.Loc.make f.fname b.label idx) ins !s)
      b.instrs;
    !s

  let flow_backward transfer (f : Sil.Func.t) (b : Sil.Func.block) state =
    let s = ref state in
    for idx = Array.length b.instrs - 1 downto 0 do
      s := transfer (Sil.Loc.make f.fname b.label idx) b.instrs.(idx) !s
    done;
    !s

  let is_exit (b : Sil.Func.block) =
    match b.term with Ret _ | Halt -> true | Jump _ | Branch _ -> false

  let run ~(dir : direction) ~(init : L.t)
      ~(transfer : Sil.Loc.t -> Sil.Instr.t -> L.t -> L.t)
      ?(term : (Sil.Func.block -> L.t -> L.t) option)
      ?(edges : (Sil.Func.block -> L.t -> (string * L.t) list) option)
      (f : Sil.Func.t) : result =
    let apply_term b s = match term with None -> s | Some t -> t b s in
    let blocks = Sil.Cfg.block_map f in
    let df_in = Hashtbl.create 16 in
    let df_out = Hashtbl.create 16 in
    let work = Queue.create () in
    let queued = Hashtbl.create 16 in
    let push label =
      if not (Hashtbl.mem queued label) then begin
        Hashtbl.replace queued label ();
        Queue.push label work
      end
    in
    (match dir with
    | Forward ->
      let entry = (Sil.Func.entry_block f).label in
      Hashtbl.replace df_in entry init;
      push entry
    | Backward ->
      List.iter
        (fun (b : Sil.Func.block) ->
          if is_exit b then begin
            Hashtbl.replace df_out b.label init;
            push b.label
          end)
        f.blocks);
    let preds = lazy (Sil.Cfg.predecessors f) in
    while not (Queue.is_empty work) do
      let label = Queue.pop work in
      Hashtbl.remove queued label;
      let b = Hashtbl.find blocks label in
      match dir with
      | Forward ->
        let s_in = Hashtbl.find df_in label in
        let s_out = apply_term b (flow_forward transfer f b s_in) in
        Hashtbl.replace df_out label s_out;
        let outs =
          match edges with
          | Some e -> e b s_out
          | None -> List.map (fun l -> (l, s_out)) (Sil.Cfg.successors b.term)
        in
        List.iter
          (fun (succ, st) ->
            if Hashtbl.mem blocks succ && join_into df_in succ st then push succ)
          outs
      | Backward ->
        let s_out = Hashtbl.find df_out label in
        let s_in = flow_backward transfer f b (apply_term b s_out) in
        Hashtbl.replace df_in label s_in;
        List.iter
          (fun pred -> if join_into df_out pred s_in then push pred)
          (Option.value ~default:[] (Hashtbl.find_opt (Lazy.force preds) label))
    done;
    { df_func = f; df_dir = dir; df_in; df_out; df_transfer = transfer;
      df_term = term }

  (** Fixpoint state at a block boundary; [None] when the block was
      never reached (bottom). *)
  let block_in (r : result) label = Hashtbl.find_opt r.df_in label

  let block_out (r : result) label = Hashtbl.find_opt r.df_out label

  (** State holding just before the instruction at [loc] in program
      order (for a backward analysis: the facts established by the rest
      of the program from [loc] on).  [None] when the enclosing block
      was never reached. *)
  let before (r : result) (loc : Sil.Loc.t) : L.t option =
    match
      List.find_opt
        (fun (b : Sil.Func.block) -> String.equal b.label loc.block)
        r.df_func.blocks
    with
    | None -> None
    | Some b -> (
      match r.df_dir with
      | Forward -> (
        match Hashtbl.find_opt r.df_in b.label with
        | None -> None
        | Some s ->
          let s = ref s in
          for idx = 0 to min loc.index (Array.length b.instrs) - 1 do
            s :=
              r.df_transfer (Sil.Loc.make r.df_func.fname b.label idx)
                b.instrs.(idx) !s
          done;
          Some !s)
      | Backward -> (
        match Hashtbl.find_opt r.df_out b.label with
        | None -> None
        | Some s ->
          let s = ref (match r.df_term with None -> s | Some t -> t b s) in
          for idx = Array.length b.instrs - 1 downto loc.index do
            s :=
              r.df_transfer (Sil.Loc.make r.df_func.fname b.label idx)
                b.instrs.(idx) !s
          done;
          Some !s))
end
