(** A generic worklist dataflow engine over a function's block CFG.

    The client supplies a join-semilattice and a transfer function; the
    engine iterates to a fixpoint forward or backward.  Bottom is
    represented by absence: a block without a recorded state was never
    reached along any analysed path. *)

module type LATTICE = sig
  type t

  val equal : t -> t -> bool
  val join : t -> t -> t
end

type direction = Forward | Backward

module Make (L : LATTICE) : sig
  type result = {
    df_func : Sil.Func.t;
    df_dir : direction;
    df_in : (string, L.t) Hashtbl.t;
    df_out : (string, L.t) Hashtbl.t;
    df_transfer : Sil.Loc.t -> Sil.Instr.t -> L.t -> L.t;
    df_term : (Sil.Func.block -> L.t -> L.t) option;
  }

  (** Run to fixpoint.  [term] is the terminator transfer — applied
      between the instruction flow and the block boundary on the
      control-flow side (forward: after the last instruction, before
      the successors; backward: to the successor join, before the last
      instruction).  Liveness needs it: a [Branch] condition or [Ret]
      operand is a use that no instruction carries.  Forward analyses
      may supply [edges], an edge-sensitive out-function from a block's
      exit state to per-successor states (how constant propagation
      folds branches on known conditions); omitted, every successor
      receives the block's exit state. *)
  val run :
    dir:direction ->
    init:L.t ->
    transfer:(Sil.Loc.t -> Sil.Instr.t -> L.t -> L.t) ->
    ?term:(Sil.Func.block -> L.t -> L.t) ->
    ?edges:(Sil.Func.block -> L.t -> (string * L.t) list) ->
    Sil.Func.t ->
    result

  (** Fixpoint state at a block's start/end in program order; [None]
      when the block was never reached (bottom). *)
  val block_in : result -> string -> L.t option

  val block_out : result -> string -> L.t option

  (** State holding just before the instruction at [loc] in program
      order; [None] when the enclosing block was never reached. *)
  val before : result -> Sil.Loc.t -> L.t option
end
