(* Static extraction of the syscall-flow digraph (the pre-filter spec):
   which sensitive syscall can trap immediately after which, and from
   which call-site class, on some benign execution of the instrumented
   program.

   The computation is the grammar-style FIRST/FOLLOW analysis lifted to
   the whole program.  Trap events are the *callsites* (direct calls to
   sensitive syscall stubs, plus indirect callsites when a sensitive
   stub is address-taken — the trap rip is the callsite address in both
   cases, so every event has a statically-known origin).  Per function
   we compute, by interprocedural fixpoint:

   - FIRST(f): the events that can be the first to trap during an
     invocation of f (through callees, transitively);
   - NULLABLE(f): f can return without trapping;
   - AFTER(f): the events that can trap immediately after f returns;

   and per event node, FOLLOW(n) = the events that can trap immediately
   after n — the automaton's successor set.  Everything over-approximates
   (extra edges never hurt soundness: in tiered mode a miss only falls
   through to the full monitor, and completeness keeps benign standalone
   runs alive); indirect calls are summarised by every address-taken,
   arity-matching app function, mirroring the reachability the linter
   uses. *)

module LSet = Sil.Loc.Set

(* One program point that can produce a trap event and/or transfer
   control into app callees.  Instructions that can do neither are not
   items. *)
type item = {
  it_loc : Sil.Loc.t;
  it_ev : bool;              (* may itself trap (event node at it_loc) *)
  it_sysno : int option;     (* Some n for a direct sensitive call *)
  it_callees : string list;  (* app functions possibly invoked *)
  it_null_self : bool;       (* may complete with no event regardless of callees *)
}

let extract (p : Bastion.Api.protected) : Defenses.Flow_prefilter.spec =
  let prog = p.inst.iprog in
  let sensitive = p.sensitive_numbers in
  let cg = Sil.Callgraph.build prog in
  let stub_sysno fname =
    match Hashtbl.find_opt prog.funcs fname with
    | Some f -> (
      match Sil.Func.syscall_number f with
      | Some n when List.mem n sensitive -> Some n
      | Some _ | None -> None)
    | None -> None
  in
  let is_app fname =
    match Hashtbl.find_opt prog.funcs fname with
    | Some f -> (
      match f.kind with
      | Sil.Func.App_code -> true
      | Sil.Func.Syscall_stub _ | Sil.Func.Intrinsic _ -> false)
    | None -> false
  in
  (* Sensitive numbers a benign indirect call can reach: those of
     address-taken sensitive stubs. *)
  let indirect_sysnos =
    Sil.Callgraph.Sset.fold
      (fun fname acc ->
        match stub_sysno fname with Some n -> n :: acc | None -> acc)
      cg.address_taken []
    |> List.sort_uniq compare
  in
  let indirect_may_trap = indirect_sysnos <> [] in
  (* Address-taken app functions by arity: the candidate targets of an
     indirect call (the linter's reachability uses the same cut). *)
  let taken_app_of_arity =
    let tbl : (int, string list) Hashtbl.t = Hashtbl.create 8 in
    Sil.Callgraph.Sset.iter
      (fun fname ->
        if is_app fname then begin
          let f = Hashtbl.find prog.funcs fname in
          let n = List.length f.params in
          let existing = Option.value ~default:[] (Hashtbl.find_opt tbl n) in
          Hashtbl.replace tbl n (fname :: existing)
        end)
      cg.address_taken;
    fun n -> Option.value ~default:[] (Hashtbl.find_opt tbl n)
  in
  let item_of (loc : Sil.Loc.t) (ins : Sil.Instr.t) : item option =
    match ins with
    | Sil.Instr.Call { target = Sil.Instr.Direct callee; _ } -> (
      match stub_sysno callee with
      | Some n ->
        Some
          { it_loc = loc; it_ev = true; it_sysno = Some n; it_callees = [];
            it_null_self = false }
      | None ->
        if is_app callee then
          Some
            { it_loc = loc; it_ev = false; it_sysno = None; it_callees = [ callee ];
              it_null_self = false }
        else None)
    | Sil.Instr.Call { target = Sil.Instr.Indirect _; args; _ } ->
      let cands = List.filter is_app (taken_app_of_arity (List.length args)) in
      if indirect_may_trap then
        Some
          { it_loc = loc; it_ev = true; it_sysno = None; it_callees = cands;
            it_null_self = true }
      else if cands <> [] then
        Some
          { it_loc = loc; it_ev = false; it_sysno = None; it_callees = cands;
            it_null_self = true }
      else None
    | Sil.Instr.Assign _ | Sil.Instr.Store _ -> None
  in
  (* Per reachable function: its reachable blocks, each with its item
     list, successor labels and whether it can leave the function. *)
  let funcs : (string, (string * item array * string list * bool) list) Hashtbl.t =
    Hashtbl.create 32
  in
  let visit_queue = Queue.create () in
  let visit fname =
    if is_app fname && not (Hashtbl.mem funcs fname) then begin
      Hashtbl.replace funcs fname [];
      Queue.push fname visit_queue
    end
  in
  visit prog.entry;
  while not (Queue.is_empty visit_queue) do
    let fname = Queue.pop visit_queue in
    let f = Hashtbl.find prog.funcs fname in
    let reach = Sil.Cfg.reachable_blocks f in
    let blocks =
      List.filter_map
        (fun (b : Sil.Func.block) ->
          if not (Sil.Cfg.Sset.mem b.label reach) then None
          else begin
            let items = ref [] in
            Array.iteri
              (fun idx ins ->
                match item_of (Sil.Loc.make fname b.label idx) ins with
                | Some it -> items := it :: !items
                | None -> ())
              b.instrs;
            let leaves =
              match b.term with
              | Sil.Instr.Ret _ | Sil.Instr.Halt -> true
              | Sil.Instr.Jump _ | Sil.Instr.Branch _ -> false
            in
            Some
              ( b.label,
                Array.of_list (List.rev !items),
                Sil.Cfg.successors b.term,
                leaves )
          end)
        f.blocks
    in
    Hashtbl.replace funcs fname blocks;
    List.iter
      (fun (_, items, _, _) ->
        Array.iter (fun it -> List.iter visit it.it_callees) items)
      blocks
  done;
  (* --- interprocedural FIRST / NULLABLE fixpoint -------------------- *)
  let ffirst : (string, LSet.t) Hashtbl.t = Hashtbl.create 32 in
  let fnull : (string, bool) Hashtbl.t = Hashtbl.create 32 in
  let bfirst : (string * string, LSet.t) Hashtbl.t = Hashtbl.create 64 in
  let brnull : (string * string, bool) Hashtbl.t = Hashtbl.create 64 in
  let get_set tbl key = Option.value ~default:LSet.empty (Hashtbl.find_opt tbl key) in
  let get_bool tbl key = Option.value ~default:false (Hashtbl.find_opt tbl key) in
  let item_first it =
    let base = if it.it_ev then LSet.singleton it.it_loc else LSet.empty in
    List.fold_left (fun acc g -> LSet.union acc (get_set ffirst g)) base it.it_callees
  in
  let item_null it =
    it.it_null_self || List.exists (fun g -> get_bool fnull g) it.it_callees
  in
  let changed = ref true in
  while !changed do
    changed := false;
    Hashtbl.iter
      (fun fname blocks ->
        List.iter
          (fun (label, items, succs, leaves) ->
            let tail_first =
              List.fold_left
                (fun acc s -> LSet.union acc (get_set bfirst (fname, s)))
                LSet.empty succs
            in
            let tail_null =
              leaves || List.exists (fun s -> get_bool brnull (fname, s)) succs
            in
            let first = ref LSet.empty and null = ref true in
            Array.iter
              (fun it ->
                if !null then first := LSet.union !first (item_first it);
                null := !null && item_null it)
              items;
            if !null then first := LSet.union !first tail_first;
            let bn = !null && tail_null in
            if not (LSet.equal !first (get_set bfirst (fname, label))) then begin
              Hashtbl.replace bfirst (fname, label) !first;
              changed := true
            end;
            if bn <> get_bool brnull (fname, label) then begin
              Hashtbl.replace brnull (fname, label) bn;
              changed := true
            end)
          blocks;
        let f = Hashtbl.find prog.funcs fname in
        let entry = (Sil.Func.entry_block f).label in
        let ef = get_set bfirst (fname, entry) in
        let en = get_bool brnull (fname, entry) in
        if not (LSet.equal ef (get_set ffirst fname)) then begin
          Hashtbl.replace ffirst fname ef;
          changed := true
        end;
        if en <> get_bool fnull fname then begin
          Hashtbl.replace fnull fname en;
          changed := true
        end)
      funcs
  done;
  (* --- seccomp-stage argument facts ---------------------------------- *)
  (* The flow-insensitive value engine lives in {!Copyprop} (one
     implementation, shared with the {!Sccp} refinement).  On top of the
     copy facts we layer the sparse-conditional upgrade: a register
     argument whose binding {!Sccp} proves a single benign constant in
     the original program becomes a checkable singleton even where the
     flow-insensitive join gave up.  Only [Arg_rules.Direct] positions
     qualify — for pointer arguments the register carries an address,
     not the value the binding describes.  Benign completeness is
     preserved: [Known c] means the argument is [c] on every benign
     execution reaching the site, so the emitted equality check never
     fires on a benign run (and in tiered mode a mismatch only falls
     through to the full monitor). *)
  let copyprop = Copyprop.analyze prog in
  let sccp = lazy (Sccp.analyze p.original) in
  let meta_by_loc : (Sil.Loc.t, Bastion.Instrument.callsite_meta) Hashtbl.t =
    Hashtbl.create 32
  in
  List.iter
    (fun (cm : Bastion.Instrument.callsite_meta) ->
      Hashtbl.replace meta_by_loc cm.cm_loc cm)
    p.inst.callsites;
  let sccp_constant (loc : Sil.Loc.t) ~(sysno : int) ~(pos : int) : int64 option =
    match Bastion.Arg_rules.kind ~sysno ~pos with
    | Bastion.Arg_rules.Sockaddr | Bastion.Arg_rules.Extended -> None
    | Bastion.Arg_rules.Direct -> (
      match Hashtbl.find_opt meta_by_loc loc with
      | None -> None
      | Some cm -> (
        match List.assoc_opt pos cm.cm_specs with
        | Some (Bastion.Arg_analysis.Bind_var v) -> (
          match
            Sccp.value_of_operand (Lazy.force sccp) cm.cm_orig (Sil.Operand.Var v)
          with
          | Sccp.Known c -> Some c
          | Sccp.Top -> None)
        | Some (Bastion.Arg_analysis.Bind_global g) ->
          Sccp.frozen_global (Lazy.force sccp) g
        | Some
            ( Bastion.Arg_analysis.Bind_const _ | Bastion.Arg_analysis.Bind_cstr _
            | Bastion.Arg_analysis.Bind_faddr _ )
        | None -> None))
  in
  let facts_of (loc : Sil.Loc.t) (sysno : int option) =
    let base = Copyprop.facts_of_call copyprop loc in
    match sysno with
    | None -> base
    | Some sysno ->
      List.map
        (fun ((pos, f) : int * Defenses.Flow_prefilter.arg_fact) ->
          match f with
          | Defenses.Flow_prefilter.Fact_opaque -> (
            match sccp_constant loc ~sysno ~pos with
            | Some c -> (pos, Defenses.Flow_prefilter.Fact_set [ c ])
            | None -> (pos, f))
          | Defenses.Flow_prefilter.Fact_set _ | Defenses.Flow_prefilter.Fact_free
            ->
            (pos, f))
        base
  in
  (* --- per-item "what traps next inside this function" -------------- *)
  (* after.(j) = (FIRST of the remainder past item j, remainder can
     reach return with no event); computed right-to-left once FIRST and
     NULLABLE have converged. *)
  let item_after : (string, (item * LSet.t * bool) list) Hashtbl.t = Hashtbl.create 32 in
  Hashtbl.iter
    (fun fname blocks ->
      let acc = ref [] in
      List.iter
        (fun (_, items, succs, leaves) ->
          let suf_first =
            ref
              (List.fold_left
                 (fun a s -> LSet.union a (get_set bfirst (fname, s)))
                 LSet.empty succs)
          in
          let suf_null =
            ref (leaves || List.exists (fun s -> get_bool brnull (fname, s)) succs)
          in
          for j = Array.length items - 1 downto 0 do
            let it = items.(j) in
            acc := (it, !suf_first, !suf_null) :: !acc;
            suf_first :=
              LSet.union (item_first it) (if item_null it then !suf_first else LSet.empty);
            suf_null := item_null it && !suf_null
          done)
        blocks;
      Hashtbl.replace item_after fname !acc)
    funcs;
  (* --- AFTER(f) fixpoint -------------------------------------------- *)
  let after : (string, LSet.t) Hashtbl.t = Hashtbl.create 32 in
  let changed = ref true in
  while !changed do
    changed := false;
    Hashtbl.iter
      (fun fname entries ->
        List.iter
          (fun ((it : item), suf_first, suf_null) ->
            if it.it_callees <> [] then begin
              let contribution =
                LSet.union suf_first
                  (if suf_null then get_set after fname else LSet.empty)
              in
              List.iter
                (fun g ->
                  let cur = get_set after g in
                  let next = LSet.union cur contribution in
                  if not (LSet.equal cur next) then begin
                    Hashtbl.replace after g next;
                    changed := true
                  end)
                it.it_callees
            end)
          entries)
      item_after
  done;
  (* --- FOLLOW per event node, and the spec --------------------------- *)
  let nodes = ref [] in
  Hashtbl.iter
    (fun fname entries ->
      List.iter
        (fun ((it : item), suf_first, suf_null) ->
          if it.it_ev then begin
            let succs =
              LSet.union suf_first
                (if suf_null then get_set after fname else LSet.empty)
            in
            let callee =
              match it.it_sysno with
              | Some n -> (
                match Sil.Prog.instr_at prog it.it_loc with
                | Sil.Instr.Call { target = Sil.Instr.Direct f; _ } -> f
                | _ -> Kernel.Syscalls.name n)
              | None -> "<indirect>"
            in
            nodes :=
              { Defenses.Flow_prefilter.ns_loc = it.it_loc; ns_callee = callee;
                ns_sysno = it.it_sysno; ns_facts = facts_of it.it_loc it.it_sysno;
                ns_succs = succs }
              :: !nodes
          end)
        entries)
    item_after;
  let sp_nodes =
    List.sort
      (fun (a : Defenses.Flow_prefilter.node_spec) b -> Sil.Loc.compare a.ns_loc b.ns_loc)
      !nodes
  in
  {
    Defenses.Flow_prefilter.sp_nodes;
    sp_starts = get_set ffirst prog.entry;
    sp_indirect_sysnos = indirect_sysnos;
  }

(* ------------------------------------------------------------------ *)
(* Deployment glue                                                     *)

(** Extract (or reuse) the spec and install it on a launched session:
    resolve node locations through the machine layout, attach the
    monitor's deploy-time argument knowledge, and hand the automaton to
    both the monitor and the process's seccomp filter. *)
let attach ?spec ~(mode : Kernel.Seccomp.flow_mode) (p : Bastion.Api.protected)
    ~(monitor : Bastion.Monitor.t) ~(process : Kernel.Process.t) :
    Kernel.Seccomp.flow_automaton =
  let spec = match spec with Some s -> s | None -> extract p in
  let fa =
    Defenses.Flow_prefilter.deploy spec ~layout:monitor.machine.layout ~mode
      ~info:(fun ~addr ~sysno -> Bastion.Monitor.prefilter_site_info monitor ~addr ~sysno)
  in
  Bastion.Monitor.install_prefilter monitor process fa;
  fa
