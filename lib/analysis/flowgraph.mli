(** Static extraction of the syscall-flow digraph: which sensitive
    syscall can trap immediately after which, from which call-site
    class, on some benign execution — the spec behind the seccomp-stage
    pre-filter ([Defenses.Flow_prefilter]).

    A grammar-style interprocedural FIRST/FOLLOW computation over the
    instrumented program: events are sensitive callsites (direct calls
    to sensitive stubs, plus indirect callsites when a sensitive stub
    is address-taken), FOLLOW sets become the automaton's edges, and
    FIRST of the entry function its start states.  Everything
    over-approximates: extra edges only cost precision, never
    soundness. *)

val extract : Bastion.Api.protected -> Defenses.Flow_prefilter.spec

(** [attach ?spec ~mode p ~monitor ~process] extracts (or reuses) the
    spec, resolves it against the session's layout and metadata, and
    installs the automaton on the monitor and the process's seccomp
    filter.  Returns the deployed automaton. *)
val attach :
  ?spec:Defenses.Flow_prefilter.spec ->
  mode:Kernel.Seccomp.flow_mode ->
  Bastion.Api.protected ->
  monitor:Bastion.Monitor.t ->
  process:Kernel.Process.t ->
  Kernel.Seccomp.flow_automaton
