(* The metadata-soundness linter: cross-check the emitted CT/CF/AI
   metadata and the instrumented module against the original program.

   BASTION's runtime guarantees are only as strong as the compiler pass
   that emits the metadata — a dropped ctx_write_mem or a missing
   callee->caller pair silently weakens a context with no benign-run
   symptom.  Each rule here states an invariant the instrumentation
   pass is supposed to establish and reports where it fails:

   - CF chains: every sensitive callsite reachable from the entry
     function has a closed callee->caller chain in [valid_callers],
     terminating at the entry function or at a legitimate
     indirect-call boundary; every indirect callsite is in the
     legitimate set.
   - Dead callsites: a sensitive callsite in unreachable code inflates
     the seccomp filter (the syscall stays TRACEd though no benign run
     can reach it).
   - AI coverage: every definition of a sensitive variable (and every
     store through a pointer that provably aims at a sensitive object)
     is immediately followed by its ctx_write_mem; every sensitive
     local is synced at function entry over its full extent; every
     argument position of a sensitive syscall plan is bound; per
     reaching-definitions, values copied into a bound variable come
     from tracked sources.
   - Call types: no address-taken function classified not-callable, no
     directly-called stub without the directly-callable bit — and the
     converse overbreadth directions, which weaken the filter.
   - Static AI results: stored pre-resolution records (plain, per-caller
     context, dead-site) and taint ranks must agree with a fresh
     {!Sccp} + {!Taint} run; a tainted slot must never be pre-resolved.
   - Dead sensitive stores (warning only): a definition of a sensitive
     variable no later use observes pays shadow-sync traffic for
     nothing — hygiene, not a soundness hole. *)

module I = Bastion.Instrument
module A = Bastion.Arg_analysis

type kind =
  | Dead_sensitive_callsite
  | Dead_flow_node
  | Broken_cf_chain
  | Missing_entry_sync
  | Uncovered_def
  | Untracked_source
  | Unbound_argument
  | Not_callable_misclass
  | Overbroad_calltype
  | Stale_pre_resolution
  | Malformed_section_table
  | Dead_sensitive_store

let kind_name = function
  | Dead_sensitive_callsite -> "dead-sensitive-callsite"
  | Dead_flow_node -> "dead-flow-node"
  | Broken_cf_chain -> "broken-cf-chain"
  | Missing_entry_sync -> "missing-entry-sync"
  | Uncovered_def -> "uncovered-def"
  | Untracked_source -> "untracked-source"
  | Unbound_argument -> "unbound-argument"
  | Not_callable_misclass -> "not-callable-misclass"
  | Overbroad_calltype -> "overbroad-calltype"
  | Stale_pre_resolution -> "stale-pre-resolution"
  | Malformed_section_table -> "malformed-section-table"
  | Dead_sensitive_store -> "dead-sensitive-store"

type severity = Warning | Error

(* Every soundness invariant is an error; the dead-store check is the
   one pure-hygiene rule (extra shadow syncs never deny a benign run). *)
let severity_of = function
  | Dead_sensitive_store -> Warning
  | Dead_sensitive_callsite | Dead_flow_node | Broken_cf_chain
  | Missing_entry_sync | Uncovered_def | Untracked_source | Unbound_argument
  | Not_callable_misclass | Overbroad_calltype | Stale_pre_resolution
  | Malformed_section_table ->
    Error

let severity_name = function Warning -> "warning" | Error -> "error"

type diag = {
  d_kind : kind;
  d_sev : severity;
  d_loc : Sil.Loc.t option;
  d_msg : string;
}

let errors (ds : diag list) = List.filter (fun d -> d.d_sev = Error) ds

let pp_diag fmt (d : diag) =
  match d.d_loc with
  | Some loc ->
    Format.fprintf fmt "%s %s: %s" (kind_name d.d_kind) (Sil.Loc.to_string loc)
      d.d_msg
  | None -> Format.fprintf fmt "%s: %s" (kind_name d.d_kind) d.d_msg

let is_app (f : Sil.Func.t) =
  match f.kind with
  | Sil.Func.App_code -> true
  | Sil.Func.Syscall_stub _ | Sil.Func.Intrinsic _ -> false

let intrinsic_names =
  [ I.write_mem_name; I.bind_mem_name; I.bind_const_name ]

(* ------------------------------------------------------------------ *)
(* Reachability over the instrumented program: direct edges plus
   indirect edges to every arity-matching address-taken function.      *)

let reachable_funcs (prog : Sil.Prog.t) (cg : Sil.Callgraph.t) :
    (string, unit) Hashtbl.t =
  let arity (f : Sil.Func.t) = List.length f.params in
  let indirect_matches n =
    Sil.Callgraph.Sset.fold
      (fun fname acc ->
        match Hashtbl.find_opt prog.funcs fname with
        | Some f when arity f = n -> fname :: acc
        | Some _ | None -> acc)
      cg.address_taken []
  in
  let reached = Hashtbl.create 32 in
  let work = Queue.create () in
  let visit fname =
    if not (Hashtbl.mem reached fname) then begin
      Hashtbl.replace reached fname ();
      Queue.push fname work
    end
  in
  visit prog.entry;
  while not (Queue.is_empty work) do
    let fname = Queue.pop work in
    match Hashtbl.find_opt prog.funcs fname with
    | None -> ()
    | Some f ->
      List.iter
        (fun ((_ : Sil.Loc.t), ins) ->
          match (ins : Sil.Instr.t) with
          | Call { target = Direct callee; _ } -> visit callee
          | Call { target = Indirect _; args; _ } ->
            List.iter visit (indirect_matches (List.length args))
          | Assign _ | Store _ -> ())
        (Sil.Func.instrs f)
  done;
  reached

(* ------------------------------------------------------------------ *)
(* The write_mem pair the instrumenter emits after a definition:
     Assign (tmp, Addr_of place); Call ctx_write_mem [Var tmp; Const n] *)

let write_pair_at (instrs : Sil.Instr.t array) i (place : Sil.Place.t) :
    int64 option =
  if i + 1 >= Array.length instrs then None
  else
    match (instrs.(i), instrs.(i + 1)) with
    | ( Sil.Instr.Assign (tmp, Sil.Instr.Addr_of p),
        Sil.Instr.Call { target = Direct callee; args = [ Var tmp'; Const n ]; _ } )
      when String.equal callee I.write_mem_name
           && tmp.Sil.Operand.vid = tmp'.Sil.Operand.vid
           && Sil.Place.equal p place ->
      Some n
    | _ -> None

let check (p : Bastion.Api.protected) : diag list =
  let diags = ref [] in
  let add ?loc kind fmt =
    Printf.ksprintf
      (fun msg ->
        diags :=
          { d_kind = kind; d_sev = severity_of kind; d_loc = loc; d_msg = msg }
          :: !diags)
      fmt
  in
  let iprog = p.inst.iprog in
  let icg = Sil.Callgraph.build iprog in
  let reached = reachable_funcs iprog icg in
  let arity_matching_indirect_exists =
    let arities =
      List.fold_left
        (fun acc (cs : Sil.Callgraph.callsite) ->
          let n = List.length cs.cs_args in
          if List.mem n acc then acc else n :: acc)
        [] icg.indirect_callsites
    in
    fun fname ->
      match Hashtbl.find_opt iprog.funcs fname with
      | Some f -> List.mem (List.length f.params) arities
      | None -> false
  in

  (* --- Dead sensitive callsites and CF chain closure --------------- *)
  Sil.Loc.Set.iter
    (fun (loc : Sil.Loc.t) ->
      if not (Hashtbl.mem reached loc.func) then
        add ~loc Dead_sensitive_callsite
          "sensitive callsite in %s, which is unreachable from %s (keeps the \
           syscall TRACEd in the filter for nothing)"
          loc.func iprog.entry
      else
        match Hashtbl.find_opt iprog.funcs loc.func with
        | None ->
          add ~loc Dead_sensitive_callsite "sensitive callsite in unknown function %s"
            loc.func
        | Some f ->
          if not (Sil.Cfg.Sset.mem loc.block (Sil.Cfg.reachable_blocks f)) then
            add ~loc Dead_sensitive_callsite
              "sensitive callsite in unreachable block %s of %s" loc.block loc.func
          else begin
            (* Replay the monitor's unwind statically: from the
               trapping function, every chain of valid caller sites
               must end at the entry function or at a function
               legitimately enterable through an indirect call. *)
            let visited = Hashtbl.create 8 in
            let closed = ref false in
            let frontier = Queue.create () in
            let push g =
              if not (Hashtbl.mem visited g) then begin
                Hashtbl.replace visited g ();
                Queue.push g frontier
              end
            in
            push loc.func;
            while (not !closed) && not (Queue.is_empty frontier) do
              let g = Queue.pop frontier in
              if String.equal g iprog.entry then closed := true
              else if
                Bastion.Calltype.is_indirect_target p.calltype g
                && arity_matching_indirect_exists g
              then closed := true
              else
                match Hashtbl.find_opt p.cfg.valid_callers g with
                | None -> ()
                | Some sites ->
                  Sil.Loc.Set.iter
                    (fun (site : Sil.Loc.t) -> push site.func)
                    sites
            done;
            if not !closed then
              add ~loc Broken_cf_chain
                "no callee->caller chain from %s reaches %s or an indirect-call \
                 boundary (a benign trap here would be denied)"
                loc.func iprog.entry
          end)
    p.cfg.sensitive_callsites;

  (* Every indirect callsite must be in the legitimate set: the CF
     unwind stops only at recorded indirect boundaries. *)
  List.iter
    (fun (cs : Sil.Callgraph.callsite) ->
      if not (Bastion.Calltype.is_legit_indirect_callsite p.calltype cs.cs_loc)
      then
        add ~loc:cs.cs_loc Broken_cf_chain
          "indirect callsite missing from the legitimate set (CF walks through \
           it would be denied)")
    icg.indirect_callsites;
  Sil.Loc.Set.iter
    (fun (loc : Sil.Loc.t) ->
      if
        not
          (List.exists
             (fun (cs : Sil.Callgraph.callsite) -> Sil.Loc.compare cs.cs_loc loc = 0)
             icg.indirect_callsites)
      then
        add ~loc Overbroad_calltype
          "legitimate-indirect entry does not name an indirect callsite")
    p.calltype.legit_indirect;

  (* --- Syscall-flow digraph connectivity --------------------------- *)
  (* Every node of the extracted syscall-flow automaton must be
     reachable from a start node along successor edges.  An orphaned
     node is metadata the seccomp-stage evaluator can never enter: the
     callsite it describes either cannot trap (dead weight in the
     automaton) or — worse — traps without an in-edge, so the tiered
     pre-filter would desync and fall through on every benign visit. *)
  (let fspec = Flowgraph.extract p in
   let freached = Hashtbl.create 16 in
   let work = Queue.create () in
   let node_at loc =
     List.find_opt
       (fun (n : Defenses.Flow_prefilter.node_spec) ->
         Sil.Loc.compare n.ns_loc loc = 0)
       fspec.sp_nodes
   in
   let visit loc =
     if not (Hashtbl.mem freached loc) then begin
       Hashtbl.replace freached loc ();
       Queue.push loc work
     end
   in
   Sil.Loc.Set.iter visit fspec.sp_starts;
   while not (Queue.is_empty work) do
     let loc = Queue.pop work in
     match node_at loc with
     | None -> ()
     | Some n -> Sil.Loc.Set.iter visit n.ns_succs
   done;
   List.iter
     (fun (n : Defenses.Flow_prefilter.node_spec) ->
       if not (Hashtbl.mem freached n.ns_loc) then
         add ~loc:n.ns_loc Dead_flow_node
           "syscall-flow node for %s is unreachable from the automaton's start \
            set (the pre-filter could never resolve a trap here)"
           n.ns_callee)
     fspec.sp_nodes);

  (* --- AI coverage over the instrumented module -------------------- *)
  List.iter
    (fun (fi : Sil.Func.t) ->
      if is_app fi then begin
        let sensitive_target (pl : Sil.Place.t) =
          match pl with
          | Lvar v -> A.is_sensitive_local p.analysis fi.fname v
          | Lglobal g -> A.is_sensitive_global p.analysis g
          | Lfield (_, s, fl) -> A.is_sensitive_field p.analysis s fl
          | Lindex _ | Lderef _ -> false
        in
        let base_points_to_sensitive (op : Sil.Operand.t) =
          match op with
          | Var v ->
            List.exists
              (fun def ->
                match def with
                | `Rvalue (Sil.Instr.Addr_of place) -> sensitive_target place
                | `Rvalue _ | `Stored _ | `Call_result -> false)
              (A.defs_of fi v)
          | Const _ | Cstr _ | Global _ | Func_addr _ | Null -> false
        in
        let sensitive_place (pl : Sil.Place.t) =
          match pl with
          | Lvar _ | Lglobal _ | Lfield _ -> sensitive_target pl
          | Lindex (base, _, _) | Lderef base -> base_points_to_sensitive base
        in
        (* Entry sync: every sensitive local's full extent. *)
        let entry = Sil.Func.entry_block fi in
        List.iter
          (fun ((v : Sil.Operand.var), ty) ->
            if A.is_sensitive_local p.analysis fi.fname v then begin
              let want = Int64.of_int (max 1 (Sil.Types.size_words iprog.structs ty)) in
              let found = ref false in
              Array.iteri
                (fun i _ ->
                  match write_pair_at entry.instrs i (Sil.Place.Lvar v) with
                  | Some n when Int64.equal n want -> found := true
                  | Some _ | None -> ())
                entry.instrs;
              if not !found then
                add
                  ~loc:(Sil.Loc.make fi.fname entry.label 0)
                  Missing_entry_sync
                  "sensitive local %s#%d of %s has no entry-block ctx_write_mem \
                   covering its %Ld word(s)"
                  v.vname v.vid fi.fname want
            end)
          (Sil.Func.all_vars fi);
        (* Def coverage: every def of a sensitive variable and every
           store to a sensitive place is followed by its pair. *)
        List.iter
          (fun (b : Sil.Func.block) ->
            Array.iteri
              (fun idx (ins : Sil.Instr.t) ->
                let loc = Sil.Loc.make fi.fname b.label idx in
                let require place what =
                  match write_pair_at b.instrs (idx + 1) place with
                  | Some _ -> ()
                  | None ->
                    add ~loc Uncovered_def
                      "%s is not followed by its ctx_write_mem (the shadow goes \
                       stale and a benign trap would be denied)"
                      what
                in
                match ins with
                | Call { target = Direct callee; _ }
                  when List.mem callee intrinsic_names ->
                  ()
                | Call { dst = Some v; _ }
                  when A.is_sensitive_local p.analysis fi.fname v ->
                  require (Sil.Place.Lvar v)
                    (Printf.sprintf "call result defining sensitive %s#%d" v.vname
                       v.vid)
                | Assign (v, _) when A.is_sensitive_local p.analysis fi.fname v ->
                  require (Sil.Place.Lvar v)
                    (Printf.sprintf "definition of sensitive %s#%d" v.vname v.vid)
                | Store (place, _) when sensitive_place place ->
                  require place "store to a sensitive place"
                | Assign _ | Store _ | Call _ -> ())
              b.instrs)
          fi.blocks
      end)
    (Sil.Prog.functions iprog);

  (* --- Bound arguments of sensitive syscall plans ------------------ *)
  List.iter
    (fun (plan : A.plan) ->
      match plan.pl_sysno with
      | None -> ()
      | Some _ -> (
        match Sil.Prog.instr_at p.original plan.pl_loc with
        | exception Invalid_argument _ ->
          add ~loc:plan.pl_loc Unbound_argument
            "syscall plan does not point at an instruction of the original program"
        | Sil.Instr.Call { args; _ } ->
          List.iteri
            (fun pos _ ->
              if not (List.mem_assoc pos plan.pl_args) then
                add ~loc:plan.pl_loc Unbound_argument
                  "argument %d of %s is not bound (the monitor would find it \
                   untraced)"
                  pos plan.pl_callee)
            args
        | Sil.Instr.Assign _ | Sil.Instr.Store _ ->
          add ~loc:plan.pl_loc Unbound_argument
            "syscall plan does not point at a call instruction"))
    (A.all_plans p.analysis);

  (* --- Reaching definitions: sources feeding bound variables ------- *)
  let rd_cache : (string, Reaching_defs.t) Hashtbl.t = Hashtbl.create 8 in
  let rd_of (f : Sil.Func.t) =
    match Hashtbl.find_opt rd_cache f.fname with
    | Some rd -> rd
    | None ->
      let rd = Reaching_defs.compute f in
      Hashtbl.replace rd_cache f.fname rd;
      rd
  in
  List.iter
    (fun (plan : A.plan) ->
      if plan.pl_sysno <> None then
        match Hashtbl.find_opt p.original.funcs plan.pl_loc.func with
        | None -> ()
        | Some f ->
          List.iter
            (fun ((pos, binding) : int * A.binding) ->
              match binding with
              | A.Bind_var v ->
                let rd = rd_of f in
                Sil.Loc.Set.iter
                  (fun (def : Sil.Loc.t) ->
                    if Reaching_defs.is_entry_def def then begin
                      (* A parameter's incoming value: every direct
                         caller must bind the corresponding position of
                         its own call. *)
                      match A.param_index f v with
                      | None -> ()
                      | Some pi ->
                        List.iter
                          (fun (site : Sil.Loc.t) ->
                            let covered =
                              match A.plan_at p.analysis site with
                              | Some caller_plan ->
                                List.mem_assoc pi caller_plan.pl_args
                              | None -> false
                            in
                            if not covered then
                              add ~loc:site Untracked_source
                                "caller of %s does not bind position %d feeding \
                                 sensitive parameter %s#%d"
                                f.fname pi v.vname v.vid)
                          (Sil.Callgraph.direct_callers_of p.original_callgraph
                             f.fname)
                    end
                    else
                      match Sil.Prog.instr_at p.original def with
                      | exception Invalid_argument _ -> ()
                      | Sil.Instr.Assign (_, Sil.Instr.Use (Var w))
                      | Sil.Instr.Store (_, Var w) ->
                        if not (A.is_sensitive_local p.analysis f.fname w) then
                          add ~loc:def Untracked_source
                            "definition feeding bound argument %d of %s copies \
                             from untracked %s#%d"
                            pos plan.pl_callee w.vname w.vid
                      | _ -> ())
                  (Reaching_defs.reaching rd plan.pl_loc v)
              | A.Bind_const _ | A.Bind_cstr _ | A.Bind_faddr _ | A.Bind_global _
                ->
                ())
            plan.pl_args)
    (A.all_plans p.analysis);

  (* --- Call-type classification ------------------------------------ *)
  List.iter
    (fun (stub : Sil.Func.t) ->
      match Sil.Func.syscall_number stub with
      | None -> ()
      | Some nr ->
        let ct = Bastion.Calltype.call_type p.calltype nr in
        let direct = Sil.Callgraph.direct_callers_of icg stub.fname <> [] in
        let taken = Sil.Callgraph.is_address_taken icg stub.fname in
        if direct && not ct.directly then
          add Not_callable_misclass
            "%s is called directly but classified not directly-callable (seccomp \
             would kill a benign call)"
            stub.fname;
        if taken && not ct.indirectly then
          add Not_callable_misclass
            "%s is address-taken but classified not indirectly-callable" stub.fname;
        if ct.directly && not direct then
          add Overbroad_calltype
            "%s is classified directly-callable but never called directly \
             (inflates the filter)"
            stub.fname;
        if ct.indirectly && not taken then
          add Overbroad_calltype
            "%s is classified indirectly-callable but its address is never taken"
            stub.fname)
    (Sil.Prog.syscall_stubs iprog);
  Sil.Callgraph.Sset.iter
    (fun fname ->
      if not (Bastion.Calltype.is_indirect_target p.calltype fname) then
        add Not_callable_misclass
          "address-taken function %s is not an indirect target (indirect calls \
           to it would be denied)"
          fname)
    icg.address_taken;
  Hashtbl.iter
    (fun fname () ->
      if not (Sil.Callgraph.is_address_taken icg fname) then
        add Overbroad_calltype
          "%s is an indirect target but its address is never taken (weakens the \
           CF termination check)"
          fname)
    p.calltype.indirect_targets;

  (* --- Stored static AI results ------------------------------------ *)
  (* Plain, per-caller-context and dead-site pre-resolution plus taint
     ranks, validated against a fresh {!Sccp} + {!Taint} run.  Sccp
     refines plain constant propagation, so everything the old check
     accepted stays accepted; the taint cross-check is the veto's
     enforcement point — a record pre-resolving an attacker-reachable
     slot is a soundness hole, not a staleness nit. *)
  let has_static =
    Hashtbl.length p.pre_resolved > 0
    || Hashtbl.length p.pre_resolved_ctx > 0
    || Hashtbl.length p.slot_ranks > 0
    || Hashtbl.length p.dead_sites > 0
  in
  if has_static then begin
    let sccp = Sccp.analyze p.original in
    let taint = lazy (Taint.analyze p.original) in
    let meta_of id =
      List.find_opt (fun (cm : I.callsite_meta) -> cm.cm_id = id) p.inst.callsites
    in
    let slot_tainted (cm : I.callsite_meta) pos =
      match List.assoc_opt pos cm.cm_specs with
      | Some (A.Bind_var v) ->
        Taint.var_tainted_at (Lazy.force taint) cm.cm_orig v
      | Some (A.Bind_global g) -> Taint.global_tainted (Lazy.force taint) g
      | Some (A.Bind_const _ | A.Bind_cstr _ | A.Bind_faddr _) | None -> false
    in
    Hashtbl.iter
      (fun id pres ->
        match meta_of id with
        | None ->
          add Stale_pre_resolution "pre-resolved entry for unknown callsite id %d" id
        | Some cm ->
          List.iter
            (fun ((pos, c) : int * int64) ->
              let stale fmt = add ~loc:cm.cm_orig Stale_pre_resolution fmt in
              if slot_tainted cm pos then
                stale
                  "position %d of %s is pre-resolved but carries user-controlled \
                   data (the taint veto must keep it on the full path)"
                  pos cm.cm_callee;
              match List.assoc_opt pos cm.cm_specs with
              | None -> stale "pre-resolved position %d of %s has no binding" pos
                          cm.cm_callee
              | Some (A.Bind_var v) -> (
                match Sccp.value_of_operand sccp cm.cm_orig (Var v) with
                | Sccp.Known c' when Int64.equal c c' -> ()
                | Sccp.Known c' ->
                  stale
                    "pre-resolved constant %Ld for position %d of %s disagrees \
                     with the analysis (%Ld)"
                    c pos cm.cm_callee c'
                | Sccp.Top ->
                  stale
                    "position %d of %s is pre-resolved to %Ld but is not provably \
                     constant"
                    pos cm.cm_callee c)
              | Some (A.Bind_global g) -> (
                match Sccp.frozen_global sccp g with
                | Some c' when Int64.equal c c' -> ()
                | Some _ | None ->
                  stale
                    "position %d of %s is pre-resolved to %Ld but global %s is \
                     not frozen at that value"
                    pos cm.cm_callee c g)
              | Some (A.Bind_const _ | A.Bind_cstr _ | A.Bind_faddr _) ->
                stale
                  "position %d of %s is pre-resolved but already verified as a \
                   constant spec"
                  pos cm.cm_callee)
            pres)
      p.pre_resolved;
    (* Context records: the binding variable must still be the wrapper's
       untouched parameter, the wrapper must not be enterable
       indirectly, and each recorded caller must still pass the stored
       constant at a live callsite of its own. *)
    Hashtbl.iter
      (fun id triples ->
        match meta_of id with
        | None ->
          add Stale_pre_resolution
            "context pre-resolved entry for unknown callsite id %d" id
        | Some cm ->
          List.iter
            (fun ((pos, caller_id, c) : int * int * int64) ->
              let stale fmt = add ~loc:cm.cm_orig Stale_pre_resolution fmt in
              if slot_tainted cm pos then
                stale
                  "position %d of %s is context-pre-resolved but carries \
                   user-controlled data (the taint veto must keep it on the \
                   full path)"
                  pos cm.cm_callee;
              match List.assoc_opt pos cm.cm_specs with
              | Some (A.Bind_var v) -> (
                let fname = cm.cm_orig.func in
                let param_index =
                  match Hashtbl.find_opt p.original.funcs fname with
                  | None -> None
                  | Some f ->
                    List.find_index
                      (fun ((q, _) : Sil.Operand.var * _) -> q.vid = v.vid)
                      f.params
                in
                match param_index with
                | None ->
                  stale
                    "position %d of %s is context-pre-resolved but %s#%d is not \
                     a parameter of %s"
                    pos cm.cm_callee v.vname v.vid fname
                | Some i ->
                  if Sil.Callgraph.Sset.mem fname p.original_callgraph.address_taken
                  then
                    stale
                      "context pre-resolution of %s, but %s can be entered \
                       through an indirect call (the caller frame is not \
                       trustworthy)"
                      cm.cm_callee fname;
                  if Sccp.var_address_taken sccp ~fname ~vid:v.vid then
                    stale
                      "context pre-resolution over %s#%d, whose address is taken"
                      v.vname v.vid;
                  if not (Sccp.only_entry_def_reaches sccp cm.cm_orig v) then
                    stale
                      "context pre-resolution over %s#%d, which is redefined \
                       between entry and the callsite"
                      v.vname v.vid;
                  (match meta_of caller_id with
                  | None ->
                    stale "context caller id %d has no callsite metadata" caller_id
                  | Some caller_cm -> (
                    match Sil.Prog.instr_at p.original caller_cm.cm_orig with
                    | exception Invalid_argument _ ->
                      stale
                        "context caller id %d does not point at an instruction \
                         of the original program"
                        caller_id
                    | Sil.Instr.Call { target = Direct callee; args; _ }
                      when String.equal callee fname -> (
                      match List.nth_opt args i with
                      | None ->
                        stale
                          "context caller id %d passes no argument at position \
                           %d of %s"
                          caller_id i fname
                      | Some arg -> (
                        match
                          Sccp.value_of_operand sccp caller_cm.cm_orig arg
                        with
                        | Sccp.Known c' when Int64.equal c c' -> ()
                        | Sccp.Known c' ->
                          stale
                            "context constant %Ld for position %d of %s \
                             disagrees with caller id %d's argument (%Ld)"
                            c pos cm.cm_callee caller_id c'
                        | Sccp.Top ->
                          stale
                            "context constant %Ld for position %d of %s, but \
                             caller id %d's argument is not provably constant"
                            c pos cm.cm_callee caller_id))
                    | _ ->
                      stale
                        "context caller id %d is not a direct call to %s"
                        caller_id fname)))
              | Some (A.Bind_global _ | A.Bind_const _ | A.Bind_cstr _
                     | A.Bind_faddr _)
              | None ->
                stale
                  "context-pre-resolved position %d of %s has no variable \
                   binding"
                  pos cm.cm_callee)
            triples)
      p.pre_resolved_ctx;
    (* Dead-site records: the monitor denies ANY trap at these
       callsites, so a record over a feasibly-reachable site would kill
       a benign run — the strictest staleness there is. *)
    Hashtbl.iter
      (fun id () ->
        match meta_of id with
        | None ->
          add Stale_pre_resolution "dead-site entry for unknown callsite id %d" id
        | Some cm ->
          if not (Sccp.site_dead sccp cm.cm_orig) then
            add ~loc:cm.cm_orig Stale_pre_resolution
              "callsite recorded dead is reachable along a feasible path (a \
               benign trap here would be denied)")
      p.dead_sites;
    (* Taint ranks: a slot marked untainted rides the monitor's
       single-probe cheap path, so the fresh analysis must agree; and a
       tainted rank must never coexist with a pre-resolution of the
       same slot. *)
    Hashtbl.iter
      (fun id ranks ->
        match meta_of id with
        | None ->
          add Stale_pre_resolution "slot-rank entry for unknown callsite id %d" id
        | Some cm ->
          List.iter
            (fun ((pos, tainted) : int * bool) ->
              let stale fmt = add ~loc:cm.cm_orig Stale_pre_resolution fmt in
              if tainted then begin
                let plain =
                  match Hashtbl.find_opt p.pre_resolved id with
                  | Some l -> List.mem_assoc pos l
                  | None -> false
                in
                let ctx =
                  match Hashtbl.find_opt p.pre_resolved_ctx id with
                  | Some l ->
                    List.exists (fun ((q, _, _) : int * int * int64) -> q = pos) l
                  | None -> false
                in
                if plain || ctx then
                  stale
                    "position %d of %s is ranked tainted yet pre-resolved (the \
                     taint veto is broken)"
                    pos cm.cm_callee
              end
              else if slot_tainted cm pos then
                stale
                  "position %d of %s is ranked untainted but carries \
                   user-controlled data (the cheap path would under-check it)"
                  pos cm.cm_callee)
            ranks)
      p.slot_ranks
  end;

  (* --- Dead sensitive stores (hygiene, warning-level) --------------- *)
  (* A definition of a sensitive variable that no later use can observe
     still drags a ctx_write_mem pair through the instrumenter: shadow
     traffic, metadata bytes and attack surface for a value the program
     itself has already abandoned.  Never a soundness hole — the shadow
     merely tracks a dead value — hence the only warning-level rule. *)
  List.iter
    (fun (f : Sil.Func.t) ->
      if is_app f then
        List.iter
          (fun (loc : Sil.Loc.t) ->
            match Sil.Prog.instr_at p.original loc with
            | exception Invalid_argument _ -> ()
            | ins -> (
              match Sil.Instr.def ins with
              | Some v when A.is_sensitive_local p.analysis f.fname v ->
                add ~loc Dead_sensitive_store
                  "store to sensitive %s#%d is never read before being \
                   clobbered or dropped (its shadow sync buys nothing)"
                  v.vname v.vid
              | Some _ | None -> ()))
          (Liveness.dead_stores (Liveness.compute f)))
    (Sil.Prog.functions p.original);

  List.rev !diags

(* ------------------------------------------------------------------ *)
(* The v3 section table                                                *)

(* Validate a metadata file's self-describing section table — the
   properties the parser deliberately does NOT enforce.  The parser's
   job is forward compatibility: it skips unknown optional sections
   and accepts any subset of the known ones.  The linter's job is
   soundness of a file about to be deployed: a known section carrying
   the wrong required/optional flag invites a skipping reader to drop
   (or choke on) records it must not, a duplicated section silently
   shadows records, and a missing required section deploys with a
   silently weakened context.  Parse failures surface as positioned
   diagnostics rather than exceptions.  v2 files carry no section
   table; there is nothing to validate. *)
let check_metadata_text (text : string) : diag list =
  let diag msg =
    { d_kind = Malformed_section_table; d_sev = Error; d_loc = None; d_msg = msg }
  in
  let lines = Array.of_list (String.split_on_char '\n' text) in
  if Array.length lines = 0 || String.length text = 0 then
    [ diag "empty metadata text" ]
  else if String.equal lines.(0) Bastion.Metadata_io.header_v2 then []
  else
    match Bastion.Metadata_io.parse text with
    | exception Bastion.Metadata_io.Parse_error (ln, msg) ->
      [ diag (Printf.sprintf "line %d: %s" ln msg) ]
    | _ ->
      let seen = Hashtbl.create 8 in
      let ds = ref [] in
      Array.iteri
        (fun i line ->
          let ln = i + 1 in
          if String.starts_with ~prefix:"section " line then
            try
              Scanf.sscanf line "section %s %d %s%!" (fun name _count flag ->
                  if Hashtbl.mem seen name then
                    ds :=
                      diag (Printf.sprintf "line %d: duplicate section %S" ln name)
                      :: !ds
                  else Hashtbl.replace seen name ();
                  match List.assoc_opt name Bastion.Metadata_io.known_sections with
                  | Some `Required when not (String.equal flag "required") ->
                    ds :=
                      diag
                        (Printf.sprintf
                           "line %d: section %S must be flagged required (a \
                            skipping reader would drop soundness-critical \
                            records)"
                           ln name)
                      :: !ds
                  | Some `Optional when not (String.equal flag "optional") ->
                    ds :=
                      diag
                        (Printf.sprintf
                           "line %d: section %S must be flagged optional (a \
                            reader without it still enforces soundly)"
                           ln name)
                      :: !ds
                  | Some _ | None -> ())
            with Scanf.Scan_failure _ | Failure _ | End_of_file ->
              (* the parser accepted the file, so this cannot happen; keep
                 the scan total anyway *)
              ())
        lines;
      List.iter
        (fun (name, flag) ->
          match flag with
          | `Required when not (Hashtbl.mem seen name) ->
            ds := diag (Printf.sprintf "missing required section %S" name) :: !ds
          | `Required | `Optional -> ())
        Bastion.Metadata_io.known_sections;
      List.rev !ds

(* ------------------------------------------------------------------ *)
(* The library gate                                                    *)

(* Warnings (hygiene) never block [protect ~validate:true]; only a
   soundness error does. *)
let register_api_validator () =
  Bastion.Api.set_validator
    (Some (fun p -> List.map (Format.asprintf "%a" pp_diag) (errors (check p))))
