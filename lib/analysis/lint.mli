(** The metadata-soundness linter: cross-check the CT/CF/AI metadata and
    the instrumented module against the original program, reporting
    invariant violations as structured diagnostics.  A clean report
    means every sensitive callsite reachable from the entry function
    has a closed control-flow chain, every definition feeding a
    sensitive variable is covered by emitted instrumentation, the
    call-type classification is exact in both directions, and any
    stored constant-argument pre-resolution agrees with a fresh
    analysis. *)

type kind =
  | Dead_sensitive_callsite
      (** sensitive callsite unreachable from the entry function; it
          inflates the seccomp filter for nothing *)
  | Dead_flow_node
      (** a node of the extracted syscall-flow digraph is unreachable
          from the automaton's start set; the tiered pre-filter could
          never resolve a trap at that callsite *)
  | Broken_cf_chain
      (** no callee->caller chain reaches the entry function or a
          legitimate indirect-call boundary; a benign trap would be
          denied *)
  | Missing_entry_sync
      (** a sensitive local lacks its entry-block ctx_write_mem *)
  | Uncovered_def
      (** a definition of a sensitive variable is not followed by its
          ctx_write_mem; the shadow goes stale *)
  | Untracked_source
      (** per reaching-definitions, a value feeding a bound argument
          comes from an untracked variable or an unbound caller *)
  | Unbound_argument
      (** an argument position of a sensitive syscall has no binding *)
  | Not_callable_misclass
      (** classification too strict: a used or address-taken function
          would be killed or denied on a benign run *)
  | Overbroad_calltype
      (** classification too permissive: the filter or the CF
          termination check is weaker than the program requires *)
  | Stale_pre_resolution
      (** a stored static AI record — plain, per-caller-context or
          dead-site pre-resolution, or a taint rank — disagrees with a
          fresh {!Sccp} + {!Taint} run; includes any pre-resolution of
          an attacker-tainted slot *)
  | Malformed_section_table
      (** a metadata v3 section table violates deployment soundness: a
          known section carries the wrong required/optional flag, a
          section is duplicated, a required section is missing, or the
          file does not parse at all *)
  | Dead_sensitive_store
      (** warning: a definition of a sensitive variable no later use
          observes — its shadow sync is pure overhead, never a
          soundness hole *)

val kind_name : kind -> string

type severity = Warning | Error

(** {!Dead_sensitive_store} is the only warning; every other kind marks
    a soundness invariant and is an error. *)
val severity_of : kind -> severity

val severity_name : severity -> string

type diag = {
  d_kind : kind;
  d_sev : severity;          (** [severity_of d_kind] *)
  d_loc : Sil.Loc.t option;  (** anchor position, when one exists *)
  d_msg : string;
}

(** The error-severity subset, in order. *)
val errors : diag list -> diag list

val pp_diag : Format.formatter -> diag -> unit

(** Run every check; diagnostics come back in deterministic order. *)
val check : Bastion.Api.protected -> diag list

(** Validate a metadata file's v3 section table — the deployment
    properties the (deliberately forward-compatible) parser does not
    enforce: correct required/optional flags on known sections, no
    duplicate sections, no missing required section.  A parse failure
    becomes one positioned diagnostic.  v2 files carry no section
    table and always come back clean.  All diagnostics are
    {!Malformed_section_table} errors, in line order. *)
val check_metadata_text : string -> diag list

(** Register {!check} as the validator behind
    [Bastion.Api.protect ~validate:true]: each error-severity
    diagnostic becomes one rendered message of the raised
    [Validation_failed] (warnings never block).  Idempotent; the
    workload drivers and the CLI call it at module initialisation. *)
val register_api_validator : unit -> unit
