(* Backward liveness over a function's block CFG: the third
   Dataflow.Make instance (after reaching definitions and constant
   propagation).

   live_before(i) = (live_after(i) - def(i)) ∪ uses(i), joined by union
   across successors.  Terminators carry uses that no instruction does
   — a Branch condition, a Ret operand — so this is the analysis that
   needs the engine's terminator transfer. *)

module SS = Set.Make (String)

module L = struct
  type t = SS.t

  let equal = SS.equal
  let join = SS.union
end

module Df = Dataflow.Make (L)

type t = { lv_func : Sil.Func.t; lv_res : Df.result }

let func (t : t) = t.lv_func

let add_operand_vars acc op =
  List.fold_left
    (fun acc (v : Sil.Operand.var) -> SS.add v.vname acc)
    acc (Sil.Operand.vars op)

let instr_uses (ins : Sil.Instr.t) =
  List.fold_left add_operand_vars SS.empty (Sil.Instr.operands ins)

let term_uses (term : Sil.Instr.terminator) =
  match term with
  | Sil.Instr.Branch (cond, _, _) -> add_operand_vars SS.empty cond
  | Sil.Instr.Ret (Some op) -> add_operand_vars SS.empty op
  | Sil.Instr.Ret None | Sil.Instr.Halt | Sil.Instr.Jump _ -> SS.empty

let transfer _loc ins after =
  let kill =
    match Sil.Instr.def ins with
    | Some v -> SS.singleton v.vname
    | None -> SS.empty
  in
  SS.union (SS.diff after kill) (instr_uses ins)

let compute (f : Sil.Func.t) : t =
  let res =
    Df.run ~dir:Dataflow.Backward ~init:SS.empty ~transfer
      ~term:(fun b s -> SS.union s (term_uses b.term))
      f
  in
  { lv_func = f; lv_res = res }

let live_in (t : t) label =
  Option.value ~default:SS.empty (Df.block_in t.lv_res label)

let live_out (t : t) label =
  Option.value ~default:SS.empty (Df.block_out t.lv_res label)

let live_before (t : t) loc =
  Option.value ~default:SS.empty (Df.before t.lv_res loc)

let live_after (t : t) (loc : Sil.Loc.t) =
  live_before t { loc with index = loc.index + 1 }

(* A def whose value no later use can observe.  Blocks the backward
   analysis never reached — blocks that cannot reach an exit, where
   liveness is bottom — are skipped: reporting every def along a
   non-terminating path as a dead store would drown the signal. *)
let dead_stores (t : t) : Sil.Loc.t list =
  List.concat_map
    (fun (b : Sil.Func.block) ->
      if Df.block_out t.lv_res b.label = None then []
      else
        List.concat
          (List.mapi
             (fun idx ins ->
               match Sil.Instr.def ins with
               | Some v
                 when not
                        (SS.mem v.vname
                           (live_after t (Sil.Loc.make t.lv_func.fname b.label idx)))
                 -> [ Sil.Loc.make t.lv_func.fname b.label idx ]
               | _ -> [])
             (Array.to_list b.instrs)))
    t.lv_func.blocks
