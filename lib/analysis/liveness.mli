(** Backward liveness over a function's block CFG: the third
    {!Dataflow.Make} instance.

    live_before(i) = (live_after(i) − def(i)) ∪ uses(i), joined by
    union across successors.  Terminator operands count as uses: a
    [Branch] condition and a [Ret] operand keep their variables live
    even though no instruction reads them — that is what the engine's
    terminator transfer exists for. *)

module SS : Set.S with type elt = string

type t

val compute : Sil.Func.t -> t

(** The analysed function. *)
val func : t -> Sil.Func.t

(** Variables live at the block's start / end (program order); empty
    for blocks the backward analysis never reached. *)
val live_in : t -> string -> SS.t

val live_out : t -> string -> SS.t

(** Variables live just before / just after the instruction at [loc];
    the after-point of a block's last instruction already includes the
    terminator's uses. *)
val live_before : t -> Sil.Loc.t -> SS.t

val live_after : t -> Sil.Loc.t -> SS.t

(** Defs whose value no later use (instruction or terminator) can
    observe, in program order.  Blocks that cannot reach an exit
    (backward-bottom) are skipped rather than reported wholesale. *)
val dead_stores : t -> Sil.Loc.t list

(** The uses a terminator carries ([Branch] condition, [Ret] operand). *)
val term_uses : Sil.Instr.terminator -> SS.t
