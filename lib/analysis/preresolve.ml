(* Constant-argument pre-resolution: run interprocedural constant
   propagation over the ORIGINAL program and record, per instrumented
   callsite, the argument positions whose value is provably the same
   constant along every path.  The monitor verifies those AI slots by
   comparing against the stored constant directly — same denial
   semantics, no binding-table or shadow-memory probe. *)

module I = Bastion.Instrument
module A = Bastion.Arg_analysis

let resolve_spec cp (cm : I.callsite_meta) ((pos, b) : int * A.binding) :
    (int * int64) option =
  match b with
  | A.Bind_var v -> (
    match Constprop.value_of_operand cp cm.cm_orig (Sil.Operand.Var v) with
    | Constprop.Known c -> Some (pos, c)
    | Constprop.Top -> None)
  | A.Bind_global g -> (
    match Constprop.frozen_global cp g with
    | Some c -> Some (pos, c)
    | None -> None)
  (* Constant specs are already verified without a probe. *)
  | A.Bind_const _ | A.Bind_cstr _ | A.Bind_faddr _ -> None

let enrich (p : Bastion.Api.protected) : Bastion.Api.protected =
  let cp = Constprop.analyze p.original in
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (cm : I.callsite_meta) ->
      if cm.cm_sysno <> None then
        match List.filter_map (resolve_spec cp cm) cm.cm_specs with
        | [] -> ()
        | resolved -> Hashtbl.replace tbl cm.cm_id resolved)
    p.inst.callsites;
  (* Fresh record: [protect] results are shared through caches, so the
     default bundle must never be mutated in place. *)
  { p with pre_resolved = tbl }

let resolved_slots (p : Bastion.Api.protected) : int =
  Hashtbl.fold (fun _ l acc -> acc + List.length l) p.pre_resolved 0
