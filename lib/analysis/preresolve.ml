(* Static pre-resolution of AI slots: run the sparse conditional
   constant analysis ({!Sccp}) and the taint analysis ({!Taint}) over
   the ORIGINAL program and record, per instrumented callsite, what the
   monitor can verify without shadow probes:

   - plain pre-resolution: the argument is provably the same constant
     along every benign path — compare against the stored constant;
   - context (1-CFA) pre-resolution: the argument is the enclosing
     wrapper's parameter, unmodified since entry, and every live direct
     caller passes a provable constant — store one constant per caller
     callsite, matched at trap time against the caller frame;
   - dead sites: the callsite is provably unreachable on benign
     executions — any trap there is denied outright;
   - taint ranks: every remaining memory slot is ranked by attacker
     reach; untainted slots verify through the single-probe cheap path.

   The taint veto is unconditional: a slot whose value may carry
   user-controlled data is never pre-resolved, even if the constant
   judgement would allow it — the two analyses agreeing is the
   criterion, not either alone. *)

module I = Bastion.Instrument
module A = Bastion.Arg_analysis

(* Per-caller constants for a parameter-bound slot.  The binding
   variable must be parameter [i] still holding the incoming value
   (only the entry pseudo-def reaches, address never taken), the
   wrapper must not be callable indirectly, and every live direct
   caller must both resolve the matching argument to a constant and
   carry callsite metadata of its own (the runtime matches the caller
   frame's metadata entry).  Dead callers are ignored: no benign trap
   has them on the stack, and an attacker forging one falls back to the
   full dynamic path. *)
let resolve_ctx (sccp : Sccp.t) (id_of_orig : (Sil.Loc.t, int) Hashtbl.t)
    (prog : Sil.Prog.t) (cg : Sil.Callgraph.t) (cm : I.callsite_meta)
    ~(pos : int) (v : Sil.Operand.var) : (int * int * int64) list option =
  let fname = cm.cm_orig.func in
  match Hashtbl.find_opt prog.funcs fname with
  | None -> None
  | Some f -> (
    match
      List.find_index
        (fun ((p, _) : Sil.Operand.var * _) -> p.vid = v.vid)
        f.params
    with
    | None -> None
    | Some i ->
      if Sil.Callgraph.Sset.mem fname cg.address_taken then None
      else if Sccp.var_address_taken sccp ~fname ~vid:v.vid then None
      else if not (Sccp.only_entry_def_reaches sccp cm.cm_orig v) then None
      else begin
        let live_callers =
          List.filter_map
            (fun ((loc, _dst, target, args) :
                   Sil.Loc.t * _ * Sil.Instr.call_target * Sil.Operand.t list) ->
              match target with
              | Sil.Instr.Direct callee when String.equal callee fname ->
                if Sccp.site_dead sccp loc then None else Some (loc, args)
              | Sil.Instr.Direct _ | Sil.Instr.Indirect _ -> None)
            (Sil.Prog.calls prog)
        in
        if live_callers = [] then None
        else
          let resolve_one (loc, args) =
            match List.nth_opt args i with
            | None -> None
            | Some arg -> (
              match Sccp.value_of_operand sccp loc arg with
              | Sccp.Top -> None
              | Sccp.Known c -> (
                match Hashtbl.find_opt id_of_orig loc with
                | None -> None
                | Some caller_id -> Some (pos, caller_id, c)))
          in
          let resolved = List.map resolve_one live_callers in
          if List.exists Option.is_none resolved then None
          else Some (List.filter_map Fun.id resolved)
      end)

(** Enrich a protected bundle with every static AI judgement.  Returns
    a fresh record: [protect] results are shared through caches, so the
    default bundle must never be mutated in place. *)
let enrich (p : Bastion.Api.protected) : Bastion.Api.protected =
  let sccp = Sccp.analyze p.original in
  let taint = Taint.analyze p.original in
  let id_of_orig = Hashtbl.create 64 in
  List.iter
    (fun (cm : I.callsite_meta) ->
      Hashtbl.replace id_of_orig cm.cm_orig cm.cm_id)
    p.inst.callsites;
  let pre = Hashtbl.create 16 in
  let pre_ctx = Hashtbl.create 16 in
  let ranks = Hashtbl.create 16 in
  let dead = Hashtbl.create 16 in
  List.iter
    (fun (cm : I.callsite_meta) ->
      if cm.cm_sysno <> None then
        if Sccp.site_dead sccp cm.cm_orig then Hashtbl.replace dead cm.cm_id ()
        else begin
          let plain = ref [] in
          let ctx = ref [] in
          let ranked = ref [] in
          List.iter
            (fun ((pos, b) : int * A.binding) ->
              match b with
              | A.Bind_const _ | A.Bind_cstr _ | A.Bind_faddr _ -> ()
              | A.Bind_var v -> (
                let tainted = Taint.var_tainted_at taint cm.cm_orig v in
                let resolved =
                  (not tainted)
                  &&
                  match
                    Sccp.value_of_operand sccp cm.cm_orig (Sil.Operand.Var v)
                  with
                  | Sccp.Known c ->
                    plain := (pos, c) :: !plain;
                    true
                  | Sccp.Top -> false
                in
                if not resolved then
                  match
                    if tainted then None
                    else
                      resolve_ctx sccp id_of_orig p.original
                        p.original_callgraph cm ~pos v
                  with
                  | Some triples -> ctx := triples @ !ctx
                  | None -> ranked := (pos, tainted) :: !ranked)
              | A.Bind_global g ->
                let tainted = Taint.global_tainted taint g in
                let resolved =
                  (not tainted)
                  &&
                  match Sccp.frozen_global sccp g with
                  | Some c ->
                    plain := (pos, c) :: !plain;
                    true
                  | None -> false
                in
                if not resolved then ranked := (pos, tainted) :: !ranked)
            cm.cm_specs;
          if !plain <> [] then Hashtbl.replace pre cm.cm_id (List.rev !plain);
          if !ctx <> [] then Hashtbl.replace pre_ctx cm.cm_id (List.rev !ctx);
          if !ranked <> [] then Hashtbl.replace ranks cm.cm_id (List.rev !ranked)
        end)
    p.inst.callsites;
  { p with pre_resolved = pre; pre_resolved_ctx = pre_ctx; slot_ranks = ranks;
    dead_sites = dead }

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)

type breakdown = {
  bk_plain : int;     (** slots pre-resolved to one program-wide constant *)
  bk_ctx : int;       (** slots pre-resolved per calling context *)
  bk_dead : int;      (** memory slots at provably-dead callsites *)
  bk_tainted : int;   (** ranked slots that stay on the full path *)
  bk_untainted : int; (** ranked slots eligible for the cheap path *)
}

let mem_slot_count (cm : I.callsite_meta) : int =
  List.length
    (List.filter
       (fun ((_, b) : int * A.binding) ->
         match b with
         | A.Bind_var _ | A.Bind_global _ -> true
         | A.Bind_const _ | A.Bind_cstr _ | A.Bind_faddr _ -> false)
       cm.cm_specs)

let breakdown (p : Bastion.Api.protected) : breakdown =
  let bk_plain =
    Hashtbl.fold (fun _ l acc -> acc + List.length l) p.pre_resolved 0
  in
  let bk_ctx =
    (* Context triples are per caller; a slot is one position. *)
    Hashtbl.fold
      (fun _ triples acc ->
        acc
        + List.length
            (List.sort_uniq compare
               (List.map (fun ((pos, _, _) : int * int * int64) -> pos) triples)))
      p.pre_resolved_ctx 0
  in
  let bk_dead =
    List.fold_left
      (fun acc (cm : I.callsite_meta) ->
        if Hashtbl.mem p.dead_sites cm.cm_id then acc + mem_slot_count cm
        else acc)
      0 p.inst.callsites
  in
  let bk_tainted, bk_untainted =
    Hashtbl.fold
      (fun _ l (t, u) ->
        List.fold_left
          (fun (t, u) ((_, tainted) : int * bool) ->
            if tainted then (t + 1, u) else (t, u + 1))
          (t, u) l)
      p.slot_ranks (0, 0)
  in
  { bk_plain; bk_ctx; bk_dead; bk_tainted; bk_untainted }

(** Memory slots the monitor verifies without any dynamic lookup:
    plain-constant, per-context and dead-site resolutions together. *)
let resolved_slots (p : Bastion.Api.protected) : int =
  let b = breakdown p in
  b.bk_plain + b.bk_ctx + b.bk_dead
