(** Constant-argument pre-resolution: mark the syscall-argument
    positions whose value is provably constant along all paths (per
    interprocedural constant propagation over the original program),
    so the monitor can verify those AI slots against the static
    constant without a shadow-memory probe. *)

(** Returns a copy of the bundle with [pre_resolved] populated; the
    input (possibly shared through a cache) is never mutated. *)
val enrich : Bastion.Api.protected -> Bastion.Api.protected

(** Total pre-resolved (callsite, position) slots in a bundle. *)
val resolved_slots : Bastion.Api.protected -> int
