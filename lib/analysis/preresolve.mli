(** Static pre-resolution of AI slots, driven by {!Sccp} and {!Taint}
    over the original program: plain constants (verified against the
    stored value, no probes), per-caller (1-CFA context) constants,
    provably-dead callsites (any trap there is denied outright) and
    taint ranks for everything left (untainted slots verify through the
    monitor's single-probe cheap path).

    A slot the taint analysis marks attacker-reachable is never
    pre-resolved, whatever the constant judgement says. *)

(** Returns a copy of the bundle with [pre_resolved],
    [pre_resolved_ctx], [slot_ranks] and [dead_sites] populated; the
    input (possibly shared through a cache) is never mutated. *)
val enrich : Bastion.Api.protected -> Bastion.Api.protected

(** Per-judgement slot counts of an enriched bundle. *)
type breakdown = {
  bk_plain : int;     (** slots pre-resolved to one program-wide constant *)
  bk_ctx : int;       (** slots pre-resolved per calling context *)
  bk_dead : int;      (** memory slots at provably-dead callsites *)
  bk_tainted : int;   (** ranked slots that stay on the full path *)
  bk_untainted : int; (** ranked slots eligible for the cheap path *)
}

val breakdown : Bastion.Api.protected -> breakdown

(** Memory slots verified without any dynamic lookup:
    plain + context + dead. *)
val resolved_slots : Bastion.Api.protected -> int
