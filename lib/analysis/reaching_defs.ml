(* Reaching definitions over a function: which definitions of a
   variable may produce the value observed at a program point.

   Definitions are [Assign], [Call] results and direct stores
   [Store (Lvar v, _)] — the same def notion as
   [Arg_analysis.defs_of], but flow-sensitive.  Every variable also
   carries an entry pseudo-definition (parameters arrive with their
   incoming value; uninitialised locals hold whatever the reused stack
   slot held), so an empty reaching set never means "no value" — it
   means the program point is unreachable. *)

module Vmap = Map.Make (Int)

(** The label used for entry pseudo-definitions ([Loc.index] is the
    variable's id). *)
let entry_label = "<entry>"

let entry_def (f : Sil.Func.t) (v : Sil.Operand.var) : Sil.Loc.t =
  Sil.Loc.make f.fname entry_label v.vid

let is_entry_def (l : Sil.Loc.t) = String.equal l.block entry_label

(** The variable an instruction defines, if any (writes through
    pointers are not variable definitions — they define memory). *)
let def_var (ins : Sil.Instr.t) : Sil.Operand.var option =
  match ins with
  | Assign (v, _) -> Some v
  | Call { dst; _ } -> dst
  | Store (Lvar v, _) -> Some v
  | Store _ -> None

module L = struct
  type t = Sil.Loc.Set.t Vmap.t

  let equal = Vmap.equal Sil.Loc.Set.equal
  let join = Vmap.union (fun _ a b -> Some (Sil.Loc.Set.union a b))
end

module Df = Dataflow.Make (L)

type t = { rd_func : Sil.Func.t; rd_res : Df.result }

let compute (f : Sil.Func.t) : t =
  let init =
    List.fold_left
      (fun m ((v : Sil.Operand.var), _) ->
        Vmap.add v.vid (Sil.Loc.Set.singleton (entry_def f v)) m)
      Vmap.empty (Sil.Func.all_vars f)
  in
  let transfer loc ins s =
    match def_var ins with
    | Some v -> Vmap.add v.vid (Sil.Loc.Set.singleton loc) s
    | None -> s
  in
  { rd_func = f; rd_res = Df.run ~dir:Dataflow.Forward ~init ~transfer f }

(** Definitions of [v] that may reach the program point just before
    [loc]; empty iff the point is unreachable. *)
let reaching (t : t) (loc : Sil.Loc.t) (v : Sil.Operand.var) : Sil.Loc.Set.t =
  match Df.before t.rd_res loc with
  | None -> Sil.Loc.Set.empty
  | Some s -> Option.value ~default:Sil.Loc.Set.empty (Vmap.find_opt v.vid s)
