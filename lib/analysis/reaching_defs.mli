(** Flow-sensitive reaching definitions over one function: which
    definitions ([Assign], [Call] results, [Store (Lvar _, _)]) may
    produce the value observed at a program point.  Every variable
    carries an entry pseudo-definition (parameters arrive with their
    incoming value; uninitialised locals hold reused stack-slot
    garbage), so an empty reaching set means "unreachable point", never
    "no value". *)

val entry_label : string

(** The entry pseudo-definition of a variable ([Loc.block] is
    {!entry_label}, [Loc.index] the variable id). *)
val entry_def : Sil.Func.t -> Sil.Operand.var -> Sil.Loc.t

val is_entry_def : Sil.Loc.t -> bool

(** The variable an instruction defines, if any. *)
val def_var : Sil.Instr.t -> Sil.Operand.var option

type t

val compute : Sil.Func.t -> t

(** Definitions of the variable that may reach the point just before
    [loc]; empty iff the point is unreachable. *)
val reaching : t -> Sil.Loc.t -> Sil.Operand.var -> Sil.Loc.Set.t
