(* Sparse conditional constant propagation: {!Constprop}'s
   edge-feasibility lattice (constant branch conditions fold, so blocks
   behind dead arms are never analysed and constants killed on dead
   paths survive) refined with {!Copyprop}'s interprocedural copy
   facts.

   Plain constant propagation loses a constant whenever any single
   producer is not syntactically constant at the site — e.g. a value
   threaded through a helper's return or copied between locals across
   a join.  The copy engine evaluates a variable as the join over
   every definition and every reachable caller's matching argument;
   when that join is the singleton set [{c}], every analysed producer
   of the value agrees on [c].  The refinement upgrades [Top] to
   [Known c] exactly when the singleton judgement is also *sound at
   the use site*:

   - the variable's address is never taken in the function (no store
     through a pointer can produce a value the copy engine missed);
   - the site is reached by the conditional-constant analysis (dead
     sites have no value — {!site_dead} is the judgement there);
   - per reaching definitions, only real definitions reach the use —
     the entry pseudo-definition reaching means the value may be the
     incoming parameter or stack garbage, producers the per-function
     copy join does not pin to the use site.

   A [Known c] result therefore keeps constant propagation's contract:
   the operand evaluates to [c] in every benign execution reaching the
   point. *)

type value = Constprop.value = Top | Known of int64

module Iset = Set.Make (Int)

type t = {
  sc_prog : Sil.Prog.t;
  sc_cp : Constprop.t;
  sc_copy : Copyprop.t;
  sc_rd : (string, Reaching_defs.t) Hashtbl.t;
  sc_addr_taken : (string, Iset.t) Hashtbl.t;
}

let analyze (prog : Sil.Prog.t) : t =
  {
    sc_prog = prog;
    sc_cp = Constprop.analyze prog;
    sc_copy = Copyprop.analyze prog;
    sc_rd = Hashtbl.create 8;
    sc_addr_taken = Hashtbl.create 8;
  }

let rd_of (t : t) (f : Sil.Func.t) : Reaching_defs.t =
  match Hashtbl.find_opt t.sc_rd f.fname with
  | Some rd -> rd
  | None ->
    let rd = Reaching_defs.compute f in
    Hashtbl.replace t.sc_rd f.fname rd;
    rd

let addr_taken (t : t) (f : Sil.Func.t) : Iset.t =
  match Hashtbl.find_opt t.sc_addr_taken f.fname with
  | Some s -> s
  | None ->
    let s =
      List.fold_left
        (fun acc ((_ : Sil.Loc.t), ins) ->
          match (ins : Sil.Instr.t) with
          | Assign (_, Addr_of (Lvar v)) -> Iset.add v.vid acc
          | _ -> acc)
        Iset.empty (Sil.Func.instrs f)
    in
    Hashtbl.replace t.sc_addr_taken f.fname s;
    s

(* The copy-fact refinement guard: see the module comment. *)
let refine_var (t : t) (loc : Sil.Loc.t) (v : Sil.Operand.var) : value =
  match Hashtbl.find_opt t.sc_prog.funcs loc.func with
  | None -> Top
  | Some f ->
    if Iset.mem v.vid (addr_taken t f) then Top
    else if not (Constprop.site_reached t.sc_cp loc) then Top
    else if not (Copyprop.reachable t.sc_copy loc.func) then Top
    else begin
      let reaching = Reaching_defs.reaching (rd_of t f) loc v in
      if
        Sil.Loc.Set.is_empty reaching
        || Sil.Loc.Set.exists Reaching_defs.is_entry_def reaching
      then Top
      else
        match Copyprop.fact_of_operand t.sc_copy loc.func (Sil.Operand.Var v) with
        | Copyprop.Fact_set [ c ] -> Known c
        | Copyprop.Fact_set _ | Copyprop.Fact_free | Copyprop.Fact_opaque -> Top
    end

(** Abstract value of an operand just before the instruction at [loc]:
    {!Constprop.value_of_operand}, upgraded with the copy-fact
    singleton refinement when plain constant propagation says [Top].
    Refines the plain judgement — a [Known] never changes, only [Top]
    can become [Known]. *)
let value_of_operand (t : t) (loc : Sil.Loc.t) (op : Sil.Operand.t) : value =
  match Constprop.value_of_operand t.sc_cp loc op with
  | Known _ as k -> k
  | Top -> ( match op with Sil.Operand.Var v -> refine_var t loc v | _ -> Top)

let frozen_global (t : t) g = Constprop.frozen_global t.sc_cp g
let reached (t : t) fname = Constprop.reached t.sc_cp fname
let site_reached (t : t) loc = Constprop.site_reached t.sc_cp loc

(** A site the conditional-constant analysis proves no benign execution
    can reach: the enclosing function is never called from a live
    callsite, or every path into the block is behind a branch folded
    the other way.  (Call-graph reachability alone would say "live" —
    this is the strictly sharper edge-feasibility judgement.) *)
let site_dead (t : t) (loc : Sil.Loc.t) : bool = not (site_reached t loc)

let constprop (t : t) = t.sc_cp
let copyprop (t : t) = t.sc_copy

let var_address_taken (t : t) ~(fname : string) ~(vid : int) : bool =
  match Hashtbl.find_opt t.sc_prog.funcs fname with
  | None -> false
  | Some f -> Iset.mem vid (addr_taken t f)

(** Only the entry pseudo-definition reaches the use: the variable still
    holds the incoming parameter value at [loc] on every path (the
    soundness condition for per-caller context resolution). *)
let only_entry_def_reaches (t : t) (loc : Sil.Loc.t) (v : Sil.Operand.var) : bool =
  match Hashtbl.find_opt t.sc_prog.funcs loc.func with
  | None -> false
  | Some f ->
    let reaching = Reaching_defs.reaching (rd_of t f) loc v in
    (not (Sil.Loc.Set.is_empty reaching))
    && Sil.Loc.Set.for_all Reaching_defs.is_entry_def reaching
