(** Sparse conditional constant propagation: {!Constprop}'s
    edge-feasibility lattice (constant conditions fold, dead arms are
    never analysed) refined with {!Copyprop} singleton facts at sites
    where the copy judgement is sound (address never taken, site live,
    only real definitions reaching).

    Refinement law: for every location and operand, a [Known c] from
    plain {!Constprop} is returned unchanged; only [Top] can be
    upgraded, and an upgrade keeps the contract that the operand
    evaluates to [c] in every benign execution reaching the point. *)

type value = Constprop.value = Top | Known of int64

type t

val analyze : Sil.Prog.t -> t

(** Abstract value of an operand just before the instruction at the
    location; refines {!Constprop.value_of_operand}. *)
val value_of_operand : t -> Sil.Loc.t -> Sil.Operand.t -> value

val frozen_global : t -> string -> int64 option

(** Was the function analysed at all (reachable through live calls)? *)
val reached : t -> string -> bool

(** Was the program point reached along any feasible path? *)
val site_reached : t -> Sil.Loc.t -> bool

(** The site is provably unreachable on benign executions — strictly
    sharper than call-graph reachability (a call behind a branch whose
    frozen-flag condition folds false is dead here, live there). *)
val site_dead : t -> Sil.Loc.t -> bool

(** The underlying passes (shared by the linter's stale checks). *)
val constprop : t -> Constprop.t

val copyprop : t -> Copyprop.t

(** Is the variable's address ever taken in its function? *)
val var_address_taken : t -> fname:string -> vid:int -> bool

(** Only the entry pseudo-definition reaches the use: the variable
    still holds the incoming parameter value at [loc] on every path
    (the soundness condition for per-caller context resolution). *)
val only_entry_def_reaches : t -> Sil.Loc.t -> Sil.Operand.var -> bool
