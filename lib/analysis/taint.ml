(* Interprocedural may-taint analysis: which values can an attacker who
   controls the program's external inputs actually influence?

   Sources are the user-controlled event inputs of the workload models:
   the buffers filled by [read] and [recvfrom] (the pointee contents
   become attacker data the moment the call returns).  Syscall RESULTS
   themselves — file descriptors, byte counts — are kernel-derived and
   stay untainted: the attacker chooses what arrives in the buffer, not
   what number the kernel hands back.

   Taint flows forward per function as the fourth {!Dataflow.Make}
   instance (lattice: the set of tainted variable ids, joined by
   union), and across functions through three pieces of program-wide
   state iterated to an outer fixpoint:

   - a tainted-object set (stack slots and globals whose memory may
     hold attacker data — loads from them taint the destination,
     tainted stores into fresh objects extend the set);
   - per-parameter may-taint summaries, joined over every direct
     callsite (address-taken functions are callable with unknown
     arguments, so their parameters are pinned tainted);
   - per-function return summaries.

   A store through a pointer the def-scan cannot resolve taints
   everything (the [taint_all] flag): over-approximation is always
   sound here, because the monitor's consumer only uses "untainted" to
   pick a cheaper verification path with identical denial semantics —
   imprecision costs probes, never security. *)

module Iset = Set.Make (Int)

type obj = O_local of string * int  (** fname, vid *) | O_global of string

module Omap = Map.Make (struct
  type t = obj

  let compare = compare
end)

module L = struct
  type t = Iset.t

  let equal = Iset.equal
  let join = Iset.union
end

module Df = Dataflow.Make (L)

type t = {
  tn_prog : Sil.Prog.t;
  tn_cg : Sil.Callgraph.t;
  tn_callers : (string, (Sil.Func.t * Sil.Operand.t list) list) Hashtbl.t;
      (** callee -> (caller function, argument list) per direct callsite
          (pointer-parameter resolution chases these) *)
  tn_objs : (obj, unit) Hashtbl.t;
  tn_params : (string, bool array) Hashtbl.t;
  tn_rets : (string, bool) Hashtbl.t;
  tn_results : (string, Df.result) Hashtbl.t;
  mutable tn_all : bool;  (** an unresolvable tainted store: everything may be *)
}

(** Syscall stubs whose pointee buffer (argument position 1) receives
    external input. *)
let source_stub (prog : Sil.Prog.t) fname : bool =
  match Hashtbl.find_opt prog.funcs fname with
  | Some f -> (
    match Sil.Func.syscall_number f with
    | Some nr ->
      let n = Kernel.Syscalls.name nr in
      String.equal n "read" || String.equal n "recvfrom"
    | None -> false)
  | None -> false

let is_app (f : Sil.Func.t) =
  match f.kind with
  | Sil.Func.App_code -> true
  | Sil.Func.Syscall_stub _ | Sil.Func.Intrinsic _ -> false

let is_app_name (prog : Sil.Prog.t) fname =
  match Hashtbl.find_opt prog.funcs fname with
  | Some f -> is_app f
  | None -> false

let is_stub_name (prog : Sil.Prog.t) fname =
  match Hashtbl.find_opt prog.funcs fname with
  | Some f -> Sil.Func.is_syscall_stub f
  | None -> false

(* ------------------------------------------------------------------ *)
(* Resolving a place (or a pointer operand) to the abstract objects it
   can address.  [None] = unresolvable (a pointer that is not a plain
   address-of chain) — callers must go conservative.                    *)

let rec objects_of_pointer (t : t) (f : Sil.Func.t) (op : Sil.Operand.t)
    ~(visited : (string * int) list) : obj list option =
  match op with
  | Sil.Operand.Global g ->
    (* A global holding a pointer: where it aims is data, not syntax. *)
    ignore g;
    None
  | Sil.Operand.Var v ->
    if List.mem (f.fname, v.vid) visited then
      (* A cycle through parameter chasing: this path contributes no new
         objects beyond what the outer frames already collect. *)
      Some []
    else begin
      let visited = (f.fname, v.vid) :: visited in
      let objs = ref [] in
      let unresolved = ref false in
      List.iter
        (fun ((_ : Sil.Loc.t), ins) ->
          match (ins : Sil.Instr.t) with
          | Assign (d, rv) when d.vid = v.vid -> (
            match rv with
            | Sil.Instr.Addr_of (Sil.Place.Lvar u) ->
              objs := O_local (f.fname, u.vid) :: !objs
            | Sil.Instr.Addr_of (Sil.Place.Lglobal g) -> objs := O_global g :: !objs
            | Sil.Instr.Addr_of (Sil.Place.Lfield _ | Sil.Place.Lindex _
                                | Sil.Place.Lderef _)
            | Sil.Instr.Use _ | Sil.Instr.Load _ | Sil.Instr.Binop _ ->
              unresolved := true)
          | Call { dst = Some d; _ } when d.vid = v.vid -> unresolved := true
          | Assign _ | Call _ | Store _ -> ())
        (Sil.Func.instrs f);
      (* A pointer parameter aims wherever any caller's matching
         argument aims: join over every direct callsite.  Address-taken
         functions are callable with unknown pointers, so their
         parameters stay unresolvable. *)
      let param_index =
        List.find_index
          (fun ((p, _) : Sil.Operand.var * _) -> p.vid = v.vid)
          f.params
      in
      (match param_index with
      | Some i when not !unresolved ->
        if Sil.Callgraph.Sset.mem f.fname t.tn_cg.address_taken then
          unresolved := true
        else
          List.iter
            (fun ((g, args) : Sil.Func.t * Sil.Operand.t list) ->
              match List.nth_opt args i with
              | None -> unresolved := true
              | Some a -> (
                match objects_of_pointer t g a ~visited with
                | None -> unresolved := true
                | Some os -> objs := os @ !objs))
            (Option.value ~default:[] (Hashtbl.find_opt t.tn_callers f.fname))
      | _ -> ());
      if !unresolved then None
      else if !objs = [] && param_index = None then None
      else Some !objs
    end
  | Sil.Operand.Const _ | Sil.Operand.Null | Sil.Operand.Cstr _
  | Sil.Operand.Func_addr _ ->
    (* NULL / rodata / code: no writable object behind it. *)
    Some []

let objects_of_pointer (t : t) (f : Sil.Func.t) (op : Sil.Operand.t) :
    obj list option =
  objects_of_pointer t f op ~visited:[]

let root_objects (t : t) (f : Sil.Func.t) (place : Sil.Place.t) : obj list option =
  match place with
  | Sil.Place.Lvar v -> Some [ O_local (f.fname, v.vid) ]
  | Sil.Place.Lglobal g -> Some [ O_global g ]
  | Sil.Place.Lfield (base, _, _)
  | Sil.Place.Lindex (base, _, _)
  | Sil.Place.Lderef base ->
    objects_of_pointer t f base

(* ------------------------------------------------------------------ *)
(* The per-function forward analysis                                   *)

let obj_tainted (t : t) o = t.tn_all || Hashtbl.mem t.tn_objs o

let op_tainted (t : t) (env : Iset.t) (op : Sil.Operand.t) : bool =
  match op with
  | Sil.Operand.Var v -> Iset.mem v.vid env
  | Sil.Operand.Global g -> obj_tainted t (O_global g)
  | Sil.Operand.Const _ | Sil.Operand.Null | Sil.Operand.Cstr _
  | Sil.Operand.Func_addr _ ->
    false

let place_load_tainted (t : t) (f : Sil.Func.t) (place : Sil.Place.t) : bool =
  match root_objects t f place with
  | Some objs -> List.exists (obj_tainted t) objs || t.tn_all
  | None -> true (* unresolvable pointer: the load may read anything *)

let set_var env (v : Sil.Operand.var) tainted =
  if tainted then Iset.add v.vid env else Iset.remove v.vid env

let transfer (t : t) (f : Sil.Func.t) (_ : Sil.Loc.t) (ins : Sil.Instr.t) env =
  match ins with
  | Sil.Instr.Assign (v, Use op) -> set_var env v (op_tainted t env op)
  | Sil.Instr.Assign (v, Binop (_, a, b)) ->
    set_var env v (op_tainted t env a || op_tainted t env b)
  | Sil.Instr.Assign (v, Load place) -> set_var env v (place_load_tainted t f place)
  | Sil.Instr.Assign (v, Addr_of _) ->
    (* An address is attacker-KNOWN, not attacker-CONTROLLED. *)
    set_var env v false
  | Sil.Instr.Store _ -> env (* memory effects handled program-wide *)
  | Sil.Instr.Call { dst; target; _ } -> (
    match dst with
    | None -> env
    | Some v -> (
      match target with
      | Sil.Instr.Direct g ->
        if is_stub_name t.tn_prog g then
          (* Syscall results (fds, byte counts) are kernel-derived. *)
          set_var env v false
        else if is_app_name t.tn_prog g then
          set_var env v
            (Option.value ~default:false (Hashtbl.find_opt t.tn_rets g))
        else set_var env v false
      | Sil.Instr.Indirect _ -> set_var env v true))

(* ------------------------------------------------------------------ *)
(* The outer fixpoint                                                  *)

let analyze (prog : Sil.Prog.t) : t =
  let cg = Sil.Callgraph.build prog in
  let t =
    {
      tn_prog = prog;
      tn_cg = cg;
      tn_callers = Hashtbl.create 16;
      tn_objs = Hashtbl.create 16;
      tn_params = Hashtbl.create 16;
      tn_rets = Hashtbl.create 16;
      tn_results = Hashtbl.create 16;
      tn_all = false;
    }
  in
  let app_funcs = List.filter is_app (Sil.Prog.functions prog) in
  (* Direct-call argument lists per callee, for pointer-parameter
     resolution. *)
  List.iter
    (fun (f : Sil.Func.t) ->
      List.iter
        (fun ((_ : Sil.Loc.t), ins) ->
          match (ins : Sil.Instr.t) with
          | Call { target = Direct g; args; _ } ->
            let existing =
              Option.value ~default:[] (Hashtbl.find_opt t.tn_callers g)
            in
            Hashtbl.replace t.tn_callers g ((f, args) :: existing)
          | _ -> ())
        (Sil.Func.instrs f))
    app_funcs;
  (* Address-taken functions are callable with unknown (attacker
     influenceable) arguments: pin their parameters tainted. *)
  List.iter
    (fun (f : Sil.Func.t) ->
      let n = List.length f.params in
      let pinned = Sil.Callgraph.Sset.mem f.fname cg.address_taken in
      Hashtbl.replace t.tn_params f.fname (Array.make n pinned))
    app_funcs;
  let changed = ref true in
  let taint_obj o =
    if not (Hashtbl.mem t.tn_objs o) then begin
      Hashtbl.replace t.tn_objs o ();
      changed := true
    end
  in
  let taint_all () =
    if not t.tn_all then begin
      t.tn_all <- true;
      changed := true
    end
  in
  (* Sources: every call to read/recvfrom taints the objects behind the
     buffer argument (position 1), independent of any dataflow state. *)
  List.iter
    (fun (f : Sil.Func.t) ->
      List.iter
        (fun ((_ : Sil.Loc.t), ins) ->
          match (ins : Sil.Instr.t) with
          | Call { target = Direct g; args; _ } when source_stub prog g -> (
            match List.nth_opt args 1 with
            | None -> ()
            | Some buf -> (
              match objects_of_pointer t f buf with
              | Some objs -> List.iter taint_obj objs
              | None -> taint_all ()))
          | _ -> ())
        (Sil.Func.instrs f))
    app_funcs;
  changed := true;
  while !changed do
    changed := false;
    List.iter
      (fun (f : Sil.Func.t) ->
        let params = Hashtbl.find t.tn_params f.fname in
        let init =
          List.fold_left
            (fun env (i, (v : Sil.Operand.var)) ->
              if i < Array.length params && params.(i) then Iset.add v.vid env
              else env)
            Iset.empty
            (List.mapi (fun i (v, _) -> (i, v)) f.params)
        in
        let res =
          Df.run ~dir:Dataflow.Forward ~init ~transfer:(transfer t f) f
        in
        Hashtbl.replace t.tn_results f.fname res;
        (* Post-run walk: memory effects, callee parameter inflow and
           the return summary all need the env at each instruction. *)
        let ret_tainted = ref false in
        List.iter
          (fun (b : Sil.Func.block) ->
            match Hashtbl.find_opt res.df_in b.label with
            | None -> ()
            | Some s0 ->
              let s = ref s0 in
              Array.iteri
                (fun idx ins ->
                  (match (ins : Sil.Instr.t) with
                  | Store (place, op) ->
                    if op_tainted t !s op then (
                      match root_objects t f place with
                      | Some objs -> List.iter taint_obj objs
                      | None -> taint_all ())
                  | Call { target = Direct g; args; _ } when is_app_name prog g
                    -> (
                    match Hashtbl.find_opt t.tn_params g with
                    | None -> ()
                    | Some callee_params ->
                      List.iteri
                        (fun i a ->
                          if
                            i < Array.length callee_params
                            && (not callee_params.(i))
                            && op_tainted t !s a
                          then begin
                            callee_params.(i) <- true;
                            changed := true
                          end)
                        args)
                  | Assign _ | Call _ -> ());
                  s := transfer t f (Sil.Loc.make f.fname b.label idx) ins !s)
                b.instrs;
              (match b.term with
              | Sil.Instr.Ret (Some op) ->
                if op_tainted t !s op then ret_tainted := true
              | Sil.Instr.Ret None | Sil.Instr.Halt | Sil.Instr.Jump _
              | Sil.Instr.Branch _ -> ()))
          f.blocks;
        let old_ret =
          Option.value ~default:false (Hashtbl.find_opt t.tn_rets f.fname)
        in
        if !ret_tainted && not old_ret then begin
          Hashtbl.replace t.tn_rets f.fname true;
          changed := true
        end)
      app_funcs
  done;
  t

(* ------------------------------------------------------------------ *)
(* Queries                                                             *)

(** May the variable hold attacker-influenced data just before the
    instruction at [loc]?  Unreached points answer via [taint_all]
    only — rank consumers gate dead sites separately. *)
let var_tainted_at (t : t) (loc : Sil.Loc.t) (v : Sil.Operand.var) : bool =
  t.tn_all
  ||
  match Hashtbl.find_opt t.tn_results loc.func with
  | None -> false
  | Some res -> (
    match Df.before res loc with
    | None -> false
    | Some env -> Iset.mem v.vid env)

let global_tainted (t : t) (g : string) : bool = obj_tainted t (O_global g)

let local_tainted (t : t) ~fname ~vid : bool = obj_tainted t (O_local (fname, vid))

(** Did an unresolvable tainted store force the all-tainted fallback? *)
let tainted_everything (t : t) = t.tn_all

(** Tainted-object count (reporting). *)
let tainted_objects (t : t) = Hashtbl.length t.tn_objs
