(** Interprocedural may-taint analysis from user-controlled sources
    (the buffers filled by [read]/[recvfrom]) to variables and
    memory objects — the fourth {!Dataflow.Make} instance.

    Syscall results (file descriptors, byte counts) are kernel-derived
    and stay untainted; pointee contents of input buffers, values
    copied or computed from them, loads from tainted objects and
    address-taken functions' parameters are tainted.  The judgement is
    may-taint: "untainted" is the strong claim (no analysed flow from
    any source), and consumers use it only to pick cheaper verification
    paths with identical denial semantics — imprecision costs probes,
    never security. *)

type t

val analyze : Sil.Prog.t -> t

(** May the variable hold attacker-influenced data just before the
    instruction at [loc]? *)
val var_tainted_at : t -> Sil.Loc.t -> Sil.Operand.var -> bool

(** May the global's memory hold attacker-influenced data? *)
val global_tainted : t -> string -> bool

(** May the local's stack slot hold attacker-influenced data? *)
val local_tainted : t -> fname:string -> vid:int -> bool

(** Did an unresolvable tainted store force the all-tainted fallback? *)
val tainted_everything : t -> bool

(** Number of distinct tainted abstract objects (reporting). *)
val tainted_objects : t -> int
