(* Attack execution and context attribution.

   Each attack runs under five configurations:
   - undefended (sanity: the exploit must actually work),
   - each context enabled alone (Table 6 attribution),
   - all three contexts (the deployment configuration: must block).

   ROP-era machines run without CET (§10.1 evaluates BASTION's ROP
   defense in CET's absence). *)

type config = Undefended | Only_ct | Only_cf | Only_ai | Full_bastion

let config_name = function
  | Undefended -> "undefended"
  | Only_ct -> "CT"
  | Only_cf -> "CF"
  | Only_ai -> "AI"
  | Full_bastion -> "CT+CF+AI"

type outcome =
  | Succeeded             (** the goal syscall executed with attacker values *)
  | Blocked of Machine.fault
  | Inert                 (** program finished without the attack firing *)

let outcome_name = function
  | Succeeded -> "SUCCEEDED"
  | Blocked f -> "blocked: " ^ Machine.fault_to_string f
  | Inert -> "inert (goal never reached, no kill)"

let contexts_of = function
  | Only_ct -> { Bastion.Monitor.ct = true; cf = false; ai = false }
  | Only_cf -> { Bastion.Monitor.ct = false; cf = true; ai = false }
  | Only_ai -> { Bastion.Monitor.ct = false; cf = false; ai = true }
  | Full_bastion | Undefended -> Bastion.Monitor.all_contexts

(* A hijacked gadget may spin in a loop whose counter is attacker
   stack garbage; bound the run and end it as soon as the goal fires. *)
let attack_fuel = 20_000_000

let run ?(trap_cache = true) ?(pre_resolve = false) ?prefilter ?bundle ?recorder
    ?on_session (attack : Attack.t) (config : config) : outcome =
  let prog = attack.a_victim.v_build () in
  let machine_config = { Machine.default_config with fuel = attack_fuel } in
  let machine, process =
    match config with
    | Undefended -> Bastion.Api.launch_unprotected ~machine_config prog
    | _ ->
      (* [bundle] overrides the compile pass: the differential replay
         engine deploys a restored (possibly edited) metadata bundle
         through the exact path a recorded attack used. *)
      let protected_prog =
        match bundle with
        | Some b -> b
        | None ->
          let p = Bastion.Api.protect ~protect_filesystem:attack.a_fs_scope prog in
          if pre_resolve then Bastion_analysis.Preresolve.enrich p else p
      in
      let monitor_config =
        {
          Bastion.Monitor.default_config with
          contexts = contexts_of config;
          trap_cache;
          fs_mode =
            (if attack.a_fs_scope then Bastion.Monitor.Fs_full
             else Bastion.Monitor.Fs_off);
        }
      in
      let session =
        Bastion.Api.launch ~machine_config ~monitor_config ?recorder protected_prog ()
      in
      (match prefilter with
      | Some mode ->
        ignore
          (Bastion_analysis.Flowgraph.attach ~mode protected_prog
             ~monitor:session.monitor ~process:session.process)
      | None -> ());
      (* Let the replay engine reach in before execution (swap the trap
         source, wrap the hook); never called for undefended runs. *)
      (match on_session with Some f -> f session | None -> ());
      (session.machine, session.process)
  in
  attack.a_victim.v_setup process;
  let goal_nr = Kernel.Syscalls.number attack.a_goal in
  let goal_hit = ref false in
  process.on_syscall_executed <-
    Some
      (fun ~sysno ~args ~path ->
        if sysno = goal_nr && attack.a_goal_check ~args ~path then begin
          goal_hit := true;
          (* Attack complete: stop the victim. *)
          raise (Machine.Program_exit 0x600DL)
        end);
  attack.a_install machine;
  match Machine.run machine with
  | Machine.Exited _ -> if !goal_hit then Succeeded else Inert
  | Machine.Faulted Machine.Fuel_exhausted -> if !goal_hit then Succeeded else Inert
  | Machine.Faulted fault -> if !goal_hit then Succeeded else Blocked fault

(* ------------------------------------------------------------------ *)
(* The Table 6 matrix                                                  *)

type row = {
  r_attack : Attack.t;
  r_undefended : outcome;
  r_ct : outcome;
  r_cf : outcome;
  r_ai : outcome;
  r_full : outcome;
  r_prefilter : outcome;
      (** syscall-flow pre-filter standalone (the SFIP baseline): the
          automaton is the only defense *)
  r_tiered : outcome;
      (** full BASTION behind the tiered pre-filter (the deployment
          configuration of the tiered design) *)
}

let blocked = function Blocked _ -> true | Succeeded | Inert -> false

(** Which tier of the tiered deployment catches the attack: the cheap
    seccomp-stage automaton alone, the full monitor behind it, or
    neither. *)
type tier = Tier_prefilter | Tier_full | Tier_uncaught

let tier_name = function
  | Tier_prefilter -> "prefilter"
  | Tier_full -> "full"
  | Tier_uncaught -> "uncaught"

let catching_tier (r : row) : tier =
  if blocked r.r_prefilter then Tier_prefilter
  else if blocked r.r_tiered then Tier_full
  else Tier_uncaught

let evaluate ?(trap_cache = true) ?(pre_resolve = false) ?recorder
    (attack : Attack.t) : row =
  {
    r_attack = attack;
    r_undefended = run ~trap_cache ~pre_resolve ?recorder attack Undefended;
    r_ct = run ~trap_cache ~pre_resolve ?recorder attack Only_ct;
    r_cf = run ~trap_cache ~pre_resolve ?recorder attack Only_cf;
    r_ai = run ~trap_cache ~pre_resolve ?recorder attack Only_ai;
    r_full = run ~trap_cache ~pre_resolve ?recorder attack Full_bastion;
    r_prefilter =
      run ~trap_cache ~pre_resolve ~prefilter:Kernel.Seccomp.Flow_standalone
        ?recorder attack Full_bastion;
    r_tiered =
      run ~trap_cache ~pre_resolve ~prefilter:Kernel.Seccomp.Flow_tiered
        ?recorder attack Full_bastion;
  }

(** Does the row agree with the paper's Table 6 entry?  The attack must
    succeed undefended, be blocked by exactly the contexts the paper
    marks with a check, and be blocked by the full deployment. *)
let matches_expectation (r : row) =
  let e = r.r_attack.a_expected in
  r.r_undefended = Succeeded
  && blocked r.r_ct = e.e_ct
  && blocked r.r_cf = e.e_cf
  && blocked r.r_ai = e.e_ai
  && blocked r.r_full

let evaluate_all ?(trap_cache = true) ?(pre_resolve = false) ?recorder () =
  List.map (fun a -> evaluate ~trap_cache ~pre_resolve ?recorder a) Catalog.all

(* Each attack row is a self-contained tracee (fresh protect + session
   per configuration inside [run]), so the matrix shards cleanly: one
   row per tracee on the monitor pool, merged back in catalog order. *)
let evaluate_all_sharded ?(trap_cache = true) ?(pre_resolve = false) ?policy
    ~shards () =
  let attacks = Array.of_list Catalog.all in
  let config = Bastion_mt.Monitor_pool.config ?policy ~shards () in
  let jobs =
    Array.map (fun a () -> evaluate ~trap_cache ~pre_resolve a) attacks
  in
  let rows, stats = Bastion_mt.Monitor_pool.run_tracees ~config jobs in
  (Array.to_list rows, stats)
