(** Attack execution and context attribution.

    Each attack runs under five configurations: undefended (the exploit
    must work), each context alone (the Table 6 ✓/×), and full BASTION
    (must block).  ROP-era machines run without CET (§10.1). *)

type config = Undefended | Only_ct | Only_cf | Only_ai | Full_bastion

val config_name : config -> string

type outcome =
  | Succeeded             (** the goal syscall executed with attacker values *)
  | Blocked of Machine.fault
  | Inert                 (** run ended without the attack completing *)

val outcome_name : outcome -> string

(** Fuel bound for attack runs (hijacked gadgets may spin). *)
val attack_fuel : int

(** [trap_cache] toggles the monitor's CT+CF verdict cache (default
    on); the Table 6 matrix must be identical either way.
    [pre_resolve] enables constant-argument pre-resolution (default
    off); the matrix must again be identical either way.  [recorder]
    attaches a flight recorder to the monitored configurations; the
    matrix must also be identical with and without it.  [prefilter]
    deploys the syscall-flow pre-filter in the given mode on the
    monitored configurations (standalone models SFIP as the sole
    defense; tiered puts it in front of the configured contexts).
    [on_session] fires once the session is built, before setup and
    execution — the replay engine's hook for swapping the monitor's
    trap source (never called for undefended runs, which have no
    session).  [bundle] overrides the compile pass with a restored
    (possibly edited) metadata bundle — the differential replay seam;
    it bypasses the lint gate on purpose. *)
val run :
  ?trap_cache:bool -> ?pre_resolve:bool ->
  ?prefilter:Kernel.Seccomp.flow_mode ->
  ?bundle:Bastion.Api.protected -> ?recorder:Obs.Recorder.t ->
  ?on_session:(Bastion.Api.session -> unit) ->
  Attack.t -> config -> outcome

(** One evaluated Table 6 row, extended with the tiered deployment's
    two extra configurations. *)
type row = {
  r_attack : Attack.t;
  r_undefended : outcome;
  r_ct : outcome;
  r_cf : outcome;
  r_ai : outcome;
  r_full : outcome;
  r_prefilter : outcome;  (** pre-filter standalone (the SFIP baseline) *)
  r_tiered : outcome;     (** full BASTION behind the tiered pre-filter *)
}

val blocked : outcome -> bool

(** Which tier of the tiered deployment catches the attack. *)
type tier = Tier_prefilter | Tier_full | Tier_uncaught

val tier_name : tier -> string
val catching_tier : row -> tier

val evaluate :
  ?trap_cache:bool -> ?pre_resolve:bool -> ?recorder:Obs.Recorder.t ->
  Attack.t -> row

(** Does the row agree with the paper: succeeds undefended, blocked by
    exactly the expected contexts, blocked by the full deployment? *)
val matches_expectation : row -> bool

val evaluate_all :
  ?trap_cache:bool -> ?pre_resolve:bool -> ?recorder:Obs.Recorder.t ->
  unit -> row list

(** The Table 6 matrix with each attack row evaluated as its own tracee
    on a {!Bastion_mt.Monitor_pool} of [shards] worker domains.  Rows
    come back in catalog order and must equal {!evaluate_all} verdict
    for verdict at every shard count and under every scheduler
    [policy] (each row builds a fresh session, so no verification
    state crosses rows or domains, wherever a row executes). *)
val evaluate_all_sharded :
  ?trap_cache:bool -> ?pre_resolve:bool ->
  ?policy:Bastion_mt.Monitor_pool.policy -> shards:int ->
  unit -> row list * Bastion_mt.Monitor_pool.stats
