(* Public entry points of the BASTION library: compile-side protection
   (analysis + instrumentation + metadata) and runtime deployment
   (monitor attached to a booted process).

   Typical use:
   {[
     let protected = Api.protect prog in
     let session = Api.launch protected () in
     let outcome = Machine.run session.machine in
     ...
   ]} *)

module Syscalls = Kernel.Syscalls

type protected = {
  original : Sil.Prog.t;
  inst : Instrument.t;
  analysis : Arg_analysis.t;
  calltype : Calltype.t;
  cfg : Cfg_analysis.t;
  sensitive_numbers : int list;
  original_callgraph : Sil.Callgraph.t;
  pre_resolved : (int, (int * int64) list) Hashtbl.t;
      (** callsite id -> (position, provably constant value); filled by
          the static pre-resolution pass (lib/analysis), empty by
          default *)
  pre_resolved_ctx : (int, (int * int * int64) list) Hashtbl.t;
      (** callsite id -> (position, caller callsite id, value):
          1-context pre-resolution — the argument is a parameter whose
          value is a different provable constant per caller, matched at
          trap time against the next frame's callsite *)
  slot_ranks : (int, (int * bool) list) Hashtbl.t;
      (** callsite id -> (position, tainted): per-slot attacker-reach
          rank from the taint analysis; untainted AI slots may verify
          through the cheap single-probe path *)
  dead_sites : (int, unit) Hashtbl.t;
      (** callsite ids the conditional-constant analysis proves no
          benign execution can reach: the monitor denies any trap
          there outright *)
}

exception Validation_failed of string list

(* The metadata-soundness validator is registered by the analysis
   library (Bastion_analysis.Lint lives *above* this one, so the gate
   is a hook, not a direct call).  [protect ~validate:true] refuses to
   hand out a bundle the registered validator rejects. *)
let validator : (protected -> string list) option ref = ref None

let set_validator f = validator := f

let run_validator (p : protected) =
  match !validator with
  | None ->
    invalid_arg
      "Api.protect: ~validate:true but no metadata validator is registered \
       (call Bastion_analysis.Lint.register_api_validator, or link a library \
       that does)"
  | Some f -> (
    match f p with [] -> () | msgs -> raise (Validation_failed msgs))

(** Run the full BASTION compiler pass over a program.
    [protect_filesystem] extends the sensitive set with the filesystem
    syscalls (§11.2).  [validate] runs the registered metadata-soundness
    validator over the finished bundle and raises {!Validation_failed}
    on any diagnostic — protected programs are then sound by
    construction. *)
let protect ?(protect_filesystem = false) ?(validate = false) (prog : Sil.Prog.t) :
    protected =
  Sil.Validate.check_exn prog;
  let original_callgraph = Sil.Callgraph.build prog in
  let sensitive_numbers =
    Syscalls.sensitive_numbers
    @ (if protect_filesystem then Syscalls.filesystem_numbers else [])
  in
  let analysis = Arg_analysis.analyze prog original_callgraph ~sensitive_numbers in
  let inst = Instrument.run prog analysis in
  Sil.Validate.check_exn inst.iprog;
  (* Call-type and control-flow metadata are derived from the
     instrumented program: its locations are what the binary contains. *)
  let icg = Sil.Callgraph.build inst.iprog in
  let calltype = Calltype.analyze inst.iprog icg in
  let cfg = Cfg_analysis.analyze inst.iprog icg ~sensitive_numbers in
  let p =
    { original = prog; inst; analysis; calltype; cfg; sensitive_numbers;
      original_callgraph; pre_resolved = Hashtbl.create 1;
      pre_resolved_ctx = Hashtbl.create 1; slot_ranks = Hashtbl.create 1;
      dead_sites = Hashtbl.create 1 }
  in
  if validate then run_validator p;
  p

type session = {
  machine : Machine.t;
  process : Kernel.Process.t;
  runtime : Runtime.t;
  monitor : Monitor.t;
}

(** Boot the instrumented program on a fresh machine, wire the runtime
    library, build post-layout metadata, and attach the monitor.
    [recorder] wires the flight recorder through the whole pipeline
    (runtime intrinsics, monitor phase spans, legacy-counter probes);
    observation never charges modelled cycles. *)
let launch ?(machine_config = Machine.default_config)
    ?(monitor_config = Monitor.default_config) ?recorder (p : protected) () : session =
  let machine = Machine.create ~config:machine_config p.inst.iprog in
  let process = Kernel.boot machine in
  let runtime = Runtime.create () in
  Runtime.install runtime machine;
  Runtime.seed_globals runtime machine;
  (match recorder with
  | Some r -> Runtime.attach_recorder runtime r
  | None -> ());
  let meta =
    Metadata.build ~calltype:p.calltype ~cfg:p.cfg ~analysis:p.analysis ~inst:p.inst
      ~pre_resolved:p.pre_resolved ~pre_resolved_ctx:p.pre_resolved_ctx
      ~slot_ranks:p.slot_ranks ~dead_sites:p.dead_sites machine
  in
  let monitor = Monitor.create ?recorder ~meta ~runtime ~config:monitor_config machine in
  Monitor.attach monitor process;
  { machine; process; runtime; monitor }

(** Launch without any BASTION protection (the unprotected baseline):
    same machine and kernel, no filter, no instrumentation. *)
let launch_unprotected ?(machine_config = Machine.default_config) (prog : Sil.Prog.t) :
    Machine.t * Kernel.Process.t =
  let machine = Machine.create ~config:machine_config prog in
  let process = Kernel.boot machine in
  (machine, process)

(* ------------------------------------------------------------------ *)
(* Table 5 statistics                                                  *)

type instrumentation_stats = {
  total_callsites : int;
  direct_callsites : int;
  indirect_callsites : int;
  sensitive_callsites : int;
  sensitive_indirect : int;
  write_mem_sites : int;
  bind_mem_sites : int;
  bind_const_sites : int;
}

let total_instrumentation_sites s =
  s.write_mem_sites + s.bind_mem_sites + s.bind_const_sites

let stats (p : protected) : instrumentation_stats =
  let cg_stats = Sil.Callgraph.stats p.original_callgraph in
  let sensitive_callsites =
    List.length
      (List.filter
         (fun (cs : Sil.Callgraph.callsite) ->
           match cs.cs_target with
           | Sil.Instr.Direct callee -> (
             match Hashtbl.find_opt p.original.funcs callee with
             | Some f -> (
               match Sil.Func.syscall_number f with
               | Some nr -> List.mem nr Syscalls.sensitive_numbers
               | None -> false)
             | None -> false)
           | Sil.Instr.Indirect _ -> false)
         p.original_callgraph.callsites)
  in
  {
    total_callsites = cg_stats.total_callsites;
    direct_callsites = cg_stats.direct_callsites;
    indirect_callsites = cg_stats.indirect_count;
    sensitive_callsites;
    sensitive_indirect =
      Calltype.sensitive_indirect_count p.calltype
        ~sensitive_numbers:Syscalls.sensitive_numbers;
    write_mem_sites = p.inst.counts.write_mem;
    bind_mem_sites = p.inst.counts.bind_mem;
    bind_const_sites = p.inst.counts.bind_const;
  }
