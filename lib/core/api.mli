(** Public entry points of the BASTION library.

    Compile side: {!protect} runs the whole pass (call-type analysis,
    control-flow metadata, argument-integrity analysis,
    instrumentation).  Runtime side: {!launch} boots the instrumented
    program with the runtime library wired in and the monitor attached.

    {[
      let protected = Api.protect prog in
      let session = Api.launch protected () in
      match Machine.run session.machine with
      | Machine.Exited _ -> (* clean *) ...
      | Machine.Faulted f -> (* killed by a defense *) ...
    ]} *)

module Syscalls = Kernel.Syscalls

(** Everything the compiler pass produced for a program. *)
type protected = {
  original : Sil.Prog.t;
  inst : Instrument.t;              (** instrumented program + metadata *)
  analysis : Arg_analysis.t;
  calltype : Calltype.t;
  cfg : Cfg_analysis.t;
  sensitive_numbers : int list;
  original_callgraph : Sil.Callgraph.t;
  pre_resolved : (int, (int * int64) list) Hashtbl.t;
      (** callsite id -> (position, provably constant value); filled by
          the static pre-resolution pass (lib/analysis), empty by
          default *)
  pre_resolved_ctx : (int, (int * int * int64) list) Hashtbl.t;
      (** callsite id -> (position, caller callsite id, value):
          1-context pre-resolution, matched at trap time against the
          caller frame's callsite; empty by default *)
  slot_ranks : (int, (int * bool) list) Hashtbl.t;
      (** callsite id -> (position, tainted): per-slot attacker-reach
          rank from the taint analysis; empty by default *)
  dead_sites : (int, unit) Hashtbl.t;
      (** callsite ids provably unreachable on benign executions; the
          monitor denies any trap there; empty by default *)
}

(** The metadata-soundness gate rejected the bundle; one message per
    diagnostic, in the validator's deterministic order. *)
exception Validation_failed of string list

(** Install (or clear) the metadata-soundness validator that
    [protect ~validate:true] runs.  The linter lives in the analysis
    library above this one, so it registers itself here:
    [Bastion_analysis.Lint.register_api_validator] is the canonical
    caller.  Returning [[]] means sound. *)
val set_validator : (protected -> string list) option -> unit

(** Run the BASTION compiler pass.  [protect_filesystem] extends the
    sensitive set with the filesystem syscalls (§11.2); [validate]
    (default off) runs the registered metadata-soundness validator over
    the finished bundle, so protected programs are sound by
    construction.
    @raise Invalid_argument if the program is malformed, or if
    [validate] is requested with no validator registered.
    @raise Validation_failed if the validator reports diagnostics. *)
val protect : ?protect_filesystem:bool -> ?validate:bool -> Sil.Prog.t -> protected

(** A deployed protection: machine + kernel process + runtime library +
    attached monitor. *)
type session = {
  machine : Machine.t;
  process : Kernel.Process.t;
  runtime : Runtime.t;
  monitor : Monitor.t;
}

(** Boot the instrumented program, wire the ctx_* runtime, build
    post-layout metadata, seed the shadow from the loader-visible
    globals and attach the monitor.  [recorder] wires the flight
    recorder through the whole pipeline; observation never charges
    modelled cycles. *)
val launch :
  ?machine_config:Machine.config ->
  ?monitor_config:Monitor.config ->
  ?recorder:Obs.Recorder.t ->
  protected ->
  unit ->
  session

(** The unprotected baseline: same machine and kernel, no filter, no
    instrumentation. *)
val launch_unprotected :
  ?machine_config:Machine.config -> Sil.Prog.t -> Machine.t * Kernel.Process.t

(** Table 5 statistics. *)
type instrumentation_stats = {
  total_callsites : int;
  direct_callsites : int;
  indirect_callsites : int;
  sensitive_callsites : int;
  sensitive_indirect : int;   (** sensitive syscalls callable indirectly *)
  write_mem_sites : int;
  bind_mem_sites : int;
  bind_const_sites : int;
}

val total_instrumentation_sites : instrumentation_stats -> int
val stats : protected -> instrumentation_stats
