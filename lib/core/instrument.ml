(* The instrumentation pass (§6.3.3): rewrite the program, inserting
   BASTION runtime-library calls (Table 2):

   - [ctx_write_mem(p, size)] after every store/definition of a
     memory-backed sensitive variable (and at function entry for
     sensitive parameters, cf. Fig. 2 line 11);
   - [ctx_bind_mem(id, pos, p)] / [ctx_bind_const(id, pos, c)]
     immediately before each sensitive callsite, binding each argument
     to its position.

   Each instrumented callsite receives a small-integer id embedded as a
   constant in the bind calls; the id keys the runtime binding table and
   the monitor's metadata. *)

let write_mem_name = "ctx_write_mem"
let bind_mem_name = "ctx_bind_mem"
let bind_const_name = "ctx_bind_const"

type callsite_meta = {
  cm_id : int;
  cm_loc : Sil.Loc.t;  (** location of the call in the INSTRUMENTED program *)
  cm_orig : Sil.Loc.t;  (** the same call in the ORIGINAL program *)
  cm_callee : string;
  cm_sysno : int option;
  cm_specs : (int * Arg_analysis.binding) list;
}

type counts = {
  mutable write_mem : int;
  mutable bind_mem : int;
  mutable bind_const : int;
}

type t = {
  iprog : Sil.Prog.t;
  callsites : callsite_meta list;
  counts : counts;
}

let ensure_intrinsics (pb_funcs : (string, Sil.Func.t) Hashtbl.t) =
  let declare name arity =
    if not (Hashtbl.mem pb_funcs name) then begin
      let params =
        List.mapi (fun i _ -> ({ Sil.Operand.vid = i; vname = Printf.sprintf "a%d" i }, Sil.Types.I64))
          (List.init arity Fun.id)
      in
      Hashtbl.replace pb_funcs name
        {
          Sil.Func.fname = name;
          params;
          locals = [];
          blocks =
            [ { Sil.Func.label = "entry"; instrs = [||]; term = Sil.Instr.Ret None } ];
          kind = Sil.Func.Intrinsic name;
        }
    end
  in
  declare write_mem_name 2;
  declare bind_mem_name 3;
  declare bind_const_name 3

(** Rewrite one application function. *)
let instrument_func (analysis : Arg_analysis.t) (counts : counts)
    ~(structs : Sil.Types.struct_env) ~(fresh_id : unit -> int)
    ~(metas : callsite_meta list ref) (f : Sil.Func.t) : Sil.Func.t =
  let next_vid = ref (List.length (Sil.Func.all_vars f)) in
  let extra_locals = ref [] in
  let fresh_tmp () =
    let v = { Sil.Operand.vid = !next_vid; vname = Printf.sprintf "ctx_tmp%d" !next_vid } in
    incr next_vid;
    extra_locals := (v, Sil.Types.Ptr Sil.Types.I64) :: !extra_locals;
    v
  in
  let sensitive_target (p : Sil.Place.t) =
    match p with
    | Lvar v -> Arg_analysis.is_sensitive_local analysis f.fname v
    | Lglobal g -> Arg_analysis.is_sensitive_global analysis g
    | Lfield (_, s, fl) -> Arg_analysis.is_sensitive_field analysis s fl
    | Lindex _ | Lderef _ -> false
  in
  (* A store through a pointer (v[i] = ..., *p = ...) must refresh the
     shadow when the pointer provably aims at a sensitive object: check
     whether any definition of the base variable takes the address of a
     sensitive place. *)
  let base_points_to_sensitive (op : Sil.Operand.t) =
    match op with
    | Var v ->
      List.exists
        (fun def ->
          match def with
          | `Rvalue (Sil.Instr.Addr_of place) -> sensitive_target place
          | `Rvalue _ | `Stored _ | `Call_result -> false)
        (Arg_analysis.defs_of f v)
    | Const _ | Cstr _ | Global _ | Func_addr _ | Null -> false
  in
  let sensitive_place (p : Sil.Place.t) =
    match p with
    | Lvar _ | Lglobal _ | Lfield _ -> sensitive_target p
    | Lindex (base, _, _) | Lderef base -> base_points_to_sensitive base
  in
  let emit_write_mem ?(size = 1) buf (place : Sil.Place.t) =
    let tmp = fresh_tmp () in
    buf := Sil.Instr.Assign (tmp, Sil.Instr.Addr_of place) :: !buf;
    buf :=
      Sil.Instr.Call
        {
          dst = None;
          target = Sil.Instr.Direct write_mem_name;
          args = [ Sil.Operand.Var tmp; Sil.Operand.Const (Int64.of_int size) ];
        }
      :: !buf;
    counts.write_mem <- counts.write_mem + 1
  in
  let emit_binds buf label (plan : Arg_analysis.plan) =
    let id = fresh_id () in
    List.iter
      (fun ((pos, binding) : int * Arg_analysis.binding) ->
        let const_args value =
          [ Sil.Operand.const id; Sil.Operand.const pos; value ]
        in
        match binding with
        | Bind_const c ->
          counts.bind_const <- counts.bind_const + 1;
          buf :=
            Sil.Instr.Call
              { dst = None; target = Direct bind_const_name; args = const_args (Const c) }
            :: !buf
        | Bind_cstr s ->
          counts.bind_const <- counts.bind_const + 1;
          buf :=
            Sil.Instr.Call
              { dst = None; target = Direct bind_const_name; args = const_args (Cstr s) }
            :: !buf
        | Bind_faddr fn ->
          counts.bind_const <- counts.bind_const + 1;
          buf :=
            Sil.Instr.Call
              {
                dst = None;
                target = Direct bind_const_name;
                args = const_args (Func_addr fn);
              }
            :: !buf
        | Bind_var v ->
          counts.bind_mem <- counts.bind_mem + 1;
          let tmp = fresh_tmp () in
          buf := Sil.Instr.Assign (tmp, Sil.Instr.Addr_of (Lvar v)) :: !buf;
          buf :=
            Sil.Instr.Call
              { dst = None; target = Direct bind_mem_name; args = const_args (Var tmp) }
            :: !buf
        | Bind_global g ->
          counts.bind_mem <- counts.bind_mem + 1;
          let tmp = fresh_tmp () in
          buf := Sil.Instr.Assign (tmp, Sil.Instr.Addr_of (Lglobal g)) :: !buf;
          buf :=
            Sil.Instr.Call
              { dst = None; target = Direct bind_mem_name; args = const_args (Var tmp) }
            :: !buf)
      plan.pl_args;
    let meta =
      {
        cm_id = id;
        cm_loc = Sil.Loc.make f.fname label (List.length !buf);
        cm_orig = plan.pl_loc;
        cm_callee = plan.pl_callee;
        cm_sysno = plan.pl_sysno;
        cm_specs = plan.pl_args;
      }
    in
    metas := meta :: !metas
  in
  let first_label = (Sil.Func.entry_block f).label in
  let blocks =
    List.map
      (fun (b : Sil.Func.block) ->
        let buf = ref [] in
        (* All sensitive locals are traced at function entry: parameters
           carry their incoming value (Fig. 2 line 11), and
           uninitialised locals sync their shadow with the frame's
           initial state so stack-slot reuse across frames can never
           read as corruption. *)
        if String.equal b.label first_label then
          List.iter
            (fun ((v : Sil.Operand.var), ty) ->
              if Arg_analysis.is_sensitive_local analysis f.fname v then
                (* The entry sync covers the variable's full extent
                   (multi-word buffers included). *)
                let size = max 1 (Sil.Types.size_words structs ty) in
                emit_write_mem ~size buf (Sil.Place.Lvar v))
            (Sil.Func.all_vars f);
        Array.iteri
          (fun idx (ins : Sil.Instr.t) ->
            let loc = Sil.Loc.make f.fname b.label idx in
            match ins with
            | Call { dst; _ } ->
              (match Arg_analysis.plan_at analysis loc with
              | Some plan -> emit_binds buf b.label plan
              | None -> ());
              buf := ins :: !buf;
              (match dst with
              | Some v when Arg_analysis.is_sensitive_local analysis f.fname v ->
                emit_write_mem buf (Sil.Place.Lvar v)
              | Some _ | None -> ())
            | Assign (v, _) ->
              buf := ins :: !buf;
              if Arg_analysis.is_sensitive_local analysis f.fname v then
                emit_write_mem buf (Sil.Place.Lvar v)
            | Store (place, _) ->
              buf := ins :: !buf;
              if sensitive_place place then emit_write_mem buf place)
          b.instrs;
        { b with instrs = Array.of_list (List.rev !buf) })
      f.blocks
  in
  { f with locals = f.locals @ List.rev !extra_locals; blocks }

(** Instrument the whole program.  The input program is not modified. *)
let run (prog : Sil.Prog.t) (analysis : Arg_analysis.t) : t =
  let counts = { write_mem = 0; bind_mem = 0; bind_const = 0 } in
  let metas = ref [] in
  let next_id = ref 0 in
  let fresh_id () =
    incr next_id;
    !next_id
  in
  let funcs = Hashtbl.create (Hashtbl.length prog.funcs) in
  Hashtbl.iter
    (fun name (f : Sil.Func.t) ->
      match f.kind with
      | App_code ->
        Hashtbl.replace funcs name
          (instrument_func analysis counts ~structs:prog.structs ~fresh_id ~metas f)
      | Syscall_stub _ | Intrinsic _ -> Hashtbl.replace funcs name f)
    prog.funcs;
  ensure_intrinsics funcs;
  let iprog =
    { Sil.Prog.structs = prog.structs; globals = prog.globals; funcs; entry = prog.entry }
  in
  { iprog; callsites = !metas; counts }
