(** The instrumentation pass (§6.3.3): rewrite a program, inserting the
    BASTION runtime-library calls of Table 2 — ctx_write_mem after
    sensitive stores (and at function entry), ctx_bind_mem /
    ctx_bind_const before sensitive callsites. *)

val write_mem_name : string
val bind_mem_name : string
val bind_const_name : string

(** One instrumented callsite, keyed by its small-integer id. *)
type callsite_meta = {
  cm_id : int;
  cm_loc : Sil.Loc.t;  (** location of the call in the INSTRUMENTED program *)
  cm_orig : Sil.Loc.t;  (** the same call in the ORIGINAL program *)
  cm_callee : string;
  cm_sysno : int option;
  cm_specs : (int * Arg_analysis.binding) list;
}

(** Instrumentation-site counts (Table 5 rows 6-8). *)
type counts = {
  mutable write_mem : int;
  mutable bind_mem : int;
  mutable bind_const : int;
}

type t = {
  iprog : Sil.Prog.t;            (** the instrumented program *)
  callsites : callsite_meta list;
  counts : counts;
}

(** Instrument the whole program; the input is not modified. *)
val run : Sil.Prog.t -> Arg_analysis.t -> t
