(* Deploy-time (post-layout) metadata: the paper's compiler-generated
   context metadata with program offsets resolved to concrete addresses,
   as loaded by the monitor at initialisation (§7.1). *)

type arg_spec = Spec_const of int64 | Spec_mem

type cheap_recipe = Cheap_frame of int | Cheap_global of int64

type cs_entry = {
  e_id : int;
  e_loc : Sil.Loc.t;
  e_addr : int64;
  e_callee : string;
  e_sysno : int option;
  e_specs : (int * arg_spec) list;
  e_pre : (int * int64) list;
      (** positions pre-resolved to a provably constant value: the
          monitor verifies these against the constant, skipping the
          shadow probes *)
  e_pre_ctx : (int * (int * int64) list) list;
      (** positions pre-resolved per calling context: for each position
          the admissible (caller callsite id, value) pairs; a trap whose
          caller frame matches one of the ids verifies against that
          value with no probes, any other caller falls back to the
          dynamic path *)
  e_dead : bool;
      (** the site is provably unreachable on benign executions: the
          monitor denies any trap here outright *)
  e_ranks : (int * bool) list;
      (** per-position taint rank ([true] = attacker-reachable);
          untainted positions may verify through the cheap recipe *)
  e_cheap : (int * cheap_recipe) list;
      (** for untainted [Spec_mem] positions: where the bound object
          lives, so the expected value is a single shadow probe away
          (frame word offset for locals, absolute address for
          globals) *)
}

type conv = Conv_direct of string | Conv_indirect

type t = {
  calltype : Calltype.t;
  cfg : Cfg_analysis.t;
  cs_by_addr : (int64, cs_entry) Hashtbl.t;
  conv_by_addr : (int64, conv) Hashtbl.t;  (** every callsite's convention *)
  func_slots : (string, int list) Hashtbl.t;  (** sensitive local offsets (words) *)
  checked_globals : (string * int64 * int) list;  (** name, address, words *)
  entry_count : int;  (** total metadata entries, for init-cost reporting *)
}

let resolve_spec (m : Machine.t) (binding : Arg_analysis.binding) : arg_spec =
  match binding with
  | Bind_const c -> Spec_const c
  | Bind_cstr s -> Spec_const (Machine.Layout.intern_string m.layout m.mem s)
  | Bind_faddr f -> Spec_const (Machine.Layout.func_entry m.layout f)
  | Bind_var _ | Bind_global _ -> Spec_mem

let build ~(calltype : Calltype.t) ~(cfg : Cfg_analysis.t)
    ~(analysis : Arg_analysis.t) ~(inst : Instrument.t)
    ?(pre_resolved : (int, (int * int64) list) Hashtbl.t = Hashtbl.create 1)
    ?(pre_resolved_ctx : (int, (int * int * int64) list) Hashtbl.t = Hashtbl.create 1)
    ?(slot_ranks : (int, (int * bool) list) Hashtbl.t = Hashtbl.create 1)
    ?(dead_sites : (int, unit) Hashtbl.t = Hashtbl.create 1)
    (m : Machine.t) : t =
  let cs_by_addr = Hashtbl.create 64 in
  List.iter
    (fun (cm : Instrument.callsite_meta) ->
      let e_addr = Machine.Layout.addr_of_loc m.layout cm.cm_loc in
      let e_ranks =
        Option.value ~default:[] (Hashtbl.find_opt slot_ranks cm.cm_id)
      in
      let e_pre_ctx =
        (* Group the flat (pos, caller, value) triples per position,
           keeping caller order; sorted by position for determinism. *)
        List.sort compare
          (List.fold_left
             (fun acc (pos, caller, v) ->
               let cur = Option.value ~default:[] (List.assoc_opt pos acc) in
               (pos, cur @ [ (caller, v) ]) :: List.remove_assoc pos acc)
             []
             (Option.value ~default:[]
                (Hashtbl.find_opt pre_resolved_ctx cm.cm_id)))
      in
      let e_cheap =
        (* A single-probe recipe exists only for ranked-untainted
           positions bound to an addressable object; everything else
           keeps the full binding+shadow path. *)
        List.filter_map
          (fun (pos, tainted) ->
            if tainted then None
            else
              match List.assoc_opt pos cm.cm_specs with
              | Some (Arg_analysis.Bind_var v) -> (
                try
                  Some
                    ( pos,
                      Cheap_frame
                        (Machine.Layout.var_offset m.layout cm.cm_loc.func v.vid) )
                with Invalid_argument _ -> None)
              | Some (Arg_analysis.Bind_global g) ->
                Some (pos, Cheap_global (Machine.Layout.global_addr m.layout g))
              | Some (Bind_const _ | Bind_cstr _ | Bind_faddr _) | None -> None)
          e_ranks
      in
      Hashtbl.replace cs_by_addr e_addr
        {
          e_id = cm.cm_id;
          e_loc = cm.cm_loc;
          e_addr;
          e_callee = cm.cm_callee;
          e_sysno = cm.cm_sysno;
          e_specs = List.map (fun (pos, b) -> (pos, resolve_spec m b)) cm.cm_specs;
          e_pre =
            Option.value ~default:[] (Hashtbl.find_opt pre_resolved cm.cm_id);
          e_pre_ctx;
          e_dead = Hashtbl.mem dead_sites cm.cm_id;
          e_ranks;
          e_cheap;
        })
    inst.callsites;
  let conv_by_addr = Hashtbl.create 256 in
  List.iter
    (fun (loc, _dst, target, _args) ->
      let addr = Machine.Layout.addr_of_loc m.layout loc in
      let conv =
        match (target : Sil.Instr.call_target) with
        | Direct f -> Conv_direct f
        | Indirect _ -> Conv_indirect
      in
      Hashtbl.replace conv_by_addr addr conv)
    (Sil.Prog.calls m.prog);
  let func_slots = Hashtbl.create 64 in
  List.iter
    (fun (f : Sil.Func.t) ->
      match Arg_analysis.sensitive_locals_of analysis f.fname with
      | [] -> ()
      | vars ->
        let offsets =
          List.filter_map
            (fun (v : Sil.Operand.var) ->
              try Some (Machine.Layout.var_offset m.layout f.fname v.vid)
              with Invalid_argument _ -> None)
            vars
        in
        Hashtbl.replace func_slots f.fname offsets)
    (Sil.Prog.functions m.prog);
  let checked_globals =
    (* Sensitive scalar/aggregate globals, plus sensitive fields of any
       struct-typed global. *)
    let direct =
      List.map
        (fun g ->
          (g, Machine.Layout.global_addr m.layout g, Machine.Layout.global_words m.layout g))
        (Arg_analysis.sensitive_globals analysis)
    in
    let field_regions gname sname ~elem_base =
      List.filter_map
        (fun (s, f) ->
          if String.equal s sname then
            let off = Sil.Types.field_offset m.prog.structs s f in
            let words =
              Sil.Types.size_words m.prog.structs
                (Sil.Types.field_type m.prog.structs s f)
            in
            Some
              ( Printf.sprintf "%s.%s" gname f,
                Machine.Memory.addr_add elem_base off,
                words )
          else None)
        (Arg_analysis.sensitive_fields analysis)
    in
    let fields =
      List.concat_map
        (fun (g : Sil.Prog.global) ->
          let base = Machine.Layout.global_addr m.layout g.gname in
          match g.gty with
          | Sil.Types.Struct sname -> field_regions g.gname sname ~elem_base:base
          | Sil.Types.Array (Sil.Types.Struct sname, n) ->
            (* Arrays of structs (vtable-like object tables): check the
               sensitive fields of every element. *)
            let elem = Sil.Types.size_words m.prog.structs (Sil.Types.Struct sname) in
            List.concat_map
              (fun e ->
                field_regions
                  (Printf.sprintf "%s[%d]" g.gname e)
                  sname
                  ~elem_base:(Machine.Memory.addr_add base (e * elem)))
              (List.init n Fun.id)
          | Sil.Types.Void | Sil.Types.I64 | Sil.Types.Ptr _ | Sil.Types.Array _
          | Sil.Types.Func _ -> [])
        m.prog.globals
    in
    direct @ fields
  in
  let entry_count =
    Hashtbl.length cs_by_addr + Hashtbl.length conv_by_addr
    + Cfg_analysis.pair_count cfg + List.length checked_globals
  in
  { calltype; cfg; cs_by_addr; conv_by_addr; func_slots; checked_globals; entry_count }

(* ------------------------------------------------------------------ *)
(* Fingerprinting.  The replay trace header pins the metadata bundle a
   stream was recorded against; the replay engine refuses to judge a
   trace against different metadata (same hard-gate posture as the
   metadata-file version check).  FNV-1a over a canonical rendering —
   not [Hashtbl.hash], whose value is not stable across compiler
   versions and must not leak into checked-in golden traces. *)

let fnv_prime = 0x100000001b3L
let fnv_basis = 0xcbf29ce484222325L

let fnv1a (acc : int64) (s : string) : int64 =
  let h = ref acc in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) fnv_prime)
    s;
  (* Fold the terminator so "ab"+"c" and "a"+"bc" hash differently. *)
  Int64.mul (Int64.logxor !h 0xffL) fnv_prime

let sorted_by_addr tbl =
  List.sort (fun (a, _) (b, _) -> Int64.compare a b)
    (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

let spec_string = function
  | Spec_const c -> Printf.sprintf "c%Lx" c
  | Spec_mem -> "m"

(** A stable fingerprint of the deployed metadata: callsite entries
    (including pre-resolved constants), calling conventions, call-type
    classification, CFG pair count, sensitive slots and globals.  Two
    bundles that could judge a trap differently fingerprint apart. *)
let fingerprint (t : t) : string =
  let h = ref fnv_basis in
  let add s = h := fnv1a !h s in
  add (Printf.sprintf "entries=%d;cfg-pairs=%d" t.entry_count
         (Cfg_analysis.pair_count t.cfg));
  List.iter
    (fun (addr, (e : cs_entry)) ->
      (* Context records, ranks and dead flags join the rendering only
         when present, so bundles without the new judgements keep their
         historical fingerprints (checked-in golden traces stay valid). *)
      let extras =
        (if e.e_dead then [ "dead" ] else [])
        @ (match e.e_pre_ctx with
          | [] -> []
          | ctx ->
            [ "ctx="
              ^ String.concat ","
                  (List.map
                     (fun (p, alts) ->
                       Printf.sprintf "%d=%s" p
                         (String.concat "/"
                            (List.map
                               (fun (caller, v) -> Printf.sprintf "%d:%Lx" caller v)
                               alts)))
                     ctx) ])
        @
        match e.e_ranks with
        | [] -> []
        | ranks ->
          [ "rank="
            ^ String.concat ","
                (List.map
                   (fun (p, tainted) ->
                     Printf.sprintf "%d=%c" p (if tainted then 't' else 'u'))
                   ranks) ]
      in
      add
        (Printf.sprintf "cs:%Lx:%d:%s:%s:%s:%s%s" addr e.e_id e.e_callee
           (match e.e_sysno with None -> "-" | Some n -> string_of_int n)
           (String.concat ","
              (List.map (fun (p, s) -> Printf.sprintf "%d=%s" p (spec_string s))
                 e.e_specs))
           (String.concat ","
              (List.map (fun (p, c) -> Printf.sprintf "%d=%Lx" p c) e.e_pre))
           (match extras with [] -> "" | l -> ":" ^ String.concat ":" l)))
    (sorted_by_addr t.cs_by_addr);
  List.iter
    (fun (addr, conv) ->
      add
        (match conv with
        | Conv_direct f -> Printf.sprintf "conv:%Lx:d:%s" addr f
        | Conv_indirect -> Printf.sprintf "conv:%Lx:i" addr))
    (sorted_by_addr t.conv_by_addr);
  List.iter
    (fun (name, nr, _) ->
      let ct = Calltype.call_type t.calltype nr in
      if ct.directly || ct.indirectly then
        add
          (Printf.sprintf "ct:%s:%b:%b" name ct.directly ct.indirectly))
    Kernel.Syscalls.table;
  List.iter
    (fun (fname, offsets) ->
      add
        (Printf.sprintf "slots:%s:%s" fname
           (String.concat "," (List.map string_of_int offsets))))
    (List.sort compare
       (Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.func_slots []));
  List.iter
    (fun (name, addr, words) ->
      add (Printf.sprintf "g:%s:%Lx:%d" name addr words))
    t.checked_globals;
  Printf.sprintf "fnv1a64:%016Lx" !h
