(* Deploy-time (post-layout) metadata: the paper's compiler-generated
   context metadata with program offsets resolved to concrete addresses,
   as loaded by the monitor at initialisation (§7.1). *)

type arg_spec = Spec_const of int64 | Spec_mem

type cs_entry = {
  e_id : int;
  e_loc : Sil.Loc.t;
  e_addr : int64;
  e_callee : string;
  e_sysno : int option;
  e_specs : (int * arg_spec) list;
  e_pre : (int * int64) list;
      (** positions pre-resolved to a provably constant value: the
          monitor verifies these against the constant, skipping the
          shadow probes *)
}

type conv = Conv_direct of string | Conv_indirect

type t = {
  calltype : Calltype.t;
  cfg : Cfg_analysis.t;
  cs_by_addr : (int64, cs_entry) Hashtbl.t;
  conv_by_addr : (int64, conv) Hashtbl.t;  (** every callsite's convention *)
  func_slots : (string, int list) Hashtbl.t;  (** sensitive local offsets (words) *)
  checked_globals : (string * int64 * int) list;  (** name, address, words *)
  entry_count : int;  (** total metadata entries, for init-cost reporting *)
}

let resolve_spec (m : Machine.t) (binding : Arg_analysis.binding) : arg_spec =
  match binding with
  | Bind_const c -> Spec_const c
  | Bind_cstr s -> Spec_const (Machine.Layout.intern_string m.layout m.mem s)
  | Bind_faddr f -> Spec_const (Machine.Layout.func_entry m.layout f)
  | Bind_var _ | Bind_global _ -> Spec_mem

let build ~(calltype : Calltype.t) ~(cfg : Cfg_analysis.t)
    ~(analysis : Arg_analysis.t) ~(inst : Instrument.t)
    ?(pre_resolved : (int, (int * int64) list) Hashtbl.t = Hashtbl.create 1)
    (m : Machine.t) : t =
  let cs_by_addr = Hashtbl.create 64 in
  List.iter
    (fun (cm : Instrument.callsite_meta) ->
      let e_addr = Machine.Layout.addr_of_loc m.layout cm.cm_loc in
      Hashtbl.replace cs_by_addr e_addr
        {
          e_id = cm.cm_id;
          e_loc = cm.cm_loc;
          e_addr;
          e_callee = cm.cm_callee;
          e_sysno = cm.cm_sysno;
          e_specs = List.map (fun (pos, b) -> (pos, resolve_spec m b)) cm.cm_specs;
          e_pre =
            Option.value ~default:[] (Hashtbl.find_opt pre_resolved cm.cm_id);
        })
    inst.callsites;
  let conv_by_addr = Hashtbl.create 256 in
  List.iter
    (fun (loc, _dst, target, _args) ->
      let addr = Machine.Layout.addr_of_loc m.layout loc in
      let conv =
        match (target : Sil.Instr.call_target) with
        | Direct f -> Conv_direct f
        | Indirect _ -> Conv_indirect
      in
      Hashtbl.replace conv_by_addr addr conv)
    (Sil.Prog.calls m.prog);
  let func_slots = Hashtbl.create 64 in
  List.iter
    (fun (f : Sil.Func.t) ->
      match Arg_analysis.sensitive_locals_of analysis f.fname with
      | [] -> ()
      | vars ->
        let offsets =
          List.filter_map
            (fun (v : Sil.Operand.var) ->
              try Some (Machine.Layout.var_offset m.layout f.fname v.vid)
              with Invalid_argument _ -> None)
            vars
        in
        Hashtbl.replace func_slots f.fname offsets)
    (Sil.Prog.functions m.prog);
  let checked_globals =
    (* Sensitive scalar/aggregate globals, plus sensitive fields of any
       struct-typed global. *)
    let direct =
      List.map
        (fun g ->
          (g, Machine.Layout.global_addr m.layout g, Machine.Layout.global_words m.layout g))
        (Arg_analysis.sensitive_globals analysis)
    in
    let field_regions gname sname ~elem_base =
      List.filter_map
        (fun (s, f) ->
          if String.equal s sname then
            let off = Sil.Types.field_offset m.prog.structs s f in
            let words =
              Sil.Types.size_words m.prog.structs
                (Sil.Types.field_type m.prog.structs s f)
            in
            Some
              ( Printf.sprintf "%s.%s" gname f,
                Machine.Memory.addr_add elem_base off,
                words )
          else None)
        (Arg_analysis.sensitive_fields analysis)
    in
    let fields =
      List.concat_map
        (fun (g : Sil.Prog.global) ->
          let base = Machine.Layout.global_addr m.layout g.gname in
          match g.gty with
          | Sil.Types.Struct sname -> field_regions g.gname sname ~elem_base:base
          | Sil.Types.Array (Sil.Types.Struct sname, n) ->
            (* Arrays of structs (vtable-like object tables): check the
               sensitive fields of every element. *)
            let elem = Sil.Types.size_words m.prog.structs (Sil.Types.Struct sname) in
            List.concat_map
              (fun e ->
                field_regions
                  (Printf.sprintf "%s[%d]" g.gname e)
                  sname
                  ~elem_base:(Machine.Memory.addr_add base (e * elem)))
              (List.init n Fun.id)
          | Sil.Types.Void | Sil.Types.I64 | Sil.Types.Ptr _ | Sil.Types.Array _
          | Sil.Types.Func _ -> [])
        m.prog.globals
    in
    direct @ fields
  in
  let entry_count =
    Hashtbl.length cs_by_addr + Hashtbl.length conv_by_addr
    + Cfg_analysis.pair_count cfg + List.length checked_globals
  in
  { calltype; cfg; cs_by_addr; conv_by_addr; func_slots; checked_globals; entry_count }
