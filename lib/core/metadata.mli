(** Deploy-time (post-layout) metadata: the compiler-generated context
    metadata with program offsets resolved to concrete code addresses,
    as the monitor loads it at initialisation (§7.1). *)

(** How one argument position is verified. *)
type arg_spec = Spec_const of int64 | Spec_mem

(** Where an untainted [Spec_mem] slot's bound object lives: a frame
    word offset for locals, an absolute address for globals.  Lets the
    monitor fetch the expected value with a single shadow probe instead
    of the binding+shadow pair. *)
type cheap_recipe = Cheap_frame of int | Cheap_global of int64

(** One traced callsite. *)
type cs_entry = {
  e_id : int;
  e_loc : Sil.Loc.t;
  e_addr : int64;
  e_callee : string;
  e_sysno : int option;  (** [Some n] iff a syscall callsite *)
  e_specs : (int * arg_spec) list;
  e_pre : (int * int64) list;
      (** positions pre-resolved to a provably constant value: verified
          against the constant, skipping the shadow probes *)
  e_pre_ctx : (int * (int * int64) list) list;
      (** per position the admissible (caller callsite id, value) pairs;
          a trap whose caller frame matches verifies against the value
          with no probes, other callers fall back to the dynamic path *)
  e_dead : bool;
      (** provably unreachable on benign executions: any trap here is
          denied outright *)
  e_ranks : (int * bool) list;
      (** per-position taint rank ([true] = attacker-reachable) *)
  e_cheap : (int * cheap_recipe) list;
      (** single-probe recipes for ranked-untainted positions *)
}

(** Calling convention of a callsite (what decoding the call instruction
    at the trap rip reveals). *)
type conv = Conv_direct of string | Conv_indirect

type t = {
  calltype : Calltype.t;
  cfg : Cfg_analysis.t;
  cs_by_addr : (int64, cs_entry) Hashtbl.t;
  conv_by_addr : (int64, conv) Hashtbl.t;   (** every callsite *)
  func_slots : (string, int list) Hashtbl.t;
      (** per function: word offsets of sensitive locals *)
  checked_globals : (string * int64 * int) list;
      (** sensitive global regions: name, address, words *)
  entry_count : int;  (** total metadata entries (init-cost reporting) *)
}

val resolve_spec : Machine.t -> Arg_analysis.binding -> arg_spec

val build :
  calltype:Calltype.t ->
  cfg:Cfg_analysis.t ->
  analysis:Arg_analysis.t ->
  inst:Instrument.t ->
  ?pre_resolved:(int, (int * int64) list) Hashtbl.t ->
  ?pre_resolved_ctx:(int, (int * int * int64) list) Hashtbl.t ->
  ?slot_ranks:(int, (int * bool) list) Hashtbl.t ->
  ?dead_sites:(int, unit) Hashtbl.t ->
  Machine.t ->
  t

(** A stable fingerprint of the deployed metadata (FNV-1a over a
    canonical rendering of callsite entries, conventions, call types,
    CFG pair count, sensitive slots and globals).  The replay trace
    header pins the bundle a stream was recorded against; two bundles
    that could judge a trap differently fingerprint apart.  Stable
    across processes and compiler versions (no [Hashtbl.hash]). *)
val fingerprint : t -> string
