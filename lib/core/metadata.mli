(** Deploy-time (post-layout) metadata: the compiler-generated context
    metadata with program offsets resolved to concrete code addresses,
    as the monitor loads it at initialisation (§7.1). *)

(** How one argument position is verified. *)
type arg_spec = Spec_const of int64 | Spec_mem

(** One traced callsite. *)
type cs_entry = {
  e_id : int;
  e_loc : Sil.Loc.t;
  e_addr : int64;
  e_callee : string;
  e_sysno : int option;  (** [Some n] iff a syscall callsite *)
  e_specs : (int * arg_spec) list;
  e_pre : (int * int64) list;
      (** positions pre-resolved to a provably constant value: verified
          against the constant, skipping the shadow probes *)
}

(** Calling convention of a callsite (what decoding the call instruction
    at the trap rip reveals). *)
type conv = Conv_direct of string | Conv_indirect

type t = {
  calltype : Calltype.t;
  cfg : Cfg_analysis.t;
  cs_by_addr : (int64, cs_entry) Hashtbl.t;
  conv_by_addr : (int64, conv) Hashtbl.t;   (** every callsite *)
  func_slots : (string, int list) Hashtbl.t;
      (** per function: word offsets of sensitive locals *)
  checked_globals : (string * int64 * int) list;
      (** sensitive global regions: name, address, words *)
  entry_count : int;  (** total metadata entries (init-cost reporting) *)
}

val resolve_spec : Machine.t -> Arg_analysis.binding -> arg_spec

val build :
  calltype:Calltype.t ->
  cfg:Cfg_analysis.t ->
  analysis:Arg_analysis.t ->
  inst:Instrument.t ->
  ?pre_resolved:(int, (int * int64) list) Hashtbl.t ->
  Machine.t ->
  t

(** A stable fingerprint of the deployed metadata (FNV-1a over a
    canonical rendering of callsite entries, conventions, call types,
    CFG pair count, sensitive slots and globals).  The replay trace
    header pins the bundle a stream was recorded against; two bundles
    that could judge a trap differently fingerprint apart.  Stable
    across processes and compiler versions (no [Hashtbl.hash]). *)
val fingerprint : t -> string
