(* Serialisation of the compiler-generated context metadata.

   In the paper the BASTION compiler writes its analysis results to a
   metadata file shipped alongside the protected binary; the monitor
   loads it at initialisation (§7.1, Fig. 1).  This module implements
   that boundary: {!write} renders everything the runtime needs —
   call-type table, legitimate indirect callsites, callee→caller pairs,
   per-callsite argument bindings, sensitive variables — as a
   line-oriented text format, and {!restore} rebuilds a deployable
   {!Api.protected} from the metadata plus the instrumented program.

   Format (one record per line, strings in OCaml lexical form):

     BASTION-METADATA v3
     section <name> <count> <required|optional>
     calltype <sysno> <d|i|di>
     indirect-callsite <func> <block> <index>
     indirect-target <fname>
     valid-caller <callee> <caller-func> <block> <index>
     covered <fname>
     sensitive-callsite <func> <block> <index>
     counts <write_mem> <bind_mem> <bind_const>
     callsite <id> <ifunc> <iblock> <iindex> <oblock> <oindex> <callee> <sysno|->
     arg <id> <pos> const <int64>
     arg <id> <pos> cstr "<string>"
     arg <id> <pos> faddr <fname>
     arg <id> <pos> var <func> <vid> "<name>"
     arg <id> <pos> global <gname>
     pre-resolved <id> <pos> <int64>
     pre-resolved-ctx <id> <pos> <caller-id> <int64>
     slot-rank <id> <pos> <t|u>
     dead-site <id>
     sensitive-local <func> <vid> "<name>"
     sensitive-global <gname>
     sensitive-field <struct> <field>

   v1 -> v2: the callsite record carries the call's location in the
   ORIGINAL program as well (same function, so only block and index are
   repeated), and the pre-resolved record stores the constant-argument
   pre-resolution results.  v1 files are rejected with a clear
   unsupported-version error rather than a field-level parse failure.
   The pre-resolved-ctx (per-caller constants), slot-rank (taint ranks,
   t = tainted, u = untainted) and dead-site (benign-unreachable
   callsites) records are additive v2 extensions: files without them
   parse unchanged.

   v2 -> v3: the file gains a self-describing section table.  Every
   record now lives inside a named, length-prefixed section

     section <name> <count> <required|optional>

   followed by exactly <count> record lines.  A v3 reader that meets a
   section name it does not know SKIPS its <count> lines when the
   section is marked optional, and rejects the file with a positioned
   error when it is marked required — so future metadata extensions are
   additive without another version bump, and a writer can demand that
   a reader understand a section by flagging it required.  Truncated
   sections (fewer lines than the count promises) and record lines
   outside any section are positioned errors too.  v2 files keep their
   exact v1-era reader: no section table, every line a record. *)

let header = "BASTION-METADATA v3"

let header_v2 = "BASTION-METADATA v2"

let header_prefix = "BASTION-METADATA "

exception Parse_error of int * string

(* The canonical v3 sections, in file order.  [static] is the only
   optional one: a reader that cannot interpret the static-analysis
   acceleration records can still enforce soundly without them, whereas
   dropping any of the others would silently weaken enforcement. *)
let known_sections = [
  ("calltype", `Required);
  ("cfg", `Required);
  ("callsites", `Required);
  ("static", `Optional);
  ("sensitive", `Required);
]

let loc_str (l : Sil.Loc.t) = Printf.sprintf "%s %s %d" l.func l.block l.index

(* ------------------------------------------------------------------ *)
(* Writing                                                             *)

let write_binding buf id pos (b : Arg_analysis.binding) =
  match b with
  | Bind_const c -> Printf.bprintf buf "arg %d %d const %Ld\n" id pos c
  | Bind_cstr s -> Printf.bprintf buf "arg %d %d cstr %S\n" id pos s
  | Bind_faddr f -> Printf.bprintf buf "arg %d %d faddr %s\n" id pos f
  | Bind_var v -> Printf.bprintf buf "arg %d %d var %d %S\n" id pos v.vid v.vname
  | Bind_global g -> Printf.bprintf buf "arg %d %d global %s\n" id pos g

(* A section under construction: records are rendered into a private
   buffer, then emitted behind a [section <name> <count> <flag>] line
   with the exact line count. *)
let section_lines buf =
  let n = ref 0 in
  String.iter (fun c -> if Char.equal c '\n' then incr n) (Buffer.contents buf);
  !n

let emit_section out name flag buf =
  Printf.bprintf out "section %s %d %s\n" name (section_lines buf)
    (match flag with `Required -> "required" | `Optional -> "optional");
  Buffer.add_buffer out buf

(** Render the metadata of a protected program (v3: sectioned). *)
let write (p : Api.protected) : string =
  let out = Buffer.create 4096 in
  Buffer.add_string out header;
  Buffer.add_char out '\n';
  (* Call-type section. *)
  let buf = Buffer.create 1024 in
  Hashtbl.iter
    (fun sysno (ct : Calltype.call_type) ->
      let conv =
        match (ct.directly, ct.indirectly) with
        | true, true -> "di"
        | true, false -> "d"
        | false, true -> "i"
        | false, false -> "-"
      in
      Printf.bprintf buf "calltype %d %s\n" sysno conv)
    p.calltype.by_sysno;
  Sil.Loc.Set.iter
    (fun l -> Printf.bprintf buf "indirect-callsite %s\n" (loc_str l))
    p.calltype.legit_indirect;
  Hashtbl.iter
    (fun f () -> Printf.bprintf buf "indirect-target %s\n" f)
    p.calltype.indirect_targets;
  emit_section out "calltype" `Required buf;
  (* Control-flow section. *)
  let buf = Buffer.create 1024 in
  Hashtbl.iter
    (fun callee set ->
      Sil.Loc.Set.iter
        (fun l -> Printf.bprintf buf "valid-caller %s %s\n" callee (loc_str l))
        set)
    p.cfg.valid_callers;
  Hashtbl.iter (fun f () -> Printf.bprintf buf "covered %s\n" f) p.cfg.covered;
  Sil.Loc.Set.iter
    (fun l -> Printf.bprintf buf "sensitive-callsite %s\n" (loc_str l))
    p.cfg.sensitive_callsites;
  emit_section out "cfg" `Required buf;
  (* Instrumented-callsite section. *)
  let buf = Buffer.create 1024 in
  Printf.bprintf buf "counts %d %d %d\n" p.inst.counts.write_mem p.inst.counts.bind_mem
    p.inst.counts.bind_const;
  List.iter
    (fun (cm : Instrument.callsite_meta) ->
      Printf.bprintf buf "callsite %d %s %s %d %s %s\n" cm.cm_id
        (loc_str cm.cm_loc) cm.cm_orig.block cm.cm_orig.index cm.cm_callee
        (match cm.cm_sysno with Some n -> string_of_int n | None -> "-");
      List.iter (fun (pos, b) -> write_binding buf cm.cm_id pos b) cm.cm_specs)
    p.inst.callsites;
  emit_section out "callsites" `Required buf;
  (* Static-analysis acceleration section: pre-resolution results,
     taint ranks and dead sites (empty unless the passes ran).  The
     only OPTIONAL section — a reader without it still enforces
     soundly, just without the cheaper AI tiers. *)
  let buf = Buffer.create 1024 in
  Hashtbl.iter
    (fun id pres ->
      List.iter
        (fun (pos, c) -> Printf.bprintf buf "pre-resolved %d %d %Ld\n" id pos c)
        pres)
    p.pre_resolved;
  Hashtbl.iter
    (fun id triples ->
      List.iter
        (fun (pos, caller, c) ->
          Printf.bprintf buf "pre-resolved-ctx %d %d %d %Ld\n" id pos caller c)
        triples)
    p.pre_resolved_ctx;
  Hashtbl.iter
    (fun id ranks ->
      List.iter
        (fun (pos, tainted) ->
          Printf.bprintf buf "slot-rank %d %d %c\n" id pos (if tainted then 't' else 'u'))
        ranks)
    p.slot_ranks;
  Hashtbl.iter (fun id () -> Printf.bprintf buf "dead-site %d\n" id) p.dead_sites;
  emit_section out "static" `Optional buf;
  (* Sensitive items (drive the monitor's sweeps). *)
  let buf = Buffer.create 1024 in
  Arg_analysis.Item_set.iter
    (fun item ->
      match item with
      | Arg_analysis.S_local (f, v) ->
        Printf.bprintf buf "sensitive-local %s %d %S\n" f v.vid v.vname
      | Arg_analysis.S_global g -> Printf.bprintf buf "sensitive-global %s\n" g
      | Arg_analysis.S_field (s, f) -> Printf.bprintf buf "sensitive-field %s %s\n" s f)
    p.analysis.items;
  emit_section out "sensitive" `Required buf;
  Buffer.contents out

let save (p : Api.protected) ~file =
  let oc = open_out file in
  output_string oc (write p);
  close_out oc

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)

type parsed = {
  pr_calltype : (int * Calltype.call_type) list;
  pr_indirect_callsites : Sil.Loc.t list;
  pr_indirect_targets : string list;
  pr_valid_callers : (string * Sil.Loc.t) list;
  pr_covered : string list;
  pr_sensitive_callsites : Sil.Loc.t list;
  pr_counts : int * int * int;
  pr_callsites : Instrument.callsite_meta list;  (** specs filled from arg lines *)
  pr_items : Arg_analysis.item list;
  pr_pre_resolved : (int * int * int64) list;  (** id, pos, constant *)
  pr_pre_resolved_ctx : (int * int * int * int64) list;
      (** id, pos, caller id, constant *)
  pr_slot_ranks : (int * int * bool) list;  (** id, pos, tainted *)
  pr_dead_sites : int list;
}

let parse (text : string) : parsed =
  let lines = Array.of_list (String.split_on_char '\n' text) in
  let first = if Array.length lines > 0 then lines.(0) else "" in
  let version =
    if String.equal first header then `V3
    else if String.equal first header_v2 then `V2
    else if
      String.length first >= String.length header_prefix
      && String.equal (String.sub first 0 (String.length header_prefix)) header_prefix
    then
      raise
        (Parse_error
           ( 1,
             Printf.sprintf
               "unsupported metadata version %s (this build reads %s and %s)"
               (String.sub first (String.length header_prefix)
                  (String.length first - String.length header_prefix))
               header header_v2 ))
    else raise (Parse_error (1, "missing metadata header"))
  in
  let calltype = ref [] in
  let ind_cs = ref [] in
  let ind_tg = ref [] in
  let pairs = ref [] in
  let covered = ref [] in
  let sens_cs = ref [] in
  let counts = ref (0, 0, 0) in
  let callsites : (int, Instrument.callsite_meta) Hashtbl.t = Hashtbl.create 32 in
  let args : (int, (int * Arg_analysis.binding) list ref) Hashtbl.t = Hashtbl.create 32 in
  let items = ref [] in
  let pre_resolved = ref [] in
  let pre_resolved_ctx = ref [] in
  let slot_ranks = ref [] in
  let dead_sites = ref [] in
  let fail ln msg = raise (Parse_error (ln, msg)) in
  (* One record line, shared verbatim between the v2 reader (every
     non-blank line is a record) and the v3 reader (records live inside
     sections). *)
  let parse_record ln line =
        try
          Scanf.sscanf line "%s@ %s@\000" (fun kind rest ->
              match kind with
              | "calltype" ->
                Scanf.sscanf rest "%d %s" (fun sysno conv ->
                    let ct =
                      match conv with
                      | "di" -> { Calltype.directly = true; indirectly = true }
                      | "d" -> { Calltype.directly = true; indirectly = false }
                      | "i" -> { Calltype.directly = false; indirectly = true }
                      | "-" -> Calltype.not_callable
                      | other -> fail ln ("bad call type " ^ other)
                    in
                    calltype := (sysno, ct) :: !calltype)
              | "indirect-callsite" ->
                Scanf.sscanf rest "%s %s %d" (fun f b ix ->
                    ind_cs := Sil.Loc.make f b ix :: !ind_cs)
              | "indirect-target" -> ind_tg := String.trim rest :: !ind_tg
              | "valid-caller" ->
                Scanf.sscanf rest "%s %s %s %d" (fun callee f b ix ->
                    pairs := (callee, Sil.Loc.make f b ix) :: !pairs)
              | "covered" -> covered := String.trim rest :: !covered
              | "sensitive-callsite" ->
                Scanf.sscanf rest "%s %s %d" (fun f b ix ->
                    sens_cs := Sil.Loc.make f b ix :: !sens_cs)
              | "counts" ->
                Scanf.sscanf rest "%d %d %d" (fun a b c -> counts := (a, b, c))
              | "callsite" ->
                Scanf.sscanf rest "%d %s %s %d %s %d %s %s"
                  (fun id f blk ix oblk oix callee sysno ->
                    Hashtbl.replace callsites id
                      {
                        Instrument.cm_id = id;
                        cm_loc = Sil.Loc.make f blk ix;
                        cm_orig = Sil.Loc.make f oblk oix;
                        cm_callee = callee;
                        cm_sysno =
                          (if String.equal sysno "-" then None
                           else Some (int_of_string sysno));
                        cm_specs = [];
                      })
              | "arg" ->
                Scanf.sscanf rest "%d %d %s@ %s@\000" (fun id pos akind payload ->
                    let binding =
                      match akind with
                      | "const" -> Arg_analysis.Bind_const (Int64.of_string payload)
                      | "cstr" -> Scanf.sscanf payload "%S" (fun s -> Arg_analysis.Bind_cstr s)
                      | "faddr" -> Arg_analysis.Bind_faddr (String.trim payload)
                      | "var" ->
                        Scanf.sscanf payload "%d %S" (fun vid vname ->
                            Arg_analysis.Bind_var { Sil.Operand.vid; vname })
                      | "global" -> Arg_analysis.Bind_global (String.trim payload)
                      | other -> fail ln ("bad binding kind " ^ other)
                    in
                    let cell =
                      match Hashtbl.find_opt args id with
                      | Some c -> c
                      | None ->
                        let c = ref [] in
                        Hashtbl.replace args id c;
                        c
                    in
                    cell := (pos, binding) :: !cell)
              | "pre-resolved" ->
                Scanf.sscanf rest "%d %d %Ld" (fun id pos c ->
                    pre_resolved := (id, pos, c) :: !pre_resolved)
              | "pre-resolved-ctx" ->
                Scanf.sscanf rest "%d %d %d %Ld" (fun id pos caller c ->
                    pre_resolved_ctx := (id, pos, caller, c) :: !pre_resolved_ctx)
              | "slot-rank" ->
                Scanf.sscanf rest "%d %d %c" (fun id pos flag ->
                    let tainted =
                      match flag with
                      | 't' -> true
                      | 'u' -> false
                      | other -> fail ln (Printf.sprintf "bad taint rank %c" other)
                    in
                    slot_ranks := (id, pos, tainted) :: !slot_ranks)
              | "dead-site" ->
                Scanf.sscanf rest "%d" (fun id -> dead_sites := id :: !dead_sites)
              | "sensitive-local" ->
                Scanf.sscanf rest "%s %d %S" (fun f vid vname ->
                    items := Arg_analysis.S_local (f, { Sil.Operand.vid; vname }) :: !items)
              | "sensitive-global" ->
                items := Arg_analysis.S_global (String.trim rest) :: !items
              | "sensitive-field" ->
                Scanf.sscanf rest "%s %s" (fun s f ->
                    items := Arg_analysis.S_field (s, f) :: !items)
              | other -> fail ln ("unknown record " ^ other))
        with
        | Parse_error _ as e -> raise e
        | Scanf.Scan_failure msg -> fail ln msg
        | Failure msg -> fail ln msg
        | End_of_file -> fail ln "truncated record"
  in
  (match version with
  | `V2 ->
    (* The exact v1-era reader: every non-blank line after the header
       is a record. *)
    Array.iteri
      (fun i line ->
        let ln = i + 1 in
        if ln = 1 || String.length line = 0 then () else parse_record ln line)
      lines
  | `V3 ->
    (* The sectioned reader: a little state machine over the section
       table.  Unknown optional sections are skipped record-for-record;
       unknown required sections, truncated sections and records
       outside any section are positioned errors. *)
    let n = Array.length lines in
    let i = ref 1 in
    while !i < n do
      let line = lines.(!i) in
      let ln = !i + 1 in
      if String.length line = 0 then incr i
      else if String.starts_with ~prefix:"section " line then begin
        let name, count, flag =
          try
            Scanf.sscanf line "section %s %d %s%!" (fun name count flag ->
                let flag =
                  match flag with
                  | "required" -> `Required
                  | "optional" -> `Optional
                  | other -> fail ln ("bad section flag " ^ other)
                in
                (name, count, flag))
          with
          | Parse_error _ as e -> raise e
          | Scanf.Scan_failure msg -> fail ln msg
          | Failure msg -> fail ln msg
          | End_of_file -> fail ln "truncated section header"
        in
        if count < 0 then fail ln (Printf.sprintf "negative section length %d" count);
        let known = List.mem_assoc name known_sections in
        (match flag with
        | `Required when not known ->
          fail ln
            (Printf.sprintf
               "unknown required section %s (this reader cannot skip it)" name)
        | _ -> ());
        for k = 1 to count do
          let j = !i + k in
          if j >= n || String.length lines.(j) = 0 then
            fail
              (min (j + 1) n)
              (Printf.sprintf "truncated section %s (%d of %d records)" name
                 (k - 1) count);
          if known then parse_record (j + 1) lines.(j)
        done;
        i := !i + count + 1
      end
      else fail ln "record outside any section"
    done);
  let pr_callsites =
    Hashtbl.fold
      (fun id (cm : Instrument.callsite_meta) acc ->
        let specs =
          match Hashtbl.find_opt args id with
          | Some c -> List.sort compare !c
          | None -> []
        in
        { cm with cm_specs = specs } :: acc)
      callsites []
  in
  {
    pr_calltype = !calltype;
    pr_indirect_callsites = !ind_cs;
    pr_indirect_targets = !ind_tg;
    pr_valid_callers = !pairs;
    pr_covered = !covered;
    pr_sensitive_callsites = !sens_cs;
    pr_counts = !counts;
    pr_callsites;
    pr_items = !items;
    pr_pre_resolved = !pre_resolved;
    pr_pre_resolved_ctx = !pre_resolved_ctx;
    pr_slot_ranks = !slot_ranks;
    pr_dead_sites = !dead_sites;
  }

(* ------------------------------------------------------------------ *)
(* Restoring a deployable protected bundle                             *)

(** Rebuild an {!Api.protected} from parsed metadata and the
    instrumented program it was produced for (the paper's binary +
    metadata file pair).  The result launches exactly like the output
    of {!Api.protect}. *)
let restore (iprog : Sil.Prog.t) (pr : parsed) : Api.protected =
  let by_sysno = Hashtbl.create 32 in
  List.iter (fun (n, ct) -> Hashtbl.replace by_sysno n ct) pr.pr_calltype;
  let legit_indirect =
    List.fold_left (fun s l -> Sil.Loc.Set.add l s) Sil.Loc.Set.empty
      pr.pr_indirect_callsites
  in
  let indirect_targets = Hashtbl.create 32 in
  List.iter (fun f -> Hashtbl.replace indirect_targets f ()) pr.pr_indirect_targets;
  let calltype = { Calltype.by_sysno; legit_indirect; indirect_targets } in
  let valid_callers = Hashtbl.create 32 in
  List.iter
    (fun (callee, l) ->
      let existing =
        Option.value ~default:Sil.Loc.Set.empty (Hashtbl.find_opt valid_callers callee)
      in
      Hashtbl.replace valid_callers callee (Sil.Loc.Set.add l existing))
    pr.pr_valid_callers;
  let covered = Hashtbl.create 32 in
  List.iter (fun f -> Hashtbl.replace covered f ()) pr.pr_covered;
  let sensitive_callsites =
    List.fold_left (fun s l -> Sil.Loc.Set.add l s) Sil.Loc.Set.empty
      pr.pr_sensitive_callsites
  in
  let cfg = { Cfg_analysis.valid_callers; covered; sensitive_callsites } in
  let items =
    List.fold_left (fun s i -> Arg_analysis.Item_set.add i s) Arg_analysis.Item_set.empty
      pr.pr_items
  in
  (* Plans are only consumed by the instrumenter, which already ran;
     keep the callsite plans reconstructible for introspection.  Plans
     are keyed by the call's location in the ORIGINAL program (that is
     what [Arg_analysis.plan_at] is asked with). *)
  let plans = Hashtbl.create 32 in
  List.iter
    (fun (cm : Instrument.callsite_meta) ->
      Hashtbl.replace plans cm.cm_orig
        {
          Arg_analysis.pl_loc = cm.cm_orig;
          pl_callee = cm.cm_callee;
          pl_sysno = cm.cm_sysno;
          pl_args = cm.cm_specs;
        })
    pr.pr_callsites;
  let analysis = { Arg_analysis.items; plans } in
  (* The per-id acceleration lists are rebuilt in SORTED position
     order — the same ascending order the static pre-resolution pass
     produces — so a saved-then-restored bundle deploys with the same
     metadata fingerprint as the in-memory bundle it was written from
     (the fingerprint hashes these lists in stored order). *)
  let group_sorted size add rows =
    let tbl = Hashtbl.create (max 1 size) in
    List.iter
      (fun row ->
        let id, entry = add row in
        let existing = Option.value ~default:[] (Hashtbl.find_opt tbl id) in
        Hashtbl.replace tbl id (entry :: existing))
      rows;
    let groups = Hashtbl.fold (fun id l acc -> (id, l) :: acc) tbl [] in
    List.iter
      (fun (id, l) -> Hashtbl.replace tbl id (List.sort compare l))
      groups;
    tbl
  in
  let pre_resolved =
    group_sorted (List.length pr.pr_pre_resolved)
      (fun (id, pos, c) -> (id, (pos, c)))
      pr.pr_pre_resolved
  in
  let pre_resolved_ctx =
    group_sorted (List.length pr.pr_pre_resolved_ctx)
      (fun (id, pos, caller, c) -> (id, (pos, caller, c)))
      pr.pr_pre_resolved_ctx
  in
  let slot_ranks =
    group_sorted (List.length pr.pr_slot_ranks)
      (fun (id, pos, tainted) -> (id, (pos, tainted)))
      pr.pr_slot_ranks
  in
  let dead_sites = Hashtbl.create (max 1 (List.length pr.pr_dead_sites)) in
  List.iter (fun id -> Hashtbl.replace dead_sites id ()) pr.pr_dead_sites;
  let w, bm, bc = pr.pr_counts in
  let inst =
    {
      Instrument.iprog;
      callsites = pr.pr_callsites;
      counts = { Instrument.write_mem = w; bind_mem = bm; bind_const = bc };
    }
  in
  {
    Api.original = iprog;
    inst;
    analysis;
    calltype;
    cfg;
    sensitive_numbers = Kernel.Syscalls.sensitive_numbers;
    original_callgraph = Sil.Callgraph.build iprog;
    pre_resolved;
    pre_resolved_ctx;
    slot_ranks;
    dead_sites;
  }

let load ~file (iprog : Sil.Prog.t) : Api.protected =
  let ic = open_in file in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  restore iprog (parse text)
