(* Serialisation of the compiler-generated context metadata.

   In the paper the BASTION compiler writes its analysis results to a
   metadata file shipped alongside the protected binary; the monitor
   loads it at initialisation (§7.1, Fig. 1).  This module implements
   that boundary: {!write} renders everything the runtime needs —
   call-type table, legitimate indirect callsites, callee→caller pairs,
   per-callsite argument bindings, sensitive variables — as a
   line-oriented text format, and {!restore} rebuilds a deployable
   {!Api.protected} from the metadata plus the instrumented program.

   Format (one record per line, strings in OCaml lexical form):

     BASTION-METADATA v2
     calltype <sysno> <d|i|di>
     indirect-callsite <func> <block> <index>
     indirect-target <fname>
     valid-caller <callee> <caller-func> <block> <index>
     covered <fname>
     sensitive-callsite <func> <block> <index>
     counts <write_mem> <bind_mem> <bind_const>
     callsite <id> <ifunc> <iblock> <iindex> <oblock> <oindex> <callee> <sysno|->
     arg <id> <pos> const <int64>
     arg <id> <pos> cstr "<string>"
     arg <id> <pos> faddr <fname>
     arg <id> <pos> var <func> <vid> "<name>"
     arg <id> <pos> global <gname>
     pre-resolved <id> <pos> <int64>
     pre-resolved-ctx <id> <pos> <caller-id> <int64>
     slot-rank <id> <pos> <t|u>
     dead-site <id>
     sensitive-local <func> <vid> "<name>"
     sensitive-global <gname>
     sensitive-field <struct> <field>

   v1 -> v2: the callsite record carries the call's location in the
   ORIGINAL program as well (same function, so only block and index are
   repeated), and the pre-resolved record stores the constant-argument
   pre-resolution results.  v1 files are rejected with a clear
   unsupported-version error rather than a field-level parse failure.
   The pre-resolved-ctx (per-caller constants), slot-rank (taint ranks,
   t = tainted, u = untainted) and dead-site (benign-unreachable
   callsites) records are additive v2 extensions: files without them
   parse unchanged. *)

let header = "BASTION-METADATA v2"

let header_prefix = "BASTION-METADATA "

exception Parse_error of int * string

let loc_str (l : Sil.Loc.t) = Printf.sprintf "%s %s %d" l.func l.block l.index

(* ------------------------------------------------------------------ *)
(* Writing                                                             *)

let write_binding buf id pos (b : Arg_analysis.binding) =
  match b with
  | Bind_const c -> Printf.bprintf buf "arg %d %d const %Ld\n" id pos c
  | Bind_cstr s -> Printf.bprintf buf "arg %d %d cstr %S\n" id pos s
  | Bind_faddr f -> Printf.bprintf buf "arg %d %d faddr %s\n" id pos f
  | Bind_var v -> Printf.bprintf buf "arg %d %d var %d %S\n" id pos v.vid v.vname
  | Bind_global g -> Printf.bprintf buf "arg %d %d global %s\n" id pos g

(** Render the metadata of a protected program. *)
let write (p : Api.protected) : string =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf header;
  Buffer.add_char buf '\n';
  (* Call-type table. *)
  Hashtbl.iter
    (fun sysno (ct : Calltype.call_type) ->
      let conv =
        match (ct.directly, ct.indirectly) with
        | true, true -> "di"
        | true, false -> "d"
        | false, true -> "i"
        | false, false -> "-"
      in
      Printf.bprintf buf "calltype %d %s\n" sysno conv)
    p.calltype.by_sysno;
  Sil.Loc.Set.iter
    (fun l -> Printf.bprintf buf "indirect-callsite %s\n" (loc_str l))
    p.calltype.legit_indirect;
  Hashtbl.iter
    (fun f () -> Printf.bprintf buf "indirect-target %s\n" f)
    p.calltype.indirect_targets;
  (* Control-flow metadata. *)
  Hashtbl.iter
    (fun callee set ->
      Sil.Loc.Set.iter
        (fun l -> Printf.bprintf buf "valid-caller %s %s\n" callee (loc_str l))
        set)
    p.cfg.valid_callers;
  Hashtbl.iter (fun f () -> Printf.bprintf buf "covered %s\n" f) p.cfg.covered;
  Sil.Loc.Set.iter
    (fun l -> Printf.bprintf buf "sensitive-callsite %s\n" (loc_str l))
    p.cfg.sensitive_callsites;
  (* Instrumented-callsite metadata. *)
  Printf.bprintf buf "counts %d %d %d\n" p.inst.counts.write_mem p.inst.counts.bind_mem
    p.inst.counts.bind_const;
  List.iter
    (fun (cm : Instrument.callsite_meta) ->
      Printf.bprintf buf "callsite %d %s %s %d %s %s\n" cm.cm_id
        (loc_str cm.cm_loc) cm.cm_orig.block cm.cm_orig.index cm.cm_callee
        (match cm.cm_sysno with Some n -> string_of_int n | None -> "-");
      List.iter (fun (pos, b) -> write_binding buf cm.cm_id pos b) cm.cm_specs)
    p.inst.callsites;
  (* Constant-argument pre-resolution results (empty unless the static
     pre-resolution pass ran). *)
  Hashtbl.iter
    (fun id pres ->
      List.iter
        (fun (pos, c) -> Printf.bprintf buf "pre-resolved %d %d %Ld\n" id pos c)
        pres)
    p.pre_resolved;
  Hashtbl.iter
    (fun id triples ->
      List.iter
        (fun (pos, caller, c) ->
          Printf.bprintf buf "pre-resolved-ctx %d %d %d %Ld\n" id pos caller c)
        triples)
    p.pre_resolved_ctx;
  Hashtbl.iter
    (fun id ranks ->
      List.iter
        (fun (pos, tainted) ->
          Printf.bprintf buf "slot-rank %d %d %c\n" id pos (if tainted then 't' else 'u'))
        ranks)
    p.slot_ranks;
  Hashtbl.iter (fun id () -> Printf.bprintf buf "dead-site %d\n" id) p.dead_sites;
  (* Sensitive items (drive the monitor's sweeps). *)
  Arg_analysis.Item_set.iter
    (fun item ->
      match item with
      | Arg_analysis.S_local (f, v) ->
        Printf.bprintf buf "sensitive-local %s %d %S\n" f v.vid v.vname
      | Arg_analysis.S_global g -> Printf.bprintf buf "sensitive-global %s\n" g
      | Arg_analysis.S_field (s, f) -> Printf.bprintf buf "sensitive-field %s %s\n" s f)
    p.analysis.items;
  Buffer.contents buf

let save (p : Api.protected) ~file =
  let oc = open_out file in
  output_string oc (write p);
  close_out oc

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)

type parsed = {
  pr_calltype : (int * Calltype.call_type) list;
  pr_indirect_callsites : Sil.Loc.t list;
  pr_indirect_targets : string list;
  pr_valid_callers : (string * Sil.Loc.t) list;
  pr_covered : string list;
  pr_sensitive_callsites : Sil.Loc.t list;
  pr_counts : int * int * int;
  pr_callsites : Instrument.callsite_meta list;  (** specs filled from arg lines *)
  pr_items : Arg_analysis.item list;
  pr_pre_resolved : (int * int * int64) list;  (** id, pos, constant *)
  pr_pre_resolved_ctx : (int * int * int * int64) list;
      (** id, pos, caller id, constant *)
  pr_slot_ranks : (int * int * bool) list;  (** id, pos, tainted *)
  pr_dead_sites : int list;
}

let parse (text : string) : parsed =
  let lines = String.split_on_char '\n' text in
  (match lines with
  | first :: _ when String.equal first header -> ()
  | first :: _
    when String.length first >= String.length header_prefix
         && String.equal (String.sub first 0 (String.length header_prefix)) header_prefix
    ->
    raise
      (Parse_error
         ( 1,
           Printf.sprintf "unsupported metadata version %s (this build reads %s)"
             (String.sub first (String.length header_prefix)
                (String.length first - String.length header_prefix))
             header ))
  | _ -> raise (Parse_error (1, "missing metadata header")));
  let calltype = ref [] in
  let ind_cs = ref [] in
  let ind_tg = ref [] in
  let pairs = ref [] in
  let covered = ref [] in
  let sens_cs = ref [] in
  let counts = ref (0, 0, 0) in
  let callsites : (int, Instrument.callsite_meta) Hashtbl.t = Hashtbl.create 32 in
  let args : (int, (int * Arg_analysis.binding) list ref) Hashtbl.t = Hashtbl.create 32 in
  let items = ref [] in
  let pre_resolved = ref [] in
  let pre_resolved_ctx = ref [] in
  let slot_ranks = ref [] in
  let dead_sites = ref [] in
  let fail ln msg = raise (Parse_error (ln, msg)) in
  List.iteri
    (fun i line ->
      let ln = i + 1 in
      if ln = 1 || String.length line = 0 then ()
      else
        try
          Scanf.sscanf line "%s@ %s@\000" (fun kind rest ->
              match kind with
              | "calltype" ->
                Scanf.sscanf rest "%d %s" (fun sysno conv ->
                    let ct =
                      match conv with
                      | "di" -> { Calltype.directly = true; indirectly = true }
                      | "d" -> { Calltype.directly = true; indirectly = false }
                      | "i" -> { Calltype.directly = false; indirectly = true }
                      | "-" -> Calltype.not_callable
                      | other -> fail ln ("bad call type " ^ other)
                    in
                    calltype := (sysno, ct) :: !calltype)
              | "indirect-callsite" ->
                Scanf.sscanf rest "%s %s %d" (fun f b ix ->
                    ind_cs := Sil.Loc.make f b ix :: !ind_cs)
              | "indirect-target" -> ind_tg := String.trim rest :: !ind_tg
              | "valid-caller" ->
                Scanf.sscanf rest "%s %s %s %d" (fun callee f b ix ->
                    pairs := (callee, Sil.Loc.make f b ix) :: !pairs)
              | "covered" -> covered := String.trim rest :: !covered
              | "sensitive-callsite" ->
                Scanf.sscanf rest "%s %s %d" (fun f b ix ->
                    sens_cs := Sil.Loc.make f b ix :: !sens_cs)
              | "counts" ->
                Scanf.sscanf rest "%d %d %d" (fun a b c -> counts := (a, b, c))
              | "callsite" ->
                Scanf.sscanf rest "%d %s %s %d %s %d %s %s"
                  (fun id f blk ix oblk oix callee sysno ->
                    Hashtbl.replace callsites id
                      {
                        Instrument.cm_id = id;
                        cm_loc = Sil.Loc.make f blk ix;
                        cm_orig = Sil.Loc.make f oblk oix;
                        cm_callee = callee;
                        cm_sysno =
                          (if String.equal sysno "-" then None
                           else Some (int_of_string sysno));
                        cm_specs = [];
                      })
              | "arg" ->
                Scanf.sscanf rest "%d %d %s@ %s@\000" (fun id pos akind payload ->
                    let binding =
                      match akind with
                      | "const" -> Arg_analysis.Bind_const (Int64.of_string payload)
                      | "cstr" -> Scanf.sscanf payload "%S" (fun s -> Arg_analysis.Bind_cstr s)
                      | "faddr" -> Arg_analysis.Bind_faddr (String.trim payload)
                      | "var" ->
                        Scanf.sscanf payload "%d %S" (fun vid vname ->
                            Arg_analysis.Bind_var { Sil.Operand.vid; vname })
                      | "global" -> Arg_analysis.Bind_global (String.trim payload)
                      | other -> fail ln ("bad binding kind " ^ other)
                    in
                    let cell =
                      match Hashtbl.find_opt args id with
                      | Some c -> c
                      | None ->
                        let c = ref [] in
                        Hashtbl.replace args id c;
                        c
                    in
                    cell := (pos, binding) :: !cell)
              | "pre-resolved" ->
                Scanf.sscanf rest "%d %d %Ld" (fun id pos c ->
                    pre_resolved := (id, pos, c) :: !pre_resolved)
              | "pre-resolved-ctx" ->
                Scanf.sscanf rest "%d %d %d %Ld" (fun id pos caller c ->
                    pre_resolved_ctx := (id, pos, caller, c) :: !pre_resolved_ctx)
              | "slot-rank" ->
                Scanf.sscanf rest "%d %d %c" (fun id pos flag ->
                    let tainted =
                      match flag with
                      | 't' -> true
                      | 'u' -> false
                      | other -> fail ln (Printf.sprintf "bad taint rank %c" other)
                    in
                    slot_ranks := (id, pos, tainted) :: !slot_ranks)
              | "dead-site" ->
                Scanf.sscanf rest "%d" (fun id -> dead_sites := id :: !dead_sites)
              | "sensitive-local" ->
                Scanf.sscanf rest "%s %d %S" (fun f vid vname ->
                    items := Arg_analysis.S_local (f, { Sil.Operand.vid; vname }) :: !items)
              | "sensitive-global" ->
                items := Arg_analysis.S_global (String.trim rest) :: !items
              | "sensitive-field" ->
                Scanf.sscanf rest "%s %s" (fun s f ->
                    items := Arg_analysis.S_field (s, f) :: !items)
              | other -> fail ln ("unknown record " ^ other))
        with
        | Parse_error _ as e -> raise e
        | Scanf.Scan_failure msg -> fail ln msg
        | Failure msg -> fail ln msg
        | End_of_file -> fail ln "truncated record")
    lines;
  let pr_callsites =
    Hashtbl.fold
      (fun id (cm : Instrument.callsite_meta) acc ->
        let specs =
          match Hashtbl.find_opt args id with
          | Some c -> List.sort compare !c
          | None -> []
        in
        { cm with cm_specs = specs } :: acc)
      callsites []
  in
  {
    pr_calltype = !calltype;
    pr_indirect_callsites = !ind_cs;
    pr_indirect_targets = !ind_tg;
    pr_valid_callers = !pairs;
    pr_covered = !covered;
    pr_sensitive_callsites = !sens_cs;
    pr_counts = !counts;
    pr_callsites;
    pr_items = !items;
    pr_pre_resolved = !pre_resolved;
    pr_pre_resolved_ctx = !pre_resolved_ctx;
    pr_slot_ranks = !slot_ranks;
    pr_dead_sites = !dead_sites;
  }

(* ------------------------------------------------------------------ *)
(* Restoring a deployable protected bundle                             *)

(** Rebuild an {!Api.protected} from parsed metadata and the
    instrumented program it was produced for (the paper's binary +
    metadata file pair).  The result launches exactly like the output
    of {!Api.protect}. *)
let restore (iprog : Sil.Prog.t) (pr : parsed) : Api.protected =
  let by_sysno = Hashtbl.create 32 in
  List.iter (fun (n, ct) -> Hashtbl.replace by_sysno n ct) pr.pr_calltype;
  let legit_indirect =
    List.fold_left (fun s l -> Sil.Loc.Set.add l s) Sil.Loc.Set.empty
      pr.pr_indirect_callsites
  in
  let indirect_targets = Hashtbl.create 32 in
  List.iter (fun f -> Hashtbl.replace indirect_targets f ()) pr.pr_indirect_targets;
  let calltype = { Calltype.by_sysno; legit_indirect; indirect_targets } in
  let valid_callers = Hashtbl.create 32 in
  List.iter
    (fun (callee, l) ->
      let existing =
        Option.value ~default:Sil.Loc.Set.empty (Hashtbl.find_opt valid_callers callee)
      in
      Hashtbl.replace valid_callers callee (Sil.Loc.Set.add l existing))
    pr.pr_valid_callers;
  let covered = Hashtbl.create 32 in
  List.iter (fun f -> Hashtbl.replace covered f ()) pr.pr_covered;
  let sensitive_callsites =
    List.fold_left (fun s l -> Sil.Loc.Set.add l s) Sil.Loc.Set.empty
      pr.pr_sensitive_callsites
  in
  let cfg = { Cfg_analysis.valid_callers; covered; sensitive_callsites } in
  let items =
    List.fold_left (fun s i -> Arg_analysis.Item_set.add i s) Arg_analysis.Item_set.empty
      pr.pr_items
  in
  (* Plans are only consumed by the instrumenter, which already ran;
     keep the callsite plans reconstructible for introspection.  Plans
     are keyed by the call's location in the ORIGINAL program (that is
     what [Arg_analysis.plan_at] is asked with). *)
  let plans = Hashtbl.create 32 in
  List.iter
    (fun (cm : Instrument.callsite_meta) ->
      Hashtbl.replace plans cm.cm_orig
        {
          Arg_analysis.pl_loc = cm.cm_orig;
          pl_callee = cm.cm_callee;
          pl_sysno = cm.cm_sysno;
          pl_args = cm.cm_specs;
        })
    pr.pr_callsites;
  let analysis = { Arg_analysis.items; plans } in
  let pre_resolved = Hashtbl.create (max 1 (List.length pr.pr_pre_resolved)) in
  List.iter
    (fun (id, pos, c) ->
      let existing = Option.value ~default:[] (Hashtbl.find_opt pre_resolved id) in
      Hashtbl.replace pre_resolved id ((pos, c) :: existing))
    pr.pr_pre_resolved;
  let pre_resolved_ctx =
    Hashtbl.create (max 1 (List.length pr.pr_pre_resolved_ctx))
  in
  List.iter
    (fun (id, pos, caller, c) ->
      let existing =
        Option.value ~default:[] (Hashtbl.find_opt pre_resolved_ctx id)
      in
      Hashtbl.replace pre_resolved_ctx id ((pos, caller, c) :: existing))
    pr.pr_pre_resolved_ctx;
  let slot_ranks = Hashtbl.create (max 1 (List.length pr.pr_slot_ranks)) in
  List.iter
    (fun (id, pos, tainted) ->
      let existing = Option.value ~default:[] (Hashtbl.find_opt slot_ranks id) in
      Hashtbl.replace slot_ranks id ((pos, tainted) :: existing))
    pr.pr_slot_ranks;
  let dead_sites = Hashtbl.create (max 1 (List.length pr.pr_dead_sites)) in
  List.iter (fun id -> Hashtbl.replace dead_sites id ()) pr.pr_dead_sites;
  let w, bm, bc = pr.pr_counts in
  let inst =
    {
      Instrument.iprog;
      callsites = pr.pr_callsites;
      counts = { Instrument.write_mem = w; bind_mem = bm; bind_const = bc };
    }
  in
  {
    Api.original = iprog;
    inst;
    analysis;
    calltype;
    cfg;
    sensitive_numbers = Kernel.Syscalls.sensitive_numbers;
    original_callgraph = Sil.Callgraph.build iprog;
    pre_resolved;
    pre_resolved_ctx;
    slot_ranks;
    dead_sites;
  }

let load ~file (iprog : Sil.Prog.t) : Api.protected =
  let ic = open_in file in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  restore iprog (parse text)
