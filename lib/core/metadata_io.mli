(** Serialisation of the compiler-generated context metadata — the
    metadata file the paper's compiler ships beside the protected
    binary and the monitor loads at initialisation (§7.1, Fig. 1). *)

val header : string
(** The current format header, ["BASTION-METADATA v3"]. *)

val header_v2 : string
(** The previous header; v2 files keep their exact original reader. *)

exception Parse_error of int * string
(** Line number and message. *)

(** The canonical v3 sections in file order, with their
    required/optional flags.  [static] is the only optional one: a
    reader without it still enforces soundly, just without the cheaper
    AI tiers.  Unknown optional sections in a file are skipped
    record-for-record; unknown required sections are rejected with a
    positioned error. *)
val known_sections : (string * [ `Required | `Optional ]) list

(** Render a protected program's metadata as the line-oriented text
    format documented in the implementation. *)
val write : Api.protected -> string

val save : Api.protected -> file:string -> unit

(** Raw parsed records. *)
type parsed = {
  pr_calltype : (int * Calltype.call_type) list;
  pr_indirect_callsites : Sil.Loc.t list;
  pr_indirect_targets : string list;
  pr_valid_callers : (string * Sil.Loc.t) list;
  pr_covered : string list;
  pr_sensitive_callsites : Sil.Loc.t list;
  pr_counts : int * int * int;
  pr_callsites : Instrument.callsite_meta list;
  pr_items : Arg_analysis.item list;
  pr_pre_resolved : (int * int * int64) list;  (** id, pos, constant *)
  pr_pre_resolved_ctx : (int * int * int * int64) list;
      (** id, pos, caller id, constant *)
  pr_slot_ranks : (int * int * bool) list;  (** id, pos, tainted *)
  pr_dead_sites : int list;
}

(** @raise Parse_error on malformed input. *)
val parse : string -> parsed

(** Rebuild a deployable bundle from metadata plus the instrumented
    program it was produced for; launches exactly like the output of
    {!Api.protect}. *)
val restore : Sil.Prog.t -> parsed -> Api.protected

val load : file:string -> Sil.Prog.t -> Api.protected
