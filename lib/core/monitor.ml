(* The BASTION runtime monitor (§7): a separate process that traps on
   sensitive syscall invocations (seccomp TRACE) and verifies the three
   contexts against compiler metadata before letting the call proceed.

   Enforcement order follows §7.2-§7.4: Call-Type, then Control-Flow,
   then Argument-Integrity; a violation kills the protected application.
   Every inspection of the tracee charges ptrace-modelled cycle costs. *)

module Ptrace = Kernel.Ptrace
module Process = Kernel.Process
module Syscalls = Kernel.Syscalls

type contexts = { ct : bool; cf : bool; ai : bool }

let all_contexts = { ct = true; cf = true; ai = true }
let no_contexts = { ct = false; cf = false; ai = false }

(** How the §11.2 filesystem-syscall extension is deployed (Table 7). *)
type fs_mode =
  | Fs_off          (** main evaluation: fs syscalls simply allowed *)
  | Fs_hook_only    (** row 1: seccomp evaluates, no trap *)
  | Fs_fetch_only   (** row 2: trap + fetch process state, no checking *)
  | Fs_full         (** row 3: trap + full context checking *)

type config = {
  contexts : contexts;
  fs_mode : fs_mode;
  sockaddr_fastpath : bool;
  trap_cache : bool;
  taint_cheap_path : bool;
      (** verify ranked-untainted AI slots through the single-probe
          cheap recipe instead of the binding+shadow pair; inert on
          bundles without slot ranks *)
}

let default_config =
  { contexts = all_contexts; fs_mode = Fs_off; sockaddr_fastpath = true;
    trap_cache = true; taint_cheap_path = true }

type denial = { d_sysno : int; d_context : string; d_detail : string }

(** Where a trap's register file and stack snapshot come from.  The
    live source reads the stopped tracee over ptrace; the replay engine
    substitutes a source that hands back *recorded* inputs (charging
    identical modelled costs), so the same verification code re-judges
    a trace offline. *)
type trap_source = {
  ts_regs : Ptrace.t -> Ptrace.regs;
  ts_snapshot :
    Ptrace.t -> slot_span:(string -> (int * int) option) -> Ptrace.snapshot;
}

let live_source =
  {
    ts_regs = Ptrace.getregs;
    ts_snapshot = (fun tracer ~slot_span -> Ptrace.snapshot tracer ~slot_span);
  }

type t = {
  meta : Metadata.t;
  runtime : Runtime.t;
  config : config;
  machine : Machine.t;
  cache : Verdict_cache.t;
  mutable recorder : Obs.Recorder.t option;
  mutable source : trap_source;
      (** trap-input source: live ptrace by default, recorded for replay *)
  mutable prefilter : Kernel.Seccomp.flow_automaton option;
      (** the deployed syscall-flow pre-filter, if any (tiered entry
          point: resolved calls never reach {!full_check}) *)
  mutable traps_checked : int;
  mutable init_cycles : int;
  mutable pre_resolved_hits : int;
      (** AI slots verified against a static constant (no shadow probe) *)
  mutable ctx_hits : int;
      (** AI slots verified against a per-caller constant (no probe) *)
  mutable ai_tainted : int;
      (** ranked slot verifications that took the full path (tainted) *)
  mutable ai_untainted : int;
      (** ranked slot verifications eligible for the cheap path *)
  mutable denials : denial list;
  mutable cur_tier : int;
      (** deepest {!Obs.Event.tier} rank engaged by the trap in flight
          (-1: none yet); folded into the event at {!obs_finish} *)
  tier_counts : int array;
      (** per-tier trap totals, indexed by {!Obs.Event.tier_rank} (the
          prefilter slot stays 0 here — resolved calls never trap) *)
  (* §9.2 statistics: call-stack depth observed at each verified trap. *)
  mutable depth_total : int;
  mutable depth_min : int;
  mutable depth_max : int;
  mutable depth_samples : int;
}

exception Deny of string * string  (** context, detail *)

let create ?recorder ~(meta : Metadata.t) ~(runtime : Runtime.t) ~config
    (machine : Machine.t) =
  (* Loading metadata: a linear pass over all entries (the paper reports
     10-20 ms; we report cycles in stats, not on the tracee's clock). *)
  let init_cycles = 40 * meta.entry_count in
  {
    meta;
    runtime;
    config;
    machine;
    cache = Verdict_cache.create ();
    recorder;
    source = live_source;
    prefilter = None;
    traps_checked = 0;
    init_cycles;
    pre_resolved_hits = 0;
    ctx_hits = 0;
    ai_tainted = 0;
    ai_untainted = 0;
    denials = [];
    cur_tier = -1;
    tier_counts = Array.make 6 0;
    depth_total = 0;
    depth_min = max_int;
    depth_max = 0;
    depth_samples = 0;
  }

let set_recorder (t : t) r = t.recorder <- r
let set_source (t : t) s = t.source <- s

let charge_check (t : t) = Machine.charge t.machine t.machine.config.cost.monitor_check

(* Resolution-tier tracking: each piece of machinery a trap engages
   notes its {!Obs.Event.tier_rank}; the trap's tier is the deepest
   note.  Pure bookkeeping — never charges modelled cycles, so cycle
   totals are identical with or without a recorder. *)
let note_tier (t : t) tier =
  let rank = Obs.Event.tier_rank tier in
  if rank > t.cur_tier then t.cur_tier <- rank

(* Shadow-memory access from the monitor side.  The shadow region is
   mapped *shared* between the application and the monitor (§7.1), so
   lookups are local probes, not remote reads. *)
let shadow_lookup (t : t) addr =
  let value, probes = Shadow_memory.find_probes t.runtime.shadow addr in
  Machine.charge t.machine
    (t.machine.config.cost.monitor_check + (2 * probes));
  value

let binding_lookup (t : t) ~id ~pos =
  shadow_lookup t (Shadow_memory.binding_key ~id ~pos)

let in_rodata addr =
  addr >= Machine.Layout.rodata_base && addr < Machine.Layout.data_base

(* ------------------------------------------------------------------ *)
(* Call-Type context (§7.2)                                            *)

let check_call_type (t : t) (regs : Ptrace.regs) =
  charge_check t;
  let ct = Calltype.call_type t.meta.calltype regs.sysno in
  match Hashtbl.find_opt t.meta.conv_by_addr regs.rip with
  | None -> raise (Deny ("call-type", "syscall invoked from unknown callsite"))
  | Some (Metadata.Conv_direct callee) ->
    if not ct.directly then
      raise
        (Deny
           ( "call-type",
             Printf.sprintf "%s is not directly-callable" (Syscalls.name regs.sysno) ));
    (* The decoded call instruction must actually name this syscall. *)
    (match Hashtbl.find_opt t.machine.prog.funcs callee with
    | Some stub when Sil.Func.syscall_number stub = Some regs.sysno -> ()
    | Some _ | None ->
      raise (Deny ("call-type", "callsite does not match trapped syscall")))
  | Some Metadata.Conv_indirect ->
    if not ct.indirectly then
      raise
        (Deny
           ( "call-type",
             Printf.sprintf "%s is not indirectly-callable" (Syscalls.name regs.sysno) ))

(* ------------------------------------------------------------------ *)
(* Control-Flow context (§7.3)                                         *)

let loc_of_rip (t : t) (rip : int64) : Sil.Loc.t option =
  match Machine.Layout.point_of_addr t.machine.layout rip with
  | Some (Machine.Layout.Instr_at loc) -> Some loc
  | Some (Machine.Layout.Term_of _) | None -> None

let check_control_flow (t : t) (tracer : Ptrace.t) (regs : Ptrace.regs)
    (frames : Ptrace.frame_view list) =
  let syscall_loc =
    match loc_of_rip t regs.rip with
    | Some loc -> loc
    | None -> raise (Deny ("control-flow", "trap rip is not a call instruction"))
  in
  charge_check t;
  if not (Cfg_analysis.is_sensitive_callsite t.meta.cfg syscall_loc) then
    raise (Deny ("control-flow", "callsite is not in the CFG metadata"));
  (match frames with
  | top :: _ when String.equal top.fv_func syscall_loc.func -> ()
  | _ -> raise (Deny ("control-flow", "stack top does not match the trapping callsite")));
  (* Unwind callee -> caller pairs until main or an indirect callsite. *)
  let rec walk = function
    | [] -> ()
    | (inner : Ptrace.frame_view) :: rest -> (
      charge_check t;
      match inner.fv_ret_token with
      | None ->
        (* Bottom of the stack: the frame with no caller must be the
           program entry point; anything else is a pivoted stack. *)
        if not (String.equal inner.fv_func t.machine.prog.entry) then
          raise
            (Deny
               ( "control-flow",
                 Printf.sprintf "stack bottoms out in %s, not in %s" inner.fv_func
                   t.machine.prog.entry ))
      | Some token -> (
        match Ptrace.callsite_of_token tracer token with
        | None ->
          raise (Deny ("control-flow", "return address does not map to a callsite"))
        | Some caller_site -> (
          (match rest with
          | outer :: _ when String.equal caller_site.func outer.fv_func -> ()
          | _ ->
            raise
              (Deny ("control-flow", "unwound caller does not match the next frame")));
          let caller_addr = Machine.Layout.addr_of_loc t.machine.layout caller_site in
          match Hashtbl.find_opt t.meta.conv_by_addr caller_addr with
          | Some Metadata.Conv_indirect ->
            (* A legitimate indirect callsite ends verification: the
               partial trace up to here matched the expected one. *)
            if
              Calltype.is_legit_indirect_callsite t.meta.calltype caller_site
              && Calltype.is_indirect_target t.meta.calltype inner.fv_func
            then ()
            else
              raise
                (Deny ("control-flow", "illegitimate indirect call on the stack"))
          | Some (Metadata.Conv_direct _) ->
            if
              Cfg_analysis.is_valid_caller t.meta.cfg ~callee:inner.fv_func
                ~caller_site
            then walk rest
            else
              raise
                (Deny
                   ( "control-flow",
                     Printf.sprintf "%s is not a valid caller of %s"
                       (Sil.Loc.to_string caller_site) inner.fv_func ))
          | None ->
            raise (Deny ("control-flow", "unwound return site is not a callsite")))))
  in
  walk frames

(* ------------------------------------------------------------------ *)
(* Argument-Integrity context (§7.4)                                   *)

let check_extended (t : t) (tracer : Ptrace.t) ~(ptr : int64) =
  (* Verify pointee contents word by word against the shadow.  Rodata is
     write-protected (DEP), so contents there are trusted after a bounded
     cost-only scan. *)
  if in_rodata ptr then begin
    let s = Ptrace.read_string tracer ptr in
    ignore s
  end
  else begin
    (* One batched remote read of the pointee region, then compare each
       word up to the NUL terminator against its shadow. *)
    let words = Ptrace.read_block tracer ptr Arg_rules.max_extended_words in
    let rec scan i =
      if i >= Array.length words then ()
      else
        let actual = words.(i) in
        if Int64.equal actual 0L then ()
        else begin
          let a = Machine.Memory.addr_add ptr i in
          (match shadow_lookup t a with
          | Some legit when Int64.equal legit actual -> ()
          | Some _ ->
            raise (Deny ("argument-integrity", "extended argument contents corrupted"))
          | None ->
            raise (Deny ("argument-integrity", "extended argument contents untraced")));
          scan (i + 1)
        end
    in
    scan 0
  end

let check_callsite_args (t : t) (tracer : Ptrace.t) (entry : Metadata.cs_entry)
    (frame : Ptrace.frame_view) ~(caller : Ptrace.frame_view option) =
  (* Dynamic verification of one Spec_mem slot, the full two-lookup
     path: binding table, then shadow. *)
  let full_mem_check pos actual =
    note_tier t Obs.Event.Tier_full;
    match binding_lookup t ~id:entry.e_id ~pos with
    | None ->
      raise
        (Deny
           ( "argument-integrity",
             Printf.sprintf "argument %d of %s was never bound" pos entry.e_callee ))
    | Some addr -> (
      match shadow_lookup t addr with
      | None ->
        raise
          (Deny
             ( "argument-integrity",
               Printf.sprintf "argument %d of %s is untraced" pos entry.e_callee ))
      | Some legit ->
        if not (Int64.equal legit actual) then
          raise
            (Deny
               ( "argument-integrity",
                 Printf.sprintf "argument %d of %s corrupted (expected %Ld, got %Ld)"
                   pos entry.e_callee legit actual )))
  in
  (* The per-caller constant for this position, if the trap's caller
     frame maps to a callsite with a context record.  An unknown or
     unlisted caller is not a violation by itself — the slot just falls
     back to the dynamic path (and the CF context has already judged
     the stack). *)
  let ctx_constant pos =
    match (List.assoc_opt pos entry.e_pre_ctx, caller) with
    | Some alts, Some c -> (
      match Hashtbl.find_opt t.meta.cs_by_addr c.fv_callsite with
      | Some caller_entry -> List.assoc_opt caller_entry.Metadata.e_id alts
      | None -> None)
    | _ -> None
  in
  List.iter
    (fun ((pos, spec) : int * Metadata.arg_spec) ->
      charge_check t;
      let actual = if pos < Array.length frame.fv_args then frame.fv_args.(pos) else 0L in
      (match spec with
      | Metadata.Spec_const c ->
        if not (Int64.equal actual c) then
          raise
            (Deny
               ( "argument-integrity",
                 Printf.sprintf "constant argument %d of %s corrupted" pos entry.e_callee
               ))
      | Metadata.Spec_mem when List.mem_assoc pos entry.e_pre ->
        (* Pre-resolved slot: the compiler proved the argument constant
           along all paths, so the static constant *is* the legitimate
           value — compare directly, skipping the binding-table and
           shadow probes (two priced lookups saved per slot). *)
        let legit = List.assoc pos entry.e_pre in
        t.pre_resolved_hits <- t.pre_resolved_hits + 1;
        note_tier t Obs.Event.Tier_pre_resolved;
        if not (Int64.equal legit actual) then
          raise
            (Deny
               ( "argument-integrity",
                 Printf.sprintf "argument %d of %s corrupted (expected %Ld, got %Ld)"
                   pos entry.e_callee legit actual ))
      | Metadata.Spec_mem -> (
        match ctx_constant pos with
        | Some legit ->
          (* 1-context pre-resolved slot: constant per caller, matched
             against the caller frame's callsite — still no probes. *)
          t.ctx_hits <- t.ctx_hits + 1;
          note_tier t Obs.Event.Tier_ctx;
          if not (Int64.equal legit actual) then
            raise
              (Deny
                 ( "argument-integrity",
                   Printf.sprintf "argument %d of %s corrupted (expected %Ld, got %Ld)"
                     pos entry.e_callee legit actual ))
        | None -> (
          let rank = List.assoc_opt pos entry.e_ranks in
          (match rank with
          | Some true -> t.ai_tainted <- t.ai_tainted + 1
          | Some false -> t.ai_untainted <- t.ai_untainted + 1
          | None -> ());
          let cheap =
            match rank with
            | Some false when t.config.taint_cheap_path ->
              List.assoc_opt pos entry.e_cheap
            | _ -> None
          in
          match cheap with
          | Some recipe -> (
            (* Untainted slot: the bound object's address is statically
               known, so the expected value is one shadow probe away —
               the binding-table lookup is skipped.  Denial semantics
               are identical to the full path: a missing shadow entry
               still means untraced, a mismatch still means corrupted. *)
            note_tier t Obs.Event.Tier_cheap;
            let a =
              match recipe with
              | Metadata.Cheap_frame off -> Machine.Memory.addr_add frame.fv_base off
              | Metadata.Cheap_global g -> g
            in
            match shadow_lookup t a with
            | None ->
              raise
                (Deny
                   ( "argument-integrity",
                     Printf.sprintf "argument %d of %s is untraced" pos entry.e_callee ))
            | Some legit ->
              if not (Int64.equal legit actual) then
                raise
                  (Deny
                     ( "argument-integrity",
                       Printf.sprintf
                         "argument %d of %s corrupted (expected %Ld, got %Ld)" pos
                         entry.e_callee legit actual )))
          | None -> full_mem_check pos actual)));
      (* Direct vs extended handling is recovered from the syscall
         identity (§6.3.2), not from instrumentation. *)
      match entry.e_sysno with
      | None -> ()
      | Some nr -> (
        match Arg_rules.kind ~sysno:nr ~pos with
        | Arg_rules.Direct -> ()
        | Arg_rules.Sockaddr when t.config.sockaddr_fastpath ->
          (* Specialised sockaddr verification: one fixed-size read. *)
          if not (Int64.equal actual 0L) then ignore (Ptrace.read_block tracer actual 2)
        | Arg_rules.Sockaddr | Arg_rules.Extended ->
          if not (Int64.equal actual 0L) then check_extended t tracer ~ptr:actual))
    entry.e_specs

let check_argument_integrity (t : t) (tracer : Ptrace.t) (regs : Ptrace.regs)
    (snap : Ptrace.snapshot) =
  (* The trapping callsite itself must carry argument metadata *for the
     trapped syscall*: a sensitive syscall invoked from a callsite the
     compiler never bound for it has, by definition, untraced arguments
     (§10.2). *)
  (match Hashtbl.find_opt t.meta.cs_by_addr regs.rip with
  | Some entry when entry.e_sysno = Some regs.sysno ->
    (* Dead-site record: the conditional-constant analysis proved no
       benign execution reaches this callsite, so *any* trap here is an
       attack — denied before a single probe is spent. *)
    if entry.e_dead then
      raise
        (Deny
           ( "argument-integrity",
             "syscall invoked at a callsite no benign execution reaches" ))
  | Some _ | None ->
    raise (Deny ("argument-integrity", "syscall arguments are untraced at this callsite")));
  (* Per-frame: verify the bound arguments of the call each frame has in
     flight, then sweep the frame's sensitive locals.  The slot spans
     were prefetched by the snapshot's coalesced read.  Frames are
     innermost-first, so the next list element is the frame's caller —
     context pre-resolution matches its callsite. *)
  let rec walk_frames = function
    | [] -> ()
    | (frame : Ptrace.frame_view) :: rest ->
      let caller = match rest with c :: _ -> Some c | [] -> None in
      (match Hashtbl.find_opt t.meta.cs_by_addr frame.fv_callsite with
      | Some entry -> check_callsite_args t tracer entry frame ~caller
      | None -> ());
      (match Hashtbl.find_opt t.meta.func_slots frame.fv_func with
      | None | Some [] -> ()
      | Some offsets -> (
        match List.assoc_opt frame.fv_base snap.sn_slots with
        | None -> ()
        | Some (slots : Ptrace.frame_slots) ->
          List.iter
            (fun off ->
              charge_check t;
              let a = Machine.Memory.addr_add frame.fv_base off in
              let actual = slots.sl_span.(off - slots.sl_lo) in
              match shadow_lookup t a with
              | Some legit when not (Int64.equal legit actual) ->
                raise
                  (Deny
                     ( "argument-integrity",
                       Printf.sprintf "sensitive variable at %s+%d corrupted"
                         frame.fv_func off ))
              | Some _ | None -> ())
            offsets));
      walk_frames rest
  in
  walk_frames snap.sn_frames;
  (* Whole-trap sweep of sensitive globals (and global struct fields),
     one batched read per region. *)
  List.iter
    (fun ((name, addr, words) : string * int64 * int) ->
      let span = Ptrace.read_block tracer addr words in
      Array.iteri
        (fun i actual ->
          charge_check t;
          let a = Machine.Memory.addr_add addr i in
          match shadow_lookup t a with
          | Some legit when not (Int64.equal legit actual) ->
            raise
              (Deny
                 ( "argument-integrity",
                   Printf.sprintf "sensitive global %s corrupted" name ))
          | Some _ | None -> ())
        span)
    t.meta.checked_globals

(* ------------------------------------------------------------------ *)
(* Trap entry point                                                    *)

(** The (lo, hi) word-offset range of [func]'s sensitive local slots,
    for the snapshot's coalesced slot-span read. *)
let slot_span (t : t) func =
  match Hashtbl.find_opt t.meta.func_slots func with
  | None | Some [] -> None
  | Some (first :: _ as offsets) ->
    let lo = List.fold_left min first offsets in
    let hi = List.fold_left max first offsets in
    Some (lo, hi)

let chain_of (frames : Ptrace.frame_view list) =
  List.map (fun (fv : Ptrace.frame_view) -> (fv.fv_func, fv.fv_ret_token)) frames

(* ------------------------------------------------------------------ *)
(* Flight-recorder hooks.  Observation reads the machine's cycle clock
   but never charges it: a run's cycle totals and verdicts are
   identical with the recorder on or off.  With no recorder (or an
   un-armed one) each hook is an option match / counter bump. *)

type trap_obs = {
  ob_seq : int;
  ob_start : int;           (* machine cycles at trap entry *)
  ob_calls0 : int;          (* tracer counters at trap entry ... *)
  ob_words0 : int;
  ob_probes0 : int;         (* ... and shadow probes, for the deltas *)
  mutable ob_spans : Obs.Event.span list;  (* reverse execution order *)
  mutable ob_cache : bool option;
  mutable ob_depth : int;
  mutable ob_input : Obs.Event.input option;
}

(* Capture the monitor's snapshot inputs into the event, so an audit
   record carries everything needed to re-derive its verdict offline.
   Arrays are copied: the machine mutates its register file in place. *)
let input_of (regs : Ptrace.regs) (snap : Ptrace.snapshot option) : Obs.Event.input
    =
  let frames, slots =
    match snap with
    | None -> ([], [])
    | Some snap ->
      ( List.map
          (fun (fv : Ptrace.frame_view) ->
            {
              Obs.Event.f_func = fv.fv_func;
              f_callsite = fv.fv_callsite;
              f_args = Array.copy fv.fv_args;
              f_ret = fv.fv_ret_token;
              f_base = fv.fv_base;
            })
          snap.sn_frames,
        List.map
          (fun ((base, s) : int64 * Ptrace.frame_slots) ->
            { Obs.Event.sr_base = base; sr_lo = s.sl_lo;
              sr_span = Array.copy s.sl_span })
          snap.sn_slots )
  in
  { Obs.Event.in_args = Array.copy regs.args; in_frames = frames;
    in_slots = slots }

let cycles_now (t : t) = t.machine.stats.cycles

let obs_begin (t : t) (tracer : Ptrace.t) : trap_obs option =
  match t.recorder with
  | Some r when Obs.Recorder.armed r ->
    Some
      {
        ob_seq = Obs.Recorder.next_seq r;
        ob_start = cycles_now t;
        ob_calls0 = tracer.calls_made;
        ob_words0 = tracer.words_read;
        ob_probes0 = Shadow_memory.probe_count t.runtime.shadow;
        ob_spans = [];
        ob_cache = None;
        ob_depth = 0;
        ob_input = None;
      }
  | _ -> None

(** Run one context check as an observed phase span. *)
let obs_span (t : t) (obs : trap_obs option) phase f =
  match obs with
  | None -> f ()
  | Some ob ->
    let t0 = cycles_now t in
    let push outcome =
      ob.ob_spans <-
        { Obs.Event.sp_phase = phase; sp_outcome = outcome; sp_start = t0;
          sp_dur = cycles_now t - t0 }
        :: ob.ob_spans
    in
    (try f () with Deny _ as e -> push Obs.Event.Failed; raise e);
    push Obs.Event.Passed

(** Mark a phase the verdict cache vouched for (zero-duration span). *)
let obs_cached (t : t) (obs : trap_obs option) phase =
  match obs with
  | None -> ()
  | Some ob ->
    ob.ob_spans <-
      { Obs.Event.sp_phase = phase; sp_outcome = Obs.Event.Cached;
        sp_start = cycles_now t; sp_dur = 0 }
      :: ob.ob_spans

let obs_finish (t : t) (tracer : Ptrace.t) (obs : trap_obs option) ~(rip : int64)
    ~kind ~(tier : Obs.Event.tier option) (verdict : Obs.Event.verdict) =
  match t.recorder with
  | None -> ()
  | Some r -> (
    match obs with
    | None ->
      (* Un-armed recorder: the hook reduces to counter bumps. *)
      Obs.Recorder.count_trap r
        ~denied:(match verdict with Obs.Event.Denied _ -> true | Obs.Event.Allowed -> false)
    | Some ob ->
      Obs.Recorder.record_trap r
        {
          Obs.Event.ev_seq = ob.ob_seq;
          ev_kind = kind;
          ev_sysno = tracer.cur_sysno;
          ev_sysname = Syscalls.name tracer.cur_sysno;
          ev_rip = rip;
          ev_start = ob.ob_start;
          ev_dur = cycles_now t - ob.ob_start;
          ev_verdict = verdict;
          ev_spans = List.rev ob.ob_spans;
          ev_cache = ob.ob_cache;
          ev_depth = ob.ob_depth;
          ev_ptrace_calls = tracer.calls_made - ob.ob_calls0;
          ev_ptrace_words = tracer.words_read - ob.ob_words0;
          ev_shadow_probes = Shadow_memory.probe_count t.runtime.shadow - ob.ob_probes0;
          ev_shard = 0;
          ev_tracee = 0;
          ev_tier = tier;
          ev_input = ob.ob_input;
        })

(* The trap's settled tier: the deepest contribution noted while the
   checks ran.  A trap that engaged none of the tiered machinery (e.g.
   the CT-only configuration, or a stack with no AI-bound slots) is
   conservatively [Tier_full] — nothing cheaper vouched for it. *)
let settle_tier (t : t) : Obs.Event.tier =
  let tier =
    match Obs.Event.tier_of_rank t.cur_tier with
    | Some tier -> tier
    | None -> Obs.Event.Tier_full
  in
  t.tier_counts.(Obs.Event.tier_rank tier) <-
    t.tier_counts.(Obs.Event.tier_rank tier) + 1;
  tier

let full_check (t : t) (tracer : Ptrace.t) : Process.verdict =
  t.traps_checked <- t.traps_checked + 1;
  t.cur_tier <- -1;
  let obs = obs_begin t tracer in
  let regs = t.source.ts_regs tracer in
  try
    if not (t.config.contexts.cf || t.config.contexts.ai) then begin
      (* CT needs no process state beyond the registers. *)
      (match obs with Some ob -> ob.ob_input <- Some (input_of regs None) | None -> ());
      if t.config.contexts.ct then
        obs_span t obs Obs.Event.Ct (fun () -> check_call_type t regs)
    end
    else begin
      let snap = t.source.ts_snapshot tracer ~slot_span:(slot_span t) in
      (match obs with
      | Some ob -> ob.ob_input <- Some (input_of regs (Some snap))
      | None -> ());
      let frames = snap.sn_frames in
      let depth = List.length frames in
      t.depth_total <- t.depth_total + depth;
      t.depth_samples <- t.depth_samples + 1;
      if depth < t.depth_min then t.depth_min <- depth;
      if depth > t.depth_max then t.depth_max <- depth;
      (match obs with Some ob -> ob.ob_depth <- depth | None -> ());
      (* Trap fast path: the cache only ever short-circuits CT and CF
         together, and only records keys that passed both — so it is
         enabled exactly when both are enforced.  AI always re-runs. *)
      let use_cache =
        t.config.trap_cache && t.config.contexts.ct && t.config.contexts.cf
      in
      let cache_key =
        if use_cache then begin
          Machine.charge t.machine t.machine.config.cost.cache_probe;
          Some (Verdict_cache.key ~sysno:regs.sysno ~rip:regs.rip ~chain:(chain_of frames))
        end
        else None
      in
      let hit =
        match cache_key with Some k -> Verdict_cache.probe t.cache k | None -> false
      in
      (match obs with
      | Some ob when use_cache -> ob.ob_cache <- Some hit
      | _ -> ());
      if hit then begin
        note_tier t Obs.Event.Tier_cached;
        obs_cached t obs Obs.Event.Ct;
        obs_cached t obs Obs.Event.Cf
      end
      else begin
        if t.config.contexts.ct then
          obs_span t obs Obs.Event.Ct (fun () -> check_call_type t regs);
        if t.config.contexts.cf then
          obs_span t obs Obs.Event.Cf (fun () ->
              check_control_flow t tracer regs frames);
        (* Only reached when CT and CF both passed. *)
        match cache_key with
        | Some k -> Verdict_cache.record t.cache k
        | None -> ()
      end;
      if t.config.contexts.ai then
        obs_span t obs Obs.Event.Ai (fun () ->
            check_argument_integrity t tracer regs snap)
    end;
    obs_finish t tracer obs ~rip:regs.rip ~kind:Obs.Event.Trap_check
      ~tier:(Some (settle_tier t)) Obs.Event.Allowed;
    Process.Continue
  with Deny (context, detail) ->
    t.denials <- { d_sysno = tracer.cur_sysno; d_context = context; d_detail = detail } :: t.denials;
    obs_finish t tracer obs ~rip:regs.rip ~kind:Obs.Event.Trap_check
      ~tier:(Some (settle_tier t))
      (Obs.Event.Denied { d_context = context; d_detail = detail });
    Process.Deny { context; detail }

let fetch_only (t : t) (tracer : Ptrace.t) : Process.verdict =
  t.traps_checked <- t.traps_checked + 1;
  let obs = obs_begin t tracer in
  let regs = t.source.ts_regs tracer in
  let snap = t.source.ts_snapshot tracer ~slot_span:(slot_span t) in
  (match obs with
  | Some ob ->
    ob.ob_depth <- List.length snap.sn_frames;
    ob.ob_input <- Some (input_of regs (Some snap))
  | None -> ());
  obs_finish t tracer obs ~rip:regs.rip ~kind:Obs.Event.Fetch_only ~tier:None
    Obs.Event.Allowed;
  Process.Continue

(* ------------------------------------------------------------------ *)
(* Deployment                                                          *)

(** The seccomp filter §7.1 describes: ALLOW non-sensitive calls used by
    the program, KILL not-callable calls (sensitive or not, §11.3),
    TRACE directly/indirectly-callable sensitive calls.  Unknown syscall
    numbers default to KILL. *)
let build_filter (t : t) : Kernel.Seccomp.filter =
  (* Rebuilding the filter invalidates every cached CT+CF verdict: the
     callable set (and hence what a trap means) may have changed. *)
  Verdict_cache.bump_epoch t.cache;
  let filter = Kernel.Seccomp.create ~default:Kernel.Seccomp.Kill () in
  List.iter
    (fun (_, nr, _) ->
      let ct = Calltype.call_type t.meta.calltype nr in
      let callable = ct.directly || ct.indirectly in
      let action =
        if not callable then
          (* Not-callable enforcement is the Call-Type context's seccomp
             leg; with CT disabled (context-attribution runs), deliver a
             trap instead so the other contexts get to judge. *)
          if t.config.contexts.ct then Kernel.Seccomp.Kill else Kernel.Seccomp.Trace
        else if Syscalls.is_sensitive nr then Kernel.Seccomp.Trace
        else if Syscalls.is_filesystem nr then
          match t.config.fs_mode with
          | Fs_off | Fs_hook_only -> Kernel.Seccomp.Allow
          | Fs_fetch_only | Fs_full -> Kernel.Seccomp.Trace
        else Kernel.Seccomp.Allow
      in
      Kernel.Seccomp.set_rule filter nr action)
    Syscalls.table;
  filter

let hook (t : t) (proc : Process.t) ~sysno ~args:_ : Process.verdict =
  if Syscalls.is_filesystem sysno && not (Syscalls.is_sensitive sysno) then
    match t.config.fs_mode with
    | Fs_fetch_only -> fetch_only t proc.tracer
    | Fs_full -> full_check t proc.tracer
    | Fs_off | Fs_hook_only -> Process.Continue
  else full_check t proc.tracer

(** Mirror the legacy counters of the whole enforcement pipeline into a
    metrics registry as sampled probes.  The original accessors stay
    authoritative — the registry reads them at snapshot time, so the
    two views can never disagree (the test suite checks the emitted
    trace against [calls_made], {!cache_stats} and the shadow probe
    statistics). *)
let register_probes (t : t) (tracer : Ptrace.t) (reg : Obs.Metrics.t) =
  let p name f = Obs.Metrics.register_probe reg name f in
  let fi f = fun () -> float_of_int (f ()) in
  p "ptrace.calls_made" (fi (fun () -> tracer.calls_made));
  p "ptrace.words_read" (fi (fun () -> tracer.words_read));
  p "ptrace.getregs" (fi (fun () -> tracer.getregs_count));
  p "ptrace.frames_walked" (fi (fun () -> tracer.frames_walked));
  p "cache.hits" (fi (fun () -> Verdict_cache.hits t.cache));
  p "cache.misses" (fi (fun () -> Verdict_cache.misses t.cache));
  p "cache.records" (fi (fun () -> Verdict_cache.records t.cache));
  p "cache.epoch" (fi (fun () -> Verdict_cache.epoch t.cache));
  p "cache.hit_rate" (fun () -> Verdict_cache.hit_rate t.cache);
  let shadow = t.runtime.shadow in
  p "shadow.lookups" (fi (fun () -> Shadow_memory.lookup_count shadow));
  p "shadow.lookup_probes" (fi (fun () -> Shadow_memory.probe_count shadow));
  p "shadow.mean_probe_length" (fun () -> Shadow_memory.mean_probe_length shadow);
  p "shadow.inserts" (fi (fun () -> Shadow_memory.insert_count shadow));
  p "shadow.insert_probes" (fi (fun () -> Shadow_memory.insert_probe_count shadow));
  p "shadow.mean_insert_probe_length" (fun () ->
      Shadow_memory.mean_insert_probe_length shadow);
  p "shadow.entries" (fi (fun () -> Shadow_memory.entry_count shadow));
  let pf f = fi (fun () -> match t.prefilter with Some fa -> f fa | None -> 0) in
  p "prefilter.resolved" (pf (fun fa -> fa.Kernel.Seccomp.fa_resolved));
  p "prefilter.fallthroughs" (pf (fun fa -> fa.Kernel.Seccomp.fa_fallthroughs));
  p "prefilter.kills" (pf (fun fa -> fa.Kernel.Seccomp.fa_kills));
  p "prefilter.nodes" (pf Kernel.Seccomp.flow_node_count);
  p "prefilter.edges" (pf Kernel.Seccomp.flow_edge_count);
  p "monitor.traps_checked" (fi (fun () -> t.traps_checked));
  p "monitor.preresolved_hits" (fi (fun () -> t.pre_resolved_hits));
  p "monitor.preresolved_ctx_hits" (fi (fun () -> t.ctx_hits));
  p "monitor.ai.tainted" (fi (fun () -> t.ai_tainted));
  p "monitor.ai.untainted" (fi (fun () -> t.ai_untainted));
  p "monitor.denials" (fi (fun () -> List.length t.denials));
  p "monitor.init_cycles" (fi (fun () -> t.init_cycles));
  p "machine.cycles" (fi (fun () -> t.machine.stats.cycles));
  p "machine.instrs" (fi (fun () -> t.machine.stats.instrs));
  p "machine.syscalls" (fi (fun () -> t.machine.stats.syscalls))

(** Attach the monitor to a booted process: install the seccomp filter
    and the TRACE hook; with a recorder present, also mirror the
    pipeline's legacy counters into its registry. *)
let attach (t : t) (proc : Process.t) =
  proc.filter <- Some (build_filter t);
  proc.tracer_hook <- Some (fun proc ~sysno ~args -> hook t proc ~sysno ~args);
  match t.recorder with
  | Some r -> register_probes t proc.tracer (Obs.Recorder.metrics r)
  | None -> ()

(* ------------------------------------------------------------------ *)
(* The tiered entry point: the syscall-flow pre-filter                  *)

(** Deploy-time classification of the AI-checked argument positions of
    the callsite at [addr], invoking [sysno].  [`Pin c]: the legitimate
    value is the statically-known constant [c] ([Spec_const] entries
    and pre-resolved [Spec_mem] slots) and, for pointer-kind positions,
    it is NULL or aims at write-protected rodata — so a register
    compare loses nothing against the full check.  [`Scalar]: a
    dynamic register-visible value (the flowgraph's value analysis
    decides whether it is checkable or opaque).  [`Pointer]: a checked
    pointer position the seccomp stage can never dereference.  [None]:
    the callsite carries no metadata for this syscall, so the
    pre-filter must not resolve there. *)
let prefilter_site_info (t : t) ~(addr : int64) ~(sysno : int option) :
    (int * [ `Pin of int64 | `Scalar | `Pointer ]) list option =
  match (Hashtbl.find_opt t.meta.cs_by_addr addr, sysno) with
  | None, _ | _, None -> None
  | Some entry, Some nr ->
    if entry.Metadata.e_sysno <> Some nr then None
    else
      Some
        (List.map
           (fun ((pos, spec) : int * Metadata.arg_spec) ->
             let pointer =
               match Arg_rules.kind ~sysno:nr ~pos with
               | Arg_rules.Direct -> false
               | Arg_rules.Sockaddr | Arg_rules.Extended -> true
             in
             let pin =
               match spec with
               | Metadata.Spec_const c -> Some c
               | Metadata.Spec_mem -> List.assoc_opt pos entry.e_pre
             in
             match pin with
             | Some c when (not pointer) || Int64.equal c 0L || in_rodata c ->
               (pos, `Pin c)
             | Some _ | None -> (pos, if pointer then `Pointer else `Scalar))
           entry.e_specs)

(** Install a deployed automaton: remember it, hand it to the process's
    seccomp filter, and wire the flight-recorder instant so resolved
    calls stay visible in traces.  Requires {!attach} first. *)
let install_prefilter (t : t) (proc : Process.t)
    (fa : Kernel.Seccomp.flow_automaton) =
  (match proc.filter with
  | Some filter -> Kernel.Seccomp.set_flow filter (Some fa)
  | None ->
    invalid_arg "Monitor.install_prefilter: process has no filter (attach first)");
  t.prefilter <- Some fa;
  fa.Kernel.Seccomp.fa_on_resolve <-
    Some
      (fun ~sysno:_ ~rip:_ ->
        match t.recorder with
        | Some r when Obs.Recorder.armed r ->
          Obs.Recorder.record_instant r ~name:"prefilter.resolve" ~at:(cycles_now t)
        | Some _ | None -> ())

let prefilter (t : t) = t.prefilter

(** Per-tier resolution counters:
    (resolved at pre-filter, fell through to the full path,
     standalone-mode kills). *)
let prefilter_stats (t : t) =
  match t.prefilter with
  | Some fa -> Kernel.Seccomp.flow_stats fa
  | None -> (0, 0, 0)

let prefilter_resolved (t : t) =
  match t.prefilter with Some fa -> fa.Kernel.Seccomp.fa_resolved | None -> 0

let denials (t : t) = List.rev t.denials

(** Verdict-cache statistics of the trap fast path:
    (hits, misses, hit rate). *)
let cache_stats (t : t) =
  (Verdict_cache.hits t.cache, Verdict_cache.misses t.cache,
   Verdict_cache.hit_rate t.cache)

(** AI slots verified against a pre-resolved static constant (no shadow
    probe charged). *)
let pre_resolved_hits (t : t) = t.pre_resolved_hits

(** AI slots verified against a per-caller (1-context) constant. *)
let ctx_resolved_hits (t : t) = t.ctx_hits

(** Ranked-slot verification counts: (tainted — full path, untainted —
    cheap-path eligible). *)
let ai_rank_stats (t : t) = (t.ai_tainted, t.ai_untainted)

(** Per-tier trap totals, indexed by {!Obs.Event.tier_rank} (a copy;
    the prefilter slot is always 0 — resolved calls never trap). *)
let tier_counts (t : t) = Array.copy t.tier_counts

(** §9.2 call-depth statistics over all verified traps:
    (min, mean, max); [None] before the first stack walk. *)
let depth_stats (t : t) =
  if t.depth_samples = 0 then None
  else
    Some
      ( t.depth_min,
        float_of_int t.depth_total /. float_of_int t.depth_samples,
        t.depth_max )
