(** The BASTION runtime monitor (§7): traps on sensitive syscall
    invocations (seccomp TRACE) and verifies the Call-Type,
    Control-Flow and Argument-Integrity contexts against compiler
    metadata before letting the call proceed.  A violation kills the
    protected application. *)

module Ptrace = Kernel.Ptrace
module Process = Kernel.Process
module Syscalls = Kernel.Syscalls

(** Which contexts are enforced. *)
type contexts = { ct : bool; cf : bool; ai : bool }

val all_contexts : contexts
val no_contexts : contexts

(** How the §11.2 filesystem-syscall extension is deployed (the Table 7
    checkpoints). *)
type fs_mode =
  | Fs_off          (** main evaluation: fs syscalls simply allowed *)
  | Fs_hook_only    (** row 1: seccomp evaluates, no trap *)
  | Fs_fetch_only   (** row 2: trap + fetch process state, no checking *)
  | Fs_full         (** row 3: trap + full context checking *)

type config = {
  contexts : contexts;
  fs_mode : fs_mode;
  sockaddr_fastpath : bool;
      (** the specialised accept/accept4 sockaddr verification (§9.2) *)
  trap_cache : bool;
      (** the trap fast path's CT+CF verdict cache; AI always re-runs *)
  taint_cheap_path : bool;
      (** verify ranked-untainted AI slots through the single-probe
          cheap recipe (identical denial semantics, half the lookups);
          inert on bundles without slot ranks *)
}

val default_config : config

(** One recorded denial: syscall, violated context, detail. *)
type denial = { d_sysno : int; d_context : string; d_detail : string }

(** Where a trap's register file and stack snapshot come from.  The
    {!live_source} reads the stopped tracee over ptrace; the replay
    engine substitutes a source handing back *recorded* inputs (which
    charge identical modelled costs via [Ptrace.inject_*]), so the same
    verification code re-judges a trace offline. *)
type trap_source = {
  ts_regs : Ptrace.t -> Ptrace.regs;
  ts_snapshot :
    Ptrace.t -> slot_span:(string -> (int * int) option) -> Ptrace.snapshot;
}

val live_source : trap_source

type t = {
  meta : Metadata.t;
  runtime : Runtime.t;
  config : config;
  machine : Machine.t;
  cache : Verdict_cache.t;      (** the CT+CF verdict cache *)
  mutable recorder : Obs.Recorder.t option;
      (** the flight recorder; observation never charges cycles *)
  mutable source : trap_source;
      (** trap-input source: live ptrace by default, recorded for replay *)
  mutable prefilter : Kernel.Seccomp.flow_automaton option;
      (** the deployed syscall-flow pre-filter, if any *)
  mutable traps_checked : int;
  mutable init_cycles : int;    (** metadata-loading cost (§9.2) *)
  mutable pre_resolved_hits : int;
      (** AI slots verified against a static constant (no shadow probe) *)
  mutable ctx_hits : int;
      (** AI slots verified against a per-caller constant (no probe) *)
  mutable ai_tainted : int;
      (** ranked slot verifications that took the full path (tainted) *)
  mutable ai_untainted : int;
      (** ranked slot verifications eligible for the cheap path *)
  mutable denials : denial list;
  mutable cur_tier : int;
      (** deepest {!Obs.Event.tier} rank engaged by the trap in flight
          (-1: none yet) *)
  tier_counts : int array;
      (** per-tier trap totals, indexed by {!Obs.Event.tier_rank} *)
  mutable depth_total : int;
  mutable depth_min : int;
  mutable depth_max : int;
  mutable depth_samples : int;
}

exception Deny of string * string

val create :
  ?recorder:Obs.Recorder.t ->
  meta:Metadata.t -> runtime:Runtime.t -> config:config -> Machine.t -> t

val set_recorder : t -> Obs.Recorder.t option -> unit

(** Swap the trap-input source (replay injection). *)
val set_source : t -> trap_source -> unit

(** Full verification of one trap (CT, then CF, then AI). *)
val full_check : t -> Ptrace.t -> Process.verdict

(** Fetch state only (Table 7 row 2): getregs + stack walk, no checks. *)
val fetch_only : t -> Ptrace.t -> Process.verdict

(** The seccomp filter of §7.1: ALLOW used non-sensitive syscalls, KILL
    not-callable ones (§11.3), TRACE the rest; unknown numbers default
    to KILL. *)
val build_filter : t -> Kernel.Seccomp.filter

(** Mirror the pipeline's legacy counters ([Ptrace], the verdict cache,
    the shadow table, the monitor and machine totals) into a metrics
    registry as sampled probes; the legacy accessors stay
    authoritative. *)
val register_probes : t -> Ptrace.t -> Obs.Metrics.t -> unit

(** Install the filter and TRACE hook on a booted process; with a
    recorder present, also {!register_probes} into its registry. *)
val attach : t -> Process.t -> unit

(** Deploy-time classification of the AI-checked argument positions of
    the pre-filter node at [addr] invoking [sysno]: [`Pin c] a
    statically-known constant (pointer pins must be NULL or rodata),
    [`Scalar] a dynamic register-visible value, [`Pointer] a checked
    pointer seccomp can never verify; [None] when no metadata binds
    that syscall at the callsite. *)
val prefilter_site_info :
  t ->
  addr:int64 ->
  sysno:int option ->
  (int * [ `Pin of int64 | `Scalar | `Pointer ]) list option

(** Install a deployed syscall-flow automaton on this monitor and the
    process's seccomp filter (the tiered entry point: calls the
    automaton resolves never reach {!full_check}).
    @raise Invalid_argument if the process has no filter yet. *)
val install_prefilter : t -> Process.t -> Kernel.Seccomp.flow_automaton -> unit

val prefilter : t -> Kernel.Seccomp.flow_automaton option

(** Per-tier resolution counters: (resolved at the pre-filter tier,
    fell through to the full path, standalone-mode kills). *)
val prefilter_stats : t -> int * int * int

val prefilter_resolved : t -> int

(** Denials in chronological order. *)
val denials : t -> denial list

(** Verdict-cache statistics of the trap fast path:
    (hits, misses, hit rate). *)
val cache_stats : t -> int * int * float

(** AI slots verified against a pre-resolved static constant (the
    shadow probes those slots would have cost are skipped). *)
val pre_resolved_hits : t -> int

(** AI slots verified against a per-caller (1-context) constant. *)
val ctx_resolved_hits : t -> int

(** Ranked-slot verification counts: (tainted — full binding+shadow
    path, untainted — cheap-path eligible). *)
val ai_rank_stats : t -> int * int

(** Per-tier trap totals, indexed by {!Obs.Event.tier_rank} (a copy;
    the prefilter slot is always 0 — resolved calls never trap). *)
val tier_counts : t -> int array

(** §9.2 call-depth statistics over verified traps: (min, mean, max). *)
val depth_stats : t -> (int * float * int) option
