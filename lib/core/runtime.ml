(* The BASTION runtime library (Table 2), installed as the machine's
   intrinsic handler.  The inlined ctx_* calls keep the shadow memory up
   to date from inside the protected application:

   - ctx_write_mem(p, size): refresh the shadow copies of [size] words
     at [p] from their just-stored (legitimate) values;
   - ctx_bind_mem(id, pos, p): bind address [p] to argument [pos] of
     instrumented callsite [id];
   - ctx_bind_const(id, pos, c): constants are static metadata — the
     call exists only for its (small, inlined) runtime cost. *)

type t = {
  shadow : Shadow_memory.t;
  mutable recorder : Obs.Recorder.t option;
  mutable write_mem_calls : int;
  mutable bind_mem_calls : int;
  mutable bind_const_calls : int;
}

let create () =
  { shadow = Shadow_memory.create (); recorder = None; write_mem_calls = 0;
    bind_mem_calls = 0; bind_const_calls = 0 }

(** Wire a flight recorder to the runtime library: each ctx_* intrinsic
    is counted (and, when tracing, recorded as an instant event on the
    trace timeline), and the runtime's call counters are mirrored into
    the registry as sampled probes. *)
let attach_recorder (t : t) (r : Obs.Recorder.t) =
  t.recorder <- Some r;
  let reg = Obs.Recorder.metrics r in
  let p name f = Obs.Metrics.register_probe reg name (fun () -> float_of_int (f ())) in
  p "runtime.write_mem_calls" (fun () -> t.write_mem_calls);
  p "runtime.bind_mem_calls" (fun () -> t.bind_mem_calls);
  p "runtime.bind_const_calls" (fun () -> t.bind_const_calls)

let handle (t : t) (m : Machine.t) ~name ~(args : int64 array) : int64 =
  let arg i = if i < Array.length args then args.(i) else 0L in
  (match t.recorder with
  | Some r -> Obs.Recorder.record_instant r ~name ~at:m.stats.cycles
  | None -> ());
  (match name with
  | "ctx_write_mem" ->
    t.write_mem_calls <- t.write_mem_calls + 1;
    let addr = arg 0 and size = Int64.to_int (arg 1) in
    for i = 0 to max 0 (size - 1) do
      let a = Machine.Memory.addr_add addr i in
      Shadow_memory.set_shadow t.shadow ~addr:a ~value:(Machine.peek m a)
    done
  | "ctx_bind_mem" ->
    t.bind_mem_calls <- t.bind_mem_calls + 1;
    Shadow_memory.set_binding t.shadow ~id:(Int64.to_int (arg 0))
      ~pos:(Int64.to_int (arg 1)) ~addr:(arg 2)
  | "ctx_bind_const" -> t.bind_const_calls <- t.bind_const_calls + 1
  | _ -> ());
  0L

let install (t : t) (m : Machine.t) =
  m.on_intrinsic <- Some (fun m ~name ~args -> handle t m ~name ~args)

(** Shadow-table probe statistics of this runtime's shadow, both sides:
    (mean lookup probes, mean insert probes, inserts performed).  The
    write side is driven by the inlined ctx_* calls above, so it is a
    runtime statistic, not a monitor one. *)
let shadow_probe_stats (t : t) =
  ( Shadow_memory.mean_probe_length t.shadow,
    Shadow_memory.mean_insert_probe_length t.shadow,
    Shadow_memory.insert_count t.shadow )

(** Seed the shadow with the post-initialisation contents of every
    global: the loader-visible static state is legitimate by definition
    (the paper's compiler records static values in metadata). *)
let seed_globals (t : t) (m : Machine.t) =
  List.iter
    (fun (g : Sil.Prog.global) ->
      let addr = Machine.Layout.global_addr m.layout g.gname in
      let words = Machine.Layout.global_words m.layout g.gname in
      for i = 0 to words - 1 do
        let a = Machine.Memory.addr_add addr i in
        Shadow_memory.set_shadow t.shadow ~addr:a ~value:(Machine.peek m a)
      done)
    m.prog.globals
