(** The BASTION runtime library (Table 2), installed as the machine's
    intrinsic handler: ctx_write_mem refreshes shadow copies after
    legitimate stores, ctx_bind_mem binds argument positions to
    addresses, ctx_bind_const exists for its (inlined) cost only. *)

type t = {
  shadow : Shadow_memory.t;
  mutable recorder : Obs.Recorder.t option;
  mutable write_mem_calls : int;
  mutable bind_mem_calls : int;
  mutable bind_const_calls : int;
}

val create : unit -> t

(** Wire a flight recorder to the runtime library: ctx_* intrinsics are
    counted (and traced as instant events when tracing is on) and the
    call counters are mirrored into the registry as probes. *)
val attach_recorder : t -> Obs.Recorder.t -> unit

(** Execute one intrinsic call (exposed for testing). *)
val handle : t -> Machine.t -> name:string -> args:int64 array -> int64

(** Wire the runtime into a machine's intrinsic dispatch. *)
val install : t -> Machine.t -> unit

(** Shadow-table probe statistics, both sides: (mean lookup probes,
    mean insert probes, inserts performed). *)
val shadow_probe_stats : t -> float * float * int

(** Seed the shadow with the post-initialisation contents of every
    global: loader-visible static state is legitimate by definition. *)
val seed_globals : t -> Machine.t -> unit
