(* The BASTION shadow memory (§7.1): an open-addressing hash table,
   logically resident in the protected application's address space under
   a segmentation register, shared with the monitor process.

   Two kinds of entries share the table, distinguished by a tag bit in
   the key:
   - shadow copies:     key = variable address,        value = legit value
   - argument bindings: key = (callsite id, position), value = bound address

   The monitor's accesses go through [Ptrace]-charged wrappers in
   {!Monitor}; lookups report the number of probes so the cost model (and
   the probe-length ablation bench) can account for them. *)

type t = {
  mutable keys : int64 array;
  mutable values : int64 array;
  mutable used : bool array;
  mutable count : int;
  mutable total_probes : int;
  mutable lookups : int;
  mutable insert_probes : int;
  mutable inserts : int;
}

let initial_capacity = 1024

let create () =
  {
    keys = Array.make initial_capacity 0L;
    values = Array.make initial_capacity 0L;
    used = Array.make initial_capacity false;
    count = 0;
    total_probes = 0;
    lookups = 0;
    insert_probes = 0;
    inserts = 0;
  }

(* SplitMix64 finalizer: a good avalanche for word keys. *)
let hash (key : int64) =
  let open Int64 in
  let z = mul key 0x9E3779B97F4A7C15L in
  let z = logxor z (shift_right_logical z 30) in
  let z = mul z 0xBF58476D1CE4E5B9L in
  let z = logxor z (shift_right_logical z 27) in
  let z = mul z 0x94D049BB133111EBL in
  to_int (logand (logxor z (shift_right_logical z 31)) 0x7FFFFFFFL)

let binding_tag = 0x4000_0000_0000_0000L

(** Key for a binding entry of (callsite id, argument position). *)
let binding_key ~id ~pos =
  Int64.logor binding_tag (Int64.of_int ((id * 16) + (pos land 15)))

let capacity t = Array.length t.keys

let rec insert t key value =
  if 10 * t.count > 7 * capacity t then grow t;
  let cap = capacity t in
  t.inserts <- t.inserts + 1;
  (* [steps] counts every slot examined, like [find_probes] does on the
     read side; the total feeds the probe-length ablation. *)
  let rec probe i steps =
    if t.used.(i) then
      if Int64.equal t.keys.(i) key then begin
        t.insert_probes <- t.insert_probes + steps + 1;
        t.values.(i) <- value
      end
      else probe ((i + 1) mod cap) (steps + 1)
    else begin
      t.insert_probes <- t.insert_probes + steps + 1;
      t.used.(i) <- true;
      t.keys.(i) <- key;
      t.values.(i) <- value;
      t.count <- t.count + 1
    end
  in
  probe (hash key mod cap) 0

and grow t =
  let old_keys = t.keys and old_values = t.values and old_used = t.used in
  let cap = 2 * capacity t in
  t.keys <- Array.make cap 0L;
  t.values <- Array.make cap 0L;
  t.used <- Array.make cap false;
  t.count <- 0;
  Array.iteri
    (fun i u -> if u then insert t old_keys.(i) old_values.(i))
    old_used

(** Look up a key; returns the value and the number of probes taken. *)
let find_probes t key : int64 option * int =
  t.lookups <- t.lookups + 1;
  let cap = capacity t in
  let rec probe i steps =
    if steps > cap then (None, steps)
    else if not t.used.(i) then (None, steps + 1)
    else if Int64.equal t.keys.(i) key then (Some t.values.(i), steps + 1)
    else probe ((i + 1) mod cap) (steps + 1)
  in
  let result, steps = probe (hash key mod cap) 0 in
  t.total_probes <- t.total_probes + steps;
  (result, steps)

let find t key = fst (find_probes t key)

(* Convenience wrappers -------------------------------------------------- *)

let set_shadow t ~addr ~value = insert t addr value
let shadow t ~addr = find t addr
let set_binding t ~id ~pos ~addr = insert t (binding_key ~id ~pos) addr
let binding t ~id ~pos = find t (binding_key ~id ~pos)

let entry_count t = t.count
let lookup_count t = t.lookups

(** Total slots examined across all lookups (the raw counter behind
    {!mean_probe_length}; the observability layer reads per-trap deltas
    of it). *)
let probe_count t = t.total_probes

(** Mean probes per lookup so far (ablation statistic). *)
let mean_probe_length t =
  if t.lookups = 0 then 0.0 else float_of_int t.total_probes /. float_of_int t.lookups

let insert_count t = t.inserts
let insert_probe_count t = t.insert_probes

(** Mean probes per insert so far, including rehash probes during
    growth (the write-side ablation statistic). *)
let mean_insert_probe_length t =
  if t.inserts = 0 then 0.0
  else float_of_int t.insert_probes /. float_of_int t.inserts
