(** The BASTION shadow memory (§7.1): an open-addressing hash table,
    logically resident in the protected application's address space and
    mapped shared with the monitor.

    Two kinds of entries share the table, distinguished by a tag bit:
    shadow copies (key = variable address, value = legitimate value) and
    argument bindings (key = (callsite id, position), value = bound
    address). *)

type t

val create : unit -> t

(** Key for a binding entry; guaranteed disjoint from addresses. *)
val binding_key : id:int -> pos:int -> int64

val capacity : t -> int

(** Insert or update an entry (grows the table as needed). *)
val insert : t -> int64 -> int64 -> unit

(** Lookup returning the value and the number of probes taken. *)
val find_probes : t -> int64 -> int64 option * int

val find : t -> int64 -> int64 option

val set_shadow : t -> addr:int64 -> value:int64 -> unit
val shadow : t -> addr:int64 -> int64 option
val set_binding : t -> id:int -> pos:int -> addr:int64 -> unit
val binding : t -> id:int -> pos:int -> int64 option

val entry_count : t -> int

(** Lookups performed so far. *)
val lookup_count : t -> int

(** Total slots examined across all lookups (the raw counter behind
    {!mean_probe_length}). *)
val probe_count : t -> int

(** Mean probes per lookup so far (ablation statistic). *)
val mean_probe_length : t -> float

(** Inserts performed (including rehash inserts during growth). *)
val insert_count : t -> int

(** Slots examined across all inserts (the write-side analogue of the
    lookup probe count). *)
val insert_probe_count : t -> int

(** Mean probes per insert so far (write-side ablation statistic). *)
val mean_insert_probe_length : t -> float
