(* The trap fast path's CT+CF verdict cache: a fixed-size direct-mapped
   cache keyed by a 64-bit mix of (syscall number, trap rip, the stack's
   [(function, return token)] chain).

   Safety argument (encoded in the test suite): a cached key means this
   exact callsite + return-token chain already passed the Call-Type and
   Control-Flow contexts.  Any ROP/pivot attack necessarily changes a
   return token, a frame's function, or the trap rip — and every step of
   the key computation is a bijection of the accumulator, so changing
   any single chain element (even by one bit) provably changes the key.
   A corrupted stack can therefore never hit the cache.  Argument
   Integrity is deliberately NOT cached: argument values change per
   request and must be re-verified on every trap.

   The cache carries an epoch; entries recorded under an older epoch
   miss.  The monitor bumps the epoch whenever the metadata or the
   seccomp filter is rebuilt. *)

type t = {
  keys : int64 array;
  epochs : int array;   (** epoch each slot was recorded under *)
  valid : bool array;
  mask : int;           (** size - 1; size is a power of two *)
  mutable epoch : int;
  mutable hits : int;
  mutable misses : int;
  mutable records : int;
  mutable epoch_bumps : int;
}

let default_size = 4096

let rec pow2_at_least n k = if k >= n then k else pow2_at_least n (2 * k)

let create ?(size = default_size) () =
  let size = pow2_at_least (max 1 size) 1 in
  {
    keys = Array.make size 0L;
    epochs = Array.make size 0;
    valid = Array.make size false;
    mask = size - 1;
    epoch = 0;
    hits = 0;
    misses = 0;
    records = 0;
    epoch_bumps = 0;
  }

let size t = t.mask + 1

(* SplitMix64 finalizer: a bijective avalanche over 64-bit words. *)
let mix (key : int64) =
  let open Int64 in
  let z = mul key 0x9E3779B97F4A7C15L in
  let z = logxor z (shift_right_logical z 30) in
  let z = mul z 0xBF58476D1CE4E5B9L in
  let z = logxor z (shift_right_logical z 27) in
  let z = mul z 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let hash_string (s : string) =
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c -> h := mix (Int64.logxor !h (Int64.of_int (Char.code c))))
    s;
  !h

(* Sentinel mixed in for the entry frame's missing return token;
   distinct from any mix of a real token with overwhelming margin. *)
let no_token = 0x5BD1E9955BD1E995L

(** The cache key of one trap: every fold step is [mix (acc xor x)],
    a bijection of [acc], so two chains differing in exactly one
    element always map to different keys. *)
let key ~(sysno : int) ~(rip : int64) ~(chain : (string * int64 option) list) :
    int64 =
  let h = mix (Int64.logxor rip (Int64.of_int sysno)) in
  List.fold_left
    (fun h (func, token) ->
      let h = mix (Int64.logxor h (hash_string func)) in
      let tok = match token with None -> no_token | Some tok -> mix tok in
      mix (Int64.logxor h tok))
    h chain

let index t k = Int64.to_int (Int64.logand k 0x7FFFFFFFL) land t.mask

(** Probe for a key recorded under the current epoch. *)
let probe t k =
  let i = index t k in
  let hit = t.valid.(i) && Int64.equal t.keys.(i) k && t.epochs.(i) = t.epoch in
  if hit then t.hits <- t.hits + 1 else t.misses <- t.misses + 1;
  hit

(** Record a key that just passed CT and CF under the current epoch. *)
let record t k =
  let i = index t k in
  t.keys.(i) <- k;
  t.epochs.(i) <- t.epoch;
  t.valid.(i) <- true;
  t.records <- t.records + 1

(** Invalidate every cached verdict (metadata / filter rebuild). *)
let bump_epoch t =
  t.epoch <- t.epoch + 1;
  t.epoch_bumps <- t.epoch_bumps + 1

let hits t = t.hits
let misses t = t.misses
let records t = t.records
let epoch t = t.epoch

let hit_rate t =
  let total = t.hits + t.misses in
  if total = 0 then 0.0 else float_of_int t.hits /. float_of_int total
