(** The trap fast path's CT+CF verdict cache: fixed-size, direct-mapped,
    keyed by a 64-bit mix of (syscall number, trap rip, the stack's
    [(function, return token)] chain).  A hit means this exact callsite
    and return-token chain already passed Call-Type and Control-Flow
    under the current epoch, so the monitor may skip the
    unwind-and-validate walk and go straight to Argument Integrity
    (which always re-runs).

    Safety: every step of {!key} is a bijection of the accumulator, so
    corrupting any single chain element — even by one bit — provably
    changes the key; a pivoted or ROP'd stack can never hit. *)

type t

val default_size : int

(** [create ?size ()] builds an empty cache; [size] is rounded up to a
    power of two (default {!default_size}). *)
val create : ?size:int -> unit -> t

val size : t -> int

(** The cache key of one trap: syscall number, trap rip, and the
    innermost-first [(function, return token)] chain of the stack. *)
val key : sysno:int -> rip:int64 -> chain:(string * int64 option) list -> int64

(** Probe for a key recorded under the current epoch (counts hit/miss
    statistics). *)
val probe : t -> int64 -> bool

(** Record a key that just passed CT and CF. *)
val record : t -> int64 -> unit

(** Invalidate every cached verdict (metadata or seccomp filter
    rebuild). *)
val bump_epoch : t -> unit

val hits : t -> int
val misses : t -> int
val records : t -> int
val epoch : t -> int

(** Hits / (hits + misses); 0 before the first probe. *)
val hit_rate : t -> float
