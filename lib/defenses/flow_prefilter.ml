(* The syscall-flow pre-filter as a defense layer: the per-app
   syscall-transition digraph and origin table that the static flowgraph
   pass (lib/analysis/flowgraph.ml) extracts from the SIL model, and its
   deployment into the in-kernel automaton evaluated by
   [Kernel.Seccomp.flow_eval].

   The spec is program-level (SIL locations); deployment resolves every
   node to its concrete code address through the machine layout and
   attaches the deploy-time argument knowledge (which positions are
   pinned to a statically-known constant) supplied by the monitor's
   metadata.  Keeping the spec location-based makes it a pure function
   of the protected bundle — the same extraction replayed against the
   same program yields the same automaton. *)

(** What the static value analysis knows about one argument position of
    a sensitive callsite:
    - [Fact_set vs]: the value is one of the finitely many constants in
      [vs] on every benign execution (checkable against the argument
      register at seccomp stage);
    - [Fact_free]: the value is dynamic but kernel-derived (flows from a
      syscall result through registers and locals only) — no
      register-visible check exists, and none is needed for the flow
      tier;
    - [Fact_opaque]: the value depends on memory the attacker could
      reach (a global or pointee load, an indirect-call result): only
      the full monitor's shadow check can judge it. *)
type arg_fact = Fact_set of int64 list | Fact_free | Fact_opaque

type node_spec = {
  ns_loc : Sil.Loc.t;          (** the callsite the tracee traps at *)
  ns_callee : string;          (** stub name, or ["<indirect>"] *)
  ns_sysno : int option;       (** [None] for an indirect callsite *)
  ns_facts : (int * arg_fact) list;
      (** per-position value facts for the call's arguments *)
  ns_succs : Sil.Loc.Set.t;    (** nodes that may trap immediately next *)
}

type spec = {
  sp_nodes : node_spec list;         (** sorted by location *)
  sp_starts : Sil.Loc.Set.t;         (** nodes that may trap first *)
  sp_indirect_sysnos : int list;
      (** sensitive numbers reachable through an indirect callsite *)
}

type stats = {
  st_nodes : int;
  st_edges : int;
  st_starts : int;
  st_indirect_nodes : int;
}

let stats (s : spec) =
  {
    st_nodes = List.length s.sp_nodes;
    st_edges =
      List.fold_left (fun acc n -> acc + Sil.Loc.Set.cardinal n.ns_succs) 0 s.sp_nodes;
    st_starts = Sil.Loc.Set.cardinal s.sp_starts;
    st_indirect_nodes =
      List.length (List.filter (fun n -> n.ns_sysno = None) s.sp_nodes);
  }

let pp_stats fmt (st : stats) =
  Format.fprintf fmt "%d nodes (%d indirect), %d edges, %d start states"
    st.st_nodes st.st_indirect_nodes st.st_edges st.st_starts

(** Resolve the spec against a concrete layout and deploy it as the
    in-kernel automaton.  [info ~addr ~sysno] classifies the AI-checked
    argument positions of the callsite at [addr] from the monitor's
    loaded metadata: [`Pin c] is a compiler-pinned constant (checked
    against the register), [`Scalar] a dynamic register-visible value
    (judged by the extraction's {!arg_fact}), [`Pointer] a checked
    pointer the seccomp stage can never verify; [None] means the
    callsite carries no metadata for that syscall.  A node is
    tiered-resolvable when every AI position ends up checked or
    kernel-derived. *)
let deploy (s : spec) ~(layout : Machine.Layout.t)
    ~(mode : Kernel.Seccomp.flow_mode)
    ~(info :
       addr:int64 ->
       sysno:int option ->
       (int * [ `Pin of int64 | `Scalar | `Pointer ]) list option) :
    Kernel.Seccomp.flow_automaton =
  let fa = Kernel.Seccomp.flow_create ~mode in
  let addr_of loc = Machine.Layout.addr_of_loc layout loc in
  List.iter
    (fun (n : node_spec) ->
      let fn_rip = addr_of n.ns_loc in
      let fn_checks, fn_resolvable =
        match info ~addr:fn_rip ~sysno:n.ns_sysno with
        | None -> ([], false)
        | Some positions ->
          let resolvable = ref true in
          let checks =
            List.filter_map
              (fun (pos, cls) ->
                match cls with
                | `Pin c -> Some (pos, [ c ])
                | `Pointer ->
                  resolvable := false;
                  None
                | `Scalar -> (
                  match List.assoc_opt pos n.ns_facts with
                  | Some (Fact_set vs) -> Some (pos, vs)
                  | Some Fact_free -> None
                  | Some Fact_opaque | None ->
                    resolvable := false;
                    None))
              positions
          in
          (checks, !resolvable)
      in
      Kernel.Seccomp.flow_add_node fa
        {
          Kernel.Seccomp.fn_rip;
          fn_sysno = n.ns_sysno;
          fn_checks;
          fn_resolvable;
          fn_succs = Hashtbl.create (max 1 (Sil.Loc.Set.cardinal n.ns_succs));
        })
    s.sp_nodes;
  List.iter
    (fun (n : node_spec) ->
      let src = addr_of n.ns_loc in
      Sil.Loc.Set.iter
        (fun succ -> Kernel.Seccomp.flow_add_edge fa ~src ~dst:(addr_of succ))
        n.ns_succs)
    s.sp_nodes;
  Sil.Loc.Set.iter (fun loc -> Kernel.Seccomp.flow_add_start fa (addr_of loc)) s.sp_starts;
  List.iter (Kernel.Seccomp.flow_add_indirect_sysno fa) s.sp_indirect_sysnos;
  fa
