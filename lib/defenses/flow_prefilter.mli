(** The syscall-flow pre-filter defense layer: the per-app
    syscall-transition digraph and origin (call-site class) table that
    the static flowgraph pass extracts from the SIL model, plus its
    deployment into the in-kernel automaton
    ([Kernel.Seccomp.flow_automaton]) evaluated before any trap.

    The spec is location-based — a pure function of the protected
    bundle; deployment resolves locations to code addresses through the
    machine layout and attaches deploy-time argument knowledge from the
    monitor's metadata. *)

(** Static value knowledge about one argument position of a sensitive
    callsite: a finite benign value set (register-checkable), a dynamic
    but kernel-derived value (syscall results flowing through locals
    only — nothing to check, nothing the full path's shadow probe would
    add beyond dataflow provenance), or an opaque memory-dependent
    value only the full monitor can judge. *)
type arg_fact = Fact_set of int64 list | Fact_free | Fact_opaque

type node_spec = {
  ns_loc : Sil.Loc.t;          (** the callsite the tracee traps at *)
  ns_callee : string;          (** stub name, or ["<indirect>"] *)
  ns_sysno : int option;       (** [None] for an indirect callsite *)
  ns_facts : (int * arg_fact) list;
      (** per-position value facts for the call's arguments *)
  ns_succs : Sil.Loc.Set.t;    (** nodes that may trap immediately next *)
}

type spec = {
  sp_nodes : node_spec list;         (** sorted by location *)
  sp_starts : Sil.Loc.Set.t;         (** nodes that may trap first *)
  sp_indirect_sysnos : int list;
      (** sensitive numbers reachable through an indirect callsite *)
}

type stats = {
  st_nodes : int;
  st_edges : int;
  st_starts : int;
  st_indirect_nodes : int;
}

val stats : spec -> stats
val pp_stats : Format.formatter -> stats -> unit

(** [deploy s ~layout ~mode ~info] builds the in-kernel automaton.
    [info ~addr ~sysno] classifies the AI-checked argument positions of
    the callsite at [addr] from the monitor's metadata ([`Pin c] a
    compiler-pinned constant, [`Scalar] a dynamic register-visible
    value, [`Pointer] a checked pointer seccomp can never verify);
    [None] means no metadata binds that syscall there.  Register checks
    come from pins and [Fact_set] facts; a node is tiered-resolvable
    when every AI position is checked or kernel-derived. *)
val deploy :
  spec ->
  layout:Machine.Layout.t ->
  mode:Kernel.Seccomp.flow_mode ->
  info:
    (addr:int64 ->
     sysno:int option ->
     (int * [ `Pin of int64 | `Scalar | `Pointer ]) list option) ->
  Kernel.Seccomp.flow_automaton
