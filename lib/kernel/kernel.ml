(* System-call dispatch: seccomp evaluation, TRACE stops to the attached
   tracer (the BASTION monitor), then the per-syscall semantics over the
   VFS / socket substrates.  Installed as the machine's syscall handler. *)

module Syscalls = Syscalls
module Seccomp = Seccomp
module Vfs = Vfs
module Net = Net
module Ptrace = Ptrace
module Process = Process

let charge (p : Process.t) n = Machine.charge p.machine n

let cost (p : Process.t) = p.machine.config.cost

(* ------------------------------------------------------------------ *)
(* Per-syscall semantics                                               *)

let sys_open (p : Process.t) (args : int64 array) =
  let path = Machine.read_string p.machine args.(0) in
  match Vfs.lookup p.vfs path with
  | Some file -> Int64.of_int (Process.alloc_fd p (File { file; pos = 0 }))
  | None -> -2L

let sys_read (p : Process.t) (args : int64 array) =
  let fd = Int64.to_int args.(0) in
  let count = Int64.to_int args.(2) in
  match Process.find_fd p fd with
  | Some (File f) ->
    let n = min count (f.file.size_words - f.pos) in
    let n = max n 0 in
    f.pos <- f.pos + n;
    p.io_words_in <- p.io_words_in + n;
    charge p ((cost p).io_per_word * n);
    Int64.of_int n
  | Some (Conn c) ->
    let n = min count c.request_words in
    p.io_words_in <- p.io_words_in + n;
    charge p ((cost p).io_per_word * n);
    Int64.of_int n
  | Some (Sock _) | None -> -1L

let sys_write (p : Process.t) (args : int64 array) =
  let fd = Int64.to_int args.(0) in
  let count = max 0 (Int64.to_int args.(2)) in
  match Process.find_fd p fd with
  | Some (Conn _) ->
    p.io_words_out <- p.io_words_out + count;
    charge p ((cost p).io_per_word * count);
    Int64.of_int count
  | Some (File _) ->
    charge p ((cost p).io_per_word * count);
    Int64.of_int count
  | Some (Sock _) | None -> -1L

let sys_sendfile (p : Process.t) (args : int64 array) =
  (* sendfile(out_fd, in_fd, offset, count) *)
  let count = max 0 (Int64.to_int args.(3)) in
  (match Process.find_fd p (Int64.to_int args.(1)) with
  | Some (File f) -> f.pos <- min f.file.size_words (f.pos + count)
  | Some (Sock _) | Some (Conn _) | None -> ());
  p.io_words_out <- p.io_words_out + count;
  charge p ((cost p).io_per_word * count);
  Int64.of_int count

let sys_socket (p : Process.t) _args = Int64.of_int (Process.alloc_fd p (Sock { port = 0 }))

let sys_bind (p : Process.t) (args : int64 array) =
  match Process.find_fd p (Int64.to_int args.(0)) with
  | Some (Sock s) ->
    s.port <- Int64.to_int args.(1);
    0L
  | Some (File _) | Some (Conn _) | None -> -1L

let sys_listen (p : Process.t) (args : int64 array) =
  match Process.find_fd p (Int64.to_int args.(0)) with
  | Some (Sock s) ->
    Net.listen p.net s.port;
    0L
  | Some (File _) | Some (Conn _) | None -> -1L

let sys_accept (p : Process.t) (args : int64 array) =
  if p.serve_start_cycles = None then
    p.serve_start_cycles <- Some p.machine.stats.cycles;
  match Process.find_fd p (Int64.to_int args.(0)) with
  | Some (Sock s) -> (
    match Net.accept p.net s.port with
    | Some conn -> Int64.of_int (Process.alloc_fd p (Conn conn))
    | None -> -1L)
  | Some (File _) | Some (Conn _) | None -> -1L

let sys_mmap (p : Process.t) (args : int64 array) =
  let words = max 1 (Int64.to_int args.(1)) in
  Machine.alloc_heap p.machine words

let sys_chmod (p : Process.t) (args : int64 array) =
  let path = Machine.read_string p.machine args.(0) in
  Vfs.chmod p.vfs path (Int64.to_int args.(1))

let execute (p : Process.t) ~sysno ~(args : int64 array) : int64 =
  let arg i = if i < Array.length args then args.(i) else 0L in
  let args6 = Array.init 6 arg in
  match Syscalls.name sysno with
  | "open" | "openat" -> sys_open p args6
  | "read" | "recvfrom" -> sys_read p args6
  | "write" | "sendto" -> sys_write p args6
  | "sendfile" -> sys_sendfile p args6
  | "close" ->
    Process.close_fd p (Int64.to_int args6.(0));
    0L
  | "fsync" ->
    charge p (2 * (cost p).syscall_base);
    0L
  | "lseek" -> (
    match Process.find_fd p (Int64.to_int args6.(0)) with
    | Some (File f) ->
      f.pos <- Int64.to_int args6.(1);
      args6.(1)
    | Some (Sock _) | Some (Conn _) | None -> -1L)
  | "stat" | "fstat" -> 0L
  | "socket" -> sys_socket p args6
  | "bind" -> sys_bind p args6
  | "listen" -> sys_listen p args6
  | "connect" -> 0L
  | "accept" | "accept4" -> sys_accept p args6
  | "mmap" -> sys_mmap p args6
  | "mprotect" | "mremap" | "remap_file_pages" -> 0L
  | "chmod" -> sys_chmod p args6
  | "setuid" ->
    p.uid <- Int64.to_int args6.(0);
    0L
  | "setgid" ->
    p.gid <- Int64.to_int args6.(0);
    0L
  | "setreuid" ->
    p.uid <- Int64.to_int args6.(1);
    0L
  | "fork" | "vfork" | "clone" ->
    (* The child inherits a copy of the seccomp policy and stays under
       the same monitor (§7.1); workers are not scheduled separately —
       the parent image serves all connections. *)
    let child = Process.spawn_child p in
    Int64.of_int child.next_pid
  | "execve" | "execveat" -> 0L
  | "ptrace" -> 0L
  | "exit" -> raise (Machine.Program_exit args6.(0))
  | _ -> 0L

(* ------------------------------------------------------------------ *)
(* Dispatch                                                            *)

let dispatch (p : Process.t) (_m : Machine.t) ~sysno ~(args : int64 array) : int64 =
  charge p (cost p).syscall_base;
  (match p.filter with
  | None -> ()
  | Some filter -> (
    charge p (cost p).seccomp_eval;
    match Seccomp.evaluate filter sysno with
    | Seccomp.Allow -> ()
    | Seccomp.Kill -> raise (Machine.Killed (Machine.Seccomp_kill { sysno }))
    | Seccomp.Trace ->
      (* Syscall-flow pre-filter (the tiered fast path): an automaton
         step over the seccomp-visible state — number, callsite
         address, register arguments.  A resolved call never traps: no
         context switches, no ptrace, no unwind.  A standalone-mode
         flow violation kills at seccomp stage, like any filter KILL. *)
      let rip = p.machine.trap_rip in
      (* Every TRACE-rule syscall goes through the automaton: the spec
         is extracted from exactly the event set that traps (including
         the filesystem syscalls under Bastion+fs), so gating on the
         sensitive set would both skip resolvable traps and desync the
         edge relation across the skipped nodes. *)
      let prefilter = Seccomp.flow filter in
      let resolved =
        match prefilter with
        | None -> false
        | Some fa -> (
          charge p (cost p).prefilter_eval;
          match Seccomp.flow_eval fa ~sysno ~rip ~args with
          | Seccomp.Flow_resolve -> true
          | Seccomp.Flow_kill ->
            raise (Machine.Killed (Machine.Seccomp_kill { sysno }))
          | Seccomp.Flow_fallthrough -> false)
      in
      if not resolved then begin
        p.trap_count <- p.trap_count + 1;
        charge p (2 * (cost p).trap_context_switch);
        (match p.tracer_hook with
        | None -> ()
        | Some hook -> (
          p.tracer.cur_sysno <- sysno;
          match hook p ~sysno ~args with
          | Process.Continue -> ()
          | Process.Deny { context; detail } ->
            raise (Machine.Killed (Machine.Monitor_kill { context; detail }))));
        (* The full path allowed the trap: re-synchronise the automaton
           so the next edge check starts from this callsite. *)
        match prefilter with
        | Some fa -> Seccomp.flow_note_allowed fa ~rip
        | None -> ()
      end));
  Process.count_syscall p sysno;
  let path =
    match Syscalls.name sysno with
    | "execve" | "execveat" | "chmod" | "open" | "openat" | "stat"
      when Array.length args > 0 ->
      Some (Machine.read_string p.machine args.(0))
    | _ -> None
  in
  if Syscalls.is_sensitive sysno then Process.log_exec p ~sysno ~args ~path;
  (match p.on_syscall_executed with
  | Some hook -> hook ~sysno ~args ~path
  | None -> ());
  execute p ~sysno ~args

(** Wire a process's kernel into its machine.  Returns the process. *)
let boot (machine : Machine.t) : Process.t =
  let p = Process.create machine in
  machine.on_syscall <- Some (fun m ~sysno ~args -> dispatch p m ~sysno ~args);
  p
