(* The tracer interface the BASTION monitor uses to inspect a stopped
   tracee (PTRACE_GETREGS + process_vm_readv in the paper).  Every
   operation charges its modelled cycle cost to the tracee's clock —
   this is the cost that dominates Table 7.

   Because each process_vm_readv call carries a fixed per-call price on
   top of the per-word transfer cost, the monitor's fast path reads the
   tracee with [snapshot]: the whole stack span and the union of the
   frames' sensitive-slot spans in one or two coalesced calls, instead
   of one call per frame plus one per region. *)

type regs = { rip : int64; sysno : int; args : int64 array }

type frame_view = {
  fv_func : string;
      (** function the frame is executing (what a real unwinder infers
          from the frame's code addresses) *)
  fv_callsite : int64;
      (** code address of the call this frame has in flight *)
  fv_args : int64 array;
      (** argument registers as spilled at that callsite *)
  fv_ret_token : int64 option;
      (** memory-resident return address (None for the entry frame) —
          read back from the corruptible stack *)
  fv_base : int64;
      (** frame base address (for locating local-variable slots) *)
}

type frame_slots = {
  sl_lo : int;            (** word offset of the span's first slot *)
  sl_span : int64 array;  (** slot words [lo .. lo + length - 1] *)
}

type snapshot = {
  sn_frames : frame_view list;   (** unwound frames, innermost first *)
  sn_slots : (int64 * frame_slots) list;
      (** per frame base, the frame's sensitive-slot span *)
  sn_calls : int;  (** process_vm_readv calls this snapshot cost (1-2) *)
}

type t = {
  machine : Machine.t;
  mutable cur_sysno : int;   (** set by the kernel before a TRACE stop *)
  mutable getregs_count : int;
  mutable words_read : int;
  mutable frames_walked : int;
  mutable calls_made : int;  (** process_vm_readv calls issued *)
}

let create machine =
  { machine; cur_sysno = -1; getregs_count = 0; words_read = 0; frames_walked = 0;
    calls_made = 0 }

let cost (t : t) = t.machine.config.cost

let getregs (t : t) : regs =
  t.getregs_count <- t.getregs_count + 1;
  Machine.charge t.machine (cost t).ptrace_getregs;
  { rip = t.machine.trap_rip; sysno = t.cur_sysno; args = t.machine.abi_regs }

(** One remote read: a full process_vm_readv call for a single word. *)
let read_word (t : t) addr =
  t.calls_made <- t.calls_made + 1;
  t.words_read <- t.words_read + 1;
  Machine.charge t.machine ((cost t).ptrace_call + (cost t).ptrace_read_word);
  Machine.peek t.machine addr

(** Batched remote read of [n] consecutive words: one call, [n] words of
    transfer.  Used wherever the monitor can read a region at once. *)
let read_block (t : t) addr n =
  t.calls_made <- t.calls_made + 1;
  t.words_read <- t.words_read + n;
  Machine.charge t.machine ((cost t).ptrace_call + (n * (cost t).ptrace_read_word));
  Machine.Memory.read_block t.machine.mem addr n

(** Read a NUL-terminated string (one char per word) from the tracee. *)
let read_string ?(max_len = 4096) (t : t) addr =
  let s = Machine.Memory.read_string ~max_len t.machine.mem addr in
  let words = String.length s + 1 in
  t.calls_made <- t.calls_made + 1;
  t.words_read <- t.words_read + words;
  Machine.charge t.machine ((cost t).ptrace_call + ((cost t).ptrace_read_word * words));
  s

let view_of_frame (t : t) (frame : Machine.frame) : frame_view =
  {
    fv_func = frame.ffunc;
    fv_callsite = frame.in_flight_callsite;
    fv_args = frame.in_flight_args;
    fv_ret_token = Machine.read_ret_addr t.machine frame;
    fv_base = frame.frame_base;
  }

(** Unwind the tracee's stack, innermost frame first.  Each frame costs
    one remote read of the frame record (saved frame pointer + return
    address), as a naive frame-pointer unwind does.  The monitor's fast
    path uses {!snapshot} instead. *)
let stack_trace (t : t) : frame_view list =
  List.map
    (fun (frame : Machine.frame) ->
      t.frames_walked <- t.frames_walked + 1;
      t.calls_made <- t.calls_made + 1;
      t.words_read <- t.words_read + 2;
      Machine.charge t.machine ((cost t).ptrace_call + (2 * (cost t).ptrace_read_word));
      view_of_frame t frame)
    (Machine.frames t.machine)

(** Coalesced snapshot of the tracee's stack: one batched call for the
    whole stack span (frame records, spilled in-flight arguments,
    return tokens) and, when [slot_span] names any sensitive-slot
    spans, a second batched call for their union — O(1-2) calls total
    where {!stack_trace} plus per-region reads cost O(frames +
    regions).  [slot_span f] gives the (lo, hi) word-offset range of
    function [f]'s sensitive local slots, if any. *)
let snapshot (t : t) ~(slot_span : string -> (int * int) option) : snapshot =
  let mframes = Machine.frames t.machine in
  let nframes = List.length mframes in
  (* Call 1: the contiguous stack span, two record words per frame. *)
  let frame_words = 2 * nframes in
  t.calls_made <- t.calls_made + 1;
  t.frames_walked <- t.frames_walked + nframes;
  t.words_read <- t.words_read + frame_words;
  Machine.charge t.machine
    ((cost t).ptrace_call + (frame_words * (cost t).ptrace_read_word));
  let sn_frames = List.map (view_of_frame t) mframes in
  (* Call 2: the union of the frames' sensitive-slot spans, gathered in
     one scatter-read (process_vm_readv takes an iovec list, so
     disjoint per-frame spans still cost a single call). *)
  let sn_slots =
    List.filter_map
      (fun (frame : Machine.frame) ->
        match slot_span frame.ffunc with
        | None -> None
        | Some (lo, hi) ->
          let n = hi - lo + 1 in
          let span =
            Machine.Memory.read_block t.machine.mem
              (Machine.Memory.addr_add frame.frame_base lo)
              n
          in
          Some (frame.frame_base, { sl_lo = lo; sl_span = span }))
      mframes
  in
  let slot_words =
    List.fold_left (fun acc (_, s) -> acc + Array.length s.sl_span) 0 sn_slots
  in
  let sn_calls =
    if slot_words = 0 then 1
    else begin
      t.calls_made <- t.calls_made + 1;
      t.words_read <- t.words_read + slot_words;
      Machine.charge t.machine
        ((cost t).ptrace_call + (slot_words * (cost t).ptrace_read_word));
      2
    end
  in
  { sn_frames; sn_slots; sn_calls }

(* ------------------------------------------------------------------ *)
(* Replay injection.  The replay engine re-drives the monitor against a
   *recorded* trap stream: the register file and stack snapshot come
   from the trace, not from the (replayed) tracee.  Fidelity demands
   the injected fetches charge exactly what the live reads would for
   the same shape, so a faithful trace replays to bit-identical cycle
   totals; the counters move the same way for the same reason. *)

(** Charge and count exactly what {!getregs} would, then hand back the
    recorded register file instead of reading the tracee. *)
let inject_regs (t : t) (regs : regs) : regs =
  t.getregs_count <- t.getregs_count + 1;
  Machine.charge t.machine (cost t).ptrace_getregs;
  regs

(** Charge and count exactly what {!snapshot} would for a stack of this
    shape (one batched call for the frame span, one more when any
    sensitive-slot words were read), then hand back the recorded
    snapshot.  [sn_calls] is recomputed from the shape, so a corrupted
    recorded value cannot skew the accounting. *)
let inject_snapshot (t : t) (snap : snapshot) : snapshot =
  let nframes = List.length snap.sn_frames in
  let frame_words = 2 * nframes in
  t.calls_made <- t.calls_made + 1;
  t.frames_walked <- t.frames_walked + nframes;
  t.words_read <- t.words_read + frame_words;
  Machine.charge t.machine
    ((cost t).ptrace_call + (frame_words * (cost t).ptrace_read_word));
  let slot_words =
    List.fold_left (fun acc (_, s) -> acc + Array.length s.sl_span) 0 snap.sn_slots
  in
  let sn_calls =
    if slot_words = 0 then 1
    else begin
      t.calls_made <- t.calls_made + 1;
      t.words_read <- t.words_read + slot_words;
      Machine.charge t.machine
        ((cost t).ptrace_call + (slot_words * (cost t).ptrace_read_word));
      2
    end
  in
  { snap with sn_calls }

(** Map a memory-resident return token back to the callsite (the call
    instruction immediately preceding the resume point), as an unwinder
    maps return addresses to call instructions.  Returns [None] if the
    token does not point into code or points at a block entry (which no
    legitimate call produces). *)
let callsite_of_token (t : t) token : Sil.Loc.t option =
  match Machine.Layout.point_of_addr t.machine.layout token with
  | Some (Machine.Layout.Instr_at loc) ->
    if loc.index = 0 then None else Some { loc with index = loc.index - 1 }
  | Some (Machine.Layout.Term_of (func, block)) ->
    let f = Sil.Prog.find_func t.machine.prog func in
    let b = Sil.Func.find_block f block in
    let n = Array.length b.instrs in
    if n = 0 then None else Some (Sil.Loc.make func block (n - 1))
  | None -> None
