(** The tracer interface the BASTION monitor uses to inspect a stopped
    tracee (PTRACE_GETREGS + process_vm_readv in the paper).  Every
    operation charges its modelled cycle cost to the tracee's clock —
    the cost that dominates Table 7.  The monitor's fast path uses
    {!snapshot} to read the whole stack (and the sensitive-slot spans)
    in one or two coalesced calls instead of one per frame. *)

type regs = { rip : int64; sysno : int; args : int64 array }

(** One unwound stack frame, innermost first. *)
type frame_view = {
  fv_func : string;
      (** function the frame is executing (what an unwinder infers from
          the frame's code addresses) *)
  fv_callsite : int64;
      (** code address of the call this frame has in flight *)
  fv_args : int64 array;
      (** argument registers as spilled at that callsite *)
  fv_ret_token : int64 option;
      (** memory-resident return address, read back from the
          corruptible stack ([None] for the entry frame) *)
  fv_base : int64;
      (** frame base address (locates local-variable slots) *)
}

(** One frame's sensitive-slot span as prefetched by {!snapshot}. *)
type frame_slots = {
  sl_lo : int;            (** word offset of the span's first slot *)
  sl_span : int64 array;  (** slot words [lo .. lo + length - 1] *)
}

(** A coalesced read of everything the CF and AI contexts need. *)
type snapshot = {
  sn_frames : frame_view list;  (** unwound frames, innermost first *)
  sn_slots : (int64 * frame_slots) list;
      (** per frame base, the frame's sensitive-slot span *)
  sn_calls : int;  (** process_vm_readv calls this snapshot cost (1-2) *)
}

type t = {
  machine : Machine.t;
  mutable cur_sysno : int;   (** set by the kernel before a TRACE stop *)
  mutable getregs_count : int;
  mutable words_read : int;
  mutable frames_walked : int;
  mutable calls_made : int;  (** process_vm_readv calls issued *)
}

val create : Machine.t -> t

(** PTRACE_GETREGS: rip of the trapping callsite, syscall number and
    argument registers. *)
val getregs : t -> regs

(** One remote read: a full process_vm_readv call for a single word. *)
val read_word : t -> int64 -> int64

(** Batched remote read of [n] consecutive words: one call. *)
val read_block : t -> int64 -> int -> int64 array

(** Read a NUL-terminated string (one char per word) from the tracee. *)
val read_string : ?max_len:int -> t -> int64 -> string

(** Unwind the tracee's stack, innermost frame first; costs one remote
    read per frame (the slow path {!snapshot} replaces). *)
val stack_trace : t -> frame_view list

(** Coalesced stack fetch: the whole stack span in one batched call
    plus, when [slot_span] names any sensitive-slot ranges, their union
    in a second — O(1-2) calls where {!stack_trace} + per-region reads
    cost O(frames + regions).  [slot_span f] is the (lo, hi)
    word-offset range of [f]'s sensitive local slots. *)
val snapshot : t -> slot_span:(string -> (int * int) option) -> snapshot

(** Replay injection: charge and count exactly what {!getregs} would,
    then hand back the recorded register file instead of reading the
    tracee.  A faithful trace replays to bit-identical cycle totals. *)
val inject_regs : t -> regs -> regs

(** Replay injection: charge and count exactly what {!snapshot} would
    for a stack of this shape, then hand back the recorded snapshot
    ([sn_calls] recomputed from the shape). *)
val inject_snapshot : t -> snapshot -> snapshot

(** Map a memory-resident return token back to the call instruction
    immediately preceding the resume point, as an unwinder maps return
    addresses to callsites.  [None] when the token does not decode. *)
val callsite_of_token : t -> int64 -> Sil.Loc.t option
