(* A seccomp-BPF-style system-call filter.

   The BASTION monitor installs a filter that returns
   SECCOMP_RET_ALLOW for non-sensitive calls, SECCOMP_RET_KILL for
   not-callable calls and SECCOMP_RET_TRACE for directly/indirectly
   callable sensitive calls (§7.1).  The plain system-call-filtering
   baseline uses the same engine with an allowlist policy. *)

type action = Allow | Kill | Trace

let action_name = function Allow -> "ALLOW" | Kill -> "KILL" | Trace -> "TRACE"

(* ------------------------------------------------------------------ *)
(* The syscall-flow pre-filter (SFIP/SFP-style): a statically-extracted
   automaton over sensitive-syscall *sequences* and *origins*, evaluated
   at seccomp stage, before any trap is delivered.  Nodes are the code
   addresses of sensitive callsites; an edge n1 -> n2 says the syscall
   at n2 may immediately follow the one at n1 on some benign path.

   Two deployment modes:
   - [Flow_tiered]: the automaton only *fast-paths*.  A trap whose
     (prev, origin, syscall) edge is in the automaton and whose
     arguments are statically pinned constants resolves at seccomp
     cost; anything else falls through to the full monitor.  A miss is
     never a verdict.
   - [Flow_standalone]: the automaton *is* the defense (the SFIP
     baseline): a flow-consistent call is allowed without a trap, a
     miss kills.  This is the ablation's "prefilter-only" row and the
     cheap-defense column of the attack matrix. *)

type flow_mode = Flow_tiered | Flow_standalone

let flow_mode_name = function
  | Flow_tiered -> "tiered"
  | Flow_standalone -> "prefilter-only"

(** One automaton node: a sensitive callsite the program can trap at.
    [fn_sysno] is the syscall invoked there ([None] for an indirect
    callsite, which may invoke any indirectly-callable sensitive
    number).  [fn_checks] are register-visible argument constraints:
    position [pos] must carry one of the listed values (a singleton is
    a pinned constant; a larger set is the statically-possible value
    set of that argument).  [fn_resolvable] says every AI-checked
    argument position is either constrained that way or provably
    kernel-derived, so the tiered mode may resolve the call without
    fetching tracee state. *)
type flow_node = {
  fn_rip : int64;
  fn_sysno : int option;
  fn_checks : (int * int64 list) list;
  fn_resolvable : bool;
  fn_succs : (int64, unit) Hashtbl.t;
}

(** Automaton position: before the first sensitive event, at a known
    node, or desynchronised ([Fs_any]: a full-path verdict allowed an
    event the automaton could not track; every edge check passes until
    it re-synchronises at the next known node). *)
type flow_state = Fs_start | Fs_at of int64 | Fs_any

type flow_automaton = {
  fa_mode : flow_mode;
  fa_nodes : (int64, flow_node) Hashtbl.t;
  fa_starts : (int64, unit) Hashtbl.t;
  fa_indirect_sysnos : (int, unit) Hashtbl.t;
      (** sensitive numbers invocable through an indirect callsite *)
  mutable fa_state : flow_state;
  mutable fa_resolved : int;       (** calls resolved without a trap *)
  mutable fa_fallthroughs : int;   (** sensitive traps passed to the full path *)
  mutable fa_kills : int;          (** standalone-mode flow violations *)
  mutable fa_on_resolve : (sysno:int -> rip:int64 -> unit) option;
      (** observation hook (flight recorder); never charges cycles *)
}

let flow_create ~mode =
  {
    fa_mode = mode;
    fa_nodes = Hashtbl.create 64;
    fa_starts = Hashtbl.create 16;
    fa_indirect_sysnos = Hashtbl.create 4;
    fa_state = Fs_start;
    fa_resolved = 0;
    fa_fallthroughs = 0;
    fa_kills = 0;
    fa_on_resolve = None;
  }

let flow_add_node fa (node : flow_node) = Hashtbl.replace fa.fa_nodes node.fn_rip node

let flow_add_start fa rip = Hashtbl.replace fa.fa_starts rip ()

let flow_add_edge fa ~src ~dst =
  match Hashtbl.find_opt fa.fa_nodes src with
  | Some n -> Hashtbl.replace n.fn_succs dst ()
  | None -> invalid_arg "Seccomp.flow_add_edge: unknown source node"

let flow_add_indirect_sysno fa nr = Hashtbl.replace fa.fa_indirect_sysnos nr ()

let flow_node_count fa = Hashtbl.length fa.fa_nodes

let flow_edge_count fa =
  Hashtbl.fold (fun _ n acc -> acc + Hashtbl.length n.fn_succs) fa.fa_nodes 0

(** Is the transition current-state -> [rip] an edge of the automaton? *)
let flow_edge_ok fa rip =
  match fa.fa_state with
  | Fs_any -> true
  | Fs_start -> Hashtbl.mem fa.fa_starts rip
  | Fs_at prev -> (
    match Hashtbl.find_opt fa.fa_nodes prev with
    | Some n -> Hashtbl.mem n.fn_succs rip
    | None -> false)

let flow_checks_ok (node : flow_node) (args : int64 array) =
  List.for_all
    (fun (pos, allowed) ->
      pos < Array.length args && List.exists (Int64.equal args.(pos)) allowed)
    node.fn_checks

type flow_decision = Flow_resolve | Flow_fallthrough | Flow_kill

(** One automaton step for a sensitive syscall about to trap.  Only
    [sysno], the callsite address and the register-file arguments are
    visible — exactly what a seccomp program sees; no tracee memory is
    touched.  In tiered mode a miss is always [Flow_fallthrough] (the
    pre-filter never decides an attack); in standalone mode a miss is
    [Flow_kill]. *)
let flow_eval fa ~sysno ~rip ~(args : int64 array) : flow_decision =
  let miss () =
    match fa.fa_mode with
    | Flow_tiered ->
      fa.fa_fallthroughs <- fa.fa_fallthroughs + 1;
      Flow_fallthrough
    | Flow_standalone ->
      fa.fa_kills <- fa.fa_kills + 1;
      Flow_kill
  in
  let resolve node =
    fa.fa_resolved <- fa.fa_resolved + 1;
    fa.fa_state <- Fs_at node.fn_rip;
    (match fa.fa_on_resolve with Some f -> f ~sysno ~rip | None -> ());
    Flow_resolve
  in
  match Hashtbl.find_opt fa.fa_nodes rip with
  | None -> miss ()
  | Some node ->
    let sysno_ok =
      match node.fn_sysno with
      | Some nr -> nr = sysno
      | None -> Hashtbl.mem fa.fa_indirect_sysnos sysno
    in
    if not (sysno_ok && flow_edge_ok fa rip) then miss ()
    else begin
      match fa.fa_mode with
      | Flow_standalone ->
        (* SFP-style in-kernel argument check: positions with a
           statically-known value set must carry one of its values. *)
        if flow_checks_ok node args then resolve node else miss ()
      | Flow_tiered ->
        if node.fn_resolvable && flow_checks_ok node args then resolve node
        else begin
          fa.fa_fallthroughs <- fa.fa_fallthroughs + 1;
          Flow_fallthrough
        end
    end

(** The full monitor allowed a trap the automaton did not resolve:
    re-synchronise.  A known node pins the position exactly; an unknown
    callsite desynchronises to [Fs_any]. *)
let flow_note_allowed fa ~rip =
  if Hashtbl.mem fa.fa_nodes rip then fa.fa_state <- Fs_at rip
  else fa.fa_state <- Fs_any

let flow_stats fa = (fa.fa_resolved, fa.fa_fallthroughs, fa.fa_kills)

(* ------------------------------------------------------------------ *)
(* The filter                                                          *)

type filter = {
  rules : (int, action) Hashtbl.t;
  default : action;
  mutable evaluations : int;
  mutable flow : flow_automaton option;
      (** the installed syscall-flow pre-filter, if any *)
}

let create ?(default = Allow) () =
  { rules = Hashtbl.create 64; default; evaluations = 0; flow = None }

let set_rule filter nr action = Hashtbl.replace filter.rules nr action

let rule filter nr = Option.value ~default:filter.default (Hashtbl.find_opt filter.rules nr)

(** Evaluate the filter for a syscall number (charges nothing itself;
    the kernel charges [Cost.seccomp_eval] per evaluation). *)
let evaluate filter nr =
  filter.evaluations <- filter.evaluations + 1;
  rule filter nr

let evaluations filter = filter.evaluations

(** Build an allowlist filter: listed syscalls allowed, others killed. *)
let allowlist numbers =
  let f = create ~default:Kill () in
  List.iter (fun nr -> set_rule f nr Allow) numbers;
  f

let set_flow filter fa = filter.flow <- fa

let flow filter = filter.flow

(** A copy sharing the (immutable) rule semantics, for seccomp policy
    inheritance across fork/clone.  The flow automaton is shared: the
    model never schedules children separately, and §7.1 keeps forked
    workers under the same monitor. *)
let copy filter =
  {
    rules = Hashtbl.copy filter.rules;
    default = filter.default;
    evaluations = 0;
    flow = filter.flow;
  }
