(** A seccomp-BPF-style system-call filter.

    BASTION installs ALLOW for used non-sensitive calls, KILL for
    not-callable calls and TRACE for sensitive calls (§7.1); the plain
    filtering baseline uses the same engine with an allowlist. *)

type action = Allow | Kill | Trace

val action_name : action -> string

(** {1 The syscall-flow pre-filter}

    An SFIP/SFP-style automaton over sensitive-syscall sequences and
    origins, evaluated at seccomp stage before any trap is delivered.
    Nodes are code addresses of sensitive callsites; an edge says the
    target's syscall may immediately follow the source's on some benign
    path.  Only the syscall number, the callsite address and the
    register-file arguments are visible — never tracee memory. *)

(** [Flow_tiered] fast-paths flow-consistent constant-argument calls
    and falls through to the full monitor on any miss (a miss is never
    a verdict); [Flow_standalone] is the pre-filter as the whole
    defense — a miss kills. *)
type flow_mode = Flow_tiered | Flow_standalone

val flow_mode_name : flow_mode -> string

type flow_node = {
  fn_rip : int64;
  fn_sysno : int option;
      (** [None] for an indirect callsite (any indirectly-callable
          sensitive number may trap there) *)
  fn_checks : (int * int64 list) list;
      (** register-visible constraints: the argument at each position
          must carry one of the listed values (a singleton is a pinned
          constant, a larger set the statically-possible value set) *)
  fn_resolvable : bool;
      (** every AI-checked argument position is constrained by a check
          or provably kernel-derived: tiered mode may resolve without
          fetching tracee state *)
  fn_succs : (int64, unit) Hashtbl.t;
}

type flow_state = Fs_start | Fs_at of int64 | Fs_any

type flow_automaton = {
  fa_mode : flow_mode;
  fa_nodes : (int64, flow_node) Hashtbl.t;
  fa_starts : (int64, unit) Hashtbl.t;
  fa_indirect_sysnos : (int, unit) Hashtbl.t;
  mutable fa_state : flow_state;
  mutable fa_resolved : int;
  mutable fa_fallthroughs : int;
  mutable fa_kills : int;
  mutable fa_on_resolve : (sysno:int -> rip:int64 -> unit) option;
}

val flow_create : mode:flow_mode -> flow_automaton
val flow_add_node : flow_automaton -> flow_node -> unit
val flow_add_start : flow_automaton -> int64 -> unit

(** @raise Invalid_argument if the source node is unknown. *)
val flow_add_edge : flow_automaton -> src:int64 -> dst:int64 -> unit

val flow_add_indirect_sysno : flow_automaton -> int -> unit
val flow_node_count : flow_automaton -> int
val flow_edge_count : flow_automaton -> int

type flow_decision = Flow_resolve | Flow_fallthrough | Flow_kill

(** One automaton step for a sensitive syscall about to trap (the
    kernel charges [Cost.prefilter_eval] per step). *)
val flow_eval :
  flow_automaton -> sysno:int -> rip:int64 -> args:int64 array -> flow_decision

(** The full monitor allowed a trap the automaton did not resolve:
    re-synchronise on its callsite. *)
val flow_note_allowed : flow_automaton -> rip:int64 -> unit

(** (resolved, fallthroughs, kills). *)
val flow_stats : flow_automaton -> int * int * int

(** {1 The filter} *)

type filter

(** [create ~default ()] makes an empty filter; [default] (default
    [Allow]) applies to syscalls without an explicit rule. *)
val create : ?default:action -> unit -> filter

val set_rule : filter -> int -> action -> unit

(** The rule that would apply, without counting an evaluation. *)
val rule : filter -> int -> action

(** Evaluate the filter for one invocation (counts the evaluation; the
    kernel charges its cycle cost separately). *)
val evaluate : filter -> int -> action

val evaluations : filter -> int

(** Allowlist: listed syscalls allowed, everything else killed. *)
val allowlist : int list -> filter

(** Install (or clear) the syscall-flow pre-filter on this filter. *)
val set_flow : filter -> flow_automaton option -> unit

(** The installed syscall-flow pre-filter, if any. *)
val flow : filter -> flow_automaton option

(** An independent copy (seccomp inheritance across fork/clone); the
    flow automaton is shared with the parent. *)
val copy : filter -> filter
