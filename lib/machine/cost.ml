(* The cycle cost model shared by the machine, the kernel and the
   defenses.  All performance results are ratios of cycle counts, so only
   the *relative* magnitudes matter; the constants below follow the
   structure §9 and §11.2 of the paper attribute costs to:

   - ordinary execution is cheap;
   - the in-kernel seccomp filter evaluation is cheap (Table 7 row 1);
   - a TRACE trap is dominated by two context switches plus the ptrace
     state fetch (Table 7 row 2 vs row 1);
   - the context verification itself is cheap once state is fetched
     (Table 7 row 3 vs row 2);
   - ctx_* instrumentation is a handful of inlined instructions;
   - CET is nearly free, LLVM CFI costs a few cycles per indirect call. *)

type t = {
  instr : int;                (** any straight-line IR instruction *)
  call : int;                 (** call / frame push *)
  ret : int;                  (** return / frame pop *)
  syscall_base : int;         (** kernel entry/exit for any syscall *)
  io_per_word : int;          (** data movement per 64-bit word of I/O *)
  seccomp_eval : int;         (** BPF filter evaluation per syscall *)
  prefilter_eval : int;       (** syscall-flow automaton step at seccomp stage *)
  trap_context_switch : int;  (** one direction tracee<->monitor *)
  ptrace_getregs : int;       (** PTRACE_GETREGS *)
  ptrace_call : int;          (** fixed cost of one process_vm_readv call *)
  ptrace_read_word : int;     (** process_vm_readv, incremental per word *)
  intrinsic : int;            (** one inlined ctx_* library call *)
  cet_op : int;               (** shadow-stack push or check *)
  cfi_check : int;            (** LLVM CFI check at an indirect callsite *)
  monitor_check : int;        (** one in-monitor comparison/lookup step *)
  cache_probe : int;          (** one verdict-cache probe (hash + compare) *)
}

let default =
  {
    instr = 1;
    call = 3;
    ret = 3;
    syscall_base = 180;
    io_per_word = 8;
    seccomp_eval = 3;
    prefilter_eval = 4;
    trap_context_switch = 2600;
    ptrace_getregs = 700;
    ptrace_call = 520;
    ptrace_read_word = 11;
    intrinsic = 2;
    cet_op = 1;
    cfi_check = 9;
    monitor_check = 6;
    cache_probe = 4;
  }

(** A what-if cost table for the §11.2 discussion of running the monitor
    in kernel mode (eBPF / kernel module): traps no longer context-switch
    and state access is direct. *)
let in_kernel_monitor =
  {
    default with
    trap_context_switch = 25;
    ptrace_getregs = 8;
    ptrace_call = 2;
    ptrace_read_word = 1;
  }
