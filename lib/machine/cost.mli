(** The cycle cost model shared by the machine, the kernel, the
    defenses and the monitor.  All reproduced performance results are
    ratios of cycle counts, so only relative magnitudes matter; the
    structure follows where §9 and §11.2 attribute costs. *)

type t = {
  instr : int;                (** any straight-line IR instruction *)
  call : int;                 (** call / frame push *)
  ret : int;                  (** return / frame pop *)
  syscall_base : int;         (** kernel entry/exit for any syscall *)
  io_per_word : int;          (** data movement per 64-bit word of I/O *)
  seccomp_eval : int;         (** BPF filter evaluation per syscall *)
  prefilter_eval : int;       (** syscall-flow automaton step at seccomp stage *)
  trap_context_switch : int;  (** one direction tracee<->monitor *)
  ptrace_getregs : int;       (** PTRACE_GETREGS *)
  ptrace_call : int;          (** fixed cost of one process_vm_readv call *)
  ptrace_read_word : int;     (** incremental cost per word transferred *)
  intrinsic : int;            (** one inlined ctx_* library call *)
  cet_op : int;               (** shadow-stack compare *)
  cfi_check : int;            (** LLVM CFI check at an indirect callsite *)
  monitor_check : int;        (** one in-monitor comparison/lookup step *)
  cache_probe : int;          (** one verdict-cache probe (hash + compare) *)
}

(** The calibrated default (see DESIGN.md §5). *)
val default : t

(** §11.2 what-if: the monitor inside the kernel (eBPF / module) — no
    context switches, near-direct state access. *)
val in_kernel_monitor : t
