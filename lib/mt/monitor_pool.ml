(* The sharded multi-tracee monitor pool.

   Layout: one bounded Trap_queue and one worker Domain per shard; the
   calling domain is the feeder.  Under the default [Static] policy a
   tracee's work always goes to [shard_of_tracee] of its id; under
   [Least_loaded] and [Steal] the deterministic virtual-clock {!Plan}
   below decides placement per tracee batch.  Whatever the policy,
   per-tracee order stays total: a tracee's batch is owned by exactly
   one shard at a time (the claim), migration happens only at batch
   boundaries (the tracee is quiescent on the virtual clock), and for
   stateful stream verification the claim handoff carries the tracee's
   state through a blocking {!Trap_queue.Cell} so the acquiring shard
   cannot run ahead of the releasing one.  The feeder blocks when a
   queue is full (backpressure, never drops) and merges results in
   tracee order after joining every worker. *)

type policy = Static | Least_loaded | Steal

let policy_name = function
  | Static -> "static"
  | Least_loaded -> "least-loaded"
  | Steal -> "steal"

let policy_of_string = function
  | "static" -> Some Static
  | "least-loaded" | "least_loaded" -> Some Least_loaded
  | "steal" -> Some Steal
  | _ -> None

let all_policies = [ Static; Least_loaded; Steal ]

type config = {
  shards : int;
  queue_capacity : int;
  batch : int;
  policy : policy;
}

let default_queue_capacity = 64
let default_batch = 8

let config ?(queue_capacity = default_queue_capacity) ?(batch = default_batch)
    ?(policy = Static) ~shards () =
  if shards < 1 then invalid_arg "Monitor_pool.config: shards must be >= 1";
  if queue_capacity < 1 then
    invalid_arg "Monitor_pool.config: queue_capacity must be >= 1";
  if batch < 1 then invalid_arg "Monitor_pool.config: batch must be >= 1";
  { shards; queue_capacity; batch; policy }

let shard_of_tracee ~shards tracee =
  if shards < 1 then invalid_arg "Monitor_pool.shard_of_tracee: shards < 1";
  (tracee mod shards + shards) mod shards

(* ------------------------------------------------------------------ *)
(* The deterministic trap-stream scheduler                             *)

(* Placement runs entirely on the modelled clock, never on host timing:
   the feeder routes every item through one [Plan] in feed order, and a
   serial replay of the same stream routes identically — which is what
   lets the fleet driver's sharded runs stay [Metrics.equal] to the
   serial reference under every policy.

   The claim rule: a tracee's claim may move only when the tracee is
   *quiescent* — its last trap has (virtually) finished before the new
   one arrives — so there is never pending work on two shards at once
   and per-tracee FIFO order stays total.

   - [Static]       : claim = shard_of_tracee, forever.
   - [Least_loaded] : a quiescent tracee's next batch is placed on the
                      shard whose virtual clock is smallest (ties keep
                      the current claim, then the lowest shard id).
   - [Steal]        : claims start static; when a quiescent tracee's
                      next trap would *wait* (its claim shard's clock
                      is past the arrival) and a less-loaded shard
                      would start it earlier, that shard steals the
                      batch.  Idle thieves, loaded victims — and no
                      movement at all while nothing queues. *)
module Plan = struct
  type t = {
    pl_policy : policy;
    pl_shards : int;
    pl_clock : int array;  (* per-shard virtual completion time *)
    pl_claim : (int, int) Hashtbl.t;  (* tracee -> owning shard *)
    pl_done : (int, int) Hashtbl.t;  (* tracee -> last trap's finish *)
    pl_items : int array;  (* per-shard items routed *)
    pl_busy : int array;  (* per-shard service cycles routed *)
    mutable pl_steals : int;
    mutable pl_migrations : int;
  }

  type decision = {
    d_shard : int;  (** where this trap goes *)
    d_from : int option;  (** previous claim when the batch migrated *)
  }

  let create ?(policy = Static) ~shards () =
    if shards < 1 then invalid_arg "Monitor_pool.Plan.create: shards < 1";
    {
      pl_policy = policy;
      pl_shards = shards;
      pl_clock = Array.make shards 0;
      pl_claim = Hashtbl.create 32;
      pl_done = Hashtbl.create 32;
      pl_items = Array.make shards 0;
      pl_busy = Array.make shards 0;
      pl_steals = 0;
      pl_migrations = 0;
    }

  (* Least-loaded shard by virtual clock; ties prefer [prefer], then
     the lowest shard id. *)
  let least_loaded t ~prefer =
    let best = ref prefer in
    for s = 0 to t.pl_shards - 1 do
      if t.pl_clock.(s) < t.pl_clock.(!best) then best := s
    done;
    !best

  let route t ~tracee ~at ~service =
    if service < 0 then invalid_arg "Monitor_pool.Plan.route: negative service";
    let current =
      match Hashtbl.find_opt t.pl_claim tracee with
      | Some s -> s
      | None -> shard_of_tracee ~shards:t.pl_shards tracee
    in
    let had_claim = Hashtbl.mem t.pl_done tracee in
    let quiescent =
      match Hashtbl.find_opt t.pl_done tracee with
      | None -> true
      | Some d -> d <= at
    in
    let target =
      match t.pl_policy with
      | Static -> current
      | Least_loaded ->
        if quiescent then least_loaded t ~prefer:current else current
      | Steal ->
        if quiescent && t.pl_clock.(current) > at then begin
          let thief = least_loaded t ~prefer:current in
          if t.pl_clock.(thief) < t.pl_clock.(current) then thief else current
        end
        else current
    in
    let migrated = had_claim && target <> current in
    if migrated then begin
      t.pl_migrations <- t.pl_migrations + 1;
      if t.pl_policy = Steal then t.pl_steals <- t.pl_steals + 1
    end;
    Hashtbl.replace t.pl_claim tracee target;
    let start = max at t.pl_clock.(target) in
    t.pl_clock.(target) <- start + service;
    Hashtbl.replace t.pl_done tracee t.pl_clock.(target);
    t.pl_items.(target) <- t.pl_items.(target) + 1;
    t.pl_busy.(target) <- t.pl_busy.(target) + service;
    { d_shard = target; d_from = (if migrated then Some current else None) }

  let steals t = t.pl_steals
  let migrations t = t.pl_migrations
  let items_per_shard t = Array.copy t.pl_items
  let busy_per_shard t = Array.copy t.pl_busy
end

(* ------------------------------------------------------------------ *)
(* The deterministic whole-job scheduler                               *)

(* The modelled-deployment counterpart for whole-tracee jobs, where
   every job is available at virtual time 0 and its cost is known (the
   driver measures per-tracee cycles first; placement is accounting,
   not execution).  [Steal] seeds each shard's FIFO with its static
   tracees and replays the work-stealing discipline on virtual clocks:
   the shard that goes idle earliest acts next, popping its own front
   or stealing the *back* of the victim with the most pending cycles.
   [Least_loaded] is greedy earliest-finish placement in tracee
   order. *)
type job_plan = {
  jp_policy : policy;
  jp_assignment : int array;  (* tracee -> shard *)
  jp_shard_cycles : int array;
  jp_makespan : int;
  jp_steals : int;
  jp_migrations : int;
}

let plan_jobs ~policy ~shards (costs : int array) : job_plan =
  if shards < 1 then invalid_arg "Monitor_pool.plan_jobs: shards < 1";
  let n = Array.length costs in
  let assignment = Array.make n (-1) in
  let cycles = Array.make shards 0 in
  let steals = ref 0 in
  (match policy with
  | Static ->
    Array.iteri
      (fun t c ->
        let s = shard_of_tracee ~shards t in
        assignment.(t) <- s;
        cycles.(s) <- cycles.(s) + c)
      costs
  | Least_loaded ->
    Array.iteri
      (fun t c ->
        let home = shard_of_tracee ~shards t in
        let best = ref home in
        for s = 0 to shards - 1 do
          if cycles.(s) < cycles.(!best) then best := s
        done;
        assignment.(t) <- !best;
        cycles.(!best) <- cycles.(!best) + c)
      costs
  | Steal ->
    (* Per-shard pending FIFOs, seeded statically in tracee order. *)
    let pending = Array.make shards [] in
    for t = n - 1 downto 0 do
      let s = shard_of_tracee ~shards t in
      pending.(s) <- t :: pending.(s)
    done;
    let pending_cycles s = List.fold_left (fun a t -> a + costs.(t)) 0 pending.(s) in
    let remaining = ref n in
    while !remaining > 0 do
      (* The shard idle earliest acts next; ties go to the lowest id. *)
      let actor = ref 0 in
      for s = 1 to shards - 1 do
        if cycles.(s) < cycles.(!actor) then actor := s
      done;
      let s = !actor in
      let take tracee ~stolen =
        assignment.(tracee) <- s;
        cycles.(s) <- cycles.(s) + costs.(tracee);
        if stolen then incr steals;
        decr remaining
      in
      (match pending.(s) with
      | t :: rest ->
        pending.(s) <- rest;
        take t ~stolen:false
      | [] ->
        (* Steal from the back of the victim with the most pending
           work (ties and all-zero-cost tails fall to the lowest
           non-empty victim). *)
        let victim = ref (-1) and best = ref (-1) in
        for v = shards - 1 downto 0 do
          if pending.(v) <> [] then begin
            let pc = pending_cycles v in
            if pc >= !best then begin
              victim := v;
              best := pc
            end
          end
        done;
        if !victim < 0 then
          (* Nothing pending anywhere but remaining > 0: impossible. *)
          assert false
        else begin
          match List.rev pending.(!victim) with
          | [] -> assert false
          | t :: rest_rev ->
            pending.(!victim) <- List.rev rest_rev;
            take t ~stolen:true
        end)
    done);
  let migrations =
    let m = ref 0 in
    Array.iteri
      (fun t s -> if s <> shard_of_tracee ~shards t then incr m)
      assignment;
    !m
  in
  {
    jp_policy = policy;
    jp_assignment = assignment;
    jp_shard_cycles = cycles;
    jp_makespan = Array.fold_left max 0 cycles;
    jp_steals = !steals;
    jp_migrations = migrations;
  }

(* ------------------------------------------------------------------ *)
(* Pool runtime                                                        *)

type shard_stats = {
  sh_shard : int;
  sh_tracees : int;
  sh_items : int;
  sh_queue : Trap_queue.stats;
}

type stats = {
  p_config : config;
  p_tracees : int;
  p_shards : shard_stats array;
  p_steals : int;
  p_migrations : int;
}

(* Feeder/worker skeleton shared by both granularities: spawn one
   worker per shard over its own queue, push every item to its shard,
   close, join.  [worker] consumes batches until the queue drains; its
   return value is the shard's result.  [arrival], when given, stamps
   each item with its modelled-cycle arrival time (the open-loop load
   driver's clock) so workers can pop stamped batches and price queue
   wait into end-to-end latency.  [route], when given, overrides the
   static [shard_of_tracee] placement — this is how the {!Plan}'s
   decisions reach the queues. *)
let with_pool ?arrival ?route (cfg : config) ~(items : (int * 'item) Seq.t)
    ~(worker : shard:int -> (int * 'item) Trap_queue.t -> 'acc) :
    'acc array * (int -> Trap_queue.stats) =
  let queues =
    Array.init cfg.shards (fun _ -> Trap_queue.create ~capacity:cfg.queue_capacity)
  in
  let domains =
    Array.init cfg.shards (fun s -> Domain.spawn (fun () -> worker ~shard:s queues.(s)))
  in
  let at = match arrival with None -> fun _ -> 0 | Some f -> f in
  let dest =
    match route with
    | Some f -> f
    | None ->
      fun ((tracee, _) : int * 'item) -> shard_of_tracee ~shards:cfg.shards tracee
  in
  (* Feed on the calling domain; a full shard queue blocks us here —
     that is the backpressure, not a drop. *)
  (try
     Seq.iter
       (fun item -> Trap_queue.push_at ~at:(at item) queues.(dest item) item)
       items
   with e ->
     (* Never leave workers running: close and join before re-raising.
        A worker that *also* raised must not shadow the feeder's
        exception — the first failure wins, so join errors are
        discarded here. *)
     Array.iter Trap_queue.close queues;
     Array.iter (fun d -> try ignore (Domain.join d) with _ -> ()) domains;
     raise e);
  Array.iter Trap_queue.close queues;
  (* Join every domain before raising anything, so a failure on shard 0
     cannot leak shards 1..n-1; when several workers failed, the
     lowest-numbered shard's exception wins deterministically. *)
  let joined =
    Array.map
      (fun d -> match Domain.join d with v -> Ok v | exception e -> Error e)
      domains
  in
  let accs =
    Array.map (function Ok v -> v | Error e -> raise e) joined
  in
  (accs, fun s -> Trap_queue.stats queues.(s))

let drain (queue : 'a Trap_queue.t) ~batch ~f =
  let rec loop () =
    match Trap_queue.pop_batch queue ~max:batch with
    | [] -> ()
    | items ->
      List.iter f items;
      loop ()
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Whole-tracee jobs                                                   *)

(* The static path feeds each job through its home shard's bounded
   queue.  Under [Least_loaded] and [Steal] the pool switches to real
   work stealing over {!Trap_queue.Deque}s: every deque is seeded with
   its shard's static tracees, owners pop from the front, and a worker
   whose deque runs dry steals whole-tracee claims from the *back* of
   the longest victim.  (At whole-job granularity the two non-static
   policies share this execution — job costs are unknown until the job
   runs, so there is nothing for least-loaded placement to weigh; the
   deterministic cost-aware split between them lives in {!plan_jobs},
   which the drivers use for modelled accounting.)  Each result slot is
   written by exactly one domain and read only after the joins. *)
let run_tracees (type r) ~(config : config) (jobs : (unit -> r) array) :
    r array * stats =
  let n = Array.length jobs in
  let results : (r, exn) result option array = Array.make n None in
  if config.policy = Static then begin
    let worker ~shard:_ queue =
      let items = ref 0 in
      let tracees = ref 0 in
      drain queue ~batch:config.batch ~f:(fun (tracee, ()) ->
          incr items;
          incr tracees;
          results.(tracee) <-
            Some (match jobs.(tracee) () with v -> Ok v | exception e -> Error e));
      (!items, !tracees)
    in
    let accs, queue_stats =
      with_pool config
        ~items:(Seq.init n (fun i -> (i, ())))
        ~worker
    in
    let shard_stats =
      Array.mapi
        (fun s (items, tracees) ->
          { sh_shard = s; sh_tracees = tracees; sh_items = items;
            sh_queue = queue_stats s })
        accs
    in
    let stats =
      { p_config = config; p_tracees = n; p_shards = shard_stats;
        p_steals = 0; p_migrations = 0 }
    in
    let values =
      Array.map
        (function
          | Some (Ok v) -> v
          | Some (Error e) -> raise e
          | None -> assert false (* every index was pushed and drained *))
        results
    in
    (values, stats)
  end
  else begin
    let shards = config.shards in
    let deques = Array.init shards (fun _ -> Trap_queue.Deque.create ()) in
    for t = 0 to n - 1 do
      Trap_queue.Deque.push_back deques.(shard_of_tracee ~shards t) t
    done;
    (* Which shard ran each tracee; single writer per slot, read after
       the joins. *)
    let executed = Array.make n (-1) in
    let worker shard () =
      let items = ref 0 in
      (* Own front first; otherwise steal the back of the longest
         victim.  A lost steal race just rescans — deques are never
         refilled, so an all-empty scan means the work is done. *)
      let rec acquire () =
        match Trap_queue.Deque.pop_front deques.(shard) with
        | Some t -> Some t
        | None ->
          let victim = ref (-1) and best = ref 0 in
          for v = 0 to shards - 1 do
            let len = Trap_queue.Deque.length deques.(v) in
            if len > !best then begin
              victim := v;
              best := len
            end
          done;
          if !victim < 0 then None
          else begin
            match Trap_queue.Deque.steal_back deques.(!victim) with
            | Some t -> Some t
            | None -> acquire ()
          end
      in
      let rec loop () =
        match acquire () with
        | None -> !items
        | Some tracee ->
          incr items;
          executed.(tracee) <- shard;
          results.(tracee) <-
            Some
              (match jobs.(tracee) () with v -> Ok v | exception e -> Error e);
          loop ()
      in
      loop ()
    in
    let domains = Array.init shards (fun s -> Domain.spawn (worker s)) in
    let counts =
      Array.map
        (fun d -> match Domain.join d with v -> Ok v | exception e -> Error e)
        domains
    in
    let counts = Array.map (function Ok v -> v | Error e -> raise e) counts in
    let shard_stats =
      Array.mapi
        (fun s items ->
          let dq = Trap_queue.Deque.stats deques.(s) in
          (* The deque plays the queue's role here; its accounting maps
             onto the queue-stats shape so probes stay uniform.
             [popped] counts claims that left this deque either way. *)
          { sh_shard = s;
            sh_tracees = items;
            sh_items = items;
            sh_queue =
              {
                Trap_queue.q_capacity = config.queue_capacity;
                q_pushed = dq.Trap_queue.Deque.dq_pushed;
                q_popped =
                  dq.Trap_queue.Deque.dq_popped + dq.Trap_queue.Deque.dq_stolen;
                q_max_depth = dq.Trap_queue.Deque.dq_max_len;
                q_blocked_pushes = 0;
                q_batches =
                  dq.Trap_queue.Deque.dq_popped + dq.Trap_queue.Deque.dq_stolen;
              } })
        counts
    in
    let steals =
      Array.fold_left
        (fun acc d -> acc + (Trap_queue.Deque.stats d).Trap_queue.Deque.dq_stolen)
        0 deques
    in
    let migrations = ref 0 in
    Array.iteri
      (fun t s -> if s <> shard_of_tracee ~shards t then incr migrations)
      executed;
    let stats =
      { p_config = config; p_tracees = n; p_shards = shard_stats;
        p_steals = steals; p_migrations = !migrations }
    in
    let values =
      Array.map
        (function
          | Some (Ok v) -> v
          | Some (Error e) -> raise e
          | None -> assert false (* every claim was seeded and consumed *))
        results
    in
    (values, stats)
  end

(* ------------------------------------------------------------------ *)
(* Trap-granular stream                                                *)

(* Worker commands.  [Work] carries the trap's global feed sequence
   (for the order-restoring merge) and, when the trap is the first on
   a new claim shard, the handoff cell to adopt the tracee's state
   from.  [Release] tells the old claim shard to surrender the state
   into the cell after it has processed everything before it — queue
   FIFO gives exactly that. *)
type ('s, 'trap) stream_cmd =
  | Work of int * 'trap * 's Trap_queue.Cell.t option
  | Release of 's Trap_queue.Cell.t

let process_stream (type s v) ?(service = fun _ -> 1) ~(config : config)
    ~tracees ~(init : int -> s) ~(verify : tracee:int -> s -> 'trap -> v)
    (stream : (int * 'trap) list) : v list array * stats =
  List.iter
    (fun (tracee, _) ->
      if tracee < 0 || tracee >= tracees then
        invalid_arg
          (Printf.sprintf "Monitor_pool.process_stream: tracee %d not in [0,%d)"
             tracee tracees))
    stream;
  (* Route the whole stream through one deterministic plan, in feed
     order.  With no arrival process of its own, a trap's virtual
     arrival is the ideal-balance completion time of everything before
     it: cumulative service over the shard count.  Under [Static] the
     plan degenerates to [shard_of_tracee] and no Release is ever
     emitted. *)
  let plan = Plan.create ~policy:config.policy ~shards:config.shards () in
  let cum = ref 0 in
  let seq = ref 0 in
  let routed =
    List.concat_map
      (fun (tracee, trap) ->
        let sv = service trap in
        if sv < 0 then
          invalid_arg "Monitor_pool.process_stream: negative service";
        let at = !cum / config.shards in
        cum := !cum + sv;
        let d = Plan.route plan ~tracee ~at ~service:sv in
        let i = !seq in
        incr seq;
        match d.Plan.d_from with
        | None -> [ (tracee, (d.Plan.d_shard, Work (i, trap, None))) ]
        | Some old ->
          (* Release strictly before the acquiring Work: the feed-order
             edge the deadlock-freedom argument leans on (DESIGN §13). *)
          let cell = Trap_queue.Cell.create () in
          [
            (tracee, (old, Release cell));
            (tracee, (d.Plan.d_shard, Work (i, trap, Some cell)));
          ])
      stream
  in
  let worker ~shard:_ queue =
    let states : (int, s) Hashtbl.t = Hashtbl.create 8 in
    let seen : (int, unit) Hashtbl.t = Hashtbl.create 8 in
    let verdicts : (int, (int * v) list) Hashtbl.t = Hashtbl.create 8 in
    let items = ref 0 in
    drain queue ~batch:config.batch ~f:(fun (tracee, (_, cmd)) ->
        match cmd with
        | Release cell ->
          let state =
            match Hashtbl.find_opt states tracee with
            | Some s -> s
            | None -> assert false (* claim discipline: state is here *)
          in
          Hashtbl.remove states tracee;
          Trap_queue.Cell.fill cell state
        | Work (i, trap, adopt) ->
          incr items;
          Hashtbl.replace seen tracee ();
          let state =
            match adopt with
            | Some cell ->
              let s = Trap_queue.Cell.take cell in
              Hashtbl.replace states tracee s;
              s
            | None -> (
              match Hashtbl.find_opt states tracee with
              | Some s -> s
              | None ->
                let s = init tracee in
                Hashtbl.replace states tracee s;
                s)
          in
          let v = verify ~tracee state trap in
          Hashtbl.replace verdicts tracee
            ((i, v)
            :: Option.value ~default:[] (Hashtbl.find_opt verdicts tracee)));
    let per_tracee =
      Hashtbl.fold (fun tracee vs acc -> (tracee, vs) :: acc) verdicts []
    in
    (!items, Hashtbl.length seen, per_tracee)
  in
  let accs, queue_stats =
    with_pool config
      ~route:(fun (_, (shard, _)) -> shard)
      ~items:(List.to_seq routed) ~worker
  in
  (* A migrated tracee's verdicts are spread over several shards; the
     feed-sequence tags restore the per-tracee total order exactly. *)
  let tagged = Array.make tracees [] in
  Array.iter
    (fun (_, _, per_tracee) ->
      List.iter
        (fun (tracee, vs) -> tagged.(tracee) <- List.rev_append vs tagged.(tracee))
        per_tracee)
    accs;
  let merged =
    Array.map
      (fun vs ->
        List.map snd (List.sort (fun (a, _) (b, _) -> compare a b) vs))
      tagged
  in
  let shard_stats =
    Array.mapi
      (fun s (items, tracees, _) ->
        { sh_shard = s; sh_tracees = tracees; sh_items = items;
          sh_queue = queue_stats s })
      accs
  in
  ( merged,
    { p_config = config; p_tracees = tracees; p_shards = shard_stats;
      p_steals = Plan.steals plan; p_migrations = Plan.migrations plan } )

let process_stream_serial (type s v) ~tracees ~(init : int -> s)
    ~(verify : tracee:int -> s -> 'trap -> v) (stream : (int * 'trap) list) :
    v list array =
  let states : (int, s) Hashtbl.t = Hashtbl.create 8 in
  let merged = Array.make tracees [] in
  List.iter
    (fun (tracee, trap) ->
      if tracee < 0 || tracee >= tracees then
        invalid_arg
          (Printf.sprintf
             "Monitor_pool.process_stream_serial: tracee %d not in [0,%d)" tracee
             tracees);
      let state =
        match Hashtbl.find_opt states tracee with
        | Some s -> s
        | None ->
          let s = init tracee in
          Hashtbl.replace states tracee s;
          s
      in
      merged.(tracee) <- verify ~tracee state trap :: merged.(tracee))
    stream;
  Array.map List.rev merged

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)

(* A finished pool's accounting is exposed as sampled *probes* over
   the stats snapshot, not copied into owned counters: the snapshot
   stays authoritative (re-registering after another run replaces the
   probe rather than double counting), and the registry read is the
   same [counter_values] path either way. *)
let util_spread (stats : stats) =
  let n = Array.length stats.p_shards in
  if n = 0 then 0.0
  else begin
    let items = Array.map (fun sh -> sh.sh_items) stats.p_shards in
    let total = Array.fold_left ( + ) 0 items in
    if total = 0 then 0.0
    else
      float_of_int (Array.fold_left max 0 items)
      /. (float_of_int total /. float_of_int n)
  end

let mirror_stats (stats : stats) (reg : Obs.Metrics.t) =
  let probe name v =
    Obs.Metrics.register_probe reg name (fun () -> float_of_int v)
  in
  probe "mt.shards" stats.p_config.shards;
  probe "mt.tracees" stats.p_tracees;
  probe "mt.steals" stats.p_steals;
  probe "mt.migrations" stats.p_migrations;
  (* Imbalance in one number: hottest shard's items over the mean.
     1.0 is a perfectly level pool; shards/1 is everything on one. *)
  Obs.Metrics.register_probe reg "mt.util_spread" (fun () -> util_spread stats);
  Array.iter
    (fun (sh : shard_stats) ->
      let p suffix v =
        probe (Printf.sprintf "mt.shard%d.%s" sh.sh_shard suffix) v
      in
      p "items" sh.sh_items;
      p "tracees" sh.sh_tracees;
      p "queue.capacity" sh.sh_queue.Trap_queue.q_capacity;
      p "queue.pushed" sh.sh_queue.Trap_queue.q_pushed;
      p "queue.popped" sh.sh_queue.Trap_queue.q_popped;
      p "queue.max_depth" sh.sh_queue.Trap_queue.q_max_depth;
      p "queue.blocked_pushes" sh.sh_queue.Trap_queue.q_blocked_pushes;
      p "queue.batches" sh.sh_queue.Trap_queue.q_batches;
      Obs.Metrics.register_probe reg
        (Printf.sprintf "mt.shard%d.queue.mean_batch" sh.sh_shard)
        (fun () ->
          if sh.sh_queue.Trap_queue.q_batches = 0 then 0.0
          else
            float_of_int sh.sh_queue.Trap_queue.q_popped
            /. float_of_int sh.sh_queue.Trap_queue.q_batches))
    stats.p_shards
