(* The sharded multi-tracee monitor pool.

   Layout: one bounded Trap_queue and one worker Domain per shard; the
   calling domain is the feeder.  A tracee's work always goes to
   [shard_of_tracee] of its id, so per-tracee order is total (bounded
   FIFO, single consumer) and no verification state ever crosses a
   domain: whatever a shard creates for a tracee — monitor, verdict
   cache, recorder, stream-verifier state — lives and dies on that
   shard's domain.  The feeder blocks when a queue is full
   (backpressure, never drops) and merges results in tracee order after
   joining every worker. *)

type config = { shards : int; queue_capacity : int; batch : int }

let default_queue_capacity = 64
let default_batch = 8

let config ?(queue_capacity = default_queue_capacity) ?(batch = default_batch)
    ~shards () =
  if shards < 1 then invalid_arg "Monitor_pool.config: shards must be >= 1";
  if queue_capacity < 1 then
    invalid_arg "Monitor_pool.config: queue_capacity must be >= 1";
  if batch < 1 then invalid_arg "Monitor_pool.config: batch must be >= 1";
  { shards; queue_capacity; batch }

let shard_of_tracee ~shards tracee =
  if shards < 1 then invalid_arg "Monitor_pool.shard_of_tracee: shards < 1";
  (tracee mod shards + shards) mod shards

type shard_stats = {
  sh_shard : int;
  sh_tracees : int;
  sh_items : int;
  sh_queue : Trap_queue.stats;
}

type stats = { p_config : config; p_tracees : int; p_shards : shard_stats array }

(* Feeder/worker skeleton shared by both granularities: spawn one
   worker per shard over its own queue, push every item to its owning
   shard, close, join.  [worker] consumes batches until the queue
   drains; its return value is the shard's result.  [arrival], when
   given, stamps each item with its modelled-cycle arrival time (the
   open-loop load driver's clock) so workers can pop stamped batches
   and price queue wait into end-to-end latency. *)
let with_pool ?arrival (cfg : config) ~(items : (int * 'item) Seq.t)
    ~(worker : shard:int -> (int * 'item) Trap_queue.t -> 'acc) :
    'acc array * (int -> Trap_queue.stats) =
  let queues =
    Array.init cfg.shards (fun _ -> Trap_queue.create ~capacity:cfg.queue_capacity)
  in
  let domains =
    Array.init cfg.shards (fun s -> Domain.spawn (fun () -> worker ~shard:s queues.(s)))
  in
  let at = match arrival with None -> fun _ -> 0 | Some f -> f in
  (* Feed on the calling domain; a full shard queue blocks us here —
     that is the backpressure, not a drop. *)
  (try
     Seq.iter
       (fun ((tracee, _) as item) ->
         Trap_queue.push_at ~at:(at item)
           queues.(shard_of_tracee ~shards:cfg.shards tracee)
           item)
       items
   with e ->
     (* Never leave workers running: close and join before re-raising. *)
     Array.iter Trap_queue.close queues;
     Array.iter (fun d -> ignore (Domain.join d)) domains;
     raise e);
  Array.iter Trap_queue.close queues;
  let accs = Array.map Domain.join domains in
  (accs, fun s -> Trap_queue.stats queues.(s))

let drain (queue : 'a Trap_queue.t) ~batch ~f =
  let rec loop () =
    match Trap_queue.pop_batch queue ~max:batch with
    | [] -> ()
    | items ->
      List.iter f items;
      loop ()
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Whole-tracee jobs                                                   *)

let run_tracees (type r) ~(config : config) (jobs : (unit -> r) array) :
    r array * stats =
  let n = Array.length jobs in
  (* One slot per tracee; each is written by exactly one worker domain
     and read only after the joins (the join gives the happens-before
     edge). *)
  let results : (r, exn) result option array = Array.make n None in
  let worker ~shard:_ queue =
    let items = ref 0 in
    let tracees = ref 0 in
    drain queue ~batch:config.batch ~f:(fun (tracee, ()) ->
        incr items;
        incr tracees;
        results.(tracee) <-
          Some (match jobs.(tracee) () with v -> Ok v | exception e -> Error e));
    (!items, !tracees)
  in
  let accs, queue_stats =
    with_pool config
      ~items:(Seq.init n (fun i -> (i, ())))
      ~worker
  in
  let shard_stats =
    Array.mapi
      (fun s (items, tracees) ->
        { sh_shard = s; sh_tracees = tracees; sh_items = items;
          sh_queue = queue_stats s })
      accs
  in
  let stats = { p_config = config; p_tracees = n; p_shards = shard_stats } in
  (* Deterministic failure: the lowest-numbered failing tracee wins,
     whatever order the shards actually ran in. *)
  let values =
    Array.map
      (function
        | Some (Ok v) -> v
        | Some (Error e) -> raise e
        | None -> assert false (* every index was pushed and drained *))
      results
  in
  (values, stats)

(* ------------------------------------------------------------------ *)
(* Trap-granular stream                                                *)

let process_stream (type s v) ~(config : config) ~tracees
    ~(init : int -> s) ~(verify : tracee:int -> s -> 'trap -> v)
    (stream : (int * 'trap) list) : v list array * stats =
  List.iter
    (fun (tracee, _) ->
      if tracee < 0 || tracee >= tracees then
        invalid_arg
          (Printf.sprintf "Monitor_pool.process_stream: tracee %d not in [0,%d)"
             tracee tracees))
    stream;
  let worker ~shard:_ queue =
    let states : (int, s) Hashtbl.t = Hashtbl.create 8 in
    let verdicts : (int, v list) Hashtbl.t = Hashtbl.create 8 in
    let items = ref 0 in
    drain queue ~batch:config.batch ~f:(fun (tracee, trap) ->
        incr items;
        let state =
          match Hashtbl.find_opt states tracee with
          | Some s -> s
          | None ->
            let s = init tracee in
            Hashtbl.replace states tracee s;
            s
        in
        let v = verify ~tracee state trap in
        Hashtbl.replace verdicts tracee
          (v :: Option.value ~default:[] (Hashtbl.find_opt verdicts tracee)));
    let per_tracee =
      Hashtbl.fold (fun tracee vs acc -> (tracee, List.rev vs) :: acc) verdicts []
    in
    (!items, Hashtbl.length states, per_tracee)
  in
  let accs, queue_stats =
    with_pool config ~items:(List.to_seq stream) ~worker
  in
  let merged = Array.make tracees [] in
  Array.iter
    (fun (_, _, per_tracee) ->
      List.iter (fun (tracee, vs) -> merged.(tracee) <- vs) per_tracee)
    accs;
  let shard_stats =
    Array.mapi
      (fun s (items, tracees, _) ->
        { sh_shard = s; sh_tracees = tracees; sh_items = items;
          sh_queue = queue_stats s })
      accs
  in
  (merged, { p_config = config; p_tracees = tracees; p_shards = shard_stats })

let process_stream_serial (type s v) ~tracees ~(init : int -> s)
    ~(verify : tracee:int -> s -> 'trap -> v) (stream : (int * 'trap) list) :
    v list array =
  let states : (int, s) Hashtbl.t = Hashtbl.create 8 in
  let merged = Array.make tracees [] in
  List.iter
    (fun (tracee, trap) ->
      if tracee < 0 || tracee >= tracees then
        invalid_arg
          (Printf.sprintf
             "Monitor_pool.process_stream_serial: tracee %d not in [0,%d)" tracee
             tracees);
      let state =
        match Hashtbl.find_opt states tracee with
        | Some s -> s
        | None ->
          let s = init tracee in
          Hashtbl.replace states tracee s;
          s
      in
      merged.(tracee) <- verify ~tracee state trap :: merged.(tracee))
    stream;
  Array.map List.rev merged

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)

(* A finished pool's accounting is exposed as sampled *probes* over
   the stats snapshot, not copied into owned counters: the snapshot
   stays authoritative (re-registering after another run replaces the
   probe rather than double counting), and the registry read is the
   same [counter_values] path either way. *)
let mirror_stats (stats : stats) (reg : Obs.Metrics.t) =
  let probe name v =
    Obs.Metrics.register_probe reg name (fun () -> float_of_int v)
  in
  probe "mt.shards" stats.p_config.shards;
  probe "mt.tracees" stats.p_tracees;
  Array.iter
    (fun (sh : shard_stats) ->
      let p suffix v =
        probe (Printf.sprintf "mt.shard%d.%s" sh.sh_shard suffix) v
      in
      p "items" sh.sh_items;
      p "tracees" sh.sh_tracees;
      p "queue.capacity" sh.sh_queue.Trap_queue.q_capacity;
      p "queue.pushed" sh.sh_queue.Trap_queue.q_pushed;
      p "queue.popped" sh.sh_queue.Trap_queue.q_popped;
      p "queue.max_depth" sh.sh_queue.Trap_queue.q_max_depth;
      p "queue.blocked_pushes" sh.sh_queue.Trap_queue.q_blocked_pushes;
      p "queue.batches" sh.sh_queue.Trap_queue.q_batches;
      Obs.Metrics.register_probe reg
        (Printf.sprintf "mt.shard%d.queue.mean_batch" sh.sh_shard)
        (fun () ->
          if sh.sh_queue.Trap_queue.q_batches = 0 then 0.0
          else
            float_of_int sh.sh_queue.Trap_queue.q_popped
            /. float_of_int sh.sh_queue.Trap_queue.q_batches))
    stats.p_shards
