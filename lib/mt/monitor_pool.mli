(** The sharded multi-tracee monitor pool.

    The paper's monitor (§7) serially traps and verifies one tracee's
    syscalls; total verification throughput is therefore capped at one
    trap at a time no matter how many protected processes exist.  The
    pool shards *tracees* across OCaml 5 worker domains: every tracee
    is pinned to one shard ([shard_of_tracee], stable by tracee id), a
    bounded {!Trap_queue} per shard carries its work with blocking-push
    backpressure, and each shard's verification state — the per-tracee
    [Monitor.t], its verdict cache, its recorder — is created and only
    ever touched on that shard's domain.  Nothing mutable is shared
    across domains, so a tracee's modelled cycles, verdicts and denials
    are byte-identical to a serial run regardless of the shard count;
    results are merged back in tracee order.

    Two granularities:
    - {!run_tracees}: whole-tracee jobs (boot a session, run the
      machine, verify its traps in-domain as they stop) — what the
      multi-tracee workload driver and the attack runner use;
    - {!process_stream}: an interleaved per-trap stream dispatched to
      the owning shard — the event-loop shape of a real multi-tracee
      ptrace monitor, and what the equivalence property tests drive. *)

type config = {
  shards : int;          (** worker domains; >= 1 *)
  queue_capacity : int;  (** bound of each shard's trap queue *)
  batch : int;           (** max items per consumer pop *)
}

val default_queue_capacity : int
val default_batch : int

(** [config ~shards ()] with defaulted queue bounds.
    @raise Invalid_argument on a non-positive field. *)
val config : ?queue_capacity:int -> ?batch:int -> shards:int -> unit -> config

(** The owning shard of a tracee: stable, so the same tracee always
    lands on the same shard (per-tracee serialisation). *)
val shard_of_tracee : shards:int -> int -> int

type shard_stats = {
  sh_shard : int;
  sh_tracees : int;             (** distinct tracees this shard served *)
  sh_items : int;               (** work items it processed *)
  sh_queue : Trap_queue.stats;  (** its queue's lifetime statistics *)
}

type stats = {
  p_config : config;
  p_tracees : int;
  p_shards : shard_stats array;
}

(** The feeder/worker skeleton under both granularities, exposed for
    harnesses that need raw shard workers (the open-loop fleet driver):
    one worker domain and one bounded queue per shard; every item is
    pushed to its tracee's owning shard ([arrival], when given, stamps
    it with the modelled-cycle arrival time for
    {!Trap_queue.pop_batch_stamped}); queues close when the item
    sequence ends and workers' results come back in shard order, with
    a post-join accessor for each queue's lifetime stats. *)
val with_pool :
  ?arrival:(int * 'item -> int) ->
  config ->
  items:(int * 'item) Seq.t ->
  worker:(shard:int -> (int * 'item) Trap_queue.t -> 'acc) ->
  'acc array * (int -> Trap_queue.stats)

(** Run one job per tracee (index = tracee id), each on its owning
    shard's domain; within a shard, jobs run serially in queue order.
    Results come back in tracee order.  If jobs raised, the exception
    of the lowest-numbered failing tracee is re-raised after every
    domain has been joined (deterministic, no orphaned domains). *)
val run_tracees : config:config -> (unit -> 'r) array -> 'r array * stats

(** Dispatch an interleaved trap stream [(tracee, trap); ...] to the
    owning shards.  [init tracee] creates the tracee's verifier state
    *on its shard's domain* at its first trap; [verify] folds each trap
    through that state.  Per-tracee verdict order equals stream order
    (one bounded FIFO per shard, one consumer).  Tracee ids must lie in
    [0, tracees).  Returns the per-tracee verdict lists, tracee order. *)
val process_stream :
  config:config ->
  tracees:int ->
  init:(int -> 's) ->
  verify:(tracee:int -> 's -> 'trap -> 'v) ->
  (int * 'trap) list ->
  'v list array * stats

(** The serial reference: same contract as {!process_stream}, executed
    inline on the calling domain with no queueing — the baseline the
    equivalence properties compare against. *)
val process_stream_serial :
  tracees:int ->
  init:(int -> 's) ->
  verify:(tracee:int -> 's -> 'trap -> 'v) ->
  (int * 'trap) list ->
  'v list array

(** Expose a finished pool's per-shard occupancy and queue
    backpressure accounting as sampled probes on a metrics registry
    ([mt.shards], [mt.tracees], and per shard [mt.shard<i>.items],
    [.tracees], [.queue.capacity], [.queue.pushed], [.queue.popped],
    [.queue.max_depth], [.queue.blocked_pushes], [.queue.batches],
    [.queue.mean_batch]).  Probes, not counters: the stats snapshot
    stays authoritative and re-registration replaces rather than
    double counts. *)
val mirror_stats : stats -> Obs.Metrics.t -> unit
