(** The sharded multi-tracee monitor pool.

    The paper's monitor (§7) serially traps and verifies one tracee's
    syscalls; total verification throughput is therefore capped at one
    trap at a time no matter how many protected processes exist.  The
    pool shards *tracees* across OCaml 5 worker domains: a bounded
    {!Trap_queue} per shard carries its work with blocking-push
    backpressure, and each shard's verification state — the per-tracee
    [Monitor.t], its verdict cache, its recorder — is created and only
    ever touched on that shard's domain *while the shard owns the
    tracee's claim*.

    Placement is a {!policy}.  Under the default {!Static} every tracee
    is pinned to [shard_of_tracee] of its id forever.  Under
    {!Least_loaded} and {!Steal} the deterministic virtual-clock
    {!Plan} may migrate a tracee's claim between shards — but only at
    batch boundaries when the tracee is quiescent, and the handoff
    moves the verifier state through a blocking {!Trap_queue.Cell}, so
    a tracee's work is still owned by exactly one shard at a time and
    per-tracee trap order stays total (DESIGN §13).  Verdicts, modelled
    cycles and denials are byte-identical to a serial run under every
    policy; results are merged back in tracee order.

    Two granularities:
    - {!run_tracees}: whole-tracee jobs (boot a session, run the
      machine, verify its traps in-domain as they stop) — what the
      multi-tracee workload driver and the attack runner use;
    - {!process_stream}: an interleaved per-trap stream dispatched to
      the claim-owning shard — the event-loop shape of a real
      multi-tracee ptrace monitor, and what the equivalence property
      tests drive. *)

(** How tracee work is placed on shards. *)
type policy =
  | Static  (** pin to [shard_of_tracee], never move — the baseline *)
  | Least_loaded
      (** place each quiescent batch on the least-loaded shard
          (virtual clock); the simpler ablation arm *)
  | Steal
      (** static homes, but an idle shard steals a quiescent tracee's
          next batch when its claim shard would make it wait *)

val policy_name : policy -> string
(** ["static"], ["least-loaded"], ["steal"] — the CLI spelling. *)

val policy_of_string : string -> policy option
(** Inverse of {!policy_name} (also accepts ["least_loaded"]). *)

val all_policies : policy list
(** [[Static; Least_loaded; Steal]] — ablation sweep order. *)

type config = {
  shards : int;          (** worker domains; >= 1 *)
  queue_capacity : int;  (** bound of each shard's trap queue *)
  batch : int;           (** max items per consumer pop *)
  policy : policy;       (** placement policy; {!Static} by default *)
}

val default_queue_capacity : int
val default_batch : int

(** [config ~shards ()] with defaulted queue bounds and the {!Static}
    policy.  @raise Invalid_argument on a non-positive field. *)
val config :
  ?queue_capacity:int -> ?batch:int -> ?policy:policy -> shards:int -> unit ->
  config

(** The *home* shard of a tracee: stable by id.  Under {!Static} this
    is final; under the other policies it seeds the claim. *)
val shard_of_tracee : shards:int -> int -> int

(** The deterministic trap-stream scheduler.  One plan routes a whole
    stream in feed order on modelled virtual clocks — never host
    timing — so a sharded run and a serial replay of the same stream
    place every trap identically, which is what keeps sharded metrics
    [Metrics.equal] to the serial reference under every policy.  A
    tracee's claim may move only when the tracee is quiescent (its
    previous trap's virtual finish is at or before the new arrival), so
    there is never pending work on two shards at once. *)
module Plan : sig
  type t

  type decision = {
    d_shard : int;  (** where this trap goes *)
    d_from : int option;  (** previous claim when the batch migrated *)
  }

  val create : ?policy:policy -> shards:int -> unit -> t
  (** Fresh plan, all clocks zero.  @raise Invalid_argument on
      [shards < 1]. *)

  val route : t -> tracee:int -> at:int -> service:int -> decision
  (** Route one trap arriving at modelled cycle [at] costing [service]
      cycles, advancing the target shard's clock.  Must be called in
      feed order.  @raise Invalid_argument on negative [service]. *)

  val steals : t -> int
  (** Migrations performed by the {!Steal} policy so far. *)

  val migrations : t -> int
  (** Claim moves under any policy so far (= {!steals} for [Steal]). *)

  val items_per_shard : t -> int array

  val busy_per_shard : t -> int array
  (** Routed items / service cycles per shard — the modelled load the
      fleet driver turns into per-shard utilisation. *)
end

(** Deterministic placement of whole-tracee jobs with known costs:
    the modelled-deployment counterpart of {!run_tracees}' real
    stealing, used by the drivers for makespan accounting.  [Static]
    groups by home shard; [Least_loaded] greedily places each tracee
    (in id order) on the shard with the least accumulated cycles;
    [Steal] replays the stealing discipline on virtual clocks — the
    earliest-idle shard pops its own FIFO front or steals the back of
    the victim with the most pending cycles. *)
type job_plan = {
  jp_policy : policy;
  jp_assignment : int array;   (** tracee -> shard *)
  jp_shard_cycles : int array; (** accumulated cycles per shard *)
  jp_makespan : int;           (** max over shards *)
  jp_steals : int;             (** [Steal]-policy steals (else 0) *)
  jp_migrations : int;         (** tracees not on their home shard *)
}

val plan_jobs : policy:policy -> shards:int -> int array -> job_plan
(** [plan_jobs ~policy ~shards costs] where [costs.(t)] is tracee
    [t]'s measured cycles.  @raise Invalid_argument on [shards < 1]. *)

type shard_stats = {
  sh_shard : int;
  sh_tracees : int;             (** distinct tracees this shard served *)
  sh_items : int;               (** work items it processed *)
  sh_queue : Trap_queue.stats;  (** its queue's lifetime statistics *)
}

type stats = {
  p_config : config;
  p_tracees : int;
  p_shards : shard_stats array;
  p_steals : int;      (** claims/batches moved by stealing *)
  p_migrations : int;  (** claim moves under any non-static policy *)
}

(** The feeder/worker skeleton under both granularities, exposed for
    harnesses that need raw shard workers (the open-loop fleet driver):
    one worker domain and one bounded queue per shard; every item is
    pushed to its tracee's home shard, or to [route item] when [route]
    is given — how a {!Plan}'s decisions reach the queues.  [arrival],
    when given, stamps each item with the modelled-cycle arrival time
    for {!Trap_queue.pop_batch_stamped}.  Queues close when the item
    sequence ends and workers' results come back in shard order, with
    a post-join accessor for each queue's lifetime stats.

    Failure semantics: if the feeder raises, queues are closed and all
    workers joined (join errors discarded) before the feeder's
    exception — the first failure — is re-raised.  If only workers
    raise, every domain is joined first and the lowest-numbered
    shard's exception wins deterministically. *)
val with_pool :
  ?arrival:(int * 'item -> int) ->
  ?route:(int * 'item -> int) ->
  config ->
  items:(int * 'item) Seq.t ->
  worker:(shard:int -> (int * 'item) Trap_queue.t -> 'acc) ->
  'acc array * (int -> Trap_queue.stats)

(** Run one job per tracee (index = tracee id).  Under {!Static} each
    job runs on its home shard's domain, serially in queue order.
    Under {!Least_loaded}/{!Steal} the pool work-steals for real: each
    shard's {!Trap_queue.Deque} is seeded with its home tracees,
    owners pop the front, and an idle worker steals whole-tracee
    claims from the back of the longest victim (job costs are unknown
    until run, so both non-static policies share this execution; the
    cost-aware modelled split lives in {!plan_jobs}).  Results come
    back in tracee order.  If jobs raised, the exception of the
    lowest-numbered failing tracee is re-raised after every domain has
    been joined (deterministic, no orphaned domains). *)
val run_tracees : config:config -> (unit -> 'r) array -> 'r array * stats

(** Dispatch an interleaved trap stream [(tracee, trap); ...] to the
    claim-owning shards, routing every trap through one {!Plan} in
    feed order ([service], default [fun _ -> 1], prices each trap; a
    trap's virtual arrival is the ideal-balance completion time of the
    stream before it).  [init tracee] creates the tracee's verifier
    state on its first shard; on migration the releasing shard
    surrenders that state through a blocking {!Trap_queue.Cell} after
    its last pre-migration trap, so the acquiring shard cannot run
    ahead — per-tracee verdict order equals stream order under every
    policy, and the returned verdicts are bit-identical to
    {!process_stream_serial}.  Tracee ids must lie in [0, tracees).
    Returns the per-tracee verdict lists, tracee order. *)
val process_stream :
  ?service:('trap -> int) ->
  config:config ->
  tracees:int ->
  init:(int -> 's) ->
  verify:(tracee:int -> 's -> 'trap -> 'v) ->
  (int * 'trap) list ->
  'v list array * stats

(** The serial reference: same contract as {!process_stream}, executed
    inline on the calling domain with no queueing — the baseline the
    equivalence properties compare against. *)
val process_stream_serial :
  tracees:int ->
  init:(int -> 's) ->
  verify:(tracee:int -> 's -> 'trap -> 'v) ->
  (int * 'trap) list ->
  'v list array

val util_spread : stats -> float
(** Imbalance in one number: the hottest shard's items over the mean
    per-shard items.  [1.0] is perfectly level, [shards] is everything
    on one shard; [0.0] when the pool processed nothing. *)

(** Expose a finished pool's per-shard occupancy and queue
    backpressure accounting as sampled probes on a metrics registry
    ([mt.shards], [mt.tracees], [mt.steals], [mt.migrations],
    [mt.util_spread], and per shard [mt.shard<i>.items], [.tracees],
    [.queue.capacity], [.queue.pushed], [.queue.popped],
    [.queue.max_depth], [.queue.blocked_pushes], [.queue.batches],
    [.queue.mean_batch]).  Probes, not counters: the stats snapshot
    stays authoritative and re-registration replaces rather than
    double counts. *)
val mirror_stats : stats -> Obs.Metrics.t -> unit
