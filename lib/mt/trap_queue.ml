(* A bounded MPSC queue on Mutex/Condition.  Two conditions: [not_full]
   wakes blocked producers, [not_empty] wakes the consumer.  All state,
   including the statistics, lives under the one mutex — the queue is a
   coordination point, not a hot loop, and a trap already costs two
   priced ptrace reads before it gets here. *)

exception Closed

type 'a t = {
  lock : Mutex.t;
  not_full : Condition.t;
  not_empty : Condition.t;
  (* Each slot carries its arrival stamp (modelled cycles at enqueue,
     0 when the producer does not track time) so the consumer can
     price queue wait into the trap's end-to-end latency. *)
  items : (int * 'a) Queue.t;
  capacity : int;
  mutable closed : bool;
  (* statistics *)
  mutable pushed : int;
  mutable popped : int;
  mutable max_depth : int;
  mutable blocked_pushes : int;
  mutable batches : int;
}

type stats = {
  q_capacity : int;
  q_pushed : int;
  q_popped : int;
  q_max_depth : int;
  q_blocked_pushes : int;
  q_batches : int;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Trap_queue.create: capacity must be >= 1";
  {
    lock = Mutex.create ();
    not_full = Condition.create ();
    not_empty = Condition.create ();
    items = Queue.create ();
    capacity;
    closed = false;
    pushed = 0;
    popped = 0;
    max_depth = 0;
    blocked_pushes = 0;
    batches = 0;
  }

let locked (t : 'a t) f =
  Mutex.lock t.lock;
  match f () with
  | v ->
    Mutex.unlock t.lock;
    v
  | exception e ->
    Mutex.unlock t.lock;
    raise e

let enqueue_locked (t : 'a t) ~at x =
  Queue.push (at, x) t.items;
  t.pushed <- t.pushed + 1;
  let d = Queue.length t.items in
  if d > t.max_depth then t.max_depth <- d;
  Condition.signal t.not_empty

let push_at (t : 'a t) ~at x =
  locked t (fun () ->
      if t.closed then raise Closed;
      if Queue.length t.items >= t.capacity then begin
        t.blocked_pushes <- t.blocked_pushes + 1;
        while Queue.length t.items >= t.capacity && not t.closed do
          Condition.wait t.not_full t.lock
        done
      end;
      if t.closed then raise Closed;
      enqueue_locked t ~at x)

let push (t : 'a t) x = push_at t ~at:0 x

let try_push (t : 'a t) x =
  locked t (fun () ->
      if t.closed then raise Closed;
      if Queue.length t.items >= t.capacity then false
      else begin
        enqueue_locked t ~at:0 x;
        true
      end)

let pop_batch_stamped (t : 'a t) ~max =
  locked t (fun () ->
      while Queue.is_empty t.items && not t.closed do
        Condition.wait t.not_empty t.lock
      done;
      let n = min max (Queue.length t.items) in
      let rec take k acc =
        if k = 0 then List.rev acc else take (k - 1) (Queue.pop t.items :: acc)
      in
      let batch = take (Stdlib.max 0 n) [] in
      if batch <> [] then begin
        t.popped <- t.popped + List.length batch;
        t.batches <- t.batches + 1;
        (* More than one slot may have opened up; wake every waiter. *)
        Condition.broadcast t.not_full
      end;
      batch)

let pop_batch (t : 'a t) ~max = List.map snd (pop_batch_stamped t ~max)

let close (t : 'a t) =
  locked t (fun () ->
      if not t.closed then begin
        t.closed <- true;
        Condition.broadcast t.not_full;
        Condition.broadcast t.not_empty
      end)

let is_closed (t : 'a t) = locked t (fun () -> t.closed)

let depth (t : 'a t) = locked t (fun () -> Queue.length t.items)

let stats (t : 'a t) =
  locked t (fun () ->
      {
        q_capacity = t.capacity;
        q_pushed = t.pushed;
        q_popped = t.popped;
        q_max_depth = t.max_depth;
        q_blocked_pushes = t.blocked_pushes;
        q_batches = t.batches;
      })

let mean_batch (s : stats) =
  if s.q_batches = 0 then Float.nan
  else float_of_int s.q_popped /. float_of_int s.q_batches

(** Register this queue's backpressure accounting as sampled probes on
    [reg] under [prefix] (e.g. ["mt.shard0.queue"]): live depth plus
    the lifetime counters.  Probes read under the queue's lock at
    snapshot time, so the registry and {!stats} can never disagree. *)
let register_probes (t : 'a t) reg ~prefix =
  let probe name read =
    Obs.Metrics.register_probe reg (prefix ^ "." ^ name) (fun () ->
        locked t (fun () -> read ()))
  in
  probe "depth" (fun () -> float_of_int (Queue.length t.items));
  probe "pushed" (fun () -> float_of_int t.pushed);
  probe "popped" (fun () -> float_of_int t.popped);
  probe "max_depth" (fun () -> float_of_int t.max_depth);
  probe "blocked_pushes" (fun () -> float_of_int t.blocked_pushes);
  probe "batches" (fun () -> float_of_int t.batches);
  probe "mean_batch" (fun () ->
      if t.batches = 0 then 0.0
      else float_of_int t.popped /. float_of_int t.batches)
