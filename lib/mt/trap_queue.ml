(* A bounded MPSC queue on Mutex/Condition.  Two conditions: [not_full]
   wakes blocked producers, [not_empty] wakes the consumer.  All state,
   including the statistics, lives under the one mutex — the queue is a
   coordination point, not a hot loop, and a trap already costs two
   priced ptrace reads before it gets here. *)

exception Closed

type 'a t = {
  lock : Mutex.t;
  not_full : Condition.t;
  not_empty : Condition.t;
  items : 'a Queue.t;
  capacity : int;
  mutable closed : bool;
  (* statistics *)
  mutable pushed : int;
  mutable popped : int;
  mutable max_depth : int;
  mutable blocked_pushes : int;
  mutable batches : int;
}

type stats = {
  q_capacity : int;
  q_pushed : int;
  q_popped : int;
  q_max_depth : int;
  q_blocked_pushes : int;
  q_batches : int;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Trap_queue.create: capacity must be >= 1";
  {
    lock = Mutex.create ();
    not_full = Condition.create ();
    not_empty = Condition.create ();
    items = Queue.create ();
    capacity;
    closed = false;
    pushed = 0;
    popped = 0;
    max_depth = 0;
    blocked_pushes = 0;
    batches = 0;
  }

let locked (t : 'a t) f =
  Mutex.lock t.lock;
  match f () with
  | v ->
    Mutex.unlock t.lock;
    v
  | exception e ->
    Mutex.unlock t.lock;
    raise e

let enqueue_locked (t : 'a t) x =
  Queue.push x t.items;
  t.pushed <- t.pushed + 1;
  let d = Queue.length t.items in
  if d > t.max_depth then t.max_depth <- d;
  Condition.signal t.not_empty

let push (t : 'a t) x =
  locked t (fun () ->
      if t.closed then raise Closed;
      if Queue.length t.items >= t.capacity then begin
        t.blocked_pushes <- t.blocked_pushes + 1;
        while Queue.length t.items >= t.capacity && not t.closed do
          Condition.wait t.not_full t.lock
        done
      end;
      if t.closed then raise Closed;
      enqueue_locked t x)

let try_push (t : 'a t) x =
  locked t (fun () ->
      if t.closed then raise Closed;
      if Queue.length t.items >= t.capacity then false
      else begin
        enqueue_locked t x;
        true
      end)

let pop_batch (t : 'a t) ~max =
  locked t (fun () ->
      while Queue.is_empty t.items && not t.closed do
        Condition.wait t.not_empty t.lock
      done;
      let n = min max (Queue.length t.items) in
      let rec take k acc =
        if k = 0 then List.rev acc else take (k - 1) (Queue.pop t.items :: acc)
      in
      let batch = take (Stdlib.max 0 n) [] in
      if batch <> [] then begin
        t.popped <- t.popped + List.length batch;
        t.batches <- t.batches + 1;
        (* More than one slot may have opened up; wake every waiter. *)
        Condition.broadcast t.not_full
      end;
      batch)

let close (t : 'a t) =
  locked t (fun () ->
      if not t.closed then begin
        t.closed <- true;
        Condition.broadcast t.not_full;
        Condition.broadcast t.not_empty
      end)

let is_closed (t : 'a t) = locked t (fun () -> t.closed)

let depth (t : 'a t) = locked t (fun () -> Queue.length t.items)

let stats (t : 'a t) =
  locked t (fun () ->
      {
        q_capacity = t.capacity;
        q_pushed = t.pushed;
        q_popped = t.popped;
        q_max_depth = t.max_depth;
        q_blocked_pushes = t.blocked_pushes;
        q_batches = t.batches;
      })

let mean_batch (s : stats) =
  if s.q_batches = 0 then Float.nan
  else float_of_int s.q_popped /. float_of_int s.q_batches
