(* A bounded MPSC queue on Mutex/Condition.  Two conditions: [not_full]
   wakes blocked producers, [not_empty] wakes the consumer.  All state,
   including the statistics, lives under the one mutex — the queue is a
   coordination point, not a hot loop, and a trap already costs two
   priced ptrace reads before it gets here. *)

exception Closed

type 'a t = {
  lock : Mutex.t;
  not_full : Condition.t;
  not_empty : Condition.t;
  (* Each slot carries its arrival stamp (modelled cycles at enqueue,
     0 when the producer does not track time) so the consumer can
     price queue wait into the trap's end-to-end latency. *)
  items : (int * 'a) Queue.t;
  capacity : int;
  mutable closed : bool;
  (* statistics *)
  mutable pushed : int;
  mutable popped : int;
  mutable max_depth : int;
  mutable blocked_pushes : int;
  mutable batches : int;
}

type stats = {
  q_capacity : int;
  q_pushed : int;
  q_popped : int;
  q_max_depth : int;
  q_blocked_pushes : int;
  q_batches : int;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Trap_queue.create: capacity must be >= 1";
  {
    lock = Mutex.create ();
    not_full = Condition.create ();
    not_empty = Condition.create ();
    items = Queue.create ();
    capacity;
    closed = false;
    pushed = 0;
    popped = 0;
    max_depth = 0;
    blocked_pushes = 0;
    batches = 0;
  }

let locked (t : 'a t) f =
  Mutex.lock t.lock;
  match f () with
  | v ->
    Mutex.unlock t.lock;
    v
  | exception e ->
    Mutex.unlock t.lock;
    raise e

let enqueue_locked (t : 'a t) ~at x =
  Queue.push (at, x) t.items;
  t.pushed <- t.pushed + 1;
  let d = Queue.length t.items in
  if d > t.max_depth then t.max_depth <- d;
  Condition.signal t.not_empty

let push_at (t : 'a t) ~at x =
  locked t (fun () ->
      if t.closed then raise Closed;
      if Queue.length t.items >= t.capacity then begin
        t.blocked_pushes <- t.blocked_pushes + 1;
        while Queue.length t.items >= t.capacity && not t.closed do
          Condition.wait t.not_full t.lock
        done
      end;
      if t.closed then raise Closed;
      enqueue_locked t ~at x)

let push (t : 'a t) x = push_at t ~at:0 x

let try_push (t : 'a t) x =
  locked t (fun () ->
      if t.closed then raise Closed;
      if Queue.length t.items >= t.capacity then false
      else begin
        enqueue_locked t ~at:0 x;
        true
      end)

let pop_batch_stamped (t : 'a t) ~max =
  locked t (fun () ->
      while Queue.is_empty t.items && not t.closed do
        Condition.wait t.not_empty t.lock
      done;
      let n = min max (Queue.length t.items) in
      let rec take k acc =
        if k = 0 then List.rev acc else take (k - 1) (Queue.pop t.items :: acc)
      in
      let batch = take (Stdlib.max 0 n) [] in
      if batch <> [] then begin
        t.popped <- t.popped + List.length batch;
        t.batches <- t.batches + 1;
        (* More than one slot may have opened up; wake every waiter. *)
        Condition.broadcast t.not_full
      end;
      batch)

let pop_batch (t : 'a t) ~max = List.map snd (pop_batch_stamped t ~max)

let close (t : 'a t) =
  locked t (fun () ->
      if not t.closed then begin
        t.closed <- true;
        Condition.broadcast t.not_full;
        Condition.broadcast t.not_empty
      end)

let is_closed (t : 'a t) = locked t (fun () -> t.closed)

let depth (t : 'a t) = locked t (fun () -> Queue.length t.items)

let stats (t : 'a t) =
  locked t (fun () ->
      {
        q_capacity = t.capacity;
        q_pushed = t.pushed;
        q_popped = t.popped;
        q_max_depth = t.max_depth;
        q_blocked_pushes = t.blocked_pushes;
        q_batches = t.batches;
      })

let mean_batch (s : stats) =
  if s.q_batches = 0 then Float.nan
  else float_of_int s.q_popped /. float_of_int s.q_batches

(** Register this queue's backpressure accounting as sampled probes on
    [reg] under [prefix] (e.g. ["mt.shard0.queue"]): live depth plus
    the lifetime counters.  Probes read under the queue's lock at
    snapshot time, so the registry and {!stats} can never disagree. *)
let register_probes (t : 'a t) reg ~prefix =
  let probe name read =
    Obs.Metrics.register_probe reg (prefix ^ "." ^ name) (fun () ->
        locked t (fun () -> read ()))
  in
  probe "depth" (fun () -> float_of_int (Queue.length t.items));
  probe "pushed" (fun () -> float_of_int t.pushed);
  probe "popped" (fun () -> float_of_int t.popped);
  probe "max_depth" (fun () -> float_of_int t.max_depth);
  probe "blocked_pushes" (fun () -> float_of_int t.blocked_pushes);
  probe "batches" (fun () -> float_of_int t.batches);
  probe "mean_batch" (fun () ->
      if t.batches = 0 then 0.0
      else float_of_int t.popped /. float_of_int t.batches)

(* ------------------------------------------------------------------ *)
(* The stealable deque of whole-tracee claims                          *)

(* A mutex-guarded double-ended queue: the owning shard pops claims
   from the front (FIFO over its seeded work), idle thieves steal from
   the back — the claim least likely to be the one the owner touches
   next.  Like the trap queue, this is a coordination point, not a hot
   loop: a claim is a whole tracee's work batch, so contention is per
   tracee, not per trap.  No blocking: deques are seeded up front and
   never refilled, so an empty scan means the work is done. *)
module Deque = struct
  type 'a t = {
    d_lock : Mutex.t;
    (* Front list in order + back list reversed: O(1) amortised at
       both ends, fine under a mutex. *)
    mutable front : 'a list;
    mutable back : 'a list;
    mutable d_len : int;
    mutable d_pushed : int;
    mutable d_popped : int;  (* owner pops (front) *)
    mutable d_stolen : int;  (* thief steals (back) *)
    mutable d_max_len : int;
  }

  type stats = {
    dq_pushed : int;
    dq_popped : int;
    dq_stolen : int;
    dq_max_len : int;
  }

  let create () =
    {
      d_lock = Mutex.create ();
      front = [];
      back = [];
      d_len = 0;
      d_pushed = 0;
      d_popped = 0;
      d_stolen = 0;
      d_max_len = 0;
    }

  let locked (t : 'a t) f =
    Mutex.lock t.d_lock;
    match f () with
    | v ->
      Mutex.unlock t.d_lock;
      v
    | exception e ->
      Mutex.unlock t.d_lock;
      raise e

  let push_back (t : 'a t) x =
    locked t (fun () ->
        t.back <- x :: t.back;
        t.d_len <- t.d_len + 1;
        t.d_pushed <- t.d_pushed + 1;
        if t.d_len > t.d_max_len then t.d_max_len <- t.d_len)

  let pop_front (t : 'a t) =
    locked t (fun () ->
        (match t.front with
        | [] ->
          t.front <- List.rev t.back;
          t.back <- []
        | _ -> ());
        match t.front with
        | [] -> None
        | x :: rest ->
          t.front <- rest;
          t.d_len <- t.d_len - 1;
          t.d_popped <- t.d_popped + 1;
          Some x)

  let steal_back (t : 'a t) =
    locked t (fun () ->
        (match t.back with
        | [] ->
          t.back <- List.rev t.front;
          t.front <- []
        | _ -> ());
        match t.back with
        | [] -> None
        | x :: rest ->
          t.back <- rest;
          t.d_len <- t.d_len - 1;
          t.d_stolen <- t.d_stolen + 1;
          Some x)

  let length (t : 'a t) = locked t (fun () -> t.d_len)

  let stats (t : 'a t) =
    locked t (fun () ->
        {
          dq_pushed = t.d_pushed;
          dq_popped = t.d_popped;
          dq_stolen = t.d_stolen;
          dq_max_len = t.d_max_len;
        })
end

(* ------------------------------------------------------------------ *)
(* The claim-handoff cell                                              *)

(* A single-shot blocking box carrying a migrating tracee's
   verification state between shard domains.  The releasing shard
   fills it exactly once when it has processed the tracee's last
   pre-migration trap; the acquiring shard blocks in [take] until then,
   which is the happens-before edge that keeps per-tracee order total
   across the handoff.  Deadlock-freedom: a worker blocked in [take]
   waits on a cell filled at a strictly earlier feed position (the
   release is enqueued before the acquire), so any waits-for chain
   walks strictly backwards through the feed order and can never
   cycle — see DESIGN §13. *)
module Cell = struct
  type 'a t = {
    c_lock : Mutex.t;
    c_cond : Condition.t;
    mutable c_value : 'a option;
  }

  let create () =
    { c_lock = Mutex.create (); c_cond = Condition.create (); c_value = None }

  let fill (t : 'a t) v =
    Mutex.lock t.c_lock;
    (match t.c_value with
    | Some _ ->
      Mutex.unlock t.c_lock;
      invalid_arg "Trap_queue.Cell.fill: cell already filled"
    | None ->
      t.c_value <- Some v;
      Condition.signal t.c_cond;
      Mutex.unlock t.c_lock)

  let take (t : 'a t) =
    Mutex.lock t.c_lock;
    let rec wait () =
      match t.c_value with
      | Some v ->
        t.c_value <- None;
        Mutex.unlock t.c_lock;
        v
      | None ->
        Condition.wait t.c_cond t.c_lock;
        wait ()
    in
    wait ()
end

