(** A bounded multi-producer / single-consumer queue for the sharded
    trap pipeline (Mutex/Condition, no lock-free tricks): producers
    block when the queue is full — traps are *never* dropped, the
    tracee side simply stalls, which is exactly the backpressure a
    ptrace stop gives the kernel — and the consumer pops in batches to
    amortise lock traffic.

    Close semantics: {!close} wakes everyone; blocked producers raise
    {!Closed}, the consumer drains whatever is left and then receives
    [[]] from {!pop_batch} as the end-of-stream mark. *)

type 'a t

exception Closed

val create : capacity:int -> 'a t
(** @raise Invalid_argument when [capacity < 1]. *)

val push : 'a t -> 'a -> unit
(** Enqueue, blocking while the queue is full.
    @raise Closed if the queue is (or becomes, while waiting) closed. *)

val push_at : 'a t -> at:int -> 'a -> unit
(** {!push} with an arrival stamp ([at]: modelled cycles at enqueue),
    recoverable via {!pop_batch_stamped} so the consumer can price
    queue wait.  [push] is [push_at ~at:0]. *)

val try_push : 'a t -> 'a -> bool
(** Non-blocking enqueue; [false] when full.
    @raise Closed if the queue is closed. *)

val pop_batch : 'a t -> max:int -> 'a list
(** Dequeue up to [max] items in FIFO order, blocking while the queue
    is empty and still open.  Returns [[]] only when the queue is
    closed and fully drained. *)

val pop_batch_stamped : 'a t -> max:int -> (int * 'a) list
(** {!pop_batch}, with each item's arrival stamp. *)

val close : 'a t -> unit
(** Idempotent.  Pending items remain poppable. *)

val is_closed : 'a t -> bool

val depth : 'a t -> int
(** Current occupancy (racy snapshot, exact under the internal lock). *)

(** Lifetime statistics, all maintained under the queue's lock. *)
type stats = {
  q_capacity : int;
  q_pushed : int;          (** items enqueued *)
  q_popped : int;          (** items dequeued *)
  q_max_depth : int;       (** high-water occupancy *)
  q_blocked_pushes : int;  (** pushes that found the queue full and waited *)
  q_batches : int;         (** pop_batch calls that returned at least one item *)
}

val stats : 'a t -> stats

val mean_batch : stats -> float
(** Mean items per non-empty batch; [nan] before the first batch. *)

val register_probes : 'a t -> Obs.Metrics.t -> prefix:string -> unit
(** Register the queue's backpressure accounting (live depth, pushed,
    popped, max_depth, blocked_pushes, batches, mean_batch) as sampled
    probes named [prefix ^ "." ^ field].  Probes read under the
    queue's lock, so they never disagree with {!stats}. *)

(** A mutex-guarded stealable deque of whole-tracee claims for the
    work-stealing scheduler: the owning shard pops from the front
    (FIFO over its seeded work), idle thieves steal from the back.
    Deques are seeded up front and never refilled, so an empty scan
    across every deque means the work is done — no blocking needed. *)
module Deque : sig
  type 'a t

  type stats = {
    dq_pushed : int;   (** claims seeded onto this deque *)
    dq_popped : int;   (** claims the owner popped from the front *)
    dq_stolen : int;   (** claims thieves stole from the back *)
    dq_max_len : int;  (** high-water occupancy *)
  }

  val create : unit -> 'a t
  val push_back : 'a t -> 'a -> unit
  val pop_front : 'a t -> 'a option
  val steal_back : 'a t -> 'a option
  val length : 'a t -> int
  val stats : 'a t -> stats
end

(** A single-shot blocking box for claim handoff: when the scheduler
    migrates a tracee between shards, the releasing shard [fill]s the
    cell with the tracee's verification state after processing its last
    pre-migration trap, and the acquiring shard blocks in [take] until
    it does.  That wait is the happens-before edge that keeps
    per-tracee trap order total across the migration.  Deadlock-free:
    a release is always enqueued at a strictly earlier feed position
    than its acquire, so waits-for chains walk strictly backwards
    through the feed order and cannot cycle (DESIGN §13). *)
module Cell : sig
  type 'a t

  val create : unit -> 'a t

  val fill : 'a t -> 'a -> unit
  (** @raise Invalid_argument if the cell is already filled. *)

  val take : 'a t -> 'a
  (** Blocks until {!fill}; consumes the value. *)
end
