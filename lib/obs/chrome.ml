(* The Chrome-trace sink: renders a recorder's flight into the Trace
   Event Format that Perfetto / chrome://tracing load directly.

   Every trap becomes a B/E duration pair on one track with nested B/E
   pairs for its CT / CF / AI phase spans; runtime-library intrinsics
   become instant events.  Timestamps are the machine's modelled cycle
   counter used as the trace's microsecond axis — relative widths are
   what matter, and cycles are the repo's native unit of cost.

   The document also embeds the registry snapshot under a top-level
   "metrics" key (extra keys are legal in the JSON-object trace form),
   so one file carries both the timeline and the counters; the test
   suite parses it back with [Report.Json] and checks the embedded
   counters against the legacy accessors. *)

let schema = "bastion-trace/1"

(* The solo lane: shard 0 renders as pid 1, tracee 0 as tid 1, so a
   single-shard trace is byte-for-byte what the pre-fleet sink wrote.
   Sharded runs map each shard to its own pid (one Perfetto lane per
   shard) and each tracee to a tid within it. *)
let trap_pid = 1
let trap_tid = 1

let common ?(pid = trap_pid) ?(tid = trap_tid) ~name ~cat ~ph ~ts rest : Report.Json.t =
  let open Report.Json in
  Obj
    ([
       ("name", Str name);
       ("cat", Str cat);
       ("ph", Str ph);
       ("ts", Num (float_of_int ts));
       ("pid", Num (float_of_int pid));
       ("tid", Num (float_of_int tid));
     ]
    @ rest)

let lane_pid (ev : Event.t) = ev.ev_shard + 1
let lane_tid (ev : Event.t) = ev.ev_tracee + 1

let span_events (ev : Event.t) (sp : Event.span) =
  let open Report.Json in
  let name = String.uppercase_ascii (Event.phase_name sp.sp_phase) in
  let args =
    ( "args",
      Obj
        [
          ("outcome", Str (Event.outcome_name sp.sp_outcome));
          ("dur_cycles", Num (float_of_int sp.sp_dur));
          ("trap_seq", Num (float_of_int ev.ev_seq));
        ] )
  in
  let pid = lane_pid ev and tid = lane_tid ev in
  [
    common ~pid ~tid ~name ~cat:"phase" ~ph:"B" ~ts:sp.sp_start [ args ];
    common ~pid ~tid ~name ~cat:"phase" ~ph:"E" ~ts:(sp.sp_start + sp.sp_dur) [];
  ]

let trap_events (ev : Event.t) =
  let open Report.Json in
  let name = Printf.sprintf "%s:%s" (Event.kind_name ev.ev_kind) ev.ev_sysname in
  let args =
    ( "args",
      Obj
        ([
           ("seq", Num (float_of_int ev.ev_seq));
           ("sysno", Num (float_of_int ev.ev_sysno));
           ("rip", Str (Printf.sprintf "0x%Lx" ev.ev_rip));
           ("verdict", Str (Event.verdict_name ev.ev_verdict));
           ("dur_cycles", Num (float_of_int ev.ev_dur));
           ("depth", Num (float_of_int ev.ev_depth));
           ("ptrace_calls", Num (float_of_int ev.ev_ptrace_calls));
           ("ptrace_words", Num (float_of_int ev.ev_ptrace_words));
           ("shadow_probes", Num (float_of_int ev.ev_shadow_probes));
         ]
        @ (match ev.ev_cache with
          | None -> []
          | Some hit -> [ ("cache_hit", Bool hit) ])
        @
        match ev.ev_verdict with
        | Event.Allowed -> []
        | Event.Denied { d_context; d_detail } ->
          [ ("context", Str d_context); ("detail", Str d_detail) ]) )
  in
  let pid = lane_pid ev and tid = lane_tid ev in
  (common ~pid ~tid ~name ~cat:"trap" ~ph:"B" ~ts:ev.ev_start [ args ]
  :: List.concat_map (span_events ev) ev.ev_spans)
  @ [ common ~pid ~tid ~name ~cat:"trap" ~ph:"E" ~ts:(ev.ev_start + ev.ev_dur) [] ]

let instant_event ?(shard = 0) ?(tracee = 0) ~name ~at () =
  common ~pid:(shard + 1) ~tid:(tracee + 1) ~name ~cat:"runtime" ~ph:"i" ~ts:at
    [ ("s", Report.Json.Str "t") ]

(* Perfetto renders pid/tid as "shard N" / "tracee K" via process/thread
   name metadata events — emitted only when a nonzero lane appears, so
   solo traces are untouched. *)
let lane_metadata items =
  let open Report.Json in
  let lanes =
    List.sort_uniq compare
      (List.filter_map
         (function
           | Recorder.Trap (ev : Event.t) when ev.ev_shard <> 0 || ev.ev_tracee <> 0 ->
             Some (ev.ev_shard, ev.ev_tracee)
           | Recorder.Instant { i_shard; i_tracee; _ }
             when i_shard <> 0 || i_tracee <> 0 ->
             Some (i_shard, i_tracee)
           | _ -> None)
         items)
  in
  let shards = List.sort_uniq compare (List.map fst lanes) in
  List.map
    (fun shard ->
      common ~pid:(shard + 1) ~tid:0 ~name:"process_name" ~cat:"__metadata" ~ph:"M"
        ~ts:0
        [ ("args", Obj [ ("name", Str (Printf.sprintf "shard %d" shard)) ]) ])
    shards
  @ List.map
      (fun (shard, tracee) ->
        common ~pid:(shard + 1) ~tid:(tracee + 1) ~name:"thread_name"
          ~cat:"__metadata" ~ph:"M" ~ts:0
          [ ("args", Obj [ ("name", Str (Printf.sprintf "tracee %d" tracee)) ]) ])
      lanes

let items_document ~(metrics : Metrics.t) ~(dropped : int) items : Report.Json.t =
  let open Report.Json in
  let trace_events =
    lane_metadata items
    @ List.concat_map
        (function
          | Recorder.Trap ev -> trap_events ev
          | Recorder.Instant { i_name; i_at; i_shard; i_tracee } ->
            [ instant_event ~shard:i_shard ~tracee:i_tracee ~name:i_name ~at:i_at () ])
        items
  in
  Obj
    [
      ("schema", Str schema);
      ("displayTimeUnit", Str "ms");
      ("traceEvents", List trace_events);
      ("metrics", Metrics.to_json metrics);
      ( "otherData",
        Obj
          [
            ("clock", Str "modelled machine cycles (1 cycle = 1 trace us)");
            ("events_dropped", Num (float_of_int dropped));
          ] );
    ]

(** The full trace document for one recorder. *)
let document (r : Recorder.t) : Report.Json.t =
  items_document ~metrics:(Recorder.metrics r) ~dropped:(Recorder.events_dropped r)
    (Recorder.items r)

(** One merged trace document for a sharded run: the per-shard
    recorders' items interleaved on the shared modelled clock (one
    Perfetto lane per shard — events carry their own pid/tid) over the
    shards' merged registry. *)
let pool_document (rs : Recorder.t list) : Report.Json.t =
  let items = List.concat_map Recorder.items rs in
  let at = function
    | Recorder.Trap (ev : Event.t) -> ev.ev_start
    | Recorder.Instant { i_at; _ } -> i_at
  in
  let items = List.stable_sort (fun a b -> compare (at a) (at b)) items in
  let metrics = Metrics.merge (List.map Recorder.metrics rs) in
  let dropped = List.fold_left (fun acc r -> acc + Recorder.events_dropped r) 0 rs in
  items_document ~metrics ~dropped items

let write r path = Report.Json.to_file path (document r)

(** [write_pool rs path] emits {!pool_document} to [path]. *)
let write_pool rs path = Report.Json.to_file path (pool_document rs)

(* --- reading a trace back (the trace-summary subcommand) -------------- *)

type summary = {
  sum_traps : int;
  sum_allowed : int;
  sum_denied : int;
  sum_instants : int;
  sum_by_syscall : (string * (int * int * int)) list;
      (** name -> (traps, denied, total cycles), busiest first *)
  sum_by_phase : (string * (int * int)) list;
      (** phase -> (runs, total cycles), CT/CF/AI order *)
  sum_counters : (string * float) list;  (** embedded registry counters *)
}

let begin_events ~cat doc =
  match Report.Json.(Option.bind (member "traceEvents" doc) to_list) with
  | None -> []
  | Some evs ->
    List.filter
      (fun e ->
        Report.Json.(member "ph" e) = Some (Report.Json.Str "B")
        && Report.Json.(member "cat" e) = Some (Report.Json.Str cat))
      evs

let str_field key e = Report.Json.(Option.bind (member key e) to_str)
let arg_of key e = Report.Json.(Option.bind (member "args" e) (member key))

(** Aggregate a parsed trace document. *)
let summarize (doc : Report.Json.t) : summary =
  let traps = begin_events ~cat:"trap" doc in
  let phases = begin_events ~cat:"phase" doc in
  let instants =
    match Report.Json.(Option.bind (member "traceEvents" doc) to_list) with
    | None -> 0
    | Some evs ->
      List.length
        (List.filter (fun e -> Report.Json.(member "ph" e) = Some (Report.Json.Str "i")) evs)
  in
  let denied_of e =
    match Option.bind (arg_of "verdict" e) Report.Json.to_str with
    | Some "denied" -> 1
    | _ -> 0
  in
  let by_syscall = Hashtbl.create 16 in
  List.iter
    (fun e ->
      let name = Option.value ~default:"?" (str_field "name" e) in
      let cycles =
        int_of_float (Option.value ~default:0.0 (Option.bind (arg_of "dur_cycles" e) Report.Json.to_float))
      in
      let t, d, c =
        Option.value ~default:(0, 0, 0) (Hashtbl.find_opt by_syscall name)
      in
      Hashtbl.replace by_syscall name (t + 1, d + denied_of e, c + cycles))
    traps;
  let by_phase = Hashtbl.create 4 in
  List.iter
    (fun e ->
      let name = Option.value ~default:"?" (str_field "name" e) in
      let cycles =
        int_of_float (Option.value ~default:0.0 (Option.bind (arg_of "dur_cycles" e) Report.Json.to_float))
      in
      let n, c = Option.value ~default:(0, 0) (Hashtbl.find_opt by_phase name) in
      Hashtbl.replace by_phase name (n + 1, c + cycles))
    phases;
  let counters =
    match Report.Json.(Option.bind (member "metrics" doc) (member "counters")) with
    | Some (Report.Json.Obj fields) ->
      List.filter_map
        (fun (k, v) -> Option.map (fun f -> (k, f)) (Report.Json.to_float v))
        fields
    | _ -> []
  in
  let denied = List.fold_left (fun acc e -> acc + denied_of e) 0 traps in
  {
    sum_traps = List.length traps;
    sum_allowed = List.length traps - denied;
    sum_denied = denied;
    sum_instants = instants;
    sum_by_syscall =
      List.sort
        (fun (_, (_, _, a)) (_, (_, _, b)) -> compare b a)
        (Hashtbl.fold (fun k v acc -> (k, v) :: acc) by_syscall []);
    sum_by_phase =
      List.filter_map
        (fun name ->
          Option.map (fun v -> (name, v)) (Hashtbl.find_opt by_phase name))
        [ "CT"; "CF"; "AI" ];
    sum_counters = List.sort (fun (a, _) (b, _) -> String.compare a b) counters;
  }

(** Pretty-print a parsed trace (the [trace-summary] subcommand). *)
let render_summary (s : summary) : string =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "traps: %d (%d allowed, %d denied), runtime intrinsics: %d\n\n"
       s.sum_traps s.sum_allowed s.sum_denied s.sum_instants);
  if s.sum_by_syscall <> [] then begin
    Buffer.add_string buf
      (Report.Table.render
         ~align:Report.Table.[ L; R; R; R; R ]
         ~header:[ "trap"; "count"; "denied"; "cycles"; "cycles/trap" ]
         (List.map
            (fun (name, (t, d, c)) ->
              [
                name; string_of_int t; string_of_int d; string_of_int c;
                Printf.sprintf "%.1f" (float_of_int c /. float_of_int (max 1 t));
              ])
            s.sum_by_syscall));
    Buffer.add_string buf "\n\n"
  end;
  if s.sum_by_phase <> [] then begin
    Buffer.add_string buf
      (Report.Table.render
         ~align:Report.Table.[ L; R; R; R ]
         ~header:[ "phase"; "runs"; "cycles"; "cycles/run" ]
         (List.map
            (fun (name, (n, c)) ->
              [
                name; string_of_int n; string_of_int c;
                Printf.sprintf "%.1f" (float_of_int c /. float_of_int (max 1 n));
              ])
            s.sum_by_phase));
    Buffer.add_string buf "\n\n"
  end;
  if s.sum_counters <> [] then begin
    Buffer.add_string buf
      (Report.Table.render ~align:Report.Table.[ L; R ]
         ~header:[ "counter"; "value" ]
         (List.map
            (fun (k, v) ->
              [ k; (if Float.is_integer v then Printf.sprintf "%.0f" v else Printf.sprintf "%.4f" v) ])
            s.sum_counters));
    Buffer.add_string buf "\n"
  end;
  Buffer.contents buf
