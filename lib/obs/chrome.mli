(** The Chrome-trace sink: renders a recorder's flight into the Trace
    Event Format loadable in Perfetto / chrome://tracing.  Traps become
    B/E duration pairs with nested CT/CF/AI phase spans, intrinsics
    become instant events, and the registry snapshot is embedded under
    a top-level ["metrics"] key.  Timestamps are modelled machine
    cycles on the trace's microsecond axis. *)

val schema : string

(** The full trace document for one recorder. *)
val document : Recorder.t -> Report.Json.t

(** One merged trace document for a sharded run: per-shard recorders'
    items interleaved on the shared modelled clock, one Perfetto lane
    (pid) per shard, over the shards' merged registry. *)
val pool_document : Recorder.t list -> Report.Json.t

(** [write r path] emits {!document} to [path]. *)
val write : Recorder.t -> string -> unit

(** [write_pool rs path] emits {!pool_document} to [path]. *)
val write_pool : Recorder.t list -> string -> unit

(** Aggregates recovered from a parsed trace document. *)
type summary = {
  sum_traps : int;
  sum_allowed : int;
  sum_denied : int;
  sum_instants : int;
  sum_by_syscall : (string * (int * int * int)) list;
      (** name -> (traps, denied, total cycles), busiest first *)
  sum_by_phase : (string * (int * int)) list;
      (** phase -> (runs, total cycles), CT/CF/AI order *)
  sum_counters : (string * float) list;  (** embedded registry counters *)
}

val summarize : Report.Json.t -> summary

(** Pretty-print a summary (the [trace-summary] subcommand). *)
val render_summary : summary -> string
