(* One structured trap event — the flight recorder's unit of record.

   Everything the monitor learns while judging a trap lands here: the
   per-phase (CT / CF / AI) outcomes and modelled-cycle durations, the
   verdict, the verdict-cache disposition, the ptrace traffic the trap
   cost, and the shadow probes it took.  The event is the single source
   of truth for every sink: the `-v` debug line, the JSONL audit log
   and the Chrome-trace spans are all formatted from it. *)

type phase = Ct | Cf | Ai

let phase_name = function Ct -> "ct" | Cf -> "cf" | Ai -> "ai"

type outcome =
  | Passed            (** the phase ran and accepted the trap *)
  | Failed            (** the phase ran and denied the trap *)
  | Cached            (** skipped: a verdict-cache hit vouched for it *)

let outcome_name = function
  | Passed -> "passed"
  | Failed -> "failed"
  | Cached -> "cached"

type span = {
  sp_phase : phase;
  sp_outcome : outcome;
  sp_start : int;   (** machine cycles at phase entry *)
  sp_dur : int;     (** modelled cycles the phase charged *)
}

type verdict = Allowed | Denied of { d_context : string; d_detail : string }

type kind =
  | Trap_check      (** a full context-verification trap *)
  | Fetch_only      (** Table 7 row 2: state fetched, nothing checked *)

let kind_name = function Trap_check -> "trap" | Fetch_only -> "fetch"

(* The resolution tier: the deepest (most expensive) machinery a trap
   engaged before its verdict settled.  Ordered cheapest-first; the
   differential replay engine diffs this field across metadata
   versions, so movements toward lower ranks are wins. *)

type tier =
  | Tier_prefilter     (** resolved by the seccomp-stage flow automaton *)
  | Tier_cached        (** CT+CF vouched for by a verdict-cache hit *)
  | Tier_pre_resolved  (** AI slots all settled by static pre-resolution *)
  | Tier_ctx           (** AI settled by 1-context pre-resolution *)
  | Tier_cheap         (** AI settled on the taint-ranked cheap path *)
  | Tier_full          (** the full memory-walk AI check (or CT/CF run) *)

let tier_name = function
  | Tier_prefilter -> "prefilter"
  | Tier_cached -> "cached"
  | Tier_pre_resolved -> "pre-resolved"
  | Tier_ctx -> "ctx"
  | Tier_cheap -> "cheap"
  | Tier_full -> "full"

let tier_of_name = function
  | "prefilter" -> Ok Tier_prefilter
  | "cached" -> Ok Tier_cached
  | "pre-resolved" -> Ok Tier_pre_resolved
  | "ctx" -> Ok Tier_ctx
  | "cheap" -> Ok Tier_cheap
  | "full" -> Ok Tier_full
  | s -> Error (Printf.sprintf "unknown tier %S" s)

let tier_rank = function
  | Tier_prefilter -> 0
  | Tier_cached -> 1
  | Tier_pre_resolved -> 2
  | Tier_ctx -> 3
  | Tier_cheap -> 4
  | Tier_full -> 5

let tier_of_rank = function
  | 0 -> Some Tier_prefilter
  | 1 -> Some Tier_cached
  | 2 -> Some Tier_pre_resolved
  | 3 -> Some Tier_ctx
  | 4 -> Some Tier_cheap
  | 5 -> Some Tier_full
  | _ -> None

let all_tiers =
  [ Tier_prefilter; Tier_cached; Tier_pre_resolved; Tier_ctx; Tier_cheap;
    Tier_full ]

(* The snapshot inputs the monitor consumed while judging the trap,
   captured so the verdict can be re-derived offline (`bastion replay`).
   These mirror Kernel.Ptrace's regs/frame_view/frame_slots without
   depending on that library — obs sits below the kernel layer. *)

type frame = {
  f_func : string;           (** function the frame executes *)
  f_callsite : int64;        (** code address of the in-flight call *)
  f_args : int64 array;      (** argument registers spilled there *)
  f_ret : int64 option;      (** memory-resident return token *)
  f_base : int64;            (** frame base address *)
}

type slot_read = {
  sr_base : int64;           (** owning frame's base address *)
  sr_lo : int;               (** word offset of the span's first slot *)
  sr_span : int64 array;     (** the sensitive-slot words as fetched *)
}

type input = {
  in_args : int64 array;     (** syscall argument registers (GETREGS) *)
  in_frames : frame list;    (** unwound stack span, innermost first *)
  in_slots : slot_read list; (** per-frame sensitive-slot reads *)
}

type t = {
  ev_seq : int;             (** recorder-assigned sequence number *)
  ev_kind : kind;
  ev_sysno : int;
  ev_sysname : string;
  ev_rip : int64;
  ev_start : int;           (** machine cycles at trap entry *)
  ev_dur : int;             (** modelled cycles the whole trap charged *)
  ev_verdict : verdict;
  ev_spans : span list;     (** phase spans in execution order *)
  ev_cache : bool option;   (** Some hit when the verdict cache probed *)
  ev_depth : int;           (** unwound stack depth (0: no walk) *)
  ev_ptrace_calls : int;    (** process_vm_readv-class calls this trap *)
  ev_ptrace_words : int;    (** words fetched from the tracee *)
  ev_shadow_probes : int;   (** shadow-table slots examined *)
  ev_shard : int;           (** monitor shard lane (0: single-shard run) *)
  ev_tracee : int;          (** tracee lane within the fleet (0: solo run) *)
  ev_tier : tier option;    (** deepest machinery engaged ([Trap_check]) *)
  ev_input : input option;  (** snapshot inputs, for offline replay *)
}

let verdict_name = function Allowed -> "allowed" | Denied _ -> "denied"

let denied ev = match ev.ev_verdict with Denied _ -> true | Allowed -> false

(** The `-v` debug line: everything on one line, formatted from the
    structured event (not from ad-hoc log calls at each check site). *)
let to_string ev =
  let spans =
    match ev.ev_spans with
    | [] -> ""
    | spans ->
      Printf.sprintf " [%s]"
        (String.concat " "
           (List.map
              (fun sp ->
                Printf.sprintf "%s:%s/%dcy" (phase_name sp.sp_phase)
                  (outcome_name sp.sp_outcome) sp.sp_dur)
              spans))
  in
  let cache =
    match ev.ev_cache with
    | None -> ""
    | Some true -> " cache=hit"
    | Some false -> " cache=miss"
  in
  let verdict =
    match ev.ev_verdict with
    | Allowed -> "allowed"
    | Denied { d_context; d_detail } ->
      Printf.sprintf "DENIED %s (%s)" d_context d_detail
  in
  Printf.sprintf "%s#%d %s(%d) rip=0x%Lx %s%s%s depth=%d cycles=%d ptrace=%d/%dw probes=%d"
    (kind_name ev.ev_kind) ev.ev_seq ev.ev_sysname ev.ev_sysno ev.ev_rip verdict
    cache spans ev.ev_depth ev.ev_dur ev.ev_ptrace_calls ev.ev_ptrace_words
    ev.ev_shadow_probes

let span_to_json (sp : span) : Report.Json.t =
  Report.Json.Obj
    [
      ("phase", Report.Json.Str (phase_name sp.sp_phase));
      ("outcome", Report.Json.Str (outcome_name sp.sp_outcome));
      ("start_cycles", Report.Json.Num (float_of_int sp.sp_start));
      ("dur_cycles", Report.Json.Num (float_of_int sp.sp_dur));
    ]

(* Addresses and register words are full 64-bit values; a JSON number
   (double) loses bits past 2^53, so they travel as hex strings. *)
let hex64 (v : int64) : Report.Json.t = Report.Json.Str (Printf.sprintf "0x%Lx" v)

let hex_array (a : int64 array) : Report.Json.t =
  Report.Json.List (Array.to_list (Array.map hex64 a))

let frame_to_json (f : frame) : Report.Json.t =
  let open Report.Json in
  Obj
    [
      ("func", Str f.f_func);
      ("callsite", hex64 f.f_callsite);
      ("args", hex_array f.f_args);
      ("ret", (match f.f_ret with None -> Null | Some r -> hex64 r));
      ("base", hex64 f.f_base);
    ]

let slot_read_to_json (s : slot_read) : Report.Json.t =
  let open Report.Json in
  Obj
    [
      ("base", hex64 s.sr_base);
      ("lo", Num (float_of_int s.sr_lo));
      ("span", hex_array s.sr_span);
    ]

let input_to_json (i : input) : Report.Json.t =
  let open Report.Json in
  Obj
    [
      ("args", hex_array i.in_args);
      ("frames", List (List.map frame_to_json i.in_frames));
      ("slots", List (List.map slot_read_to_json i.in_slots));
    ]

(** One JSONL audit record (an [Obj]; the sink writes it compactly). *)
let to_json (ev : t) : Report.Json.t =
  let open Report.Json in
  Obj
    ([
       ("seq", Num (float_of_int ev.ev_seq));
       ("kind", Str (kind_name ev.ev_kind));
       ("sysno", Num (float_of_int ev.ev_sysno));
       ("sysname", Str ev.ev_sysname);
       ("rip", Str (Printf.sprintf "0x%Lx" ev.ev_rip));
       ("start_cycles", Num (float_of_int ev.ev_start));
       ("dur_cycles", Num (float_of_int ev.ev_dur));
       ("verdict", Str (verdict_name ev.ev_verdict));
     ]
    @ (match ev.ev_verdict with
      | Allowed -> []
      | Denied { d_context; d_detail } ->
        [ ("context", Str d_context); ("detail", Str d_detail) ])
    @ (match ev.ev_cache with
      | None -> []
      | Some hit -> [ ("cache_hit", Bool hit) ])
    @ [
        ("depth", Num (float_of_int ev.ev_depth));
        ("ptrace_calls", Num (float_of_int ev.ev_ptrace_calls));
        ("ptrace_words", Num (float_of_int ev.ev_ptrace_words));
        ("shadow_probes", Num (float_of_int ev.ev_shadow_probes));
      ]
    (* Lane tags are emitted sparsely: a solo single-shard run (lane
       0/0) writes exactly the pre-fleet record, so the golden trace
       corpus stays byte-identical. *)
    @ (if ev.ev_shard = 0 && ev.ev_tracee = 0 then []
       else
         [
           ("shard", Num (float_of_int ev.ev_shard));
           ("tracee", Num (float_of_int ev.ev_tracee));
         ])
    (* The resolution tier is sparse too: fetch-only events (and
       records written before the field existed) simply omit it. *)
    @ (match ev.ev_tier with
      | None -> []
      | Some tier -> [ ("tier", Str (tier_name tier)) ])
    @ [ ("phases", List (List.map span_to_json ev.ev_spans)) ]
    @ (match ev.ev_input with
      | None -> []
      | Some i -> [ ("input", input_to_json i) ]))

(* ------------------------------------------------------------------ *)
(* Parsing ([of_json]): the replay reader's inverse of [to_json].
   Total: every malformed shape comes back as [Error msg], never as an
   escaping exception — corrupted audit lines must fail cleanly. *)

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let field name json =
  match Report.Json.member name json with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing field %S" name)

let as_int name = function
  | Report.Json.Num f when Float.is_integer f -> Ok (int_of_float f)
  | _ -> Error (Printf.sprintf "field %S is not an integer" name)

let as_str name = function
  | Report.Json.Str s -> Ok s
  | _ -> Error (Printf.sprintf "field %S is not a string" name)

let as_list name = function
  | Report.Json.List l -> Ok l
  | _ -> Error (Printf.sprintf "field %S is not a list" name)

let int_field name json =
  let* v = field name json in
  as_int name v

let str_field name json =
  let* v = field name json in
  as_str name v

(* An optional integer field: absent means [default] (the sparse lane
   tags above rely on this to round-trip). *)
let opt_int_field name ~default json =
  match Report.Json.member name json with
  | None -> Ok default
  | Some v -> as_int name v

let as_hex64 name = function
  | Report.Json.Str s -> (
    match Int64.of_string_opt s with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "field %S is not a hex address: %S" name s))
  | _ -> Error (Printf.sprintf "field %S is not a hex-address string" name)

let hex_field name json =
  let* v = field name json in
  as_hex64 name v

let rec map_result f = function
  | [] -> Ok []
  | x :: rest ->
    let* y = f x in
    let* ys = map_result f rest in
    Ok (y :: ys)

let as_hex_array name json =
  let* items = as_list name json in
  let* words = map_result (as_hex64 name) items in
  Ok (Array.of_list words)

let phase_of_name = function
  | "ct" -> Ok Ct
  | "cf" -> Ok Cf
  | "ai" -> Ok Ai
  | s -> Error (Printf.sprintf "unknown phase %S" s)

let outcome_of_name = function
  | "passed" -> Ok Passed
  | "failed" -> Ok Failed
  | "cached" -> Ok Cached
  | s -> Error (Printf.sprintf "unknown phase outcome %S" s)

let kind_of_name = function
  | "trap" -> Ok Trap_check
  | "fetch" -> Ok Fetch_only
  | s -> Error (Printf.sprintf "unknown event kind %S" s)

let span_of_json json =
  let* phase = str_field "phase" json in
  let* sp_phase = phase_of_name phase in
  let* outcome = str_field "outcome" json in
  let* sp_outcome = outcome_of_name outcome in
  let* sp_start = int_field "start_cycles" json in
  let* sp_dur = int_field "dur_cycles" json in
  Ok { sp_phase; sp_outcome; sp_start; sp_dur }

let frame_of_json json =
  let* f_func = str_field "func" json in
  let* f_callsite = hex_field "callsite" json in
  let* args = field "args" json in
  let* f_args = as_hex_array "args" args in
  let* ret = field "ret" json in
  let* f_ret =
    match ret with
    | Report.Json.Null -> Ok None
    | v ->
      let* r = as_hex64 "ret" v in
      Ok (Some r)
  in
  let* f_base = hex_field "base" json in
  Ok { f_func; f_callsite; f_args; f_ret; f_base }

let slot_read_of_json json =
  let* sr_base = hex_field "base" json in
  let* sr_lo = int_field "lo" json in
  let* span = field "span" json in
  let* sr_span = as_hex_array "span" span in
  Ok { sr_base; sr_lo; sr_span }

let input_of_json json =
  let* args = field "args" json in
  let* in_args = as_hex_array "args" args in
  let* frames = field "frames" json in
  let* frames = as_list "frames" frames in
  let* in_frames = map_result frame_of_json frames in
  let* slots = field "slots" json in
  let* slots = as_list "slots" slots in
  let* in_slots = map_result slot_read_of_json slots in
  Ok { in_args; in_frames; in_slots }

(** Parse one audit record back into the structured event.  Inverse of
    {!to_json}: [of_json (to_json ev) = Ok ev].  Every malformed shape
    is an [Error], never an exception. *)
let of_json (json : Report.Json.t) : (t, string) result =
  match json with
  | Report.Json.Obj _ ->
    let* ev_seq = int_field "seq" json in
    let* kind = str_field "kind" json in
    let* ev_kind = kind_of_name kind in
    let* ev_sysno = int_field "sysno" json in
    let* ev_sysname = str_field "sysname" json in
    let* ev_rip = hex_field "rip" json in
    let* ev_start = int_field "start_cycles" json in
    let* ev_dur = int_field "dur_cycles" json in
    let* verdict = str_field "verdict" json in
    let* ev_verdict =
      match verdict with
      | "allowed" -> Ok Allowed
      | "denied" ->
        (* Context and detail ride along on denials; tolerate their
           absence so a truncated-but-parseable record still loads. *)
        let get name =
          match Report.Json.member name json with
          | Some (Report.Json.Str s) -> s
          | _ -> ""
        in
        Ok (Denied { d_context = get "context"; d_detail = get "detail" })
      | s -> Error (Printf.sprintf "unknown verdict %S" s)
    in
    let* ev_cache =
      match Report.Json.member "cache_hit" json with
      | None -> Ok None
      | Some (Report.Json.Bool b) -> Ok (Some b)
      | Some _ -> Error "field \"cache_hit\" is not a boolean"
    in
    let* ev_depth = int_field "depth" json in
    let* ev_ptrace_calls = int_field "ptrace_calls" json in
    let* ev_ptrace_words = int_field "ptrace_words" json in
    let* ev_shadow_probes = int_field "shadow_probes" json in
    let* ev_shard = opt_int_field "shard" ~default:0 json in
    let* ev_tracee = opt_int_field "tracee" ~default:0 json in
    let* ev_tier =
      match Report.Json.member "tier" json with
      | None -> Ok None
      | Some (Report.Json.Str s) ->
        let* t = tier_of_name s in
        Ok (Some t)
      | Some _ -> Error "field \"tier\" is not a string"
    in
    let* phases = field "phases" json in
    let* phases = as_list "phases" phases in
    let* ev_spans = map_result span_of_json phases in
    let* ev_input =
      match Report.Json.member "input" json with
      | None -> Ok None
      | Some i ->
        let* input = input_of_json i in
        Ok (Some input)
    in
    Ok
      {
        ev_seq; ev_kind; ev_sysno; ev_sysname; ev_rip; ev_start; ev_dur;
        ev_verdict; ev_spans; ev_cache; ev_depth; ev_ptrace_calls;
        ev_ptrace_words; ev_shadow_probes; ev_shard; ev_tracee; ev_tier;
        ev_input;
      }
  | _ -> Error "audit record is not a JSON object"
