(* One structured trap event — the flight recorder's unit of record.

   Everything the monitor learns while judging a trap lands here: the
   per-phase (CT / CF / AI) outcomes and modelled-cycle durations, the
   verdict, the verdict-cache disposition, the ptrace traffic the trap
   cost, and the shadow probes it took.  The event is the single source
   of truth for every sink: the `-v` debug line, the JSONL audit log
   and the Chrome-trace spans are all formatted from it. *)

type phase = Ct | Cf | Ai

let phase_name = function Ct -> "ct" | Cf -> "cf" | Ai -> "ai"

type outcome =
  | Passed            (** the phase ran and accepted the trap *)
  | Failed            (** the phase ran and denied the trap *)
  | Cached            (** skipped: a verdict-cache hit vouched for it *)

let outcome_name = function
  | Passed -> "passed"
  | Failed -> "failed"
  | Cached -> "cached"

type span = {
  sp_phase : phase;
  sp_outcome : outcome;
  sp_start : int;   (** machine cycles at phase entry *)
  sp_dur : int;     (** modelled cycles the phase charged *)
}

type verdict = Allowed | Denied of { d_context : string; d_detail : string }

type kind =
  | Trap_check      (** a full context-verification trap *)
  | Fetch_only      (** Table 7 row 2: state fetched, nothing checked *)

let kind_name = function Trap_check -> "trap" | Fetch_only -> "fetch"

type t = {
  ev_seq : int;             (** recorder-assigned sequence number *)
  ev_kind : kind;
  ev_sysno : int;
  ev_sysname : string;
  ev_rip : int64;
  ev_start : int;           (** machine cycles at trap entry *)
  ev_dur : int;             (** modelled cycles the whole trap charged *)
  ev_verdict : verdict;
  ev_spans : span list;     (** phase spans in execution order *)
  ev_cache : bool option;   (** Some hit when the verdict cache probed *)
  ev_depth : int;           (** unwound stack depth (0: no walk) *)
  ev_ptrace_calls : int;    (** process_vm_readv-class calls this trap *)
  ev_ptrace_words : int;    (** words fetched from the tracee *)
  ev_shadow_probes : int;   (** shadow-table slots examined *)
}

let verdict_name = function Allowed -> "allowed" | Denied _ -> "denied"

let denied ev = match ev.ev_verdict with Denied _ -> true | Allowed -> false

(** The `-v` debug line: everything on one line, formatted from the
    structured event (not from ad-hoc log calls at each check site). *)
let to_string ev =
  let spans =
    match ev.ev_spans with
    | [] -> ""
    | spans ->
      Printf.sprintf " [%s]"
        (String.concat " "
           (List.map
              (fun sp ->
                Printf.sprintf "%s:%s/%dcy" (phase_name sp.sp_phase)
                  (outcome_name sp.sp_outcome) sp.sp_dur)
              spans))
  in
  let cache =
    match ev.ev_cache with
    | None -> ""
    | Some true -> " cache=hit"
    | Some false -> " cache=miss"
  in
  let verdict =
    match ev.ev_verdict with
    | Allowed -> "allowed"
    | Denied { d_context; d_detail } ->
      Printf.sprintf "DENIED %s (%s)" d_context d_detail
  in
  Printf.sprintf "%s#%d %s(%d) rip=0x%Lx %s%s%s depth=%d cycles=%d ptrace=%d/%dw probes=%d"
    (kind_name ev.ev_kind) ev.ev_seq ev.ev_sysname ev.ev_sysno ev.ev_rip verdict
    cache spans ev.ev_depth ev.ev_dur ev.ev_ptrace_calls ev.ev_ptrace_words
    ev.ev_shadow_probes

let span_to_json (sp : span) : Report.Json.t =
  Report.Json.Obj
    [
      ("phase", Report.Json.Str (phase_name sp.sp_phase));
      ("outcome", Report.Json.Str (outcome_name sp.sp_outcome));
      ("start_cycles", Report.Json.Num (float_of_int sp.sp_start));
      ("dur_cycles", Report.Json.Num (float_of_int sp.sp_dur));
    ]

(** One JSONL audit record (an [Obj]; the sink writes it compactly). *)
let to_json (ev : t) : Report.Json.t =
  let open Report.Json in
  Obj
    ([
       ("seq", Num (float_of_int ev.ev_seq));
       ("kind", Str (kind_name ev.ev_kind));
       ("sysno", Num (float_of_int ev.ev_sysno));
       ("sysname", Str ev.ev_sysname);
       ("rip", Str (Printf.sprintf "0x%Lx" ev.ev_rip));
       ("start_cycles", Num (float_of_int ev.ev_start));
       ("dur_cycles", Num (float_of_int ev.ev_dur));
       ("verdict", Str (verdict_name ev.ev_verdict));
     ]
    @ (match ev.ev_verdict with
      | Allowed -> []
      | Denied { d_context; d_detail } ->
        [ ("context", Str d_context); ("detail", Str d_detail) ])
    @ (match ev.ev_cache with
      | None -> []
      | Some hit -> [ ("cache_hit", Bool hit) ])
    @ [
        ("depth", Num (float_of_int ev.ev_depth));
        ("ptrace_calls", Num (float_of_int ev.ev_ptrace_calls));
        ("ptrace_words", Num (float_of_int ev.ev_ptrace_words));
        ("shadow_probes", Num (float_of_int ev.ev_shadow_probes));
        ("phases", List (List.map span_to_json ev.ev_spans));
      ])
