(** One structured trap event — the flight recorder's unit of record
    and the single source of truth for every sink (the [-v] debug line,
    the JSONL audit log, the Chrome-trace spans). *)

type phase = Ct | Cf | Ai

val phase_name : phase -> string

type outcome =
  | Passed            (** the phase ran and accepted the trap *)
  | Failed            (** the phase ran and denied the trap *)
  | Cached            (** skipped: a verdict-cache hit vouched for it *)

val outcome_name : outcome -> string

type span = {
  sp_phase : phase;
  sp_outcome : outcome;
  sp_start : int;   (** machine cycles at phase entry *)
  sp_dur : int;     (** modelled cycles the phase charged *)
}

type verdict = Allowed | Denied of { d_context : string; d_detail : string }

type kind =
  | Trap_check      (** a full context-verification trap *)
  | Fetch_only      (** Table 7 row 2: state fetched, nothing checked *)

val kind_name : kind -> string

type t = {
  ev_seq : int;             (** recorder-assigned sequence number *)
  ev_kind : kind;
  ev_sysno : int;
  ev_sysname : string;
  ev_rip : int64;
  ev_start : int;           (** machine cycles at trap entry *)
  ev_dur : int;             (** modelled cycles the whole trap charged *)
  ev_verdict : verdict;
  ev_spans : span list;     (** phase spans in execution order *)
  ev_cache : bool option;   (** Some hit when the verdict cache probed *)
  ev_depth : int;           (** unwound stack depth (0: no walk) *)
  ev_ptrace_calls : int;    (** process_vm_readv-class calls this trap *)
  ev_ptrace_words : int;    (** words fetched from the tracee *)
  ev_shadow_probes : int;   (** shadow-table slots examined *)
}

val verdict_name : verdict -> string
val denied : t -> bool

(** The [-v] debug line, formatted from the structured event. *)
val to_string : t -> string

val span_to_json : span -> Report.Json.t

(** One JSONL audit record. *)
val to_json : t -> Report.Json.t
