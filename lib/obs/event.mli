(** One structured trap event — the flight recorder's unit of record
    and the single source of truth for every sink (the [-v] debug line,
    the JSONL audit log, the Chrome-trace spans). *)

type phase = Ct | Cf | Ai

val phase_name : phase -> string

type outcome =
  | Passed            (** the phase ran and accepted the trap *)
  | Failed            (** the phase ran and denied the trap *)
  | Cached            (** skipped: a verdict-cache hit vouched for it *)

val outcome_name : outcome -> string

type span = {
  sp_phase : phase;
  sp_outcome : outcome;
  sp_start : int;   (** machine cycles at phase entry *)
  sp_dur : int;     (** modelled cycles the phase charged *)
}

type verdict = Allowed | Denied of { d_context : string; d_detail : string }

type kind =
  | Trap_check      (** a full context-verification trap *)
  | Fetch_only      (** Table 7 row 2: state fetched, nothing checked *)

val kind_name : kind -> string

(** The resolution tier: the deepest (most expensive) machinery a trap
    engaged before its verdict settled, ordered cheapest-first.  The
    differential replay engine diffs it across metadata versions. *)
type tier =
  | Tier_prefilter     (** resolved by the seccomp-stage flow automaton *)
  | Tier_cached        (** CT+CF vouched for by a verdict-cache hit *)
  | Tier_pre_resolved  (** AI slots all settled by static pre-resolution *)
  | Tier_ctx           (** AI settled by 1-context pre-resolution *)
  | Tier_cheap         (** AI settled on the taint-ranked cheap path *)
  | Tier_full          (** the full memory-walk AI check (or CT/CF run) *)

val tier_name : tier -> string
val tier_of_name : string -> (tier, string) result

(** Rank in the cheapest-first order, 0 (prefilter) to 5 (full). *)
val tier_rank : tier -> int

val tier_of_rank : int -> tier option

(** Every tier, cheapest first. *)
val all_tiers : tier list

(** The snapshot inputs the monitor consumed while judging the trap,
    captured so the verdict can be re-derived offline by the replay
    engine.  Mirrors [Kernel.Ptrace]'s regs / frame_view / frame_slots
    without depending on that library. *)

type frame = {
  f_func : string;           (** function the frame executes *)
  f_callsite : int64;        (** code address of the in-flight call *)
  f_args : int64 array;      (** argument registers spilled there *)
  f_ret : int64 option;      (** memory-resident return token *)
  f_base : int64;            (** frame base address *)
}

type slot_read = {
  sr_base : int64;           (** owning frame's base address *)
  sr_lo : int;               (** word offset of the span's first slot *)
  sr_span : int64 array;     (** the sensitive-slot words as fetched *)
}

type input = {
  in_args : int64 array;     (** syscall argument registers (GETREGS) *)
  in_frames : frame list;    (** unwound stack span, innermost first *)
  in_slots : slot_read list; (** per-frame sensitive-slot reads *)
}

type t = {
  ev_seq : int;             (** recorder-assigned sequence number *)
  ev_kind : kind;
  ev_sysno : int;
  ev_sysname : string;
  ev_rip : int64;
  ev_start : int;           (** machine cycles at trap entry *)
  ev_dur : int;             (** modelled cycles the whole trap charged *)
  ev_verdict : verdict;
  ev_spans : span list;     (** phase spans in execution order *)
  ev_cache : bool option;   (** Some hit when the verdict cache probed *)
  ev_depth : int;           (** unwound stack depth (0: no walk) *)
  ev_ptrace_calls : int;    (** process_vm_readv-class calls this trap *)
  ev_ptrace_words : int;    (** words fetched from the tracee *)
  ev_shadow_probes : int;   (** shadow-table slots examined *)
  ev_shard : int;           (** monitor shard lane (0: single-shard run) *)
  ev_tracee : int;          (** tracee lane within the fleet (0: solo run) *)
  ev_tier : tier option;    (** deepest machinery engaged ([Trap_check]) *)
  ev_input : input option;  (** snapshot inputs, for offline replay *)
}

val verdict_name : verdict -> string
val denied : t -> bool

(** The [-v] debug line, formatted from the structured event. *)
val to_string : t -> string

val span_to_json : span -> Report.Json.t

(** One JSONL audit record. *)
val to_json : t -> Report.Json.t

(** Parse one audit record back into the structured event — the replay
    reader's inverse of {!to_json}: [of_json (to_json ev) = Ok ev].
    Malformed shapes come back as [Error msg], never as an exception. *)
val of_json : Report.Json.t -> (t, string) result
