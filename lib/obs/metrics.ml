(* The metrics registry: named counters, sampled probes, and log-scaled
   latency histograms with percentile summaries.

   Three kinds of instruments share one namespace:

   - counters: integers owned by the registry, bumped by the recorder's
     hot-path hooks (a field increment — this is all the disabled path
     costs);
   - probes: read-only callbacks over counters that already live
     elsewhere (Ptrace.calls_made, Verdict_cache hits/misses, the
     shadow-table probe statistics, Monitor.traps_checked ...).  The
     legacy accessors stay authoritative; the registry samples them at
     snapshot time, so the two can never disagree;
   - histograms: power-of-two buckets over non-negative integer
     observations (modelled cycles, words, depths), summarised as
     count/min/max/mean and interpolated p50/p90/p99/p99.9.

   Domain safety: a registry is single-owner — nothing here takes a
   lock, so two domains must never mutate the same registry.  The
   {!Shards} wrapper below hands each domain its own registry and
   {!merge} combines them deterministically at join (all state is
   integer-valued, so merging is exact, associative and commutative;
   the qcheck suite states these as laws). *)

type counter = { c_name : string; mutable c_value : int }

let incr c = c.c_value <- c.c_value + 1
let add c n = c.c_value <- c.c_value + n
let value c = c.c_value

(* Bucket [b] holds observations in [2^(b-1), 2^b) (bucket 0: value 0),
   so 64 buckets cover the whole non-negative int range. *)
let histogram_buckets = 64

type histogram = {
  h_name : string;
  h_counts : int array;
  mutable h_count : int;
  mutable h_sum : int;
  mutable h_min : int;
  mutable h_max : int;
}

let bucket_of v =
  if v <= 0 then 0
  else begin
    let rec bits n acc = if n = 0 then acc else bits (n lsr 1) (acc + 1) in
    min (histogram_buckets - 1) (bits v 0)
  end

let observe h v =
  let v = max 0 v in
  h.h_counts.(bucket_of v) <- h.h_counts.(bucket_of v) + 1;
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum + v;
  if v < h.h_min then h.h_min <- v;
  if v > h.h_max then h.h_max <- v

let histogram_count h = h.h_count
let histogram_min h = if h.h_count = 0 then 0 else h.h_min
let histogram_max h = if h.h_count = 0 then 0 else h.h_max

let histogram_mean h =
  if h.h_count = 0 then 0.0 else float_of_int h.h_sum /. float_of_int h.h_count

(** Interpolated percentile [p] (in [0,1]) of the observations.

    The rank is monotone in [p] and the estimate is monotone in the
    rank: bucket order first, then linear interpolation *within* the
    located bucket.  The interpolation range is the bucket's span
    tightened by the observed min/max — a no-op for interior buckets,
    but in the top (bottom) occupied bucket it pulls the upper (lower)
    edge in to the largest (smallest) value actually seen, so a p99.9
    that lands mid-bucket is estimated inside the tail instead of being
    clamped flat to the global max.  Monotonicity across buckets holds
    because a bucket's tightened upper edge (≤ 2^b − 1) stays below the
    next occupied bucket's tightened lower edge (≥ 2^b). *)
let percentile h p =
  if h.h_count = 0 then 0.0
  else begin
    let p = Float.max 0.0 (Float.min 1.0 p) in
    let rank = Float.max 1.0 (Float.round (p *. float_of_int h.h_count)) in
    let rec locate b cum =
      if b >= histogram_buckets then (histogram_buckets - 1, cum)
      else
        let cum' = cum + h.h_counts.(b) in
        if float_of_int cum' >= rank then (b, cum) else locate (b + 1) cum'
    in
    let b, before = locate 0 0 in
    let bucket_lo = if b = 0 then 0 else 1 lsl (b - 1) in
    let bucket_hi = if b = 0 then 0 else (1 lsl b) - 1 in
    let lo = Float.of_int (max bucket_lo (histogram_min h)) in
    let hi = Float.of_int (min bucket_hi (histogram_max h)) in
    let in_bucket = float_of_int h.h_counts.(b) in
    let frac = if in_bucket <= 1.0 then 1.0 else (rank -. float_of_int before) /. in_bucket in
    lo +. (frac *. (hi -. lo))
  end

type summary = {
  s_count : int;
  s_min : int;
  s_max : int;
  s_mean : float;
  s_p50 : float;
  s_p90 : float;
  s_p99 : float;
  s_p999 : float;
}

let summarize h =
  {
    s_count = histogram_count h;
    s_min = histogram_min h;
    s_max = histogram_max h;
    s_mean = histogram_mean h;
    s_p50 = percentile h 0.50;
    s_p90 = percentile h 0.90;
    s_p99 = percentile h 0.99;
    s_p999 = percentile h 0.999;
  }

(* --- the registry ----------------------------------------------------- *)

type t = {
  counters : (string, counter) Hashtbl.t;
  probes : (string, unit -> float) Hashtbl.t;
  histograms : (string, histogram) Hashtbl.t;
}

let create () =
  { counters = Hashtbl.create 32; probes = Hashtbl.create 32; histograms = Hashtbl.create 16 }

let counter t name =
  match Hashtbl.find_opt t.counters name with
  | Some c -> c
  | None ->
    let c = { c_name = name; c_value = 0 } in
    Hashtbl.replace t.counters name c;
    c

(** Register (or replace) a sampled probe over an external counter. *)
let register_probe t name fn = Hashtbl.replace t.probes name fn

let histogram t name =
  match Hashtbl.find_opt t.histograms name with
  | Some h -> h
  | None ->
    let h =
      { h_name = name; h_counts = Array.make histogram_buckets 0; h_count = 0;
        h_sum = 0; h_min = max_int; h_max = 0 }
    in
    Hashtbl.replace t.histograms name h;
    h

let sorted_bindings tbl =
  List.sort (fun (a, _) (b, _) -> String.compare a b)
    (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

(* --- merging shard registries ----------------------------------------- *)

(** Fold [src]'s histogram into [dst] bucket-wise.  All fields are
    integer-valued, so the fold is exact: order of merging never
    changes the result. *)
let merge_histogram_into dst src =
  Array.iteri (fun b n -> dst.h_counts.(b) <- dst.h_counts.(b) + n) src.h_counts;
  dst.h_count <- dst.h_count + src.h_count;
  dst.h_sum <- dst.h_sum + src.h_sum;
  if src.h_count > 0 then begin
    if src.h_min < dst.h_min then dst.h_min <- src.h_min;
    if src.h_max > dst.h_max then dst.h_max <- src.h_max
  end

(** Add every owned counter and histogram of [src] into [into].
    Probes are deliberately *not* merged: they sample process-global
    legacy accessors, so copying them across registries would double
    count.  Register probes on the merged registry explicitly if they
    are wanted there. *)
let merge_into ~into src =
  List.iter (fun (name, c) -> add (counter into name) c.c_value)
    (sorted_bindings src.counters);
  List.iter (fun (name, h) -> merge_histogram_into (histogram into name) h)
    (sorted_bindings src.histograms)

(** Merge shard registries into a fresh registry.  Deterministic:
    integer sums and bucket-wise adds make the result independent of
    list order (the qcheck laws assert commutativity/associativity). *)
let merge regs =
  let out = create () in
  List.iter (fun r -> merge_into ~into:out r) regs;
  out

(** Structural equality over owned state: counter values and full
    histogram state (bucket counts, count, sum, min, max).  Probes are
    excluded — they are callbacks, not state. *)
let equal a b =
  let counters r =
    List.map (fun (k, c) -> (k, c.c_value)) (sorted_bindings r.counters)
  in
  let histos r =
    List.map
      (fun (k, h) ->
        (k, (Array.to_list h.h_counts, h.h_count, h.h_sum, h.h_min, h.h_max)))
      (sorted_bindings r.histograms)
  in
  counters a = counters b && histos a = histos b

(* --- per-domain shard registries -------------------------------------- *)

(** One registry per recording domain.  [my] hands the calling domain
    its own registry (creating it under the lock on first call — cache
    the result in the worker loop rather than calling per-event);
    mutation is then lock-free and single-owner.  [merged] combines all
    shards with {!merge}. *)
module Shards = struct
  type registry = t

  let create_registry : unit -> registry = create

  type t = {
    lock : Mutex.t;
    mutable shards : (int * registry) list;  (* domain id -> registry *)
  }

  let create () = { lock = Mutex.create (); shards = [] }

  (** The calling domain's registry (created on first call). *)
  let my t =
    let id = (Domain.self () :> int) in
    Mutex.protect t.lock (fun () ->
        match List.assoc_opt id t.shards with
        | Some r -> r
        | None ->
          let r = create_registry () in
          t.shards <- (id, r) :: t.shards;
          r)

  (** All shard registries, sorted by domain id (deterministic order). *)
  let registries t =
    Mutex.protect t.lock (fun () ->
        List.map snd
          (List.sort (fun (a, _) (b, _) -> compare a b) t.shards))

  let merged t = merge (registries t)
end

(** All counter values, owned and probed, sorted by name. *)
let counter_values t : (string * float) list =
  let owned = List.map (fun (k, c) -> (k, float_of_int c.c_value)) (sorted_bindings t.counters) in
  let probed = List.map (fun (k, fn) -> (k, fn ())) (sorted_bindings t.probes) in
  List.sort (fun (a, _) (b, _) -> String.compare a b) (owned @ probed)

(** All histogram summaries, sorted by name. *)
let histogram_summaries t : (string * summary) list =
  List.map (fun (k, h) -> (k, summarize h)) (sorted_bindings t.histograms)

let to_json t : Report.Json.t =
  let open Report.Json in
  let counters = List.map (fun (k, v) -> (k, Num v)) (counter_values t) in
  let histos =
    List.map
      (fun (k, s) ->
        ( k,
          Obj
            [
              ("count", Num (float_of_int s.s_count));
              ("min", Num (float_of_int s.s_min));
              ("max", Num (float_of_int s.s_max));
              ("mean", Num s.s_mean);
              ("p50", Num s.s_p50);
              ("p90", Num s.s_p90);
              ("p99", Num s.s_p99);
              ("p999", Num s.s_p999);
            ] ))
      (histogram_summaries t)
  in
  Obj [ ("counters", Obj counters); ("histograms", Obj histos) ]

(** The end-of-run text summary (counters, then histogram percentiles),
    rendered with {!Report.Table}. *)
let summary_table t : string =
  let counters =
    Report.Table.render ~align:[ Report.Table.L; Report.Table.R ]
      ~header:[ "counter"; "value" ]
      (List.map
         (fun (k, v) ->
           [ k; (if Float.is_integer v then Printf.sprintf "%.0f" v else Printf.sprintf "%.4f" v) ])
         (counter_values t))
  in
  match histogram_summaries t with
  | [] -> counters
  | histos ->
    let h =
      Report.Table.render
        ~align:Report.Table.[ L; R; R; R; R; R; R; R; R ]
        ~header:[ "histogram"; "count"; "min"; "p50"; "p90"; "p99"; "p99.9"; "max"; "mean" ]
        (List.map
           (fun (k, s) ->
             [
               k;
               string_of_int s.s_count;
               string_of_int s.s_min;
               Printf.sprintf "%.0f" s.s_p50;
               Printf.sprintf "%.0f" s.s_p90;
               Printf.sprintf "%.0f" s.s_p99;
               Printf.sprintf "%.0f" s.s_p999;
               string_of_int s.s_max;
               Printf.sprintf "%.1f" s.s_mean;
             ])
           histos)
    in
    counters ^ "\n\n" ^ h
