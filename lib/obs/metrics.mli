(** The metrics registry: named counters (owned, bumped on the hot
    path), sampled probes (read-only callbacks over counters that live
    elsewhere — the legacy accessors stay authoritative and the
    registry samples them at snapshot time), and log-scaled histograms
    with p50/p90/p99 summaries. *)

type counter

val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int

type histogram

(** Number of power-of-two buckets; bucket [b] holds [2^(b-1), 2^b). *)
val histogram_buckets : int

(** Record one non-negative integer observation (negatives clamp to 0). *)
val observe : histogram -> int -> unit

val histogram_count : histogram -> int
val histogram_min : histogram -> int
val histogram_max : histogram -> int
val histogram_mean : histogram -> float

(** Interpolated percentile of [p] in [0,1]: monotone in [p] and
    clamped to the observed [min, max]. *)
val percentile : histogram -> float -> float

type summary = {
  s_count : int;
  s_min : int;
  s_max : int;
  s_mean : float;
  s_p50 : float;
  s_p90 : float;
  s_p99 : float;
}

val summarize : histogram -> summary

type t

val create : unit -> t

(** Find-or-create the named counter. *)
val counter : t -> string -> counter

(** Register (or replace) a sampled probe over an external counter. *)
val register_probe : t -> string -> (unit -> float) -> unit

(** Find-or-create the named histogram. *)
val histogram : t -> string -> histogram

(** All counter values (owned and probed), sorted by name; probes are
    sampled at call time. *)
val counter_values : t -> (string * float) list

val histogram_summaries : t -> (string * summary) list

val to_json : t -> Report.Json.t

(** End-of-run text summary rendered with {!Report.Table}. *)
val summary_table : t -> string
