(** The metrics registry: named counters (owned, bumped on the hot
    path), sampled probes (read-only callbacks over counters that live
    elsewhere — the legacy accessors stay authoritative and the
    registry samples them at snapshot time), and log-scaled histograms
    with p50/p90/p99/p99.9 summaries.

    A registry is single-owner: nothing here locks, so two domains
    must never mutate the same registry.  {!Shards} hands each domain
    its own registry; {!merge} combines them exactly (all histogram
    state is integer-valued, so merging is deterministic, associative
    and commutative). *)

type counter

val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int

type histogram

(** Number of power-of-two buckets; bucket [b] holds [2^(b-1), 2^b). *)
val histogram_buckets : int

(** Record one non-negative integer observation (negatives clamp to 0). *)
val observe : histogram -> int -> unit

val histogram_count : histogram -> int
val histogram_min : histogram -> int
val histogram_max : histogram -> int
val histogram_mean : histogram -> float

(** Interpolated percentile of [p] in [0,1]: monotone in [p], bounded
    by the observed [min, max], and interpolated *within* the located
    bucket (the bucket span tightened by the observed extrema), so
    tail percentiles are estimated inside the top occupied bucket
    instead of clamping flat to the max. *)
val percentile : histogram -> float -> float

type summary = {
  s_count : int;
  s_min : int;
  s_max : int;
  s_mean : float;
  s_p50 : float;
  s_p90 : float;
  s_p99 : float;
  s_p999 : float;
}

val summarize : histogram -> summary

type t

val create : unit -> t

(** Find-or-create the named counter. *)
val counter : t -> string -> counter

(** Register (or replace) a sampled probe over an external counter. *)
val register_probe : t -> string -> (unit -> float) -> unit

(** Find-or-create the named histogram. *)
val histogram : t -> string -> histogram

(** Add every owned counter and histogram of [src] into [into].
    Probes are deliberately not merged — they sample process-global
    accessors, so copying them across registries would double count. *)
val merge_into : into:t -> t -> unit

(** Merge shard registries into a fresh registry.  Exact and
    order-independent: integer sums and bucket-wise adds only. *)
val merge : t list -> t

(** Structural equality over owned state (counter values and full
    histogram state); probes are excluded. *)
val equal : t -> t -> bool

(** One registry per recording domain: [my] hands the calling domain
    its own registry (created under a lock on first call — cache the
    result in the worker loop), after which mutation is lock-free and
    single-owner.  [merged] combines all shards with {!merge}. *)
module Shards : sig
  type registry = t
  type t

  val create : unit -> t

  (** The calling domain's registry (created on first call). *)
  val my : t -> registry

  (** All shard registries, sorted by domain id (deterministic). *)
  val registries : t -> registry list

  val merged : t -> registry
end

(** All counter values (owned and probed), sorted by name; probes are
    sampled at call time. *)
val counter_values : t -> (string * float) list

val histogram_summaries : t -> (string * summary) list

val to_json : t -> Report.Json.t

(** End-of-run text summary rendered with {!Report.Table}. *)
val summary_table : t -> string
