(* The flight recorder: a bounded ring of structured trap events plus a
   metrics registry, behind hooks cheap enough to leave compiled in.

   Cost ladder (what a hook does per trap):
   - no recorder attached            -> one option match in the monitor;
   - tracing and metrics both off    -> two or three counter bumps
                                        ([count_trap]; no event is even
                                        allocated — [armed] is false);
   - metrics on                      -> counter bumps + histogram
                                        observations over the event;
   - tracing on (or [on_event] set)  -> the above + a ring push / the
                                        live callback.

   The recorder never charges modelled cycles: observation is free on
   the machine's clock, so a run's cycle totals, verdicts and the
   Table 6 matrix are identical with the recorder on or off (asserted
   in the test suite). *)

type item =
  | Trap of Event.t
  | Instant of { i_name : string; i_at : int; i_shard : int; i_tracee : int }
        (** a point event: one ctx_* runtime-library intrinsic *)

type t = {
  tracing : bool;
  metrics_on : bool;
  ring : item Ring.t;
  registry : Metrics.t;
  mutable on_event : (Event.t -> unit) option;
  mutable seq : int;
  (* The lane this recorder records for: sharded runs give each worker
     its own recorder and stamp (shard, tracee) here so every event it
     emits carries its lane.  (0, 0) — the default — is the solo
     single-shard lane and keeps the audit format byte-identical. *)
  mutable lane_shard : int;
  mutable lane_tracee : int;
  c_traps : Metrics.counter;
  c_allowed : Metrics.counter;
  c_denied : Metrics.counter;
  c_fetches : Metrics.counter;
  c_intrinsics : Metrics.counter;
}

let default_ring_capacity = 65536

let create ?(tracing = false) ?(metrics = false) ?(ring_capacity = default_ring_capacity) () =
  let registry = Metrics.create () in
  let t =
    {
      tracing;
      metrics_on = metrics;
      ring = Ring.create ring_capacity;
      registry;
      on_event = None;
      seq = 0;
      lane_shard = 0;
      lane_tracee = 0;
      c_traps = Metrics.counter registry "obs.traps";
      c_allowed = Metrics.counter registry "obs.allowed";
      c_denied = Metrics.counter registry "obs.denied";
      c_fetches = Metrics.counter registry "obs.fetches";
      c_intrinsics = Metrics.counter registry "obs.intrinsics";
    }
  in
  Metrics.register_probe registry "obs.events_dropped" (fun () ->
      float_of_int (Ring.dropped t.ring));
  Metrics.register_probe registry "obs.events_recorded" (fun () ->
      float_of_int (Ring.pushed t.ring));
  t

let tracing t = t.tracing

(** Stamp the lane every subsequent event records under (sharded runs
    call this from the worker before processing a tracee). *)
let set_lane t ~shard ~tracee =
  t.lane_shard <- shard;
  t.lane_tracee <- tracee

let lane t = (t.lane_shard, t.lane_tracee)
let metrics_enabled t = t.metrics_on
let metrics t = t.registry
let set_on_event t fn = t.on_event <- fn

(** Should the monitor build a full structured event for this trap?
    False only when every consumer is off — then [count_trap] is the
    whole hook. *)
let armed t = t.tracing || t.metrics_on || t.on_event <> None

let next_seq t =
  let s = t.seq in
  t.seq <- s + 1;
  s

(** The disabled-path hook: counter bumps only. *)
let count_trap t ~denied =
  Metrics.incr t.c_traps;
  Metrics.incr (if denied then t.c_denied else t.c_allowed)

let observe_event t (ev : Event.t) =
  let h name = Metrics.histogram t.registry name in
  Metrics.observe (h "trap.cycles") ev.ev_dur;
  Metrics.observe (h "trap.ptrace_calls") ev.ev_ptrace_calls;
  Metrics.observe (h "trap.ptrace_words") ev.ev_ptrace_words;
  Metrics.observe (h "trap.shadow_probes") ev.ev_shadow_probes;
  if ev.ev_depth > 0 then Metrics.observe (h "trap.depth") ev.ev_depth;
  List.iter
    (fun (sp : Event.span) ->
      match sp.sp_outcome with
      | Event.Passed | Event.Failed ->
        Metrics.observe (h ("phase." ^ Event.phase_name sp.sp_phase ^ ".cycles")) sp.sp_dur
      | Event.Cached -> ())
    ev.ev_spans

(** Record one fully built trap event: counters always, histograms when
    metrics are on, the ring when tracing, the live callback if set. *)
let record_trap t (ev : Event.t) =
  (* Stamp the recorder's lane onto events the monitor built lane-less;
     an event that already carries a lane keeps it. *)
  let ev =
    if (t.lane_shard <> 0 || t.lane_tracee <> 0)
       && ev.Event.ev_shard = 0 && ev.Event.ev_tracee = 0
    then { ev with Event.ev_shard = t.lane_shard; ev_tracee = t.lane_tracee }
    else ev
  in
  (match ev.ev_kind with
  | Event.Fetch_only -> Metrics.incr t.c_fetches
  | Event.Trap_check -> ());
  count_trap t ~denied:(Event.denied ev);
  if t.metrics_on then observe_event t ev;
  if t.tracing then Ring.push t.ring (Trap ev);
  match t.on_event with None -> () | Some fn -> fn ev

(** Record one runtime-library intrinsic as a point event. *)
let record_instant t ~name ~at =
  Metrics.incr t.c_intrinsics;
  if t.tracing then
    Ring.push t.ring
      (Instant
         { i_name = name; i_at = at; i_shard = t.lane_shard; i_tracee = t.lane_tracee })

let items t = Ring.to_list t.ring

let trap_events t =
  List.filter_map (function Trap ev -> Some ev | Instant _ -> None) (items t)

let events_dropped t = Ring.dropped t.ring

let item_to_json = function
  | Trap ev -> Event.to_json ev
  | Instant { i_name; i_at; i_shard; i_tracee } ->
    Report.Json.Obj
      ([
         ("kind", Report.Json.Str "instant");
         ("name", Report.Json.Str i_name);
         ("at_cycles", Report.Json.Num (float_of_int i_at));
       ]
      @
      (* Sparse, like the trap lane tags: lane 0/0 writes the
         pre-fleet record. *)
      if i_shard = 0 && i_tracee = 0 then []
      else
        [
          ("shard", Report.Json.Num (float_of_int i_shard));
          ("tracee", Report.Json.Num (float_of_int i_tracee));
        ])

(** The JSONL audit log: one compact JSON object per recorded item.
    [header], when given, is written first as its own line — the trace
    format's self-describing version/workload/fingerprint record, which
    makes the file replayable by [Bastion_replay]. *)
let write_jsonl ?header t path =
  let oc = open_out path in
  (match header with
  | Some h ->
    output_string oc (Report.Json.to_compact_string h);
    output_char oc '\n'
  | None -> ());
  Ring.iter t.ring (fun item ->
      output_string oc (Report.Json.to_compact_string (item_to_json item));
      output_char oc '\n');
  close_out oc

(** End-of-run text summary of the registry. *)
let summary_table t = Metrics.summary_table t.registry
