(** The flight recorder: a bounded ring of structured trap events plus
    a metrics registry, behind hooks cheap enough to leave compiled in
    (with tracing and metrics off, a trap costs two or three counter
    bumps and no allocation).  The recorder never charges modelled
    cycles, so a run behaves identically with it on or off. *)

type item =
  | Trap of Event.t
  | Instant of { i_name : string; i_at : int; i_shard : int; i_tracee : int }
        (** a point event: one ctx_* runtime-library intrinsic *)

type t

val default_ring_capacity : int

(** [create ~tracing ~metrics ()] — [tracing] keeps events in the ring
    (for the trace/audit sinks), [metrics] feeds the histograms; both
    default to off. *)
val create : ?tracing:bool -> ?metrics:bool -> ?ring_capacity:int -> unit -> t

val tracing : t -> bool

(** Stamp the (shard, tracee) lane every subsequent event records
    under.  The default lane (0, 0) is the solo single-shard lane and
    emits exactly the pre-fleet audit records. *)
val set_lane : t -> shard:int -> tracee:int -> unit

val lane : t -> int * int
val metrics_enabled : t -> bool
val metrics : t -> Metrics.t

(** Live per-event callback (the CLI's [-v] sink). *)
val set_on_event : t -> (Event.t -> unit) option -> unit

(** Should the monitor build a full structured event for this trap?
    False only when tracing, metrics and the callback are all off. *)
val armed : t -> bool

val next_seq : t -> int

(** The disabled-path hook: counter bumps only. *)
val count_trap : t -> denied:bool -> unit

(** Record one fully built trap event. *)
val record_trap : t -> Event.t -> unit

(** Record one runtime-library intrinsic as a point event. *)
val record_instant : t -> name:string -> at:int -> unit

(** Recorded items, oldest first. *)
val items : t -> item list

(** Just the trap events, oldest first. *)
val trap_events : t -> Event.t list

val events_dropped : t -> int
val item_to_json : item -> Report.Json.t

(** Write the JSONL audit log: one compact JSON object per item.
    [header], when given, is written first as its own line (the replay
    trace format's self-describing version/fingerprint record). *)
val write_jsonl : ?header:Report.Json.t -> t -> string -> unit

(** End-of-run text summary of the registry. *)
val summary_table : t -> string
