(* A bounded ring buffer: the flight recorder's event store.  Pushing
   past capacity overwrites the oldest entry and counts it as dropped,
   so a long run keeps the most recent window at a fixed memory cost. *)

type 'a t = {
  buf : 'a option array;
  mutable head : int;      (* next write position *)
  mutable length : int;
  mutable pushed : int;
  mutable dropped : int;
}

let create capacity =
  if capacity <= 0 then invalid_arg "Ring.create: capacity must be positive";
  { buf = Array.make capacity None; head = 0; length = 0; pushed = 0; dropped = 0 }

let capacity t = Array.length t.buf

let push t x =
  let cap = capacity t in
  if t.length = cap then t.dropped <- t.dropped + 1 else t.length <- t.length + 1;
  t.buf.(t.head) <- Some x;
  t.head <- (t.head + 1) mod cap;
  t.pushed <- t.pushed + 1

let length t = t.length
let pushed t = t.pushed
let dropped t = t.dropped

(** Contents, oldest first. *)
let to_list t =
  let cap = capacity t in
  let start = (t.head - t.length + cap * 2) mod cap in
  List.init t.length (fun i ->
      match t.buf.((start + i) mod cap) with
      | Some x -> x
      | None -> assert false)

let iter t f = List.iter f (to_list t)

let clear t =
  Array.fill t.buf 0 (capacity t) None;
  t.head <- 0;
  t.length <- 0
