(** A bounded ring buffer (the flight recorder's event store): pushing
    past capacity overwrites the oldest entry and counts it as dropped,
    keeping the most recent window at a fixed memory cost. *)

type 'a t

(** @raise Invalid_argument if [capacity <= 0]. *)
val create : int -> 'a t

val capacity : 'a t -> int
val push : 'a t -> 'a -> unit

(** Entries currently held (≤ capacity). *)
val length : 'a t -> int

(** Total pushes since creation. *)
val pushed : 'a t -> int

(** Entries overwritten because the ring was full. *)
val dropped : 'a t -> int

(** Contents, oldest first. *)
val to_list : 'a t -> 'a list

val iter : 'a t -> ('a -> unit) -> unit
val clear : 'a t -> unit
