(* The time-series sink: periodic stats snapshots as JSONL.

   A sharded run wants to see itself *over time* — per-shard
   throughput, queue depth, backpressure, latency percentiles — not
   just the end-of-run registry.  Each snapshot is one [row]: the
   modelled-cycle timestamp, the shard lane it describes, and a flat
   bag of named float fields (whatever the emitter samples).

   Ownership mirrors {!Metrics}: a collector is single-owner (the
   worker domain that samples it), nothing locks, and per-shard
   collectors are [merge]d at join into one stream sorted by
   (timestamp, shard) — deterministic because timestamps are modelled
   cycles, not host time.

   The file format is one JSON object per line, first line a
   self-describing header ([schema] = "bastion-stats/1"), so the
   offline reader ([bastion fleet-summary]) can reject foreign files
   cleanly. *)

let schema = "bastion-stats/1"

type row = {
  r_t : int;                        (** modelled cycles at snapshot *)
  r_shard : int;                    (** shard lane (0: whole run) *)
  r_fields : (string * float) list; (** sampled fields, emitter-defined *)
}

(** A single-owner snapshot collector (one per recording domain). *)
type t = { mutable rows : row list (* newest first *) }

let create () = { rows = [] }

let push t ~at ~shard fields = t.rows <- { r_t = at; r_shard = shard; r_fields = fields } :: t.rows

let count t = List.length t.rows

(** This collector's rows, oldest first. *)
let rows t = List.rev t.rows

(** Merge per-shard collectors into one stream sorted by
    (timestamp, shard) — deterministic on the modelled clock. *)
let merge ts =
  List.stable_sort
    (fun a b ->
      match compare a.r_t b.r_t with 0 -> compare a.r_shard b.r_shard | c -> c)
    (List.concat_map rows ts)

(** Bucket recorded trap events into fixed [interval]-cycle windows:
    one row per (window, shard lane) with the trap count, denials and
    monitor cycles charged in that window.  This is the post-hoc
    emitter behind [bastion run --stats-interval] — the recorder keeps
    the full event stream, and the time-series view is derived at the
    end of the run on the modelled clock. *)
let of_events ~interval (events : Event.t list) : row list =
  if interval <= 0 then
    invalid_arg "Timeseries.of_events: interval must be positive";
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (ev : Event.t) ->
      let key = (ev.Event.ev_start / interval, ev.Event.ev_shard) in
      let traps, denied, cycles =
        match Hashtbl.find_opt tbl key with Some x -> x | None -> (0, 0, 0)
      in
      Hashtbl.replace tbl key
        ( traps + 1,
          (if Event.denied ev then denied + 1 else denied),
          cycles + ev.Event.ev_dur ))
    events;
  Hashtbl.fold
    (fun (window, shard) (traps, denied, cycles) acc ->
      {
        r_t = (window + 1) * interval;
        r_shard = shard;
        r_fields =
          [
            ("traps", float_of_int traps);
            ("denied", float_of_int denied);
            ("monitor_cycles", float_of_int cycles);
          ];
      }
      :: acc)
    tbl []
  |> List.sort (fun a b -> compare (a.r_t, a.r_shard) (b.r_t, b.r_shard))

let row_to_json r : Report.Json.t =
  let open Report.Json in
  Obj
    ([ ("t_cycles", Num (float_of_int r.r_t)); ("shard", Num (float_of_int r.r_shard)) ]
    @ List.map (fun (k, v) -> (k, Num v)) r.r_fields)

(** Write rows as JSONL behind a self-describing header line.
    [meta] extends the header (run parameters and the like). *)
let write_jsonl ?(meta = []) rows path =
  let oc = open_out path in
  let header =
    Report.Json.Obj (("schema", Report.Json.Str schema) :: meta)
  in
  output_string oc (Report.Json.to_compact_string header);
  output_char oc '\n';
  List.iter
    (fun r ->
      output_string oc (Report.Json.to_compact_string (row_to_json r));
      output_char oc '\n')
    rows;
  close_out oc

(* --- reading a stats stream back (fleet-summary) ---------------------- *)

let row_of_json json : (row, string) result =
  let int_of name =
    match Report.Json.member name json with
    | Some (Report.Json.Num f) when Float.is_integer f -> Ok (int_of_float f)
    | _ -> Error (Printf.sprintf "stats row: missing integer field %S" name)
  in
  match (int_of "t_cycles", int_of "shard") with
  | Ok r_t, Ok r_shard ->
    let r_fields =
      match json with
      | Report.Json.Obj fields ->
        List.filter_map
          (fun (k, v) ->
            if String.equal k "t_cycles" || String.equal k "shard" then None
            else Option.map (fun f -> (k, f)) (Report.Json.to_float v))
          fields
      | _ -> []
    in
    Ok { r_t; r_shard; r_fields }
  | Error e, _ | _, Error e -> Error e

(** Parse a stats JSONL file: the header (checked against {!schema})
    and the rows, in file order. *)
let read path : (Report.Json.t * row list, string) result =
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       let line = input_line ic in
       if String.trim line <> "" then lines := line :: !lines
     done
   with End_of_file -> close_in ic);
  match List.rev !lines with
  | [] -> Error "empty stats file"
  | header_line :: rest -> (
    match Report.Json.of_string header_line with
    | exception Report.Json.Parse_error e -> Error ("bad stats header: " ^ e)
    | header -> (
      match Report.Json.member "schema" header with
      | Some (Report.Json.Str s) when String.equal s schema ->
        let rec parse acc = function
          | [] -> Ok (header, List.rev acc)
          | line :: rest -> (
            match Report.Json.of_string line with
            | exception Report.Json.Parse_error e -> Error ("bad stats row: " ^ e)
            | json -> (
              match row_of_json json with
              | Ok r -> parse (r :: acc) rest
              | Error e -> Error e))
        in
        parse [] rest
      | Some (Report.Json.Str s) ->
        Error (Printf.sprintf "not a stats stream: schema %S (want %S)" s schema)
      | _ -> Error "not a stats stream: header has no schema"))

(** Render a parsed stream as one table per shard (the offline
    [fleet-summary] view): rows in time order, the union of sampled
    field names as columns. *)
let render rows : string =
  let shards = List.sort_uniq compare (List.map (fun r -> r.r_shard) rows) in
  let fields =
    List.sort_uniq String.compare
      (List.concat_map (fun r -> List.map fst r.r_fields) rows)
  in
  let buf = Buffer.create 1024 in
  List.iter
    (fun shard ->
      let mine = List.filter (fun r -> r.r_shard = shard) rows in
      Buffer.add_string buf
        (Printf.sprintf "shard %d: %d snapshots\n" shard (List.length mine));
      Buffer.add_string buf
        (Report.Table.render
           ~align:(Report.Table.R :: List.map (fun _ -> Report.Table.R) fields)
           ~header:("t_cycles" :: fields)
           (List.map
              (fun r ->
                string_of_int r.r_t
                :: List.map
                     (fun f ->
                       match List.assoc_opt f r.r_fields with
                       | None -> "-"
                       | Some v ->
                         if Float.is_integer v then Printf.sprintf "%.0f" v
                         else Printf.sprintf "%.1f" v)
                     fields)
              mine));
      Buffer.add_string buf "\n\n")
    shards;
  Buffer.contents buf
